package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus ablations of the design choices called out in
// DESIGN.md §7. Shapes to expect (not absolute numbers):
//
//	Figure5/Figure6 — useless-imputed-fraction drops from ≥0.65 to ≤0.60
//	                  when feedback is enabled (paper: 0.97 → 0.29);
//	Figure7         — F1 ≈ half of F0, F2 and F3 below F1, flat across
//	                  feedback frequencies;
//	Table1/Table2   — characterization rows enact and verify in
//	                  microseconds (feedback handling is cheap).

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/fuse"
	"repro/internal/gen"
	"repro/internal/op"
	"repro/internal/plan"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/window"
	"repro/internal/work"
)

// ---------------------------------------------------------------------------
// Tables 1 and 2.
// ---------------------------------------------------------------------------

func BenchmarkTable1CountCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.CountTable() {
			if !r.Verified {
				b.Fatalf("row %s failed Definition 1", r.Punctuation)
			}
		}
	}
}

func BenchmarkTable2JoinCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.JoinTable() {
			if !r.Verified {
				b.Fatalf("row %s failed Definition 1", r.Punctuation)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 5 and 6 (Experiment 1).
// ---------------------------------------------------------------------------

func benchImputation(b *testing.B, feedback bool, maxUseless, minUseless float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunImputation(experiments.ImputationConfig{
			Tuples: 2000, Rate: 4000, Feedback: feedback,
		})
		if err != nil {
			b.Fatal(err)
		}
		u := res.UselessFraction()
		if u < minUseless || u > maxUseless {
			b.Logf("warning: useless fraction %.2f outside expected [%.2f, %.2f] (wall-clock noise)",
				u, minUseless, maxUseless)
		}
		b.ReportMetric(100*u, "%useless")
	}
}

func BenchmarkFigure5ImputationNoFeedback(b *testing.B) {
	benchImputation(b, false, 1.0, 0.60)
}

func BenchmarkFigure6ImputationWithFeedback(b *testing.B) {
	benchImputation(b, true, 0.65, 0.0)
}

// ---------------------------------------------------------------------------
// Figure 7 (Experiment 2).
// ---------------------------------------------------------------------------

func BenchmarkFigure7Speedmap(b *testing.B) {
	for _, scheme := range []experiments.Scheme{experiments.F0, experiments.F1, experiments.F2, experiments.F3} {
		for _, freq := range []int{2, 4, 6} {
			b.Run(fmt.Sprintf("%v/switch=%dmin", scheme, freq), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := experiments.RunSpeedmap(experiments.SpeedmapConfig{
						Scheme:             scheme,
						SwitchEveryMinutes: freq,
						Hours:              1,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.WorkUnits)/1e6, "Mwork")
					b.ReportMetric(float64(res.Results), "results")
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 1(b): the motivating speed-map plan with adaptive feedback.
// ---------------------------------------------------------------------------

func BenchmarkFigure1bSpeedmapPlan(b *testing.B) {
	for _, feedback := range []bool{false, true} {
		b.Run(fmt.Sprintf("feedback=%v", feedback), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFigure1b(feedback, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(res.MapRows)), "rows")
				b.ReportMetric(float64(res.CleanerSkipped+res.AggFoldsSkipped+res.ProbesSkipped), "saved")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §7).
// ---------------------------------------------------------------------------

// pipelineThroughput pushes n tuples through source → select → sink under
// the given queue options and reports tuples/op.
func pipelineThroughput(b *testing.B, opts queue.Options, n int) {
	b.Helper()
	schema := gen.TrafficSchema
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = stream.NewTuple(
			stream.Int(int64(i%9)), stream.Int(int64(i%40)),
			stream.TimeMicros(int64(i)*1000), stream.Float(55),
		)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := exec.NewSliceSource("src", schema, tuples...)
		src.BatchSize = 256
		sel := &op.Select{Schema: schema}
		sink := exec.NewCollector("sink", schema)
		sink.Discard = true
		g := exec.NewGraph()
		g.SetQueueOptions(opts)
		s := g.AddSource(src)
		f := g.Add(sel, exec.From(s))
		g.Add(sink, exec.From(f))
		if err := g.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "tuples/op")
}

func BenchmarkAblationPageSize(b *testing.B) {
	for _, ps := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("page=%d", ps), func(b *testing.B) {
			pipelineThroughput(b, queue.Options{PageSize: ps, FlushOnPunct: true}, 100_000)
		})
	}
}

func BenchmarkAblationPunctFlush(b *testing.B) {
	// Punctuation-dense stream: the flush-on-punct policy trades batching
	// for progress latency.
	schema := gen.TrafficSchema
	var items []queue.Item
	for i := 0; i < 50_000; i++ {
		items = append(items, queue.TupleItem(stream.NewTuple(
			stream.Int(int64(i%9)), stream.Int(0),
			stream.TimeMicros(int64(i)*1000), stream.Float(55))))
		if i%10 == 9 {
			items = append(items, queue.PunctItem(punct.NewEmbedded(
				punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(int64(i)*1000))))))
		}
	}
	for _, flush := range []bool{true, false} {
		b.Run(fmt.Sprintf("flushOnPunct=%v", flush), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src := &exec.SliceSource{SourceName: "src", Schema: schema, Items: items, BatchSize: 256}
				sink := exec.NewCollector("sink", schema)
				sink.Discard = true
				g := exec.NewGraph()
				g.SetQueueOptions(queue.Options{PageSize: 64, FlushOnPunct: flush})
				s := g.AddSource(src)
				g.Add(sink, exec.From(s))
				if err := g.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGuardLadder compares the F-scheme exploitation depths on
// the aggregate alone (no wall-clock noise: deterministic work counters).
func BenchmarkAblationGuardLadder(b *testing.B) {
	for _, mode := range []op.FeedbackMode{op.FeedbackIgnore, op.FeedbackGuardOutput, op.FeedbackExploit} {
		b.Run(mode.String(), func(b *testing.B) {
			const minute = int64(60_000_000)
			fb := core.NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(3))))
			for i := 0; i < b.N; i++ {
				a := &op.Aggregate{
					In: gen.TrafficSchema, Kind: core.AggAvg,
					TsAttr: 2, ValAttr: 3, GroupBy: []int{0},
					Window: window.Tumbling(minute), Mode: mode,
				}
				h := exec.NewHarness(a)
				h.Feedback(0, fb)
				for j := 0; j < 10_000; j++ {
					h.Tuple(0, stream.NewTuple(
						stream.Int(int64(j%9)), stream.Int(0),
						stream.TimeMicros(int64(j)*10_000), stream.Float(55)))
					if j%1000 == 999 {
						h.Punct(0, punct.NewEmbedded(punct.OnAttr(4, 2,
							punct.Le(stream.TimeMicros(int64(j)*10_000)))))
					}
				}
				h.EOS(0)
				if h.Err() != nil {
					b.Fatal(h.Err())
				}
			}
		})
	}
}

// BenchmarkAblationFeedbackFrequency measures raw feedback-handling cost:
// the paper reports "no discernible overhead" as frequency rises.
func BenchmarkAblationFeedbackFrequency(b *testing.B) {
	for _, every := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("feedbackEvery=%d", every), func(b *testing.B) {
			sel := &op.Select{Schema: gen.TrafficSchema, Mode: op.FeedbackExploit}
			h := exec.NewHarness(sel)
			t := stream.NewTuple(stream.Int(1), stream.Int(1), stream.TimeMicros(0), stream.Float(55))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%every == 0 {
					h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 2,
						punct.Lt(stream.TimeMicros(int64(i))))))
				}
				tt := t
				tt.Values = append([]stream.Value(nil), t.Values...)
				tt.Values[2] = stream.TimeMicros(int64(i + 1))
				h.Tuple(0, tt)
				if i%4096 == 0 {
					h.Reset() // keep the recorded output bounded
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core machinery.
// ---------------------------------------------------------------------------

func BenchmarkPatternMatch(b *testing.B) {
	p := punct.NewPattern(
		punct.Eq(stream.Int(3)),
		punct.Wild,
		punct.Le(stream.TimeMicros(1_000_000)),
		punct.Ge(stream.Float(50)),
	)
	t := stream.NewTuple(stream.Int(3), stream.Int(7), stream.TimeMicros(500_000), stream.Float(60))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Matches(t) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkPatternMatchCompiled(b *testing.B) {
	p := punct.NewPattern(
		punct.Eq(stream.Int(3)),
		punct.Wild,
		punct.Le(stream.TimeMicros(1_000_000)),
		punct.Ge(stream.Float(50)),
	).Compile(stream.Schema{})
	t := stream.NewTuple(stream.Int(3), stream.Int(7), stream.TimeMicros(500_000), stream.Float(60))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Matches(t) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkGuardTableSuppress(b *testing.B) {
	g := core.NewGuardTable(4)
	for i := 0; i < 8; i++ {
		g.Install(core.NewAssumed(punct.OnAttr(4, 0, punct.Eq(stream.Int(int64(100+i))))))
	}
	t := stream.NewTuple(stream.Int(3), stream.Int(7), stream.TimeMicros(500_000), stream.Float(60))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if g.Suppress(t) {
			b.Fatal("must not suppress")
		}
	}
}

func BenchmarkAggregateFold(b *testing.B) {
	const minute = int64(60_000_000)
	a := &op.Aggregate{
		In: gen.TrafficSchema, Kind: core.AggAvg,
		TsAttr: 2, ValAttr: 3, GroupBy: []int{0},
		Window: window.Tumbling(minute),
	}
	h := exec.NewHarness(a)
	// The measured loop reuses a precomputed tuple ring: building a tuple
	// per iteration (variadic NewTuple) used to charge 1 alloc/op to a fold
	// path that is itself allocation-free (pinned by
	// TestAggregateFoldZeroAlloc).
	ring := make([]stream.Tuple, 8192)
	for i := range ring {
		ring[i] = stream.NewTuple(
			stream.Int(int64(i%9)), stream.Int(0),
			stream.TimeMicros(int64(i)*1000), stream.Float(55))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Tuple(0, ring[i%len(ring)])
	}
}

func BenchmarkJoinProbe(b *testing.B) {
	j := &op.Join{
		Left:     gen.ProbeSchema,
		Right:    gen.ProbeSchema,
		LeftKeys: []int{0, 1}, RightKeys: []int{0, 1},
		LeftTs: 1, RightTs: 1,
	}
	h := exec.NewHarness(j)
	// Preload right side with 1000 entries.
	for i := 0; i < 1000; i++ {
		h.Tuple(1, stream.NewTuple(stream.Int(int64(i)), stream.TimeMicros(0), stream.Float(50)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Tuple(0, stream.NewTuple(stream.Int(int64(i%1000)), stream.TimeMicros(0), stream.Float(60)))
		if i%4096 == 0 {
			h.Reset()
		}
	}
}

// ---------------------------------------------------------------------------
// Plan compiler: operator fusion (DESIGN.md §10).
// ---------------------------------------------------------------------------

// runFusedPipeline builds the stateless hot path source → select → project
// → map → sink, optionally compiled (Builder.Compile fuses the three
// stateless stages into one flat kernel) and optionally attached to a
// telemetry sink (nil = uninstrumented), and runs it to completion.
func runFusedPipeline(b *testing.B, items []queue.Item, fused bool, tel *telemetry.Telemetry) {
	b.Helper()
	bld := plan.New()
	src := &exec.SliceSource{SourceName: "src", Schema: gen.TrafficSchema, Items: items, BatchSize: 256}
	keep := make([]string, gen.TrafficSchema.Arity())
	outs := make([]op.MapAttr, gen.TrafficSchema.Arity())
	for i := range keep {
		keep[i] = gen.TrafficSchema.Field(i).Name
		outs[i] = op.Carry(keep[i])
	}
	out := bld.Source(src).
		SelectExpr("hot", op.ExprStep{Col: 3, Name: "speed", Pred: punct.Ge(stream.Float(10))}).
		Project("keep", keep...).
		Map("norm", outs...)
	sink := exec.NewCollector("sink", out.Schema())
	sink.Discard = true
	out.Into(sink)
	if fused {
		bld.Compile()
	}
	if tel != nil {
		bld.EnableTelemetry(tel)
	}
	if err := bld.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFusedPipeline is the plan compiler's acceptance benchmark: the
// same stateless chain with and without Builder.Compile. The fused variant
// runs select+project+map as one flat kernel — two queue hops instead of
// four, no intermediate emits — and must beat the unfused twin ≥2×.
// cmd/benchall records both variants into BENCH_pipeline.json.
func BenchmarkFusedPipeline(b *testing.B) {
	// Punctuated stream, like every workload in this engine: a progress
	// punctuation on ts every 50 tuples. Unfused, each punctuation crosses
	// four queue edges (flushing the page at each, per FlushOnPunct) and is
	// re-projected by every stateless op; fused it crosses two and is
	// relayed by one kernel pass.
	const n = 100_000
	items := pipelineItems(n)
	for _, fused := range []bool{true, false} {
		b.Run(fmt.Sprintf("fused=%v", fused), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runFusedPipeline(b, items, fused, nil)
			}
			b.ReportMetric(n, "tuples/op")
		})
	}
}

// pipelineItems builds the shared punctuated benchmark stream: n tuples
// with a progress punctuation on ts every 50.
func pipelineItems(n int) []queue.Item {
	items := make([]queue.Item, 0, n+n/50)
	for i := 0; i < n; i++ {
		items = append(items, queue.TupleItem(stream.NewTuple(
			stream.Int(int64(i%9)), stream.Int(int64(i%40)),
			stream.TimeMicros(int64(i)*1000), stream.Float(float64(20+i%80)))))
		if i%50 == 49 {
			items = append(items, queue.PunctItem(punct.NewEmbedded(
				punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(int64(i)*1000))))))
		}
	}
	return items
}

// runFusedAggregate pushes the punctuated stream through source → select →
// project → GROUP BY aggregate → sink, optionally compiled. Compiled, the
// select+project chain first fuses into one kernel (stage 1) and is then
// absorbed into the aggregate's input port as a prefix kernel (stage 2):
// survivors fold through Aggregate.ApplyTupleBatch with no queue edge in
// between.
func runFusedAggregate(b *testing.B, items []queue.Item, fused bool) {
	b.Helper()
	const minute = int64(60_000_000)
	bld := plan.New()
	src := &exec.SliceSource{SourceName: "src", Schema: gen.TrafficSchema, Items: items, BatchSize: 256}
	out := bld.Source(src).
		SelectExpr("hot", op.ExprStep{Col: 3, Name: "speed", Pred: punct.Ge(stream.Float(10))}).
		Project("keep", "segment", "detector", "ts", "speed").
		Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"}, window.Tumbling(minute), "avgspeed")
	sink := exec.NewCollector("sink", out.Schema())
	sink.Discard = true
	out.Into(sink)
	if fused {
		bld.Compile()
	}
	if err := bld.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFusedAggregate is the stage-2 acceptance benchmark: the same
// select+project→GROUP BY pipeline with and without Builder.Compile. The
// fused variant must beat the unfused twin ≥1.3× — the honest bar against a
// baseline that already takes the batched fold (ProcessTupleBatch) on its
// own node. cmd/benchall records both variants into BENCH_pipeline.json.
func BenchmarkFusedAggregate(b *testing.B) {
	const n = 100_000
	items := pipelineItems(n)
	for _, fused := range []bool{true, false} {
		b.Run(fmt.Sprintf("fused=%v", fused), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runFusedAggregate(b, items, fused)
			}
			b.ReportMetric(n, "tuples/op")
		})
	}
}

// BenchmarkInstrumentedPipeline is the telemetry acceptance benchmark: the
// compiled hot-path pipeline with a metrics registry attached
// (telemetry=true) against the bare twin. The counters batch at page
// granularity (exec/runner.go flushPageStats), so the instrumented variant
// must stay within 5% of uninstrumented; cmd/benchall records both into
// BENCH_pipeline.json and the delta is the regression gate.
func BenchmarkInstrumentedPipeline(b *testing.B) {
	const n = 100_000
	items := pipelineItems(n)
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("telemetry=%v", on), func(b *testing.B) {
			// One long-lived sink outside the timed loop, as deployed: the
			// measured delta is the steady-state counter cost, not the
			// one-time ring allocation of telemetry.New.
			var tel *telemetry.Telemetry
			if on {
				tel = telemetry.New()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runFusedPipeline(b, items, true, tel)
			}
			b.ReportMetric(n, "tuples/op")
		})
	}
}

// noopCtx discards everything: direct kernel measurement with no queue in
// sight.
type noopCtx struct{}

func (noopCtx) Emit(stream.Tuple)               {}
func (noopCtx) EmitTo(int, stream.Tuple)        {}
func (noopCtx) EmitPunct(punct.Embedded)        {}
func (noopCtx) EmitPunctTo(int, punct.Embedded) {}
func (noopCtx) SendFeedback(int, core.Feedback) {}
func (noopCtx) ShutdownUpstream(int)            {}
func (noopCtx) NumInputs() int                  { return 1 }
func (noopCtx) NumOutputs() int                 { return 1 }
func (noopCtx) Logf(string, ...any)             {}

// BenchmarkFusedKernel measures the flat kernel alone — one ProcessTuple
// through select+project+map. The acceptance bar is 0 allocs/op in steady
// state (also pinned by the fuse package's zero-alloc test).
func BenchmarkFusedKernel(b *testing.B) {
	schema := gen.TrafficSchema
	expr, err := op.NewExpr(schema.Arity(),
		op.ExprStep{Col: 0, Name: "segment", Pred: punct.Le(stream.Int(1000))},
		op.ExprStep{Col: 3, Name: "speed", Pred: punct.Ge(stream.Float(10))})
	if err != nil {
		b.Fatal(err)
	}
	keep := make([]string, schema.Arity())
	outs := make([]op.MapAttr, schema.Arity())
	for i := range keep {
		keep[i] = schema.Field(i).Name
		outs[i] = op.Carry(keep[i])
	}
	fused, err := fuse.New([]exec.Operator{
		&op.Select{OpName: "hot", Schema: schema, Expr: expr, Mode: op.FeedbackExploit},
		&op.Project{OpName: "keep", In: schema, Keep: keep},
		&op.Map{OpName: "norm", In: schema, Outs: outs},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := noopCtx{}
	if err := fused.Open(ctx); err != nil {
		b.Fatal(err)
	}
	t := stream.NewTuple(stream.Int(3), stream.Int(7), stream.TimeMicros(500_000), stream.Float(60))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fused.ProcessTuple(0, t, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Partitioned parallel execution (exchange operators).
// ---------------------------------------------------------------------------

// BenchmarkParallelAggregate measures the scaling of a partitioned
// aggregate: source → split(segment) → n × aggregate → merge → sink. The
// per-tuple Cost makes the aggregate compute-bound so the speedup tracks
// cores (flat on a single-core host). The fixture and plan are shared
// with cmd/benchall (experiments.ParallelTrafficItems /
// RunParallelAggregate) so BENCH_pipeline.json records this exact
// workload.
func BenchmarkParallelAggregate(b *testing.B) {
	items := experiments.ParallelTrafficItems(50_000)
	cost := work.UnitsFor(time.Microsecond)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.RunParallelAggregate(n, items, cost); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(50_000, "tuples/op")
		})
	}
}

// BenchmarkMergeAlign measures the punctuation-alignment steady state: a
// lagging partition pins the merged frontier, so arrivals from the others
// probe coverage and emit nothing. The acceptance bar is 0 allocs/op
// (also pinned by TestMergeAlignmentZeroAlloc).
func BenchmarkMergeAlign(b *testing.B) {
	m := &op.Merge{Schema: gen.TrafficSchema, K: 4, Mode: op.FeedbackExploit}
	h := exec.NewHarness(m)
	mk := func(us int64) punct.Embedded {
		return punct.NewEmbedded(punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(us))))
	}
	for i := 0; i < 4; i++ {
		h.Punct(i, mk(100))
	}
	if h.Err() != nil {
		b.Fatal(h.Err())
	}
	probes := []punct.Embedded{mk(5000), mk(6000), mk(7000)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ProcessPunct(i%3, probes[i%3], h); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Checkpoint & recovery (internal/snapshot).
// ---------------------------------------------------------------------------

// BenchmarkCheckpoint measures the end-to-end latency of one
// punctuation-aligned checkpoint of a running Parallel(4) aggregate plan:
// barrier injection at the source, alignment across the exchange, state
// serialization at every Stater, and the coordinator's final assembly.
func BenchmarkCheckpoint(b *testing.B) {
	rb, err := experiments.StartRecoveryBench(4, 50_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer rb.Stop()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rb.Checkpoint(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteBarrier measures the end-to-end latency of one
// distributed checkpoint epoch across a loopback TCP edge: barrier
// injection at the producer, the wire crossing, the consumer subplan's
// aligned cut and local persist, the ack over the control connection, and
// the coordinator's manifest commit.
func BenchmarkRemoteBarrier(b *testing.B) {
	db, err := experiments.StartDistBench(50_000)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointLargeState measures the end-to-end latency of one
// full checkpoint (capture + background encode + assembly) as aggregate
// state grows 100×. This is the path whose cost inherently scales with
// state — it exists as the contrast for BenchmarkBarrierHold: the encode
// grows linearly, but it happens off the pipeline.
func BenchmarkCheckpointLargeState(b *testing.B) {
	for _, groups := range []int{2_000, 20_000, 200_000} {
		b.Run(fmt.Sprintf("state=%d", groups), func(b *testing.B) {
			lb, err := experiments.StartLargeStateBench(groups)
			if err != nil {
				b.Fatal(err)
			}
			defer lb.Stop()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lb.Touch(512)
				if _, err := lb.Checkpoint(ctx, snapshot.CaptureFull); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBarrierHold measures the hot-path stall of an incremental
// checkpoint — the longest any node spends in phase-1 capture while the
// barrier holds its stream — as aggregate state grows 100× with a fixed
// write rate (512 touched groups per checkpoint). The acceptance bar
// (ISSUE 4) is that the reported barrier-ns/op stays roughly constant
// (within 2×) across the state sizes, while the one-phase path of PR 3
// scaled linearly; ns/op for the surrounding call is reported too but
// includes background encode wait.
func BenchmarkBarrierHold(b *testing.B) {
	for _, groups := range []int{2_000, 20_000, 200_000} {
		b.Run(fmt.Sprintf("state=%d", groups), func(b *testing.B) {
			lb, err := experiments.StartLargeStateBench(groups)
			if err != nil {
				b.Fatal(err)
			}
			defer lb.Stop()
			ctx := context.Background()
			// Base snapshot: establishes the delta baseline.
			if _, err := lb.Checkpoint(ctx, snapshot.CaptureFull); err != nil {
				b.Fatal(err)
			}
			var hold time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lb.Touch(512)
				st, err := lb.Checkpoint(ctx, snapshot.CaptureDelta)
				if err != nil {
					b.Fatal(err)
				}
				hold += st.BarrierHold
			}
			b.StopTimer()
			b.ReportMetric(float64(hold.Nanoseconds())/float64(b.N), "barrier-ns/op")
		})
	}
}

// BenchmarkRecovery measures crash-and-recover: rebuild the plan, restore
// the snapshot (staging + per-operator LoadState), and replay the last 10%
// of the stream to completion.
func BenchmarkRecovery(b *testing.B) {
	rb, err := experiments.StartRecoveryBench(4, 50_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	snap, err := rb.Checkpoint(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if err := rb.Stop(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rb.Recover(snap); err != nil {
			b.Fatal(err)
		}
	}
}
