// Command paceql runs a query in the reproduction's SQL-like language
// (including the paper's §3.3 WITH PACE clause) over text-encoded streams
// and writes the result to stdout.
//
// Each -stream flag registers one input as name=schema@file, where schema
// is comma-separated name:kind pairs (kinds: int, float, string, time,
// bool) and file is a text-codec file ("-" reads the sole stream from
// stdin). Example:
//
//	paceql -stream 'traffic=segment:int,ts:time,speed:float@traffic.csv' \
//	  'SELECT segment, AVG(speed) FROM traffic GROUP BY segment WINDOW 1 MINUTE ON ts'
//
//	paceql \
//	  -stream 'a=seg:int,ts:time,v:float@a.csv' \
//	  -stream 'b=seg:int,ts:time,v:float@b.csv' \
//	  'SELECT * FROM a UNION b WITH PACE ON MAX(a.ts, b.ts) 1 MINUTE'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/stream"
)

type streamFlags []string

func (s *streamFlags) String() string     { return strings.Join(*s, "; ") }
func (s *streamFlags) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var streams streamFlags
	flag.Var(&streams, "stream", "input stream as name=schema@file (repeatable)")
	punctEvery := flag.Int("punct-every", 100, "emit progress punctuation every N tuples (on a leading time attribute)")
	fuse := flag.Bool("fuse", true, "compile the plan: fuse stateless operator chains into flat kernels")
	explain := flag.Bool("explain", false, "print the (compiled) plan instead of running it")
	flag.Parse()
	if flag.NArg() != 1 || len(streams) == 0 {
		fmt.Fprintln(os.Stderr, "usage: paceql -stream name=schema@file ... 'QUERY'")
		os.Exit(2)
	}

	cat := plan.Catalog{}
	var closers []func() error
	for _, spec := range streams {
		name, src, closer, err := parseStreamSpec(spec, *punctEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		cat[name] = src
		if closer != nil {
			closers = append(closers, closer)
		}
	}
	defer func() {
		for _, c := range closers {
			_ = c()
		}
	}()

	b, result, err := plan.Parse(flag.Arg(0), cat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	outSchema := result.Schema()
	enc := stream.NewEncoder(os.Stdout, outSchema)
	sink := exec.NewCollector("stdout", outSchema)
	sink.Discard = true
	var encErr error
	sink.OnTuple = func(t stream.Tuple) {
		if encErr == nil {
			encErr = enc.Encode(t)
		}
	}
	result.Into(sink)
	if *fuse {
		b.Compile()
	}
	if *explain {
		if err := b.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(b.Explain())
		return
	}
	if err := b.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if err := enc.Flush(); err == nil {
		err = encErr
	}
	if encErr != nil {
		fmt.Fprintln(os.Stderr, "error:", encErr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "# schema: %s, %d tuples\n", outSchema, sink.Count())
}

func parseStreamSpec(spec string, punctEvery int) (string, exec.Source, func() error, error) {
	eq := strings.IndexByte(spec, '=')
	at := strings.LastIndexByte(spec, '@')
	if eq < 0 || at < eq {
		return "", nil, nil, fmt.Errorf("bad -stream %q (want name=schema@file)", spec)
	}
	name := spec[:eq]
	schemaSpec := spec[eq+1 : at]
	file := spec[at+1:]

	var fields []stream.Field
	for _, part := range strings.Split(schemaSpec, ",") {
		nk := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(nk) != 2 {
			return "", nil, nil, fmt.Errorf("bad field %q in %q", part, spec)
		}
		kind, err := stream.ParseKind(nk[1])
		if err != nil {
			return "", nil, nil, err
		}
		fields = append(fields, stream.F(nk[0], kind))
	}
	schema, err := stream.NewSchema(fields...)
	if err != nil {
		return "", nil, nil, err
	}

	var r *os.File
	var closer func() error
	if file == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(file)
		if err != nil {
			return "", nil, nil, err
		}
		r = f
		closer = f.Close
	}
	src := exec.NewReaderSource(name, schema, r)
	src.FeedbackAware = true
	src.PunctEvery = punctEvery
	for i := 0; i < schema.Arity(); i++ {
		if schema.Field(i).Kind == stream.KindTime {
			src.PunctAttr = i
			break
		}
	}
	return name, src, closer, nil
}
