package main

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/stream"
)

var explainSchema = stream.MustSchema(
	stream.F("segment", stream.KindInt),
	stream.F("ts", stream.KindTime),
	stream.F("speed", stream.KindFloat),
)

// explainFor compiles a query exactly as `paceql -explain` does — parse,
// attach the stdout sink, Compile — and returns the rendered plan.
func explainFor(t *testing.T, query string) string {
	t.Helper()
	cat := plan.Catalog{"traffic": exec.NewSliceSource("traffic", explainSchema)}
	b, result, err := plan.Parse(query, cat)
	if err != nil {
		t.Fatal(err)
	}
	sink := exec.NewCollector("stdout", result.Schema())
	sink.Discard = true
	result.Into(sink)
	b.Compile()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	return b.Explain()
}

// TestExplainStandaloneKernel pins the stage-1 rendering: a stateless chain
// feeding a plain sink stays a standalone fused node whose kernel line is
// the flat step table.
func TestExplainStandaloneKernel(t *testing.T) {
	got := explainFor(t, "SELECT speed, segment FROM traffic WHERE speed >= 50")
	want := ` 0: source traffic
 1: fused(where+project) <- traffic[0]
      kernel: select where [speed>=50] | project project -> (speed:float, segment:int)
 2: stdout <- fused(where+project)[0]
`
	if got != want {
		t.Fatalf("stage-1 explain mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainPrefixKernel pins the stage-2 rendering: the same stateless
// prefix feeding a GROUP BY aggregate is absorbed into the aggregate's
// input port, and the kernel line names the prefix per input and the
// stateful consumer it hands survivors to — visibly distinct from a
// standalone kernel.
func TestExplainPrefixKernel(t *testing.T) {
	got := explainFor(t, "SELECT segment, AVG(speed) FROM traffic WHERE speed >= 50 GROUP BY segment WINDOW 1 MINUTE ON ts")
	want := ` 0: source traffic
 1: fused(where=>aggregate) <- traffic[0]
      kernel: prefix in0{select where [speed>=50]} => aggregate
 2: stdout <- fused(where=>aggregate)[0]
`
	if got != want {
		t.Fatalf("stage-2 explain mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}
