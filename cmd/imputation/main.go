// Command imputation runs Experiment 1 (Figures 5 and 6): the imputation
// query plan with and without feedback punctuation, reporting the fraction
// of imputed tuples that became useless and optionally dumping the
// output-pattern series behind the figures.
//
// Usage:
//
//	imputation [-tuples 5000] [-rate 2500] [-tolerance 40ms]
//	           [-service 1.4] [-series figure.tsv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	tuples := flag.Int("tuples", 5000, "stream length (paper: 5000)")
	rate := flag.Float64("rate", 2500, "arrival rate, tuples/second")
	tolerance := flag.Duration("tolerance", 40*time.Millisecond, "PACE divergence tolerance (stream time)")
	service := flag.Float64("service", 1.4, "imputation service time as a multiple of dirty-tuple inter-arrival")
	seriesDir := flag.String("series", "", "directory to write figure5.tsv / figure6.tsv series")
	flag.Parse()

	base := experiments.ImputationConfig{
		Tuples:          *tuples,
		Rate:            *rate,
		ToleranceMicros: tolerance.Microseconds(),
		ServiceFactor:   *service,
	}

	fmt.Println("=== Experiment 1: imputation query plan (paper §6, Figures 5 & 6) ===")
	for _, feedback := range []bool{false, true} {
		cfg := base
		cfg.Feedback = feedback
		res, err := experiments.RunImputation(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println()
		res.Report(os.Stdout)
		if *seriesDir != "" {
			name := "figure5.tsv"
			if feedback {
				name = "figure6.tsv"
			}
			path := *seriesDir + "/" + name
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			if err := res.Series.WriteTSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("  series written to        %s\n", path)
		}
	}
}
