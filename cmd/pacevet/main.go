// Command pacevet is the engine's invariant checker: a multichecker that
// runs the internal/lint analyzers (hotpathalloc, atomicfield,
// staterstate, dirtynote) over Go package patterns. It exits non-zero
// when any analyzer reports a finding, so CI treats invariant drift like
// a compile error.
//
// Usage:
//
//	go run ./cmd/pacevet [-json] [packages]
//
// With no packages it checks ./... . -json replaces the vet-style text
// output with a machine-readable array (one object per finding) for the
// chaos-fuzz nightly's artifact upload; the exit status is unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicfield"
	"repro/internal/lint/dirtynote"
	"repro/internal/lint/hotpathalloc"
	"repro/internal/lint/load"
	"repro/internal/lint/staterstate"
)

// analyzers is the suite, in report-grouping order.
var analyzers = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	atomicfield.Analyzer,
	staterstate.Analyzer,
	dirtynote.Analyzer,
}

// finding is one diagnostic resolved to a position, the unit of both
// output formats.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON (for CI artifact upload)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pacevet [-json] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	findings, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pacevet:", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "pacevet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func run(patterns []string) ([]finding, error) {
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		return nil, err
	}
	cwd, _ := os.Getwd()

	var findings []finding
	for _, a := range analyzers {
		var passes []*analysis.Pass
		for _, pkg := range pkgs {
			passes = append(passes, &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					file := pos.Filename
					if cwd != "" {
						if rel, err := filepath.Rel(cwd, file); err == nil {
							file = rel
						}
					}
					findings = append(findings, finding{
						File: file, Line: pos.Line, Col: pos.Column,
						Message: d.Message, Analyzer: d.Analyzer,
					})
				},
			})
		}
		switch {
		case a.RunProgram != nil:
			if err := a.RunProgram(passes); err != nil {
				return nil, fmt.Errorf("%s: %v", a.Name, err)
			}
		default:
			for _, p := range passes {
				if err := a.Run(p); err != nil {
					return nil, fmt.Errorf("%s: %v", a.Name, err)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
