// The -fuzz mode: seeded fault-schedule fuzzing of the supervised runtime.
//
// For each seed (and each mode: single-process and -dist) the driver
// derives a deterministic fault schedule (internal/chaos.Generate), runs a
// full supervised crash run under it in a subprocess, and asserts the
// robustness invariants:
//
//  1. crash ≡ clean — every RESULTS digest the chaos run prints equals the
//     clean (fault-free) run's digest, computed once per mode up front;
//  2. chain-aware restorability — after the run, every retained epoch
//     (single mode) and every committed DistManifest (dist mode) is
//     restored and replayed to completion in-process, and each replay's
//     digest must again equal the clean digest. A lineage the schedule
//     corrupted may be skipped (that is the degradation contract); a
//     corrupt lineage with no scheduled corruption fault is a bug.
//
// A failure prints the seed and its schedule; re-running with the same
// seed replays the same schedule — one-command reproduction.
package main

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"repro/internal/chaos"
	execpkg "repro/internal/exec"
	"repro/internal/snapshot"
)

// resultsRe extracts canonical digest lines from a supervised run's output.
var resultsRe = regexp.MustCompile(`(?m)^RESULTS .*$`)

// fuzzRunTimeout bounds one supervised subprocess — generous, because a
// schedule can stack several kills with restart backoff between them.
const fuzzRunTimeout = 5 * time.Minute

func modeName(dist bool) string {
	if dist {
		return "dist"
	}
	return "single"
}

// runFuzz drives -fuzz: clean baselines first, then the seed loop.
func runFuzz(o options) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	work := o.dir
	keep := work != ""
	if work == "" {
		if work, err = os.MkdirTemp("", "supervise-fuzz-"); err != nil {
			return err
		}
	}
	var deadline time.Time
	if o.fuzzTime > 0 {
		deadline = time.Now().Add(o.fuzzTime)
	}
	modes := []bool{false, true}

	// The workload is identical across seeds, so each mode's clean digest
	// is computed once and reused as the equality witness for every run
	// and every replayed epoch.
	clean := map[bool]string{}
	for _, dist := range modes {
		out, err := superviseRun(self, o, filepath.Join(work, "clean-"+modeName(dist)), 0, dist)
		if err != nil {
			return fmt.Errorf("fuzz: clean %s run: %w\n%s", modeName(dist), err, out)
		}
		res := resultsRe.FindAllString(out, -1)
		if len(res) != 1 {
			return fmt.Errorf("fuzz: clean %s run printed %d RESULTS lines:\n%s", modeName(dist), len(res), out)
		}
		clean[dist] = res[0]
		fmt.Printf("FUZZ clean %s digest: %s\n", modeName(dist), res[0])
	}

	ran := 0
	for s := o.seed; s < o.seed+uint64(o.fuzzSeeds); s++ {
		for _, dist := range modes {
			if !deadline.IsZero() && time.Now().After(deadline) {
				fmt.Printf("FUZZ stopping: time budget %v spent after %d runs\n", o.fuzzTime, ran)
				if !keep {
					os.RemoveAll(work)
				}
				return nil
			}
			if err := fuzzOne(self, o, work, s, dist, clean[dist]); err != nil {
				return err
			}
			ran++
		}
	}
	fmt.Printf("FUZZ PASS %d runs (%d seeds x %d modes, base seed %d)\n", ran, o.fuzzSeeds, len(modes), o.seed)
	if !keep {
		os.RemoveAll(work)
	}
	return nil
}

// fuzzOne runs one seeded schedule in one mode and verifies both
// invariants. On failure it prints the seed, the schedule, and the
// reproduction command before returning the error.
func fuzzOne(self string, o options, work string, seed uint64, dist bool, want string) error {
	p := chaos.Generate(seed, dist)
	dir := filepath.Join(work, fmt.Sprintf("%s-seed-%d", modeName(dist), seed))
	fail := func(format string, args ...any) error {
		fmt.Printf("FUZZ FAIL seed=%d mode=%s\n  schedule: %s\n  repro: supervise %s\n",
			seed, modeName(dist), p, strings.Join(superviseArgs(o, "<fresh-dir>", seed, dist), " "))
		return fmt.Errorf("fuzz: seed %d (%s): %s", seed, modeName(dist), fmt.Sprintf(format, args...))
	}
	out, err := superviseRun(self, o, dir, seed, dist)
	if err != nil {
		return fail("supervised run failed: %v\n%s", err, out)
	}
	res := resultsRe.FindAllString(out, -1)
	if len(res) == 0 {
		return fail("run printed no RESULTS line:\n%s", out)
	}
	// A kill can land between a RESULTS print and process exit, so a
	// restarted incarnation may legitimately print a second line — every
	// one of them must equal the clean digest.
	for _, r := range res {
		if r != want {
			return fail("digest diverged: %q != clean %q\n%s", r, want, out)
		}
	}
	var verified, skipped int
	if dist {
		verified, skipped, err = verifyDist(o, dir, want, p)
	} else {
		verified, skipped, err = verifySingle(o, dir, want, p)
	}
	if err != nil {
		return fail("chain verification: %v", err)
	}
	fmt.Printf("FUZZ PASS seed=%d mode=%s results=%d verified=%d skipped=%d [%s]\n",
		seed, modeName(dist), len(res), verified, skipped, p)
	return nil
}

// superviseArgs assembles the supervisor invocation for one chaos run —
// also what a failure prints as the repro command.
func superviseArgs(o options, dir string, seed uint64, dist bool) []string {
	args := []string{
		"-dir", dir,
		"-interval", o.interval.String(),
		"-full-every", fmt.Sprint(o.fullEvery),
		"-retain", fmt.Sprint(o.retain),
		"-compact-every", fmt.Sprint(o.compactEvery),
		"-parts", fmt.Sprint(o.parts),
		"-minutes", fmt.Sprint(o.minutes),
		"-max-restarts", fmt.Sprint(o.maxRestarts),
		"-restart-backoff", o.backoff.String(),
		"-ack-timeout", o.ackTimeout.String(),
		"-write-timeout", o.writeTimeout.String(),
		"-read-timeout", o.readTimeout.String(),
		"-fuse=" + fmt.Sprint(o.fuse),
	}
	if dist {
		args = append(args, "-dist")
	}
	if seed != 0 {
		args = append(args, "-chaos-seed", fmt.Sprint(seed))
	}
	return args
}

// superviseRun executes one supervised run (seed 0 = clean) with a
// watchdog, returning its combined output.
func superviseRun(self string, o options, dir string, seed uint64, dist bool) (string, error) {
	cmd := exec.Command(self, superviseArgs(o, dir, seed, dist)...)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() { out, err = cmd.CombinedOutput(); close(done) }()
	select {
	case <-done:
	case <-time.After(fuzzRunTimeout):
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		<-done
		return string(out), fmt.Errorf("run exceeded %v watchdog", fuzzRunTimeout)
	}
	return string(out), err
}

// verifySingle is the chain-aware check for single-process runs: every
// retained epoch restores and replays to the clean digest. Corrupt
// lineages are skippable only when the schedule injected corruption.
func verifySingle(o options, dir string, want string, p *chaos.Plan) (verified, skipped int, err error) {
	d, err := snapshot.NewDir(dir)
	if err != nil {
		return 0, 0, err
	}
	chain := snapshot.NewChain(d)
	epochs, err := chain.Epochs()
	if err != nil {
		return 0, 0, err
	}
	if len(epochs) == 0 {
		return 0, 0, fmt.Errorf("no retained epochs to verify")
	}
	for _, ep := range epochs {
		snaps, err := chain.ChainFor(ep)
		if errors.Is(err, snapshot.ErrCorruptSnapshot) {
			if !p.SchedulesCorruption("") {
				return verified, skipped, fmt.Errorf("epoch %d corrupt with no scheduled corruption fault: %w", ep, err)
			}
			skipped++
			continue
		}
		if err != nil {
			return verified, skipped, fmt.Errorf("epoch %d: %w", ep, err)
		}
		b, sink := buildPlan(o)
		if err := b.Err(); err != nil {
			return verified, skipped, err
		}
		if err := b.Graph().RestoreChain(snaps); err != nil {
			return verified, skipped, fmt.Errorf("restore epoch %d: %w", ep, err)
		}
		if err := b.Run(); err != nil {
			return verified, skipped, fmt.Errorf("replay from epoch %d: %w", ep, err)
		}
		if line := digestLine(sink); line != want {
			return verified, skipped, fmt.Errorf("replay from epoch %d diverged: %q != clean %q", ep, line, want)
		}
		verified++
	}
	return verified, skipped, nil
}

// verifyDist is the chain-aware check for distributed runs: every
// committed DistManifest restores both subplans at its epoch and replays
// the pair in-process over a pipe to the clean digest.
func verifyDist(o options, dir string, want string, p *chaos.Plan) (verified, skipped int, err error) {
	cd, err := snapshot.NewDir(filepath.Join(dir, "coord"))
	if err != nil {
		return 0, 0, err
	}
	fd, err := snapshot.NewDir(filepath.Join(dir, "follow"))
	if err != nil {
		return 0, 0, err
	}
	coordChain, followChain := snapshot.NewChain(cd), snapshot.NewChain(fd)
	log := snapshot.NewDistLog(cd)
	epochs, err := log.Epochs()
	if err != nil {
		return 0, 0, err
	}
	if len(epochs) == 0 {
		// A dropped follower ack stalls each affected epoch for the full
		// ack timeout; on a short run that can abandon every epoch — the
		// results were still exact, there is just nothing to replay.
		if p.StarvesCommits() {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("no committed manifests to verify")
	}
	// Corruption faults in dist schedules target the coordinator's backend
	// (shared by its chain and the manifest log).
	skippable := func(err error) bool {
		return errors.Is(err, snapshot.ErrCorruptSnapshot) && p.SchedulesCorruption("coord")
	}
	for _, ep := range epochs {
		m, err := log.At(ep)
		if err != nil {
			if skippable(err) {
				skipped++
				continue
			}
			return verified, skipped, fmt.Errorf("manifest %d: %w", ep, err)
		}
		line, err := replayPair(o, coordChain, followChain, m)
		if err != nil {
			if skippable(err) {
				skipped++
				continue
			}
			return verified, skipped, fmt.Errorf("manifest %d: %w", ep, err)
		}
		if line != want {
			return verified, skipped, fmt.Errorf("replay of manifest %d diverged: %q != clean %q", ep, line, want)
		}
		verified++
	}
	return verified, skipped, nil
}

// replayPair restores both halves of the distributed plan at one committed
// manifest and runs them to completion in-process over a pipe (no
// checkpoints fire during verification, so no control connection is
// needed), returning the follower's digest line.
func replayPair(o options, coordChain, followChain *snapshot.Chain, m *snapshot.DistManifest) (string, error) {
	partEpoch := func(name string) (int64, error) {
		for _, pt := range m.Parts {
			if pt.Part == name {
				return pt.Epoch, nil
			}
		}
		return 0, fmt.Errorf("manifest %d has no part %q", m.Epoch, name)
	}
	c1, c2 := net.Pipe()
	bc, _ := buildCoordPlan(o, c1)
	bf, sink := buildFollowPlan(o, c2)
	if err := bc.Err(); err != nil {
		return "", err
	}
	if err := bf.Err(); err != nil {
		return "", err
	}
	for _, part := range []struct {
		name  string
		chain *snapshot.Chain
		g     *execpkg.Graph
	}{
		{"coord", coordChain, bc.Graph()},
		{"follow", followChain, bf.Graph()},
	} {
		ep, err := partEpoch(part.name)
		if err != nil {
			return "", err
		}
		snaps, err := part.chain.ChainFor(ep)
		if err != nil {
			return "", fmt.Errorf("part %s epoch %d: %w", part.name, ep, err)
		}
		if err := part.g.RestoreChain(snaps); err != nil {
			return "", fmt.Errorf("part %s epoch %d: %w", part.name, ep, err)
		}
	}
	coordErr := make(chan error, 1)
	go func() { coordErr <- bc.Run() }()
	ferr := bf.Run()
	if cerr := <-coordErr; cerr != nil {
		return "", fmt.Errorf("coordinator replay: %w", cerr)
	}
	if ferr != nil {
		return "", fmt.Errorf("follower replay: %w", ferr)
	}
	return digestLine(sink), nil
}
