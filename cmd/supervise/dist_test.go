package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestDistSuperviseKill9 is the real two-process acceptance test: the
// supervised coordinator/follower pair runs over loopback TCP, the
// coordinator SIGKILLs itself mid-epoch after two committed manifests, the
// supervisor restarts the pair, both subplans restore from the last
// committed distributed cut, and the follower's canonical result digest is
// identical to an uninterrupted pair's.
func TestDistSuperviseKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs two supervised processes")
	}
	bin := filepath.Join(t.TempDir(), "supervise")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	run := func(name string, extra ...string) string {
		t.Helper()
		dir := filepath.Join(t.TempDir(), name)
		args := append([]string{"-dist", "-dir", dir, "-minutes", "20"}, extra...)
		cmd := exec.Command(bin, args...)
		done := make(chan struct{})
		var out []byte
		var err error
		go func() { out, err = cmd.CombinedOutput(); close(done) }()
		select {
		case <-done:
		case <-time.After(120 * time.Second):
			cmd.Process.Kill()
			t.Fatalf("%s run timed out", name)
		}
		if err != nil {
			t.Fatalf("%s run: %v\n%s", name, err, out)
		}
		return string(out)
	}

	clean := run("clean")
	crash := run("crash", "-crash-after-epochs", "2")

	results := regexp.MustCompile(`(?m)^RESULTS .*$`)
	cleanRes := results.FindAllString(clean, -1)
	crashRes := results.FindAllString(crash, -1)
	if len(cleanRes) != 1 {
		t.Fatalf("clean run printed %d RESULTS lines:\n%s", len(cleanRes), clean)
	}
	if len(crashRes) != 1 {
		t.Fatalf("crashed run printed %d RESULTS lines (a crashed incarnation must not report partial results):\n%s", len(crashRes), crash)
	}
	if cleanRes[0] != crashRes[0] {
		t.Fatalf("crashed-then-restored digest %q != clean digest %q", crashRes[0], cleanRes[0])
	}
	for _, want := range []string{
		"CHILD self-destructing",              // the kill -9 actually happened
		"COORD restored from committed epoch", // both parts restored the committed cut
		"FOLLOW restored from committed epoch",
		"SUPERVISOR completed restarts=",
	} {
		if !strings.Contains(crash, want) {
			t.Errorf("crashed run log missing %q:\n%s", want, crash)
		}
	}
	if strings.Contains(clean, "restored from committed") {
		t.Error("clean run should cold start")
	}
	_ = os.Remove(bin)
}
