package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFuzzSmoke runs a bounded slice of the seeded chaos fuzzer end to
// end: two seeds, both modes, real subprocesses, real kills, and the
// chain-aware verification replaying every retained epoch and every
// committed manifest. It is the acceptance test for the -fuzz mode itself;
// nightly CI runs many more seeds.
func TestFuzzSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs supervised chaos subprocesses")
	}
	bin := filepath.Join(t.TempDir(), "supervise")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	dir := t.TempDir()
	cmd := exec.Command(bin, "-fuzz", "-dir", dir,
		"-seed", "1", "-fuzz-seeds", "2",
		"-minutes", "8", "-ack-timeout", "2s", "-max-restarts", "8")
	done := make(chan struct{})
	var out []byte
	var err error
	go func() { out, err = cmd.CombinedOutput(); close(done) }()
	select {
	case <-done:
	case <-time.After(300 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("fuzz run timed out")
	}
	if err != nil {
		t.Fatalf("fuzz: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "FUZZ PASS 4 runs (2 seeds x 2 modes, base seed 1)") {
		t.Errorf("missing final PASS summary:\n%s", s)
	}
	for _, want := range []string{
		"FUZZ clean single digest: RESULTS",
		"FUZZ clean dist digest: RESULTS",
		"FUZZ PASS seed=1 mode=single",
		"FUZZ PASS seed=2 mode=dist",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestFuzzScheduleDeterminism: the -fuzz repro contract hangs on the
// schedule being a pure function of the seed, and on the supervisor
// forwarding the same seed and incarnation to every child. Spot-check the
// derivation the children perform.
func TestFuzzScheduleDeterminism(t *testing.T) {
	o := options{chaosSeed: 7, dist: true}
	a, b := o.chaosPlan(), o.chaosPlan()
	if a.String() != b.String() {
		t.Fatalf("same options derived different schedules:\n%s\n%s", a, b)
	}
	// A child sees -role instead of -dist; it must land on the same plan.
	c := options{chaosSeed: 7, role: "follow"}
	if got := c.chaosPlan(); got.String() != a.String() {
		t.Fatalf("child derived a different schedule than its supervisor:\n%s\n%s", got, a)
	}
	if off := (options{}).chaosPlan(); off != nil {
		t.Fatalf("chaos off must derive a nil plan, got %s", off)
	}
}
