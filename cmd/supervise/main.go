// Command supervise runs a partitioned aggregate plan under periodic
// two-phase checkpoints and restarts it from the latest checkpoint after a
// crash — the fault-tolerant runtime the ROADMAP's "checkpoint scheduling
// & retention" item asks for.
//
// Two modes share one binary:
//
//   - supervisor (default): spawns itself with -child, restarts it on any
//     non-zero exit (kill -9 included) up to -max-restarts, and verifies
//     the surviving run completed;
//   - -child: one plan incarnation — restore from the newest epoch in -dir
//     if one exists, then run under RunCheckpointed (incremental deltas,
//     periodic fulls, keep-last-N retention).
//
// -crash-after-epochs N makes the FIRST incarnation SIGKILL itself once N
// checkpoint epochs are durable, so
//
//	supervise -dir /tmp/ck -crash-after-epochs 3
//
// demonstrates the whole loop: run → crash → auto-restart → recover →
// complete. The final line (results count + checksum over the canonical
// result set) is identical with and without the crash; CI asserts exactly
// that.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	execpkg "repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/op"
	"repro/internal/plan"
	"repro/internal/snapshot"
	"repro/internal/window"
	"repro/internal/work"
)

type options struct {
	dir          string
	interval     time.Duration
	fullEvery    int
	retain       int
	compactEvery int
	parts        int
	minutes      int
	crashAfter   int
	maxRestarts  int
	child        bool
}

func main() {
	var o options
	flag.StringVar(&o.dir, "dir", "", "checkpoint chain directory (required)")
	flag.DurationVar(&o.interval, "interval", 50*time.Millisecond, "checkpoint interval")
	flag.IntVar(&o.fullEvery, "full-every", 4, "every k-th checkpoint is a full snapshot (others are deltas)")
	flag.IntVar(&o.retain, "retain", 4, "keep the newest N epochs (0 = all)")
	flag.IntVar(&o.compactEvery, "compact-every", 0, "pack the chain every k checkpoints (0 = never)")
	flag.IntVar(&o.parts, "parts", 2, "aggregate partitions")
	flag.IntVar(&o.minutes, "minutes", 30, "stream-minutes of synthetic traffic to process")
	flag.IntVar(&o.crashAfter, "crash-after-epochs", 0, "SIGKILL the first incarnation after N durable epochs (0 = never)")
	flag.IntVar(&o.maxRestarts, "max-restarts", 5, "supervisor: give up after N restarts")
	flag.BoolVar(&o.child, "child", false, "run one plan incarnation (internal)")
	flag.Parse()
	if o.dir == "" {
		fmt.Fprintln(os.Stderr, "supervise: -dir is required")
		os.Exit(2)
	}
	var err error
	if o.child {
		err = runChild(o)
	} else {
		err = runSupervisor(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "supervise:", err)
		os.Exit(1)
	}
}

// runSupervisor restarts the child until it completes.
func runSupervisor(o options) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	restarts := 0
	for {
		args := []string{"-child",
			"-dir", o.dir,
			"-interval", o.interval.String(),
			"-full-every", fmt.Sprint(o.fullEvery),
			"-retain", fmt.Sprint(o.retain),
			"-compact-every", fmt.Sprint(o.compactEvery),
			"-parts", fmt.Sprint(o.parts),
			"-minutes", fmt.Sprint(o.minutes),
		}
		if restarts == 0 && o.crashAfter > 0 {
			args = append(args, "-crash-after-epochs", fmt.Sprint(o.crashAfter))
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		start := time.Now()
		err := cmd.Run()
		if err == nil {
			fmt.Printf("SUPERVISOR completed restarts=%d\n", restarts)
			return nil
		}
		fmt.Printf("SUPERVISOR child exited after %v (%v); restarting from latest checkpoint\n",
			time.Since(start).Round(time.Millisecond), err)
		restarts++
		if restarts > o.maxRestarts {
			return fmt.Errorf("gave up after %d restarts", o.maxRestarts)
		}
	}
}

// runChild runs one incarnation: restore-from-latest, then the plan under
// periodic checkpoints.
func runChild(o options) error {
	dir, err := snapshot.NewDir(o.dir)
	if err != nil {
		return err
	}
	// Async writes: the checkpoint loop never stalls on the filesystem;
	// Flush on the way out surfaces any write failure.
	async := snapshot.NewAsync(dir)
	defer async.Close()
	chain := snapshot.NewChain(async)

	b, sink := buildPlan(o)
	restored, err := b.RestoreLatest(chain)
	if err != nil {
		return err
	}
	if restored {
		ep, _, _ := chain.LatestEpoch()
		fmt.Printf("CHILD restored from epoch %d\n", ep)
	} else {
		fmt.Println("CHILD cold start")
	}

	if o.crashAfter > 0 {
		go crashAfterEpochs(chain, o.crashAfter)
	}

	runErr, chkErr := b.RunCheckpointed(chain, execpkg.CheckpointPolicy{
		Interval:     o.interval,
		FullEvery:    o.fullEvery,
		Retain:       o.retain,
		CompactEvery: o.compactEvery,
	})
	if runErr != nil {
		return runErr
	}
	if chkErr != nil {
		return fmt.Errorf("checkpointing: %w", chkErr)
	}
	if err := async.Flush(); err != nil {
		return err
	}
	count, sum := canonicalDigest(sink)
	fmt.Printf("RESULTS count=%d checksum=%08x\n", count, sum)
	return nil
}

// crashAfterEpochs SIGKILLs the process once the chain holds the given
// number of epochs — a genuine kill -9, nothing is flushed or unwound.
func crashAfterEpochs(chain *snapshot.Chain, n int) {
	for {
		time.Sleep(5 * time.Millisecond)
		ep, ok, err := chain.LatestEpoch()
		if err == nil && ok && ep >= int64(n) {
			fmt.Printf("CHILD self-destructing at epoch %d (kill -9)\n", ep)
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
}

// buildPlan assembles the demo workload: deterministic synthetic traffic →
// Parallel(parts) per-segment average → recording sink. Every node is a
// snapshot.Stater, so the whole plan recovers.
func buildPlan(o options) (*plan.Builder, *execpkg.Collector) {
	const minute = int64(60_000_000)
	src := &gen.TrafficSource{Config: gen.TrafficConfig{
		Segments:            6,
		DetectorsPerSegment: 10,
		Duration:            int64(o.minutes) * minute,
		NullRate:            0.1,
		Noise:               3,
		Seed:                42,
		// Cost paces ingest (~500µs/tuple) so the run spans seconds and
		// checkpoints land mid-stream instead of after a millisecond blast.
		Cost: work.UnitsFor(500 * time.Microsecond),
	}}
	b := plan.New()
	out := b.Source(src).Parallel("part", o.parts, []string{"segment"}, func(ss plan.Stream) plan.Stream {
		return ss.Through(&op.Aggregate{OpName: "agg", In: gen.TrafficSchema, Kind: core.AggAvg,
			TsAttr: 2, ValAttr: 3, GroupBy: []int{0}, Window: window.Tumbling(minute),
			ValueName: "avg_speed", Mode: op.FeedbackExploit, Propagate: true})
	})
	sink := execpkg.NewCollector("sink", out.Schema())
	out.Into(sink)
	return b, sink
}

// canonicalDigest hashes the order-independent result set, the equality
// witness between crashed-and-recovered and uninterrupted runs.
func canonicalDigest(sink *execpkg.Collector) (int, uint32) {
	lines := []string{}
	for _, t := range sink.Tuples() {
		lines = append(lines, t.String())
	}
	sort.Strings(lines)
	h := fnv.New32a()
	h.Write([]byte(strings.Join(lines, "\n")))
	return len(lines), h.Sum32()
}
