// Command supervise runs a partitioned aggregate plan under periodic
// two-phase checkpoints and restarts it from the latest checkpoint after a
// crash — the fault-tolerant runtime the ROADMAP's "checkpoint scheduling
// & retention" item asks for.
//
// Three modes share one binary:
//
//   - supervisor (default): spawns itself with -child, restarts it on any
//     non-zero exit (kill -9 included) up to -max-restarts with exponential
//     backoff, and verifies the surviving run completed;
//   - -dist supervisor: the two-process mode — the plan is split across a
//     producer (checkpoint coordinator) and a consumer (follower) process
//     joined by a TCP data edge plus a control connection; checkpoint
//     barriers cross the wire so both subplans cut the same epoch, each
//     persists its own chain, and the coordinator commits a distributed
//     manifest only after the follower's ack. If either process dies, the
//     supervisor kills the other and restarts the pair from the newest
//     committed manifest;
//   - -child: one plan incarnation — single-process (-role ""), or one half
//     of the distributed pair (-role coord / -role follow).
//
// -crash-after-epochs N makes the FIRST incarnation SIGKILL itself once N
// checkpoint epochs are durable (committed manifests, in dist mode), so
//
//	supervise -dist -dir /tmp/ck -crash-after-epochs 3
//
// demonstrates the whole loop: run → kill -9 mid-epoch → uncommitted epoch
// abandoned → auto-restart → both subplans recover from the last committed
// cut → complete. The final line (results count + checksum over the
// canonical result set) is identical with and without the crash; CI asserts
// exactly that.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	execpkg "repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/op"
	"repro/internal/plan"
	"repro/internal/punct"
	"repro/internal/remote"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/window"
	"repro/internal/work"
)

type options struct {
	dir          string
	interval     time.Duration
	fullEvery    int
	retain       int
	compactEvery int
	parts        int
	minutes      int
	crashAfter   int
	maxRestarts  int
	backoff      time.Duration
	child        bool
	dist         bool
	role         string
	addr         string
	ackTimeout   time.Duration
	writeTimeout time.Duration
	readTimeout  time.Duration
	chaosSeed    uint64
	chaosInc     int
	fuse         bool
	fuzz         bool
	seed         uint64
	fuzzSeeds    int
	fuzzTime     time.Duration
	telemetry    string
}

// chaosPlan derives this run's fault schedule (nil when chaos is off). The
// schedule depends only on the seed and the mode, never on which child asks.
func (o options) chaosPlan() *chaos.Plan {
	if o.chaosSeed == 0 {
		return nil
	}
	return chaos.Generate(o.chaosSeed, o.dist || o.role != "")
}

func main() {
	var o options
	flag.StringVar(&o.dir, "dir", "", "checkpoint chain directory (required)")
	flag.DurationVar(&o.interval, "interval", 50*time.Millisecond, "checkpoint interval")
	flag.IntVar(&o.fullEvery, "full-every", 4, "every k-th checkpoint is a full snapshot (others are deltas)")
	flag.IntVar(&o.retain, "retain", 4, "keep the newest N epochs (0 = all)")
	flag.IntVar(&o.compactEvery, "compact-every", 0, "pack the chain every k checkpoints (0 = never)")
	flag.IntVar(&o.parts, "parts", 2, "aggregate partitions")
	flag.IntVar(&o.minutes, "minutes", 30, "stream-minutes of synthetic traffic to process")
	flag.IntVar(&o.crashAfter, "crash-after-epochs", 0, "SIGKILL the first incarnation after N durable epochs (0 = never)")
	flag.IntVar(&o.maxRestarts, "max-restarts", 5, "supervisor: give up after N restarts")
	flag.DurationVar(&o.backoff, "restart-backoff", 100*time.Millisecond, "supervisor: initial restart delay (doubles per crashing restart, resets after a healthy run)")
	flag.BoolVar(&o.child, "child", false, "run one plan incarnation (internal)")
	flag.BoolVar(&o.dist, "dist", false, "two-process mode: producer/coordinator + consumer/follower over TCP")
	flag.StringVar(&o.role, "role", "", "child role in dist mode: coord or follow (internal)")
	flag.StringVar(&o.addr, "addr", "", "dist mode: coordinator listen address (internal; supervisor picks one)")
	flag.DurationVar(&o.ackTimeout, "ack-timeout", 10*time.Second, "dist mode: abandon an epoch when follower acks do not arrive in time")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 30*time.Second, "dist mode: remote sink write deadline (0 = none)")
	flag.DurationVar(&o.readTimeout, "read-timeout", 30*time.Second, "dist mode: remote source idle read deadline (0 = none)")
	flag.Uint64Var(&o.chaosSeed, "chaos-seed", 0, "fault-injection schedule seed (0 = chaos off; see internal/chaos)")
	flag.IntVar(&o.chaosInc, "chaos-incarnation", 0, "chaos: restart generation of this child (internal)")
	flag.BoolVar(&o.fuse, "fuse", true, "compile the plan: fuse stateless operator chains into flat kernels (must match between the run that wrote a checkpoint and the run restoring it)")
	flag.BoolVar(&o.fuzz, "fuzz", false, "run seeded chaos schedules (single-process and -dist) and verify crash ≡ clean plus every retained epoch")
	flag.Uint64Var(&o.seed, "seed", 1, "fuzz: base seed; schedules seed..seed+fuzz-seeds-1 run per mode")
	flag.IntVar(&o.fuzzSeeds, "fuzz-seeds", 4, "fuzz: seeds per mode")
	flag.DurationVar(&o.fuzzTime, "fuzz-time", 0, "fuzz: stop starting new seeds after this long (0 = no cap)")
	flag.StringVar(&o.telemetry, "telemetry-addr", "", "serve /metrics, /statusz, /epochz, /tracez and pprof on this address (single child and dist coordinator; empty = off)")
	flag.Parse()
	if o.dir == "" && !o.fuzz {
		fmt.Fprintln(os.Stderr, "supervise: -dir is required")
		os.Exit(2)
	}
	var err error
	switch {
	case o.child && o.role == "coord":
		err = runChildCoord(o)
	case o.child && o.role == "follow":
		err = runChildFollow(o)
	case o.child:
		err = runChild(o)
	case o.fuzz:
		err = runFuzz(o)
	case o.dist:
		err = runSupervisorDist(o)
	default:
		err = runSupervisor(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "supervise:", err)
		os.Exit(1)
	}
}

// logEvent writes one structured log line: a stable message prefix (CI and
// the integration tests grep these) followed by key=value fields. Values
// containing whitespace are quoted. The RESULTS digest line bypasses this —
// its format is the cross-run equality witness and stays byte-identical
// (digestLine).
func logEvent(msg string, kvs ...any) {
	var sb strings.Builder
	sb.WriteString(msg)
	for i := 0; i+1 < len(kvs); i += 2 {
		v := fmt.Sprint(kvs[i+1])
		if strings.ContainsAny(v, " \t") {
			v = strconv.Quote(v)
		}
		fmt.Fprintf(&sb, " %v=%s", kvs[i], v)
	}
	fmt.Println(sb.String())
}

// serveTelemetry attaches a telemetry sink to the plan and starts the
// introspection server when -telemetry-addr is set; the returned closer is
// a no-op otherwise. The control-plane tracer is switched on: supervised
// runs are demos and debugging sessions, where /tracez earning its keep
// beats the (bounded, off-hot-path) recording cost.
func serveTelemetry(o options, role string, b *plan.Builder) (func(), error) {
	if o.telemetry == "" {
		return func() {}, nil
	}
	t := telemetry.New()
	t.Tracer.SetEnabled(true)
	b.EnableTelemetry(t)
	srv, err := telemetry.Serve(o.telemetry, t)
	if err != nil {
		return nil, err
	}
	logEvent("TELEMETRY serving", "addr", srv.Addr(), "role", role, "seed", o.chaosSeed, "incarnation", o.chaosInc)
	return func() { srv.Close() }, nil
}

// backoff is the supervisor's restart pacing: exponential on consecutive
// crashing restarts (so a child that dies on startup cannot burn
// max-restarts in milliseconds), reset once a child ran long enough to have
// made progress.
type backoff struct {
	base, cur time.Duration
}

// healthyRun is how long a child must survive for its crash to count as
// fresh (resetting the backoff) rather than part of a crash loop.
const healthyRun = 2 * time.Second

func newBackoff(base time.Duration) *backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	return &backoff{base: base, cur: base}
}

// wait sleeps before the next restart and advances the schedule; ran is how
// long the crashed incarnation lived.
func (b *backoff) wait(ran time.Duration) {
	if ran >= healthyRun {
		b.cur = b.base
	}
	logEvent("SUPERVISOR backing off before restart", "delay", b.cur)
	time.Sleep(b.cur)
	if b.cur *= 2; b.cur > 5*time.Second {
		b.cur = 5 * time.Second
	}
}

// childArgs assembles the flags shared by every child incarnation.
func (o options) childArgs(role string) []string {
	args := []string{"-child",
		"-dir", o.dir,
		"-interval", o.interval.String(),
		"-full-every", fmt.Sprint(o.fullEvery),
		"-retain", fmt.Sprint(o.retain),
		"-compact-every", fmt.Sprint(o.compactEvery),
		"-parts", fmt.Sprint(o.parts),
		"-minutes", fmt.Sprint(o.minutes),
		"-fuse=" + fmt.Sprint(o.fuse),
	}
	if role != "" {
		args = append(args,
			"-role", role,
			"-addr", o.addr,
			"-ack-timeout", o.ackTimeout.String(),
			"-write-timeout", o.writeTimeout.String(),
			"-read-timeout", o.readTimeout.String(),
		)
	}
	// Incarnation always rides along (it labels the structured logs even
	// without chaos); the schedule seed only when chaos is on.
	args = append(args, "-chaos-incarnation", fmt.Sprint(o.chaosInc))
	if o.chaosSeed != 0 {
		args = append(args, "-chaos-seed", fmt.Sprint(o.chaosSeed))
	}
	// The follower never gets the telemetry address: both halves of the dist
	// pair share one flag set and two listeners on one address would collide.
	if o.telemetry != "" && role != "follow" {
		args = append(args, "-telemetry-addr", o.telemetry)
	}
	return args
}

// runSupervisor restarts the single-process child until it completes.
func runSupervisor(o options) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	restarts := 0
	bo := newBackoff(o.backoff)
	for {
		o.chaosInc = restarts
		args := o.childArgs("")
		if restarts == 0 && o.crashAfter > 0 {
			args = append(args, "-crash-after-epochs", fmt.Sprint(o.crashAfter))
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		start := time.Now()
		err := cmd.Run()
		if err == nil {
			logEvent(fmt.Sprintf("SUPERVISOR completed restarts=%d", restarts),
				"role", "supervisor", "seed", o.chaosSeed)
			return nil
		}
		ran := time.Since(start)
		logEvent("SUPERVISOR child exited; restarting from latest checkpoint",
			"role", "supervisor", "seed", o.chaosSeed, "incarnation", restarts,
			"ran", ran.Round(time.Millisecond), "err", err)
		restarts++
		if restarts > o.maxRestarts {
			return fmt.Errorf("gave up after %d restarts", o.maxRestarts)
		}
		bo.wait(ran)
	}
}

// runSupervisorDist supervises the two-process pair: a coordinator child
// (producer subplan, manifest commits) and a follower child (consumer
// subplan, result digest). If either dies, the other is killed and the pair
// restarts from the newest committed manifest.
func runSupervisorDist(o options) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	if o.addr == "" {
		addr, err := freeLoopbackAddr()
		if err != nil {
			return err
		}
		o.addr = addr
	}
	restarts := 0
	bo := newBackoff(o.backoff)
	for {
		o.chaosInc = restarts
		coordArgs := o.childArgs("coord")
		if restarts == 0 && o.crashAfter > 0 {
			coordArgs = append(coordArgs, "-crash-after-epochs", fmt.Sprint(o.crashAfter))
		}
		coord := exec.Command(self, coordArgs...)
		follow := exec.Command(self, o.childArgs("follow")...)
		for _, c := range []*exec.Cmd{coord, follow} {
			c.Stdout = os.Stdout
			c.Stderr = os.Stderr
		}
		start := time.Now()
		if err := coord.Start(); err != nil {
			return err
		}
		if err := follow.Start(); err != nil {
			coord.Process.Kill()
			coord.Wait()
			return err
		}
		// Wait for either child; when one dies with an error the other is
		// torn down too — its half of the plan cannot complete alone, and a
		// clean pair restart is the recovery unit.
		done := make(chan error, 2)
		go func() { done <- coord.Wait() }()
		go func() { done <- follow.Wait() }()
		err1 := <-done
		if err1 != nil {
			coord.Process.Signal(syscall.SIGKILL)
			follow.Process.Signal(syscall.SIGKILL)
		}
		err2 := <-done
		if err1 == nil && err2 == nil {
			logEvent(fmt.Sprintf("SUPERVISOR completed restarts=%d", restarts),
				"role", "supervisor", "seed", o.chaosSeed)
			return nil
		}
		ran := time.Since(start)
		logEvent("SUPERVISOR pair exited; restarting both from latest committed manifest",
			"role", "supervisor", "seed", o.chaosSeed, "incarnation", restarts,
			"ran", ran.Round(time.Millisecond), "err1", err1, "err2", err2)
		restarts++
		if restarts > o.maxRestarts {
			return fmt.Errorf("gave up after %d restarts", o.maxRestarts)
		}
		bo.wait(ran)
	}
}

// freeLoopbackAddr reserves a loopback port by binding and releasing it;
// the children re-bind it. The window between release and re-bind is racy
// in principle but safe against ourselves.
func freeLoopbackAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// openChain sets up the async-backed chain (and backend) under dir. Chaos
// faults, if any, wrap the durable backend UNDER the async writer, so an
// injected write failure poisons the queue exactly like a dying disk.
func openChain(dir string, faults []chaos.Fault) (*snapshot.Async, *snapshot.Chain, error) {
	d, err := snapshot.NewDir(dir)
	if err != nil {
		return nil, nil, err
	}
	async := snapshot.NewAsync(chaos.WrapBackend(d, faults))
	return async, snapshot.NewChain(async), nil
}

// armKills starts one watcher per scheduled kill fault for this
// incarnation: once the process's durable progress reaches the fault's
// epoch threshold, wait the fault's delay (which varies the phase of the
// next epoch the kill lands in) and SIGKILL.
func armKills(p *chaos.Plan, part string, inc int, progress func() (int64, bool)) {
	if p == nil {
		return
	}
	for _, f := range p.Kills(part, inc) {
		go func(f chaos.Fault) {
			for {
				time.Sleep(5 * time.Millisecond)
				if v, ok := progress(); ok && v >= f.Epoch {
					time.Sleep(f.Delay)
					logEvent("CHAOS firing kill -9", "fault", f, "progress", v,
						"role", part, "incarnation", inc)
					syscall.Kill(os.Getpid(), syscall.SIGKILL)
				}
			}
		}(f)
	}
}

// logSkips reports restore degradation: epochs whose stored lineage was
// corrupt and were skipped in favor of an older intact cut.
func logSkips(who string, skipped []snapshot.Fallback) {
	for _, sk := range skipped {
		logEvent(who+" restore degraded: skipped corrupt epoch", "epoch", sk.Epoch, "err", sk.Err)
	}
}

// runChild runs one single-process incarnation: restore-from-latest, then
// the plan under periodic checkpoints.
func runChild(o options) error {
	cp := o.chaosPlan()
	// Async writes: the checkpoint loop never stalls on the filesystem;
	// Flush on the way out surfaces any write failure.
	async, chain, err := openChain(o.dir, cp.ChainFaults("", o.chaosInc))
	if err != nil {
		return err
	}
	defer async.Close()

	b, sink := buildPlan(o)
	stopTel, err := serveTelemetry(o, "child", b)
	if err != nil {
		return err
	}
	defer stopTel()
	restored, skipped, err := b.RestoreLatestIntact(chain)
	if err != nil {
		return err
	}
	logSkips("CHILD", skipped)
	if restored {
		ep, _, _ := chain.LatestEpoch()
		logEvent(fmt.Sprintf("CHILD restored from epoch %d", ep),
			"role", "child", "seed", o.chaosSeed, "incarnation", o.chaosInc, "epoch", ep)
	} else {
		logEvent("CHILD cold start", "role", "child", "seed", o.chaosSeed, "incarnation", o.chaosInc)
	}

	chainProgress := func() (int64, bool) {
		ep, ok, err := chain.LatestEpoch()
		return ep, err == nil && ok
	}
	if o.crashAfter > 0 {
		go crashWhen(chainProgress, o.crashAfter)
	}
	armKills(cp, "", o.chaosInc, chainProgress)

	runErr, chkErr := b.RunCheckpointed(chain, policyOf(o))
	if runErr != nil {
		return runErr
	}
	if chkErr != nil {
		return fmt.Errorf("checkpointing: %w", chkErr)
	}
	if err := async.Flush(); err != nil {
		return err
	}
	fmt.Println(digestLine(sink))
	return nil
}

func policyOf(o options) execpkg.CheckpointPolicy {
	return execpkg.CheckpointPolicy{
		Interval:     o.interval,
		FullEvery:    o.fullEvery,
		Retain:       o.retain,
		CompactEvery: o.compactEvery,
	}
}

// Connection tags: the follower dials the coordinator twice on one port and
// labels each connection with its purpose.
const (
	tagControl = 'C'
	tagData    = 'D'
)

// runChildCoord runs the producer half: traffic source → filter → remote
// sink, as the distributed checkpoint coordinator. It listens on -addr for
// the follower's control and data connections.
func runChildCoord(o options) error {
	cp := o.chaosPlan()
	async, chain, err := openChain(filepath.Join(o.dir, "coord"), cp.ChainFaults("coord", o.chaosInc))
	if err != nil {
		return err
	}
	defer async.Close()
	log := snapshot.NewDistLog(chain.Backend())

	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	defer l.Close()
	conns, err := acceptTagged(l, tagControl, tagData)
	if err != nil {
		return err
	}
	ctrl, data := conns[0], conns[1]
	ctrl = chaos.WrapConn(ctrl, cp.ConnFaults("coord", o.chaosInc, chaos.TargetCtrl))
	data = chaos.WrapConn(data, cp.ConnFaults("coord", o.chaosInc, chaos.TargetData))
	defer ctrl.Close()

	b, _ := buildCoordPlan(o, data)
	stopTel, err := serveTelemetry(o, "coord", b)
	if err != nil {
		return err
	}
	defer stopTel()

	dc, err := b.DistCoordinate("coord", chain, log)
	if err != nil {
		return err
	}
	dc.AckTimeout = o.ackTimeout
	restored, err := dc.RestoreCommitted()
	if err != nil {
		return err
	}
	logSkips("COORD", dc.Degraded())
	if restored {
		logEvent(fmt.Sprintf("COORD restored from committed epoch %d", dc.CommittedEpoch()),
			"role", "coord", "seed", o.chaosSeed, "incarnation", o.chaosInc, "epoch", dc.CommittedEpoch())
	} else {
		logEvent("COORD cold start", "role", "coord", "seed", o.chaosSeed, "incarnation", o.chaosInc)
	}
	part, err := dc.AddFollower(ctrl)
	if err != nil {
		return err
	}
	logEvent("COORD follower joined", "part", part, "role", "coord")

	commitProgress := func() (int64, bool) {
		m, ok, err := log.Latest()
		if err != nil || !ok {
			return 0, false
		}
		return m.Epoch, true
	}
	if o.crashAfter > 0 {
		go crashWhen(commitProgress, o.crashAfter)
	}
	armKills(cp, "coord", o.chaosInc, commitProgress)

	runErr, chkErr := dc.RunCheckpointed(policyOf(o))
	if runErr != nil {
		return runErr
	}
	if chkErr != nil {
		// Abandoned epochs are expected around a follower crash; after a
		// clean joint completion they indicate a real coordination fault.
		logEvent("COORD checkpoint maintenance", "role", "coord", "err", chkErr)
	}
	if err := async.Flush(); err != nil {
		return err
	}
	logEvent("COORD done", "role", "coord", "seed", o.chaosSeed,
		"incarnation", o.chaosInc, "committed", dc.CommittedEpoch())
	return nil
}

// runChildFollow runs the consumer half: remote source → partitioned
// aggregate → recording sink, as a distributed checkpoint follower. It
// dials the coordinator's -addr for control and data.
func runChildFollow(o options) error {
	cp := o.chaosPlan()
	async, chain, err := openChain(filepath.Join(o.dir, "follow"), cp.ChainFaults("follow", o.chaosInc))
	if err != nil {
		return err
	}
	defer async.Close()

	ctrl, err := dialTagged(o.addr, tagControl)
	if err != nil {
		return err
	}
	ctrl = chaos.WrapConn(ctrl, cp.ConnFaults("follow", o.chaosInc, chaos.TargetCtrl))
	defer ctrl.Close()
	data, err := dialTagged(o.addr, tagData)
	if err != nil {
		return err
	}
	data = chaos.WrapConn(data, cp.ConnFaults("follow", o.chaosInc, chaos.TargetData))

	b, sink := buildFollowPlan(o, data)

	df, err := b.DistFollow("follow", chain, ctrl)
	if err != nil {
		return err
	}
	df.Retain = o.retain
	restored, err := df.Handshake()
	if err != nil {
		return err
	}
	if restored {
		logEvent(fmt.Sprintf("FOLLOW restored from committed epoch %d", df.CommittedEpoch()),
			"role", "follow", "seed", o.chaosSeed, "incarnation", o.chaosInc, "epoch", df.CommittedEpoch())
	} else {
		logEvent("FOLLOW cold start", "role", "follow", "seed", o.chaosSeed, "incarnation", o.chaosInc)
	}
	armKills(cp, "follow", o.chaosInc, func() (int64, bool) {
		ep, ok, err := chain.LatestEpoch()
		return ep, err == nil && ok
	})
	if err := df.Run(); err != nil {
		return err
	}
	if err := async.Flush(); err != nil {
		return err
	}
	fmt.Println(digestLine(sink))
	return nil
}

// acceptTagged accepts one connection per expected tag byte, in any order.
func acceptTagged(l net.Listener, tags ...byte) ([]net.Conn, error) {
	out := make([]net.Conn, len(tags))
	for range tags {
		conn, err := l.Accept()
		if err != nil {
			return nil, err
		}
		var tag [1]byte
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := conn.Read(tag[:]); err != nil {
			return nil, fmt.Errorf("read connection tag: %w", err)
		}
		conn.SetReadDeadline(time.Time{})
		placed := false
		for i, want := range tags {
			if tag[0] == want && out[i] == nil {
				out[i] = conn
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("unexpected connection tag %q", tag[0])
		}
	}
	return out, nil
}

// dialTagged dials addr with retry (the peer may still be restarting) and
// sends the tag byte identifying the connection's purpose.
func dialTagged(addr string, tag byte) (net.Conn, error) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			if _, werr := conn.Write([]byte{tag}); werr != nil {
				conn.Close()
				return nil, werr
			}
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// crashWhen SIGKILLs the process once the watched progress counter reaches
// n — a genuine kill -9, nothing is flushed or unwound.
func crashWhen(progress func() (int64, bool), n int) {
	for {
		time.Sleep(5 * time.Millisecond)
		if v, ok := progress(); ok && v >= int64(n) {
			logEvent("CHILD self-destructing (kill -9)", "epoch", v)
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
}

// trafficSource builds the deterministic synthetic workload shared by all
// modes.
func trafficSource(o options) *gen.TrafficSource {
	const minute = int64(60_000_000)
	return &gen.TrafficSource{Config: gen.TrafficConfig{
		Segments:            6,
		DetectorsPerSegment: 10,
		Duration:            int64(o.minutes) * minute,
		NullRate:            0.1,
		Noise:               3,
		Seed:                42,
		// Cost paces ingest (~500µs/tuple) so the run spans seconds and
		// checkpoints land mid-stream instead of after a millisecond blast.
		Cost: work.UnitsFor(500 * time.Microsecond),
	}}
}

// preStage prepends the stateless normalization chain shared by every mode:
// a keep-everything filter (ts is never null and never negative) plus a
// carry-all rename. It is a semantic no-op whose purpose is giving the plan
// compiler a fusible stateless prefix on the hot path; with -fuse the two
// stages collapse into one fused(clean+norm) kernel, which stage 2 then
// absorbs into the exchange Split's input port wherever the chain feeds a
// Parallel stage (buildPlan, buildFollowPlan). In buildCoordPlan the chain
// feeds the remote sink, so the kernel stays standalone — both compiled
// forms are exercised by every fuzz run.
func preStage(s plan.Stream) plan.Stream {
	s = s.SelectExpr("clean", op.ExprStep{Col: 2, Name: "ts", Pred: punct.Ge(stream.TimeMicros(0))})
	outs := make([]op.MapAttr, gen.TrafficSchema.Arity())
	for i := range outs {
		outs[i] = op.Carry(gen.TrafficSchema.Field(i).Name)
	}
	return s.Map("norm", outs...)
}

// aggStage is the per-partition aggregate sub-plan shared by the
// single-process plan and the distributed follower (and by the fuzz
// verifier, which must rebuild byte-identical plans to restore into). The
// leading keep-all filter is another semantic no-op: a lone stateless
// operator inside each partition, which -fuse absorbs into that partition's
// aggregate as a prefix kernel (fused(pclean=>agg)) — so every chaos run
// drives the stage-2 batched-fold path through kills, restores, and
// feedback.
func aggStage() func(plan.Stream) plan.Stream {
	const minute = int64(60_000_000)
	return func(ss plan.Stream) plan.Stream {
		ss = ss.SelectExpr("pclean", op.ExprStep{Col: 2, Name: "ts", Pred: punct.Ge(stream.TimeMicros(0))})
		return ss.Through(&op.Aggregate{OpName: "agg", In: gen.TrafficSchema, Kind: core.AggAvg,
			TsAttr: 2, ValAttr: 3, GroupBy: []int{0}, Window: window.Tumbling(minute),
			ValueName: "avg_speed", Mode: op.FeedbackExploit, Propagate: true})
	}
}

// buildPlan assembles the single-process demo workload: deterministic
// synthetic traffic → Parallel(parts) per-segment average → recording sink.
// Every node is a snapshot.Stater, so the whole plan recovers.
func buildPlan(o options) (*plan.Builder, *execpkg.Collector) {
	b := plan.New()
	out := preStage(b.Source(trafficSource(o))).Parallel("part", o.parts, []string{"segment"}, aggStage())
	sink := execpkg.NewCollector("sink", out.Schema())
	out.Into(sink)
	if o.fuse {
		b.Compile()
	}
	return b, sink
}

// buildCoordPlan assembles the producer subplan of the distributed pair:
// traffic source → filter → remote sink framing onto data.
func buildCoordPlan(o options, data net.Conn) (*plan.Builder, *remote.Sink) {
	b := plan.New()
	out := preStage(b.Source(trafficSource(o)))
	rsink := out.IntoRemote("to-consumer", data)
	rsink.WriteTimeout = o.writeTimeout
	if o.fuse {
		b.Compile()
	}
	return b, rsink
}

// buildFollowPlan assembles the consumer subplan: remote source →
// partitioned aggregate → recording sink. The source's read deadline
// surfaces a wedged producer instead of hanging the subplan forever.
func buildFollowPlan(o options, data net.Conn) (*plan.Builder, *execpkg.Collector) {
	b := plan.New()
	src := remote.NewSource("from-producer", gen.TrafficSchema, data)
	src.ReadTimeout = o.readTimeout
	out := preStage(b.Source(src)).Parallel("part", o.parts, []string{"segment"}, aggStage())
	sink := out.Collect("sink")
	if o.fuse {
		b.Compile()
	}
	return b, sink
}

// canonicalDigest hashes the order-independent result set, the equality
// witness between crashed-and-recovered and uninterrupted runs.
func canonicalDigest(sink *execpkg.Collector) (int, uint32) {
	lines := []string{}
	for _, t := range sink.Tuples() {
		lines = append(lines, t.String())
	}
	sort.Strings(lines)
	h := fnv.New32a()
	h.Write([]byte(strings.Join(lines, "\n")))
	return len(lines), h.Sum32()
}

// digestLine renders the RESULTS line — single-sourced so the fuzz
// verifier's replays compare byte-identically against run output.
func digestLine(sink *execpkg.Collector) string {
	count, sum := canonicalDigest(sink)
	return fmt.Sprintf("RESULTS count=%d checksum=%08x", count, sum)
}
