// Command speedmap runs Experiment 2 (Figure 7): the speed-map query plan
// under the four optimization schemes F0–F3 across feedback frequencies,
// reporting total execution time per run with F0 as the 100% baseline.
//
// Usage:
//
//	speedmap [-hours 18] [-segments 9] [-detectors 40] [-freqs 2,4,6]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	hours := flag.Int("hours", 18, "hours of simulated traffic (paper: 18)")
	segments := flag.Int("segments", 9, "freeway segments (paper: 9)")
	detectors := flag.Int("detectors", 40, "detectors per segment (paper: 40)")
	freqsFlag := flag.String("freqs", "2,4,6", "viewer switch periods in minutes (paper: 2,4,6)")
	flag.Parse()

	var freqs []int
	for _, part := range strings.Split(*freqsFlag, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -freqs:", err)
			os.Exit(1)
		}
		freqs = append(freqs, f)
	}

	base := experiments.SpeedmapConfig{
		Hours:     *hours,
		Segments:  *segments,
		Detectors: *detectors,
	}
	fmt.Printf("=== Experiment 2: speed-map plan, %d h × %d segments × %d detectors (≈%d tuples) ===\n",
		*hours, *segments, *detectors, int64(*hours)*180*int64(*segments)*int64(*detectors))
	results, err := experiments.SpeedmapSweep(base,
		[]experiments.Scheme{experiments.F0, experiments.F1, experiments.F2, experiments.F3},
		freqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Println()
	experiments.ReportSweep(os.Stdout, results)
	fmt.Println()
	fmt.Println("Paper (Figure 7): F1 ≈ 50%, F2 ≈ 39%, F3 ≈ 35% of the F0 baseline;")
	fmt.Println("execution time flat in feedback frequency.")
}
