// Command tables regenerates the paper's Tables 1 and 2: the COUNT and
// JOIN feedback characterizations, each row enacted on a live operator and
// verified against Definition 1 (correct exploitation).
package main

import (
	"os"

	"repro/internal/experiments"
)

func main() {
	experiments.RenderTables(os.Stdout)
}
