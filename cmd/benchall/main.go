// Command benchall regenerates every table and figure from the paper's
// evaluation in one run and prints an EXPERIMENTS.md-style report:
// Tables 1–2 (characterizations), Figures 5–6 (imputation timeliness),
// and Figure 7 (speed-map scheme ladder across feedback frequencies).
//
// Usage:
//
//	benchall [-quick] [-bench-json FILE] [-label NAME]
//
// -quick shrinks the workloads (~10× faster) while preserving every shape
// the paper reports. -bench-json measures the hot-path pipeline benchmarks
// in-process and appends a labelled run to FILE (conventionally
// BENCH_pipeline.json at the repo root), so the perf trajectory is tracked
// across PRs against the recorded seed baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-scale run")
	benchJSON := flag.String("bench-json", "", "measure hot-path benchmarks and append a run to this JSON baseline file")
	label := flag.String("label", "manual", "label for the appended -bench-json run")
	fuse := flag.Bool("fuse", true, "measure the compiled (operator-fused) pipeline variant alongside the unfused twin in -bench-json mode")
	flag.Parse()

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *label, *fuse); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("==================================================================")
	fmt.Println(" Reproduction: Inter-Operator Feedback in DSMSs via Punctuation")
	fmt.Println(" (Fernández-Moctezuma, Tufte, Li — CIDR 2009)")
	fmt.Println("==================================================================")
	fmt.Println()

	fmt.Println("--- Tables 1 & 2: operator characterizations ---")
	experiments.RenderTables(os.Stdout)
	fmt.Println()

	impCfg := experiments.ImputationConfig{}
	smBase := experiments.SpeedmapConfig{}
	if *quick {
		impCfg.Tuples = 2000
		impCfg.Rate = 4000
		smBase.Hours = 2
	}

	fmt.Println("--- Figures 5 & 6: imputation plan without / with feedback ---")
	for _, fb := range []bool{false, true} {
		cfg := impCfg
		cfg.Feedback = fb
		res, err := experiments.RunImputation(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println()
		res.Report(os.Stdout)
	}
	fmt.Println()

	fmt.Println("--- Figure 7: speed-map schemes × feedback frequency ---")
	results, err := experiments.SpeedmapSweep(smBase,
		[]experiments.Scheme{experiments.F0, experiments.F1, experiments.F2, experiments.F3},
		[]int{2, 4, 6})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Println()
	experiments.ReportSweep(os.Stdout, results)
	fmt.Println()
	fmt.Println("Paper shapes: Figures 5/6 — 97% useless without feedback vs 29% with;")
	fmt.Println("Figure 7 — F1 ≈ 50%, F2 ≈ 39%, F3 ≈ 35% of F0; flat in feedback frequency.")
}
