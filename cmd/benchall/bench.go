package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/op"
	"repro/internal/plan"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/window"
	"repro/internal/work"
)

// benchResult is one benchmark measurement in BENCH_pipeline.json.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	TuplesPerOp int     `json:"tuples_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// benchRun is one labelled measurement set.
type benchRun struct {
	Label   string                 `json:"label"`
	Date    string                 `json:"date"`
	Results map[string]benchResult `json:"results"`
}

// benchFile mirrors BENCH_pipeline.json.
type benchFile struct {
	Description string                 `json:"description"`
	Seed        map[string]benchResult `json:"seed"`
	Runs        []benchRun             `json:"runs"`
}

// writeBenchJSON measures the pipeline hot path in-process (the same
// source→select→sink plan as BenchmarkAblationPageSize, 100k tuples per
// run) and appends a labelled run to the baseline file, creating it if
// missing. It also prints the speedup against the recorded seed.
func writeBenchJSON(path, label string, fuse bool) error {
	var f benchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("benchall: parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	const n = 100_000
	results := map[string]benchResult{}
	for _, ps := range []int{1, 8, 64, 512} {
		name := fmt.Sprintf("BenchmarkAblationPageSize/page=%d", ps)
		ns := measurePipeline(ps, n)
		results[name] = benchResult{NsPerOp: ns, TuplesPerOp: n}
		base := ""
		if s, ok := f.Seed[name]; ok && ns > 0 {
			base = fmt.Sprintf("  (%.2fx vs seed)", s.NsPerOp/ns)
		}
		fmt.Printf("%-42s %12.0f ns/op%s\n", name, ns, base)
	}

	// Plan compiler: the stateless hot path select→project→map with and
	// without operator fusion (Builder.Compile). The fused kernel must beat
	// the unfused twin ≥2× (ISSUE 7's acceptance bar).
	variants := []bool{true, false}
	if !fuse {
		variants = []bool{false}
	}
	fusedNs := map[bool]float64{}
	for _, fused := range variants {
		name := fmt.Sprintf("BenchmarkFusedPipeline/fused=%v", fused)
		ns := measureFusedPipeline(fused, false, n)
		fusedNs[fused] = ns
		results[name] = benchResult{NsPerOp: ns, TuplesPerOp: n}
		fmt.Printf("%-42s %12.0f ns/op\n", name, ns)
	}
	if fusedNs[true] > 0 {
		fmt.Printf("%-42s %12.2fx (≥ 2x wanted)\n", "fusion speedup over unfused twin", fusedNs[false]/fusedNs[true])
	}

	// Plan compiler stage 2: the select+project→GROUP BY pipeline with and
	// without compilation. Compiled, the stateless prefix is absorbed into
	// the aggregate's input port and survivors take the batched fold; the
	// bar is ≥1.3× over an unfused twin that already folds whole pages per
	// call (ISSUE 9's acceptance bar).
	fusedAggNs := map[bool]float64{}
	for _, fused := range variants {
		name := fmt.Sprintf("BenchmarkFusedAggregate/fused=%v", fused)
		ns := measureFusedAggregate(fused, n)
		fusedAggNs[fused] = ns
		results[name] = benchResult{NsPerOp: ns, TuplesPerOp: n}
		fmt.Printf("%-42s %12.0f ns/op\n", name, ns)
	}
	if fusedAggNs[true] > 0 {
		fmt.Printf("%-42s %12.2fx (≥ 1.3x wanted)\n", "stage-2 speedup over unfused twin", fusedAggNs[false]/fusedAggNs[true])
	}

	// Telemetry overhead: the compiled pipeline with a live metrics registry
	// attached against the bare twin (ISSUE 8's acceptance bar: within 5%;
	// counters batch at page granularity, so the delta should sit in the
	// noise floor).
	telNs := map[bool]float64{}
	for _, on := range []bool{true, false} {
		name := fmt.Sprintf("BenchmarkInstrumentedPipeline/telemetry=%v", on)
		ns := measureFusedPipeline(true, on, n)
		telNs[on] = ns
		results[name] = benchResult{NsPerOp: ns, TuplesPerOp: n}
		fmt.Printf("%-42s %12.0f ns/op\n", name, ns)
	}
	if telNs[false] > 0 {
		fmt.Printf("%-42s %+12.2f%% (within 5%% wanted)\n", "telemetry overhead over bare twin",
			100*(telNs[true]-telNs[false])/telNs[false])
	}

	// Partitioned-aggregate scaling: pipeline with Aggregate parallelized
	// at n=1,2,4,8 (per-tuple cost makes it compute-bound; the curve
	// tracks available cores).
	const scaleTuples = 50_000
	items := experiments.ParallelTrafficItems(scaleTuples)
	cost := work.UnitsFor(time.Microsecond)
	baseline := float64(0)
	for _, parts := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("BenchmarkParallelAggregate/n=%d", parts)
		ns := measureParallelAggregate(parts, items, cost)
		results[name] = benchResult{NsPerOp: ns, TuplesPerOp: scaleTuples}
		note := ""
		if parts == 1 {
			baseline = ns
		} else if baseline > 0 && ns > 0 {
			note = fmt.Sprintf("  (%.2fx vs n=1)", baseline/ns)
		}
		fmt.Printf("%-42s %12.0f ns/op%s\n", name, ns, note)
	}

	// Checkpoint overhead and crash-recovery time on the Parallel(4)
	// aggregate plan (same workload as BenchmarkCheckpoint/BenchmarkRecovery
	// in bench_test.go).
	ckptNs, recNs, err := measureRecovery(4, scaleTuples)
	if err != nil {
		return err
	}
	results["BenchmarkCheckpoint"] = benchResult{NsPerOp: ckptNs}
	results["BenchmarkRecovery"] = benchResult{NsPerOp: recNs, TuplesPerOp: scaleTuples / 10}
	fmt.Printf("%-42s %12.0f ns/op\n", "BenchmarkCheckpoint", ckptNs)
	fmt.Printf("%-42s %12.0f ns/op\n", "BenchmarkRecovery", recNs)

	// Distributed cut latency: one epoch across a loopback TCP edge —
	// barrier over the wire, follower cut + persist, ack, manifest commit.
	remoteNs, err := measureRemoteBarrier()
	if err != nil {
		return err
	}
	results["BenchmarkRemoteBarrier"] = benchResult{NsPerOp: remoteNs}
	fmt.Printf("%-42s %12.0f ns/op\n", "BenchmarkRemoteBarrier", remoteNs)

	// Two-phase snapshot scaling: full end-to-end checkpoint cost grows
	// with state, the barrier-hold of incremental checkpoints must not
	// (ISSUE 4's acceptance bar: flat within 2× across 100× state).
	var holdAt [3]float64
	for i, groups := range []int{2_000, 20_000, 200_000} {
		fullNs, holdNs, err := measureLargeState(groups)
		if err != nil {
			return err
		}
		holdAt[i] = holdNs
		fn := fmt.Sprintf("BenchmarkCheckpointLargeState/state=%d", groups)
		hn := fmt.Sprintf("BenchmarkBarrierHold/state=%d", groups)
		results[fn] = benchResult{NsPerOp: fullNs}
		results[hn] = benchResult{NsPerOp: holdNs}
		fmt.Printf("%-42s %12.0f ns/op\n", fn, fullNs)
		fmt.Printf("%-42s %12.0f ns/op\n", hn, holdNs)
	}
	if holdAt[0] > 0 {
		fmt.Printf("%-42s %12.2fx (flat ≤ 2x wanted)\n", "barrier-hold growth over 100x state", holdAt[2]/holdAt[0])
	}

	f.Runs = append(f.Runs, benchRun{
		Label:   label,
		Date:    time.Now().UTC().Format("2006-01-02"),
		Results: results,
	})
	out, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// measurePipeline times one source→select→sink run over n tuples at the
// given page size and returns the best-of-3 wall time in nanoseconds.
func measurePipeline(pageSize, n int) float64 {
	schema := gen.TrafficSchema
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = stream.NewTuple(
			stream.Int(int64(i%9)), stream.Int(int64(i%40)),
			stream.TimeMicros(int64(i)*1000), stream.Float(55),
		)
	}
	best := float64(0)
	for rep := 0; rep < 3; rep++ {
		src := exec.NewSliceSource("src", schema, tuples...)
		src.BatchSize = 256
		sel := &op.Select{Schema: schema}
		sink := exec.NewCollector("sink", schema)
		sink.Discard = true
		g := exec.NewGraph()
		g.SetQueueOptions(queue.Options{PageSize: pageSize, FlushOnPunct: true})
		s := g.AddSource(src)
		fl := g.Add(sel, exec.From(s))
		g.Add(sink, exec.From(fl))
		start := time.Now()
		if err := g.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "benchall: pipeline run:", err)
			os.Exit(1)
		}
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// measureFusedPipeline times the stateless hot path source → select →
// project → map → sink over n tuples (progress punctuation every 50, as in
// BenchmarkFusedPipeline), optionally compiled with Builder.Compile and
// optionally attached to one long-lived telemetry sink (as deployed), and
// returns the best-of-3 wall time in nanoseconds.
func measureFusedPipeline(fused, instrumented bool, n int) float64 {
	schema := gen.TrafficSchema
	items := make([]queue.Item, 0, n+n/50)
	for i := 0; i < n; i++ {
		items = append(items, queue.TupleItem(stream.NewTuple(
			stream.Int(int64(i%9)), stream.Int(int64(i%40)),
			stream.TimeMicros(int64(i)*1000), stream.Float(float64(20+i%80)))))
		if i%50 == 49 {
			items = append(items, queue.PunctItem(punct.NewEmbedded(
				punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(int64(i)*1000))))))
		}
	}
	keep := make([]string, schema.Arity())
	outs := make([]op.MapAttr, schema.Arity())
	for i := range keep {
		keep[i] = schema.Field(i).Name
		outs[i] = op.Carry(keep[i])
	}
	var tel *telemetry.Telemetry
	if instrumented {
		tel = telemetry.New()
	}
	best := float64(0)
	for rep := 0; rep < 3; rep++ {
		bld := plan.New()
		src := &exec.SliceSource{SourceName: "src", Schema: schema, Items: items, BatchSize: 256}
		out := bld.Source(src).
			SelectExpr("hot", op.ExprStep{Col: 3, Name: "speed", Pred: punct.Ge(stream.Float(10))}).
			Project("keep", keep...).
			Map("norm", outs...)
		sink := exec.NewCollector("sink", out.Schema())
		sink.Discard = true
		out.Into(sink)
		if fused {
			bld.Compile()
		}
		if tel != nil {
			bld.EnableTelemetry(tel)
		}
		start := time.Now()
		if err := bld.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "benchall: fused pipeline run:", err)
			os.Exit(1)
		}
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// measureFusedAggregate times the stateful hot path source → select →
// project → GROUP BY aggregate → sink over n tuples (progress punctuation
// every 50, as in BenchmarkFusedAggregate), optionally compiled, and
// returns the best-of-3 wall time in nanoseconds.
func measureFusedAggregate(fused bool, n int) float64 {
	const minute = int64(60_000_000)
	schema := gen.TrafficSchema
	items := make([]queue.Item, 0, n+n/50)
	for i := 0; i < n; i++ {
		items = append(items, queue.TupleItem(stream.NewTuple(
			stream.Int(int64(i%9)), stream.Int(int64(i%40)),
			stream.TimeMicros(int64(i)*1000), stream.Float(float64(20+i%80)))))
		if i%50 == 49 {
			items = append(items, queue.PunctItem(punct.NewEmbedded(
				punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(int64(i)*1000))))))
		}
	}
	best := float64(0)
	for rep := 0; rep < 3; rep++ {
		bld := plan.New()
		src := &exec.SliceSource{SourceName: "src", Schema: schema, Items: items, BatchSize: 256}
		out := bld.Source(src).
			SelectExpr("hot", op.ExprStep{Col: 3, Name: "speed", Pred: punct.Ge(stream.Float(10))}).
			Project("keep", "segment", "detector", "ts", "speed").
			Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"}, window.Tumbling(minute), "avgspeed")
		sink := exec.NewCollector("sink", out.Schema())
		sink.Discard = true
		out.Into(sink)
		if fused {
			bld.Compile()
		}
		start := time.Now()
		if err := bld.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "benchall: fused aggregate run:", err)
			os.Exit(1)
		}
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// measureRecovery starts the parked Parallel(n) aggregate plan once, takes
// several checkpoints (best-of), then kills the plan and measures
// crash-and-recover (restore + catch-up replay of the last 10%) from the
// final snapshot.
func measureRecovery(parts, tuples int) (ckptNs, recNs float64, err error) {
	rb, err := experiments.StartRecoveryBench(parts, tuples, 0)
	if err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	var snap *snapshot.Snapshot
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		s, err := rb.Checkpoint(ctx)
		if err != nil {
			rb.Stop()
			return 0, 0, err
		}
		ns := float64(time.Since(start).Nanoseconds())
		if ckptNs == 0 || ns < ckptNs {
			ckptNs = ns
		}
		snap = s
	}
	if err := rb.Stop(); err != nil {
		return 0, 0, err
	}
	// Best-of-7: recovery is dominated by catch-up replay (~1ms), where
	// best-of-3 on a shared CI runner has produced >1.5x outliers that read
	// as regressions. Interleaved A/B of the underlying benchmark across
	// commits shows parity, so widen the sample instead of chasing ghosts.
	for rep := 0; rep < 7; rep++ {
		start := time.Now()
		if err := rb.Recover(snap); err != nil {
			return 0, 0, err
		}
		ns := float64(time.Since(start).Nanoseconds())
		if recNs == 0 || ns < recNs {
			recNs = ns
		}
	}
	return ckptNs, recNs, nil
}

// measureRemoteBarrier starts the parked coordinator/follower pair over
// loopback TCP and measures one distributed checkpoint epoch end to end
// (best-of-10, mixed full/delta as under the supervise cadence).
func measureRemoteBarrier() (float64, error) {
	db, err := experiments.StartDistBench(50_000)
	if err != nil {
		return 0, err
	}
	defer db.Stop()
	best := float64(0)
	for rep := 0; rep < 10; rep++ {
		start := time.Now()
		if _, err := db.Checkpoint(); err != nil {
			return 0, err
		}
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// measureLargeState starts the parked single-aggregate plan with the given
// group count and measures (a) a full checkpoint end-to-end and (b) the
// barrier-hold of incremental checkpoints with 512 touched groups per cut
// (both best-of-5).
func measureLargeState(groups int) (fullNs, holdNs float64, err error) {
	lb, err := experiments.StartLargeStateBench(groups)
	if err != nil {
		return 0, 0, err
	}
	defer lb.Stop()
	ctx := context.Background()
	for rep := 0; rep < 5; rep++ {
		lb.Touch(512)
		start := time.Now()
		if _, err := lb.Checkpoint(ctx, snapshot.CaptureFull); err != nil {
			return 0, 0, err
		}
		ns := float64(time.Since(start).Nanoseconds())
		if fullNs == 0 || ns < fullNs {
			fullNs = ns
		}
	}
	for rep := 0; rep < 5; rep++ {
		lb.Touch(512)
		st, err := lb.Checkpoint(ctx, snapshot.CaptureDelta)
		if err != nil {
			return 0, 0, err
		}
		ns := float64(st.BarrierHold.Nanoseconds())
		if holdNs == 0 || ns < holdNs {
			holdNs = ns
		}
	}
	return fullNs, holdNs, nil
}

// measureParallelAggregate times one n-way partitioned aggregate plan
// (experiments.RunParallelAggregate — the same plan the go-test benchmark
// runs) and returns the best-of-3 wall time in nanoseconds.
func measureParallelAggregate(parts int, items []queue.Item, cost int) float64 {
	best := float64(0)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		if err := experiments.RunParallelAggregate(parts, items, cost); err != nil {
			fmt.Fprintln(os.Stderr, "benchall: parallel aggregate run:", err)
			os.Exit(1)
		}
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}
