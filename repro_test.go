package repro_test

// Integration tests against the public facade: full plans on the
// concurrent runtime, verifying end-to-end feedback behaviour and
// Definition 1 across whole pipelines (not just single operators).

import (
	"sync"
	"testing"

	"repro"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

var tSchema = repro.MustSchema(
	repro.F("segment", repro.KindInt),
	repro.F("ts", repro.KindTime),
	repro.F("speed", repro.KindFloat),
)

func mkTuple(seg, ts int64, speed float64) repro.Tuple {
	return repro.NewTuple(repro.Int(seg), repro.TimeMicros(ts), repro.Float(speed))
}

// fbAfter is a sink that sends feedback after n tuples and records all
// arrivals.
type fbAfter struct {
	exec.Base
	schema  repro.Schema
	after   int64
	fb      repro.Feedback
	mu      sync.Mutex
	got     []repro.Tuple
	sent    bool
	arrived int64
}

func (f *fbAfter) Name() string               { return "fb-sink" }
func (f *fbAfter) InSchemas() []repro.Schema  { return []repro.Schema{f.schema} }
func (f *fbAfter) OutSchemas() []repro.Schema { return nil }
func (f *fbAfter) ProcessTuple(_ int, t stream.Tuple, ctx repro.Context) error {
	f.mu.Lock()
	f.got = append(f.got, t)
	f.arrived++
	send := !f.sent && f.arrived >= f.after
	if send {
		f.sent = true
	}
	f.mu.Unlock()
	if send {
		ctx.SendFeedback(0, f.fb)
	}
	return nil
}

func (f *fbAfter) tuples() []repro.Tuple {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]repro.Tuple(nil), f.got...)
}

// TestPipelineDefinition1EndToEnd runs source→select→aggregate→sink twice —
// feedback-aware and unaware — and checks Definition 1 on the final output.
func TestPipelineDefinition1EndToEnd(t *testing.T) {
	const minute = int64(60_000_000)
	var input []repro.Tuple
	for i := 0; i < 5000; i++ {
		input = append(input, mkTuple(int64(i%5), int64(i)*50_000, 40+float64(i%30)))
	}
	items := make([]repro.Tuple, len(input))
	copy(items, input)

	// Feedback over the aggregate's output schema: ignore segment 2.
	outFb := repro.NewAssumed(repro.OnAttr(3, 0, repro.Eq(repro.Int(2))))

	run := func(mode repro.FeedbackMode) []repro.Tuple {
		src := repro.NewSliceSource("src", tSchema, items...)
		src.FeedbackAware = mode != repro.FeedbackIgnore
		src.BatchSize = 16
		// Interleave punctuation so windows close mid-stream.
		sel := &repro.Select{
			Schema: tSchema,
			Cond:   func(t repro.Tuple) bool { return t.At(2).AsFloat() >= 0 },
			Mode:   mode, Propagate: mode != repro.FeedbackIgnore,
		}
		agg := &repro.Aggregate{
			In: tSchema, Kind: repro.AggAvg, TsAttr: 1, ValAttr: 2,
			GroupBy: []int{0}, Window: repro.Tumbling(minute),
			Mode: mode, Propagate: mode != repro.FeedbackIgnore,
		}
		// Inject punctuation via a wrapper source: SliceSource has no
		// punctuation here, so append EOS-driven flush only. For window
		// closure mid-run, rely on EOS flush (deterministic output).
		sink := &fbAfter{schema: agg.OutSchemas()[0], after: 3, fb: outFb}
		g := repro.NewGraph()
		s := g.AddSource(src)
		f := g.Add(sel, repro.From(s))
		a := g.Add(agg, repro.From(f))
		g.Add(sink, repro.From(a))
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return sink.tuples()
	}
	ref := run(repro.FeedbackIgnore)
	act := run(repro.FeedbackExploit)
	rep := repro.CheckExploitation(ref, act, outFb)
	if err := rep.Err(); err != nil {
		t.Fatalf("end-to-end Definition 1 violated: %v", err)
	}
}

// TestConcurrentFeedbackStress hammers a pipeline with frequent feedback
// while the stream flows, under -race in CI, verifying liveness and the
// upper Definition 1 bound (no invented tuples).
func TestConcurrentFeedbackStress(t *testing.T) {
	const n = 20000
	var input []repro.Tuple
	for i := 0; i < n; i++ {
		input = append(input, mkTuple(int64(i%7), int64(i)*1000, float64(i%90)))
	}
	src := repro.NewSliceSource("src", tSchema, input...)
	src.FeedbackAware = true
	src.BatchSize = 4

	sel := &repro.Select{Schema: tSchema, Mode: repro.FeedbackExploit, Propagate: true}

	var mu sync.Mutex
	var got []repro.Tuple
	seq := int64(0)
	sink := repro.NewCollector("sink", tSchema)
	sink.Discard = true
	sink.OnTuple = func(t repro.Tuple) {
		mu.Lock()
		got = append(got, t)
		mu.Unlock()
	}
	_ = seq

	g := repro.NewGraph()
	g.SetQueueOptions(repro.QueueOptions{PageSize: 8, Depth: 2, FlushOnPunct: true})
	s := g.AddSource(src)
	f := g.Add(sel, repro.From(s))

	// A feedback-storm sink: every 100 tuples, ignore another segment.
	storm := &fbAfter{schema: tSchema, after: 1 << 62}
	stormWrap := &stormSink{inner: storm, every: 100}
	g.Add(stormWrap, repro.From(f))
	_ = sink
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	// All segments 0..4 asked to be ignored at some point; tuples from
	// segments 5,6 must all arrive (they were never suppressed).
	counts := map[int64]int{}
	for _, tp := range stormWrap.inner.tuples() {
		counts[tp.At(0).AsInt()]++
	}
	if counts[5] != n/7 || counts[6] != n/7 {
		t.Errorf("unsuppressed segments must be complete: %v", counts)
	}
}

// stormSink sends a new assumed feedback every `every` tuples, cycling
// through segments 0..4.
type stormSink struct {
	exec.Base
	inner *fbAfter
	every int64
	seen  int64
	next  int64
}

func (s *stormSink) Name() string               { return "storm" }
func (s *stormSink) InSchemas() []repro.Schema  { return s.inner.InSchemas() }
func (s *stormSink) OutSchemas() []repro.Schema { return nil }
func (s *stormSink) ProcessTuple(in int, t stream.Tuple, ctx repro.Context) error {
	if err := s.inner.ProcessTuple(in, t, ctx); err != nil {
		return err
	}
	s.seen++
	if s.seen%s.every == 0 && s.next < 5 {
		ctx.SendFeedback(0, repro.NewAssumed(
			repro.OnAttr(3, 0, repro.Eq(repro.Int(s.next)))))
		s.next++
	}
	return nil
}

// TestFacadeNotationRoundTrip exercises the parse/print surface.
func TestFacadeNotationRoundTrip(t *testing.T) {
	f, err := repro.ParseFeedback("¬[2, *, >=50]", tSchema)
	if err != nil {
		t.Fatal(err)
	}
	if f.Intent != repro.Assumed {
		t.Error("intent")
	}
	if f.String() != "¬[2, *, >=50]" {
		t.Errorf("round trip: %q", f.String())
	}
	p, err := repro.ParsePattern("[*, <=1970-01-01T00:00:01.000000Z, *]", tSchema)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(mkTuple(1, 500_000, 50)) {
		t.Error("parsed pattern must match")
	}
}

// TestFacadeGuardTable exercises the exported guard machinery.
func TestFacadeGuardTable(t *testing.T) {
	g := repro.NewGuardTable(3)
	g.Install(repro.NewAssumed(repro.OnAttr(3, 0, repro.Eq(repro.Int(1)))))
	if !g.Suppress(mkTuple(1, 0, 50)) || g.Suppress(mkTuple(2, 0, 50)) {
		t.Error("guard behaviour through the facade")
	}
}

// TestFacadeSafePropagation checks the exported §4.2 analysis.
func TestFacadeSafePropagation(t *testing.T) {
	m := repro.IdentityMap(3)
	p := punct.OnAttr(3, 0, punct.Eq(stream.Int(1)))
	if prop := repro.SafePropagation(p, m); !prop.OK {
		t.Error("identity propagation must be safe")
	}
}
