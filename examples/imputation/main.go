// Imputation: the paper's Example 3 and Experiment 1 at demo scale.
//
// Sensor readings split into a clean stream and a dirty stream needing
// expensive archival imputation. PACE bounds the divergence between the
// two; when the imputed stream falls behind, PACE emits assumed feedback
// (¬[…, ts < cutoff, …]) so IMPUTE stops wasting archival lookups on tuples
// that would arrive too late anyway.
//
// Run with: go run ./examples/imputation [-feedback=false]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	feedback := flag.Bool("feedback", true, "enable feedback punctuation (Figure 6 vs Figure 5)")
	tuples := flag.Int("tuples", 2000, "stream length")
	flag.Parse()

	res, err := experiments.RunImputation(experiments.ImputationConfig{
		Tuples:   *tuples,
		Rate:     4000,
		Feedback: *feedback,
	})
	if err != nil {
		log.Fatal(err)
	}
	res.Report(os.Stdout)
	fmt.Println()
	if *feedback {
		fmt.Println("Compare with -feedback=false: without feedback nearly every imputed")
		fmt.Println("tuple arrives beyond the tolerated divergence (the paper's Figure 5).")
	} else {
		fmt.Println("Compare with -feedback=true: feedback lets IMPUTE skip already-late")
		fmt.Println("tuples and stay near the live edge (the paper's Figure 6).")
	}
}
