// Financial: demanded punctuation (§3.4) — the currency speculator.
//
// A tick stream feeds a one-minute windowed AVERAGE per currency pair. The
// window only closes (and emits) when punctuation passes its end — but the
// speculator's margin of action is a few seconds: a best-guess estimate NOW
// beats the exact answer after the window closes. She sends demanded
// feedback — ![pair, *, *] — and the aggregate unblocks, emitting its
// current partial average immediately while continuing to accumulate the
// exact result.
//
// Run with: go run ./examples/financial
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/punct"
	"repro/internal/stream"
)

// speculator is the sink: partway through the stream it demands an early
// answer for EUR/USD.
//
//pace:stateless example sink; its log exists only to be printed at the end of this demo run
type speculator struct {
	exec.Base
	schema    repro.Schema
	mu        sync.Mutex
	arrivals  []string
	demanded  bool
	ticksSeen int
}

func (s *speculator) Name() string               { return "speculator" }
func (s *speculator) InSchemas() []repro.Schema  { return []repro.Schema{s.schema} }
func (s *speculator) OutSchemas() []repro.Schema { return nil }

func (s *speculator) ProcessTuple(_ int, t stream.Tuple, _ repro.Context) error {
	s.mu.Lock()
	s.arrivals = append(s.arrivals, fmt.Sprintf("%s @%s rate=%.4f",
		t.At(0).AsString(), t.At(1).AsTime().UTC().Format("15:04:05"), t.At(2).AsFloat()))
	s.mu.Unlock()
	return nil
}

// ProcessPunct doubles as the speculator's clock: when the first window
// boundary passes without a result she can act on, she demands a partial.
func (s *speculator) ProcessPunct(_ int, e punct.Embedded, ctx repro.Context) error {
	s.ticksSeen++
	if !s.demanded && s.ticksSeen == 1 {
		s.demanded = true
		f := repro.NewDemanded(repro.OnAttr(s.schema.Arity(), 0, repro.Eq(repro.Str("EUR/USD"))))
		fmt.Printf("speculator: margin of action expiring — sending %v\n", f)
		ctx.SendFeedback(0, f)
	}
	return nil
}

func main() {
	ticks := &gen.TickSource{Config: gen.TickConfig{
		Pairs:                 []string{"EUR/USD", "GBP/USD", "USD/JPY"},
		TicksPerPairPerSecond: 10,
		Duration:              90 * 1_000_000, // 90 s of stream time
		Seed:                  7,
	}}
	avg := &repro.Aggregate{
		OpName: "avg-rate", In: gen.TickSchema, Kind: repro.AggAvg,
		TsAttr: 1, ValAttr: 2, GroupBy: []int{0},
		Window: repro.Tumbling(60_000_000), ValueName: "rate",
		Mode: repro.FeedbackExploit,
	}
	spec := &speculator{schema: avg.OutSchemas()[0]}

	g := repro.NewGraph()
	tn := g.AddSource(ticks)
	an := g.Add(avg, repro.From(tn))
	g.Add(spec, repro.From(an))

	if err := g.Run(); err != nil {
		log.Fatal(err)
	}

	st := avg.Stats()
	fmt.Printf("partial results emitted on demand: %d\n", st.Partials)
	fmt.Println("\nresults in arrival order:")
	for _, a := range spec.arrivals {
		fmt.Println(" ", a)
	}
	fmt.Println("\nThe demanded partial for EUR/USD appears before the window's exact")
	fmt.Println("average — a partial answer in time beats a full answer too late.")
}
