// Zoom: event-driven feedback (§3.3) — the map viewport.
//
// A navigation display shows the speed map for one area at a time. When
// the user zooms into an area, the parts of the network that scrolled out
// of view need no processing: the display sends assumed feedback — a
// (segment-set, time-range) subset — through the plan, and the filter at
// the bottom stops paying for tuples nobody will see. Zooming back out
// needs no retraction: the feedback's temporal extent expires on its own
// as punctuation passes (§4.4), so the next period is processed in full
// unless the viewer re-asserts its zoom.
//
// Run with: go run ./examples/zoom
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/punct"
	"repro/internal/stream"
)

const (
	minuteUS = int64(60_000_000)
	segments = 9
)

// display is the sink; zoom events arrive on a schedule keyed to stream
// progress (a real UI would key them to user input).
//
//pace:stateless example sink; its log exists only to be printed at the end of this demo run
type display struct {
	exec.Base
	schema repro.Schema
	// zooms maps a minute index to the set of segments visible from then
	// on; nil means fully zoomed out.
	zooms map[int64][]int64

	mu        sync.Mutex
	results   int64
	announced map[int64]bool
	seq       int64
}

func (d *display) Name() string               { return "display" }
func (d *display) InSchemas() []repro.Schema  { return []repro.Schema{d.schema} }
func (d *display) OutSchemas() []repro.Schema { return nil }

func (d *display) ProcessTuple(_ int, t stream.Tuple, _ repro.Context) error {
	d.mu.Lock()
	d.results++
	d.mu.Unlock()
	return nil
}

func (d *display) ProcessPunct(_ int, e punct.Embedded, ctx repro.Context) error {
	bound := e.Pattern.Bound()
	if len(bound) != 1 || bound[0] != 1 {
		return nil
	}
	pr := e.Pattern.Pred(1)
	if pr.Op != punct.LE && pr.Op != punct.LT {
		return nil
	}
	minute := pr.Val.I/minuteUS + 1 // upcoming minute
	visible, ok := d.zooms[minute]
	if !ok || visible == nil || d.announced[minute] {
		return nil
	}
	d.announced[minute] = true
	// Hidden segments for the upcoming minute.
	hidden := make([]repro.Value, 0, segments)
	inView := map[int64]bool{}
	for _, s := range visible {
		inView[s] = true
	}
	for s := int64(0); s < segments; s++ {
		if !inView[s] {
			hidden = append(hidden, repro.Int(s))
		}
	}
	lo, hi := minute*minuteUS, (minute+1)*minuteUS-1
	pat := repro.NewPattern(
		repro.OneOf(hidden...),
		repro.RangePred(repro.TimeMicros(lo), repro.TimeMicros(hi)),
		repro.Wild,
	)
	d.seq++
	f := repro.Feedback{Intent: repro.Assumed, Pattern: pat, Origin: d.Name(), Seq: d.seq}
	fmt.Printf("display: zoom at minute %d → %v\n", minute, f)
	ctx.SendFeedback(0, f)
	return nil
}

func main() {
	src := &gen.TrafficSource{Config: gen.TrafficConfig{
		Segments:            segments,
		DetectorsPerSegment: 10,
		ReportPeriod:        20_000_000,
		Duration:            10 * minuteUS,
		Start:               8 * 3600 * 1_000_000, // 8am
		Noise:               2,
		Seed:                3,
		FeedbackAware:       true,
	}}
	quality := &repro.Select{
		OpName: "quality", Schema: gen.TrafficSchema,
		Cond:      func(t repro.Tuple) bool { return !t.At(3).IsNull() },
		Cost:      50,
		Mode:      repro.FeedbackExploit,
		Propagate: true,
	}
	avg := &repro.Aggregate{
		OpName: "average", In: gen.TrafficSchema, Kind: repro.AggAvg,
		TsAttr: 2, ValAttr: 3, GroupBy: []int{0},
		Window: repro.Tumbling(minuteUS), ValueName: "avg_speed",
		Mode: repro.FeedbackExploit, Propagate: true,
	}
	disp := &display{
		schema: avg.OutSchemas()[0],
		zooms: map[int64][]int64{
			// The user zooms into segments 3-4 for minutes 2-5 (stream
			// minutes relative to 8am), then zooms back out.
			2: {3, 4}, 3: {3, 4}, 4: {3, 4}, 5: {3, 4},
		},
		announced: map[int64]bool{},
	}
	// Zoom schedule is expressed in absolute stream minutes.
	absZooms := map[int64][]int64{}
	for m, v := range disp.zooms {
		absZooms[8*60+m] = v
	}
	disp.zooms = absZooms

	g := repro.NewGraph()
	g.SetQueueOptions(repro.QueueOptions{PageSize: 8, Depth: 2, FlushOnPunct: true})
	sn := g.AddSource(src)
	qn := g.Add(quality, repro.From(sn))
	an := g.Add(avg, repro.From(qn))
	g.Add(disp, repro.From(an))

	if err := g.Run(); err != nil {
		log.Fatal(err)
	}

	_, _, filtered := quality.Stats()
	as := avg.Stats()
	emitted, atSource := src.Stats()
	fmt.Printf("\nresults rendered: %d (of %d possible)\n", disp.results, 10*segments)
	fmt.Printf("quality filter: %d tuples suppressed before the filter cost\n", filtered)
	fmt.Printf("aggregate: %d folds avoided\n", as.InSuppressed)
	fmt.Printf("source: %d of %d reports suppressed before generation\n", atSource, emitted+atSource)
	fmt.Println("\nAfter minute 5 the zoom expires with the stream's own punctuation —")
	fmt.Println("no retraction message exists or is needed (§4.4).")
}
