// Checkpoint & recovery: crash a running partitioned aggregate plan and
// resume it from a punctuation-aligned snapshot on disk.
//
// The plan is the speed-map core — traffic readings, hash-partitioned by
// segment across two aggregate replicas, merged back with punctuation
// alignment. Mid-stream, a coordinator checkpoint injects barrier
// punctuations at the source; once every partition and the merge have
// aligned them, the consistent cut (per-operator accumulators, guard
// tables, the source's replay position, and the sink's record) is written
// to a file backend. The plan is then killed — simulating a crash — and a
// freshly built plan restores from the file and finishes the stream. The
// recovered output is identical to what an uninterrupted run produces.
//
// Run with: go run ./examples/checkpoint
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/op"
	"repro/internal/plan"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/window"
)

// pausableSource replays a traffic stream one batch per Next, parking at
// pauseAt until released — a stand-in for a live feed that keeps the plan
// running while the operator takes a checkpoint. Its snapshot state is the
// replay position, so recovery regenerates exactly the tuples behind the
// barrier.
type pausableSource struct {
	items   []queue.Item
	pauseAt int
	release atomic.Bool
	pos     atomic.Int64
}

func (s *pausableSource) Name() string                { return "traffic" }
func (s *pausableSource) OutSchemas() []stream.Schema { return []stream.Schema{gen.TrafficSchema} }
func (s *pausableSource) Open(exec.Context) error     { return nil }
func (s *pausableSource) Close(exec.Context) error    { return nil }
func (s *pausableSource) ProcessFeedback(int, core.Feedback, exec.Context) error {
	return nil
}

func (s *pausableSource) Next(ctx exec.Context) (bool, error) {
	pos := int(s.pos.Load())
	if pos >= len(s.items) {
		return false, nil
	}
	for n := 0; n < 32; n++ {
		if pos >= len(s.items) {
			break
		}
		if pos == s.pauseAt && !s.release.Load() {
			time.Sleep(time.Millisecond)
			break
		}
		switch it := s.items[pos]; it.Kind {
		case queue.ItemTuple:
			ctx.Emit(it.Tuple)
		case queue.ItemPunct:
			ctx.EmitPunct(*it.Punct)
		}
		pos++
	}
	s.pos.Store(int64(pos))
	return true, nil
}

// SaveState implements snapshot.Stater.
func (s *pausableSource) SaveState(enc *snapshot.Encoder) error {
	enc.PutInt64(s.pos.Load())
	return nil
}

// LoadState implements snapshot.Stater.
func (s *pausableSource) LoadState(dec *snapshot.Decoder) error {
	s.pos.Store(dec.GetInt64())
	return dec.Err()
}

// trafficItems builds a punctuated, ordered traffic stream.
func trafficItems(n int) []queue.Item {
	items := make([]queue.Item, 0, n+n/200)
	ts := int64(0)
	for i := 0; i < n; i++ {
		if i%16 == 0 {
			ts += 250_000
		}
		items = append(items, queue.TupleItem(stream.NewTuple(
			stream.Int(int64(i%9)), stream.Int(int64(i%40)),
			stream.TimeMicros(ts), stream.Float(40+float64(i%30)))))
		if i%200 == 199 {
			items = append(items, queue.PunctItem(tsPunct(ts-1)))
		}
	}
	items = append(items, queue.PunctItem(tsPunct(ts)))
	return items
}

// tsPunct asserts stream progress on the timestamp attribute.
func tsPunct(tsUS int64) punct.Embedded {
	return punct.NewEmbedded(punct.OnAttr(gen.TrafficSchema.Arity(), 2, punct.Le(stream.TimeMicros(tsUS))))
}

func buildPlan(src *pausableSource) (*plan.Builder, *exec.Collector) {
	b := plan.New()
	out := b.Source(src).Parallel("part", 2, []string{"segment"}, func(ss plan.Stream) plan.Stream {
		return ss.Through(&op.Aggregate{OpName: "avg", In: gen.TrafficSchema, Kind: core.AggAvg,
			TsAttr: 2, ValAttr: 3, GroupBy: []int{0}, Window: window.Tumbling(60_000_000),
			ValueName: "avg_speed", Mode: op.FeedbackExploit, Propagate: true})
	})
	sink := out.Collect("speedmap")
	return b, sink
}

func canonical(c *exec.Collector) []string {
	var lines []string
	for _, t := range c.Tuples() {
		lines = append(lines, t.String())
	}
	sort.Strings(lines)
	return lines
}

func main() {
	const tuples = 20_000
	items := trafficItems(tuples)
	pauseAt := len(items) / 2

	dir, err := os.MkdirTemp("", "speedmap-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	backend, err := snapshot.NewDir(dir)
	if err != nil {
		log.Fatal(err)
	}

	// --- Run 1: stream half the data, checkpoint, crash. ---
	src1 := &pausableSource{items: items, pauseAt: pauseAt}
	b1, sink1 := buildPlan(src1)
	runErr := make(chan error, 1)
	go func() { runErr <- b1.Run() }()
	for src1.pos.Load() < int64(pauseAt) {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	snap, err := b1.Graph().Checkpoint(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if err := snap.Save(backend, "speedmap-mid"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: epoch %d, %d nodes, %d bytes, took %v (results so far: %d)\n",
		snap.Epoch, len(snap.Nodes), snap.Size(), time.Since(start).Round(time.Microsecond), sink1.Count())

	b1.Graph().Kill()
	<-runErr // ErrKilled: the crash
	fmt.Printf("crash: plan killed mid-stream at item %d/%d\n", src1.pos.Load(), len(items))

	// --- Run 2: rebuild, restore from disk, finish the stream. ---
	src2 := &pausableSource{items: items, pauseAt: pauseAt}
	src2.release.Store(true)
	b2, sink2 := buildPlan(src2)
	start = time.Now()
	if err := b2.Restore(backend, "speedmap-mid"); err != nil {
		log.Fatal(err)
	}
	if err := b2.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: restored and finished in %v (final results: %d)\n",
		time.Since(start).Round(time.Microsecond), sink2.Count())

	// --- Reference: the same stream uninterrupted. ---
	ref := &pausableSource{items: items, pauseAt: pauseAt}
	ref.release.Store(true)
	bRef, sinkRef := buildPlan(ref)
	if err := bRef.Run(); err != nil {
		log.Fatal(err)
	}

	got, want := canonical(sink2), canonical(sinkRef)
	if len(got) != len(want) {
		log.Fatalf("recovered run produced %d results, uninterrupted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("result %d diverged: %s vs %s", i, got[i], want[i])
		}
	}
	fmt.Printf("verified: %d results canonically identical to an uninterrupted run (0 lost, 0 duplicated)\n", len(want))
}
