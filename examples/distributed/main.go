// Distributed crash-and-recover: a consistent cut across a machine
// boundary.
//
// The paper's case for localized coordination (§2) is the distributed
// setting: control information travels hop by hop between adjacent
// operators, never through a centralized monitor. This example applies the
// same principle to fault tolerance. A query plan is split across a real
// TCP connection:
//
//	process A (here: goroutine):  traffic source → filter → RemoteSink ══╗
//	process B (here: goroutine):  RemoteSource → avg-by-segment → sink   ║
//	     barriers:  A's sources → ... → RemoteSink ═(TCP)═ RemoteSource → ...
//	     acks/commits:  B ═(control conn)═ A
//
// Process A coordinates: every checkpoint epoch injects barriers at its
// sources, and the RemoteSink forwards the barrier in-band after the
// tuples that precede the cut. Process B's RemoteSource hands the wire
// barrier to its local coordination glue, which cuts B's subplan at the
// same epoch. Each side persists its own chain; A commits a distributed
// manifest only after B's ack. Mid-stream, BOTH processes are killed; the
// rebuilt pair restores from the last committed manifest and finishes. The
// recovered output is canonically identical to an uninterrupted run — the
// epoch that was in flight at the crash was simply abandoned.
//
// Run with: go run ./examples/distributed
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/op"
	"repro/internal/plan"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/remote"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/window"
)

// pacedSource replays a fixed item sequence at a trickle, so checkpoint
// epochs land mid-stream; its snapshot state is the replay position.
type pacedSource struct {
	items []queue.Item
	pos   atomic.Int64
}

func (s *pacedSource) Name() string                                           { return "traffic" }
func (s *pacedSource) OutSchemas() []stream.Schema                            { return []stream.Schema{gen.TrafficSchema} }
func (s *pacedSource) Open(exec.Context) error                                { return nil }
func (s *pacedSource) Close(exec.Context) error                               { return nil }
func (s *pacedSource) ProcessFeedback(int, core.Feedback, exec.Context) error { return nil }

func (s *pacedSource) Next(ctx exec.Context) (bool, error) {
	pos := int(s.pos.Load())
	if pos >= len(s.items) {
		return false, nil
	}
	for n := 0; n < 8 && pos < len(s.items); n++ {
		switch it := s.items[pos]; it.Kind {
		case queue.ItemTuple:
			ctx.Emit(it.Tuple)
		case queue.ItemPunct:
			ctx.EmitPunct(*it.Punct)
		}
		pos++
	}
	s.pos.Store(int64(pos))
	time.Sleep(100 * time.Microsecond)
	return true, nil
}

// SaveState implements snapshot.Stater.
func (s *pacedSource) SaveState(enc *snapshot.Encoder) error {
	enc.PutInt64(s.pos.Load())
	return nil
}

// LoadState implements snapshot.Stater.
func (s *pacedSource) LoadState(dec *snapshot.Decoder) error {
	s.pos.Store(dec.GetInt64())
	return dec.Err()
}

// trafficItems builds a punctuated, ordered traffic stream.
func trafficItems(n int) []queue.Item {
	items := make([]queue.Item, 0, n+n/200)
	ts := int64(0)
	for i := 0; i < n; i++ {
		if i%16 == 0 {
			ts += 250_000
		}
		items = append(items, queue.TupleItem(stream.NewTuple(
			stream.Int(int64(i%9)), stream.Int(int64(i%40)),
			stream.TimeMicros(ts), stream.Float(40+float64(i%30)))))
		if i%200 == 199 {
			items = append(items, queue.PunctItem(punct.NewEmbedded(
				punct.OnAttr(gen.TrafficSchema.Arity(), 2, punct.Le(stream.TimeMicros(ts-1))))))
		}
	}
	return items
}

// stores is the pair's "durable storage", surviving crashes within this
// process: one chain per subplan plus the coordinator's manifest log.
type stores struct {
	coord, follow *snapshot.Chain
	log           *snapshot.DistLog
}

func newStores() *stores {
	coordBackend := snapshot.NewMemory()
	return &stores{
		coord:  snapshot.NewChain(coordBackend),
		follow: snapshot.NewChain(snapshot.NewMemory()),
		log:    snapshot.NewDistLog(coordBackend),
	}
}

// runPair runs one incarnation of the two-subplan plan. If kill is
// non-nil, both graphs are killed once it fires (reporting killed=true);
// otherwise the pair runs to completion and the follower's canonical
// results are returned.
func runPair(items []queue.Item, st *stores, kill func(log *snapshot.DistLog) bool) (results []string, committed int64, killed bool, err error) {
	// Data crosses real TCP; the control connection is an in-process pipe
	// (a second TCP conn in the two-process deployment, cmd/supervise -dist).
	addr, accept, err := remote.Listen("127.0.0.1:0")
	if err != nil {
		return nil, 0, false, err
	}
	ctrlA, ctrlB := net.Pipe()
	defer ctrlA.Close()
	defer ctrlB.Close()

	var (
		wg        sync.WaitGroup
		followG   *exec.Graph
		coordErr  error
		followErr error
		sink      *exec.Collector
		followUp  = make(chan error, 1) // follower built + handshaken
	)

	// Process B: the follower subplan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := accept()
		if err != nil {
			followUp <- err
			return
		}
		b := plan.New()
		out := b.RemoteSource("from-producer", gen.TrafficSchema, conn).
			Parallel("part", 2, []string{"segment"}, func(ss plan.Stream) plan.Stream {
				return ss.Through(&op.Aggregate{OpName: "avg", In: gen.TrafficSchema, Kind: core.AggAvg,
					TsAttr: 2, ValAttr: 3, GroupBy: []int{0}, Window: window.Tumbling(60_000_000),
					ValueName: "avg_speed", Mode: op.FeedbackExploit, Propagate: true})
			})
		sink = out.Collect("speedmap")
		df, err := b.DistFollow("consumer", st.follow, ctrlB)
		if err != nil {
			followUp <- err
			return
		}
		df.Retain = 4
		if _, err := df.Handshake(); err != nil {
			followUp <- err
			return
		}
		followG = b.Graph()
		followUp <- nil
		followErr = df.Run()
	}()

	// Process A: the coordinator subplan.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, 0, false, err
	}
	b := plan.New()
	src := &pacedSource{items: items}
	rsink := b.Source(src).Select("filter", nil).IntoRemote("to-consumer", conn)
	rsink.WriteTimeout = 10 * time.Second
	dc, err := b.DistCoordinate("producer", st.coord, st.log)
	if err != nil {
		return nil, 0, false, err
	}
	dc.AckTimeout = 5 * time.Second
	if _, err := dc.RestoreCommitted(); err != nil {
		return nil, 0, false, err
	}
	if _, err := dc.AddFollower(ctrlA); err != nil {
		return nil, 0, false, err
	}
	coordG := b.Graph()
	if err := <-followUp; err != nil {
		return nil, 0, false, err
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		coordErr, _ = dc.RunCheckpointed(exec.CheckpointPolicy{
			Interval: 5 * time.Millisecond, FullEvery: 3, Retain: 4,
		})
	}()

	if kill != nil {
		deadline := time.Now().Add(60 * time.Second)
		for !kill(st.log) {
			if time.Now().After(deadline) {
				coordG.Kill()
				if followG != nil {
					followG.Kill()
				}
				wg.Wait()
				return nil, 0, false, fmt.Errorf("kill condition not reached before deadline (run finished early?)")
			}
			time.Sleep(time.Millisecond)
		}
		coordG.Kill()
		if followG != nil {
			followG.Kill()
		}
		killed = true
	}
	wg.Wait()
	committed = dc.CommittedEpoch()
	if !killed {
		if coordErr != nil {
			return nil, committed, false, fmt.Errorf("producer: %w", coordErr)
		}
		if followErr != nil && !errors.Is(followErr, exec.ErrKilled) {
			return nil, committed, false, fmt.Errorf("consumer: %w", followErr)
		}
	}
	var lines []string
	if sink != nil {
		for _, t := range sink.Tuples() {
			lines = append(lines, t.String())
		}
		sort.Strings(lines)
	}
	return lines, committed, killed, nil
}

func main() {
	items := trafficItems(12_000)

	// --- Run 1: crash BOTH processes once two epochs are committed. ---
	st := newStores()
	_, committed, _, err := runPair(items, st, func(l *snapshot.DistLog) bool {
		m, ok, err := l.Latest()
		return err == nil && ok && m.Epoch >= 2
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash: both subplans killed mid-stream; last committed distributed epoch %d\n", committed)

	// --- Run 2: rebuild both subplans, restore from the committed cut. ---
	got, committed2, _, err := runPair(items, st, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: pair restored from epoch %d and completed (committed through %d, results: %d)\n",
		committed, committed2, len(got))

	// --- Reference: the same stream, uninterrupted, on fresh storage. ---
	want, _, _, err := runPair(items, newStores(), nil)
	if err != nil {
		log.Fatal(err)
	}
	if len(got) != len(want) {
		log.Fatalf("recovered pair produced %d results, uninterrupted %d (gap or duplication)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("result %d diverged: %s vs %s", i, got[i], want[i])
		}
	}
	fmt.Printf("verified: %d results canonically identical to an uninterrupted run (0 lost, 0 duplicated)\n", len(want))
}
