// Distributed: feedback punctuation across a machine boundary.
//
// The paper's case for localized feedback (§2) is the distributed setting:
// shipping stream data to a centralized optimizer is expensive, while
// feedback only ever travels between adjacent operators. This example
// splits the quickstart plan across a real TCP connection:
//
//	process A (here: goroutine):  sensor source → filter → RemoteSink ══╗
//	process B (here: goroutine):  RemoteSource → deciding sink          ║
//	             feedback:  sink → RemoteSource ═(TCP)═ RemoteSink → filter → source
//
// The consumer's assumed feedback crosses the wire against the data
// direction and is exploited all the way back at the producer's source.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"repro"
	"repro/internal/exec"
	"repro/internal/stream"
)

var schema = repro.MustSchema(
	repro.F("segment", repro.KindInt),
	repro.F("ts", repro.KindTime),
	repro.F("speed", repro.KindFloat),
)

// decider asks to ignore segment 2 after 25 arrivals.
type decider struct {
	exec.Base
	seen int64
	sent bool
	got  map[int64]int64
}

func (d *decider) Name() string               { return "decider" }
func (d *decider) InSchemas() []repro.Schema  { return []repro.Schema{schema} }
func (d *decider) OutSchemas() []repro.Schema { return nil }
func (d *decider) Open(repro.Context) error   { d.got = map[int64]int64{}; return nil }
func (d *decider) ProcessTuple(_ int, t stream.Tuple, ctx repro.Context) error {
	d.got[t.At(0).AsInt()]++
	d.seen++
	if !d.sent && d.seen >= 25 {
		d.sent = true
		fb := repro.NewAssumed(repro.OnAttr(3, 0, repro.Eq(repro.Int(2))))
		fmt.Printf("consumer: sending %v across the wire\n", fb)
		ctx.SendFeedback(0, fb)
	}
	return nil
}

func main() {
	addr, accept, err := repro.ListenRemote("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer listening on %s\n", addr)

	var wg sync.WaitGroup
	var src *repro.SliceSource
	var sink *decider
	var prodErr, consErr error

	// Consumer "machine".
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := accept()
		if err != nil {
			consErr = err
			return
		}
		rsrc := repro.NewRemoteSource("from-producer", schema, conn)
		sink = &decider{}
		g := repro.NewGraph()
		g.SetQueueOptions(repro.QueueOptions{PageSize: 4, Depth: 2, FlushOnPunct: true})
		s := g.AddSource(rsrc)
		g.Add(sink, repro.From(s))
		consErr = g.Run()
	}()

	// Producer "machine".
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			prodErr = err
			return
		}
		var tuples []repro.Tuple
		for i := 0; i < 3000; i++ {
			tuples = append(tuples, repro.NewTuple(
				repro.Int(int64(i%3)), repro.TimeMicros(int64(i)*1000), repro.Float(55),
			).WithSeq(int64(i)))
		}
		src = repro.NewSliceSource("sensors", schema, tuples...)
		src.FeedbackAware = true
		src.BatchSize = 4

		filter := &repro.Select{
			OpName: "filter", Schema: schema,
			Mode: repro.FeedbackExploit, Propagate: true,
		}
		rsink := repro.NewRemoteSink("to-consumer", schema, conn)
		rsink.FlushEvery = 8

		g := repro.NewGraph()
		g.SetQueueOptions(repro.QueueOptions{PageSize: 4, Depth: 2, FlushOnPunct: true})
		s := g.AddSource(src)
		f := g.Add(filter, repro.From(s))
		g.Add(rsink, repro.From(f))
		prodErr = g.Run()
	}()

	wg.Wait()
	if prodErr != nil || consErr != nil {
		log.Fatal(prodErr, consErr)
	}
	fmt.Printf("producer: %d tuples suppressed at the source by remote feedback\n", src.Skipped())
	fmt.Printf("consumer received per segment: %v\n", sink.got)
}
