// Impatient: desired punctuation (§3.4) with IMPATIENT JOIN.
//
// Vehicle reports (scarce, expensive probes) arrive on the join's left
// input; fixed-sensor readings are plentiful on the right, buffered behind
// a PRIORITIZE stage. For every (period, segment) it sees vehicle data
// for, the join sends desired feedback — ?[period, segment, *] — upstream;
// PRIORITIZE moves matching sensor readings to the front of its buffer so
// the join can produce those results first.
//
// Desired punctuation never changes the result set, only production order:
// the demo verifies both.
//
// Run with: go run ./examples/impatient
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stream"
)

var (
	vehicleSchema = repro.MustSchema(
		repro.F("period", repro.KindInt),
		repro.F("segment", repro.KindInt),
		repro.F("vspeed", repro.KindFloat),
	)
	sensorSchema = repro.MustSchema(
		repro.F("period", repro.KindInt),
		repro.F("segment", repro.KindInt),
		repro.F("sspeed", repro.KindFloat),
	)
)

func main() {
	// Sensor data: every (period, segment) cell for 40 periods × 9
	// segments, in period-major order.
	var sensors []repro.Tuple
	for p := int64(0); p < 40; p++ {
		for s := int64(0); s < 9; s++ {
			sensors = append(sensors, repro.NewTuple(
				repro.Int(p), repro.Int(s), repro.Float(50+float64(s))))
		}
	}
	// Vehicle data: a single probe car driving segment 3, reporting in
	// periods 20..29 — the subset the join will be impatient about.
	var vehicles []repro.Tuple
	for p := int64(20); p < 30; p++ {
		vehicles = append(vehicles, repro.NewTuple(
			repro.Int(p), repro.Int(3), repro.Float(31)))
	}

	vsrc := repro.NewSliceSource("vehicles", vehicleSchema, vehicles...)
	vsrc.BatchSize = 1
	ssrc := repro.NewSliceSource("sensors", sensorSchema, sensors...)
	ssrc.BatchSize = 4

	prio := &repro.Prioritize{
		OpName: "prioritize", Schema: sensorSchema,
		BufferCap: 1000, Mode: repro.FeedbackExploit,
	}
	join := &repro.Join{
		OpName: "impatient-join",
		Left:   vehicleSchema, Right: sensorSchema,
		LeftKeys: []int{0, 1}, RightKeys: []int{0, 1},
		LeftTs: 0, RightTs: 0,
		Impatient: true, // ?[period, segment, *] toward the sensor side
		Mode:      repro.FeedbackExploit,
	}

	var order []int64 // join-output period order
	sink := repro.NewCollector("sink", join.OutSchemas()[0])
	sink.OnTuple = func(t stream.Tuple) { order = append(order, t.At(0).AsInt()) }

	g := repro.NewGraph()
	g.SetQueueOptions(repro.QueueOptions{PageSize: 4, Depth: 2, FlushOnPunct: true})
	vn := g.AddSource(vsrc)
	sn := g.AddSource(ssrc)
	pn := g.Add(prio, repro.From(sn))
	jn := g.Add(join, repro.From(vn), repro.From(pn))
	g.Add(sink, repro.From(jn))

	if err := g.Run(); err != nil {
		log.Fatal(err)
	}

	_, _, promoted, _ := prio.Stats()
	js := join.Stats()
	fmt.Printf("join produced %d results for the probe car's cells\n", js.Emitted)
	fmt.Printf("desired punctuations sent by the join: %d\n", js.ImpatientSent)
	fmt.Printf("sensor readings promoted past the buffer: %d\n", promoted)
	fmt.Printf("result production order (periods): %v\n", order)
	fmt.Println("\nWith promotion, results for later periods can appear before the")
	fmt.Println("buffered earlier sensor data drains — production ORDER changed,")
	fmt.Println("result SET did not (the desired-punctuation contract).")
}
