// Speedmap: the paper's Figure 1(b) plan — the motivating scenario.
//
//	vehicle (probe) data → CLEAN → AGGREGATE(segment, 20 s) ─┐
//	fixed-sensor data ───────────────────────────── OUTER JOIN → map
//
// Vehicle readings are noisy and must be cleaned and aggregated before the
// join; the join pairs each fixed-sensor reading with the aggregated
// vehicle speed when the sensor reports congestion (speed < 45 mph), and
// passes sensor readings through alone otherwise (left outer join).
//
// The feedback: cleaning and aggregating vehicle data for *uncongested*
// segments is wasted work. The join discovers congestion state from the
// sensor stream (the paper's "adaptive" feedback source) and sends assumed
// feedback — a two-dimensional (segment, time) subset — up the vehicle
// branch, where the aggregate and the cleaner suppress matching readings.
//
// Run with: go run ./examples/speedmap [-feedback=false]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/gen"
)

const period20s = int64(20_000_000)

func main() {
	feedback := flag.Bool("feedback", true, "enable congestion feedback to the vehicle branch")
	hours := flag.Int("hours", 1, "hours of traffic")
	flag.Parse()

	mode := repro.FeedbackIgnore
	if *feedback {
		mode = repro.FeedbackExploit
	}

	// The run covers the morning-rush onset (6:30 onward): early windows
	// are uncongested everywhere (feedback suppresses the whole vehicle
	// branch), later windows congest segment by segment.
	start := int64(6*3600+1800) * 1_000_000

	// Vehicle branch: probes → clean → per-(segment, 20 s) average.
	probes := &gen.ProbeSource{Config: gen.ProbeConfig{
		Segments:          9,
		VehiclesPerPeriod: 6,
		Period:            period20s,
		Duration:          int64(*hours) * 3600 * 1_000_000,
		Start:             start,
		NoiseRate:         0.05,
		Noise:             4,
		Seed:              1,
		FeedbackAware:     *feedback,
	}}
	clean := &repro.Select{
		OpName: "clean",
		Schema: gen.ProbeSchema,
		Cond: func(t repro.Tuple) bool {
			v := t.At(2).AsFloat()
			return v >= 0 && v <= 100 // drop corrupted GPS readings
		},
		Cost:      20,
		Mode:      mode,
		Propagate: *feedback,
	}
	agg := &repro.Aggregate{
		OpName: "aggregate", In: gen.ProbeSchema, Kind: repro.AggAvg,
		TsAttr: 1, ValAttr: 2, GroupBy: []int{0},
		Window: repro.Tumbling(period20s), ValueName: "probe_speed",
		Cost: 20, Mode: mode, Propagate: *feedback,
	}
	aggOut := agg.OutSchemas()[0] // (segment, wstart, probe_speed)

	// Sensor branch: one report per segment per 20 s window.
	sensors := &gen.TrafficSource{Config: gen.TrafficConfig{
		Segments:            9,
		DetectorsPerSegment: 1,
		ReportPeriod:        period20s,
		Duration:            int64(*hours) * 3600 * 1_000_000,
		Start:               start,
		Noise:               2,
		Seed:                2,
	}}
	// Align the sensor schema with the join keys: (segment, wstart).
	sensorKey := &repro.Project{
		OpName: "sensor-key", In: gen.TrafficSchema,
		Keep: []string{"segment", "ts", "speed"},
	}
	sensorSchema := sensorKey.OutSchemas()[0]

	// Outer join: every sensor reading appears; aggregated vehicle speed
	// attaches only for congested segments (sensor speed < 45).
	join := &repro.Join{
		OpName:   "speedmap-join",
		Left:     sensorSchema, // (segment, ts, speed)
		Right:    aggOut,       // (segment, wstart, probe_speed)
		LeftKeys: []int{0, 1}, RightKeys: []int{0, 1},
		LeftTs: 1, RightTs: 1,
		Residual: func(l, r repro.Tuple) bool {
			return l.At(2).AsFloat() < 45 // congested: use probe data
		},
		LeftOuter: true,
		Mode:      mode,
	}
	var adaptiveSent int64
	if *feedback {
		// Adaptive discovery (§3.3): an uncongested sensor reading means
		// the matching vehicle window is useless — tell the vehicle
		// branch (input 1).
		join.Adaptive = func(input int, t repro.Tuple, send func(int, repro.Feedback)) {
			if input != 0 || t.At(2).IsNull() || t.At(2).AsFloat() < 45 {
				return
			}
			seg, ts := t.At(0), t.At(1).Micros()
			wstart := (ts / period20s) * period20s
			pat := repro.NewPattern(
				repro.Eq(seg),
				repro.Eq(repro.TimeMicros(wstart)),
				repro.Wild,
			)
			adaptiveSent++
			send(1, repro.NewAssumed(pat))
		}
	}

	sink := repro.NewCollector("map", join.OutSchemas()[0])
	sink.Discard = true

	g := repro.NewGraph()
	// Shallow queues keep the two branches advancing in rough lockstep,
	// so the join's adaptive feedback lands while the matching vehicle
	// windows are still upstream.
	g.SetQueueOptions(repro.QueueOptions{PageSize: 8, Depth: 2, FlushOnPunct: true})
	pn := g.AddSource(probes)
	cn := g.Add(clean, repro.From(pn))
	an := g.Add(agg, repro.From(cn))
	sn := g.AddSource(sensors)
	kn := g.Add(sensorKey, repro.From(sn))
	jn := g.Add(join, repro.From(kn), repro.From(an))
	g.Add(sink, repro.From(jn))

	if err := g.Run(); err != nil {
		log.Fatal(err)
	}

	js := join.Stats()
	as := agg.Stats()
	_, _, cleanSup := clean.Stats()
	emitted, probeSkipped := probes.Stats()
	fmt.Printf("map rows: %d joined with probe data, %d sensor-only (outer)\n", js.Emitted, js.OuterEmitted)
	fmt.Printf("vehicle branch: %d probe readings generated, %d suppressed at source\n", emitted, probeSkipped)
	fmt.Printf("cleaner: %d readings suppressed by feedback before cleaning cost\n", cleanSup)
	fmt.Printf("aggregate: %d window-folds avoided, %d groups purged\n", as.InSuppressed, as.Purged)
	fmt.Printf("join: %d adaptive feedback punctuations sent, %d probe aggregates suppressed at its input\n",
		adaptiveSent, js.SuppressedIn)
	if !*feedback {
		fmt.Println("\nRe-run with -feedback=true to see the vehicle branch stop working on uncongested segments.")
	}
}
