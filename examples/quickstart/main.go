// Quickstart: a three-operator plan demonstrating feedback punctuation
// end to end.
//
// A sensor source feeds a filter feeding a sink. After seeing a few
// readings, the sink decides readings from segment 2 are of no further use
// and sends assumed feedback (¬[2, *, *]) upstream. The filter adds the
// pattern to its condition and relays the feedback; the feedback-aware
// source stops generating the subset altogether.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"repro"
	"repro/internal/exec"
	"repro/internal/stream"
)

var schema = repro.MustSchema(
	repro.F("segment", repro.KindInt),
	repro.F("ts", repro.KindTime),
	repro.F("speed", repro.KindFloat),
)

// decidingSink counts arrivals per segment and, after 50 tuples, issues
// assumed feedback for segment 2.
//
//pace:stateless example sink; its counters only steer this demo's feedback moment
type decidingSink struct {
	exec.Base
	seen     atomic.Int64
	perSeg   [3]int64
	feedback bool
}

func (s *decidingSink) Name() string               { return "deciding-sink" }
func (s *decidingSink) InSchemas() []repro.Schema  { return []repro.Schema{schema} }
func (s *decidingSink) OutSchemas() []repro.Schema { return nil }

func (s *decidingSink) ProcessTuple(_ int, t stream.Tuple, ctx repro.Context) error {
	s.perSeg[t.At(0).AsInt()%3]++
	if s.seen.Add(1) == 50 && !s.feedback {
		s.feedback = true
		fb := repro.NewAssumed(repro.OnAttr(schema.Arity(), 0, repro.Eq(repro.Int(2))))
		fmt.Printf("sink: issuing feedback %v after 50 tuples\n", fb)
		ctx.SendFeedback(0, fb)
	}
	return nil
}

func main() {
	// 3000 readings round-robin across segments 0, 1, 2.
	var tuples []repro.Tuple
	for i := 0; i < 3000; i++ {
		tuples = append(tuples, repro.NewTuple(
			repro.Int(int64(i%3)),
			repro.TimeMicros(int64(i)*1000),
			repro.Float(55+float64(i%10)),
		).WithSeq(int64(i)))
	}
	src := repro.NewSliceSource("sensors", schema, tuples...)
	src.FeedbackAware = true
	src.BatchSize = 8

	filter := &repro.Select{
		OpName:    "filter",
		Schema:    schema,
		Cond:      func(t repro.Tuple) bool { return t.At(2).AsFloat() < 100 },
		Mode:      repro.FeedbackExploit,
		Propagate: true,
	}
	sink := &decidingSink{}

	g := repro.NewGraph()
	// Small pages and shallow queues: backpressure keeps the source only
	// slightly ahead of the sink, so the relayed feedback arrives while
	// most of the stream is still ungenerated.
	g.SetQueueOptions(repro.QueueOptions{PageSize: 8, Depth: 2, FlushOnPunct: true})
	srcNode := g.AddSource(src)
	fNode := g.Add(filter, repro.From(srcNode))
	g.Add(sink, repro.From(fNode))

	if err := g.Run(); err != nil {
		log.Fatal(err)
	}

	in, out, suppressed := filter.Stats()
	fmt.Printf("filter: %d in, %d out, %d suppressed by the feedback guard\n", in, out, suppressed)
	fmt.Printf("source: %d tuples suppressed before generation\n", src.Skipped())
	fmt.Printf("sink:   segment counts %v (segment 2 stops shortly after feedback)\n", sink.perSeg)
}
