package punct

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func TestPredMatches(t *testing.T) {
	tests := []struct {
		p    Pred
		v    stream.Value
		want bool
	}{
		{Wild, stream.Int(5), true},
		{Wild, stream.Null, true},
		{Eq(stream.Int(5)), stream.Int(5), true},
		{Eq(stream.Int(5)), stream.Int(6), false},
		{Eq(stream.Int(5)), stream.Null, false},
		{Ne(stream.Int(5)), stream.Int(6), true},
		{Ne(stream.Int(5)), stream.Int(5), false},
		{Lt(stream.Int(5)), stream.Int(4), true},
		{Lt(stream.Int(5)), stream.Int(5), false},
		{Le(stream.Int(5)), stream.Int(5), true},
		{Gt(stream.Float(1.5)), stream.Float(2), true},
		{Ge(stream.Int(5)), stream.Int(5), true},
		{Ge(stream.Int(5)), stream.Int(4), false},
		{Range(stream.Int(2), stream.Int(4)), stream.Int(3), true},
		{Range(stream.Int(2), stream.Int(4)), stream.Int(2), true},
		{Range(stream.Int(2), stream.Int(4)), stream.Int(5), false},
		{OneOf(stream.Int(1), stream.Int(3)), stream.Int(3), true},
		{OneOf(stream.Int(1), stream.Int(3)), stream.Int(2), false},
		{NullPred(), stream.Null, true},
		{NullPred(), stream.Int(0), false},
		{Le(stream.Int(5)), stream.Null, false},
	}
	for i, tc := range tests {
		if got := tc.p.Matches(tc.v); got != tc.want {
			t.Errorf("case %d: %v.Matches(%v) = %v, want %v", i, tc.p, tc.v, got, tc.want)
		}
	}
}

func TestPredMatchesMixedNumeric(t *testing.T) {
	if !Le(stream.Float(5.5)).Matches(stream.Int(5)) {
		t.Error("int value should satisfy float bound")
	}
	if !Eq(stream.Int(5)).Matches(stream.Float(5.0)) {
		t.Error("float 5.0 should equal int 5")
	}
}

func TestPredImpliesTable(t *testing.T) {
	i := stream.Int
	tests := []struct {
		p, q Pred
		want bool
	}{
		{Le(i(3)), Le(i(5)), true},
		{Le(i(5)), Le(i(3)), false},
		{Lt(i(5)), Le(i(5)), true},
		{Le(i(5)), Lt(i(5)), false},
		{Lt(i(5)), Le(i(4)), false}, // int domain unknown to the solver: conservative
		{Eq(i(4)), Le(i(5)), true},
		{Eq(i(6)), Le(i(5)), false},
		{Ge(i(5)), Gt(i(4)), true},
		{Gt(i(4)), Ge(i(5)), false}, // conservative on non-integer reasoning
		{Range(i(2), i(4)), Le(i(5)), true},
		{Range(i(2), i(4)), Ge(i(2)), true},
		{Range(i(2), i(4)), Range(i(1), i(5)), true},
		{Range(i(1), i(5)), Range(i(2), i(4)), false},
		{OneOf(i(1), i(2)), Le(i(2)), true},
		{OneOf(i(1), i(9)), Le(i(2)), false},
		{Eq(i(3)), OneOf(i(1), i(3)), true},
		{Wild, Wild, true},
		{Le(i(3)), Wild, true},
		{Wild, Le(i(3)), false},
		{NullPred(), NullPred(), true},
		{NullPred(), Le(i(3)), false},
		{Eq(i(3)), NullPred(), false},
	}
	for idx, tc := range tests {
		if got := tc.p.Implies(tc.q); got != tc.want {
			t.Errorf("case %d: (%v).Implies(%v) = %v, want %v", idx, tc.p, tc.q, got, tc.want)
		}
	}
}

func TestPredOverlapsTable(t *testing.T) {
	i := stream.Int
	tests := []struct {
		p, q Pred
		want bool
	}{
		{Le(i(3)), Ge(i(5)), false},
		{Le(i(5)), Ge(i(5)), true},
		{Lt(i(5)), Ge(i(5)), false},
		{Range(i(1), i(3)), Range(i(4), i(6)), false},
		{Range(i(1), i(4)), Range(i(4), i(6)), true},
		{Eq(i(3)), Le(i(2)), false},
		{Eq(i(3)), Le(i(3)), true},
		{OneOf(i(1), i(2)), Ge(i(2)), true},
		{OneOf(i(1), i(2)), Ge(i(3)), false},
		{Wild, Le(i(0)), true},
		{NullPred(), Le(i(5)), false},
		{NullPred(), NullPred(), true},
	}
	for idx, tc := range tests {
		if got := tc.p.Overlaps(tc.q); got != tc.want {
			t.Errorf("case %d: (%v).Overlaps(%v) = %v, want %v", idx, tc.p, tc.q, got, tc.want)
		}
		if got := tc.q.Overlaps(tc.p); got != tc.want {
			t.Errorf("case %d (sym): (%v).Overlaps(%v) = %v, want %v", idx, tc.q, tc.p, got, tc.want)
		}
	}
}

// randomPred generates an arbitrary predicate over a small int domain so
// that collisions between predicates are frequent.
func randomPred(r *rand.Rand) Pred {
	v := func() stream.Value { return stream.Int(r.Int63n(20) - 10) }
	switch r.Intn(8) {
	case 0:
		return Wild
	case 1:
		return Eq(v())
	case 2:
		return Lt(v())
	case 3:
		return Le(v())
	case 4:
		return Gt(v())
	case 5:
		return Ge(v())
	case 6:
		a, b := v(), v()
		if b.AsInt() < a.AsInt() {
			a, b = b, a
		}
		return Range(a, b)
	default:
		n := 1 + r.Intn(3)
		set := make([]stream.Value, n)
		for i := range set {
			set[i] = v()
		}
		return OneOf(set...)
	}
}

// TestPredImpliesSoundness: if p.Implies(q), every domain value matching p
// must match q.
func TestPredImpliesSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		p, q := randomPred(r), randomPred(r)
		if !p.Implies(q) {
			continue
		}
		for x := int64(-12); x <= 12; x++ {
			v := stream.Int(x)
			if p.Matches(v) && !q.Matches(v) {
				t.Fatalf("unsound: (%v).Implies(%v) but %v matches p not q", p, q, v)
			}
		}
	}
}

// TestPredOverlapsSoundness: if !p.Overlaps(q), no domain value may match
// both.
func TestPredOverlapsSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 5000; trial++ {
		p, q := randomPred(r), randomPred(r)
		if p.Overlaps(q) {
			continue
		}
		for x := int64(-12); x <= 12; x++ {
			v := stream.Int(x)
			if p.Matches(v) && q.Matches(v) {
				t.Fatalf("unsound: !(%v).Overlaps(%v) but %v matches both", p, q, v)
			}
		}
	}
}

// TestPredImpliesReflexiveTransitive uses quick over the random generator.
func TestPredImpliesReflexiveTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	reflexive := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		p := randomPred(rr)
		// Wild, IsNull, EQ, ranges: all should imply themselves except
		// cases the conservative solver cannot prove; enumerate to verify
		// at least soundness of self-implication when claimed.
		return !p.Implies(p) || true // self-implication may be unproven but must not crash
	}
	if err := quick.Check(reflexive, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Transitivity spot-check on provable chains.
	for trial := 0; trial < 3000; trial++ {
		p, q, s := randomPred(r), randomPred(r), randomPred(r)
		if p.Implies(q) && q.Implies(s) && !p.Implies(s) {
			// Transitivity may fail only through conservatism; verify
			// semantically that p ⊆ s still holds.
			for x := int64(-12); x <= 12; x++ {
				v := stream.Int(x)
				if p.Matches(v) && !s.Matches(v) {
					t.Fatalf("semantic transitivity broken: %v ⇒ %v ⇒ %v", p, q, s)
				}
			}
		}
	}
}
