package punct

import (
	"sync/atomic"

	"repro/internal/stream"
)

// compiledCount counts pattern compilations process-wide; exec registers it
// as a global telemetry var. Compilation is off the tuple path (patterns
// compile at guard install / pattern observe time), so one atomic add is
// free at the granularity that matters.
var compiledCount atomic.Int64

// CompiledCount reports how many patterns have been compiled.
func CompiledCount() int64 { return compiledCount.Load() }

// Compiled is the evaluation form of a Pattern: a flat table of the bound
// (non-wildcard) predicates only, with set predicates backed by hash maps
// instead of linear scans and integer-domain comparisons devirtualized.
// Matching a compiled pattern performs no allocation and skips wildcard
// attributes entirely — the common feedback shape ¬[*, …, ≤ts, …, *] costs
// one comparison per probe regardless of arity.
//
// A Compiled is immutable after construction and safe for concurrent use.
type Compiled struct {
	arity int
	preds []compiledPred
}

// compiledPred is one bound attribute predicate in evaluation form.
type compiledPred struct {
	attr int
	pred Pred
	// fastKind enables the devirtualized comparison path: when the
	// predicate's operand(s) are Int/Time/Bool, ordering is plain int64
	// comparison on Value.I for values of the same kind family.
	fastKind bool
	// set indexes In-predicate members by Value.Hash for O(1) membership;
	// buckets hold the values to resolve hash collisions with Equal.
	set map[uint64][]stream.Value
}

// setThreshold is the In-set size above which membership switches from a
// linear scan to the hash index; tiny sets scan faster than they hash.
const setThreshold = 4

// Compile builds the evaluation form of the pattern. The schema, when
// non-zero, is used to sanity-align arity (a pattern compiled against a
// schema of different arity matches nothing, mirroring Matches); passing
// the zero Schema compiles against the pattern's own arity.
func (p Pattern) Compile(schema stream.Schema) *Compiled {
	compiledCount.Add(1)
	arity := len(p.preds)
	if schema.Arity() > 0 {
		arity = schema.Arity()
	}
	c := &Compiled{arity: arity}
	if len(p.preds) != arity {
		// Arity mismatch: compile to a never-matching sentinel.
		c.preds = []compiledPred{{attr: -1}}
		return c
	}
	for i, pr := range p.preds {
		if pr.IsWild() {
			continue
		}
		c.preds = append(c.preds, newCompiledPred(i, pr))
	}
	return c
}

// newCompiledPred builds the evaluation form of one bound predicate.
func newCompiledPred(attr int, pr Pred) compiledPred {
	cp := compiledPred{attr: attr, pred: pr}
	switch pr.Op {
	case EQ, NE, LT, LE, GT, GE:
		cp.fastKind = intDomain(pr.Val.Kind)
	case Between:
		// Both bounds must share one integer-domain kind: mixed-kind
		// bounds have SQL-style incomparability semantics that only
		// the generic path reproduces.
		cp.fastKind = intDomain(pr.Val.Kind) && pr.Hi.Kind == pr.Val.Kind
	case In:
		if len(pr.Set) > setThreshold {
			cp.set = make(map[uint64][]stream.Value, len(pr.Set))
			for _, v := range pr.Set {
				h := v.Hash()
				cp.set[h] = append(cp.set[h], v)
			}
		}
	}
	return cp
}

// CompiledPred is the evaluation form of a single predicate outside any
// Pattern: the same devirtualized integer-domain comparisons and
// hash-indexed In-sets that Compile builds per bound attribute. op.Expr
// embeds these as flat expression steps.
type CompiledPred struct {
	cp compiledPred
}

// CompilePred builds the evaluation form of pr.
func CompilePred(pr Pred) CompiledPred {
	return CompiledPred{cp: newCompiledPred(0, pr)}
}

// Matches reports whether v satisfies the predicate. Equivalent to
// Pred.Matches; performs no allocation.
//
//pace:hotpath
func (c *CompiledPred) Matches(v stream.Value) bool {
	return c.cp.matches(v)
}

// intDomain reports whether the kind orders by the Value.I field alone.
func intDomain(k stream.Kind) bool {
	return k == stream.KindInt || k == stream.KindTime || k == stream.KindBool
}

// Arity returns the attribute count the compiled pattern was built for.
func (c *Compiled) Arity() int { return c.arity }

// NumBound returns the number of bound (evaluated) predicates.
func (c *Compiled) NumBound() int { return len(c.preds) }

// Matches reports whether the tuple satisfies every bound predicate. It is
// equivalent to the source Pattern's Matches and performs no allocation.
//
//pace:hotpath
func (c *Compiled) Matches(t stream.Tuple) bool {
	if c.arity != t.Arity() {
		return false
	}
	for i := range c.preds {
		cp := &c.preds[i]
		if cp.attr < 0 {
			return false // arity-mismatch sentinel
		}
		if !cp.matches(t.Values[cp.attr]) {
			return false
		}
	}
	return true
}

func (cp *compiledPred) matches(v stream.Value) bool {
	p := &cp.pred
	if p.Op == IsNull {
		return v.Kind == stream.KindNull
	}
	if v.Kind == stream.KindNull {
		return false
	}
	if cp.fastKind {
		// Same-kind integer-domain comparison: Int/Time/Bool order by I.
		// Mixed Int/Float comparisons fall through to the generic path.
		if v.Kind == p.Val.Kind {
			switch p.Op {
			case EQ:
				return v.I == p.Val.I
			case NE:
				return v.I != p.Val.I
			case LT:
				return v.I < p.Val.I
			case LE:
				return v.I <= p.Val.I
			case GT:
				return v.I > p.Val.I
			case GE:
				return v.I >= p.Val.I
			case Between:
				return v.I >= p.Val.I && v.I <= p.Hi.I
			}
		}
	}
	if p.Op == In && cp.set != nil {
		for _, m := range cp.set[v.Hash()] {
			if v.Equal(m) {
				return true
			}
		}
		return false
	}
	return p.Matches(v)
}
