package punct

import (
	"encoding/binary"
	"fmt"

	"repro/internal/stream"
)

// Binary pattern codec: the single wire encoding for punctuation patterns,
// shared by the network edge (internal/remote frames) and the checkpoint
// subsystem (internal/snapshot). The format is versioned and
// self-delimiting so patterns embed directly in larger frames:
//
//	version(1) | uvarint(arity) | pred...
//	pred: op(1) | payload   (payload per Op: none for Any/IsNull; Val for
//	      comparisons; Val+Hi for Between; uvarint(n)+values for In)

// wireVersion tags the pattern encoding; bump on incompatible change.
const wireVersion = 1

// AppendBinary appends the pattern's binary encoding to b and returns the
// extended buffer.
func (p Pattern) AppendBinary(b []byte) []byte {
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, uint64(len(p.preds)))
	for _, pr := range p.preds {
		b = append(b, byte(pr.Op))
		switch pr.Op {
		case Any, IsNull:
		case Between:
			b = pr.Val.AppendBinary(b)
			b = pr.Hi.AppendBinary(b)
		case In:
			b = binary.AppendUvarint(b, uint64(len(pr.Set)))
			for _, v := range pr.Set {
				b = v.AppendBinary(b)
			}
		default:
			b = pr.Val.AppendBinary(b)
		}
	}
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p Pattern) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil), nil }

// DecodePattern decodes one pattern from the front of b, returning the
// pattern and the remaining bytes.
func DecodePattern(b []byte) (Pattern, []byte, error) {
	if len(b) < 2 {
		return Pattern{}, nil, fmt.Errorf("punct: decode pattern: short buffer")
	}
	if b[0] != wireVersion {
		return Pattern{}, nil, fmt.Errorf("punct: decode pattern: unsupported version %d", b[0])
	}
	b = b[1:]
	arity, n := binary.Uvarint(b)
	if n <= 0 {
		return Pattern{}, nil, fmt.Errorf("punct: decode pattern: bad arity")
	}
	b = b[n:]
	// Every pred costs at least one byte, so an arity beyond the buffer is
	// corrupt; checking before make keeps hostile wire input from forcing
	// a huge allocation (this path decodes untrusted remote frames).
	if arity > uint64(len(b)) {
		return Pattern{}, nil, fmt.Errorf("punct: decode pattern: arity %d exceeds %d remaining bytes", arity, len(b))
	}
	preds := make([]Pred, arity)
	for i := range preds {
		if len(b) == 0 {
			return Pattern{}, nil, fmt.Errorf("punct: decode pattern: truncated at pred %d", i)
		}
		op := Op(b[0])
		b = b[1:]
		pr := Pred{Op: op}
		var err error
		switch op {
		case Any, IsNull:
		case Between:
			if pr.Val, b, err = stream.DecodeValue(b); err != nil {
				return Pattern{}, nil, err
			}
			if pr.Hi, b, err = stream.DecodeValue(b); err != nil {
				return Pattern{}, nil, err
			}
		case In:
			cnt, n := binary.Uvarint(b)
			if n <= 0 {
				return Pattern{}, nil, fmt.Errorf("punct: decode pattern: bad In-set length")
			}
			b = b[n:]
			if cnt > uint64(len(b)) {
				return Pattern{}, nil, fmt.Errorf("punct: decode pattern: In-set of %d exceeds %d remaining bytes", cnt, len(b))
			}
			pr.Set = make([]stream.Value, cnt)
			for j := range pr.Set {
				if pr.Set[j], b, err = stream.DecodeValue(b); err != nil {
					return Pattern{}, nil, err
				}
			}
		case EQ, NE, LT, LE, GT, GE:
			if pr.Val, b, err = stream.DecodeValue(b); err != nil {
				return Pattern{}, nil, err
			}
		default:
			return Pattern{}, nil, fmt.Errorf("punct: decode pattern: unknown op %d", op)
		}
		preds[i] = pr
	}
	return Pattern{preds: preds}, b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The buffer must
// contain exactly one pattern.
func (p *Pattern) UnmarshalBinary(data []byte) error {
	pat, rest, err := DecodePattern(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("punct: unmarshal pattern: %d trailing bytes", len(rest))
	}
	*p = pat
	return nil
}
