package punct

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// Property: Compile preserves Matches exactly, across every predicate
// operator, kind mix, and null placement.
func TestCompiledMatchesEquivalence(t *testing.T) {
	vals := []stream.Value{
		stream.Null,
		stream.Int(-3), stream.Int(0), stream.Int(7), stream.Int(100),
		stream.Float(-3), stream.Float(6.5), stream.Float(7),
		stream.String_(""), stream.String_("a"), stream.String_("zz"),
		stream.TimeMicros(0), stream.TimeMicros(1_000_000),
		stream.Bool(false), stream.Bool(true),
	}
	preds := func(r *rand.Rand) Pred {
		v := vals[r.Intn(len(vals))]
		switch r.Intn(10) {
		case 0:
			return Wild
		case 1:
			return Eq(v)
		case 2:
			return Ne(v)
		case 3:
			return Lt(v)
		case 4:
			return Le(v)
		case 5:
			return Gt(v)
		case 6:
			return Ge(v)
		case 7:
			return Range(v, vals[r.Intn(len(vals))])
		case 8:
			set := make([]stream.Value, 1+r.Intn(8)) // crosses setThreshold
			for i := range set {
				set[i] = vals[r.Intn(len(vals))]
			}
			return OneOf(set...)
		default:
			return NullPred()
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		arity := 1 + r.Intn(5)
		ps := make([]Pred, arity)
		for i := range ps {
			ps[i] = preds(r)
		}
		pat := NewPattern(ps...)
		c := pat.Compile(stream.Schema{})
		for trial := 0; trial < 50; trial++ {
			tv := make([]stream.Value, arity)
			for i := range tv {
				tv[i] = vals[r.Intn(len(vals))]
			}
			tup := stream.NewTuple(tv...)
			if pat.Matches(tup) != c.Matches(tup) {
				t.Logf("pattern %v tuple %v: interpreted=%v compiled=%v",
					pat, tup, pat.Matches(tup), c.Matches(tup))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Arity mismatches must match nothing, exactly like the interpreted form.
func TestCompiledArityMismatch(t *testing.T) {
	pat := OnAttr(3, 1, Le(stream.Int(5)))
	tup := stream.NewTuple(stream.Int(1), stream.Int(1))
	if pat.Matches(tup) || pat.Compile(stream.Schema{}).Matches(tup) {
		t.Error("arity mismatch must not match")
	}
	// Compiling against a schema of a different arity is a sentinel that
	// never matches.
	s3, err := stream.NewSchema(stream.F("a", stream.KindInt), stream.F("b", stream.KindInt))
	if err != nil {
		t.Fatal(err)
	}
	c := pat.Compile(s3)
	if c.Matches(tup) || c.Matches(stream.NewTuple(stream.Int(1), stream.Int(1), stream.Int(1))) {
		t.Error("schema/pattern arity mismatch must match nothing")
	}
}

// The common feedback shape evaluates only its bound attribute.
func TestCompiledSkipsWildcards(t *testing.T) {
	pat := OnAttr(6, 3, Le(stream.TimeMicros(1000)))
	c := pat.Compile(stream.Schema{})
	if c.NumBound() != 1 {
		t.Fatalf("bound predicates = %d, want 1", c.NumBound())
	}
	tup := stream.NewTuple(stream.Int(0), stream.Int(0), stream.Int(0),
		stream.TimeMicros(999), stream.Int(0), stream.Int(0))
	if !c.Matches(tup) {
		t.Error("must match")
	}
}

func BenchmarkCompiledSetMembership(b *testing.B) {
	set := make([]stream.Value, 64)
	for i := range set {
		set[i] = stream.Int(int64(i * 3))
	}
	pat := OnAttr(2, 0, OneOf(set...))
	c := pat.Compile(stream.Schema{})
	tup := stream.NewTuple(stream.Int(93), stream.Int(7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.Matches(tup) {
			b.Fatal("must match")
		}
	}
}
