package punct

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

var testSchema = stream.MustSchema(
	stream.F("segment", stream.KindInt),
	stream.F("ts", stream.KindTime),
	stream.F("speed", stream.KindFloat),
)

func TestPatternMatches(t *testing.T) {
	p := NewPattern(Eq(stream.Int(3)), Wild, Ge(stream.Float(50)))
	hit := stream.NewTuple(stream.Int(3), stream.TimeMicros(10), stream.Float(51))
	miss1 := stream.NewTuple(stream.Int(4), stream.TimeMicros(10), stream.Float(51))
	miss2 := stream.NewTuple(stream.Int(3), stream.TimeMicros(10), stream.Float(49))
	if !p.Matches(hit) || p.Matches(miss1) || p.Matches(miss2) {
		t.Error("pattern matching broken")
	}
	if p.Matches(stream.NewTuple(stream.Int(3))) {
		t.Error("arity mismatch must not match")
	}
}

func TestPatternBoundAndWild(t *testing.T) {
	p := OnAttr(3, 1, Le(stream.TimeMicros(100)))
	if b := p.Bound(); len(b) != 1 || b[0] != 1 {
		t.Errorf("Bound = %v", b)
	}
	if p.IsAllWild() || !AllWild(3).IsAllWild() {
		t.Error("IsAllWild")
	}
}

func TestPatternImpliesAndOverlaps(t *testing.T) {
	narrow := NewPattern(Eq(stream.Int(3)), Le(stream.TimeMicros(50)), Wild)
	wide := NewPattern(Wild, Le(stream.TimeMicros(100)), Wild)
	if !narrow.Implies(wide) {
		t.Error("narrow should imply wide")
	}
	if wide.Implies(narrow) {
		t.Error("wide must not imply narrow")
	}
	disjoint := NewPattern(Eq(stream.Int(4)), Wild, Wild)
	if narrow.Overlaps(disjoint) {
		t.Error("disjoint segments must not overlap")
	}
	if !narrow.Overlaps(wide) {
		t.Error("nested patterns overlap")
	}
}

func TestPatternProjectAndResidual(t *testing.T) {
	// Output keeps (speed, segment): mapping output→input = [2, 0].
	p := NewPattern(Eq(stream.Int(3)), Wild, Ge(stream.Float(50)))
	proj := p.Project([]int{2, 0})
	if !proj.Pred(0).Matches(stream.Float(55)) || proj.Pred(0).Matches(stream.Float(45)) {
		t.Error("projected speed predicate wrong")
	}
	if !proj.Pred(1).Matches(stream.Int(3)) || proj.Pred(1).Matches(stream.Int(4)) {
		t.Error("projected segment predicate wrong")
	}
	res := p.Residual([]int{2, 0})
	if !res.IsAllWild() {
		t.Errorf("all bound attrs carried: residual should be wild, got %v", res)
	}
	res2 := p.Residual([]int{1}) // only ts carried; segment+speed lost
	if res2.IsAllWild() {
		t.Error("residual must retain lost conjuncts")
	}
}

func TestPatternWith(t *testing.T) {
	p := AllWild(3)
	q := p.With(0, Eq(stream.Int(1)))
	if p.Pred(0).Op != Any {
		t.Error("With must not mutate the receiver")
	}
	if q.Pred(0).Op != EQ {
		t.Error("With must set the predicate")
	}
}

func TestPatternParsePrintRoundTrip(t *testing.T) {
	cases := []string{
		"[*, *, *]",
		"[3, *, >=50]",
		"[*, <=1970-01-01T00:00:00.100000Z, *]",
		"[{1|2|3}, *, <5]",
		"[*, *, [10..20]]",
		"[!=4, *, *]",
		"[null, *, *]",
	}
	for _, s := range cases {
		p, err := ParsePattern(s, testSchema)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		back, err := ParsePattern(p.String(), testSchema)
		if err != nil {
			t.Fatalf("reparse %q: %v", p.String(), err)
		}
		if !p.Equal(back) {
			t.Errorf("round trip %q → %q not equal", s, p.String())
		}
	}
}

func TestPatternParseErrors(t *testing.T) {
	for _, s := range []string{"", "3, *, *", "[3, *]", "[x, *, *]"} {
		if _, err := ParsePattern(s, testSchema); err == nil {
			t.Errorf("ParsePattern(%q) should fail", s)
		}
	}
}

// Property: Project then match agrees with matching the original pattern on
// the pre-image for carried attributes.
func TestPatternProjectSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		p := NewPattern(randomPred(r), randomPred(r), randomPred(r))
		mapping := []int{r.Intn(4) - 1, r.Intn(4) - 1} // output of arity 2
		proj := p.Project(mapping)
		// Build a random input tuple and its projection.
		in := stream.NewTuple(
			stream.Int(r.Int63n(20)-10),
			stream.Int(r.Int63n(20)-10),
			stream.Int(r.Int63n(20)-10),
		)
		outVals := make([]stream.Value, 2)
		for i, src := range mapping {
			if src >= 0 && src < 3 {
				outVals[i] = in.At(src)
			} else {
				outVals[i] = stream.Int(0)
			}
		}
		out := stream.NewTuple(outVals...)
		// If the input matches p, the projected tuple must match proj
		// whenever the projection carries the bound attributes.
		if p.Matches(in) {
			carriedAll := true
			carried := map[int]bool{}
			for _, src := range mapping {
				if src >= 0 {
					carried[src] = true
				}
			}
			for _, b := range p.Bound() {
				if !carried[b] {
					carriedAll = false
				}
			}
			if carriedAll && !proj.Matches(out) {
				t.Fatalf("projection lost a match: p=%v mapping=%v in=%v", p, mapping, in)
			}
		}
	}
}

func TestEmbeddedCovers(t *testing.T) {
	e := NewEmbedded(OnAttr(3, 1, Le(stream.TimeMicros(100))))
	covered := OnAttr(3, 1, Le(stream.TimeMicros(50)))
	uncovered := OnAttr(3, 1, Le(stream.TimeMicros(150)))
	if !e.Covers(covered) || e.Covers(uncovered) {
		t.Error("Covers")
	}
}

func TestTimePunct(t *testing.T) {
	e := TimePunct(3, 1, 5000)
	if got := e.Pattern.Pred(1); got.Op != LE || got.Val.Micros() != 5000 {
		t.Errorf("TimePunct: %v", e)
	}
	if !e.Pattern.Pred(0).IsWild() || !e.Pattern.Pred(2).IsWild() {
		t.Error("TimePunct must bind only the ts attribute")
	}
}
