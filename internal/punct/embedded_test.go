package punct

import (
	"testing"

	"repro/internal/stream"
)

func le(us int64) Pred { return Le(stream.TimeMicros(us)) }

func TestSchemeWatermarkProgress(t *testing.T) {
	s := NewScheme(3)
	s.Observe(NewEmbedded(OnAttr(3, 1, le(100))))
	if !s.Delimited(1) || s.Delimited(0) || s.Delimited(2) {
		t.Error("delimitation after one watermark punctuation")
	}
	if w := s.Watermark(1); w == nil || w.Val.Micros() != 100 {
		t.Errorf("watermark: %v", w)
	}
	// Regressing punctuation must not move the watermark backwards.
	s.Observe(NewEmbedded(OnAttr(3, 1, le(50))))
	if w := s.Watermark(1); w.Val.Micros() != 100 {
		t.Errorf("watermark regressed: %v", w)
	}
	s.Observe(NewEmbedded(OnAttr(3, 1, le(200))))
	if w := s.Watermark(1); w.Val.Micros() != 200 {
		t.Errorf("watermark should advance: %v", w)
	}
}

func TestSchemeCoversPattern(t *testing.T) {
	s := NewScheme(2)
	s.Observe(NewEmbedded(OnAttr(2, 0, le(100))))
	if !s.CoversPattern(OnAttr(2, 0, le(80))) {
		t.Error("feedback below the watermark should be covered")
	}
	if s.CoversPattern(OnAttr(2, 0, le(120))) {
		t.Error("feedback above the watermark must not be covered")
	}
	// Multi-attribute: covering one conjunct suffices.
	multi := NewPattern(le(80), Ge(stream.Float(50)))
	if !s.CoversPattern(multi) {
		t.Error("covering one bound conjunct excludes the whole subset")
	}
}

func TestSchemeClosedValues(t *testing.T) {
	s := NewScheme(2)
	s.Observe(NewEmbedded(OnAttr(2, 0, Eq(stream.Int(4)))))
	if !s.Delimited(0) {
		t.Error("exact-value punctuation delimits the attribute")
	}
	if !s.CoversPattern(OnAttr(2, 0, Eq(stream.Int(4)))) {
		t.Error("closed value must cover equal feedback")
	}
	if s.CoversPattern(OnAttr(2, 0, Eq(stream.Int(5)))) {
		t.Error("different value must not be covered")
	}
	s.Observe(NewEmbedded(OnAttr(2, 0, OneOf(stream.Int(7), stream.Int(8)))))
	if !s.CoversPattern(OnAttr(2, 0, OneOf(stream.Int(4), stream.Int(7)))) {
		t.Error("set feedback covered element-wise")
	}
	if s.CoversPattern(OnAttr(2, 0, OneOf(stream.Int(4), stream.Int(9)))) {
		t.Error("partially closed set must not be covered")
	}
}

func TestSchemeSupportable(t *testing.T) {
	// The paper's §4.4 example: feedback on punctuated timestamps is
	// supportable; feedback on never-punctuated amounts is not.
	s := NewScheme(2) // (ts, amount)
	s.Observe(NewEmbedded(OnAttr(2, 0, le(100))))
	if !s.Supportable(OnAttr(2, 0, le(50))) {
		t.Error("'no bids before 1pm' must be supportable")
	}
	if s.Supportable(OnAttr(2, 1, Gt(stream.Float(1.00)))) {
		t.Error("'no bids over $1' must be unsupportable (amounts never punctuated)")
	}
	// Mixed: ts delimited but amount not → unsupportable as a whole.
	mixed := NewPattern(le(50), Gt(stream.Float(1.00)))
	if s.Supportable(mixed) {
		t.Error("conjunction with an undelimited attribute is unsupportable")
	}
	if s.Supportable(AllWild(2)) {
		t.Error("all-wild is never supportable feedback")
	}
}

func TestSchemeIgnoresMultiAttributePunct(t *testing.T) {
	s := NewScheme(2)
	s.Observe(NewEmbedded(NewPattern(le(100), Eq(stream.Float(5)))))
	if s.Delimited(0) || s.Delimited(1) {
		t.Error("multi-attribute punctuation must not delimit conservatively")
	}
}

func TestSchemeArityMismatchSafe(t *testing.T) {
	s := NewScheme(2)
	s.Observe(NewEmbedded(OnAttr(3, 0, le(10)))) // wrong arity: ignored
	if s.Delimited(0) {
		t.Error("wrong-arity punctuation must be ignored")
	}
	if s.Delimited(-1) || s.Delimited(9) {
		t.Error("out-of-range attribute queries must be false")
	}
}
