package punct

import (
	"repro/internal/stream"
)

// Embedded is punctuation that flows with the data stream (Tucker et al.;
// §3.1 of the paper). It asserts that no future tuple in the stream will
// match Pattern. Operators use embedded punctuation to unblock (emit
// finished windows) and to purge state.
type Embedded struct {
	Pattern Pattern
}

// NewEmbedded wraps a pattern as embedded punctuation.
func NewEmbedded(p Pattern) Embedded { return Embedded{Pattern: p} }

// TimePunct builds the most common embedded punctuation: "all tuples with
// timestamp ≤ ts (at attribute attr) have been seen", i.e. [*,…,≤ts,…,*].
func TimePunct(arity, attr int, tsMicros int64) Embedded {
	return Embedded{Pattern: OnAttr(arity, attr, Le(stream.TimeMicros(tsMicros)))}
}

// String renders the punctuation in bracket notation.
func (e Embedded) String() string { return e.Pattern.String() }

// Covers reports whether this punctuation's guarantee subsumes the given
// pattern: every tuple matching p is promised to never appear again.
// This is the test used for feedback expiration (paper §4.4): once embedded
// punctuation covers a feedback predicate, guards and state for that
// feedback can be released.
func (e Embedded) Covers(p Pattern) bool { return p.Implies(e.Pattern) }

// Scheme tracks, per attribute, the strongest progress guarantee seen so
// far from embedded punctuation, and answers which attributes are
// "delimited" in the paper's sense (§4.4): covered by progressing embedded
// punctuation, and therefore able to support feedback without unbounded
// state accumulation.
//
// The tracker recognises the practical punctuation shapes — prefix
// punctuation ≤v / <v on an ordered attribute (progress watermarks) and
// exact-value punctuation =v / in-set (e.g. "auction #4 has closed").
type Scheme struct {
	arity int
	// watermark[i] holds the highest inclusive bound asserted for
	// attribute i by prefix punctuation, or nil if none seen.
	watermark []*Pred
	// closed[i] accumulates exact values asserted complete for attribute i.
	closed [][]stream.Value
	// seen counts punctuations observed per attribute.
	seen []int
}

// NewScheme creates a tracker for streams of the given arity.
func NewScheme(arity int) *Scheme {
	return &Scheme{
		arity:     arity,
		watermark: make([]*Pred, arity),
		closed:    make([][]stream.Value, arity),
		seen:      make([]int, arity),
	}
}

// Observe folds one embedded punctuation into the tracker. Only
// single-attribute punctuations advance per-attribute guarantees;
// multi-attribute punctuations are recorded but conservatively ignored for
// delimitation.
func (s *Scheme) Observe(e Embedded) {
	if e.Pattern.Arity() != s.arity {
		return
	}
	// Inline single-bound-attribute scan: this runs per punctuation per
	// guard table, so it must not allocate (Pattern.Bound builds a slice).
	i := -1
	for a := 0; a < s.arity; a++ {
		if e.Pattern.Pred(a).IsWild() {
			continue
		}
		if i >= 0 {
			return // multi-attribute: recorded nowhere, ignored for delimitation
		}
		i = a
	}
	if i < 0 {
		return
	}
	s.seen[i]++
	pr := e.Pattern.Pred(i)
	switch pr.Op {
	case LE, LT:
		w := s.watermark[i]
		switch {
		case w == nil:
			p := pr
			s.watermark[i] = &p
		case w.Op == pr.Op:
			// Same-shape prefix bounds widen iff the new bound is strictly
			// larger: one value comparison instead of two Implies walks
			// (this path runs per punctuation per guard table).
			if c, ok := pr.Val.Compare(w.Val); ok && c > 0 {
				*w = pr // overwrite in place: no per-punct allocation
			}
		case widens(*w, pr):
			*w = pr
		}
	case EQ:
		s.closed[i] = append(s.closed[i], pr.Val)
	case In:
		s.closed[i] = append(s.closed[i], pr.Set...)
	}
}

// widens reports whether candidate covers strictly more than current
// (both LE/LT preds on the same attribute).
func widens(current, candidate Pred) bool {
	return current.Implies(candidate) && !candidate.Implies(current)
}

// Delimited reports whether attribute i has shown progressing punctuation,
// i.e. supports feedback whose state will eventually be released.
func (s *Scheme) Delimited(i int) bool {
	if i < 0 || i >= s.arity {
		return false
	}
	return s.watermark[i] != nil || len(s.closed[i]) > 0
}

// Watermark returns the current prefix guarantee on attribute i (nil if
// none). The returned predicate matches exactly the values promised
// complete.
func (s *Scheme) Watermark(i int) *Pred {
	if i < 0 || i >= s.arity || s.watermark[i] == nil {
		return nil
	}
	p := *s.watermark[i]
	return &p
}

// CoversPattern reports whether the accumulated guarantees cover the given
// pattern (every tuple matching p is promised to never appear again). It
// checks single-attribute patterns against the watermark and closed-value
// sets; multi-attribute patterns are covered if ANY bound attribute is
// covered (a tuple must match all conjuncts to match p, so excluding one
// conjunct excludes the tuple).
func (s *Scheme) CoversPattern(p Pattern) bool {
	if p.Arity() != s.arity {
		return false
	}
	for _, i := range p.Bound() {
		if s.coversPred(i, p.Pred(i)) {
			return true
		}
	}
	return false
}

func (s *Scheme) coversPred(i int, pr Pred) bool {
	if w := s.watermark[i]; w != nil && pr.Implies(*w) {
		return true
	}
	// Exact-value feedback covered by closed values.
	if pr.Op == EQ {
		for _, v := range s.closed[i] {
			if v.Equal(pr.Val) {
				return true
			}
		}
	}
	if pr.Op == In && len(pr.Set) > 0 {
		matched := 0
		for _, want := range pr.Set {
			for _, v := range s.closed[i] {
				if v.Equal(want) {
					matched++
					break
				}
			}
		}
		return matched == len(pr.Set)
	}
	return false
}

// Supportable implements the paper's §4.4 test for feedback admissibility:
// a feedback pattern is supportable when every bound attribute is
// delimited, so that the guard/state it induces is guaranteed to be
// releasable by future embedded punctuation. ("Don't show bids more than
// $1.00" is unsupportable because amounts are never punctuated.)
func (s *Scheme) Supportable(p Pattern) bool {
	bound := p.Bound()
	if len(bound) == 0 {
		return false
	}
	for _, i := range bound {
		if !s.Delimited(i) {
			return false
		}
	}
	return true
}
