package punct

import (
	"fmt"
	"strings"

	"repro/internal/stream"
)

// Pattern is a punctuation pattern: one predicate per attribute of a schema.
// A tuple matches iff every attribute satisfies its predicate. Patterns are
// treated as immutable after construction.
type Pattern struct {
	preds []Pred
}

// NewPattern builds a pattern from per-attribute predicates.
func NewPattern(preds ...Pred) Pattern {
	return Pattern{preds: append([]Pred(nil), preds...)}
}

// AllWild returns a pattern of the given arity matching every tuple.
func AllWild(arity int) Pattern {
	preds := make([]Pred, arity)
	for i := range preds {
		preds[i] = Wild
	}
	return Pattern{preds: preds}
}

// OnAttr returns a pattern of the given arity with a single non-wildcard
// predicate at attribute i. This is the most common feedback shape, e.g.
// ¬[*, *, ≤ts] is OnAttr(3, 2, Le(ts)).
func OnAttr(arity, i int, p Pred) Pattern {
	pat := AllWild(arity)
	pat.preds[i] = p
	return pat
}

// Arity returns the number of attribute predicates.
func (p Pattern) Arity() int { return len(p.preds) }

// Pred returns the predicate at attribute i.
func (p Pattern) Pred(i int) Pred { return p.preds[i] }

// Preds returns a copy of the predicate list.
func (p Pattern) Preds() []Pred { return append([]Pred(nil), p.preds...) }

// With returns a copy of the pattern with attribute i replaced.
func (p Pattern) With(i int, pred Pred) Pattern {
	out := append([]Pred(nil), p.preds...)
	out[i] = pred
	return Pattern{preds: out}
}

// IsAllWild reports whether every predicate is the wildcard.
func (p Pattern) IsAllWild() bool {
	for _, pr := range p.preds {
		if !pr.IsWild() {
			return false
		}
	}
	return true
}

// Bound returns the indices of non-wildcard attributes. The paper calls a
// pattern with exactly one bound attribute a "single-attribute" punctuation;
// propagation safety analysis (core.SafePropagation) depends on this set.
func (p Pattern) Bound() []int {
	var out []int
	for i, pr := range p.preds {
		if !pr.IsWild() {
			out = append(out, i)
		}
	}
	return out
}

// Matches reports whether the tuple satisfies every attribute predicate.
//
//pace:hotpath
func (p Pattern) Matches(t stream.Tuple) bool {
	if len(p.preds) != t.Arity() {
		return false
	}
	for i, pr := range p.preds {
		if !pr.Matches(t.At(i)) {
			return false
		}
	}
	return true
}

// Implies reports whether p ⇒ q: every tuple matching p also matches q.
// Conservative (false means "unproven").
func (p Pattern) Implies(q Pattern) bool {
	if len(p.preds) != len(q.preds) {
		return false
	}
	for i := range p.preds {
		if !p.preds[i].Implies(q.preds[i]) {
			return false
		}
	}
	return true
}

// Overlaps conservatively reports whether some tuple can match both
// patterns. False is sound (provably disjoint); true may be a false
// positive.
func (p Pattern) Overlaps(q Pattern) bool {
	if len(p.preds) != len(q.preds) {
		return false
	}
	for i := range p.preds {
		if !p.preds[i].Overlaps(q.preds[i]) {
			return false
		}
	}
	return true
}

// Project maps the pattern onto a different attribute space. mapping[i]
// gives, for each output attribute i of the projected pattern, the source
// attribute in p, or -1 if the output attribute has no corresponding source
// (the predicate becomes wildcard).
//
// Project implements the schema-mapping step of feedback propagation: a
// JOIN with output (L, J, R) propagating to its left input (L, J) projects
// the feedback pattern through the identity on L∪J and drops R.
func (p Pattern) Project(mapping []int) Pattern {
	out := make([]Pred, len(mapping))
	for i, src := range mapping {
		if src < 0 || src >= len(p.preds) {
			out[i] = Wild
		} else {
			out[i] = p.preds[src]
		}
	}
	return Pattern{preds: out}
}

// Residual returns the predicates of p on attributes NOT carried by the
// mapping, i.e. the part of the pattern that a projection loses. Safe
// propagation requires the residual to be all-wildcard unless the operator
// can guarantee the lost conjuncts independently (see core.SafePropagation).
func (p Pattern) Residual(mapping []int) Pattern {
	carried := make([]bool, len(p.preds))
	for _, src := range mapping {
		if src >= 0 && src < len(p.preds) {
			carried[src] = true
		}
	}
	out := append([]Pred(nil), p.preds...)
	for i := range out {
		if carried[i] {
			out[i] = Wild
		}
	}
	return Pattern{preds: out}
}

// Equal reports structural equality of patterns.
func (p Pattern) Equal(q Pattern) bool {
	if len(p.preds) != len(q.preds) {
		return false
	}
	for i := range p.preds {
		if !predEqual(p.preds[i], q.preds[i]) {
			return false
		}
	}
	return true
}

func predEqual(a, b Pred) bool {
	if a.Op != b.Op {
		return false
	}
	switch a.Op {
	case Any, IsNull:
		return true
	case Between:
		return a.Val.Equal(b.Val) && a.Hi.Equal(b.Hi)
	case In:
		if len(a.Set) != len(b.Set) {
			return false
		}
		for i := range a.Set {
			if !a.Set[i].Equal(b.Set[i]) {
				return false
			}
		}
		return true
	default:
		return a.Val.Equal(b.Val)
	}
}

// String renders the pattern in the paper's bracket notation, e.g.
// [*, *, <=2008-12-08T09:00:00.000000Z].
func (p Pattern) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, pr := range p.preds {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(pr.String())
	}
	b.WriteByte(']')
	return b.String()
}

// ParsePattern parses the bracket notation produced by String against a
// schema (the schema supplies attribute kinds for literal parsing).
func ParsePattern(s string, schema stream.Schema) (Pattern, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return Pattern{}, fmt.Errorf("punct: pattern must be bracketed: %q", s)
	}
	parts := splitTop(s[1 : len(s)-1])
	if len(parts) != schema.Arity() {
		return Pattern{}, fmt.Errorf("punct: pattern arity %d != schema arity %d", len(parts), schema.Arity())
	}
	preds := make([]Pred, len(parts))
	for i, part := range parts {
		pr, err := parsePred(strings.TrimSpace(part), schema.Field(i).Kind)
		if err != nil {
			return Pattern{}, fmt.Errorf("punct: attribute %d: %w", i, err)
		}
		preds[i] = pr
	}
	return Pattern{preds: preds}, nil
}

func parsePred(s string, kind stream.Kind) (Pred, error) {
	switch {
	case s == "*":
		return Wild, nil
	case s == "null":
		return NullPred(), nil
	case strings.HasPrefix(s, "<="):
		v, err := stream.ParseValue(kind, strings.TrimSpace(s[2:]))
		return Le(v), err
	case strings.HasPrefix(s, ">="):
		v, err := stream.ParseValue(kind, strings.TrimSpace(s[2:]))
		return Ge(v), err
	case strings.HasPrefix(s, "!="):
		v, err := stream.ParseValue(kind, strings.TrimSpace(s[2:]))
		return Ne(v), err
	case strings.HasPrefix(s, "<"):
		v, err := stream.ParseValue(kind, strings.TrimSpace(s[1:]))
		return Lt(v), err
	case strings.HasPrefix(s, ">"):
		v, err := stream.ParseValue(kind, strings.TrimSpace(s[1:]))
		return Gt(v), err
	case strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}"):
		items := strings.Split(s[1:len(s)-1], "|")
		set := make([]stream.Value, 0, len(items))
		for _, it := range items {
			v, err := stream.ParseValue(kind, strings.TrimSpace(it))
			if err != nil {
				return Pred{}, err
			}
			set = append(set, v)
		}
		return OneOf(set...), nil
	case strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") && strings.Contains(s, ".."):
		body := s[1 : len(s)-1]
		halves := strings.SplitN(body, "..", 2)
		lo, err := stream.ParseValue(kind, strings.TrimSpace(halves[0]))
		if err != nil {
			return Pred{}, err
		}
		hi, err := stream.ParseValue(kind, strings.TrimSpace(halves[1]))
		if err != nil {
			return Pred{}, err
		}
		return Range(lo, hi), nil
	default:
		v, err := stream.ParseValue(kind, s)
		return Eq(v), err
	}
}

// splitTop splits on commas not nested inside {...}, [...] or quotes.
func splitTop(s string) []string {
	var parts []string
	depth := 0
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\' && inQuote:
			i++
		case c == '"':
			inQuote = !inQuote
		case inQuote:
		case c == '{' || c == '[':
			depth++
		case c == '}' || c == ']':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}
