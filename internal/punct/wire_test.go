package punct

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// randValue draws a value of a random kind (biased toward the domains
// punctuation actually binds: ints and times).
func randValue(rng *rand.Rand) stream.Value {
	switch rng.Intn(6) {
	case 0:
		return stream.Int(rng.Int63n(1<<40) - (1 << 39))
	case 1:
		return stream.TimeMicros(rng.Int63n(1 << 50))
	case 2:
		return stream.Float(rng.NormFloat64() * 1e6)
	case 3:
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256)) // arbitrary bytes, not just ASCII
		}
		return stream.String_(string(b))
	case 4:
		return stream.Bool(rng.Intn(2) == 0)
	default:
		return stream.Null
	}
}

// randPred draws a predicate over every Op the codec must carry.
func randPred(rng *rand.Rand) Pred {
	switch rng.Intn(10) {
	case 0:
		return Wild
	case 1:
		return NullPred()
	case 2:
		return Eq(randValue(rng))
	case 3:
		return Ne(randValue(rng))
	case 4:
		return Lt(randValue(rng))
	case 5:
		return Le(randValue(rng))
	case 6:
		return Gt(randValue(rng))
	case 7:
		return Ge(randValue(rng))
	case 8:
		return Range(randValue(rng), randValue(rng))
	default:
		n := rng.Intn(6)
		set := make([]stream.Value, n)
		for i := range set {
			set[i] = randValue(rng)
		}
		return OneOf(set...)
	}
}

// TestPatternWireRoundTrip is the property test for the shared wire
// encoding: every randomly drawn pattern survives
// MarshalBinary → UnmarshalBinary structurally intact, and the encoding is
// self-delimiting (two concatenated patterns decode back in order).
func TestPatternWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		arity := 1 + rng.Intn(6)
		preds := make([]Pred, arity)
		for j := range preds {
			preds[j] = randPred(rng)
		}
		p := NewPattern(preds...)
		raw, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("iteration %d: marshal: %v", i, err)
		}
		var q Pattern
		if err := q.UnmarshalBinary(raw); err != nil {
			t.Fatalf("iteration %d: unmarshal %s: %v", i, p, err)
		}
		if !p.Equal(q) {
			t.Fatalf("iteration %d: round trip changed pattern: %s -> %s", i, p, q)
		}

		// Self-delimiting: a second pattern appended to the same buffer
		// decodes from the remainder.
		p2 := OnAttr(arity, rng.Intn(arity), Le(stream.Int(int64(i))))
		both := p2.AppendBinary(append([]byte(nil), raw...))
		d1, rest, err := DecodePattern(both)
		if err != nil || !d1.Equal(p) {
			t.Fatalf("iteration %d: first of concatenated pair: %v", i, err)
		}
		d2, rest, err := DecodePattern(rest)
		if err != nil || !d2.Equal(p2) || len(rest) != 0 {
			t.Fatalf("iteration %d: second of concatenated pair: %v (rest=%d)", i, err, len(rest))
		}
	}
}

// TestPatternWireRejectsGarbage checks the decoder fails cleanly instead of
// panicking on malformed input.
func TestPatternWireRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x7f, 0x01},                        // wrong version
		{wireVersion},                       // missing arity
		{wireVersion, 0x02, 200},            // unknown op
		{wireVersion, 0x01, byte(EQ)},       // truncated value
		{wireVersion, 0x01, byte(In), 0x05}, // In-set shorter than declared
		// Huge declared counts must error, not drive a giant allocation.
		{wireVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f},
		{wireVersion, 0x01, byte(In), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for i, raw := range cases {
		var p Pattern
		if err := p.UnmarshalBinary(raw); err == nil {
			t.Errorf("case %d: malformed input %v decoded without error", i, raw)
		}
	}
	// Trailing bytes after a valid pattern must be rejected by Unmarshal.
	raw := AllWild(2).AppendBinary(nil)
	var p Pattern
	if err := p.UnmarshalBinary(append(raw, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestValueWireRoundTrip pins the stream.Value codec across every kind,
// including the float edge cases the fixed-width encoding must preserve.
func TestValueWireRoundTrip(t *testing.T) {
	vals := []stream.Value{
		stream.Null,
		stream.Int(0), stream.Int(-1), stream.Int(math.MaxInt64), stream.Int(math.MinInt64),
		stream.TimeMicros(1228726800000000),
		stream.Float(0), stream.Float(math.Inf(1)), stream.Float(math.SmallestNonzeroFloat64),
		stream.String_(""), stream.String_("with, comma \"quoted\""),
		stream.Bool(true), stream.Bool(false),
	}
	var buf []byte
	for _, v := range vals {
		buf = v.AppendBinary(buf)
	}
	rest := buf
	for i, want := range vals {
		var got stream.Value
		var err error
		got, rest, err = stream.DecodeValue(rest)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got.Kind != want.Kind || !got.Equal(want) {
			t.Fatalf("value %d: round trip %v -> %v", i, want, got)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}
