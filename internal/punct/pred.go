// Package punct implements punctuation patterns: per-attribute predicates
// that describe subsets of a stream. Patterns serve two roles in the paper:
//
//   - Embedded punctuation flows *with* the stream and asserts "no tuple
//     matching this pattern will be seen again" (Tucker et al.). Operators
//     use it to unblock and purge state.
//   - Feedback punctuation (package core) flows *against* the stream and
//     reuses the same pattern language to describe the subset of interest,
//     plus an intent.
//
// A pattern is one predicate per attribute; a tuple matches the pattern iff
// every attribute value satisfies its predicate. The wildcard "*" matches
// any value.
package punct

import (
	"fmt"
	"strings"

	"repro/internal/stream"
)

// Op is the comparison operator of an attribute predicate.
type Op uint8

const (
	// Any is the wildcard "*": every value matches.
	Any Op = iota
	// EQ matches values equal to Val.
	EQ
	// NE matches values not equal to Val.
	NE
	// LT matches values strictly less than Val.
	LT
	// LE matches values less than or equal to Val.
	LE
	// GT matches values strictly greater than Val.
	GT
	// GE matches values greater than or equal to Val.
	GE
	// Between matches Val ≤ value ≤ Hi.
	Between
	// In matches any value in Set.
	In
	// IsNull matches only the missing value.
	IsNull
)

var opNames = [...]string{
	Any:     "*",
	EQ:      "=",
	NE:      "!=",
	LT:      "<",
	LE:      "<=",
	GT:      ">",
	GE:      ">=",
	Between: "between",
	In:      "in",
	IsNull:  "isnull",
}

// String returns the operator's symbol.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Pred is a predicate on a single attribute.
type Pred struct {
	Op  Op
	Val stream.Value   // EQ, NE, LT, LE, GT, GE; Between lower bound
	Hi  stream.Value   // Between upper bound
	Set []stream.Value // In
}

// Wild is the wildcard predicate.
var Wild = Pred{Op: Any}

// Eq builds an equality predicate.
func Eq(v stream.Value) Pred { return Pred{Op: EQ, Val: v} }

// Ne builds an inequality predicate.
func Ne(v stream.Value) Pred { return Pred{Op: NE, Val: v} }

// Lt builds a strictly-less-than predicate.
func Lt(v stream.Value) Pred { return Pred{Op: LT, Val: v} }

// Le builds a less-than-or-equal predicate.
func Le(v stream.Value) Pred { return Pred{Op: LE, Val: v} }

// Gt builds a strictly-greater-than predicate.
func Gt(v stream.Value) Pred { return Pred{Op: GT, Val: v} }

// Ge builds a greater-than-or-equal predicate.
func Ge(v stream.Value) Pred { return Pred{Op: GE, Val: v} }

// Range builds a closed-interval predicate lo ≤ x ≤ hi.
func Range(lo, hi stream.Value) Pred { return Pred{Op: Between, Val: lo, Hi: hi} }

// OneOf builds a set-membership predicate.
func OneOf(vals ...stream.Value) Pred {
	return Pred{Op: In, Set: append([]stream.Value(nil), vals...)}
}

// NullPred matches only the missing value.
func NullPred() Pred { return Pred{Op: IsNull} }

// IsWild reports whether the predicate is the wildcard.
func (p Pred) IsWild() bool { return p.Op == Any }

// Matches reports whether value v satisfies the predicate. Per SQL-like
// semantics, Null satisfies only Any and IsNull.
func (p Pred) Matches(v stream.Value) bool {
	switch p.Op {
	case Any:
		return true
	case IsNull:
		return v.IsNull()
	}
	if v.IsNull() {
		return false
	}
	switch p.Op {
	case EQ:
		return v.Equal(p.Val)
	case NE:
		return v.Comparable(p.Val) && !v.Equal(p.Val)
	case LT:
		c, ok := v.Compare(p.Val)
		return ok && c < 0
	case LE:
		c, ok := v.Compare(p.Val)
		return ok && c <= 0
	case GT:
		c, ok := v.Compare(p.Val)
		return ok && c > 0
	case GE:
		c, ok := v.Compare(p.Val)
		return ok && c >= 0
	case Between:
		lo, ok1 := v.Compare(p.Val)
		hi, ok2 := v.Compare(p.Hi)
		return ok1 && ok2 && lo >= 0 && hi <= 0
	case In:
		for _, s := range p.Set {
			if v.Equal(s) {
				return true
			}
		}
		return false
	}
	return false
}

// Implies reports whether p ⇒ q: every value matching p also matches q.
// The analysis is conservative: a false return means "could not prove",
// not "definitely not implied". Wildcard q is always implied; wildcard p
// implies only wildcard q.
func (p Pred) Implies(q Pred) bool {
	if q.Op == Any {
		return true
	}
	if p.Op == Any {
		return false
	}
	if p.Op == IsNull {
		return q.Op == IsNull
	}
	if q.Op == IsNull {
		return false
	}
	// Enumerable p: check each candidate value directly.
	switch p.Op {
	case EQ:
		return q.Matches(p.Val)
	case In:
		if len(p.Set) == 0 {
			return true // empty set implies anything
		}
		for _, v := range p.Set {
			if !q.Matches(v) {
				return false
			}
		}
		return true
	}
	// Interval reasoning for ranges.
	plo, phi := p.bounds()
	qlo, qhi := q.bounds()
	switch q.Op {
	case LT, LE, GT, GE, Between:
		return boundImplies(plo, qlo, true) && boundImplies(phi, qhi, false)
	}
	return false
}

// bound represents a one-sided interval endpoint.
type bound struct {
	val    stream.Value
	strict bool // exclusive endpoint
	inf    bool // unbounded
}

// bounds returns the (lower, upper) bounds of a range-like predicate.
func (p Pred) bounds() (lo, hi bound) {
	lo, hi = bound{inf: true}, bound{inf: true}
	switch p.Op {
	case LT:
		hi = bound{val: p.Val, strict: true}
	case LE:
		hi = bound{val: p.Val}
	case GT:
		lo = bound{val: p.Val, strict: true}
	case GE:
		lo = bound{val: p.Val}
	case Between:
		lo, hi = bound{val: p.Val}, bound{val: p.Hi}
	case EQ:
		lo, hi = bound{val: p.Val}, bound{val: p.Val}
	}
	return lo, hi
}

// boundImplies reports whether bound a is at least as tight as bound b.
// lower=true compares lower bounds, false compares upper bounds.
func boundImplies(a, b bound, lower bool) bool {
	if b.inf {
		return true
	}
	if a.inf {
		return false
	}
	c, ok := a.val.Compare(b.val)
	if !ok {
		return false
	}
	if lower {
		if c > 0 {
			return true
		}
		return c == 0 && (a.strict || !b.strict)
	}
	if c < 0 {
		return true
	}
	return c == 0 && (a.strict || !b.strict)
}

// Overlaps conservatively reports whether p and q can both match some value.
// A true result may be a false positive for exotic combinations; a false
// result is always sound (the predicates are provably disjoint).
func (p Pred) Overlaps(q Pred) bool {
	if p.Op == Any || q.Op == Any {
		return true
	}
	if p.Op == IsNull || q.Op == IsNull {
		return p.Op == q.Op
	}
	// Enumerable cases resolve exactly.
	switch p.Op {
	case EQ:
		return q.Matches(p.Val)
	case In:
		for _, v := range p.Set {
			if q.Matches(v) {
				return true
			}
		}
		return false
	}
	switch q.Op {
	case EQ:
		return p.Matches(q.Val)
	case In:
		for _, v := range q.Set {
			if p.Matches(v) {
				return true
			}
		}
		return false
	}
	if p.Op == NE || q.Op == NE {
		return true // two co-infinite sets on an ordered domain always overlap
	}
	plo, phi := p.bounds()
	qlo, qhi := q.bounds()
	return intervalOverlap(plo, phi, qlo, qhi)
}

func intervalOverlap(alo, ahi, blo, bhi bound) bool {
	// Intervals are disjoint iff one's upper bound is below the other's
	// lower bound.
	below := func(hi, lo bound) bool {
		if hi.inf || lo.inf {
			return false
		}
		c, ok := hi.val.Compare(lo.val)
		if !ok {
			return false
		}
		if c < 0 {
			return true
		}
		return c == 0 && (hi.strict || lo.strict)
	}
	return !below(ahi, blo) && !below(bhi, alo)
}

// String renders the predicate in the paper's notation.
func (p Pred) String() string {
	switch p.Op {
	case Any:
		return "*"
	case EQ:
		return p.Val.String()
	case NE:
		return "!=" + p.Val.String()
	case LT:
		return "<" + p.Val.String()
	case LE:
		return "<=" + p.Val.String()
	case GT:
		return ">" + p.Val.String()
	case GE:
		return ">=" + p.Val.String()
	case Between:
		return fmt.Sprintf("[%s..%s]", p.Val, p.Hi)
	case In:
		parts := make([]string, len(p.Set))
		for i, v := range p.Set {
			parts[i] = v.String()
		}
		return "{" + strings.Join(parts, "|") + "}"
	case IsNull:
		return "null"
	}
	return "?"
}
