package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	if err := Tumbling(60).Validate(); err != nil {
		t.Error(err)
	}
	if err := Sliding(60, 20).Validate(); err != nil {
		t.Error(err)
	}
	for _, s := range []Spec{{Range: 0, Slide: 1}, {Range: 10, Slide: 0}, {Range: 10, Slide: 20}} {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v must be invalid", s)
		}
	}
}

func TestTumblingWindowsOf(t *testing.T) {
	s := Tumbling(60)
	cases := []struct {
		v      int64
		lo, hi int64
	}{
		{0, 0, 0}, {59, 0, 0}, {60, 1, 1}, {125, 2, 2},
	}
	for _, tc := range cases {
		lo, hi := s.WindowsOf(tc.v)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("WindowsOf(%d) = [%d,%d], want [%d,%d]", tc.v, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestSlidingWindowsOf(t *testing.T) {
	s := Sliding(60, 20) // overlap 3
	if s.Overlap() != 3 {
		t.Fatalf("overlap = %d", s.Overlap())
	}
	// v=70: windows starting at 20, 40, 60 cover it (start > 70-60=10,
	// start ≤ 70).
	lo, hi := s.WindowsOf(70)
	if lo != 1 || hi != 3 {
		t.Errorf("WindowsOf(70) = [%d,%d], want [1,3]", lo, hi)
	}
	// Early values clip at window 0.
	lo, hi = s.WindowsOf(5)
	if lo != 0 || hi != 0 {
		t.Errorf("WindowsOf(5) = [%d,%d], want [0,0]", lo, hi)
	}
}

func TestExtent(t *testing.T) {
	s := Sliding(60, 20)
	start, end := s.Extent(3)
	if start != 60 || end != 120 {
		t.Errorf("Extent(3) = [%d,%d)", start, end)
	}
	s2 := Spec{Range: 60, Slide: 60, Origin: 1000}
	start, end = s2.Extent(0)
	if start != 1000 || end != 1060 {
		t.Errorf("origin-shifted Extent(0) = [%d,%d)", start, end)
	}
}

func TestLastFullWindow(t *testing.T) {
	s := Tumbling(60)
	cases := []struct {
		wm   int64
		want int64
	}{
		{58, -1}, {59, 0}, {60, 0}, {119, 1}, {120, 1},
	}
	for _, tc := range cases {
		if got := s.LastFullWindow(tc.wm); got != tc.want {
			t.Errorf("LastFullWindow(%d) = %d, want %d", tc.wm, got, tc.want)
		}
	}
	if got := Tumbling(60).LastFullWindow(-1000); got != -1 {
		t.Errorf("far-past watermark: %d", got)
	}
}

// Property: every value is covered by exactly Overlap() windows (away from
// the clipped start), and each window's extent actually contains the value.
func TestWindowsOfExtentConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		rng := 1 + r.Int63n(100)
		slide := 1 + r.Int63n(rng)
		s := Spec{Range: rng, Slide: slide, Origin: r.Int63n(50)}
		v := s.Origin + s.Range + r.Int63n(10000) // away from clip region
		lo, hi := s.WindowsOf(v)
		if lo > hi {
			t.Fatalf("empty window range for covered value: spec %+v v=%d", s, v)
		}
		for w := lo; w <= hi; w++ {
			start, end := s.Extent(w)
			if v < start || v >= end {
				t.Fatalf("window %d extent [%d,%d) does not contain %d (spec %+v)", w, start, end, v, s)
			}
		}
		// Neighbours must not contain v.
		if lo > 0 {
			start, end := s.Extent(lo - 1)
			if v >= start && v < end {
				t.Fatalf("window %d should not contain %d", lo-1, v)
			}
		}
		start, end := s.Extent(hi + 1)
		if v >= start && v < end {
			t.Fatalf("window %d should not contain %d", hi+1, v)
		}
	}
}

// Property: LastFullWindow is consistent with Extent — the returned window
// ends at or before wm+1, and the next window does not.
func TestLastFullWindowConsistency(t *testing.T) {
	f := func(rngSeed, slideSeed, wmSeed int64) bool {
		rng := 1 + abs(rngSeed)%100
		slide := 1 + abs(slideSeed)%rng
		s := Spec{Range: rng, Slide: slide}
		wm := abs(wmSeed) % 100000
		w := s.LastFullWindow(wm)
		if w >= 0 {
			if _, end := s.Extent(w); end-1 > wm {
				return false
			}
		}
		if _, end := s.Extent(w + 1); end-1 <= wm {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func abs(x int64) int64 {
	if x < 0 {
		if x == -1<<63 {
			return 0
		}
		return -x
	}
	return x
}
