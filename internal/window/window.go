// Package window implements WID-style window extent assignment (Li et al.,
// SIGMOD 2005), the windowing substrate of NiagaraST's out-of-order
// processing architecture. Windows are identified by integer ids computed
// from the windowing attribute; operators never buffer or reorder tuples to
// form windows — they assign each tuple to its window extents and rely on
// embedded punctuation to learn when a window is complete.
package window

import (
	"fmt"
)

// Spec describes a time-based (or any ordered-integer-domain) window.
// Range is the window length and Slide the distance between consecutive
// window starts, in the same units as the windowing attribute (Unix
// microseconds for KindTime attributes). Range == Slide gives tumbling
// windows; Slide < Range gives overlapping sliding windows.
type Spec struct {
	Range int64
	Slide int64
	// Origin anchors window 0's start; window w covers
	// [Origin + w*Slide, Origin + w*Slide + Range).
	Origin int64
}

// Tumbling builds a non-overlapping spec.
func Tumbling(rng int64) Spec { return Spec{Range: rng, Slide: rng} }

// Sliding builds an overlapping spec.
func Sliding(rng, slide int64) Spec { return Spec{Range: rng, Slide: slide} }

// Validate checks the spec's invariants.
func (s Spec) Validate() error {
	if s.Range <= 0 {
		return fmt.Errorf("window: range must be positive, got %d", s.Range)
	}
	if s.Slide <= 0 {
		return fmt.Errorf("window: slide must be positive, got %d", s.Slide)
	}
	if s.Slide > s.Range {
		return fmt.Errorf("window: slide %d > range %d would drop tuples", s.Slide, s.Range)
	}
	return nil
}

// Overlap returns how many windows each value belongs to (Range/Slide,
// rounded up).
func (s Spec) Overlap() int {
	return int((s.Range + s.Slide - 1) / s.Slide)
}

// WindowsOf returns the inclusive id range [lo, hi] of windows containing
// value v. For tumbling windows lo == hi.
func (s Spec) WindowsOf(v int64) (lo, hi int64) {
	rel := v - s.Origin
	// hi: the last window starting at or before rel.
	hi = floorDiv(rel, s.Slide)
	// lo: the first window whose extent still covers rel:
	// start > rel - Range  ⇒  w*Slide > rel - Range.
	lo = floorDiv(rel-s.Range, s.Slide) + 1
	if lo < 0 {
		lo = 0
	}
	if hi < 0 {
		hi = -1 // value precedes window 0: empty range (lo > hi)
	}
	return lo, hi
}

// Extent returns the half-open value interval [start, end) of window w.
func (s Spec) Extent(w int64) (start, end int64) {
	start = s.Origin + w*s.Slide
	return start, start + s.Range
}

// LastFullWindow returns the greatest window id whose extent is entirely at
// or below the watermark wm (i.e. end-1 ≤ wm), or -1 if none. Operators
// call this on embedded punctuation [*,…,≤wm,…] to learn which windows are
// complete and may be emitted and purged.
func (s Spec) LastFullWindow(wm int64) int64 {
	// end = Origin + w*Slide + Range ≤ wm+1  ⇒  w ≤ (wm+1-Origin-Range)/Slide.
	w := floorDiv(wm+1-s.Origin-s.Range, s.Slide)
	if w < -1 {
		return -1
	}
	return w
}

// floorDiv divides rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
