package chaos

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/snapshot"
)

// Schedules must be a pure function of the seed — that is the entire
// replayability contract.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 200; seed++ {
		for _, dist := range []bool{false, true} {
			a, b := Generate(seed, dist), Generate(seed, dist)
			if a.String() != b.String() {
				t.Fatalf("seed %d dist=%v: schedules differ:\n%s\n%s", seed, dist, a, b)
			}
			if len(a.Faults) == 0 {
				t.Fatalf("seed %d dist=%v: empty schedule", seed, dist)
			}
		}
	}
}

// Generated schedules must terminate: bounded restart cost, strictly
// increasing kill thresholds, and every incarnation reachable (the i-th
// restart-costing fault armed in generation i).
func TestGenerateWellFormed(t *testing.T) {
	for seed := uint64(1); seed < 500; seed++ {
		for _, dist := range []bool{false, true} {
			p := Generate(seed, dist)
			fatal := 0
			lastKill := int64(0)
			for _, f := range p.Faults {
				switch f.Kind {
				case FaultKill:
					if f.Incarnation != fatal {
						t.Fatalf("seed %d: kill in incarnation %d, want %d: %s", seed, f.Incarnation, fatal, p)
					}
					if f.Epoch <= lastKill {
						t.Fatalf("seed %d: kill threshold %d not past previous %d: %s", seed, f.Epoch, lastKill, p)
					}
					lastKill = f.Epoch
					fatal++
				case FaultSever, FaultFailOp:
					if f.Incarnation != fatal {
						t.Fatalf("seed %d: fatal fault in incarnation %d, want %d: %s", seed, f.Incarnation, fatal, p)
					}
					fatal++
				default:
					if f.Incarnation > fatal {
						t.Fatalf("seed %d: fault armed in unreachable incarnation %d (only %d restarts scheduled): %s",
							seed, f.Incarnation, fatal, p)
					}
				}
				if f.Kind == FaultDropWrite && f.Target == TargetCtrl && f.N == 0 {
					t.Fatalf("seed %d: drop-write would eat the handshake message: %s", seed, p)
				}
				if f.Kind == FaultDropWrite && f.Target == TargetData {
					t.Fatalf("seed %d: drop-write on a gob data stream corrupts it: %s", seed, p)
				}
			}
			if fatal > maxFatal {
				t.Fatalf("seed %d: %d restart-costing faults exceeds cap %d: %s", seed, fatal, maxFatal, p)
			}
		}
	}
}

// With no faults the wrappers must return the original objects — the
// zero-cost-when-off contract.
func TestWrapZeroCostWhenOff(t *testing.T) {
	b := snapshot.NewMemory()
	if got := WrapBackend(b, nil); got != snapshot.Backend(b) {
		t.Fatal("WrapBackend with no faults did not return the original backend")
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := WrapConn(c1, nil); got != net.Conn(c1) {
		t.Fatal("WrapConn with no faults did not return the original conn")
	}
}

func TestBackendFaults(t *testing.T) {
	blob := func() []byte {
		s := &snapshot.Snapshot{Epoch: 1, Nodes: []snapshot.NodeState{{ID: 0, Name: "n", State: []byte("state")}}}
		return s.Encode()
	}()

	t.Run("fail-put", func(t *testing.T) {
		mem := snapshot.NewMemory()
		b := WrapBackend(mem, []Fault{{Kind: FaultFailOp, N: 1}})
		if err := b.Put("a", blob); err != nil {
			t.Fatalf("put 0: %v", err)
		}
		if err := b.Put("b", blob); err == nil {
			t.Fatal("put 1 did not fail")
		}
		if err := b.Put("c", blob); err != nil {
			t.Fatalf("put 2 (fault must fire once): %v", err)
		}
	})

	t.Run("bit-flip", func(t *testing.T) {
		mem := snapshot.NewMemory()
		b := WrapBackend(mem, []Fault{{Kind: FaultBitFlip, N: 0, Bit: 12345}})
		if err := b.Put("a", blob); err != nil {
			t.Fatalf("put: %v", err)
		}
		data, err := mem.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := snapshot.Decode(data); err == nil {
			t.Fatal("bit-flipped blob decoded cleanly (checksum missed it)")
		}
	})

	t.Run("torn-put", func(t *testing.T) {
		mem := snapshot.NewMemory()
		b := WrapBackend(mem, []Fault{{Kind: FaultTornWrite, N: 0, Pct: 50}})
		if err := b.Put("a", blob); err != nil {
			t.Fatalf("put: %v", err)
		}
		data, err := mem.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if len(data) >= len(blob) {
			t.Fatalf("torn write kept %d of %d bytes", len(data), len(blob))
		}
		if _, err := snapshot.Decode(data); err == nil {
			t.Fatal("torn blob decoded cleanly")
		}
	})
}

func TestConnFaults(t *testing.T) {
	t.Run("drop-write", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := WrapConn(a, []Fault{{Kind: FaultDropWrite, N: 1}})
		got := make(chan []byte, 4)
		go func() {
			buf := make([]byte, 64)
			for {
				n, err := b.Read(buf)
				if err != nil {
					close(got)
					return
				}
				got <- append([]byte(nil), buf[:n]...)
			}
		}()
		for _, msg := range []string{"one", "two", "three"} {
			if _, err := w.Write([]byte(msg)); err != nil {
				t.Fatalf("write %q: %v", msg, err)
			}
		}
		a.Close()
		var recv []string
		for m := range got {
			recv = append(recv, string(m))
		}
		if strings.Join(recv, ",") != "one,three" {
			t.Fatalf("receiver saw %v, want [one three]", recv)
		}
	})

	t.Run("sever", func(t *testing.T) {
		a, b := net.Pipe()
		defer b.Close()
		w := WrapConn(a, []Fault{{Kind: FaultSever, N: 1}})
		go func() {
			buf := make([]byte, 16)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		if _, err := w.Write([]byte("ok")); err != nil {
			t.Fatalf("write 0: %v", err)
		}
		if _, err := w.Write([]byte("boom")); err == nil {
			t.Fatal("severed write reported success")
		}
		if _, err := w.Write([]byte("after")); err == nil {
			t.Fatal("write after sever reported success")
		}
	})

	t.Run("delay", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := WrapConn(a, []Fault{{Kind: FaultDelay, N: 0, Count: 1, Delay: 50 * time.Millisecond}})
		go func() {
			buf := make([]byte, 16)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		start := time.Now()
		if _, err := w.Write([]byte("slow")); err != nil {
			t.Fatalf("write: %v", err)
		}
		if d := time.Since(start); d < 50*time.Millisecond {
			t.Fatalf("delayed write returned after %v, want >= 50ms", d)
		}
	})
}
