package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/snapshot"
)

// Backend wraps a snapshot.Backend and applies scheduled Put faults by op
// ordinal. It sits UNDER any write-behind (Async) wrapper, so an injected
// failure propagates exactly like a real disk fault: the async queue
// poisons, the owning process dies at its next durability barrier, and the
// supervisor restarts it.
type Backend struct {
	inner  snapshot.Backend
	mu     sync.Mutex
	puts   int
	faults []Fault
	fired  []bool
}

// WrapBackend arms backend faults. With no faults it returns the original
// backend untouched — the zero-cost-when-off contract.
func WrapBackend(b snapshot.Backend, faults []Fault) snapshot.Backend {
	if len(faults) == 0 {
		return b
	}
	return &Backend{inner: b, faults: faults, fired: make([]bool, len(faults))}
}

// Put implements snapshot.Backend, applying at most one scheduled fault.
func (c *Backend) Put(id string, data []byte) error {
	c.mu.Lock()
	n := c.puts
	c.puts++
	var f *Fault
	for i := range c.faults {
		if !c.fired[i] && c.faults[i].N == n {
			c.fired[i] = true
			f = &c.faults[i]
			break
		}
	}
	c.mu.Unlock()
	if f != nil {
		switch f.Kind {
		case FaultFailOp:
			return fmt.Errorf("chaos: injected put failure (op %d, id %q)", n, id)
		case FaultTornWrite:
			keep := len(data) * f.Pct / 100
			if keep < 1 {
				keep = 1
			}
			if keep < len(data) {
				data = data[:keep]
			}
		case FaultBitFlip:
			if len(data) > 0 {
				mut := append([]byte(nil), data...)
				bit := f.Bit % (len(mut) * 8)
				mut[bit/8] ^= 1 << (bit % 8)
				data = mut
			}
		}
	}
	return c.inner.Put(id, data)
}

// Get implements snapshot.Backend.
func (c *Backend) Get(id string) ([]byte, error) { return c.inner.Get(id) }

// List implements snapshot.Backend.
func (c *Backend) List() ([]string, error) { return c.inner.List() }

// Delete implements snapshot.Backend.
func (c *Backend) Delete(id string) error { return c.inner.Delete(id) }

// Conn wraps a net.Conn and applies scheduled write faults by write
// ordinal. Reads pass through untouched — every edge fault is injected on
// the writing side, where one Write call is one flushed unit (a framed
// control message, or a batch flush on the data path).
type Conn struct {
	net.Conn
	mu     sync.Mutex
	writes int
	faults []Fault
	fired  []bool
}

// WrapConn arms connection faults. With no faults it returns the original
// connection untouched.
func WrapConn(c net.Conn, faults []Fault) net.Conn {
	if len(faults) == 0 {
		return c
	}
	return &Conn{Conn: c, faults: faults, fired: make([]bool, len(faults))}
}

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	n := c.writes
	c.writes++
	var f *Fault
	for i := range c.faults {
		ft := &c.faults[i]
		switch ft.Kind {
		case FaultDelay:
			if !(n >= ft.N && n < ft.N+ft.Count) {
				continue
			}
		default:
			if c.fired[i] || ft.N != n {
				continue
			}
			c.fired[i] = true
		}
		f = ft
		break
	}
	c.mu.Unlock()
	if f != nil {
		switch f.Kind {
		case FaultSever:
			_ = c.Conn.Close()
			return 0, fmt.Errorf("chaos: injected sever at write %d", n)
		case FaultDelay:
			time.Sleep(f.Delay)
		case FaultDropWrite:
			return len(b), nil
		}
	}
	return c.Conn.Write(b)
}
