// Package chaos is the deterministic fault-injection layer (DESIGN.md §9).
// A Plan is a schedule of fault points — process kills, severed or delayed
// remote edges, dropped control messages, failing or corrupting snapshot
// backend writes — generated as a pure function of a 64-bit seed, so any
// failing schedule reproduces from its seed alone.
//
// Faults inject at the system's trust boundaries, never inside the
// runtime: backends wrap snapshot.Backend, connections wrap net.Conn, and
// process kills reuse the supervisor's crash trigger. The runtime under
// test cannot tell injected faults from real ones, and production paths
// pay nothing when chaos is off — the wrap constructors return the
// original object untouched when no fault targets it.
//
// Determinism contract: the SCHEDULE is deterministic — same seed, same
// faults, same trigger ordinals. The execution interleaving is not (goroutine
// scheduling and wall-clock pacing vary run to run), which is the point:
// the crash ≡ clean invariant must hold under every interleaving of the
// scheduled faults, and a seed that fails replays the same schedule into
// the same code paths with high fidelity.
package chaos

import (
	"fmt"
	"strings"
	"time"
)

// Rand is a splitmix64 generator: tiny state, high quality, and trivially
// reproducible — the same generator the traffic workload uses, duplicated
// here so fault schedules never perturb workload randomness (or vice
// versa).
type Rand struct{ s uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

// Uint64 returns the next raw output.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	// Rejection sampling to kill modulo bias.
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := r.Uint64()
		if v < max {
			return int(v % uint64(n))
		}
	}
}

// FaultKind identifies one injectable fault point.
type FaultKind uint8

const (
	// FaultKill SIGKILLs the process once its durable progress (newest
	// persisted epoch) reaches Epoch, after an extra Delay — the delay
	// varies which phase of the next epoch the kill lands in (mid-barrier,
	// mid-encode, mid-persist).
	FaultKill FaultKind = iota + 1
	// FaultSever closes the wrapped connection at the Nth write.
	FaultSever
	// FaultDelay stalls writes N..N+Count-1 on the wrapped connection by
	// Delay each — a slow edge mid-barrier, exercising write/read deadlines
	// without tripping them.
	FaultDelay
	// FaultDropWrite swallows the Nth write on the wrapped connection
	// (reports success, sends nothing). On a control connection each write
	// is one framed message, so this drops exactly one ack or commit
	// notice. Never schedule it on a data connection: dropping part of a
	// gob stream corrupts the stream rather than losing a message.
	FaultDropWrite
	// FaultFailOp fails the Nth Put on the wrapped backend. Under a
	// write-behind Async backend this poisons the queue — exactly the
	// behavior of a dying disk.
	FaultFailOp
	// FaultTornWrite truncates the Nth Put's payload to Pct percent — a
	// torn write on a backend without atomic-rename guarantees.
	FaultTornWrite
	// FaultBitFlip flips bit (Bit mod payload bits) of the Nth Put's
	// payload — silent media corruption the checksum must catch at restore.
	FaultBitFlip
)

func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultSever:
		return "sever"
	case FaultDelay:
		return "delay"
	case FaultDropWrite:
		return "drop-write"
	case FaultFailOp:
		return "fail-put"
	case FaultTornWrite:
		return "torn-put"
	case FaultBitFlip:
		return "bit-flip"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Target names which component of a process a fault attaches to.
type Target uint8

const (
	// TargetProcess is the process itself (kills).
	TargetProcess Target = iota + 1
	// TargetChain is the snapshot backend under the local checkpoint chain
	// (and, in the coordinator, the manifest log sharing it).
	TargetChain
	// TargetData is the remote data connection.
	TargetData
	// TargetCtrl is the distributed-checkpoint control connection.
	TargetCtrl
)

func (t Target) String() string {
	switch t {
	case TargetProcess:
		return "process"
	case TargetChain:
		return "chain"
	case TargetData:
		return "data"
	case TargetCtrl:
		return "ctrl"
	default:
		return fmt.Sprintf("target(%d)", uint8(t))
	}
}

// Fault is one scheduled fault point. Which fields matter depends on Kind;
// unused fields are zero.
type Fault struct {
	Kind   FaultKind
	Target Target
	// Part is the process the fault belongs to: "" for the single-process
	// child, "coord" or "follow" in distributed mode.
	Part string
	// Incarnation is the restart generation the fault arms in: 0 is the
	// first run of the process, 1 the first restart, and so on. A fault
	// whose incarnation is never reached simply does not fire.
	Incarnation int
	// Epoch is FaultKill's durable-progress threshold.
	Epoch int64
	// N is the 0-based op ordinal (backend Puts or conn writes, counted
	// within the incarnation) the fault fires at.
	N int
	// Count is FaultDelay's write span.
	Count int
	// Delay is the stall for FaultDelay and the post-threshold delay for
	// FaultKill.
	Delay time.Duration
	// Bit selects FaultBitFlip's bit (mod payload size).
	Bit int
	// Pct is FaultTornWrite's surviving prefix in percent (1..99).
	Pct int
}

func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s", f.Kind, f.Target)
	if f.Part != "" {
		fmt.Fprintf(&b, " part=%s", f.Part)
	}
	fmt.Fprintf(&b, " inc=%d", f.Incarnation)
	switch f.Kind {
	case FaultKill:
		fmt.Fprintf(&b, " epoch=%d delay=%s", f.Epoch, f.Delay)
	case FaultSever, FaultDropWrite:
		fmt.Fprintf(&b, " write=%d", f.N)
	case FaultDelay:
		fmt.Fprintf(&b, " write=%d count=%d delay=%s", f.N, f.Count, f.Delay)
	case FaultFailOp:
		fmt.Fprintf(&b, " put=%d", f.N)
	case FaultTornWrite:
		fmt.Fprintf(&b, " put=%d pct=%d", f.N, f.Pct)
	case FaultBitFlip:
		fmt.Fprintf(&b, " put=%d bit=%d", f.N, f.Bit)
	}
	b.WriteString(")")
	return b.String()
}

// Plan is one seeded fault schedule.
type Plan struct {
	Seed   uint64
	Dist   bool
	Faults []Fault
}

// String renders the schedule on one line — what a failing fuzz run prints
// next to its seed.
func (p *Plan) String() string {
	if len(p.Faults) == 0 {
		return "(no faults)"
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}

// maxFatal caps restart-costing faults per schedule so every run
// terminates well inside the supervisor's restart budget. Kills, severs,
// and failed backend puts each cost one restart (a failed put poisons a
// write-behind backend, which exits the child at its durability barrier).
const maxFatal = 3

// Generate derives the fault schedule for a seed — a pure function:
// calling it twice with the same arguments yields identical plans, which
// is the whole replayability story. Schedules are constructed to
// terminate: at most maxFatal restart-costing faults, kill thresholds
// strictly increasing across incarnations (a restored run's durable
// progress starts at the last kill's epoch, so a non-increasing threshold
// would re-fire instantly), and each restart-costing fault armed in its
// own incarnation (the i-th such fault fires in generation i — earlier
// generations died before reaching it).
func Generate(seed uint64, dist bool) *Plan {
	r := NewRand(seed)
	p := &Plan{Seed: seed, Dist: dist}
	n := 1 + r.Intn(3)
	fatal := 0
	lastKill := int64(0)
	for i := 0; i < n; i++ {
		var f Fault
		if dist {
			f = genDist(r, &fatal, &lastKill)
		} else {
			f = genSingle(r, &fatal, &lastKill)
		}
		p.Faults = append(p.Faults, f)
	}
	return p
}

// killFault builds a kill with a strictly increasing threshold.
func killFault(r *Rand, fatal *int, lastKill *int64, part string) Fault {
	*lastKill += 1 + int64(r.Intn(3))
	f := Fault{
		Kind: FaultKill, Target: TargetProcess, Part: part,
		Incarnation: *fatal, Epoch: *lastKill,
		Delay: time.Duration(r.Intn(150)) * time.Millisecond,
	}
	*fatal++
	return f
}

func genSingle(r *Rand, fatal *int, lastKill *int64) Fault {
	pick := r.Intn(10)
	if pick < 5 && *fatal >= maxFatal {
		pick = 7 // restart budget spent: degrade to a corruption fault
	}
	switch {
	case pick < 5:
		return killFault(r, fatal, lastKill, "")
	case pick < 7:
		if *fatal >= maxFatal {
			pick = 7
			break
		}
		f := Fault{Kind: FaultFailOp, Target: TargetChain,
			Incarnation: *fatal, N: 1 + r.Intn(6)}
		*fatal++
		return f
	}
	// Corruption faults are non-fatal at write time; they bite on the next
	// restore, so arm them in any incarnation a fatal fault can reach.
	f := Fault{Target: TargetChain, Incarnation: r.Intn(*fatal + 1), N: r.Intn(6)}
	if pick < 9 {
		f.Kind, f.Bit = FaultBitFlip, r.Intn(1<<20)
	} else {
		f.Kind, f.Pct = FaultTornWrite, 1+r.Intn(90)
	}
	return f
}

func genDist(r *Rand, fatal *int, lastKill *int64) Fault {
	pick := r.Intn(10)
	if (pick < 4 || pick == 4) && *fatal >= maxFatal {
		pick = 5 // restart budget spent: degrade to a delay fault
	}
	switch {
	case pick < 4:
		part := "coord"
		if r.Intn(2) == 1 {
			part = "follow"
		}
		return killFault(r, fatal, lastKill, part)
	case pick == 4:
		f := Fault{Kind: FaultSever, Target: TargetData, Part: "coord",
			Incarnation: *fatal, N: 20 + r.Intn(2000)}
		*fatal++
		return f
	case pick < 7:
		return Fault{Kind: FaultDelay, Target: TargetData, Part: "coord",
			Incarnation: r.Intn(*fatal + 1), N: r.Intn(500),
			Count: 1 + r.Intn(4),
			Delay: time.Duration(10+r.Intn(100)) * time.Millisecond}
	case pick == 7:
		// Drop one follower ack (ctrl write 0 is the hello, so start at 1):
		// the coordinator abandons the epoch on ack timeout.
		return Fault{Kind: FaultDropWrite, Target: TargetCtrl, Part: "follow",
			Incarnation: r.Intn(*fatal + 1), N: 1 + r.Intn(3)}
	case pick == 8:
		// Drop one commit notice (ctrl write 0 is the restore directive):
		// commit notices are best-effort, the follower's retention just
		// lags an epoch.
		return Fault{Kind: FaultDropWrite, Target: TargetCtrl, Part: "coord",
			Incarnation: r.Intn(*fatal + 1), N: 1 + r.Intn(3)}
	default:
		// Corrupt a coordinator-side put (snapshot or manifest — the chain
		// and the manifest log share the backend): restore must degrade to
		// an older intact commit.
		return Fault{Kind: FaultBitFlip, Target: TargetChain, Part: "coord",
			Incarnation: r.Intn(*fatal + 1), N: r.Intn(6), Bit: r.Intn(1 << 20)}
	}
}

// forPart filters faults for one process incarnation. A nil plan (chaos
// off) has no faults, so call sites need no guard.
func (p *Plan) forPart(part string, inc int, target Target, kinds ...FaultKind) []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, f := range p.Faults {
		if f.Part != part || f.Incarnation != inc || f.Target != target {
			continue
		}
		for _, k := range kinds {
			if f.Kind == k {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// SchedulesCorruption reports whether the plan injects storage corruption
// (torn or bit-flipped writes) into the named part — the only way a blob
// can be corrupt after a run, since the Dir backend's temp-file + rename
// Put is atomic even under SIGKILL. Verifiers use it to decide whether a
// corrupt lineage is an expected degradation or a bug.
func (p *Plan) SchedulesCorruption(part string) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Part == part && (f.Kind == FaultTornWrite || f.Kind == FaultBitFlip) {
			return true
		}
	}
	return false
}

// StarvesCommits reports whether the schedule can legitimately leave a
// distributed run with zero committed manifests: dropping a follower ack
// stalls the coordinator's commit loop for the full ack timeout, which can
// outlast a short run entirely — every epoch abandoned, the stream itself
// unharmed. Verifiers use it to decide whether an empty manifest log is an
// expected outcome or a bug.
func (p *Plan) StarvesCommits() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind == FaultDropWrite && f.Target == TargetCtrl && f.Part == "follow" {
			return true
		}
	}
	return false
}

// Kills returns the kill faults armed for one process incarnation.
func (p *Plan) Kills(part string, inc int) []Fault {
	return p.forPart(part, inc, TargetProcess, FaultKill)
}

// ChainFaults returns the snapshot-backend faults armed for one process
// incarnation, for WrapBackend.
func (p *Plan) ChainFaults(part string, inc int) []Fault {
	return p.forPart(part, inc, TargetChain, FaultFailOp, FaultTornWrite, FaultBitFlip)
}

// ConnFaults returns the connection faults armed for one process
// incarnation and connection, for WrapConn.
func (p *Plan) ConnFaults(part string, inc int, target Target) []Fault {
	return p.forPart(part, inc, target, FaultSever, FaultDelay, FaultDropWrite)
}
