package queue

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/punct"
	"repro/internal/stream"
)

func tupleOf(i int64) stream.Tuple { return stream.NewTuple(stream.Int(i)) }

func punctLE(v int64) punct.Embedded {
	return punct.NewEmbedded(punct.OnAttr(1, 0, punct.Le(stream.Int(v))))
}

// drain reads all items until EOS, preserving order.
func drain(c *Conn) []Item {
	var items []Item
	for {
		p, ok := c.Recv()
		if !ok {
			return items
		}
		items = append(items, p.Items...)
	}
}

func TestConnPreservesOrder(t *testing.T) {
	c := New(Options{PageSize: 4, FlushOnPunct: true})
	const n = 100
	go func() {
		for i := int64(0); i < n; i++ {
			c.PutTuple(tupleOf(i))
		}
		c.CloseSend()
	}()
	items := drain(c)
	if items[len(items)-1].Kind != ItemEOS {
		t.Fatal("last item must be EOS")
	}
	seen := int64(0)
	for _, it := range items[:len(items)-1] {
		if it.Kind != ItemTuple || it.Tuple.At(0).AsInt() != seen {
			t.Fatalf("order broken at %d: %+v", seen, it)
		}
		seen++
	}
	if seen != n {
		t.Fatalf("got %d tuples", seen)
	}
}

func TestConnPunctuationFlushesPage(t *testing.T) {
	c := New(Options{PageSize: 1000, FlushOnPunct: true})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Only 2 tuples — far below page size. Without punct-flush the
		// page would sit unflushed.
		c.PutTuple(tupleOf(1))
		c.PutTuple(tupleOf(2))
		c.PutPunct(punctLE(2))
	}()
	p, ok := c.Recv()
	if !ok || p.Len() != 3 || p.Items[2].Kind != ItemPunct {
		t.Fatalf("punctuation must flush the partial page: %+v ok=%v", p, ok)
	}
	<-done
	st := c.Stats()
	if st.PunctFlushes != 1 || st.Tuples != 2 || st.Puncts != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestConnNoFlushOnPunctOption(t *testing.T) {
	c := New(Options{PageSize: 4, FlushOnPunct: false})
	go func() {
		c.PutTuple(tupleOf(1))
		c.PutPunct(punctLE(1))
		c.PutTuple(tupleOf(2))
		c.PutTuple(tupleOf(3)) // page of 4 fills here
		c.CloseSend()
	}()
	p, ok := c.Recv()
	if !ok || p.Len() != 4 {
		t.Fatalf("first page should be full (4 items), got %d", p.Len())
	}
	if c.Stats().PunctFlushes != 0 {
		t.Error("no punct flush expected")
	}
	drain(c)
}

func TestConnControlChannel(t *testing.T) {
	c := New(DefaultOptions())
	fb := core.NewAssumed(punct.OnAttr(1, 0, punct.Le(stream.Int(5))))
	c.SendFeedback(fb)
	m, ok := c.PollControl()
	if !ok || m.Kind != CtrlFeedback || m.Feedback.Intent != core.Assumed {
		t.Fatalf("control: %+v ok=%v", m, ok)
	}
	if _, ok := c.PollControl(); ok {
		t.Error("control channel should be empty")
	}
	if c.Stats().Controls != 1 {
		t.Error("control counter")
	}
}

func TestConnAbortUnblocksProducer(t *testing.T) {
	c := New(Options{PageSize: 1, Depth: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Depth 1, page size 1: the third Put would block forever
		// without Abort.
		for i := int64(0); i < 100; i++ {
			c.PutTuple(tupleOf(i))
		}
		c.CloseSend()
	}()
	c.Recv() // consume one page, then walk away
	c.Abort()
	wg.Wait() // must terminate
}

func TestConnSendControlAfterProducerDone(t *testing.T) {
	c := New(DefaultOptions())
	go func() {
		c.CloseSend()
	}()
	drain(c)
	// Producer gone: control sends are dropped as moot.
	for i := 0; i < 10; i++ {
		c.SendControl(Control{Kind: CtrlShutdown})
	}
	if _, ok := c.PollControl(); ok {
		t.Error("post-EOS control messages must be dropped")
	}
}

func TestConnControlNeverBlocksSender(t *testing.T) {
	// The control path must be unbounded: a consumer can enqueue
	// arbitrarily many messages while the producer is stuck elsewhere.
	c := New(DefaultOptions())
	for i := 0; i < 100_000; i++ {
		c.SendControl(Control{Kind: CtrlFeedback})
	}
	n := 0
	for {
		if _, ok := c.PollControl(); !ok {
			break
		}
		n++
	}
	if n != 100_000 {
		t.Errorf("drained %d control messages, want 100000", n)
	}
}

func TestPageHelpers(t *testing.T) {
	p := NewPage(4)
	p.Append(TupleItem(tupleOf(1)))
	p.Append(PunctItem(punctLE(1)))
	p.Append(EOSItem())
	if p.Len() != 3 || p.Full(4) {
		t.Error("page accounting")
	}
	if p.Items[0].Kind != ItemTuple || p.Items[1].Kind != ItemPunct || p.Items[2].Kind != ItemEOS {
		t.Error("item kinds")
	}
	p.Reset()
	if p.Len() != 0 {
		t.Error("reset")
	}
}

// drainPages reads all pages until EOS, copying each page's items so the
// comparison survives any later page recycling.
func drainPages(c *Conn) [][]Item {
	var pages [][]Item
	for {
		p, ok := c.Recv()
		if !ok {
			return pages
		}
		pages = append(pages, append([]Item(nil), p.Items...))
	}
}

// TestPutTuplesEquivalence pins the chunked-append contract: PutTuples must
// produce the identical page stream — same items, same page boundaries — as
// calling PutTuple on each tuple in order, across page sizes and run shapes
// (shorter than a page, exactly a page, spanning several, landing on a
// partially-filled page after a punctuation flush).
func TestPutTuplesEquivalence(t *testing.T) {
	for _, ps := range []int{1, 2, 3, 4, 64} {
		for _, runs := range [][]int{{1}, {5}, {64}, {65}, {200}, {3, 1, 7}, {64, 64}, {100, 29, 2}} {
			mkBatches := func() [][]stream.Tuple {
				v := int64(0)
				out := make([][]stream.Tuple, len(runs))
				for r, n := range runs {
					out[r] = make([]stream.Tuple, n)
					for i := range out[r] {
						out[r][i] = tupleOf(v)
						v++
					}
				}
				return out
			}
			single := New(Options{PageSize: ps, FlushOnPunct: true})
			go func() {
				for r, batch := range mkBatches() {
					for _, tp := range batch {
						single.PutTuple(tp)
					}
					if r%2 == 0 { // leave a partially-filled page behind sometimes
						single.PutPunct(punctLE(int64(r)))
					}
				}
				single.CloseSend()
			}()
			want := drainPages(single)

			batched := New(Options{PageSize: ps, FlushOnPunct: true})
			go func() {
				for r, batch := range mkBatches() {
					batched.PutTuples(batch)
					if r%2 == 0 {
						batched.PutPunct(punctLE(int64(r)))
					}
				}
				batched.CloseSend()
			}()
			got := drainPages(batched)

			if !pagesEqual(want, got) {
				t.Fatalf("page=%d runs=%v: page streams diverge: %d vs %d pages",
					ps, runs, len(want), len(got))
			}
			if single.Stats().Tuples != batched.Stats().Tuples {
				t.Fatalf("page=%d runs=%v: tuple counters diverge", ps, runs)
			}
		}
	}
}

func pagesEqual(a, b [][]Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.Kind != y.Kind {
				return false
			}
			switch x.Kind {
			case ItemTuple:
				if x.Tuple.At(0).AsInt() != y.Tuple.At(0).AsInt() {
					return false
				}
			case ItemPunct:
				if x.Punct.String() != y.Punct.String() {
					return false
				}
			}
		}
	}
	return true
}
