package queue

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/punct"
	"repro/internal/stream"
)

// CtrlKind tags upstream control messages (§5: "control messages have two
// fields: a message type ... and the control message").
type CtrlKind uint8

const (
	// CtrlFeedback carries a feedback punctuation upstream.
	CtrlFeedback CtrlKind = iota
	// CtrlShutdown asks the producer to stop producing.
	CtrlShutdown
)

// Control is one upstream control message.
type Control struct {
	Kind     CtrlKind
	Feedback core.Feedback
}

// Options configures one inter-operator connection.
type Options struct {
	// PageSize is the number of items per page (default DefaultPageSize).
	PageSize int
	// Depth is the data channel capacity in pages (default 16).
	Depth int
	// FlushOnPunct flushes the current page whenever punctuation is
	// appended (NiagaraST behaviour, default true). The bench harness
	// ablates this.
	FlushOnPunct bool
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = DefaultPageSize
	}
	if o.Depth <= 0 {
		o.Depth = 16
	}
	return o
}

// DefaultOptions returns the standard connection configuration.
func DefaultOptions() Options {
	return Options{FlushOnPunct: true}.withDefaults()
}

// Stats counts traffic over a connection.
type Stats struct {
	Tuples       int64
	Puncts       int64
	Pages        int64
	PunctFlushes int64
	Controls     int64
}

// Conn is one directed producer→consumer edge: a paged data queue flowing
// downstream and a control channel flowing upstream. The producer side is
// used by exactly one goroutine, the consumer side by exactly one
// goroutine; the two sides are concurrent with each other.
//
// The control path is unbounded and never blocks the sender: data flow
// exerts backpressure downstream, so a bounded control channel flowing the
// opposite way could deadlock the plan (A blocked flushing data to B while
// B is blocked sending feedback to A). Control volume is small by
// construction — producers rate-limit feedback — so unboundedness is a
// liveness guarantee, not a memory risk.
type Conn struct {
	opts     Options
	data     chan *Page
	stop     chan struct{} // closed by Abort: consumer gone, stop blocking
	prodDone chan struct{} // closed by CloseSend: producer gone, feedback moot
	cur      *Page         // producer-owned current page
	closed   bool          // producer-side: CloseSend called

	ctrlMu     sync.Mutex
	ctrlItems  []Control
	ctrlNotify chan struct{} // capacity 1: "queue may be non-empty"

	tuples       atomic.Int64
	puncts       atomic.Int64
	pages        atomic.Int64
	punctFlushes atomic.Int64
	controls     atomic.Int64
}

// New creates a connection.
func New(opts Options) *Conn {
	opts = opts.withDefaults()
	return &Conn{
		opts:       opts,
		data:       make(chan *Page, opts.Depth),
		ctrlNotify: make(chan struct{}, 1),
		stop:       make(chan struct{}),
		prodDone:   make(chan struct{}),
		cur:        GetPage(opts.PageSize),
	}
}

// ---------------------------------------------------------------------------
// Producer side.
// ---------------------------------------------------------------------------

// PutTuple appends a tuple, flushing the page if it fills.
//
//pace:hotpath
func (c *Conn) PutTuple(t stream.Tuple) {
	c.cur.AppendTuple(t)
	c.tuples.Add(1)
	if c.cur.Full(c.opts.PageSize) {
		c.Flush()
	}
}

// PutTuples appends a run of tuples, filling the current page chunk by
// chunk: the capacity check and flush decision run once per page of room
// instead of once per tuple. Equivalent to calling PutTuple on each tuple
// in order.
//
//pace:hotpath
func (c *Conn) PutTuples(ts []stream.Tuple) {
	c.tuples.Add(int64(len(ts)))
	for len(ts) > 0 {
		room := c.opts.PageSize - c.cur.Len()
		if room <= 0 {
			c.Flush()
			continue
		}
		if room > len(ts) {
			room = len(ts)
		}
		c.cur.AppendTuples(ts[:room])
		ts = ts[room:]
	}
	if c.cur.Full(c.opts.PageSize) {
		c.Flush()
	}
}

// PutPunct appends embedded punctuation. Punctuation flushes the page
// (unless FlushOnPunct is disabled) so that progress information is never
// stuck behind a partially-filled page.
//
//pace:hotpath
func (c *Conn) PutPunct(e punct.Embedded) {
	c.cur.AppendPunct(&e) //pace:allow-alloc puncts are rare and boxed by design: the Item slot stores a pointer
	c.puncts.Add(1)
	if c.opts.FlushOnPunct {
		c.punctFlushes.Add(1)
		c.Flush()
	} else if c.cur.Full(c.opts.PageSize) {
		c.Flush()
	}
}

// PutBarrier appends a checkpoint barrier and flushes unconditionally: the
// barrier marks a cut of the stream, so it must reach the consumer without
// waiting behind a partially-filled page.
func (c *Conn) PutBarrier(epoch int64) {
	c.cur.Append(BarrierItem(epoch))
	c.Flush()
}

// Flush sends the current page downstream if non-empty, drawing the
// replacement from the recycling pool. If the consumer has aborted the
// connection, the page is recycled instead of blocking.
//
//pace:hotpath
func (c *Conn) Flush() {
	if c.cur.Len() == 0 {
		return
	}
	c.pages.Add(1)
	select {
	case c.data <- c.cur:
	case <-c.stop:
		Release(c.cur)
	}
	c.cur = GetPage(c.opts.PageSize)
}

// CloseSend appends EOS, flushes, and closes the data channel. It must be
// the producer's final call.
func (c *Conn) CloseSend() {
	if c.closed {
		return
	}
	c.closed = true
	c.cur.Append(EOSItem())
	c.pages.Add(1)
	select {
	case c.data <- c.cur:
	case <-c.stop:
		Release(c.cur)
	}
	c.cur = nil
	close(c.data)
	close(c.prodDone)
}

// PollControl drains one pending upstream control message without blocking.
func (c *Conn) PollControl() (Control, bool) {
	c.ctrlMu.Lock()
	defer c.ctrlMu.Unlock()
	if len(c.ctrlItems) == 0 {
		return Control{}, false
	}
	m := c.ctrlItems[0]
	c.ctrlItems = c.ctrlItems[1:]
	return m, true
}

// ControlNotify returns a channel that receives a token whenever the
// control queue may have become non-empty; producers select on it and then
// drain with PollControl.
func (c *Conn) ControlNotify() <-chan struct{} { return c.ctrlNotify }

// ---------------------------------------------------------------------------
// Consumer side.
// ---------------------------------------------------------------------------

// Recv blocks for the next page; ok=false after the producer closed and all
// pages were consumed.
func (c *Conn) Recv() (*Page, bool) {
	p, ok := <-c.data
	return p, ok
}

// DataChan exposes the data channel for select loops (consumer side).
func (c *Conn) DataChan() <-chan *Page { return c.data }

// SendControl enqueues an upstream control message. It never blocks (see
// the Conn doc comment); after the producer has finished the message is
// dropped as moot.
func (c *Conn) SendControl(m Control) {
	select {
	case <-c.prodDone:
		return
	default:
	}
	c.controls.Add(1)
	c.ctrlMu.Lock()
	c.ctrlItems = append(c.ctrlItems, m)
	c.ctrlMu.Unlock()
	select {
	case c.ctrlNotify <- struct{}{}:
	default:
	}
}

// SendFeedback is shorthand for SendControl with a feedback message.
func (c *Conn) SendFeedback(f core.Feedback) {
	c.SendControl(Control{Kind: CtrlFeedback, Feedback: f})
}

// Abort tells the producer the consumer will read no more pages; blocked
// and future Flush/CloseSend calls drop their pages instead of waiting.
// Called by the runtime when a consumer stops early (shutdown or error).
// Idempotency is the caller's responsibility (the runtime aborts each
// connection exactly once).
func (c *Conn) Abort() { close(c.stop) }

// Depth reports the number of pages currently buffered in the data
// channel — the backpressure gauge telemetry scrapes. Safe from any
// goroutine (len on a channel is atomic).
func (c *Conn) Depth() int { return len(c.data) }

// Stats returns a snapshot of traffic counters.
func (c *Conn) Stats() Stats {
	return Stats{
		Tuples:       c.tuples.Load(),
		Puncts:       c.puncts.Load(),
		Pages:        c.pages.Load(),
		PunctFlushes: c.punctFlushes.Load(),
		Controls:     c.controls.Load(),
	}
}
