package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/punct"
	"repro/internal/stream"
)

// Property: page recycling never aliases data still held downstream. A
// consumer that copies tuples out of a page and immediately Releases it —
// the runtime's ownership-transfer contract — must observe exactly the
// produced sequence even while the producer is drawing recycled pages from
// the pool and overwriting their Item slots. Run under -race this also
// proves the pool's hand-off is properly synchronized.
func TestPageRecyclingNoAliasing(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		opts := Options{
			PageSize:     1 + r.Intn(65),
			Depth:        1 + r.Intn(4), // shallow: maximizes page reuse in flight
			FlushOnPunct: r.Intn(2) == 0,
		}
		c := New(opts)
		n := 200 + r.Intn(800)
		go func() {
			for i := 0; i < n; i++ {
				if i%7 == 3 {
					c.PutPunct(punct.NewEmbedded(punct.OnAttr(2, 0, punct.Le(stream.Int(int64(i))))))
				} else {
					c.PutTuple(stream.NewTuple(stream.Int(int64(i)), stream.String_("payload")).WithSeq(int64(i)))
				}
			}
			c.CloseSend()
		}()

		// Retain tuples and punct bounds long after their pages have been
		// recycled; verify them only once the stream ends.
		var gotTuples []stream.Tuple
		var gotPuncts []int64
		for {
			p, ok := c.Recv()
			if !ok {
				break
			}
			for _, it := range p.Items {
				switch it.Kind {
				case ItemTuple:
					gotTuples = append(gotTuples, it.Tuple)
				case ItemPunct:
					gotPuncts = append(gotPuncts, it.Punct.Pattern.Pred(0).Val.AsInt())
				}
			}
			// Ownership transfer: nothing above retains the page or slices
			// of p.Items, so the producer may overwrite it from here on.
			Release(p)
		}

		ti, pi := 0, 0
		for i := 0; i < n; i++ {
			if i%7 == 3 {
				if pi >= len(gotPuncts) || gotPuncts[pi] != int64(i) {
					return false
				}
				pi++
				continue
			}
			if ti >= len(gotTuples) {
				return false
			}
			got := gotTuples[ti]
			if got.Seq != int64(i) || got.At(0).AsInt() != int64(i) || got.At(1).AsString() != "payload" {
				return false
			}
			ti++
		}
		return ti == len(gotTuples) && pi == len(gotPuncts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// A released page must come back cleared: stale items must not leak into
// the next producer's stream, and the pool must not pin the old tuples.
func TestReleaseClearsPage(t *testing.T) {
	p := GetPage(8)
	p.AppendTuple(stream.NewTuple(stream.Int(1)))
	p.AppendTuple(stream.NewTuple(stream.Int(2)))
	Release(p)
	q := GetPage(8)
	if q.Len() != 0 {
		t.Fatalf("pooled page not empty: %d items", q.Len())
	}
	// Whether or not q is the same object as p, its backing slots must be
	// zero up to capacity.
	full := q.Items[:cap(q.Items)]
	for i := range full {
		if full[i].Tuple.Values != nil || full[i].Punct != nil {
			t.Fatalf("slot %d retains data from a previous life: %+v", i, full[i])
		}
	}
	Release(q)
}
