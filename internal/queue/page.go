// Package queue implements NiagaraST's inter-operator connection (§5,
// Figure 3): a downstream data queue carrying pages of tuples and embedded
// punctuation, and an upstream control channel carrying out-of-band,
// high-priority messages (feedback punctuation, shutdown).
//
// Pages batch tuples to limit context switching between operator
// goroutines; a page is flushed to the queue when it is full OR when a
// punctuation is written to it, so a slow stream cannot indefinitely delay
// punctuation behind a partially-filled page.
package queue

import (
	"sync"

	"repro/internal/punct"
	"repro/internal/stream"
)

// ItemKind tags the entries of a page.
type ItemKind uint8

const (
	// ItemTuple is a data tuple.
	ItemTuple ItemKind = iota
	// ItemPunct is embedded punctuation flowing with the stream.
	ItemPunct
	// ItemEOS marks the end of the stream; it is always the last item of
	// the last page.
	ItemEOS
	// ItemBarrier is a checkpoint barrier injected at sources by the
	// snapshot coordinator. It flows in-band (it must not be reordered
	// past data) and is consumed by the node runner, never by operators:
	// a multi-input node captures its state when every live input has
	// delivered the barrier, then forwards it on every output.
	ItemBarrier
)

// Item is one entry of a page: a tuple, an embedded punctuation, or EOS.
// Punctuation is boxed behind a pointer: tuples dominate page traffic, and
// keeping the struct at 48 bytes (vs 64 with an inline Embedded) shrinks
// the per-item copy on the PutTuple hot path by a quarter.
type Item struct {
	Kind  ItemKind
	Tuple stream.Tuple
	Punct *punct.Embedded
}

// TupleItem wraps a tuple.
func TupleItem(t stream.Tuple) Item { return Item{Kind: ItemTuple, Tuple: t} }

// PunctItem wraps embedded punctuation.
func PunctItem(e punct.Embedded) Item { return Item{Kind: ItemPunct, Punct: &e} }

// EOSItem marks end of stream.
func EOSItem() Item { return Item{Kind: ItemEOS} }

// BarrierItem wraps a checkpoint barrier. The epoch rides in the unused
// Tuple.Seq slot so the hot-path Item struct does not grow for a message
// that appears once per checkpoint.
func BarrierItem(epoch int64) Item {
	return Item{Kind: ItemBarrier, Tuple: stream.Tuple{Seq: epoch}}
}

// BarrierEpoch returns the checkpoint epoch of an ItemBarrier.
func (it Item) BarrierEpoch() int64 { return it.Tuple.Seq }

// Page is a batch of items moved between operators as a unit.
type Page struct {
	Items []Item
}

// DefaultPageSize is the number of items per page; chosen to amortize
// channel operations without adding noticeable latency. The bench harness
// ablates this (see bench_test.go).
const DefaultPageSize = 64

// NewPage allocates an empty page with the given capacity.
func NewPage(capacity int) *Page {
	return &Page{Items: make([]Item, 0, capacity)}
}

// Len returns the number of items in the page.
func (p *Page) Len() int { return len(p.Items) }

// Full reports whether the page has reached the given capacity.
func (p *Page) Full(capacity int) bool { return len(p.Items) >= capacity }

// Append adds an item.
//
//pace:hotpath
func (p *Page) Append(it Item) { p.Items = append(p.Items, it) }

// AppendTuple adds a tuple item, writing directly into the next slot (no
// intermediate Item value on the producer's stack) when capacity allows.
//
//pace:hotpath
func (p *Page) AppendTuple(t stream.Tuple) {
	n := len(p.Items)
	if n == cap(p.Items) {
		p.Items = append(p.Items, Item{Kind: ItemTuple, Tuple: t})
		return
	}
	p.Items = p.Items[:n+1]
	slot := &p.Items[n]
	slot.Kind = ItemTuple
	slot.Tuple = t
	slot.Punct = nil
}

// AppendTuples adds a run of tuple items, sizing the slice once and writing
// slots directly — no per-tuple capacity check when room allows.
//
//pace:hotpath
func (p *Page) AppendTuples(ts []stream.Tuple) {
	n := len(p.Items)
	if n+len(ts) <= cap(p.Items) {
		p.Items = p.Items[:n+len(ts)]
		for i := range ts {
			slot := &p.Items[n+i]
			slot.Kind = ItemTuple
			slot.Tuple = ts[i]
			slot.Punct = nil
		}
		return
	}
	for _, t := range ts {
		p.AppendTuple(t)
	}
}

// AppendPunct adds a punctuation item.
//
//pace:hotpath
func (p *Page) AppendPunct(e *punct.Embedded) {
	n := len(p.Items)
	if n == cap(p.Items) {
		p.Items = append(p.Items, Item{Kind: ItemPunct, Punct: e})
		return
	}
	p.Items = p.Items[:n+1]
	slot := &p.Items[n]
	slot.Kind = ItemPunct
	slot.Tuple = stream.Tuple{}
	slot.Punct = e
}

// Reset clears the page for reuse. Item slots are zeroed so a recycled
// page does not pin tuple values or predicate slices from its previous
// life in the garbage collector.
func (p *Page) Reset() {
	clear(p.Items)
	p.Items = p.Items[:0]
}

// pagePool recycles pages across producer/consumer goroutines. Ownership
// transfers with the page: a producer owns a page until it is flushed into
// a queue, the consumer owns it from Recv until Release, and nobody may
// touch a page (or aliases into its Items) after releasing it.
var pagePool = sync.Pool{New: func() any { return new(Page) }}

// GetPage draws a cleared page with at least the given capacity from the
// recycling pool, allocating only when the pool is empty or the pooled
// page is too small.
func GetPage(capacity int) *Page {
	p := pagePool.Get().(*Page)
	if cap(p.Items) < capacity {
		p.Items = make([]Item, 0, capacity)
	}
	return p
}

// Release returns a page to the recycling pool. The caller promises it
// holds no references into p.Items; tuples copied out of the page (their
// Values slices are owned by the tuple, never by the page) remain valid.
func Release(p *Page) {
	if p == nil {
		return
	}
	p.Reset()
	pagePool.Put(p)
}
