// Package queue implements NiagaraST's inter-operator connection (§5,
// Figure 3): a downstream data queue carrying pages of tuples and embedded
// punctuation, and an upstream control channel carrying out-of-band,
// high-priority messages (feedback punctuation, shutdown).
//
// Pages batch tuples to limit context switching between operator
// goroutines; a page is flushed to the queue when it is full OR when a
// punctuation is written to it, so a slow stream cannot indefinitely delay
// punctuation behind a partially-filled page.
package queue

import (
	"repro/internal/punct"
	"repro/internal/stream"
)

// ItemKind tags the entries of a page.
type ItemKind uint8

const (
	// ItemTuple is a data tuple.
	ItemTuple ItemKind = iota
	// ItemPunct is embedded punctuation flowing with the stream.
	ItemPunct
	// ItemEOS marks the end of the stream; it is always the last item of
	// the last page.
	ItemEOS
)

// Item is one entry of a page: a tuple, an embedded punctuation, or EOS.
type Item struct {
	Kind  ItemKind
	Tuple stream.Tuple
	Punct punct.Embedded
}

// TupleItem wraps a tuple.
func TupleItem(t stream.Tuple) Item { return Item{Kind: ItemTuple, Tuple: t} }

// PunctItem wraps embedded punctuation.
func PunctItem(e punct.Embedded) Item { return Item{Kind: ItemPunct, Punct: e} }

// EOSItem marks end of stream.
func EOSItem() Item { return Item{Kind: ItemEOS} }

// Page is a batch of items moved between operators as a unit.
type Page struct {
	Items []Item
}

// DefaultPageSize is the number of items per page; chosen to amortize
// channel operations without adding noticeable latency. The bench harness
// ablates this (see bench_test.go).
const DefaultPageSize = 64

// NewPage allocates an empty page with the given capacity.
func NewPage(capacity int) *Page {
	return &Page{Items: make([]Item, 0, capacity)}
}

// Len returns the number of items in the page.
func (p *Page) Len() int { return len(p.Items) }

// Full reports whether the page has reached the given capacity.
func (p *Page) Full(capacity int) bool { return len(p.Items) >= capacity }

// Append adds an item.
func (p *Page) Append(it Item) { p.Items = append(p.Items, it) }

// Reset clears the page for reuse.
func (p *Page) Reset() { p.Items = p.Items[:0] }
