package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/punct"
	"repro/internal/stream"
)

// Property: for any page size, flush policy, and item mix, a Conn delivers
// exactly the produced sequence, in order, terminated by EOS.
func TestConnDeliveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		opts := Options{
			PageSize:     1 + r.Intn(65),
			Depth:        1 + r.Intn(8),
			FlushOnPunct: r.Intn(2) == 0,
		}
		c := New(opts)
		n := r.Intn(500)
		kinds := make([]ItemKind, n)
		for i := range kinds {
			if r.Intn(5) == 0 {
				kinds[i] = ItemPunct
			}
		}
		go func() {
			for i, k := range kinds {
				if k == ItemPunct {
					c.PutPunct(punct.NewEmbedded(punct.OnAttr(1, 0, punct.Le(stream.Int(int64(i))))))
				} else {
					c.PutTuple(tupleOf(int64(i)))
				}
			}
			c.CloseSend()
		}()
		items := drain(c)
		if len(items) != n+1 || items[n].Kind != ItemEOS {
			return false
		}
		for i, it := range items[:n] {
			switch kinds[i] {
			case ItemPunct:
				if it.Kind != ItemPunct || it.Punct.Pattern.Pred(0).Val.AsInt() != int64(i) {
					return false
				}
			default:
				if it.Kind != ItemTuple || it.Tuple.At(0).AsInt() != int64(i) {
					return false
				}
			}
		}
		st := c.Stats()
		wantPuncts := int64(0)
		for _, k := range kinds {
			if k == ItemPunct {
				wantPuncts++
			}
		}
		return st.Puncts == wantPuncts && st.Tuples == int64(n)-wantPuncts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: punctuation is never delayed behind a partial page when
// FlushOnPunct is set — the page containing a punctuation ends with it.
func TestPunctTerminatesPageProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Options{PageSize: 2 + r.Intn(32), FlushOnPunct: true})
		n := 50 + r.Intn(200)
		go func() {
			for i := 0; i < n; i++ {
				if r.Intn(4) == 0 {
					c.PutPunct(punct.NewEmbedded(punct.OnAttr(1, 0, punct.Le(stream.Int(int64(i))))))
				} else {
					c.PutTuple(tupleOf(int64(i)))
				}
			}
			c.CloseSend()
		}()
		for {
			p, ok := c.Recv()
			if !ok {
				return true
			}
			for i, it := range p.Items {
				if it.Kind == ItemPunct && i != len(p.Items)-1 {
					return false // punctuation mid-page: it did not flush
				}
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
