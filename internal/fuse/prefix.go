// Stage 2 of the plan compiler: Prefixed attaches stateless prefix kernels
// to a stateful consumer's input ports. The kernel (a Fused step table) runs
// inside the consumer's page loop — guard probe, compiled predicate,
// attribute mapping, in-place survivor filtering in the kernel's reused
// scratch buffer — and the survivors go straight into the consumer's batched
// apply path (exec.TupleBatchApplier) when it has one, or its per-tuple path
// otherwise. The wrapped node keeps the stateful operator's entire control
// surface: barrier alignment is untouched (the runtime still sees one node),
// snapshot capture/restore delegates to the inner operator (the prefix is
// stateless, so capture↔restore shape is unchanged), and punctuation and
// feedback traverse the kernel steps exactly as they would have hopped node
// to node unfused (DESIGN.md §10.6).
package fuse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Prefixed wraps a stateful consumer with per-input prefix kernels.
//
//pace:allow-nonote delegates all Stater/DeltaStater calls to the wrapped operator, which owns the changelog
type Prefixed struct {
	inner   exec.Operator
	kernels []*Fused // indexed by input port; nil = no prefix on that port
	ins     []stream.Schema
	name    string

	// Context wrap cache: the runtime passes the same ctx for a node's whole
	// life, so the wrapper is built once, not boxed per callback.
	cachedBase exec.Context
	cachedWrap exec.Context
}

// NewPrefixed wraps inner with kernels (one slot per input port, nil slots
// allowed). The inner operator must be a snapshot.TwoPhase — every absorb
// target (Aggregate, Join, Impute, Pace, Split) is — so checkpoint identity
// is preserved by delegation; each kernel's output schema must match the
// inner input it feeds.
func NewPrefixed(inner exec.Operator, kernels []*Fused) (*Prefixed, error) {
	if inner == nil {
		return nil, fmt.Errorf("fuse: prefix around nil operator")
	}
	if _, ok := inner.(snapshot.TwoPhase); !ok {
		return nil, fmt.Errorf("fuse: prefix target %q is not a snapshot.TwoPhase stateful operator", inner.Name())
	}
	ins := inner.InSchemas()
	if len(kernels) != len(ins) {
		return nil, fmt.Errorf("fuse: prefix target %q has %d inputs, got %d kernel slots",
			inner.Name(), len(ins), len(kernels))
	}
	p := &Prefixed{inner: inner, kernels: kernels, ins: append([]stream.Schema(nil), ins...)}
	var parts []string
	any := false
	for i, k := range kernels {
		if k == nil {
			continue
		}
		any = true
		if !k.OutSchemas()[0].Equal(ins[i]) {
			return nil, fmt.Errorf("fuse: prefix kernel on input %d emits %s, %q expects %s",
				i, k.OutSchemas()[0], inner.Name(), ins[i])
		}
		p.ins[i] = k.InSchemas()[0]
		names := make([]string, len(k.steps))
		for s := range k.steps {
			names[s] = k.steps[s].name
		}
		part := strings.Join(names, "+")
		if len(ins) > 1 {
			part = strconv.Itoa(i) + ":" + part
		}
		parts = append(parts, part)
	}
	if !any {
		return nil, fmt.Errorf("fuse: prefix around %q with no kernels", inner.Name())
	}
	p.name = "fused(" + strings.Join(parts, ",") + "=>" + inner.Name() + ")"
	return p, nil
}

// Inner returns the wrapped stateful operator.
func (p *Prefixed) Inner() exec.Operator { return p.inner }

// Kernel returns the prefix kernel on the given input port (nil when the
// port has none).
func (p *Prefixed) Kernel(input int) *Fused {
	if input < 0 || input >= len(p.kernels) {
		return nil
	}
	return p.kernels[input]
}

// Name implements exec.Operator.
func (p *Prefixed) Name() string { return p.name }

// InSchemas implements exec.Operator: the kernel input schema on prefixed
// ports, the inner operator's schema elsewhere.
func (p *Prefixed) InSchemas() []stream.Schema { return p.ins }

// OutSchemas implements exec.Operator.
func (p *Prefixed) OutSchemas() []stream.Schema { return p.inner.OutSchemas() }

func (p *Prefixed) wrap(ctx exec.Context) exec.Context {
	if ctx == p.cachedBase {
		return p.cachedWrap
	}
	w := &prefixedCtx{Context: ctx, p: p}
	p.cachedBase, p.cachedWrap = ctx, w
	return w
}

// Open implements exec.Operator: kernels build their guard tables, then the
// inner operator opens against the wrapped context.
func (p *Prefixed) Open(ctx exec.Context) error {
	for _, k := range p.kernels {
		if k == nil {
			continue
		}
		if err := k.Open(ctx); err != nil {
			return err
		}
	}
	return p.inner.Open(p.wrap(ctx))
}

// ProcessTuple implements exec.Operator: the kernel filters/maps, the inner
// operator folds the survivor. Used by the runtime's per-item path (barrier
// alignment, singleton runs).
func (p *Prefixed) ProcessTuple(input int, t stream.Tuple, ctx exec.Context) error {
	w := p.wrap(ctx)
	if k := p.Kernel(input); k != nil {
		out, ok := k.runTuple(t)
		if !ok {
			return nil
		}
		t = out
	}
	return p.inner.ProcessTuple(input, t, w)
}

// ProcessTupleBatch implements exec.TupleBatcher: the kernel runs its step
// table over the whole run with in-place survivor filtering, then hands the
// survivors to the inner operator's batched apply path in one call (falling
// back to per-tuple when the inner operator has none).
func (p *Prefixed) ProcessTupleBatch(input int, items []queue.Item, ctx exec.Context) error {
	w := p.wrap(ctx)
	k := p.Kernel(input)
	if k == nil {
		if tb, ok := p.inner.(exec.TupleBatcher); ok {
			return tb.ProcessTupleBatch(input, items, w)
		}
		for i := range items {
			if err := p.inner.ProcessTuple(input, items[i].Tuple, w); err != nil {
				return err
			}
		}
		return nil
	}
	buf := k.runBatchItems(items)
	if len(buf) == 0 {
		return nil
	}
	if ba, ok := p.inner.(exec.TupleBatchApplier); ok {
		return ba.ApplyTupleBatch(input, buf, w)
	}
	for i := range buf {
		if err := p.inner.ProcessTuple(input, buf[i], w); err != nil {
			return err
		}
	}
	return nil
}

// ProcessPunct implements exec.Operator: punctuation traverses the kernel
// steps in chain order (observed by each step's guard table, re-expressed by
// each mapping) before reaching the inner operator — a pattern consumed
// inside the kernel stops exactly where the unfused chain would have stopped
// it.
func (p *Prefixed) ProcessPunct(input int, e punct.Embedded, ctx exec.Context) error {
	w := p.wrap(ctx)
	if k := p.Kernel(input); k != nil {
		out, ok := k.relayPunct(e)
		if !ok {
			return nil
		}
		e = out
	}
	return p.inner.ProcessPunct(input, e, w)
}

// ProcessFeedback implements exec.Operator: feedback lands on the inner
// operator first (it is the downstream end of the absorbed chain); if the
// inner operator propagates upstream, the wrapped context routes it through
// that input's kernel steps in reverse order (see prefixedCtx.SendFeedback).
func (p *Prefixed) ProcessFeedback(output int, fb core.Feedback, ctx exec.Context) error {
	return p.inner.ProcessFeedback(output, fb, p.wrap(ctx))
}

// ProcessEOS implements exec.Operator.
func (p *Prefixed) ProcessEOS(input int, ctx exec.Context) error {
	return p.inner.ProcessEOS(input, p.wrap(ctx))
}

// Close implements exec.Operator.
func (p *Prefixed) Close(ctx exec.Context) error {
	return p.inner.Close(p.wrap(ctx))
}

// SaveState implements snapshot.Stater by delegation: the prefix is
// stateless (guard tables rebuild from feedback, like every guarded
// operator), so the node's checkpoint payload is exactly the inner
// operator's.
func (p *Prefixed) SaveState(e *snapshot.Encoder) error {
	return p.inner.(snapshot.Stater).SaveState(e)
}

// LoadState implements snapshot.Stater by delegation.
func (p *Prefixed) LoadState(d *snapshot.Decoder) error {
	return p.inner.(snapshot.Stater).LoadState(d)
}

// CaptureState implements snapshot.TwoPhase by delegation.
func (p *Prefixed) CaptureState(mode snapshot.CaptureMode) (snapshot.Capture, error) {
	return p.inner.(snapshot.TwoPhase).CaptureState(mode)
}

// ApplyDelta implements snapshot.DeltaStater by delegation. Inner operators
// that never produce delta captures (Impute, Pace, Split) never receive
// ApplyDelta — restore only calls it for epochs holding delta blobs.
func (p *Prefixed) ApplyDelta(d *snapshot.Decoder) error {
	ds, ok := p.inner.(snapshot.DeltaStater)
	if !ok {
		return fmt.Errorf("fuse: %q: delta blob for non-incremental operator %q", p.name, p.inner.Name())
	}
	return ds.ApplyDelta(d)
}

// SuppressedTuples reports guard suppressions across all kernels plus the
// inner operator's own, scrape-safe.
func (p *Prefixed) SuppressedTuples() int64 {
	var total int64
	for _, k := range p.kernels {
		if k != nil {
			total += k.SuppressedTuples()
		}
	}
	if sr, ok := p.inner.(interface{ SuppressedTuples() int64 }); ok {
		total += sr.SuppressedTuples()
	}
	return total
}

// PunctDropped reports punctuation consumed inside the prefix kernels.
func (p *Prefixed) PunctDropped() int64 {
	var total int64
	for _, k := range p.kernels {
		if k != nil {
			total += k.PunctDropped()
		}
	}
	if pr, ok := p.inner.(interface{ PunctDropped() int64 }); ok {
		total += pr.PunctDropped()
	}
	return total
}

// CostBurned reports evaluation work done across the prefix kernels.
func (p *Prefixed) CostBurned() int64 {
	var total int64
	for _, k := range p.kernels {
		if k != nil {
			total += k.CostBurned()
		}
	}
	return total
}

// TelemetryVars implements telemetry.VarExporter: every kernel's
// per-constituent vars (labelled with the input port they guard, so two
// kernels on one node stay distinguishable) plus the inner operator's own
// vars — fusion costs no visibility.
func (p *Prefixed) TelemetryVars() []telemetry.Var {
	var vars []telemetry.Var
	for i, k := range p.kernels {
		if k == nil {
			continue
		}
		for _, v := range k.TelemetryVars() {
			labels := map[string]string{"input": strconv.Itoa(i)}
			for lk, lv := range v.Labels {
				labels[lk] = lv
			}
			v.Labels = labels
			vars = append(vars, v)
		}
	}
	if ve, ok := p.inner.(telemetry.VarExporter); ok {
		vars = append(vars, ve.TelemetryVars()...)
	}
	return vars
}

// Explain renders the prefix kernels and the consumer they feed — visually
// distinct from a stage-1 standalone kernel (cmd/paceql -explain).
func (p *Prefixed) Explain() string {
	var parts []string
	for i, k := range p.kernels {
		if k == nil {
			continue
		}
		parts = append(parts, fmt.Sprintf("in%d{%s}", i, k.Explain()))
	}
	return "prefix " + strings.Join(parts, " ") + " => " + p.inner.Name()
}

// String describes the operator.
func (p *Prefixed) String() string {
	return fmt.Sprintf("PREFIXED[%s]", p.Explain())
}

// prefixedCtx is the context the inner operator sees: identical to the
// runtime's except that upstream feedback traverses the input's kernel steps
// (reverse chain order, guard installs, pattern re-expression) before leaving
// the node, and batch emission capabilities are forwarded explicitly — Go
// interface embedding does not promote optional interfaces.
type prefixedCtx struct {
	exec.Context
	p *Prefixed
}

// SendFeedback routes inner-originated and relayed feedback through the
// input's prefix kernel, exactly as it would hop through the unfused chain.
func (c *prefixedCtx) SendFeedback(input int, fb core.Feedback) {
	if k := c.p.Kernel(input); k != nil {
		out, ok := k.applyFeedback(fb)
		if !ok {
			return
		}
		fb = out
	}
	c.Context.SendFeedback(input, fb)
}

// EmitBatch implements exec.BatchEmitter with per-tuple fallback.
func (c *prefixedCtx) EmitBatch(ts []stream.Tuple) {
	if be, ok := c.Context.(exec.BatchEmitter); ok {
		be.EmitBatch(ts)
		return
	}
	for i := range ts {
		c.Context.Emit(ts[i])
	}
}

// EmitBatchTo implements exec.BatchEmitterTo with per-tuple fallback.
func (c *prefixedCtx) EmitBatchTo(port int, ts []stream.Tuple) {
	if be, ok := c.Context.(exec.BatchEmitterTo); ok {
		be.EmitBatchTo(port, ts)
		return
	}
	for i := range ts {
		c.Context.EmitTo(port, ts[i])
	}
}
