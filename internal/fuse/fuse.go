// Package fuse is the plan compiler: a rewrite pass over exec.Graph that
// collapses maximal chains of adjacent stateless operators (Select, Project,
// Map) into single Fused nodes. A fused node runs its chain as a flat kernel
// loop — per-step guard probe, compiled predicate, attribute mapping — with
// no intermediate Emit and no inter-node page handoff, which removes the
// ~60ns/tuple/hop the interpreted path pays at page=64.
//
// Fusion is semantics-preserving by the paper's §4.3 characterization of
// stateless operators, and the kernel preserves each composition rule
// exactly (DESIGN.md §10):
//
//   - punctuation relays iff every constituent would relay it (chain order,
//     stopping at the first constituent that must consume it);
//   - feedback is applied to each constituent's own guard table in reverse
//     chain order and propagates upstream iff every constituent propagates;
//   - per-step in/out/suppressed counters and work meters keep Stats and
//     CostBurned observable per logical operator;
//   - no constituent is a snapshot.Stater, so the fused node is stateless
//     and checkpoint barrier alignment is unchanged.
package fuse

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/op"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/work"
)

type stepKind int

const (
	kSelect stepKind = iota
	kProject
	kMap
)

func (k stepKind) String() string {
	switch k {
	case kSelect:
		return "select"
	case kProject:
		return "project"
	case kMap:
		return "map"
	}
	return "?"
}

// step is one constituent operator in evaluation form: the flat step table
// entry the kernel loop interprets.
type step struct {
	kind      stepKind
	name      string
	mode      op.FeedbackMode
	propagate bool

	// Select evaluation.
	cond func(stream.Tuple) bool
	expr *op.Expr
	cost int

	// Project/Map attribute mapping. toInput maps output attr → input attr
	// (-1 = computed); inv maps input attr → first carrying output attr
	// (-1 = dropped), precomputed for punctuation relay.
	out      stream.Schema
	toInput  []int
	fns      []func(stream.Tuple) stream.Value
	identity bool
	attrMap  core.AttrMap
	inv      []int

	// guards live in the step's OUTPUT attribute space, exactly like the
	// unfused operator's table.
	guards    *core.GuardTable
	responses []core.Response
	meter     *work.Meter

	// Counters are atomics so /metrics can scrape per-constituent work
	// while the plan runs; the batch path still adds once per batch per
	// step, preserving the batched-counters contract (DESIGN.md §2.3).
	nIn, nOut, suppressed, punctDropped atomic.Int64
}

// Fused runs a chain of stateless operators as one exec node.
//
//pace:stateless fuses only stateless operators; per-step guards are exploitation-only and scratch is transient within one call
type Fused struct {
	exec.Base
	in    stream.Schema
	steps []step
	name  string
	// scratch backs ProcessTupleBatch's survivor filtering; reused across
	// batches (operators are single-goroutine) so the steady state is
	// allocation-free. Transient within one call — never checkpointed.
	scratch []stream.Tuple

	// Kernel-level feedback accounting (feedback is off the tuple path).
	fbReceived, fbExploited, fbForwarded atomic.Int64
}

// New builds a fused kernel from a chain of operators (upstream→downstream).
// Every operator must be a *op.Select, *op.Project, or *op.Map; Project/Map
// misconfiguration surfaces as an error (via Init), not a panic.
func New(ops []exec.Operator) (*Fused, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("fuse: empty chain")
	}
	f := &Fused{}
	names := make([]string, 0, len(ops))
	for _, o := range ops {
		switch o := o.(type) {
		case *op.Select:
			f.steps = append(f.steps, step{
				kind: kSelect, name: o.Name(), mode: o.Mode, propagate: o.Propagate,
				cond: o.Cond, expr: o.Expr, cost: o.Cost, meter: &work.Meter{},
				out: o.Schema, identity: true,
			})
		case *op.Project:
			if err := o.Init(); err != nil {
				return nil, fmt.Errorf("fuse: %v", err)
			}
			outS, idxs, err := o.In.Project(o.Keep...)
			if err != nil {
				return nil, fmt.Errorf("fuse: project %q: %v", o.Name(), err)
			}
			f.steps = append(f.steps, step{})
			initMappingStep(&f.steps[len(f.steps)-1], kProject, o.Name(), o.Mode, o.Propagate,
				o.In, outS, idxs, nil)
		case *op.Map:
			if err := o.Init(); err != nil {
				return nil, fmt.Errorf("fuse: %v", err)
			}
			toInput := make([]int, len(o.Outs))
			fns := make([]func(stream.Tuple) stream.Value, len(o.Outs))
			for i, a := range o.Outs {
				if a.From != "" {
					toInput[i] = o.In.Index(a.From)
				} else {
					toInput[i] = -1
					fns[i] = a.Fn
				}
			}
			f.steps = append(f.steps, step{})
			initMappingStep(&f.steps[len(f.steps)-1], kMap, o.Name(), o.Mode, o.Propagate,
				o.In, o.OutSchemas()[0], toInput, fns)
		default:
			return nil, fmt.Errorf("fuse: %q (%T) is not a fusible operator", o.Name(), o)
		}
		names = append(names, o.Name())
	}
	f.in = ops[0].InSchemas()[0]
	f.name = "fused(" + strings.Join(names, "+") + ")"
	return f, nil
}

// initMappingStep fills st in place (step holds atomics, so it must not be
// returned or copied by value).
func initMappingStep(st *step, kind stepKind, name string, mode op.FeedbackMode, propagate bool,
	in, out stream.Schema, toInput []int, fns []func(stream.Tuple) stream.Value) {
	st.kind, st.name, st.mode, st.propagate = kind, name, mode, propagate
	st.out, st.toInput, st.fns = out, toInput, fns
	st.attrMap = core.AttrMap{InputArity: in.Arity(), ToInput: append([]int(nil), toInput...)}
	st.identity = len(toInput) == in.Arity()
	for i, src := range toInput {
		if src != i {
			st.identity = false
			break
		}
	}
	st.inv = make([]int, in.Arity())
	for i := range st.inv {
		st.inv[i] = -1
	}
	// First carrying output wins, matching the unfused outputOf scan order.
	for o, src := range toInput {
		if src >= 0 && st.inv[src] < 0 {
			st.inv[src] = o
		}
	}
}

// Name implements exec.Operator.
func (f *Fused) Name() string { return f.name }

// InSchemas implements exec.Operator.
func (f *Fused) InSchemas() []stream.Schema { return []stream.Schema{f.in} }

// OutSchemas implements exec.Operator.
func (f *Fused) OutSchemas() []stream.Schema {
	return []stream.Schema{f.steps[len(f.steps)-1].out}
}

// Open implements exec.Operator.
func (f *Fused) Open(exec.Context) error {
	for i := range f.steps {
		st := &f.steps[i]
		st.guards = core.NewGuardTable(st.out.Arity())
	}
	return nil
}

// ProcessTuple implements exec.Operator: the flat kernel loop. Each step
// performs exactly the unfused operator's per-tuple work — guard probe,
// predicate/cost, attribute mapping — but the tuple moves to the next step
// by local variable, not by page handoff, and only the survivor of the whole
// chain is emitted.
//
//pace:hotpath
func (f *Fused) ProcessTuple(_ int, t stream.Tuple, ctx exec.Context) error {
	if out, ok := f.runTuple(t); ok {
		ctx.Emit(out)
	}
	return nil
}

// runTuple pushes one tuple through the step table and reports whether it
// survived the whole chain — the kernel core shared by ProcessTuple and the
// prefix path (Prefixed), which emit survivors differently.
func (f *Fused) runTuple(t stream.Tuple) (stream.Tuple, bool) {
	cur := t
	for i := range f.steps {
		st := &f.steps[i]
		st.nIn.Add(1)
		switch st.kind {
		case kSelect:
			if st.mode != op.FeedbackIgnore && st.guards.Suppress(cur) {
				st.suppressed.Add(1)
				return stream.Tuple{}, false
			}
			if st.cost > 0 {
				st.meter.Do(st.cost)
			}
			if st.expr != nil && !st.expr.Eval(cur) {
				return stream.Tuple{}, false
			}
			if st.cond != nil && !st.cond(cur) {
				return stream.Tuple{}, false
			}
		case kProject:
			if !st.identity {
				cur = cur.Project(st.toInput)
			}
			if st.mode != op.FeedbackIgnore && st.guards.Suppress(cur) {
				st.suppressed.Add(1)
				return stream.Tuple{}, false
			}
		case kMap:
			if !st.identity {
				vals := make([]stream.Value, len(st.toInput))
				for o, src := range st.toInput {
					if src >= 0 {
						vals[o] = cur.Values[src]
					} else {
						vals[o] = st.fns[o](cur)
					}
				}
				cur = stream.Tuple{Values: vals, Seq: cur.Seq}
			}
			if st.mode != op.FeedbackIgnore && st.guards.Suppress(cur) {
				st.suppressed.Add(1)
				return stream.Tuple{}, false
			}
		}
		st.nOut.Add(1)
	}
	return cur, true
}

// ProcessTupleBatch implements exec.TupleBatcher: a run of consecutive
// tuples goes through each step as one tight loop — counters batched, the
// guard-table check hoisted per batch (feedback only arrives between
// batches, so the table cannot change mid-run) — and the survivors are
// emitted in order. Exactly equivalent to calling ProcessTuple per item;
// the runtime mixes both paths freely.
//
//pace:hotpath
func (f *Fused) ProcessTupleBatch(_ int, items []queue.Item, ctx exec.Context) error {
	buf := f.runBatchItems(items)
	if be, ok := ctx.(exec.BatchEmitter); ok {
		be.EmitBatch(buf)
	} else {
		for i := range buf {
			ctx.Emit(buf[i])
		}
	}
	f.scratch = buf[:0]
	return nil
}

// runBatchItems loads a queue run into the reused scratch buffer and runs
// the step table over it, returning the survivors. The returned slice is
// backed by f.scratch and is valid until the next run*/Process* call — the
// caller must hand it off (emit or batch-apply) before then, not retain it.
//
//pace:hotpath
func (f *Fused) runBatchItems(items []queue.Item) []stream.Tuple {
	buf := f.scratch[:0]
	for i := range items {
		buf = append(buf, items[i].Tuple)
	}
	buf = f.runSteps(buf)
	f.scratch = buf
	return buf
}

// runSteps filters/transforms buf in place through the step table, one tight
// loop per step with batched counters and the guard probe hoisted per batch
// (feedback only arrives between batches, so the table cannot change
// mid-run). Returns the surviving prefix of buf.
func (f *Fused) runSteps(buf []stream.Tuple) []stream.Tuple {
	for si := range f.steps {
		st := &f.steps[si]
		st.nIn.Add(int64(len(buf)))
		guarded := st.mode != op.FeedbackIgnore && st.guards.Active() > 0
		if st.kind != kSelect && st.identity && !guarded {
			// Identity projection/rename with no active guards: every tuple
			// passes through unchanged, so only the counters move.
			st.nOut.Add(int64(len(buf)))
			continue
		}
		out := buf[:0] // in-place filter: writes trail reads
		switch st.kind {
		case kSelect:
			for _, t := range buf {
				if guarded && st.guards.Suppress(t) {
					st.suppressed.Add(1)
					continue
				}
				if st.cost > 0 {
					st.meter.Do(st.cost)
				}
				if st.expr != nil && !st.expr.Eval(t) {
					continue
				}
				if st.cond != nil && !st.cond(t) {
					continue
				}
				out = append(out, t)
			}
		case kProject:
			for _, t := range buf {
				if !st.identity {
					t = t.Project(st.toInput)
				}
				if guarded && st.guards.Suppress(t) {
					st.suppressed.Add(1)
					continue
				}
				out = append(out, t)
			}
		case kMap:
			for _, t := range buf {
				if !st.identity {
					vals := make([]stream.Value, len(st.toInput))
					for o, src := range st.toInput {
						if src >= 0 {
							vals[o] = t.Values[src]
						} else {
							vals[o] = st.fns[o](t)
						}
					}
					t = stream.Tuple{Values: vals, Seq: t.Seq}
				}
				if guarded && st.guards.Suppress(t) {
					st.suppressed.Add(1)
					continue
				}
				out = append(out, t)
			}
		}
		st.nOut.Add(int64(len(out)))
		buf = out
	}
	return buf
}

// ProcessPunct implements exec.Operator: the chain relays punctuation iff
// every constituent would. Steps are visited in chain order; a Select
// observes the pattern unchanged, a Project/Map relays it through its
// attribute mapping (op.RelayPunct) or consumes it — and a consumed
// punctuation stops the walk exactly where the unfused chain would have.
func (f *Fused) ProcessPunct(_ int, e punct.Embedded, ctx exec.Context) error {
	if out, ok := f.relayPunct(e); ok {
		ctx.EmitPunct(out)
	}
	return nil
}

// relayPunct walks the punctuation through the step table in chain order,
// returning the re-expressed pattern and whether it survived every
// constituent's mapping (false = consumed inside the kernel).
func (f *Fused) relayPunct(e punct.Embedded) (punct.Embedded, bool) {
	cur := e
	for i := range f.steps {
		st := &f.steps[i]
		if st.kind == kSelect || st.identity {
			// Select never remaps; an identity projection/rename relays the
			// pattern unchanged — proved at fuse time, so no re-projection
			// (or allocation) happens per punctuation.
			st.guards.ObservePunct(cur)
			continue
		}
		projected, ok := op.RelayPunct(cur.Pattern, func(in int) int {
			if in < 0 || in >= len(st.inv) {
				return -1
			}
			return st.inv[in]
		}, st.out.Arity())
		if !ok {
			st.punctDropped.Add(1)
			return punct.Embedded{}, false
		}
		cur = punct.NewEmbedded(projected)
		st.guards.ObservePunct(cur)
	}
	return cur, true
}

// ProcessFeedback implements exec.Operator: feedback arrives at the chain's
// downstream end and walks the steps in reverse, exactly as it would hop
// node to node unfused. Each step installs assumed patterns into its own
// guard table (in its output space) and decides propagation by its own rule
// — identity for Select, SafePropagation through the attribute map for
// Project/Map. The pattern is re-expressed hop by hop; it leaves the fused
// node upstream iff every constituent propagates.
func (f *Fused) ProcessFeedback(_ int, fb core.Feedback, ctx exec.Context) error {
	if out, ok := f.applyFeedback(fb); ok {
		ctx.SendFeedback(0, out)
	}
	return nil
}

// applyFeedback installs the feedback into each constituent's guard table in
// reverse chain order and reports whether (and as what pattern) it leaves the
// kernel's upstream end — the core shared by ProcessFeedback and the prefix
// path, which forward upstream differently.
func (f *Fused) applyFeedback(fb core.Feedback) (core.Feedback, bool) {
	f.fbReceived.Add(1)
	cur := fb
	for i := len(f.steps) - 1; i >= 0; i-- {
		st := &f.steps[i]
		resp := core.Response{Feedback: cur}
		proceed := false
		switch st.kind {
		case kSelect:
			switch cur.Intent {
			case core.Assumed:
				if st.mode != op.FeedbackIgnore {
					st.guards.Install(cur)
					f.fbExploited.Add(1)
					resp.Actions = append(resp.Actions, core.ActGuardInput, core.ActGuardOutput)
				} else {
					resp.Actions = append(resp.Actions, core.ActNone)
				}
			case core.Desired, core.Demanded:
				resp.Actions = append(resp.Actions, core.ActNone)
			}
			if st.propagate {
				relayed := cur.Relayed(cur.Pattern)
				resp.Actions = append(resp.Actions, core.ActPropagate)
				resp.Propagated = []*core.Feedback{&relayed}
				cur = relayed
				proceed = true
			}
		case kProject, kMap:
			if cur.Intent == core.Assumed && st.mode != op.FeedbackIgnore {
				st.guards.Install(cur)
				f.fbExploited.Add(1)
				resp.Actions = append(resp.Actions, core.ActGuardInput, core.ActGuardOutput)
			}
			if st.propagate {
				if prop := core.SafePropagation(cur.Pattern, st.attrMap); prop.OK {
					relayed := cur.Relayed(prop.Pattern)
					resp.Actions = append(resp.Actions, core.ActPropagate)
					resp.Propagated = []*core.Feedback{&relayed}
					cur = relayed
					proceed = true
				} else {
					resp.Note = "propagation refused: " + prop.Reason
				}
			}
			if len(resp.Actions) == 0 {
				resp.Actions = []core.Action{core.ActNone}
			}
		}
		st.responses = append(st.responses, resp)
		if !proceed {
			return core.Feedback{}, false
		}
	}
	f.fbForwarded.Add(1)
	return cur, true
}

// NumSteps returns the number of fused constituents.
func (f *Fused) NumSteps() int { return len(f.steps) }

// StepStat is one constituent's accounting, preserving the per-logical-
// operator observability the unfused chain had.
type StepStat struct {
	Name       string
	Kind       string
	In         int64
	Out        int64
	Suppressed int64
	// PunctDropped counts punctuation consumed at this step because its
	// bound attributes did not survive the step's mapping.
	PunctDropped int64
	CostBurned   int64
}

// StepStats reports per-constituent counters in chain order.
func (f *Fused) StepStats() []StepStat {
	out := make([]StepStat, len(f.steps))
	for i := range f.steps {
		st := &f.steps[i]
		s := StepStat{
			Name: st.name, Kind: st.kind.String(),
			In: st.nIn.Load(), Out: st.nOut.Load(), Suppressed: st.suppressed.Load(),
			PunctDropped: st.punctDropped.Load(),
		}
		if st.meter != nil {
			s.CostBurned = st.meter.Total()
		}
		out[i] = s
	}
	return out
}

// SuppressedTuples reports guard suppressions across all constituents,
// scrape-safe; exec.Graph surfaces it per edge (EdgeInfo.Suppressed).
func (f *Fused) SuppressedTuples() int64 {
	var total int64
	for i := range f.steps {
		total += f.steps[i].suppressed.Load()
	}
	return total
}

// PunctDropped reports punctuation consumed inside the kernel because its
// bound attributes did not survive some constituent's mapping.
func (f *Fused) PunctDropped() int64 {
	var total int64
	for i := range f.steps {
		total += f.steps[i].punctDropped.Load()
	}
	return total
}

// TelemetryVars implements telemetry.VarExporter: the standard pace_op_*
// tuple counters per constituent (labelled step/kind, preserving the
// per-logical-operator observability the unfused chain had) plus the
// kernel-level feedback counters.
func (f *Fused) TelemetryVars() []telemetry.Var {
	vars := []telemetry.Var{
		{Name: "pace_op_feedback_received_total", Help: "Feedback messages delivered to the fused kernel.", Kind: telemetry.Counter, Value: f.fbReceived.Load},
		{Name: "pace_op_feedback_exploited_total", Help: "Guard installs performed across constituents in response to feedback.", Kind: telemetry.Counter, Value: f.fbExploited.Load},
		{Name: "pace_op_feedback_forwarded_total", Help: "Feedback messages relayed upstream of the fused kernel.", Kind: telemetry.Counter, Value: f.fbForwarded.Load},
	}
	for i := range f.steps {
		st := &f.steps[i]
		labels := map[string]string{"step": st.name, "kind": st.kind.String()}
		vars = append(vars,
			telemetry.Var{Name: "pace_op_tuples_in_total", Help: "Tuples delivered to the constituent.", Kind: telemetry.Counter, Labels: labels, Value: st.nIn.Load},
			telemetry.Var{Name: "pace_op_tuples_out_total", Help: "Tuples the constituent passed on.", Kind: telemetry.Counter, Labels: labels, Value: st.nOut.Load},
			telemetry.Var{Name: "pace_op_suppressed_tuples_total", Help: "Tuples suppressed by the constituent's guard table.", Kind: telemetry.Counter, Labels: labels, Value: st.suppressed.Load},
			telemetry.Var{Name: "pace_op_punct_dropped_total", Help: "Punctuations consumed at the constituent.", Kind: telemetry.Counter, Labels: labels, Value: st.punctDropped.Load},
		)
	}
	return vars
}

// StepResponses returns the feedback-response log of constituent i, the
// fused equivalent of the unfused operator's Responses().
func (f *Fused) StepResponses(i int) []core.Response {
	return f.steps[i].responses
}

// CostBurned reports total evaluation work done across all constituents.
func (f *Fused) CostBurned() int64 {
	var total int64
	for i := range f.steps {
		if m := f.steps[i].meter; m != nil {
			total += m.Total()
		}
	}
	return total
}

// Explain renders the kernel's step table, one entry per constituent.
func (f *Fused) Explain() string {
	parts := make([]string, len(f.steps))
	for i := range f.steps {
		st := &f.steps[i]
		d := st.kind.String() + " " + st.name
		if st.kind == kSelect && st.expr != nil {
			d += " [" + st.expr.String() + "]"
		}
		if st.kind != kSelect {
			d += " -> " + st.out.String()
		}
		parts[i] = d
	}
	return strings.Join(parts, " | ")
}

// String describes the operator.
func (f *Fused) String() string {
	return fmt.Sprintf("FUSED[%s]", f.Explain())
}
