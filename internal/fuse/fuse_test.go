package fuse

import (
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/op"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/remote"
	"repro/internal/stream"
	"repro/internal/window"
)

var chainSchema = stream.MustSchema(
	stream.F("a", stream.KindInt),
	stream.F("b", stream.KindInt),
	stream.F("ts", stream.KindTime),
	stream.F("v", stream.KindFloat),
)

// ---------------------------------------------------------------------------
// Randomized harness-twin property test: a fused kernel must be
// observationally identical to the unfused operator chain — emitted items,
// upstream feedback, per-step counters, and feedback-response logs — across
// random chains and random scripts of tuples, punctuation, and feedback in
// every mode.
// ---------------------------------------------------------------------------

// stepSpec describes one chain constituent; build constructs a fresh
// operator instance so the fused and unfused twins never share state.
type stepSpec struct {
	build func() exec.Operator
	out   stream.Schema
}

func randMode(rng *rand.Rand) op.FeedbackMode {
	return []op.FeedbackMode{op.FeedbackIgnore, op.FeedbackGuardOutput, op.FeedbackExploit}[rng.Intn(3)]
}

// randPred builds a predicate for a column of the given kind.
func randPred(rng *rand.Rand, kind stream.Kind) punct.Pred {
	switch kind {
	case stream.KindInt:
		v := stream.Int(int64(rng.Intn(5)))
		switch rng.Intn(4) {
		case 0:
			return punct.Eq(v)
		case 1:
			return punct.Ne(v)
		case 2:
			return punct.Le(v)
		default:
			return punct.Ge(v)
		}
	case stream.KindTime:
		return punct.Le(stream.TimeMicros(int64(rng.Intn(40)) * 1000))
	case stream.KindFloat:
		if rng.Intn(4) == 0 {
			return punct.NullPred()
		}
		return punct.Ge(stream.Float(float64(rng.Intn(60))))
	default:
		return punct.Eq(stream.Int(0))
	}
}

// randChain generates 2–5 stateless steps over evolving schemas.
func randChain(rng *rand.Rand) []stepSpec {
	cur := chainSchema
	n := 2 + rng.Intn(4)
	specs := make([]stepSpec, 0, n)
	for i := 0; i < n; i++ {
		mode, propagate := randMode(rng), rng.Intn(3) > 0
		name := fmt.Sprintf("s%d", i)
		in := cur
		switch rng.Intn(3) {
		case 0: // select
			var steps []op.ExprStep
			for c := 0; c < in.Arity(); c++ {
				if rng.Intn(3) == 0 {
					steps = append(steps, op.ExprStep{Col: c, Name: in.Field(c).Name, Pred: randPred(rng, in.Field(c).Kind)})
				}
			}
			expr, err := op.NewExpr(in.Arity(), steps...)
			if err != nil {
				panic(err)
			}
			cost := rng.Intn(3)
			specs = append(specs, stepSpec{out: in, build: func() exec.Operator {
				return &op.Select{OpName: name, Schema: in, Expr: expr, Cost: cost, Mode: mode, Propagate: propagate}
			}})
		case 1: // project: random non-empty keep subset, in order
			var keep []string
			for c := 0; c < in.Arity(); c++ {
				if rng.Intn(2) == 0 {
					keep = append(keep, in.Field(c).Name)
				}
			}
			if len(keep) == 0 {
				keep = []string{in.Field(rng.Intn(in.Arity())).Name}
			}
			kept := keep
			p := &op.Project{OpName: name, In: in, Keep: kept}
			if err := p.Init(); err != nil {
				panic(err)
			}
			out := p.OutSchemas()[0]
			specs = append(specs, stepSpec{out: out, build: func() exec.Operator {
				return &op.Project{OpName: name, In: in, Keep: kept, Mode: mode, Propagate: propagate}
			}})
			cur = out
		default: // map: carries (some renamed) plus sometimes a computed attr
			var outs []op.MapAttr
			for c := 0; c < in.Arity(); c++ {
				switch rng.Intn(3) {
				case 0: // dropped
				case 1:
					outs = append(outs, op.Carry(in.Field(c).Name))
				default:
					outs = append(outs, op.CarryAs("r_"+in.Field(c).Name, in.Field(c).Name))
				}
			}
			if rng.Intn(2) == 0 {
				outs = append(outs, op.Compute(fmt.Sprintf("x%d", i), stream.KindInt,
					func(t stream.Tuple) stream.Value { return stream.Int(int64(t.Arity())) }))
			}
			if len(outs) == 0 {
				outs = append(outs, op.Carry(in.Field(0).Name))
			}
			outsCopy := outs
			m := &op.Map{OpName: name, In: in, Outs: outsCopy}
			if err := m.Init(); err != nil {
				panic(err)
			}
			out := m.OutSchemas()[0]
			specs = append(specs, stepSpec{out: out, build: func() exec.Operator {
				return &op.Map{OpName: name, In: in, Outs: outsCopy, Mode: mode, Propagate: propagate}
			}})
			cur = out
		}
		cur = specs[len(specs)-1].out
	}
	return specs
}

func randTuple(rng *rand.Rand, i int) stream.Tuple {
	v := stream.Float(20 + float64(rng.Intn(60)))
	if rng.Intn(8) == 0 {
		v = stream.Null
	}
	return stream.NewTuple(
		stream.Int(int64(rng.Intn(5))), stream.Int(int64(rng.Intn(5))),
		stream.TimeMicros(int64(i)*1000), v)
}

func randPattern(rng *rand.Rand, sch stream.Schema) punct.Pattern {
	c := rng.Intn(sch.Arity())
	return punct.OnAttr(sch.Arity(), c, randPred(rng, sch.Field(c).Kind))
}

// unfusedChain drives the constituent operators through linked harnesses:
// data cascades downstream harness to harness, feedback cascades upstream.
type unfusedChain struct {
	ops    []exec.Operator
	hs     []*exec.Harness
	outCur []int
	fbCur  []int
	items  []queue.Item
	fb     []core.Feedback
}

func newUnfusedChain(specs []stepSpec) *unfusedChain {
	u := &unfusedChain{
		outCur: make([]int, len(specs)),
		fbCur:  make([]int, len(specs)),
	}
	for _, s := range specs {
		o := s.build()
		u.ops = append(u.ops, o)
		u.hs = append(u.hs, exec.NewHarness(o))
	}
	return u
}

func (u *unfusedChain) drain(t *testing.T) {
	for {
		progress := false
		for i, h := range u.hs {
			out := h.Out(0)
			for u.outCur[i] < len(out) {
				it := out[u.outCur[i]]
				u.outCur[i]++
				progress = true
				if i+1 == len(u.hs) {
					u.items = append(u.items, it)
					continue
				}
				switch it.Kind {
				case queue.ItemTuple:
					u.hs[i+1].Tuple(0, it.Tuple)
				case queue.ItemPunct:
					u.hs[i+1].Punct(0, *it.Punct)
				}
			}
			sent := h.SentFeedback(0)
			for u.fbCur[i] < len(sent) {
				f := sent[u.fbCur[i]]
				u.fbCur[i]++
				progress = true
				if i == 0 {
					u.fb = append(u.fb, f)
				} else {
					u.hs[i-1].Feedback(0, f)
				}
			}
			if err := h.Err(); err != nil {
				t.Fatalf("unfused harness %d: %v", i, err)
			}
		}
		if !progress {
			return
		}
	}
}

func TestFusedEqualsUnfusedProperty(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		specs := randChain(rng)
		outSchema := specs[len(specs)-1].out

		unfused := newUnfusedChain(specs)
		fusedOps := make([]exec.Operator, len(specs))
		for i, s := range specs {
			fusedOps[i] = s.build()
		}
		fused, err := New(fusedOps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fh := exec.NewHarness(fused)

		events := 20 + rng.Intn(30)
		var seq int64
		for i := 0; i < events; i++ {
			switch r := rng.Intn(10); {
			case r < 6:
				tp := randTuple(rng, i)
				unfused.hs[0].Tuple(0, tp)
				fh.Tuple(0, tp)
			case r < 8:
				e := punct.NewEmbedded(randPattern(rng, chainSchema))
				unfused.hs[0].Punct(0, e)
				fh.Punct(0, e)
			default:
				seq++
				f := core.Feedback{
					Intent:  []core.Intent{core.Assumed, core.Desired, core.Demanded}[rng.Intn(3)],
					Pattern: randPattern(rng, outSchema),
					Origin:  "downstream", Seq: seq,
				}
				unfused.hs[len(unfused.hs)-1].Feedback(0, f)
				fh.Feedback(0, f)
			}
			unfused.drain(t)
		}
		if err := fh.Err(); err != nil {
			t.Fatalf("seed %d: fused harness: %v", seed, err)
		}

		if !reflect.DeepEqual(unfused.items, fh.Out(0)) {
			t.Fatalf("seed %d: emitted items diverge\nunfused: %v\nfused:   %v",
				seed, unfused.items, fh.Out(0))
		}
		if !reflect.DeepEqual(unfused.fb, fh.SentFeedback(0)) {
			t.Fatalf("seed %d: upstream feedback diverges\nunfused: %v\nfused:   %v",
				seed, unfused.fb, fh.SentFeedback(0))
		}
		stats := fused.StepStats()
		if len(stats) != len(unfused.ops) {
			t.Fatalf("seed %d: %d steps, want %d", seed, len(stats), len(unfused.ops))
		}
		for i, o := range unfused.ops {
			st := stats[i]
			var in, out, sup, dropped, cost int64
			var responses []core.Response
			switch o := o.(type) {
			case *op.Select:
				in, out, sup = o.Stats()
				cost = o.CostBurned()
				responses = o.Responses()
			case *op.Project:
				in, out, sup, dropped = o.Stats()
				responses = o.Responses()
			case *op.Map:
				in, out, sup = o.Stats()
				dropped = o.PunctDropped()
				responses = o.Responses()
			}
			if st.In != in || st.Out != out || st.Suppressed != sup || st.PunctDropped != dropped || st.CostBurned != cost {
				t.Fatalf("seed %d step %d (%s): fused stats %+v, unfused (in=%d out=%d sup=%d dropped=%d cost=%d)",
					seed, i, st.Name, st, in, out, sup, dropped, cost)
			}
			if !reflect.DeepEqual(responses, fused.StepResponses(i)) {
				t.Fatalf("seed %d step %d (%s): response logs diverge\nunfused: %+v\nfused:   %+v",
					seed, i, st.Name, responses, fused.StepResponses(i))
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Fusion-boundary tests: the pass must stop at stateful operators, fan
// in/out, and remote edges, and must leave length-1 chains alone.
// ---------------------------------------------------------------------------

func nodeNames(g *exec.Graph) []string {
	names := make([]string, g.NumNodes())
	for i := range names {
		names[i] = g.NameAt(exec.NodeID(i))
	}
	return names
}

func TestRewriteFusesAroundStatefulOperator(t *testing.T) {
	g := exec.NewGraph()
	src := g.AddSource(exec.NewSliceSource("src", chainSchema))
	sel1 := g.Add(&op.Select{OpName: "sel1", Schema: chainSchema}, exec.From(src))
	proj := &op.Project{OpName: "proj", In: chainSchema, Keep: []string{"a", "ts", "v"}}
	pid := g.Add(proj, exec.From(sel1))
	agg := &op.Aggregate{OpName: "agg", In: proj.OutSchemas()[0], Kind: core.AggAvg,
		TsAttr: 1, ValAttr: 2, GroupBy: []int{0}, Window: window.Tumbling(1_000_000), ValueName: "avg_v"}
	aid := g.Add(agg, exec.From(pid))
	aggOut := agg.OutSchemas()[0]
	sel2 := g.Add(&op.Select{OpName: "sel2", Schema: aggOut}, exec.From(aid))
	carries := make([]op.MapAttr, aggOut.Arity())
	for i := 0; i < aggOut.Arity(); i++ {
		carries[i] = op.Carry(aggOut.Field(i).Name)
	}
	mid := g.Add(&op.Map{OpName: "map2", In: aggOut, Outs: carries}, exec.From(sel2))
	g.Add(exec.NewCollector("sink", aggOut), exec.From(mid))

	fusions, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1 builds the two standalone kernels; stage 2 then absorbs the
	// upstream kernel into the aggregate as a prefix. The downstream kernel
	// feeds a sink (not an absorb target) and stays standalone.
	if len(fusions) != 3 {
		t.Fatalf("fusions = %+v, want 3", fusions)
	}
	if c := fusions[2].Consumer; c != "agg" {
		t.Fatalf("stage-2 fusion consumer = %q, want \"agg\"", c)
	}
	if !reflect.DeepEqual(fusions[2].Steps, []string{"sel1", "proj"}) {
		t.Fatalf("stage-2 fusion steps = %v", fusions[2].Steps)
	}
	want := []string{"src", "fused(sel1+proj=>agg)", "fused(sel2+map2)", "sink"}
	if got := nodeNames(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("nodes after rewrite = %v, want %v", got, want)
	}
	// The aggregate's node keeps its stateful identity: the prefixed node
	// still captures and restores exactly the aggregate's state.
	pf, ok := g.OperatorAt(exec.NodeID(1)).(*Prefixed)
	if !ok {
		t.Fatalf("node 1 is %T, want *Prefixed", g.OperatorAt(exec.NodeID(1)))
	}
	if pf.Inner() != agg {
		t.Fatalf("prefixed inner = %v, want the original aggregate", pf.Inner())
	}
	// The compiled plan must still be runnable end to end.
	if err := g.Run(); err != nil {
		t.Fatalf("compiled plan run: %v", err)
	}
}

// TestRewriteAbsorbsLoneStepIntoStateful pins that stage 2 also absorbs a
// single stateless operator (which stage 1 leaves alone) into its stateful
// consumer, as a one-step prefix kernel.
func TestRewriteAbsorbsLoneStepIntoStateful(t *testing.T) {
	g := exec.NewGraph()
	src := g.AddSource(exec.NewSliceSource("src", chainSchema))
	sel := g.Add(&op.Select{OpName: "sel", Schema: chainSchema}, exec.From(src))
	agg := &op.Aggregate{OpName: "agg", In: chainSchema, Kind: core.AggCount,
		TsAttr: 2, ValAttr: -1, GroupBy: []int{0}, Window: window.Tumbling(1_000_000), ValueName: "n"}
	aid := g.Add(agg, exec.From(sel))
	g.Add(exec.NewCollector("sink", agg.OutSchemas()[0]), exec.From(aid))

	fusions, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(fusions) != 1 || fusions[0].Consumer != "agg" || len(fusions[0].Steps) != 1 {
		t.Fatalf("fusions = %+v, want one single-step absorb into agg", fusions)
	}
	want := []string{"src", "fused(sel=>agg)", "sink"}
	if got := nodeNames(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("nodes after rewrite = %v, want %v", got, want)
	}
}

func TestRewriteStopsAtFanOut(t *testing.T) {
	g := exec.NewGraph()
	src := g.AddSource(exec.NewSliceSource("src", chainSchema))
	sel := g.Add(&op.Select{OpName: "sel", Schema: chainSchema}, exec.From(src))
	dup := g.Add(&op.Duplicate{OpName: "dup", Schema: chainSchema, N: 2}, exec.From(sel))
	p1 := &op.Project{OpName: "p1", In: chainSchema, Keep: []string{"a"}}
	p2 := &op.Project{OpName: "p2", In: chainSchema, Keep: []string{"b"}}
	i1 := g.Add(p1, exec.FromPort(dup, 0))
	i2 := g.Add(p2, exec.FromPort(dup, 1))
	g.Add(exec.NewCollector("k1", p1.OutSchemas()[0]), exec.From(i1))
	g.Add(exec.NewCollector("k2", p2.OutSchemas()[0]), exec.From(i2))

	before := g.NumNodes()
	fusions, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(fusions) != 0 || g.NumNodes() != before {
		t.Fatalf("fan-out plan was rewritten: fusions=%+v nodes=%v", fusions, nodeNames(g))
	}
}

func TestRewriteStopsAtRemoteEdge(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	g := exec.NewGraph()
	src := g.AddSource(exec.NewSliceSource("src", chainSchema))
	sel := g.Add(&op.Select{OpName: "sel", Schema: chainSchema}, exec.From(src))
	carries := make([]op.MapAttr, chainSchema.Arity())
	for i := 0; i < chainSchema.Arity(); i++ {
		carries[i] = op.Carry(chainSchema.Field(i).Name)
	}
	mid := g.Add(&op.Map{OpName: "norm", In: chainSchema, Outs: carries}, exec.From(sel))
	g.Add(remote.NewSink("rsink", chainSchema, c1), exec.From(mid))

	fusions, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"src", "fused(sel+norm)", "rsink"}
	if got := nodeNames(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("nodes after rewrite = %v, want %v (fusions=%+v)", got, want, fusions)
	}
}

func TestRewriteLeavesSingletonsAlone(t *testing.T) {
	g := exec.NewGraph()
	src := g.AddSource(exec.NewSliceSource("src", chainSchema))
	sel := g.Add(&op.Select{OpName: "sel", Schema: chainSchema}, exec.From(src))
	g.Add(exec.NewCollector("sink", chainSchema), exec.From(sel))
	fusions, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(fusions) != 0 {
		t.Fatalf("singleton chain fused: %+v", fusions)
	}
}

// ---------------------------------------------------------------------------
// Kernel allocation: the fused hot loop must not allocate for identity-
// shaped chains (select + carry-all map), matching the unfused steady state.
// ---------------------------------------------------------------------------

// discardCtx is a no-op exec.Context for direct kernel measurement.
type discardCtx struct{}

func (discardCtx) Emit(stream.Tuple)               {}
func (discardCtx) EmitTo(int, stream.Tuple)        {}
func (discardCtx) EmitPunct(punct.Embedded)        {}
func (discardCtx) EmitPunctTo(int, punct.Embedded) {}
func (discardCtx) SendFeedback(int, core.Feedback) {}
func (discardCtx) ShutdownUpstream(int)            {}
func (discardCtx) NumInputs() int                  { return 1 }
func (discardCtx) NumOutputs() int                 { return 1 }
func (discardCtx) Logf(string, ...any)             {}

func TestFusedKernelZeroAlloc(t *testing.T) {
	expr, err := op.NewExpr(chainSchema.Arity(),
		op.ExprStep{Col: 0, Name: "a", Pred: punct.Le(stream.Int(3))},
		op.ExprStep{Col: 3, Name: "v", Pred: punct.Ge(stream.Float(10))})
	if err != nil {
		t.Fatal(err)
	}
	carries := make([]op.MapAttr, chainSchema.Arity())
	for i := 0; i < chainSchema.Arity(); i++ {
		carries[i] = op.Carry(chainSchema.Field(i).Name)
	}
	fused, err := New([]exec.Operator{
		&op.Select{OpName: "sel", Schema: chainSchema, Expr: expr, Mode: op.FeedbackExploit},
		&op.Project{OpName: "keep", In: chainSchema, Keep: []string{"a", "b", "ts", "v"}},
		&op.Map{OpName: "norm", In: chainSchema, Outs: carries},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := discardCtx{}
	if err := fused.Open(ctx); err != nil {
		t.Fatal(err)
	}
	tp := stream.NewTuple(stream.Int(1), stream.Int(2), stream.TimeMicros(3), stream.Float(55))
	allocs := testing.AllocsPerRun(1000, func() {
		if err := fused.ProcessTuple(0, tp, ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fused kernel allocates %.1f per tuple, want 0", allocs)
	}
}

// captureCtx records everything a kernel emits, in order.
type captureCtx struct {
	items []queue.Item
	fb    []core.Feedback
}

func (c *captureCtx) Emit(t stream.Tuple)                 { c.items = append(c.items, queue.TupleItem(t)) }
func (c *captureCtx) EmitTo(_ int, t stream.Tuple)        { c.Emit(t) }
func (c *captureCtx) EmitPunct(e punct.Embedded)          { c.items = append(c.items, queue.PunctItem(e)) }
func (c *captureCtx) EmitPunctTo(_ int, e punct.Embedded) { c.EmitPunct(e) }
func (c *captureCtx) SendFeedback(_ int, f core.Feedback) { c.fb = append(c.fb, f) }
func (c *captureCtx) ShutdownUpstream(int)                {}
func (c *captureCtx) NumInputs() int                      { return 1 }
func (c *captureCtx) NumOutputs() int                     { return 1 }
func (c *captureCtx) Logf(string, ...any)                 {}

// TestFusedBatchEqualsPerTuple pins the TupleBatcher contract directly: for
// random chains and random scripts of tuple runs, punctuation, and feedback,
// ProcessTupleBatch must produce the same emissions, upstream feedback, and
// per-step counters as calling ProcessTuple on each tuple in order.
func TestFusedBatchEqualsPerTuple(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		specs := randChain(rng)
		outSchema := specs[len(specs)-1].out
		build := func() *Fused {
			ops := make([]exec.Operator, len(specs))
			for i, s := range specs {
				ops[i] = s.build()
			}
			f, err := New(ops)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return f
		}
		single, batched := build(), build()
		sc, bc := &captureCtx{}, &captureCtx{}
		if err := single.Open(sc); err != nil {
			t.Fatal(err)
		}
		if err := batched.Open(bc); err != nil {
			t.Fatal(err)
		}
		var seq int64
		for ev := 0; ev < 15; ev++ {
			run := make([]queue.Item, 1+rng.Intn(7))
			for i := range run {
				run[i] = queue.TupleItem(randTuple(rng, ev*10+i))
			}
			for _, it := range run {
				if err := single.ProcessTuple(0, it.Tuple, sc); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			if err := batched.ProcessTupleBatch(0, run, bc); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			switch rng.Intn(3) {
			case 0:
				e := punct.NewEmbedded(randPattern(rng, chainSchema))
				if err := single.ProcessPunct(0, e, sc); err != nil {
					t.Fatal(err)
				}
				if err := batched.ProcessPunct(0, e, bc); err != nil {
					t.Fatal(err)
				}
			case 1:
				seq++
				f := core.Feedback{
					Intent:  []core.Intent{core.Assumed, core.Desired, core.Demanded}[rng.Intn(3)],
					Pattern: randPattern(rng, outSchema),
					Origin:  "downstream", Seq: seq,
				}
				if err := single.ProcessFeedback(0, f, sc); err != nil {
					t.Fatal(err)
				}
				if err := batched.ProcessFeedback(0, f, bc); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !reflect.DeepEqual(sc.items, bc.items) {
			t.Fatalf("seed %d: emissions diverge: per-tuple %d items, batch %d items",
				seed, len(sc.items), len(bc.items))
		}
		if !reflect.DeepEqual(sc.fb, bc.fb) {
			t.Fatalf("seed %d: upstream feedback diverges", seed)
		}
		if !reflect.DeepEqual(single.StepStats(), batched.StepStats()) {
			t.Fatalf("seed %d: step stats diverge:\n per-tuple: %+v\n batch:     %+v",
				seed, single.StepStats(), batched.StepStats())
		}
	}
}
