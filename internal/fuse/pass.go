package fuse

import (
	"repro/internal/exec"
	"repro/internal/op"
	"repro/internal/snapshot"
)

// Fusion records one applied rewrite: the fused node's name and the
// constituent operator names in chain order.
type Fusion struct {
	Name  string
	Steps []string
}

// Rewrite runs the fusion pass over an assembled, not-yet-run graph: it
// finds maximal chains of adjacent fusible operators and replaces each with
// a single Fused node. Chain boundaries — where fusion must stop — are:
//
//   - sources and any operator that is not Select/Project/Map (Split, Merge,
//     Aggregate, Join, remote sinks, collectors, …);
//   - any snapshot.Stater (stateful operators checkpoint per node, so their
//     node identity must survive compilation);
//   - nodes that are not 1-in/1-out (fan-in and fan-out);
//   - multi-consumer edges (only possible mid-construction; a prepared graph
//     fans out through explicit Duplicate operators, which are not fusible).
//
// Chains of length 1 are left alone. Returns the applied fusions in the
// order performed.
func Rewrite(g *exec.Graph) ([]Fusion, error) {
	var fusions []Fusion
	for {
		chain := findChain(g)
		if chain == nil {
			return fusions, nil
		}
		ops := make([]exec.Operator, len(chain))
		names := make([]string, len(chain))
		for i, id := range chain {
			ops[i] = g.OperatorAt(id)
			names[i] = ops[i].Name()
		}
		fused, err := New(ops)
		if err != nil {
			return fusions, err
		}
		if err := g.ReplaceChain(chain, fused); err != nil {
			return fusions, err
		}
		fusions = append(fusions, Fusion{Name: fused.Name(), Steps: names})
	}
}

// fusible reports whether the node can participate in a fused chain.
func fusible(g *exec.Graph, id exec.NodeID) bool {
	o := g.OperatorAt(id)
	if o == nil {
		return false
	}
	if _, stateful := o.(snapshot.Stater); stateful {
		return false
	}
	switch o := o.(type) {
	case *op.Select:
	case *op.Project:
		if o.Init() != nil {
			return false // misconfigured; leave for prepare/Open to report
		}
	case *op.Map:
		if o.Init() != nil {
			return false
		}
	default:
		return false
	}
	return len(o.InSchemas()) == 1 && g.NumOutputsAt(id) == 1
}

// findChain returns the first maximal fusible chain of length ≥ 2 in node
// order, or nil when none remains. One chain per call: ReplaceChain
// renumbers nodes, so the caller re-scans after each rewrite.
func findChain(g *exec.Graph) []exec.NodeID {
	n := g.NumNodes()
	consumers := make(map[exec.Port][]exec.NodeID)
	for id := 0; id < n; id++ {
		for _, p := range g.InputsOf(exec.NodeID(id)) {
			consumers[p] = append(consumers[p], exec.NodeID(id))
		}
	}
	for id := 0; id < n; id++ {
		head := exec.NodeID(id)
		if !fusible(g, head) {
			continue
		}
		// Only start at chain heads: skip nodes whose upstream would extend
		// the chain backwards (they are covered by the walk from that head).
		up := g.InputsOf(head)[0]
		if up.Out == 0 && fusible(g, up.Node) && len(consumers[up]) == 1 {
			continue
		}
		chain := []exec.NodeID{head}
		cur := head
		for {
			down := consumers[exec.Port{Node: cur}]
			if len(down) != 1 {
				break // unconsumed (mid-construction) or multi-consumer edge
			}
			next := down[0]
			if !fusible(g, next) {
				break
			}
			if in := g.InputsOf(next); len(in) != 1 || in[0] != (exec.Port{Node: cur}) {
				break
			}
			chain = append(chain, next)
			cur = next
		}
		if len(chain) >= 2 {
			return chain
		}
	}
	return nil
}
