package fuse

import (
	"repro/internal/exec"
	"repro/internal/op"
	"repro/internal/snapshot"
)

// Fusion records one applied rewrite: the fused node's name and the
// constituent operator names in chain order. Stage-2 rewrites (prefix
// kernels absorbed into a stateful consumer) additionally name the consumer;
// stage-1 standalone kernels leave it empty.
type Fusion struct {
	Name     string
	Steps    []string
	Consumer string
}

// Rewrite runs the fusion pass over an assembled, not-yet-run graph: it
// finds maximal chains of adjacent fusible operators and replaces each with
// a single Fused node. Chain boundaries — where fusion must stop — are:
//
//   - sources and any operator that is not Select/Project/Map (Split, Merge,
//     Aggregate, Join, remote sinks, collectors, …);
//   - any snapshot.Stater (stateful operators checkpoint per node, so their
//     node identity must survive compilation);
//   - nodes that are not 1-in/1-out (fan-in and fan-out);
//   - multi-consumer edges (only possible mid-construction; a prepared graph
//     fans out through explicit Duplicate operators, which are not fusible).
//
// Chains of length 1 are left alone by stage 1; stage 2 (below) then absorbs
// any stateless prefix — a stage-1 kernel or a lone Select/Project/Map —
// feeding a stateful consumer (Aggregate, Join, Impute, Pace) or an exchange
// Split into that consumer's input port as a prefix kernel (Prefixed), so
// the prefix evaluates inside the consumer's page loop and survivors take
// the batched stateful apply path. Returns the applied fusions in the order
// performed.
func Rewrite(g *exec.Graph) ([]Fusion, error) {
	var fusions []Fusion
	for {
		chain := findChain(g)
		if chain == nil {
			break
		}
		ops := make([]exec.Operator, len(chain))
		names := make([]string, len(chain))
		for i, id := range chain {
			ops[i] = g.OperatorAt(id)
			names[i] = ops[i].Name()
		}
		fused, err := New(ops)
		if err != nil {
			return fusions, err
		}
		if err := g.ReplaceChain(chain, fused); err != nil {
			return fusions, err
		}
		fusions = append(fusions, Fusion{Name: fused.Name(), Steps: names})
	}
	for {
		fusion, absorbed, err := absorbOne(g)
		if err != nil {
			return fusions, err
		}
		if !absorbed {
			break
		}
		fusions = append(fusions, fusion)
	}
	return fusions, nil
}

// absorbTarget reports whether the operator is a stateful consumer (or
// exchange Split) whose input ports may gain prefix kernels. Merge stays
// out: it is the plan's punctuation-alignment point and consumes per-input
// watermarks the kernel must not get between. A Prefixed is itself a
// snapshot.Stater, so absorbed consumers are never re-targeted.
func absorbTarget(o exec.Operator) bool {
	switch o.(type) {
	case *op.Aggregate, *op.Join, *op.Impute, *op.Pace, *op.Split:
		return true
	}
	return false
}

// absorbOne performs the first available stage-2 absorb and reports it. One
// rewrite per call: AbsorbChains renumbers nodes, so the caller re-scans.
// After stage 1 the stateless prefix on any edge is at most one node — a
// Fused kernel (chain length ≥ 2 collapsed) or a lone Select/Project/Map —
// so each chain handed to exec.AbsorbChains has exactly one node.
func absorbOne(g *exec.Graph) (Fusion, bool, error) {
	n := g.NumNodes()
	consumers := make(map[exec.Port]int)
	for id := 0; id < n; id++ {
		for _, p := range g.InputsOf(exec.NodeID(id)) {
			consumers[p]++
		}
	}
	for id := 0; id < n; id++ {
		target := exec.NodeID(id)
		inner := g.OperatorAt(target)
		if inner == nil || !absorbTarget(inner) {
			continue
		}
		ins := g.InputsOf(target)
		chains := make(map[int][]exec.NodeID)
		kernels := make([]*Fused, len(ins))
		var steps []string
		for i, up := range ins {
			if up.Out != 0 || g.IsSource(up.Node) || g.NumOutputsAt(up.Node) != 1 {
				continue
			}
			if consumers[exec.Port{Node: up.Node}] != 1 {
				continue // multi-consumer edge: the prefix output is shared
			}
			upop := g.OperatorAt(up.Node)
			if len(upop.InSchemas()) != 1 {
				continue
			}
			var kernel *Fused
			switch upop := upop.(type) {
			case *Fused:
				kernel = upop
			default:
				if !fusible(g, up.Node) {
					continue
				}
				k, err := New([]exec.Operator{upop})
				if err != nil {
					return Fusion{}, false, err
				}
				kernel = k
			}
			chains[i] = []exec.NodeID{up.Node}
			kernels[i] = kernel
			for s := range kernel.steps {
				steps = append(steps, kernel.steps[s].name)
			}
		}
		if len(chains) == 0 {
			continue
		}
		prefixed, err := NewPrefixed(inner, kernels)
		if err != nil {
			return Fusion{}, false, err
		}
		if err := g.AbsorbChains(target, chains, prefixed); err != nil {
			return Fusion{}, false, err
		}
		return Fusion{Name: prefixed.Name(), Steps: steps, Consumer: inner.Name()}, true, nil
	}
	return Fusion{}, false, nil
}

// fusible reports whether the node can participate in a fused chain.
func fusible(g *exec.Graph, id exec.NodeID) bool {
	o := g.OperatorAt(id)
	if o == nil {
		return false
	}
	if _, stateful := o.(snapshot.Stater); stateful {
		return false
	}
	switch o := o.(type) {
	case *op.Select:
	case *op.Project:
		if o.Init() != nil {
			return false // misconfigured; leave for prepare/Open to report
		}
	case *op.Map:
		if o.Init() != nil {
			return false
		}
	default:
		return false
	}
	return len(o.InSchemas()) == 1 && g.NumOutputsAt(id) == 1
}

// findChain returns the first maximal fusible chain of length ≥ 2 in node
// order, or nil when none remains. One chain per call: ReplaceChain
// renumbers nodes, so the caller re-scans after each rewrite.
func findChain(g *exec.Graph) []exec.NodeID {
	n := g.NumNodes()
	consumers := make(map[exec.Port][]exec.NodeID)
	for id := 0; id < n; id++ {
		for _, p := range g.InputsOf(exec.NodeID(id)) {
			consumers[p] = append(consumers[p], exec.NodeID(id))
		}
	}
	for id := 0; id < n; id++ {
		head := exec.NodeID(id)
		if !fusible(g, head) {
			continue
		}
		// Only start at chain heads: skip nodes whose upstream would extend
		// the chain backwards (they are covered by the walk from that head).
		up := g.InputsOf(head)[0]
		if up.Out == 0 && fusible(g, up.Node) && len(consumers[up]) == 1 {
			continue
		}
		chain := []exec.NodeID{head}
		cur := head
		for {
			down := consumers[exec.Port{Node: cur}]
			if len(down) != 1 {
				break // unconsumed (mid-construction) or multi-consumer edge
			}
			next := down[0]
			if !fusible(g, next) {
				break
			}
			if in := g.InputsOf(next); len(in) != 1 || in[0] != (exec.Port{Node: cur}) {
				break
			}
			chain = append(chain, next)
			cur = next
		}
		if len(chain) >= 2 {
			return chain
		}
	}
	return nil
}
