package op

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/window"
	"repro/internal/work"
)

// Aggregate is the windowed, grouped aggregate (COUNT/SUM/AVG/MAX/MIN) in
// the WID/OOP style: tuples are assigned to window extents by id, partial
// aggregates accumulate per (window, group), and embedded punctuation on
// the windowing attribute triggers result production and state purge.
//
// Its feedback behaviour implements Table 1 (generalized across aggregate
// kinds by monotonicity — §3.5's COUNT/SUM/MAX discussion):
//
//   - group-bound assumed feedback → purge matching groups, guard input,
//     optionally propagate in input-schema terms;
//   - value-bound upward-closed feedback on monotone-up aggregates →
//     close/purge matching windows and pin them shut;
//   - other value-bound feedback → output guard only;
//   - demanded feedback → emit partial results for the subset immediately;
//   - window-bound feedback (on wstart) → translated to an input-timestamp
//     guard via the window spec (Example 2's "skip windows w3, w4", which a
//     bottom-of-plan filter cannot express).
type Aggregate struct {
	exec.Base
	OpName string
	In     stream.Schema
	Kind   core.AggKind
	// TsAttr is the windowing attribute (KindTime or KindInt domain).
	TsAttr int
	// ValAttr is the aggregated attribute; ignored for COUNT (may be -1).
	ValAttr int
	// GroupBy lists grouping attribute indices (possibly empty).
	GroupBy []int
	// Window is the extent specification.
	Window window.Spec
	// ValueName names the output aggregate attribute (default "value").
	ValueName string
	// Cost is the work burned per tuple folded into state (aggregation
	// expense; the Figure 7 F2 scheme saves it). EmitCost is the work
	// burned per result tuple produced (result production and delivery
	// expense; F1 saves it).
	Cost, EmitCost int
	// NonNegative declares that aggregated input values are known
	// non-negative, which upgrades SUM to a monotone-up aggregate for
	// value-bound feedback (core.AggCharacterizationGiven).
	NonNegative bool
	// Mode/Propagate configure feedback as in Select.
	Mode      FeedbackMode
	Propagate bool
	// MaxChangelog caps the incremental-snapshot changelog (dirty + dead
	// keys). Tracking starts at the first capture and records every
	// mutation thereafter; if checkpointing then stops — coordinator gone,
	// persistent storage failures — the changelog would grow without bound.
	// Crossing the cap collapses it and makes the next capture full (which
	// re-enables tracking). 0 means the scaled default,
	// max(DefaultMaxChangelog, live state size); an explicit positive value
	// is an absolute limit; negative disables the cap.
	MaxChangelog int

	responseLog
	out          stream.Schema
	groupOutIdx  []int // positions of group attrs in output schema
	wstartIdx    int   // position of wstart in output schema
	valueIdx     int   // position of the aggregate value in output schema
	attrMap      core.AttrMap
	state        map[string]*aggGroup //pace:tracked
	guardsOut    *core.GuardTable     // emit-time guards (output patterns)
	guardsPrefix *core.GuardTable     // input-time guards (non-value patterns)
	meter        work.Meter
	// scratch backs probe-only tuples (prefixTuple): guards do not retain
	// what they match against, so the buffer is reused across probes.
	scratch []stream.Value
	// groupScratch backs the per-tuple group-value projection until a new
	// state entry actually needs to own it.
	groupScratch []stream.Value
	// keyScratch backs the per-tuple state-key encoding; the map is probed
	// with string(keyScratch) so the key string is materialized only when
	// a new entry is inserted.
	keyScratch []byte
	// lastKey backs the batch path's consecutive-key cache (ApplyTupleBatch);
	// batchScratch backs ProcessTupleBatch's item unwrapping. Both reused,
	// transient, never checkpointed.
	lastKey      []byte
	batchScratch []stream.Tuple

	// Changelog for incremental snapshots (state.go): keys mutated or
	// deleted since the previous capture. nil until the first capture
	// enables tracking, so plans that never checkpoint pay nothing.
	chlogDirty map[string]bool
	chlogDead  map[string]bool

	inTuples, outTuples, folded, inSuppressed, outSuppressed, purged int64
	partialsEmitted                                                  int64

	// Feedback accounting only; the tuple counters above stay plain
	// because state.go serializes them into snapshots (the snapshot runs
	// on the node's own goroutine, so plain fields are race-free there,
	// but /metrics scrapes from another goroutine and may only touch
	// atomics). fb is never snapshotted and resets on restore.
	fb fbCounters
}

type aggGroup struct {
	wid       int64
	groupVals []stream.Value
	count     int64
	sum       float64
	min, max  float64
}

// Name implements exec.Operator.
func (a *Aggregate) Name() string {
	if a.OpName != "" {
		return a.OpName
	}
	return strings.ToLower(a.Kind.String())
}

// InSchemas implements exec.Operator.
func (a *Aggregate) InSchemas() []stream.Schema { return []stream.Schema{a.In} }

// OutSchemas implements exec.Operator.
func (a *Aggregate) OutSchemas() []stream.Schema {
	if a.out.Arity() == 0 {
		a.mustInit()
	}
	return []stream.Schema{a.out}
}

func (a *Aggregate) mustInit() {
	if err := a.Window.Validate(); err != nil {
		panic(fmt.Sprintf("op: aggregate %q: %v", a.Name(), err))
	}
	name := a.ValueName
	if name == "" {
		name = "value"
	}
	fields := make([]stream.Field, 0, len(a.GroupBy)+2)
	a.groupOutIdx = a.groupOutIdx[:0]
	for i, g := range a.GroupBy {
		fields = append(fields, a.In.Field(g))
		a.groupOutIdx = append(a.groupOutIdx, i)
	}
	a.wstartIdx = len(fields)
	fields = append(fields, stream.F("wstart", a.In.Field(a.TsAttr).Kind))
	a.valueIdx = len(fields)
	fields = append(fields, stream.F(name, stream.KindFloat))
	out, err := stream.NewSchema(fields...)
	if err != nil {
		panic(fmt.Sprintf("op: aggregate %q: %v", a.Name(), err))
	}
	a.out = out
	// Output→input attribute mapping: groups are carried; wstart and the
	// aggregate value are computed.
	toInput := make([]int, out.Arity())
	for i := range toInput {
		toInput[i] = -1
	}
	for i, g := range a.GroupBy {
		toInput[i] = g
	}
	a.attrMap = core.AttrMap{InputArity: a.In.Arity(), ToInput: toInput}
}

// Open implements exec.Operator.
func (a *Aggregate) Open(exec.Context) error {
	if a.out.Arity() == 0 {
		a.mustInit()
	}
	a.state = map[string]*aggGroup{}
	a.guardsOut = core.NewGuardTable(a.out.Arity())
	a.guardsPrefix = core.NewGuardTable(a.out.Arity())
	a.chlogDirty, a.chlogDead = nil, nil
	return nil
}

// noteDirty records a state-key mutation in the changelog. The lookup form
// keeps the hot path allocation-free: string(k) only materializes on the
// first mutation of a key per capture interval.
func (a *Aggregate) noteDirty(k []byte) {
	if a.chlogDirty == nil {
		return
	}
	if !a.chlogDirty[string(k)] {
		a.chlogDirty[string(k)] = true
	}
	if len(a.chlogDead) > 0 {
		delete(a.chlogDead, string(k))
	}
	a.capChangelog()
}

// noteDead records a state-key deletion in the changelog.
func (a *Aggregate) noteDead(k string) {
	if a.chlogDirty == nil {
		return
	}
	delete(a.chlogDirty, k)
	a.chlogDead[k] = true
	a.capChangelog()
}

// capChangelog bounds changelog memory when checkpointing has stopped:
// past the cap the changelog is collapsed — tracking turns off, so
// CaptureState answers the next delta request with a full capture, exactly
// as if no capture had ever happened, and re-enables tracking at that cut.
// The default cap scales with the live state: a changelog larger than the
// state itself means a delta has no advantage over a full capture (the
// dead-key-accumulation failure mode), while a fixed constant would
// collapse perfectly healthy intervals on high-cardinality plans.
func (a *Aggregate) capChangelog() {
	limit := a.MaxChangelog
	if limit < 0 {
		return
	}
	if limit == 0 {
		limit = DefaultMaxChangelog
		if n := len(a.state); n > limit {
			limit = n
		}
	}
	if len(a.chlogDirty)+len(a.chlogDead) > limit {
		a.chlogDirty, a.chlogDead = nil, nil
	}
}

func (a *Aggregate) appendStateKey(b []byte, wid int64, t stream.Tuple) []byte {
	b = strconv.AppendInt(b, wid, 10)
	b = append(b, ';')
	return t.AppendKey(b, a.GroupBy)
}

// prefixTuple builds the output-schema tuple for a (window, group) with the
// aggregate value left Null; group-bound and window-bound guards can be
// evaluated against it before any aggregation work is done.
//
// The returned tuple aliases the operator's scratch buffer: it is valid
// only until the next prefixTuple call and must never be emitted or
// retained (guard probes satisfy both).
func (a *Aggregate) prefixTuple(wid int64, groupVals []stream.Value) stream.Tuple {
	if cap(a.scratch) < a.out.Arity() {
		a.scratch = make([]stream.Value, a.out.Arity())
	}
	vals := a.scratch[:a.out.Arity()]
	copy(vals, groupVals)
	vals[a.wstartIdx] = a.wstartValue(wid)
	vals[a.valueIdx] = stream.Null
	return stream.NewTuple(vals...)
}

func (a *Aggregate) wstartValue(wid int64) stream.Value {
	start, _ := a.Window.Extent(wid)
	if a.In.Field(a.TsAttr).Kind == stream.KindTime {
		return stream.TimeMicros(start)
	}
	return stream.Int(start)
}

// errUnexpectedInput keeps the formatting allocation out of the annotated
// hot paths; it is only reached on a miswired plan.
func (a *Aggregate) errUnexpectedInput(input int) error {
	return fmt.Errorf("op: aggregate %q: tuple on unexpected input %d (single-input operator; check plan wiring)", a.Name(), input)
}

// ProcessTuple implements exec.Operator.
//
//pace:hotpath
func (a *Aggregate) ProcessTuple(input int, t stream.Tuple, _ exec.Context) error {
	if input != 0 {
		return a.errUnexpectedInput(input)
	}
	a.inTuples++
	lo, hi := a.Window.WindowsOf(t.At(a.TsAttr).I)
	// The projection lives in a reused scratch buffer; it is copied into an
	// owned slice only when a new state entry must retain it.
	groupVals := a.groupScratch[:0]
	for _, g := range a.GroupBy {
		groupVals = append(groupVals, t.At(g))
	}
	a.groupScratch = groupVals
	for wid := lo; wid <= hi; wid++ {
		if a.Mode == FeedbackExploit && a.guardsPrefix.Suppress(a.prefixTuple(wid, groupVals)) {
			a.inSuppressed++
			continue
		}
		if a.Cost > 0 {
			a.meter.Do(a.Cost)
		}
		a.folded++
		a.keyScratch = a.appendStateKey(a.keyScratch[:0], wid, t)
		g := a.state[string(a.keyScratch)]
		if g == nil {
			owned := append([]stream.Value(nil), groupVals...) //pace:allow-alloc first sighting of a (window, group): the state entry owns its key values
			g = &aggGroup{wid: wid, groupVals: owned, min: math.Inf(1), max: math.Inf(-1)}
			a.state[string(a.keyScratch)] = g
		}
		g.count++
		if a.ValAttr >= 0 {
			v := t.At(a.ValAttr)
			if !v.IsNull() {
				f := v.AsFloat()
				g.sum += f
				if f < g.min {
					g.min = f
				}
				if f > g.max {
					g.max = f
				}
			}
		}
		a.noteDirty(a.keyScratch)
	}
	return nil
}

// ApplyTupleBatch implements exec.TupleBatchApplier: a run of tuples —
// typically the survivors of a fused prefix kernel — folds into state as one
// tight loop. Exactly equivalent to calling ProcessTuple on each tuple in
// order, with the per-batch invariants exploited: the guard probe is hoisted
// (feedback only arrives between batches, so the prefix guard table cannot
// change mid-run), and consecutive tuples hitting the same (window, group)
// key skip the hash probe and coalesce to one changelog dirty note (legal
// because nothing purges state mid-batch and dirty notes are idempotent —
// DESIGN.md §10.6).
//
//pace:hotpath
func (a *Aggregate) ApplyTupleBatch(input int, ts []stream.Tuple, _ exec.Context) error {
	if input != 0 {
		return a.errUnexpectedInput(input)
	}
	a.inTuples += int64(len(ts))
	exploit := a.Mode == FeedbackExploit && a.guardsPrefix.Active() > 0
	var lastG *aggGroup
	lastKey := a.lastKey[:0]
	for i := range ts {
		t := ts[i]
		lo, hi := a.Window.WindowsOf(t.At(a.TsAttr).I)
		groupVals := a.groupScratch[:0]
		for _, g := range a.GroupBy {
			groupVals = append(groupVals, t.At(g))
		}
		a.groupScratch = groupVals
		for wid := lo; wid <= hi; wid++ {
			if exploit && a.guardsPrefix.Suppress(a.prefixTuple(wid, groupVals)) {
				a.inSuppressed++
				continue
			}
			if a.Cost > 0 {
				a.meter.Do(a.Cost)
			}
			a.folded++
			a.keyScratch = a.appendStateKey(a.keyScratch[:0], wid, t)
			g := lastG
			if g == nil || !bytes.Equal(a.keyScratch, lastKey) {
				g = a.state[string(a.keyScratch)]
				if g == nil {
					owned := append([]stream.Value(nil), groupVals...) //pace:allow-alloc first sighting of a (window, group): the state entry owns its key values
					g = &aggGroup{wid: wid, groupVals: owned, min: math.Inf(1), max: math.Inf(-1)}
					a.state[string(a.keyScratch)] = g
				}
				a.noteDirty(a.keyScratch)
				lastG = g
				lastKey = append(lastKey[:0], a.keyScratch...)
			}
			g.count++
			if a.ValAttr >= 0 {
				v := t.At(a.ValAttr)
				if !v.IsNull() {
					f := v.AsFloat()
					g.sum += f
					if f < g.min {
						g.min = f
					}
					if f > g.max {
						g.max = f
					}
				}
			}
		}
	}
	a.lastKey = lastKey
	return nil
}

// ProcessTupleBatch implements exec.TupleBatcher by unwrapping the run into
// a reused scratch buffer and folding it through ApplyTupleBatch, so unfused
// plans take the batched fold too.
func (a *Aggregate) ProcessTupleBatch(input int, items []queue.Item, ctx exec.Context) error {
	buf := a.batchScratch[:0]
	for i := range items {
		buf = append(buf, items[i].Tuple)
	}
	a.batchScratch = buf
	return a.ApplyTupleBatch(input, buf, ctx)
}

func (a *Aggregate) value(g *aggGroup) float64 {
	switch a.Kind {
	case core.AggCount:
		return float64(g.count)
	case core.AggSum:
		return g.sum
	case core.AggAvg:
		if g.count == 0 {
			return 0
		}
		return g.sum / float64(g.count)
	case core.AggMax:
		return g.max
	case core.AggMin:
		return g.min
	}
	return 0
}

func (a *Aggregate) resultTuple(g *aggGroup) stream.Tuple {
	vals := make([]stream.Value, a.out.Arity())
	copy(vals, g.groupVals)
	vals[a.wstartIdx] = a.wstartValue(g.wid)
	vals[a.valueIdx] = stream.Float(a.value(g))
	return stream.NewTuple(vals...)
}

func (a *Aggregate) emitResult(g *aggGroup, ctx exec.Context) {
	t := a.resultTuple(g)
	if a.Mode != FeedbackIgnore && a.guardsOut.Suppress(t) {
		a.outSuppressed++
		return
	}
	if a.EmitCost > 0 {
		a.meter.Do(a.EmitCost)
	}
	a.outTuples++
	ctx.Emit(t)
}

// ProcessPunct implements exec.Operator: punctuation on the windowing
// attribute closes complete windows, emits their results, purges state, and
// re-punctuates the output on wstart (delimiting it for downstream
// feedback, §4.4).
func (a *Aggregate) ProcessPunct(input int, e punct.Embedded, ctx exec.Context) error {
	if input != 0 {
		return fmt.Errorf("op: aggregate %q: punctuation on unexpected input %d (single-input operator; check plan wiring)", a.Name(), input)
	}
	bound := e.Pattern.Bound()
	if len(bound) != 1 || bound[0] != a.TsAttr {
		return nil
	}
	pr := e.Pattern.Pred(a.TsAttr)
	var wm int64
	switch pr.Op {
	case punct.LE:
		wm = pr.Val.I
	case punct.LT:
		wm = pr.Val.I - 1
	default:
		return nil
	}
	lastFull := a.Window.LastFullWindow(wm)
	if lastFull < 0 {
		return nil
	}
	a.flushThrough(lastFull, ctx)
	start, _ := a.Window.Extent(lastFull)
	outPunct := punct.NewEmbedded(punct.OnAttr(a.out.Arity(), a.wstartIdx, punct.Le(a.wstartTsValue(start))))
	a.guardsOut.ObservePunct(outPunct)
	a.guardsPrefix.ObservePunct(outPunct)
	ctx.EmitPunct(outPunct)
	return nil
}

func (a *Aggregate) wstartTsValue(start int64) stream.Value {
	if a.In.Field(a.TsAttr).Kind == stream.KindTime {
		return stream.TimeMicros(start)
	}
	return stream.Int(start)
}

// flushThrough emits and purges every state entry with wid ≤ lastFull, in
// deterministic (wid, group) order.
func (a *Aggregate) flushThrough(lastFull int64, ctx exec.Context) {
	var due []string
	for k, g := range a.state {
		if g.wid <= lastFull {
			due = append(due, k)
		}
	}
	sort.Strings(due)
	sort.SliceStable(due, func(i, j int) bool { return a.state[due[i]].wid < a.state[due[j]].wid })
	for _, k := range due {
		a.emitResult(a.state[k], ctx)
		delete(a.state, k)
		a.noteDead(k)
	}
}

// ProcessEOS implements exec.Operator.
func (a *Aggregate) ProcessEOS(input int, ctx exec.Context) error {
	if input != 0 {
		return fmt.Errorf("op: aggregate %q: EOS on unexpected input %d (single-input operator; check plan wiring)", a.Name(), input)
	}
	a.flushThrough(math.MaxInt64, ctx)
	return nil
}

// ProcessFeedback implements exec.Operator per Table 1.
func (a *Aggregate) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	a.fb.received.Add(1)
	resp := core.Response{Feedback: f}
	defer func() {
		if len(resp.Actions) == 0 {
			resp.Actions = []core.Action{core.ActNone}
		}
		a.logResponse(resp)
	}()
	switch f.Intent {
	case core.Desired:
		// An aggregate cannot reorder its own production usefully;
		// relay to the antecedent if the pattern survives the mapping.
		if a.Propagate {
			if prop := core.SafePropagation(f.Pattern, a.attrMap); prop.OK {
				relayed := f.Relayed(prop.Pattern)
				ctx.SendFeedback(0, relayed)
				a.fb.forwarded.Add(1)
				resp.Actions = append(resp.Actions, core.ActPropagate)
				resp.Propagated = []*core.Feedback{&relayed}
			}
		}
		return nil
	case core.Demanded:
		// Unblock: emit partial results for matching open windows now
		// (§3.4's financial-speculator example — a partial answer soon
		// beats a full answer too late). State is retained; the final
		// result still appears when the window closes.
		var due []string
		for k, g := range a.state {
			if f.Pattern.Matches(a.resultTuple(g)) {
				due = append(due, k)
			}
		}
		sort.Strings(due)
		for _, k := range due {
			a.partialsEmitted++
			ctx.Emit(a.resultTuple(a.state[k]))
		}
		resp.Actions = append(resp.Actions, core.ActUnblock)
		return nil
	}
	// Assumed feedback: classify against the output partition and apply
	// the Table 1 plan, limited by Mode.
	if a.Mode == FeedbackIgnore {
		return nil
	}
	shape := core.ClassifyAggPattern(f.Pattern, a.groupOutIdx, a.valueIdx)
	plan := core.AggCharacterizationGiven(a.Kind, shape, f.Pattern, a.attrMap, a.NonNegative)
	resp.Note = plan.Explanation

	// Output guard is correct for every shape and both modes.
	a.guardsOut.Install(f)
	a.fb.exploited.Add(1)
	resp.Actions = append(resp.Actions, core.ActGuardOutput)
	if a.Mode == FeedbackGuardOutput {
		return nil
	}

	// Install guards before purging: the value-shape input guard is
	// derived from the matching state entries, which the purge removes.
	var wantPurge bool
	for _, act := range plan.Actions {
		switch act {
		case core.ActPurgeState, core.ActCloseWindows:
			if !wantPurge {
				resp.Actions = append(resp.Actions, act)
			}
			wantPurge = true
		case core.ActGuardInput:
			a.installInputGuard(f, shape)
			resp.Actions = append(resp.Actions, core.ActGuardInput)
		}
	}
	if wantPurge {
		a.purgeMatching(f.Pattern, shape)
	}
	if a.Propagate {
		a.propagate(f, plan, &resp, ctx)
	}
	return nil
}

// purgeMatching removes state entries covered by the feedback. For
// group/window-bound shapes the prefix (ignoring the value) decides; for
// value-bound shapes on monotone aggregates the current partial decides
// (it can only move further into the subset).
func (a *Aggregate) purgeMatching(p punct.Pattern, shape core.AggShape) {
	for k, g := range a.state {
		var hit bool
		switch shape {
		case core.AggShapeGroup:
			hit = p.Matches(a.prefixTuple(g.wid, g.groupVals))
		case core.AggShapeValueUp, core.AggShapeValueDown:
			hit = p.Matches(a.resultTuple(g))
		default:
			continue
		}
		if hit {
			a.purged++
			delete(a.state, k)
			a.noteDead(k)
		}
	}
}

// installInputGuard pins the suppressed subset shut so arriving tuples
// cannot recreate purged groups (the paper's MAX example: a tuple with
// value 40 would otherwise re-open a window whose true max is ≥50).
func (a *Aggregate) installInputGuard(f core.Feedback, shape core.AggShape) {
	switch shape {
	case core.AggShapeGroup:
		a.guardsPrefix.Install(f)
	case core.AggShapeValueUp, core.AggShapeValueDown:
		// Guard the specific (window, group) pairs that were purged:
		// equality patterns on the prefix.
		for _, g := range a.snapshotMatching(f.Pattern) {
			pat := punct.AllWild(a.out.Arity())
			for i := range a.groupOutIdx {
				pat = pat.With(a.groupOutIdx[i], punct.Eq(g.groupVals[i]))
			}
			pat = pat.With(a.wstartIdx, punct.Eq(a.wstartValue(g.wid)))
			a.guardsPrefix.Install(core.Feedback{Intent: core.Assumed, Pattern: pat, Origin: f.Origin, Seq: f.Seq})
		}
	}
}

// snapshotMatching returns state entries whose current result matches p.
// It must run before purgeMatching removes those entries.
func (a *Aggregate) snapshotMatching(p punct.Pattern) []*aggGroup {
	var out []*aggGroup
	for _, g := range a.state {
		if p.Matches(a.resultTuple(g)) {
			out = append(out, g)
		}
	}
	return out
}

// propagate relays feedback upstream: group-bound patterns go through the
// attribute mapping; window-bound patterns are translated to an input
// timestamp bound via the window spec.
func (a *Aggregate) propagate(f core.Feedback, plan core.ResponsePlan, resp *core.Response, ctx exec.Context) {
	if len(plan.Propagate) > 0 && plan.Propagate[0] != nil {
		relayed := f.Relayed(*plan.Propagate[0])
		ctx.SendFeedback(0, relayed)
		a.fb.forwarded.Add(1)
		resp.Actions = append(resp.Actions, core.ActPropagate)
		resp.Propagated = []*core.Feedback{&relayed}
		return
	}
	// Window translation: ¬[…, wstart≤X, …] with everything else group
	// bound or wild → suppress input tuples whose *every* window start is
	// ≤ X, i.e. ts < ceilSlide(X).
	if pat, ok := a.translateWindowBound(f.Pattern); ok {
		relayed := f.Relayed(pat)
		ctx.SendFeedback(0, relayed)
		a.fb.forwarded.Add(1)
		resp.Actions = append(resp.Actions, core.ActPropagate)
		resp.Propagated = []*core.Feedback{&relayed}
	}
}

// translateWindowBound maps an output pattern binding wstart (with ≤, <,
// or a closed range) and otherwise only carried group attributes into an
// input pattern: group predicates map through, and the wstart bound becomes
// a timestamp bound such that a tuple is suppressed only if EVERY window
// containing it is in the suppressed set (required for sliding windows;
// exact for tumbling).
func (a *Aggregate) translateWindowBound(p punct.Pattern) (punct.Pattern, bool) {
	// Everything bound besides wstart must be a carried group attribute.
	for _, b := range p.Bound() {
		if b == a.wstartIdx {
			continue
		}
		if a.attrMap.ToInput[b] < 0 {
			return punct.Pattern{}, false
		}
	}
	pr := p.Pred(a.wstartIdx)
	out := a.attrMap.InputPattern(p.With(a.wstartIdx, punct.Wild))
	switch pr.Op {
	case punct.LE, punct.LT:
		x := pr.Val.I
		if pr.Op == punct.LT {
			x--
		}
		// A tuple's max window start is origin + floor((ts-origin)/slide)*slide;
		// requiring it ≤ x ⟺ ts < origin + (floor((x-origin)/slide)+1)*slide.
		cutoff := a.Window.Origin + (floorDiv(x-a.Window.Origin, a.Window.Slide)+1)*a.Window.Slide
		return out.With(a.TsAttr, punct.Lt(a.wstartTsValue(cutoff))), true
	case punct.Between:
		lo, hi := pr.Val.I, pr.Hi.I
		// Tuples whose windows ALL start within [lo, hi]: min window
		// start ≥ lo (⟺ ts ≥ lo + Range - Slide ... conservatively
		// ts ≥ loAligned) and max window start ≤ hi (as above).
		// For the min start: a tuple at ts has min start
		// origin + (floor((ts-origin-Range)/slide)+1)*slide ≥ lo
		// ⟺ ts ≥ lo + Range - slide + 1 ... we take the conservative
		// inclusive bound loTs = lo + Range - Slide; for tumbling
		// windows this is exactly lo.
		loTs := lo + a.Window.Range - a.Window.Slide
		hiCut := a.Window.Origin + (floorDiv(hi-a.Window.Origin, a.Window.Slide)+1)*a.Window.Slide
		if hiCut-1 < loTs {
			return punct.Pattern{}, false
		}
		return out.With(a.TsAttr, punct.Range(a.wstartTsValue(loTs), a.wstartTsValue(hiCut-1))), true
	case punct.EQ:
		// Single window: same as Between [v, v].
		return a.translateWindowBound(p.With(a.wstartIdx, punct.Range(pr.Val, pr.Val)))
	}
	return punct.Pattern{}, false
}

func floorDiv(x, y int64) int64 {
	q := x / y
	if (x%y != 0) && ((x < 0) != (y < 0)) {
		q--
	}
	return q
}

// Stats reports tuple accounting for the experiments.
func (a *Aggregate) Stats() AggregateStats {
	return AggregateStats{
		In:            a.inTuples,
		Out:           a.outTuples,
		Folded:        a.folded,
		InSuppressed:  a.inSuppressed,
		OutSuppressed: a.outSuppressed,
		Purged:        a.purged,
		Partials:      a.partialsEmitted,
		OpenGroups:    len(a.state),
		WorkUnits:     a.meter.Total(),
	}
}

// TelemetryVars implements telemetry.VarExporter. Only the feedback
// counters are exported: the tuple counters are serialized snapshot state
// and may not be read off the node goroutine (see the field comment).
func (a *Aggregate) TelemetryVars() []telemetry.Var { return a.fb.vars() }

// AggregateStats is the operator's accounting snapshot.
type AggregateStats struct {
	In, Out, Folded             int64
	InSuppressed, OutSuppressed int64
	Purged, Partials            int64
	OpenGroups                  int
	WorkUnits                   int64
}
