package op

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
	"repro/internal/window"
)

// minuteAvg builds the paper's AVERAGE: per-segment one-minute speed
// averages over the traffic schema.
func minuteAvg(mode FeedbackMode, propagate bool) *Aggregate {
	return &Aggregate{
		OpName: "average", In: trafficSchema, Kind: core.AggAvg,
		TsAttr: 2, ValAttr: 3, GroupBy: []int{0},
		Window: window.Tumbling(60_000_000), ValueName: "avg_speed",
		Mode: mode, Propagate: propagate,
	}
}

const minute = int64(60_000_000)

func TestAggregateSchemaShape(t *testing.T) {
	a := minuteAvg(FeedbackIgnore, false)
	out := a.OutSchemas()[0]
	if out.Arity() != 3 || out.Index("segment") != 0 || out.Index("wstart") != 1 || out.Index("avg_speed") != 2 {
		t.Fatalf("output schema: %s", out)
	}
}

func TestAggregateWindowsClosedByPunctuation(t *testing.T) {
	a := minuteAvg(FeedbackIgnore, false)
	h := exec.NewHarness(a)
	h.Tuples(
		traffic(1, 1, 10*1_000_000, 40),
		traffic(1, 2, 20*1_000_000, 60),
		traffic(2, 1, 30*1_000_000, 30),
		traffic(1, 1, 70*1_000_000, 55), // next window
	)
	if len(h.OutTuples(0)) != 0 {
		t.Fatal("nothing may be emitted before punctuation")
	}
	h.Punct(0, tsPunct(minute-1))
	got := h.OutTuples(0)
	if len(got) != 2 {
		t.Fatalf("window 0 results: %v", got)
	}
	// Deterministic order: segment 1 then 2 (sorted keys).
	if got[0].At(0).AsInt() != 1 || got[0].At(2).AsFloat() != 50 {
		t.Errorf("segment 1 avg: %v", got[0])
	}
	if got[1].At(0).AsInt() != 2 || got[1].At(2).AsFloat() != 30 {
		t.Errorf("segment 2 avg: %v", got[1])
	}
	// Output punctuation delimits wstart.
	ps := h.OutPuncts(0)
	if len(ps) != 1 || ps[0].Pattern.Bound()[0] != 1 {
		t.Fatalf("output punctuation: %v", ps)
	}
	// State purged: window 1 is still open.
	if a.Stats().OpenGroups != 1 {
		t.Errorf("open groups = %d", a.Stats().OpenGroups)
	}
}

func TestAggregateEOSFlushes(t *testing.T) {
	a := minuteAvg(FeedbackIgnore, false)
	h := exec.NewHarness(a)
	h.Tuple(0, traffic(1, 1, 10, 42))
	h.EOS(0)
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(2).AsFloat() != 42 {
		t.Fatalf("EOS flush: %v", got)
	}
}

func TestAggregateKinds(t *testing.T) {
	cases := []struct {
		kind core.AggKind
		want float64
	}{
		{core.AggCount, 3}, {core.AggSum, 150}, {core.AggAvg, 50},
		{core.AggMax, 70}, {core.AggMin, 30},
	}
	for _, tc := range cases {
		a := &Aggregate{
			In: trafficSchema, Kind: tc.kind, TsAttr: 2, ValAttr: 3,
			GroupBy: []int{0}, Window: window.Tumbling(minute),
		}
		h := exec.NewHarness(a)
		h.Tuples(traffic(1, 1, 10, 50), traffic(1, 2, 20, 30), traffic(1, 3, 30, 70))
		h.EOS(0)
		got := h.OutTuples(0)
		if len(got) != 1 || got[0].At(2).AsFloat() != tc.want {
			t.Errorf("%v: got %v, want %g", tc.kind, got, tc.want)
		}
	}
}

func TestAggregateSlidingWindows(t *testing.T) {
	a := &Aggregate{
		In: trafficSchema, Kind: core.AggCount, TsAttr: 2, ValAttr: -1,
		GroupBy: []int{}, Window: window.Sliding(60, 20),
	}
	h := exec.NewHarness(a)
	h.Tuple(0, traffic(1, 1, 70, 50)) // windows 1,2,3 (starts 20,40,60)
	h.EOS(0)
	got := h.OutTuples(0)
	if len(got) != 3 {
		t.Fatalf("sliding extents: %v", got)
	}
	for _, tp := range got {
		if tp.At(1).AsFloat() != 1 {
			t.Errorf("each window counts once: %v", tp)
		}
	}
}

func TestAggregateGroupFeedbackF2Semantics(t *testing.T) {
	// Feedback on a group (segment): purge state, guard input.
	a := minuteAvg(FeedbackExploit, false)
	h := exec.NewHarness(a)
	h.Tuple(0, traffic(3, 1, 10*1_000_000, 40))
	h.Tuple(0, traffic(4, 1, 10*1_000_000, 50))
	// ¬[3, *, *] over output (segment, wstart, avg).
	h.Feedback(0, core.NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(3)))))
	// New tuples for segment 3 must not recreate the group.
	h.Tuple(0, traffic(3, 2, 20*1_000_000, 45))
	h.Punct(0, tsPunct(minute-1))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(0).AsInt() != 4 {
		t.Fatalf("segment 3 must be suppressed entirely: %v", got)
	}
	st := a.Stats()
	if st.Purged != 1 || st.InSuppressed != 1 {
		t.Errorf("stats: %+v", st)
	}
	resp := a.Responses()
	if len(resp) != 1 || !resp[0].Did(core.ActPurgeState) || !resp[0].Did(core.ActGuardInput) {
		t.Errorf("response: %+v", resp)
	}
}

func TestAggregateGuardOutputModeF1Semantics(t *testing.T) {
	// F1: only the output is guarded; aggregation work still happens.
	a := minuteAvg(FeedbackGuardOutput, false)
	h := exec.NewHarness(a)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(3)))))
	h.Tuple(0, traffic(3, 1, 10*1_000_000, 40))
	h.Punct(0, tsPunct(minute-1))
	if len(h.OutTuples(0)) != 0 {
		t.Fatal("output must be guarded")
	}
	st := a.Stats()
	if st.Folded != 1 {
		t.Error("F1 must still fold tuples into state")
	}
	if st.OutSuppressed != 1 {
		t.Errorf("out suppressed = %d", st.OutSuppressed)
	}
}

func TestAggregateValueFeedbackMonotone(t *testing.T) {
	// The §3.5 MAX example: ¬[*,*,≥50].
	a := &Aggregate{
		In: trafficSchema, Kind: core.AggMax, TsAttr: 2, ValAttr: 3,
		GroupBy: []int{0}, Window: window.Tumbling(minute), Mode: FeedbackExploit,
	}
	h := exec.NewHarness(a)
	h.Tuple(0, traffic(1, 1, 10*1_000_000, 51)) // partial max 51 ≥ 50
	h.Tuple(0, traffic(2, 1, 10*1_000_000, 40)) // partial max 40
	h.Feedback(0, core.NewAssumed(punct.OnAttr(3, 2, punct.Ge(stream.Float(50)))))
	// The matching window is closed (purged); a tuple with value 40 for
	// segment 1 must NOT recreate it (it would yield an incorrect 40).
	h.Tuple(0, traffic(1, 2, 20*1_000_000, 40))
	h.Punct(0, tsPunct(minute-1))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(0).AsInt() != 2 || got[0].At(2).AsFloat() != 40 {
		t.Fatalf("only segment 2's window may emit: %v", got)
	}
	resp := a.Responses()
	if len(resp) != 1 || !resp[0].Did(core.ActGuardInput) {
		t.Errorf("response: %+v", resp)
	}
}

func TestAggregateValueFeedbackNonMonotoneGuardsOutputOnly(t *testing.T) {
	// AVERAGE with ¬[*,*,≥50] (§3.5): purging would be incorrect because
	// the average can drop below 50; only the output may be guarded.
	a := minuteAvg(FeedbackExploit, false)
	h := exec.NewHarness(a)
	h.Tuple(0, traffic(1, 1, 10*1_000_000, 51))
	h.Feedback(0, core.NewAssumed(punct.OnAttr(3, 2, punct.Ge(stream.Float(50)))))
	// The window must still be live: new low reading drops the average.
	h.Tuple(0, traffic(1, 2, 20*1_000_000, 30))
	h.Punct(0, tsPunct(minute-1))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(2).AsFloat() != 40.5 {
		t.Fatalf("average must emerge unsuppressed at 40.5: %v", got)
	}
	if a.Stats().Purged != 0 {
		t.Error("non-monotone aggregate must not purge on value feedback")
	}
}

func TestAggregateValueFeedbackSuppresssesMatchingResults(t *testing.T) {
	a := minuteAvg(FeedbackExploit, false)
	h := exec.NewHarness(a)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(3, 2, punct.Ge(stream.Float(50)))))
	h.Tuple(0, traffic(1, 1, 10*1_000_000, 60)) // avg 60: in subset
	h.Tuple(0, traffic(2, 1, 10*1_000_000, 40)) // avg 40: out
	h.Punct(0, tsPunct(minute-1))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(0).AsInt() != 2 {
		t.Fatalf("avg ≥ 50 must be suppressed at output: %v", got)
	}
}

func TestAggregatePropagatesGroupFeedback(t *testing.T) {
	// F3: segment feedback maps to the input schema and goes upstream.
	a := minuteAvg(FeedbackExploit, true)
	h := exec.NewHarness(a)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(7)))))
	sent := h.SentFeedback(0)
	if len(sent) != 1 {
		t.Fatal("group feedback must propagate")
	}
	p := sent[0].Pattern
	if p.Arity() != 4 || p.Pred(0).Op != punct.EQ || p.Pred(0).Val.AsInt() != 7 {
		t.Errorf("propagated: %v", p)
	}
}

func TestAggregateWindowBoundFeedbackTranslation(t *testing.T) {
	// Example 2: "windows w3 and w4 are not required" — here expressed as
	// ¬[*, wstart≤X, *]; the aggregate must translate to an input-ts
	// bound rather than ask a bottom filter to drop tuples (which would
	// be incorrect for sliding windows; for tumbling it is exact).
	a := minuteAvg(FeedbackExploit, true)
	h := exec.NewHarness(a)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(3, 1, punct.Le(stream.TimeMicros(minute))))) // windows 0,1
	sent := h.SentFeedback(0)
	if len(sent) != 1 {
		t.Fatal("window-bound feedback must propagate via translation")
	}
	pr := sent[0].Pattern.Pred(2)
	if pr.Op != punct.LT || pr.Val.Micros() != 2*minute {
		t.Errorf("translated bound: %v (want < 2 minutes)", sent[0].Pattern)
	}
	// And locally: tuples for windows 0/1 are suppressed at input.
	h.Tuple(0, traffic(1, 1, 90*1_000_000, 50))  // window 1
	h.Tuple(0, traffic(1, 1, 130*1_000_000, 60)) // window 2
	h.Punct(0, tsPunct(3*minute))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(2).AsFloat() != 60 {
		t.Fatalf("suppressed windows must not emit: %v", got)
	}
}

func TestAggregateDemandedEmitsPartials(t *testing.T) {
	// §3.4's financial speculator: demanded feedback unblocks partials.
	a := minuteAvg(FeedbackExploit, false)
	h := exec.NewHarness(a)
	h.Tuple(0, traffic(1, 1, 10*1_000_000, 50))
	h.Tuple(0, traffic(2, 1, 10*1_000_000, 60))
	h.Feedback(0, core.NewDemanded(punct.OnAttr(3, 0, punct.Eq(stream.Int(1)))))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(0).AsInt() != 1 || got[0].At(2).AsFloat() != 50 {
		t.Fatalf("demanded partial: %v", got)
	}
	// The final result still arrives at window close.
	h.Tuple(0, traffic(1, 2, 20*1_000_000, 70))
	h.Punct(0, tsPunct(minute-1))
	got = h.OutTuples(0)
	if len(got) != 3 {
		t.Fatalf("final results after partial: %v", got)
	}
	if a.Stats().Partials != 1 {
		t.Error("partials counter")
	}
}

// TestAggregateSumNonNegativeMonotone: SUM over values declared
// non-negative purges on upward-closed value feedback like COUNT/MAX.
func TestAggregateSumNonNegativeMonotone(t *testing.T) {
	mk := func(nonNeg bool) *Aggregate {
		return &Aggregate{
			In: trafficSchema, Kind: core.AggSum, TsAttr: 2, ValAttr: 3,
			GroupBy: []int{0}, Window: window.Tumbling(minute),
			Mode: FeedbackExploit, NonNegative: nonNeg,
		}
	}
	fb := core.NewAssumed(punct.OnAttr(3, 2, punct.Ge(stream.Float(100))))
	// Without the guarantee: state survives the feedback.
	a := mk(false)
	h := exec.NewHarness(a)
	h.Tuple(0, traffic(1, 1, 10*1_000_000, 150))
	h.Feedback(0, fb)
	if a.Stats().Purged != 0 {
		t.Fatal("plain SUM must not purge on ≥ feedback")
	}
	// With it: the matching window closes immediately and stays shut.
	a = mk(true)
	h = exec.NewHarness(a)
	h.Tuple(0, traffic(1, 1, 10*1_000_000, 150)) // sum 150 ≥ 100
	h.Tuple(0, traffic(2, 1, 10*1_000_000, 40))  // sum 40
	h.Feedback(0, fb)
	if a.Stats().Purged != 1 {
		t.Fatalf("non-negative SUM must purge the matching window: %+v", a.Stats())
	}
	h.Tuple(0, traffic(1, 2, 20*1_000_000, 10)) // must not recreate seg 1
	h.Punct(0, tsPunct(minute-1))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(0).AsInt() != 2 {
		t.Fatalf("only the small window may emit: %v", got)
	}
}

// TestAggregateDemandedContract verifies the demanded-punctuation
// correctness notion (core.CheckDemanded): exact results all appear, and
// extras are confined to the demanded subset.
func TestAggregateDemandedContract(t *testing.T) {
	fb := core.NewDemanded(punct.OnAttr(3, 0, punct.Eq(stream.Int(1))))
	input := []stream.Tuple{
		traffic(1, 1, 10*1_000_000, 50),
		traffic(2, 1, 15*1_000_000, 60),
		traffic(1, 2, 20*1_000_000, 70),
	}
	run := func(demand bool) []stream.Tuple {
		a := minuteAvg(FeedbackExploit, false)
		h := exec.NewHarness(a)
		for i, tp := range input {
			h.Tuple(0, tp)
			if demand && i == 1 {
				h.Feedback(0, fb)
			}
		}
		h.Punct(0, tsPunct(minute-1))
		h.EOS(0)
		return h.OutTuples(0)
	}
	ref := run(false)
	act := run(true)
	rep := core.CheckDemanded(ref, act, fb)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Partials != 1 {
		t.Errorf("expected exactly one licensed partial, got %d", rep.Partials)
	}
}

func TestAggregateFeedbackExpiresWithPunctuation(t *testing.T) {
	a := minuteAvg(FeedbackExploit, false)
	h := exec.NewHarness(a)
	// Window-bound feedback for the first minute.
	h.Feedback(0, core.NewAssumed(punct.OnAttr(3, 1, punct.Le(stream.TimeMicros(0)))))
	if a.guardsOut.Active() != 1 {
		t.Fatal("guard installed")
	}
	// Punctuation past the first window expires it.
	h.Punct(0, tsPunct(minute-1))
	if a.guardsOut.Active() != 0 {
		t.Error("output guard must expire when wstart punctuation covers it")
	}
}

// TestAggregateDefinition1Property: random streams, random group feedback,
// all three modes satisfy Definition 1 relative to the ignore-mode run.
func TestAggregateDefinition1Property(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		var input []stream.Tuple
		n := 20 + r.Intn(60)
		for i := 0; i < n; i++ {
			input = append(input, traffic(
				r.Int63n(4), r.Int63n(3),
				r.Int63n(5*minute), 20+float64(r.Intn(50)),
			))
		}
		seg := r.Int63n(4)
		fb := core.NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(seg))))
		fbAt := r.Intn(n)
		run := func(mode FeedbackMode) []stream.Tuple {
			a := minuteAvg(mode, false)
			h := exec.NewHarness(a)
			for i, tp := range input {
				if i == fbAt {
					h.Feedback(0, fb)
				}
				h.Tuple(0, tp)
			}
			h.Punct(0, tsPunct(2*minute))
			h.EOS(0)
			if h.Err() != nil {
				t.Fatal(h.Err())
			}
			return h.OutTuples(0)
		}
		ref := run(FeedbackIgnore)
		for _, mode := range []FeedbackMode{FeedbackGuardOutput, FeedbackExploit} {
			rep := core.CheckExploitation(ref, run(mode), fb)
			if err := rep.Err(); err != nil {
				t.Fatalf("trial %d mode %v: %v", trial, mode, err)
			}
		}
	}
}

// TestAggregateRejectsUnexpectedInput pins the mis-wired-plan behaviour:
// a tuple, punctuation, or EOS on any input other than 0 is a loud error
// instead of silent mis-attribution.
func TestAggregateRejectsUnexpectedInput(t *testing.T) {
	a := minuteAvg(FeedbackIgnore, false)
	h := exec.NewHarness(a)
	if err := a.ProcessTuple(1, traffic(1, 1, 10, 50), h); err == nil {
		t.Fatal("tuple on input 1 must error")
	}
	if err := a.ProcessPunct(2, tsPunct(minute), h); err == nil {
		t.Fatal("punctuation on input 2 must error")
	}
	if err := a.ProcessEOS(-1, h); err == nil {
		t.Fatal("EOS on input -1 must error")
	}
}
