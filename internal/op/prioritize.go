package op

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

// Prioritize is an exploiter of desired (?) feedback: a pass-through stage
// with a bounded reorder buffer. Tuples matching a desired pattern bypass
// the buffer and are emitted immediately; everything else drains in FIFO
// order as the buffer fills, on punctuation, or at end of stream.
//
// Placed upstream of an IMPATIENT JOIN, it realizes §3.4's scenario: the
// join announces which (period, segment) subsets it can immediately use,
// and this operator moves those tuples to the front — changing production
// time and order but never the result set, exactly the desired-punctuation
// contract.
//
// Assumed feedback is exploited maximally: matching buffered tuples are
// dropped before ever being emitted, and the guard persists.
type Prioritize struct {
	exec.Base
	OpName string
	Schema stream.Schema
	// BufferCap bounds the reorder buffer (default 256). A larger buffer
	// gives desired feedback more opportunity to overtake.
	BufferCap int
	// Mode/Propagate as in Select; FeedbackIgnore reduces the operator to
	// a FIFO pass-through.
	Mode      FeedbackMode
	Propagate bool

	responseLog
	desired []punct.Pattern
	guards  *core.GuardTable
	scheme  *punct.Scheme
	pending []stream.Tuple

	in, out, promoted, dropped int64
}

// Name implements exec.Operator.
func (p *Prioritize) Name() string {
	if p.OpName != "" {
		return p.OpName
	}
	return "prioritize"
}

func (p *Prioritize) cap() int {
	if p.BufferCap <= 0 {
		return 256
	}
	return p.BufferCap
}

// InSchemas implements exec.Operator.
func (p *Prioritize) InSchemas() []stream.Schema { return []stream.Schema{p.Schema} }

// OutSchemas implements exec.Operator.
func (p *Prioritize) OutSchemas() []stream.Schema { return []stream.Schema{p.Schema} }

// Open implements exec.Operator.
func (p *Prioritize) Open(exec.Context) error {
	p.guards = core.NewGuardTable(p.Schema.Arity())
	p.scheme = punct.NewScheme(p.Schema.Arity())
	return nil
}

func (p *Prioritize) isDesired(t stream.Tuple) bool {
	for _, d := range p.desired {
		if d.Matches(t) {
			return true
		}
	}
	return false
}

// ProcessTuple implements exec.Operator.
func (p *Prioritize) ProcessTuple(_ int, t stream.Tuple, ctx exec.Context) error {
	p.in++
	if p.Mode != FeedbackIgnore && p.guards.Suppress(t) {
		p.dropped++
		return nil
	}
	if p.Mode != FeedbackIgnore && p.isDesired(t) {
		p.promoted++
		p.out++
		ctx.Emit(t)
		return nil
	}
	p.pending = append(p.pending, t)
	for len(p.pending) > p.cap() {
		p.emitOldest(ctx)
	}
	return nil
}

func (p *Prioritize) emitOldest(ctx exec.Context) {
	t := p.pending[0]
	p.pending = p.pending[1:]
	p.out++
	ctx.Emit(t)
}

func (p *Prioritize) flush(ctx exec.Context) {
	for len(p.pending) > 0 {
		p.emitOldest(ctx)
	}
}

// ProcessPunct implements exec.Operator: all buffered tuples must precede
// the punctuation downstream, so the buffer flushes first.
func (p *Prioritize) ProcessPunct(_ int, e punct.Embedded, ctx exec.Context) error {
	p.flush(ctx)
	p.guards.ObservePunct(e)
	p.scheme.Observe(e)
	// Desired patterns expire like guards: once the stream promises the
	// subset complete, prioritizing it is moot.
	kept := p.desired[:0]
	for _, d := range p.desired {
		if !p.scheme.CoversPattern(d) {
			kept = append(kept, d)
		}
	}
	p.desired = kept
	ctx.EmitPunct(e)
	return nil
}

// ProcessEOS implements exec.Operator.
func (p *Prioritize) ProcessEOS(_ int, ctx exec.Context) error {
	p.flush(ctx)
	return nil
}

// ProcessFeedback implements exec.Operator.
func (p *Prioritize) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	resp := core.Response{Feedback: f}
	if p.Mode == FeedbackIgnore {
		resp.Actions = []core.Action{core.ActNone}
		p.logResponse(resp)
		return nil
	}
	switch f.Intent {
	case core.Desired, core.Demanded:
		p.desired = append(p.desired, f.Pattern)
		// Promote matching backlog immediately.
		kept := p.pending[:0]
		for _, t := range p.pending {
			if f.Pattern.Matches(t) {
				p.promoted++
				p.out++
				ctx.Emit(t)
				continue
			}
			kept = append(kept, t)
		}
		p.pending = kept
		resp.Actions = append(resp.Actions, core.ActPrioritize)
	case core.Assumed:
		p.guards.Install(f)
		kept := p.pending[:0]
		for _, t := range p.pending {
			if f.Pattern.Matches(t) {
				p.dropped++
				continue
			}
			kept = append(kept, t)
		}
		p.pending = kept
		resp.Actions = append(resp.Actions, core.ActGuardInput, core.ActPurgeState)
	}
	if p.Propagate {
		relayed := f.Relayed(f.Pattern)
		ctx.SendFeedback(0, relayed)
		resp.Actions = append(resp.Actions, core.ActPropagate)
		resp.Propagated = []*core.Feedback{&relayed}
	}
	p.logResponse(resp)
	return nil
}

// Stats reports (in, out, promoted, dropped).
func (p *Prioritize) Stats() (in, out, promoted, dropped int64) {
	return p.in, p.out, p.promoted, p.dropped
}
