package op

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/window"
)

// Join is a symmetric hash equi-join in the OOP style: both inputs build
// hash tables; embedded punctuation on each input's timestamp attribute
// purges state that can no longer find partners. The output schema is
// (L, J, R): all left attributes followed by the right attributes minus the
// join keys, matching the paper's Table 2 partition.
//
// Optional behaviours reproduce the paper's specialized joins:
//
//   - LeftOuter: unmatched left tuples are emitted padded with nulls once
//     right-side punctuation proves no partner can arrive (the Figure 1(b)
//     speed-map join keeps all fixed-sensor readings);
//   - Thrifty (§3.3 "Adaptive"): when the probe input's punctuation closes
//     a window that received no tuples, the join sends assumed feedback to
//     the other input for that window — "window 4 is empty, stop producing
//     tuples for it";
//   - Impatient (§3.4): each new key arriving on the scarce (left) input
//     triggers desired feedback to the right input — "I have vehicle data
//     for segment 3, period 7; prioritize its partners".
//
// Feedback handling implements Table 2 via core.JoinCharacterization.
type Join struct {
	exec.Base
	OpName      string
	Left, Right stream.Schema
	// LeftKeys/RightKeys are the equi-join attributes (parallel slices).
	LeftKeys, RightKeys []int
	// LeftTs/RightTs are the timestamp attributes used for state purging
	// (-1 disables punctuation-driven purging on that side).
	LeftTs, RightTs int
	// Residual, if set, further filters joined pairs (e.g. the speed-map
	// join's "sensor speed < 45" condition).
	Residual func(l, r stream.Tuple) bool
	// LeftOuter emits unmatched left tuples null-padded on purge.
	LeftOuter bool
	// Mode/Propagate configure feedback response as in Select.
	Mode      FeedbackMode
	Propagate bool
	// ThriftyWindow enables empty-window detection on the probe input
	// (ThriftyProbe side); feedback goes to the opposite input.
	ThriftyWindow *window.Spec
	ThriftyProbe  int
	// Impatient enables desired-feedback production toward input 1 for
	// every new join key arriving on input 0.
	Impatient bool
	// MaxChangelog caps the incremental-snapshot changelog summed over both
	// sides (dirty + dead keys); see Aggregate.MaxChangelog for semantics
	// (0 = scaled default, positive = absolute, negative = disabled).
	MaxChangelog int
	// Adaptive, if set, is invoked for every accepted input tuple and may
	// produce feedback toward either input — the §3.3 "Adaptive" source
	// category, where an operator discovers opportunities in its own
	// streams. The Figure 1(b) speed-map join uses it to tell the
	// vehicle-data side that an uncongested segment's window needs no
	// cleaning or aggregation.
	Adaptive func(input int, t stream.Tuple, send func(toInput int, f core.Feedback))

	responseLog
	out                 stream.Schema
	rightCarry          []int // right attrs carried to output (non-keys)
	part                core.JoinPartition
	leftMap, rightMap   core.AttrMap
	leftTable           map[string][]*joinEntry //pace:tracked
	rightTable          map[string][]*joinEntry //pace:tracked
	guardsL, guardsR    *core.GuardTable
	guardsOut           *core.GuardTable
	leftWM, rightWM     int64
	leftWMSet, rightWMS bool
	lastOutWM           int64
	lastOutWMSet        bool
	leftEOS, rightEOS   bool
	probeCounts         map[int64]int64 // thrifty: tuples per probe window
	probeDone           int64           // thrifty: windows already checked
	impatientKeys       map[string]bool
	feedbackSeq         int64
	// Changelog for incremental snapshots (state.go), indexed by side
	// (0 = left table, 1 = right table): keys whose entry lists changed or
	// vanished since the previous capture. nil until the first capture
	// enables tracking.
	chlogDirty [2]map[string]bool
	chlogDead  [2]map[string]bool

	emitted, outerEmitted, suppressedIn, suppressedOut, purgedByFeedback int64
	thriftySent, impatientSent                                           int64

	// Feedback accounting only; the counters above stay plain because
	// state.go serializes them into snapshots on the node goroutine, while
	// /metrics scrapes from another goroutine and may only touch atomics.
	// fb is never snapshotted and resets on restore.
	fb fbCounters

	// batchScratch backs ProcessTupleBatch's item unwrapping; reused across
	// batches, transient, never checkpointed.
	batchScratch []stream.Tuple
}

type joinEntry struct {
	t       stream.Tuple
	ts      int64
	matched bool
}

// Name implements exec.Operator.
func (j *Join) Name() string {
	if j.OpName != "" {
		return j.OpName
	}
	return "join"
}

// InSchemas implements exec.Operator.
func (j *Join) InSchemas() []stream.Schema { return []stream.Schema{j.Left, j.Right} }

// OutSchemas implements exec.Operator.
func (j *Join) OutSchemas() []stream.Schema {
	if j.out.Arity() == 0 {
		j.mustInit()
	}
	return []stream.Schema{j.out}
}

func (j *Join) mustInit() {
	if len(j.LeftKeys) != len(j.RightKeys) || len(j.LeftKeys) == 0 {
		panic(fmt.Sprintf("op: join %q: key lists must be non-empty and parallel", j.Name()))
	}
	isRightKey := map[int]bool{}
	for _, k := range j.RightKeys {
		isRightKey[k] = true
	}
	j.rightCarry = j.rightCarry[:0]
	var rightFields []stream.Field
	for i := 0; i < j.Right.Arity(); i++ {
		if !isRightKey[i] {
			j.rightCarry = append(j.rightCarry, i)
			rightFields = append(rightFields, j.Right.Field(i))
		}
	}
	rightSub, err := stream.NewSchema(rightFields...)
	if err != nil {
		panic(fmt.Sprintf("op: join %q: %v", j.Name(), err))
	}
	out, err := j.Left.Concat(rightSub, "right_")
	if err != nil {
		panic(fmt.Sprintf("op: join %q: %v", j.Name(), err))
	}
	j.out = out

	// Partition of the output schema.
	isLeftKey := map[int]bool{}
	for _, k := range j.LeftKeys {
		isLeftKey[k] = true
	}
	j.part = core.JoinPartition{}
	for i := 0; i < j.Left.Arity(); i++ {
		if isLeftKey[i] {
			j.part.Join = append(j.part.Join, i)
		} else {
			j.part.Left = append(j.part.Left, i)
		}
	}
	for r := range j.rightCarry {
		j.part.Right = append(j.part.Right, j.Left.Arity()+r)
	}

	// Attribute maps for propagation.
	lm := make([]int, out.Arity())
	rm := make([]int, out.Arity())
	for i := range lm {
		lm[i], rm[i] = -1, -1
	}
	for i := 0; i < j.Left.Arity(); i++ {
		lm[i] = i
	}
	for k, lk := range j.LeftKeys {
		rm[lk] = j.RightKeys[k]
	}
	for rIdx, src := range j.rightCarry {
		rm[j.Left.Arity()+rIdx] = src
	}
	j.leftMap = core.AttrMap{InputArity: j.Left.Arity(), ToInput: lm}
	j.rightMap = core.AttrMap{InputArity: j.Right.Arity(), ToInput: rm}
}

// Open implements exec.Operator.
func (j *Join) Open(exec.Context) error {
	if j.out.Arity() == 0 {
		j.mustInit()
	}
	j.leftTable = map[string][]*joinEntry{}
	j.rightTable = map[string][]*joinEntry{}
	j.guardsL = core.NewGuardTable(j.Left.Arity())
	j.guardsR = core.NewGuardTable(j.Right.Arity())
	j.guardsOut = core.NewGuardTable(j.out.Arity())
	j.probeCounts = map[int64]int64{}
	j.probeDone = -1
	j.impatientKeys = map[string]bool{}
	j.chlogDirty = [2]map[string]bool{}
	j.chlogDead = [2]map[string]bool{}
	return nil
}

// table returns the build table for a side (0 = left, 1 = right).
func (j *Join) table(side int) map[string][]*joinEntry {
	if side == 0 {
		return j.leftTable
	}
	return j.rightTable
}

// noteDirty records a changed entry list in the changelog.
func (j *Join) noteDirty(side int, key string) {
	if j.chlogDirty[side] == nil {
		return
	}
	j.chlogDirty[side][key] = true
	delete(j.chlogDead[side], key)
	j.capChangelog()
}

// noteDead records a vanished entry list in the changelog.
func (j *Join) noteDead(side int, key string) {
	if j.chlogDirty[side] == nil {
		return
	}
	delete(j.chlogDirty[side], key)
	j.chlogDead[side][key] = true
	j.capChangelog()
}

// capChangelog bounds changelog memory when checkpointing has stopped; see
// Aggregate.capChangelog (the default limit scales with live table size
// the same way). Collapsing turns tracking off on both sides, so the next
// capture is full and re-enables it.
func (j *Join) capChangelog() {
	limit := j.MaxChangelog
	if limit < 0 {
		return
	}
	if limit == 0 {
		limit = DefaultMaxChangelog
		if n := len(j.leftTable) + len(j.rightTable); n > limit {
			limit = n
		}
	}
	total := 0
	for side := 0; side < 2; side++ {
		total += len(j.chlogDirty[side]) + len(j.chlogDead[side])
	}
	if total > limit {
		j.chlogDirty = [2]map[string]bool{}
		j.chlogDead = [2]map[string]bool{}
	}
}

func (j *Join) outTuple(l, r stream.Tuple) stream.Tuple {
	// One exact-size allocation; the old Concat(Project(...)) chain built
	// and discarded an intermediate right-side tuple per emitted pair.
	vals := make([]stream.Value, 0, j.out.Arity())
	vals = l.AppendValues(vals)
	vals = r.AppendProjected(vals, j.rightCarry)
	return stream.Tuple{Values: vals, Seq: l.Seq}
}

func (j *Join) emitJoined(l, r stream.Tuple, ctx exec.Context) {
	if j.Residual != nil && !j.Residual(l, r) {
		return
	}
	t := j.outTuple(l, r)
	if j.Mode != FeedbackIgnore && j.guardsOut.Suppress(t) {
		j.suppressedOut++
		return
	}
	j.emitted++
	ctx.Emit(t)
}

func (j *Join) emitOuter(l stream.Tuple, ctx exec.Context) {
	vals := make([]stream.Value, 0, j.out.Arity())
	vals = append(vals, l.Values...)
	for range j.rightCarry {
		vals = append(vals, stream.Null)
	}
	t := stream.Tuple{Values: vals, Seq: l.Seq}
	if j.Mode != FeedbackIgnore && j.guardsOut.Suppress(t) {
		j.suppressedOut++
		return
	}
	j.outerEmitted++
	ctx.Emit(t)
}

// ProcessTuple implements exec.Operator.
func (j *Join) ProcessTuple(input int, t stream.Tuple, ctx exec.Context) error {
	switch input {
	case 0:
		return j.processLeft(t, ctx)
	case 1:
		return j.processRight(t, ctx)
	}
	return fmt.Errorf("op: join %q: tuple on unexpected input %d (two-input operator; check plan wiring)", j.Name(), input)
}

func (j *Join) processLeft(t stream.Tuple, ctx exec.Context) error {
	if j.Mode == FeedbackExploit && j.guardsL.Suppress(t) {
		j.suppressedIn++
		return nil
	}
	return j.applyLeft(t, ctx)
}

// applyLeft is processLeft past the input-guard probe: build, probe, emit.
//
//pace:hotpath
func (j *Join) applyLeft(t stream.Tuple, ctx exec.Context) error {
	key := t.Key(j.LeftKeys)
	if j.Impatient && !j.impatientKeys[key] {
		j.impatientKeys[key] = true
		j.sendImpatient(t, ctx)
	}
	e := &joinEntry{t: t, ts: j.tsOf(t, j.LeftTs)} //pace:allow-alloc every arriving tuple is retained in the hash table; the entry is the state
	for _, r := range j.rightTable[key] {
		if j.Residual == nil || j.Residual(t, r.t) {
			if !r.matched {
				r.matched = true
				j.noteDirty(1, key)
			}
			e.matched = true
			j.emitJoined(t, r.t, ctx)
		}
	}
	if j.ThriftyWindow != nil && j.ThriftyProbe == 0 {
		j.countProbe(e.ts)
	}
	j.leftTable[key] = append(j.leftTable[key], e)
	j.noteDirty(0, key)
	j.runAdaptive(0, t, ctx)
	return nil
}

// runAdaptive invokes the Adaptive hook, if configured.
func (j *Join) runAdaptive(input int, t stream.Tuple, ctx exec.Context) {
	if j.Adaptive == nil {
		return
	}
	j.Adaptive(input, t, func(toInput int, f core.Feedback) {
		if f.Origin == "" {
			f.Origin = j.Name()
		}
		j.feedbackSeq++
		f.Seq = j.feedbackSeq
		ctx.SendFeedback(toInput, f)
	})
}

func (j *Join) processRight(t stream.Tuple, ctx exec.Context) error {
	if j.Mode == FeedbackExploit && j.guardsR.Suppress(t) {
		j.suppressedIn++
		return nil
	}
	return j.applyRight(t, ctx)
}

// applyRight is processRight past the input-guard probe.
//
//pace:hotpath
func (j *Join) applyRight(t stream.Tuple, ctx exec.Context) error {
	key := t.Key(j.RightKeys)
	e := &joinEntry{t: t, ts: j.tsOf(t, j.RightTs)} //pace:allow-alloc every arriving tuple is retained in the hash table; the entry is the state
	for _, l := range j.leftTable[key] {
		if j.Residual == nil || j.Residual(l.t, t) {
			if !l.matched {
				l.matched = true
				j.noteDirty(0, key)
			}
			e.matched = true
			j.emitJoined(l.t, t, ctx)
		}
	}
	if j.ThriftyWindow != nil && j.ThriftyProbe == 1 {
		j.countProbe(e.ts)
	}
	j.rightTable[key] = append(j.rightTable[key], e)
	j.noteDirty(1, key)
	j.runAdaptive(1, t, ctx)
	return nil
}

// ApplyTupleBatch implements exec.TupleBatchApplier: a symmetric hash join
// has per-tuple probe-and-emit obligations, so the batch path keeps the
// tuple loop but hoists the input-guard probe — one Active() check per run
// instead of one table walk per tuple. Guards only change between runs
// (ProcessFeedback and ProcessPunct never interleave with a batch), so the
// hoisted decision holds for the whole run.
func (j *Join) ApplyTupleBatch(input int, ts []stream.Tuple, ctx exec.Context) error {
	var guards *core.GuardTable
	var apply func(t stream.Tuple, ctx exec.Context) error
	switch input {
	case 0:
		guards, apply = j.guardsL, j.applyLeft
	case 1:
		guards, apply = j.guardsR, j.applyRight
	default:
		return fmt.Errorf("op: join %q: tuple on unexpected input %d (two-input operator; check plan wiring)", j.Name(), input)
	}
	guarded := j.Mode == FeedbackExploit && guards.Active() > 0
	for i := range ts {
		t := ts[i]
		if guarded && guards.Suppress(t) {
			j.suppressedIn++
			continue
		}
		if err := apply(t, ctx); err != nil {
			return err
		}
	}
	return nil
}

// ProcessTupleBatch implements exec.TupleBatcher by unwrapping the run into
// a reused scratch slice and taking the batch-apply path.
func (j *Join) ProcessTupleBatch(input int, items []queue.Item, ctx exec.Context) error {
	buf := j.batchScratch[:0]
	for i := range items {
		buf = append(buf, items[i].Tuple)
	}
	j.batchScratch = buf
	return j.ApplyTupleBatch(input, buf, ctx)
}

func (j *Join) tsOf(t stream.Tuple, attr int) int64 {
	if attr < 0 {
		return math.MaxInt64
	}
	return t.At(attr).I
}

// sendImpatient emits desired feedback toward input 1, describing the join
// key values just seen on input 0 in the right input's schema.
func (j *Join) sendImpatient(l stream.Tuple, ctx exec.Context) {
	pat := punct.AllWild(j.Right.Arity())
	for k, lk := range j.LeftKeys {
		pat = pat.With(j.RightKeys[k], punct.Eq(l.At(lk)))
	}
	j.feedbackSeq++
	ctx.SendFeedback(1, core.Feedback{
		Intent: core.Desired, Pattern: pat, Origin: j.Name(), Seq: j.feedbackSeq,
	})
	j.impatientSent++
}

// countProbe tallies probe-side tuples per thrifty window.
func (j *Join) countProbe(ts int64) {
	lo, hi := j.ThriftyWindow.WindowsOf(ts)
	for w := lo; w <= hi; w++ {
		j.probeCounts[w]++
	}
}

// checkThrifty fires assumed feedback for every probe window closed by the
// new probe watermark that received no tuples.
func (j *Join) checkThrifty(probeWM int64, ctx exec.Context) {
	lastFull := j.ThriftyWindow.LastFullWindow(probeWM)
	other := 1 - j.ThriftyProbe
	otherTs := j.LeftTs
	otherArity := j.Left.Arity()
	if other == 1 {
		otherTs = j.RightTs
		otherArity = j.Right.Arity()
	}
	if otherTs < 0 {
		return
	}
	for w := j.probeDone + 1; w <= lastFull; w++ {
		if j.probeCounts[w] == 0 {
			start, end := j.ThriftyWindow.Extent(w)
			j.feedbackSeq++
			ctx.SendFeedback(other, core.Feedback{
				Intent: core.Assumed,
				Pattern: punct.OnAttr(otherArity, otherTs,
					punct.Range(j.tsValue(other, start), j.tsValue(other, end-1))),
				Origin: j.Name(), Seq: j.feedbackSeq,
			})
			j.thriftySent++
		}
		delete(j.probeCounts, w)
	}
	if lastFull > j.probeDone {
		j.probeDone = lastFull
	}
}

func (j *Join) tsValue(input int, v int64) stream.Value {
	sch, attr := j.Left, j.LeftTs
	if input == 1 {
		sch, attr = j.Right, j.RightTs
	}
	if sch.Field(attr).Kind == stream.KindTime {
		return stream.TimeMicros(v)
	}
	return stream.Int(v)
}

// ProcessPunct implements exec.Operator: timestamp punctuation purges the
// opposite table and may emit output punctuation and thrifty feedback.
func (j *Join) ProcessPunct(input int, e punct.Embedded, ctx exec.Context) error {
	if input != 0 && input != 1 {
		return fmt.Errorf("op: join %q: punctuation on unexpected input %d (two-input operator; check plan wiring)", j.Name(), input)
	}
	tsAttr := j.LeftTs
	if input == 1 {
		tsAttr = j.RightTs
	}
	if tsAttr < 0 {
		return nil
	}
	bound := e.Pattern.Bound()
	if len(bound) != 1 || bound[0] != tsAttr {
		if input == 0 {
			j.guardsL.ObservePunct(e)
		} else {
			j.guardsR.ObservePunct(e)
		}
		return nil
	}
	pr := e.Pattern.Pred(tsAttr)
	var wm int64
	switch pr.Op {
	case punct.LE:
		wm = pr.Val.I
	case punct.LT:
		wm = pr.Val.I - 1
	default:
		return nil
	}
	if input == 0 {
		j.guardsL.ObservePunct(e)
		if !j.leftWMSet || wm > j.leftWM {
			j.leftWM, j.leftWMSet = wm, true
		}
		// No more left tuples ≤ wm: right entries at or below can never
		// match again.
		j.purgeTable(1, wm, false, ctx)
		if j.ThriftyWindow != nil && j.ThriftyProbe == 0 {
			j.checkThrifty(wm, ctx)
		}
	} else {
		j.guardsR.ObservePunct(e)
		if !j.rightWMS || wm > j.rightWM {
			j.rightWM, j.rightWMS = wm, true
		}
		j.purgeTable(0, wm, j.LeftOuter, ctx)
		if j.ThriftyWindow != nil && j.ThriftyProbe == 1 {
			j.checkThrifty(wm, ctx)
		}
	}
	j.emitOutputPunct(ctx)
	return nil
}

// purgeTable drops the given side's entries with ts ≤ wm; for the left
// table under LeftOuter, unmatched entries are emitted null-padded first.
func (j *Join) purgeTable(side int, wm int64, outer bool, ctx exec.Context) {
	table := j.table(side)
	for k, entries := range table {
		kept := entries[:0]
		for _, e := range entries {
			if e.ts <= wm {
				if outer && !e.matched {
					j.emitOuter(e.t, ctx)
				}
				continue
			}
			kept = append(kept, e)
		}
		switch {
		case len(kept) == len(entries):
		case len(kept) == 0:
			delete(table, k)
			j.noteDead(side, k)
		default:
			table[k] = kept
			j.noteDirty(side, k)
		}
	}
}

// emitOutputPunct asserts progress on the output's timestamp attribute
// (the left ts position) once both inputs have punctuated.
func (j *Join) emitOutputPunct(ctx exec.Context) {
	if j.LeftTs < 0 || j.RightTs < 0 {
		return
	}
	lw, rw := j.leftWM, j.rightWM
	if j.leftEOS {
		lw = math.MaxInt64
	} else if !j.leftWMSet {
		return
	}
	if j.rightEOS {
		rw = math.MaxInt64
	} else if !j.rightWMS {
		return
	}
	wm := lw
	if rw < wm {
		wm = rw
	}
	if wm == math.MaxInt64 {
		return
	}
	if j.lastOutWMSet && wm <= j.lastOutWM {
		return
	}
	j.lastOutWM, j.lastOutWMSet = wm, true
	outPunct := punct.NewEmbedded(punct.OnAttr(j.out.Arity(), j.LeftTs, punct.Le(j.tsValue(0, wm))))
	j.guardsOut.ObservePunct(outPunct)
	ctx.EmitPunct(outPunct)
}

// ProcessEOS implements exec.Operator.
func (j *Join) ProcessEOS(input int, ctx exec.Context) error {
	if input != 0 && input != 1 {
		return fmt.Errorf("op: join %q: EOS on unexpected input %d (two-input operator; check plan wiring)", j.Name(), input)
	}
	if input == 0 {
		j.leftEOS = true
		j.purgeTable(1, math.MaxInt64, false, ctx)
	} else {
		j.rightEOS = true
		j.purgeTable(0, math.MaxInt64, j.LeftOuter, ctx)
	}
	return nil
}

// ProcessFeedback implements exec.Operator per Table 2.
func (j *Join) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	j.fb.received.Add(1)
	resp := core.Response{Feedback: f}
	defer func() {
		if len(resp.Actions) == 0 {
			resp.Actions = []core.Action{core.ActNone}
		}
		j.logResponse(resp)
	}()
	if f.Intent != core.Assumed {
		// Desired/demanded: a symmetric hash join does not block or
		// reorder, so the useful response is relaying to whichever input
		// carries the subset.
		if j.Propagate {
			j.relayToCarriers(f, &resp, ctx)
		}
		return nil
	}
	if j.Mode == FeedbackIgnore {
		return nil
	}
	shape := core.ClassifyJoinPattern(f.Pattern, j.part)
	plan := core.JoinCharacterization(shape, f.Pattern, j.leftMap, j.rightMap)
	resp.Note = plan.Explanation

	j.guardsOut.Install(f)
	j.fb.exploited.Add(1)
	resp.Actions = append(resp.Actions, core.ActGuardOutput)
	if j.Mode == FeedbackGuardOutput {
		return nil
	}
	for _, act := range plan.Actions {
		switch act {
		case core.ActPurgeState:
			j.purgeByFeedback(shape, f.Pattern)
			resp.Actions = append(resp.Actions, core.ActPurgeState)
		case core.ActGuardInput:
			j.guardInputs(shape, f)
			resp.Actions = append(resp.Actions, core.ActGuardInput)
		}
	}
	if j.Propagate {
		resp.Propagated = make([]*core.Feedback, 2)
		for side, pp := range plan.Propagate {
			if pp == nil {
				continue
			}
			relayed := f.Relayed(*pp)
			ctx.SendFeedback(side, relayed)
			j.fb.forwarded.Add(1)
			resp.Propagated[side] = &relayed
		}
		if resp.Propagated[0] != nil || resp.Propagated[1] != nil {
			resp.Actions = append(resp.Actions, core.ActPropagate)
		}
	}
	return nil
}

// relayToCarriers propagates non-assumed feedback to each input that
// carries every bound attribute.
func (j *Join) relayToCarriers(f core.Feedback, resp *core.Response, ctx exec.Context) {
	resp.Propagated = make([]*core.Feedback, 2)
	for side, m := range []core.AttrMap{j.leftMap, j.rightMap} {
		if prop := core.SafePropagation(f.Pattern, m); prop.OK {
			relayed := f.Relayed(prop.Pattern)
			ctx.SendFeedback(side, relayed)
			j.fb.forwarded.Add(1)
			resp.Propagated[side] = &relayed
		}
	}
	if resp.Propagated[0] != nil || resp.Propagated[1] != nil {
		resp.Actions = append(resp.Actions, core.ActPropagate)
	}
}

// purgeByFeedback removes hash-table entries covered by the feedback,
// matching each side's entries against the pattern projected into that
// side's input schema.
func (j *Join) purgeByFeedback(shape core.JoinShape, p punct.Pattern) {
	purgeSide := func(side int, m core.AttrMap) {
		prop := core.SafePropagation(p, m)
		if !prop.OK {
			return
		}
		table := j.table(side)
		for k, entries := range table {
			kept := entries[:0]
			for _, e := range entries {
				if prop.Pattern.Matches(e.t) {
					j.purgedByFeedback++
					continue
				}
				kept = append(kept, e)
			}
			switch {
			case len(kept) == len(entries):
			case len(kept) == 0:
				delete(table, k)
				j.noteDead(side, k)
			default:
				table[k] = kept
				j.noteDirty(side, k)
			}
		}
	}
	switch shape {
	case core.JoinShapeJ:
		purgeSide(0, j.leftMap)
		purgeSide(1, j.rightMap)
	case core.JoinShapeL, core.JoinShapeLJ:
		purgeSide(0, j.leftMap)
	case core.JoinShapeR, core.JoinShapeJR:
		purgeSide(1, j.rightMap)
	}
}

// guardInputs installs input guards on the side(s) that carry the pattern.
func (j *Join) guardInputs(shape core.JoinShape, f core.Feedback) {
	install := func(g *core.GuardTable, m core.AttrMap) {
		if prop := core.SafePropagation(f.Pattern, m); prop.OK {
			g.Install(core.Feedback{Intent: core.Assumed, Pattern: prop.Pattern, Origin: f.Origin, Seq: f.Seq})
		}
	}
	switch shape {
	case core.JoinShapeJ:
		install(j.guardsL, j.leftMap)
		install(j.guardsR, j.rightMap)
	case core.JoinShapeL, core.JoinShapeLJ:
		install(j.guardsL, j.leftMap)
	case core.JoinShapeR, core.JoinShapeJR:
		install(j.guardsR, j.rightMap)
	}
}

// TelemetryVars implements telemetry.VarExporter. Only the feedback
// counters are exported: the tuple counters are serialized snapshot state
// and may not be read off the node goroutine (see the field comment).
func (j *Join) TelemetryVars() []telemetry.Var { return j.fb.vars() }

// JoinStats is the operator's accounting snapshot.
type JoinStats struct {
	Emitted, OuterEmitted       int64
	SuppressedIn, SuppressedOut int64
	PurgedByFeedback            int64
	ThriftySent, ImpatientSent  int64
	LeftEntries, RightEntries   int
}

// Stats reports tuple accounting.
func (j *Join) Stats() JoinStats {
	count := func(t map[string][]*joinEntry) int {
		n := 0
		for _, es := range t {
			n += len(es)
		}
		return n
	}
	return JoinStats{
		Emitted:          j.emitted,
		OuterEmitted:     j.outerEmitted,
		SuppressedIn:     j.suppressedIn,
		SuppressedOut:    j.suppressedOut,
		PurgedByFeedback: j.purgedByFeedback,
		ThriftySent:      j.thriftySent,
		ImpatientSent:    j.impatientSent,
		LeftEntries:      count(j.leftTable),
		RightEntries:     count(j.rightTable),
	}
}
