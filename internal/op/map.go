package op

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Map is the general 1-in/1-out stateless transform: each output attribute
// is either carried verbatim from an input attribute or computed by a
// function of the whole input tuple. Carried attributes determine how
// punctuation relays downstream and how feedback propagates upstream
// (computed attributes block both, exactly like a join's derived columns).
//
//pace:stateless guards are exploitation-only; losing them on restore means suppressing less, never wrong results
type Map struct {
	exec.Base
	OpName string
	In     stream.Schema
	// Outs defines the output attributes in order.
	Outs []MapAttr
	// Mode/Propagate as in Select.
	Mode      FeedbackMode
	Propagate bool

	responseLog
	out      stream.Schema
	attrMap  core.AttrMap
	identity bool // every output attr carried in input order: no copy
	guards   *core.GuardTable

	// Counters are atomics so /metrics can scrape them while the plan runs.
	nIn, nOut, suppressed, punctDropped atomic.Int64
	fb                                  fbCounters
}

// MapAttr describes one output attribute of a Map.
type MapAttr struct {
	Name string
	// From names the carried input attribute; empty means computed.
	From string
	// Kind is required for computed attributes (ignored when carried).
	Kind stream.Kind
	// Fn computes the value for computed attributes.
	Fn func(t stream.Tuple) stream.Value
}

// Carry builds a carried output attribute (same name).
func Carry(name string) MapAttr { return MapAttr{Name: name, From: name} }

// CarryAs builds a carried output attribute under a new name.
func CarryAs(name, from string) MapAttr { return MapAttr{Name: name, From: from} }

// Compute builds a computed output attribute.
func Compute(name string, kind stream.Kind, fn func(stream.Tuple) stream.Value) MapAttr {
	return MapAttr{Name: name, Kind: kind, Fn: fn}
}

// Name implements exec.Operator.
func (m *Map) Name() string {
	if m.OpName != "" {
		return m.OpName
	}
	return "map"
}

// InSchemas implements exec.Operator.
func (m *Map) InSchemas() []stream.Schema { return []stream.Schema{m.In} }

// OutSchemas implements exec.Operator.
func (m *Map) OutSchemas() []stream.Schema {
	if m.out.Arity() == 0 {
		m.mustInit()
	}
	return []stream.Schema{m.out}
}

func (m *Map) mustInit() {
	if err := m.Init(); err != nil {
		panic(err.Error())
	}
}

// Init resolves the output attribute list against the input schema,
// reporting misconfiguration (unknown From, missing Fn, bad output schema)
// as an error instead of the panic OutSchemas/Open would raise. plan.Builder
// calls it at wiring time so the failure surfaces through Builder.Err().
// Calling Init again is a cheap no-op once it has succeeded.
func (m *Map) Init() error {
	if m.out.Arity() > 0 {
		return nil
	}
	fields := make([]stream.Field, len(m.Outs))
	toInput := make([]int, len(m.Outs))
	for i, o := range m.Outs {
		if o.From != "" {
			src := m.In.Index(o.From)
			if src < 0 {
				return fmt.Errorf("op: map %q: no input attribute %q", m.Name(), o.From)
			}
			fields[i] = stream.F(o.Name, m.In.Field(src).Kind)
			toInput[i] = src
			continue
		}
		if o.Fn == nil {
			return fmt.Errorf("op: map %q: attribute %q is neither carried nor computed", m.Name(), o.Name)
		}
		fields[i] = stream.F(o.Name, o.Kind)
		toInput[i] = -1
	}
	out, err := stream.NewSchema(fields...)
	if err != nil {
		return fmt.Errorf("op: map %q: %v", m.Name(), err)
	}
	m.out = out
	m.identity = identityMapping(toInput, m.In.Arity())
	m.attrMap = core.AttrMap{InputArity: m.In.Arity(), ToInput: toInput}
	return nil
}

// Open implements exec.Operator.
func (m *Map) Open(exec.Context) error {
	if m.out.Arity() == 0 {
		m.mustInit()
	}
	m.guards = core.NewGuardTable(m.out.Arity())
	return nil
}

// ProcessTuple implements exec.Operator.
//
//pace:hotpath
func (m *Map) ProcessTuple(_ int, t stream.Tuple, ctx exec.Context) error {
	m.nIn.Add(1)
	// Carry-all maps (pure renames) share the input's Values: safe
	// because tuples are immutable after emit (DESIGN.md §2.1).
	out := t
	if !m.identity {
		vals := make([]stream.Value, len(m.Outs)) //pace:allow-alloc non-identity maps mint a new tuple whose values downstream owns
		for i, o := range m.Outs {
			if src := m.attrMap.ToInput[i]; src >= 0 {
				vals[i] = t.At(src)
			} else {
				vals[i] = o.Fn(t)
			}
		}
		out = stream.Tuple{Values: vals, Seq: t.Seq}
	}
	if m.Mode != FeedbackIgnore && m.guards.Suppress(out) {
		m.suppressed.Add(1)
		return nil
	}
	m.nOut.Add(1)
	ctx.Emit(out)
	return nil
}

// ProcessPunct implements exec.Operator: punctuation relays iff its bound
// attributes are all carried.
func (m *Map) ProcessPunct(_ int, e punct.Embedded, ctx exec.Context) error {
	outputOf := func(in int) int {
		for o, src := range m.attrMap.ToInput {
			if src == in {
				return o
			}
		}
		return -1
	}
	if projected, ok := RelayPunct(e.Pattern, outputOf, m.out.Arity()); ok {
		pe := punct.NewEmbedded(projected)
		m.guards.ObservePunct(pe)
		ctx.EmitPunct(pe)
	} else {
		m.punctDropped.Add(1)
	}
	return nil
}

// ProcessFeedback implements exec.Operator.
func (m *Map) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	m.fb.received.Add(1)
	resp := core.Response{Feedback: f}
	if f.Intent == core.Assumed && m.Mode != FeedbackIgnore {
		m.guards.Install(f)
		m.fb.exploited.Add(1)
		resp.Actions = append(resp.Actions, core.ActGuardInput, core.ActGuardOutput)
	}
	if m.Propagate {
		if prop := core.SafePropagation(f.Pattern, m.attrMap); prop.OK {
			relayed := f.Relayed(prop.Pattern)
			ctx.SendFeedback(0, relayed)
			m.fb.forwarded.Add(1)
			resp.Actions = append(resp.Actions, core.ActPropagate)
			resp.Propagated = []*core.Feedback{&relayed}
		} else {
			resp.Note = "propagation refused: " + prop.Reason
		}
	}
	if len(resp.Actions) == 0 {
		resp.Actions = []core.Action{core.ActNone}
	}
	m.logResponse(resp)
	return nil
}

// Stats reports tuple accounting.
func (m *Map) Stats() (in, out, suppressed int64) {
	return m.nIn.Load(), m.nOut.Load(), m.suppressed.Load()
}

// PunctDropped reports punctuation consumed here because its bound
// attributes did not survive the attribute mapping.
func (m *Map) PunctDropped() int64 { return m.punctDropped.Load() }

// SuppressedTuples reports guard suppressions, scrape-safe.
func (m *Map) SuppressedTuples() int64 { return m.suppressed.Load() }

// TelemetryVars implements telemetry.VarExporter.
func (m *Map) TelemetryVars() []telemetry.Var {
	vars := append(tupleVars(&m.nIn, &m.nOut, &m.suppressed), m.fb.vars()...)
	return append(vars, telemetry.Var{
		Name: "pace_op_punct_dropped_total", Help: "Punctuations consumed because bound attributes were dropped.",
		Kind: telemetry.Counter, Value: m.punctDropped.Load,
	})
}
