package op

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/stream"
)

// Split and Merge are the exchange operators of a partitioned parallel
// plan: Split hash- (or round-robin-) partitions one stream across N
// output ports, each feeding a replica of the enclosed sub-plan, and
// Merge recombines the N replica outputs into one stream. Together they
// let a stateful operator like Aggregate run N-way data-parallel while
// preserving the paper's two stream-progress contracts:
//
//   - embedded punctuation may only be forwarded past the Merge once
//     EVERY live partition has emitted punctuation implying it
//     (punctuation alignment — a partition that has not covered the
//     pattern may still produce matching tuples);
//   - feedback punctuation must reach every partition that could produce
//     tuples in the described subset. Merge fans feedback to all
//     partitions (assumed feedback is advisory, so over-delivery is
//     safe: a partition that never produces matching tuples simply has
//     nothing to suppress). Split routes feedback back toward the true
//     producer: a pattern that pins the partition key is forwarded
//     immediately, anything else waits for every partition to assert a
//     covering pattern (the Duplicate unanimity rule) so upstream
//     suppression can never starve a partition that still wants the
//     subset.

// ---------------------------------------------------------------------------
// Split.
// ---------------------------------------------------------------------------

// Split partitions its input across N outputs. With Key set, tuples are
// routed by hash of the key attributes (all tuples of one key group reach
// the same partition, as a partitioned Aggregate or Join requires); with
// no Key, tuples round-robin across outputs (keyless stages such as a
// parallel filter).
//
// Embedded punctuation is broadcast to every output: "no more tuples
// matching p in the stream" holds a fortiori for each partition's
// substream, whatever the routing.
type Split struct {
	exec.Base
	OpName string
	Schema stream.Schema
	N      int
	// Key lists the partitioning attribute indices; empty selects
	// round-robin routing.
	Key []int
	// Mode enables per-partition exploitation of assumed feedback;
	// Propagate relays exploitable feedback upstream.
	Mode      FeedbackMode
	Propagate bool

	responseLog
	perOut []*core.GuardTable // assumed feedback asserted by each partition
	// perOutDemand records demanded patterns per partition (pattern
	// storage only — never used to suppress), so an unpinned demand can
	// relay upstream once every partition has demanded a covering subset.
	perOutDemand []*core.GuardTable
	propagated   map[string]bool // intent+pattern strings already relayed upstream
	rr           int             // round-robin cursor
	keyScratch   []stream.Value  // backs routing probes for key-pinned feedback

	// subScratch backs the batch path's per-port sub-batches; batchScratch
	// backs ProcessTupleBatch's item unwrapping. Reused across batches,
	// transient, never checkpointed.
	subScratch   [][]stream.Tuple
	batchScratch []stream.Tuple

	in, suppressed int64
	outPer         []int64
}

// Name implements exec.Operator.
func (s *Split) Name() string {
	if s.OpName != "" {
		return s.OpName
	}
	return "split"
}

func (s *Split) n() int {
	if s.N <= 0 {
		return 2
	}
	return s.N
}

// InSchemas implements exec.Operator.
func (s *Split) InSchemas() []stream.Schema { return []stream.Schema{s.Schema} }

// OutSchemas implements exec.Operator.
func (s *Split) OutSchemas() []stream.Schema {
	out := make([]stream.Schema, s.n())
	for i := range out {
		out[i] = s.Schema
	}
	return out
}

// Open implements exec.Operator.
func (s *Split) Open(exec.Context) error {
	for _, k := range s.Key {
		if k < 0 || k >= s.Schema.Arity() {
			return fmt.Errorf("op: split %q: key attribute %d out of range for %s", s.Name(), k, s.Schema)
		}
	}
	s.perOut = make([]*core.GuardTable, s.n())
	s.perOutDemand = make([]*core.GuardTable, s.n())
	for i := range s.perOut {
		s.perOut[i] = core.NewGuardTable(s.Schema.Arity())
		s.perOutDemand[i] = core.NewGuardTable(s.Schema.Arity())
	}
	s.propagated = map[string]bool{}
	s.outPer = make([]int64, s.n())
	return nil
}

// route picks the destination partition for a tuple.
func (s *Split) route(t stream.Tuple) int {
	if len(s.Key) > 0 {
		return int(t.Hash(s.Key) % uint64(s.n()))
	}
	d := s.rr
	s.rr++
	if s.rr == s.n() {
		s.rr = 0
	}
	return d
}

// ProcessTuple implements exec.Operator: route by key hash (or round
// robin) and emit to exactly one partition. A tuple whose destination
// partition has asserted covering assumed feedback is suppressed here —
// only that partition would ever have seen it, so no unanimity is needed
// (contrast Duplicate, whose outputs must stay identical).
func (s *Split) ProcessTuple(input int, t stream.Tuple, ctx exec.Context) error {
	if input != 0 {
		return fmt.Errorf("op: split %q: tuple on unexpected input %d", s.Name(), input)
	}
	s.in++
	d := s.route(t)
	if s.Mode != FeedbackIgnore && s.perOut[d].Suppress(t) {
		s.suppressed++
		return nil
	}
	s.outPer[d]++
	ctx.EmitTo(d, t)
	return nil
}

// ProcessPunct implements exec.Operator: broadcast to every partition (the
// whole-stream guarantee holds for each substream) and drive per-partition
// guard expiration.
func (s *Split) ProcessPunct(input int, e punct.Embedded, ctx exec.Context) error {
	if input != 0 {
		return fmt.Errorf("op: split %q: punctuation on unexpected input %d", s.Name(), input)
	}
	for i := 0; i < s.n(); i++ {
		s.perOut[i].ObservePunct(e)
		ctx.EmitPunctTo(i, e)
	}
	return nil
}

// ApplyTupleBatch implements exec.TupleBatchApplier: the run is routed into
// per-port sub-batches (per-tuple routing identical to ProcessTuple — the
// round-robin cursor advances per tuple, destination guards probe per tuple)
// and each non-empty sub-batch is emitted with one EmitBatchTo call. Order
// within each output port is preserved; cross-port interleaving differs from
// the sequential path, which no consumer can observe — each port feeds its
// own edge, and punctuation is processed only between batch runs, so the
// tuples-before-punct order per port is intact.
func (s *Split) ApplyTupleBatch(input int, ts []stream.Tuple, ctx exec.Context) error {
	if input != 0 {
		return fmt.Errorf("op: split %q: tuple on unexpected input %d", s.Name(), input)
	}
	n := s.n()
	if len(s.subScratch) != n {
		s.subScratch = make([][]stream.Tuple, n)
	}
	sub := s.subScratch
	for d := range sub {
		sub[d] = sub[d][:0]
	}
	s.in += int64(len(ts))
	guard := s.Mode != FeedbackIgnore
	for i := range ts {
		t := ts[i]
		d := s.route(t)
		if guard && s.perOut[d].Active() > 0 && s.perOut[d].Suppress(t) {
			s.suppressed++
			continue
		}
		sub[d] = append(sub[d], t)
	}
	be, batched := ctx.(exec.BatchEmitterTo)
	for d := 0; d < n; d++ {
		run := sub[d]
		if len(run) == 0 {
			continue
		}
		s.outPer[d] += int64(len(run))
		if batched {
			be.EmitBatchTo(d, run)
		} else {
			for i := range run {
				ctx.EmitTo(d, run[i])
			}
		}
	}
	return nil
}

// ProcessTupleBatch implements exec.TupleBatcher by unwrapping the run into
// a reused scratch slice and taking the batch-apply path, so unfused plans
// partition whole pages per call too.
func (s *Split) ProcessTupleBatch(input int, items []queue.Item, ctx exec.Context) error {
	buf := s.batchScratch[:0]
	for i := range items {
		buf = append(buf, items[i].Tuple)
	}
	s.batchScratch = buf
	return s.ApplyTupleBatch(input, buf, ctx)
}

// routesOnlyTo reports the single partition every tuple matching p would be
// routed to, or -1 when the pattern does not pin the routing: the split is
// keyed and p binds every key attribute with an equality.
func (s *Split) routesOnlyTo(p punct.Pattern) int {
	if len(s.Key) == 0 || p.Arity() != s.Schema.Arity() {
		return -1
	}
	if cap(s.keyScratch) < s.Schema.Arity() {
		s.keyScratch = make([]stream.Value, s.Schema.Arity())
	}
	vals := s.keyScratch[:s.Schema.Arity()]
	for _, k := range s.Key {
		pr := p.Pred(k)
		if pr.Op != punct.EQ {
			return -1
		}
		vals[k] = pr.Val
	}
	return int(stream.Tuple{Values: vals}.Hash(s.Key) % uint64(s.n()))
}

// ProcessFeedback implements exec.Operator. Desired feedback (pure
// prioritization — never changes the result set) is relayed upstream
// immediately. Assumed feedback installs a guard for the asserting
// partition and is relayed upstream once it is key-pinned to that
// partition or unanimously asserted by all partitions. Demanded feedback
// follows the same pinned-or-unanimous rule (an over-delivered demand
// would push early partials at partitions that did not ask; once every
// partition has demanded a covering subset — which a Merge fan-out
// produces naturally — the relay is exact).
func (s *Split) ProcessFeedback(output int, f core.Feedback, ctx exec.Context) error {
	if output < 0 || output >= s.n() {
		return fmt.Errorf("op: split %q: feedback on unexpected output %d (have %d partitions; check plan wiring)", s.Name(), output, s.n())
	}
	resp := core.Response{Feedback: f}
	defer func() {
		if len(resp.Actions) == 0 {
			resp.Actions = []core.Action{core.ActNone}
		}
		s.logResponse(resp)
	}()
	relay := func() {
		key := f.Intent.Sigil() + f.Pattern.String()
		if !s.Propagate || s.propagated[key] {
			return
		}
		s.propagated[key] = true
		relayed := f.Relayed(f.Pattern)
		ctx.SendFeedback(0, relayed)
		resp.Actions = append(resp.Actions, core.ActPropagate)
		resp.Propagated = []*core.Feedback{&relayed}
	}

	switch f.Intent {
	case core.Desired:
		relay()
		return nil
	case core.Demanded:
		s.perOutDemand[output].Install(f)
		if s.routesOnlyTo(f.Pattern) == output || coveredByAllOthers(s.perOutDemand, output, f.Pattern) {
			relay()
		} else {
			resp.Note = "demand neither key-pinned nor demanded by all partitions; withheld upstream"
		}
		return nil
	}

	// Assumed.
	if s.Mode == FeedbackIgnore {
		return nil
	}
	s.perOut[output].Install(f)
	resp.Actions = append(resp.Actions, core.ActGuardInput)
	if s.routesOnlyTo(f.Pattern) == output {
		relay()
		return nil
	}
	// Unanimity: the pattern is safe to push past the split only once every
	// partition has asserted a superset of it (tuples matching f could
	// route anywhere).
	if !coveredByAllOthers(s.perOut, output, f.Pattern) {
		resp.Note = "awaiting covering feedback from all partitions (pattern does not pin the key)"
		return nil
	}
	relay()
	return nil
}

// Stats reports tuple accounting: total in, per-partition out, suppressed.
func (s *Split) Stats() (in int64, outPer []int64, suppressed int64) {
	return s.in, append([]int64(nil), s.outPer...), s.suppressed
}

// ---------------------------------------------------------------------------
// Merge.
// ---------------------------------------------------------------------------

// Merge combines K same-schema partition streams into one. Tuples pass
// through in arrival order; embedded punctuation is ALIGNED: a pattern is
// emitted downstream only once every live input has asserted punctuation
// implying it (an input at EOS covers everything). Two representations
// back the alignment so the steady-state path performs no allocation:
//
//   - the watermark fast path handles single-attribute ≤/< punctuation
//     (the dominant progress shape) with per-(input, attribute) int64
//     frontiers and emits the min across live inputs when it advances;
//   - arbitrary patterns go through a small pending list checked with
//     punct.Pattern.Implies against each input's asserted set.
//
// Feedback fans out to every input: the downstream consumer asserted the
// pattern over the whole merged stream, so each partition's share of it is
// unwanted; partitions that could never produce it are over-delivered,
// which assumed feedback's advisory semantics make safe (§4.2).
type Merge struct {
	exec.Base
	OpName string
	Schema stream.Schema
	K      int
	// Mode/Propagate as in Union: Merge itself is stateless so its only
	// exploitation is an input guard.
	Mode      FeedbackMode
	Propagate bool

	responseLog
	guards *core.GuardTable
	ins    []mergeInput
	// wmOut/wmOutSet track the merged (aligned) frontier per attribute so
	// non-advancing arrivals emit nothing.
	wmOut    []int64
	wmOutSet []bool
	// pending holds generic (non-watermark) patterns not yet covered by
	// every live input.
	pending []punct.Pattern

	in, out, suppressed, aligned int64
}

// mergeInput is per-input alignment state.
type mergeInput struct {
	eos bool
	// wm/wmSet hold the inclusive per-attribute watermark this input has
	// punctuated (fast path).
	wm    []int64
	wmSet []bool
	// asserted holds generic punctuation patterns this input has emitted,
	// with subsumed entries replaced in place.
	asserted []punct.Pattern
}

// Name implements exec.Operator.
func (m *Merge) Name() string {
	if m.OpName != "" {
		return m.OpName
	}
	return "merge"
}

func (m *Merge) k() int {
	if m.K <= 0 {
		return 2
	}
	return m.K
}

// InSchemas implements exec.Operator.
func (m *Merge) InSchemas() []stream.Schema {
	in := make([]stream.Schema, m.k())
	for i := range in {
		in[i] = m.Schema
	}
	return in
}

// OutSchemas implements exec.Operator.
func (m *Merge) OutSchemas() []stream.Schema { return []stream.Schema{m.Schema} }

// Open implements exec.Operator.
func (m *Merge) Open(exec.Context) error {
	arity := m.Schema.Arity()
	m.guards = core.NewGuardTable(arity)
	m.ins = make([]mergeInput, m.k())
	for i := range m.ins {
		m.ins[i] = mergeInput{wm: make([]int64, arity), wmSet: make([]bool, arity)}
	}
	m.wmOut = make([]int64, arity)
	m.wmOutSet = make([]bool, arity)
	return nil
}

// ProcessTuple implements exec.Operator: pass-through, with optional guard
// suppression of subsets the downstream consumer has disclaimed.
func (m *Merge) ProcessTuple(input int, t stream.Tuple, ctx exec.Context) error {
	if input < 0 || input >= m.k() {
		return fmt.Errorf("op: merge %q: tuple on unexpected input %d", m.Name(), input)
	}
	m.in++
	if m.Mode != FeedbackIgnore && m.guards.Suppress(t) {
		m.suppressed++
		return nil
	}
	m.out++
	ctx.Emit(t)
	return nil
}

// watermarkShape decomposes a single-attribute ≤/< punctuation over an
// integer-ordered domain into (attribute, inclusive bound). It allocates
// nothing (contrast Pattern.Bound).
func watermarkShape(p punct.Pattern) (attr int, incl int64, ok bool) {
	attr = -1
	for i := 0; i < p.Arity(); i++ {
		pr := p.Pred(i)
		if pr.IsWild() {
			continue
		}
		if attr >= 0 {
			return -1, 0, false // more than one bound attribute
		}
		if pr.Val.Kind != stream.KindInt && pr.Val.Kind != stream.KindTime {
			return -1, 0, false
		}
		switch pr.Op {
		case punct.LE:
			incl = pr.Val.I
		case punct.LT:
			incl = pr.Val.I - 1
		default:
			return -1, 0, false
		}
		attr = i
	}
	if attr < 0 {
		return -1, 0, false
	}
	return attr, incl, true
}

// attrValue rebuilds a value of the attribute's kind from the int64
// watermark domain.
func (m *Merge) attrValue(attr int, v int64) stream.Value {
	if m.Schema.Field(attr).Kind == stream.KindTime {
		return stream.TimeMicros(v)
	}
	return stream.Int(v)
}

// ProcessPunct implements exec.Operator: record the input's guarantee and
// emit it downstream only once every live input covers it.
func (m *Merge) ProcessPunct(input int, e punct.Embedded, ctx exec.Context) error {
	if input < 0 || input >= m.k() {
		return fmt.Errorf("op: merge %q: punctuation on unexpected input %d", m.Name(), input)
	}
	if e.Pattern.Arity() != m.Schema.Arity() {
		return nil // not a pattern over this stream; consume it
	}
	if attr, incl, ok := watermarkShape(e.Pattern); ok {
		in := &m.ins[input]
		if !in.wmSet[attr] || incl > in.wm[attr] {
			in.wmSet[attr] = true
			in.wm[attr] = incl
			in.pruneAsserted(m)
		}
		m.advanceWatermark(attr, ctx)
		m.recheckPending(ctx)
		return nil
	}
	in := &m.ins[input]
	if !in.wmCovers(e.Pattern, m) {
		// The input's own frontier already covering the pattern makes
		// storing it redundant (covers checks the frontier first).
		in.assert(e.Pattern)
	}
	if !m.pendingHas(e.Pattern) {
		m.pending = append(m.pending, e.Pattern)
	}
	m.recheckPending(ctx)
	return nil
}

// assert records a generic punctuation pattern, replacing any entry the new
// pattern subsumes (q ⇒ p means p's no-more guarantee covers q's) and
// dropping the new pattern when an existing entry already covers it.
func (in *mergeInput) assert(p punct.Pattern) {
	for i, q := range in.asserted {
		if p.Implies(q) {
			return // existing guarantee already covers p
		}
		if q.Implies(p) {
			in.asserted[i] = p // p covers strictly more; replace in place
			return
		}
	}
	in.asserted = append(in.asserted, p)
}

// wmCovers reports whether this input's watermark frontier alone covers
// p: p ⇒ [*,…,≤wm@a,…,*] iff p's predicate at a implies ≤wm, and one
// covered conjunct excludes the whole tuple.
func (in *mergeInput) wmCovers(p punct.Pattern, m *Merge) bool {
	for a := 0; a < p.Arity(); a++ {
		if in.wmSet[a] && p.Pred(a).Implies(punct.Le(m.attrValue(a, in.wm[a]))) {
			return true
		}
	}
	return false
}

// covers reports whether this input's accumulated guarantees promise that
// no more tuples matching p will arrive from it.
func (in *mergeInput) covers(p punct.Pattern, m *Merge) bool {
	if in.eos {
		return true
	}
	if in.wmCovers(p, m) {
		return true
	}
	for _, q := range in.asserted {
		if p.Implies(q) {
			return true
		}
	}
	return false
}

// pruneAsserted drops asserted patterns the input's own watermark frontier
// now subsumes: anything they could cover, the frontier covers too, so the
// generic list stays bounded on long-running streams whenever patterns
// carry a bound on a punctuated (delimited, §4.4) attribute. Patterns
// binding only never-punctuated attributes accumulate — the same inherent
// growth as punct.Scheme's closed-value sets.
func (in *mergeInput) pruneAsserted(m *Merge) {
	if len(in.asserted) == 0 {
		return
	}
	kept := in.asserted[:0]
	for _, q := range in.asserted {
		if !in.wmCovers(q, m) {
			kept = append(kept, q)
		}
	}
	for i := len(kept); i < len(in.asserted); i++ {
		in.asserted[i] = punct.Pattern{} // release dropped patterns to the GC
	}
	in.asserted = kept
}

// coveredByAll reports whether every live input covers p.
func (m *Merge) coveredByAll(p punct.Pattern) bool {
	for i := range m.ins {
		if !m.ins[i].covers(p, m) {
			return false
		}
	}
	return true
}

// advanceWatermark folds per-input frontiers on one attribute and emits the
// aligned minimum when it advances. Inputs at EOS no longer constrain it;
// a live input that has never punctuated the attribute blocks alignment
// (it may still produce arbitrarily old tuples).
func (m *Merge) advanceWatermark(attr int, ctx exec.Context) {
	var minv int64
	first := true
	for i := range m.ins {
		in := &m.ins[i]
		if in.eos {
			continue
		}
		if !in.wmSet[attr] {
			return
		}
		if first || in.wm[attr] < minv {
			minv = in.wm[attr]
			first = false
		}
	}
	if first {
		return // every input at EOS: nothing left to assert
	}
	if m.wmOutSet[attr] && minv <= m.wmOut[attr] {
		return
	}
	m.wmOutSet[attr] = true
	m.wmOut[attr] = minv
	m.emitAligned(punct.OnAttr(m.Schema.Arity(), attr, punct.Le(m.attrValue(attr, minv))), ctx)
}

// outCovers reports whether the already-emitted merged frontier subsumes
// p, making a separate emission redundant.
func (m *Merge) outCovers(p punct.Pattern) bool {
	for a := 0; a < p.Arity(); a++ {
		if m.wmOutSet[a] && p.Pred(a).Implies(punct.Le(m.attrValue(a, m.wmOut[a]))) {
			return true
		}
	}
	return false
}

// recheckPending re-tests pending generic patterns, emitting the newly
// covered ones in arrival order and dropping ones the emitted frontier
// already subsumes (late or duplicate punctuation stays bounded).
func (m *Merge) recheckPending(ctx exec.Context) {
	if len(m.pending) == 0 {
		return
	}
	kept := m.pending[:0]
	for _, p := range m.pending {
		switch {
		case m.outCovers(p):
			// Already promised downstream; drop silently.
		case m.coveredByAll(p):
			m.emitAligned(p, ctx)
		default:
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = punct.Pattern{}
	}
	m.pending = kept
}

func (m *Merge) pendingHas(p punct.Pattern) bool {
	for _, q := range m.pending {
		if p.Equal(q) {
			return true
		}
	}
	return false
}

// emitAligned forwards an aligned pattern downstream and lets it expire
// matching guards (the merged stream now promises the subset complete).
func (m *Merge) emitAligned(p punct.Pattern, ctx exec.Context) {
	e := punct.NewEmbedded(p)
	m.guards.ObservePunct(e)
	m.aligned++
	ctx.EmitPunct(e)
}

// ProcessEOS implements exec.Operator: the ended input stops constraining
// alignment, which may release watermarks and pending patterns.
func (m *Merge) ProcessEOS(input int, ctx exec.Context) error {
	if input < 0 || input >= m.k() {
		return fmt.Errorf("op: merge %q: EOS on unexpected input %d", m.Name(), input)
	}
	m.ins[input].eos = true
	for a := 0; a < m.Schema.Arity(); a++ {
		m.advanceWatermark(a, ctx)
	}
	m.recheckPending(ctx)
	return nil
}

// ProcessFeedback implements exec.Operator: exploit locally (input guard)
// and fan the feedback to every partition. The issuer asserted the pattern
// over the whole merged stream, so each partition's share of the subset is
// covered; partitions that could never produce it receive an over-delivery
// that advisory semantics make harmless.
func (m *Merge) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	resp := core.Response{Feedback: f}
	if f.Intent == core.Assumed && m.Mode != FeedbackIgnore {
		m.guards.Install(f)
		resp.Actions = append(resp.Actions, core.ActGuardInput)
	}
	if m.Propagate {
		relayed := f.Relayed(f.Pattern)
		resp.Propagated = make([]*core.Feedback, m.k())
		for i := 0; i < m.k(); i++ {
			ctx.SendFeedback(i, relayed)
			resp.Propagated[i] = &relayed
		}
		resp.Actions = append(resp.Actions, core.ActPropagate)
	}
	if len(resp.Actions) == 0 {
		resp.Actions = []core.Action{core.ActNone}
	}
	m.logResponse(resp)
	return nil
}

// Stats reports tuple and alignment accounting.
func (m *Merge) Stats() (in, out, suppressed, aligned int64) {
	return m.in, m.out, m.suppressed, m.aligned
}

// PendingAlignments reports how many generic patterns await coverage
// (diagnostics; the watermark fast path never pends).
func (m *Merge) PendingAlignments() int { return len(m.pending) }
