package op

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

// saveLoad round-trips an operator's state through the snapshot codec into
// a freshly opened twin. It mimics the runtime sequence exactly: SaveState
// on the live operator, Open on the twin, then LoadState.
func saveLoad(t *testing.T, from, to snapshot.Stater, openTo func() error) {
	t.Helper()
	enc := snapshot.NewEncoder()
	if err := from.SaveState(enc); err != nil {
		t.Fatalf("save: %v", err)
	}
	blob, err := enc.Bytes()
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := openTo(); err != nil {
		t.Fatalf("open twin: %v", err)
	}
	dec := snapshot.NewDecoder(blob)
	if err := to.LoadState(dec); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := dec.Err(); err != nil {
		t.Fatalf("load: %v", err)
	}
	if dec.Remaining() != 0 {
		t.Fatalf("load left %d bytes unread", dec.Remaining())
	}
}

// TestAggregateStateRoundTrip interrupts an aggregate mid-window and checks
// the restored twin finishes the stream with byte-identical output.
func TestAggregateStateRoundTrip(t *testing.T) {
	feedFirst := func(h *exec.Harness) {
		h.Tuples(
			traffic(1, 1, 10*1_000_000, 40),
			traffic(2, 1, 20*1_000_000, 30),
			traffic(1, 2, 30*1_000_000, 60),
		)
	}
	feedRest := func(h *exec.Harness) {
		h.Tuples(traffic(2, 2, 40*1_000_000, 50))
		h.Punct(0, tsPunct(2*minute))
	}

	// Uninterrupted reference.
	ref := minuteAvg(FeedbackExploit, false)
	hr := exec.NewHarness(ref)
	feedFirst(hr)
	feedRest(hr)

	// Interrupted: save after the first batch, restore into a twin, finish.
	a1 := minuteAvg(FeedbackExploit, false)
	h1 := exec.NewHarness(a1)
	feedFirst(h1)
	a2 := minuteAvg(FeedbackExploit, false)
	h2 := exec.NewHarness(a2) // calls Open
	saveLoad(t, a1, a2, func() error { return h2.Err() })
	feedRest(h2)

	want, got := hr.OutTuples(0), h2.OutTuples(0)
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("restored run emitted %d results, reference %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("result %d: restored %v, reference %v", i, got[i], want[i])
		}
	}
	if a2.Stats().In != a1.Stats().In+1 {
		t.Fatalf("input accounting lost: %d after restore", a2.Stats().In)
	}
}

// TestAggregateRestoreDropsAssumedState pins the recovery-time state
// purge: in guard-output mode the live aggregate keeps folding a
// disclaimed group (F1 keeps state, suppresses only emission), but the
// restored twin drops it — the paper's state-purging argument applied at
// recovery.
func TestAggregateRestoreDropsAssumedState(t *testing.T) {
	a1 := minuteAvg(FeedbackGuardOutput, false)
	h1 := exec.NewHarness(a1)
	h1.Tuples(
		traffic(1, 1, 10*1_000_000, 40),
		traffic(2, 1, 20*1_000_000, 30),
	)
	// ¬[segment=2, *, *] over the output schema.
	h1.Feedback(0, core.NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(2)))))
	if h1.Err() != nil {
		t.Fatal(h1.Err())
	}
	if got := a1.Stats().OpenGroups; got != 2 {
		t.Fatalf("guard-output mode must retain state; open groups = %d", got)
	}

	a2 := minuteAvg(FeedbackGuardOutput, false)
	h2 := exec.NewHarness(a2)
	saveLoad(t, a1, a2, func() error { return h2.Err() })
	if got := a2.Stats().OpenGroups; got != 1 {
		t.Fatalf("restore must drop the disclaimed group; open groups = %d", got)
	}
	h2.Punct(0, tsPunct(2*minute))
	for _, tp := range h2.OutTuples(0) {
		if tp.At(0).AsInt() == 2 {
			t.Fatalf("disclaimed segment emitted after restore: %v", tp)
		}
	}
}

func testJoin(mode FeedbackMode) *Join {
	return &Join{
		OpName: "j", Left: trafficSchema, Right: trafficSchema,
		LeftKeys: []int{0}, RightKeys: []int{0}, LeftTs: 2, RightTs: 2,
		Mode: mode,
	}
}

// TestJoinStateRoundTrip interrupts a symmetric hash join with both tables
// populated and checks the twin joins the remaining stream identically.
func TestJoinStateRoundTrip(t *testing.T) {
	feedFirst := func(h *exec.Harness) {
		h.Tuple(0, traffic(1, 1, 10, 40))
		h.Tuple(0, traffic(2, 1, 20, 30))
		h.Tuple(1, traffic(1, 9, 15, 70))
	}
	feedRest := func(h *exec.Harness) {
		h.Tuple(1, traffic(2, 8, 25, 75)) // partners the buffered left 2
		h.Tuple(0, traffic(1, 3, 30, 45)) // partners the buffered right 1
		h.Punct(0, tsPunct(100))
		h.Punct(1, tsPunct(100))
	}

	ref := testJoin(FeedbackExploit)
	hr := exec.NewHarness(ref)
	feedFirst(hr)
	feedRest(hr)

	j1 := testJoin(FeedbackExploit)
	h1 := exec.NewHarness(j1)
	feedFirst(h1)
	j2 := testJoin(FeedbackExploit)
	h2 := exec.NewHarness(j2)
	saveLoad(t, j1, j2, func() error { return h2.Err() })
	feedRest(h2)

	// The interrupted run's output is what it emitted before the cut plus
	// what the twin emits after it.
	want := hr.OutTuples(0)
	got := append(h1.OutTuples(0), h2.OutTuples(0)...)
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("interrupted run emitted %d, reference %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("pair %d: restored %v, reference %v", i, got[i], want[i])
		}
	}
	if s := j2.Stats(); s.LeftEntries != 0 || s.RightEntries != 0 {
		t.Fatalf("punctuation must purge restored tables: %+v", s)
	}
}

// TestJoinRestoreDropsGuardedEntries: hash-table entries covered by a
// restored input guard are dropped at load.
func TestJoinRestoreDropsGuardedEntries(t *testing.T) {
	j1 := testJoin(FeedbackExploit)
	h1 := exec.NewHarness(j1)
	h1.Tuple(0, traffic(1, 1, 10, 40))
	h1.Tuple(0, traffic(2, 1, 20, 30))
	// Left-bound assumed feedback on the output: detector (a left
	// attribute) equals 1 → guards and purges the left side.
	outArity := j1.OutSchemas()[0].Arity()
	h1.Feedback(0, core.NewAssumed(punct.OnAttr(outArity, 1, punct.Eq(stream.Int(1)))))
	if h1.Err() != nil {
		t.Fatal(h1.Err())
	}

	j2 := testJoin(FeedbackExploit)
	h2 := exec.NewHarness(j2)
	saveLoad(t, j1, j2, func() error { return h2.Err() })
	if s := j2.Stats(); s.LeftEntries != 0 {
		t.Fatalf("restored left table keeps %d guarded entries", s.LeftEntries)
	}
	// New matching tuples stay suppressed by the restored guard.
	h2.Tuple(0, traffic(3, 1, 30, 50))
	h2.Tuple(1, traffic(3, 7, 31, 55))
	if got := h2.OutTuples(0); len(got) != 0 {
		t.Fatalf("restored guard must keep suppressing: %v", got)
	}
}

// TestPaceStateRoundTrip: a restored PACE keeps dropping tuples its
// pre-crash feedback disclaimed, instead of re-admitting them with a fresh
// watermark.
func TestPaceStateRoundTrip(t *testing.T) {
	mk := func() *Pace {
		return &Pace{OpName: "pace", Schema: trafficSchema, K: 2, TsAttr: 2,
			Tolerance: 1000, FeedbackEnabled: true}
	}
	p1 := mk()
	h1 := exec.NewHarness(p1)
	h1.Tuple(0, traffic(1, 1, 10_000, 50))
	h1.Tuple(1, traffic(1, 2, 500, 50)) // late: dropped, feedback produced
	if h1.Err() != nil {
		t.Fatal(h1.Err())
	}
	if p1.FeedbackSent() == 0 {
		t.Fatal("setup: no feedback produced")
	}

	p2 := mk()
	h2 := exec.NewHarness(p2)
	saveLoad(t, p1, p2, func() error { return h2.Err() })
	if hw, ok := p2.HighWatermark(); !ok || hw != 10_000 {
		t.Fatalf("high watermark lost: %d %v", hw, ok)
	}
	// A tuple older than hw−tolerance must still be dropped.
	h2.Tuple(0, traffic(1, 3, 600, 50))
	if got := h2.OutTuples(0); len(got) != 0 {
		t.Fatalf("restored pace re-admitted a late tuple: %v", got)
	}
	if st := p2.InputStats(); st[0].Dropped != 1 || st[1].Dropped != 1 {
		t.Fatalf("drop accounting: %+v", st)
	}
}

// TestImputeStateRoundTrip: the restored impute keeps skipping lookups for
// the disclaimed subset.
func TestImputeStateRoundTrip(t *testing.T) {
	mk := func() *Impute { return newTestImpute(FeedbackExploit) }
	im1 := mk()
	h1 := exec.NewHarness(im1)
	h1.Feedback(0, core.NewAssumed(punct.OnAttr(4, 2, punct.Lt(stream.TimeMicros(1000)))))
	if h1.Err() != nil {
		t.Fatal(h1.Err())
	}

	im2 := mk()
	h2 := exec.NewHarness(im2)
	saveLoad(t, im1, im2, func() error { return h2.Err() })
	h2.Tuple(0, trafficNull(1, 1, 500)) // disclaimed: no lookup, no output
	h2.Tuple(0, trafficNull(1, 1, 5000))
	if got := h2.OutTuples(0); len(got) != 1 {
		t.Fatalf("restored impute guard: %d outputs, want 1", len(got))
	}
	if _, skipped, _ := im2.Stats(); skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
}

// TestMergeStateRoundTrip: the restored merge still withholds punctuation a
// lagging partition has not covered, and remembers the frontier it already
// promised downstream.
func TestMergeStateRoundTrip(t *testing.T) {
	mk := func() *Merge {
		return &Merge{OpName: "m", Schema: trafficSchema, K: 3, Mode: FeedbackExploit}
	}
	m1 := mk()
	h1 := exec.NewHarness(m1)
	// Inputs 0 and 1 punctuate to 1000; input 2 lags at 200.
	h1.Punct(0, tsPunct(1000))
	h1.Punct(1, tsPunct(1000))
	h1.Punct(2, tsPunct(200))
	if h1.Err() != nil {
		t.Fatal(h1.Err())
	}
	if got := len(h1.OutPuncts(0)); got != 1 {
		t.Fatalf("aligned frontier emissions = %d, want 1 (ts≤200)", got)
	}

	m2 := mk()
	h2 := exec.NewHarness(m2)
	saveLoad(t, m1, m2, func() error { return h2.Err() })
	// Input 2 catching up to 1000 must release exactly the min frontier.
	h2.Punct(2, tsPunct(1000))
	ps := h2.OutPuncts(0)
	if len(ps) != 1 {
		t.Fatalf("restored merge emitted %d punctuations, want 1", len(ps))
	}
	want := punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(1000)))
	if !ps[0].Pattern.Equal(want) {
		t.Fatalf("restored merge emitted %v, want %v", ps[0], want)
	}
}

// TestSplitStateRoundTrip: per-partition guards and the round-robin cursor
// survive restore.
func TestSplitStateRoundTrip(t *testing.T) {
	mk := func() *Split {
		return &Split{OpName: "s", Schema: trafficSchema, N: 3, Mode: FeedbackExploit}
	}
	s1 := mk()
	h1 := exec.NewHarness(s1)
	h1.Tuple(0, traffic(1, 1, 10, 50)) // rr → out 0
	h1.Tuple(0, traffic(1, 1, 11, 50)) // rr → out 1
	h1.Feedback(2, assumedOnSegment(9))
	if h1.Err() != nil {
		t.Fatal(h1.Err())
	}

	s2 := mk()
	h2 := exec.NewHarness(s2)
	saveLoad(t, s1, s2, func() error { return h2.Err() })
	// Round-robin continues at partition 2.
	h2.Tuple(0, traffic(1, 1, 12, 50))
	if got := len(h2.Out(2)); got != 1 {
		t.Fatalf("round-robin cursor lost: partition 2 got %d items", got)
	}
	// Partition 2's restored guard suppresses its disclaimed subset.
	h2.Tuple(0, traffic(9, 1, 13, 50)) // rr → partition 0: passes (guard is per-destination)
	_, _, suppressed := s2.Stats()
	if suppressed != 0 {
		t.Fatalf("tuple for unguarded partition suppressed")
	}
}

// TestStateRoundTripRejectsFanChange: restoring into an operator with a
// different partition/input fan fails loudly.
func TestStateRoundTripRejectsFanChange(t *testing.T) {
	m1 := &Merge{OpName: "m", Schema: trafficSchema, K: 3}
	h1 := exec.NewHarness(m1)
	if h1.Err() != nil {
		t.Fatal(h1.Err())
	}
	enc := snapshot.NewEncoder()
	if err := m1.SaveState(enc); err != nil {
		t.Fatal(err)
	}
	blob, _ := enc.Bytes()

	m2 := &Merge{OpName: "m", Schema: trafficSchema, K: 2}
	h2 := exec.NewHarness(m2)
	if h2.Err() != nil {
		t.Fatal(h2.Err())
	}
	if err := m2.LoadState(snapshot.NewDecoder(blob)); err == nil {
		t.Fatal("fan change accepted")
	}
}

// aggregate window state sanity: restoring must not resurrect windows the
// reference run would have closed — covered by TestAggregateStateRoundTrip
// comparing full outputs; this test pins the purge-at-load counter.
func TestAggregateRestorePurgeCounter(t *testing.T) {
	a1 := minuteAvg(FeedbackGuardOutput, false)
	h1 := exec.NewHarness(a1)
	h1.Tuples(traffic(5, 1, 10*1_000_000, 40))
	h1.Feedback(0, core.NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(5)))))
	a2 := minuteAvg(FeedbackGuardOutput, false)
	h2 := exec.NewHarness(a2)
	saveLoad(t, a1, a2, func() error { return h2.Err() })
	if a2.Stats().Purged != a1.Stats().Purged+1 {
		t.Fatalf("restore purge not accounted: %d vs %d", a2.Stats().Purged, a1.Stats().Purged)
	}
}

// TestDuplicateStateRoundTrip pins the Stater the staterstate analyzer
// demanded: per-consumer assertions and the relayed-pattern set survive a
// restore, so the twin keeps exploiting unanimously-asserted feedback and
// does not relay the same pattern upstream a second time.
func TestDuplicateStateRoundTrip(t *testing.T) {
	d1 := &Duplicate{Schema: trafficSchema, N: 2, Mode: FeedbackExploit, Propagate: true}
	h1 := exec.NewHarness(d1)
	f := assumedOnSegment(3)
	h1.Feedback(0, f)
	h1.Feedback(1, f)
	h1.Tuple(0, traffic(3, 1, 10, 50)) // unanimous: suppressed, relayed upstream
	if len(h1.SentFeedback(0)) != 1 {
		t.Fatal("setup: unanimous feedback must propagate")
	}

	d2 := &Duplicate{Schema: trafficSchema, N: 2, Mode: FeedbackExploit, Propagate: true}
	h2 := exec.NewHarness(d2)
	saveLoad(t, d1, d2, func() error { return h2.Err() })

	// The restored twin keeps suppressing the disclaimed subset...
	h2.Tuple(0, traffic(3, 2, 20, 55))
	if len(h2.OutTuples(0)) != 0 || len(h2.OutTuples(1)) != 0 {
		t.Fatal("restored DUPLICATE lost its consumers' assertions")
	}
	// ...and does not relay the already-propagated pattern again.
	h2.Feedback(0, f)
	h2.Feedback(1, f)
	if len(h2.SentFeedback(0)) != 0 {
		t.Fatal("restored DUPLICATE re-relayed an already-propagated pattern")
	}
	in, _, suppressed := d2.Stats()
	if in != 2 || suppressed != 2 {
		t.Fatalf("counters not restored: in=%d suppressed=%d", in, suppressed)
	}
}

// TestPrioritizeStateRoundTrip pins the buffer-carrying Stater the
// staterstate analyzer demanded: tuples sitting in the reorder buffer at
// the cut — consumed from upstream, not yet emitted — reappear from the
// restored twin, and the installed guard keeps suppressing.
func TestPrioritizeStateRoundTrip(t *testing.T) {
	p1 := &Prioritize{Schema: trafficSchema, Mode: FeedbackExploit}
	h1 := exec.NewHarness(p1)
	h1.Tuple(0, traffic(1, 1, 10, 50)) // buffered
	h1.Tuple(0, traffic(2, 1, 20, 55)) // buffered
	h1.Feedback(0, assumedOnSegment(3))
	if len(h1.OutTuples(0)) != 0 {
		t.Fatal("setup: tuples must still be buffered")
	}

	p2 := &Prioritize{Schema: trafficSchema, Mode: FeedbackExploit}
	h2 := exec.NewHarness(p2)
	saveLoad(t, p1, p2, func() error { return h2.Err() })

	// The restored guard still suppresses the disclaimed subset.
	h2.Tuple(0, traffic(3, 1, 30, 60))
	// EOS drains the restored buffer: both pre-crash tuples must appear.
	h2.EOS(0)
	got := h2.OutTuples(0)
	if len(got) != 2 {
		t.Fatalf("restored buffer emitted %d tuples, want 2", len(got))
	}
	for i, want := range []int64{1, 2} {
		if got[i].At(0).AsInt() != want {
			t.Fatalf("tuple %d: segment %d, want %d", i, got[i].At(0).AsInt(), want)
		}
	}
	in, _, _, dropped := p2.Stats()
	if in != 3 || dropped != 1 {
		t.Fatalf("counters not restored: in=%d dropped=%d", in, dropped)
	}
}
