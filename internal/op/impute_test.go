package op

import (
	"testing"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

func newTestImpute(mode FeedbackMode) *Impute {
	store := archive.NewStore(1)
	store.SeedDiurnal(4, 2)
	return &Impute{
		Schema: trafficSchema, SegAttr: 0, DetAttr: 1, TsAttr: 2, SpeedAttr: 3,
		Store: store, Mode: mode,
	}
}

func TestImputeFillsNulls(t *testing.T) {
	im := newTestImpute(FeedbackIgnore)
	h := exec.NewHarness(im)
	h.Tuple(0, trafficNull(1, 1, 8*3600*1_000_000)) // 8am: rush hour
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(3).IsNull() {
		t.Fatalf("imputation: %v", got)
	}
	est := got[0].At(3).AsFloat()
	want := archive.DiurnalSpeed(8*60, 1)
	if est < want-1 || est > want+1 {
		t.Errorf("estimate %g, archive profile %g", est, want)
	}
	imputed, _, _ := im.Stats()
	if imputed != 1 || im.Store.Lookups() != 1 {
		t.Error("lookup accounting")
	}
}

func TestImputePassesCleanTuples(t *testing.T) {
	im := newTestImpute(FeedbackIgnore)
	h := exec.NewHarness(im)
	h.Tuple(0, traffic(1, 1, 100, 52))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(3).AsFloat() != 52 {
		t.Fatalf("clean pass: %v", got)
	}
	if im.Store.Lookups() != 0 {
		t.Error("clean tuples must not query the archive")
	}
}

func TestImputeFallbackWithoutHistory(t *testing.T) {
	im := &Impute{
		Schema: trafficSchema, SegAttr: 0, DetAttr: 1, TsAttr: 2, SpeedAttr: 3,
		Store: archive.NewStore(1), FallbackSpeed: 48,
	}
	h := exec.NewHarness(im)
	h.Tuple(0, trafficNull(9, 9, 100))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(3).AsFloat() != 48 {
		t.Fatalf("fallback: %v", got)
	}
}

func TestImputeGuardSkipsLookup(t *testing.T) {
	// The Experiment 1 mechanism: feedback ¬[ts < cutoff] makes IMPUTE
	// discard late tuples before the expensive archival query.
	im := newTestImpute(FeedbackExploit)
	h := exec.NewHarness(im)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 2, punct.Lt(stream.TimeMicros(1000)))))
	h.Tuple(0, trafficNull(1, 1, 500)) // late: skipped, no lookup
	h.Tuple(0, trafficNull(1, 1, 1500))
	if im.Store.Lookups() != 1 {
		t.Fatalf("lookups = %d, want 1 (guard must precede lookup)", im.Store.Lookups())
	}
	imputed, skipped, _ := im.Stats()
	if imputed != 1 || skipped != 1 {
		t.Errorf("imputed=%d skipped=%d", imputed, skipped)
	}
	resp := im.Responses()
	if len(resp) != 1 || !resp[0].Did(core.ActGuardInput) {
		t.Errorf("response: %+v", resp)
	}
}

func TestImputeIgnoreModeDoesNotGuard(t *testing.T) {
	im := newTestImpute(FeedbackIgnore)
	h := exec.NewHarness(im)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 2, punct.Lt(stream.TimeMicros(1000)))))
	h.Tuple(0, trafficNull(1, 1, 500))
	if im.Store.Lookups() != 1 {
		t.Error("feedback-unaware impute must still do the lookup")
	}
}

func TestImputeRefusesGuardOnImputedAttr(t *testing.T) {
	// Feedback binding the speed attribute cannot guard the input: the
	// input value is null there, and the output value is computed.
	im := newTestImpute(FeedbackExploit)
	h := exec.NewHarness(im)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 3, punct.Ge(stream.Float(50)))))
	if im.guards.Active() != 0 {
		t.Fatal("speed-bound feedback must not install an input guard")
	}
	resp := im.Responses()
	if len(resp) != 1 || resp[0].Note == "" {
		t.Error("refusal must be recorded")
	}
}

func TestImputePropagatesTimestampFeedback(t *testing.T) {
	im := newTestImpute(FeedbackExploit)
	im.Propagate = true
	h := exec.NewHarness(im)
	f := core.NewAssumed(punct.OnAttr(4, 2, punct.Lt(stream.TimeMicros(1000))))
	h.Feedback(0, f)
	sent := h.SentFeedback(0)
	if len(sent) != 1 || !sent[0].Pattern.Equal(f.Pattern) {
		t.Fatalf("propagation: %v", sent)
	}
	// Speed-bound feedback must NOT propagate (attribute is computed).
	h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 3, punct.Ge(stream.Float(50)))))
	if len(h.SentFeedback(0)) != 1 {
		t.Error("speed-bound feedback must not propagate through IMPUTE")
	}
}

func TestImputeGuardExpires(t *testing.T) {
	im := newTestImpute(FeedbackExploit)
	h := exec.NewHarness(im)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 2, punct.Lt(stream.TimeMicros(1000)))))
	if im.guards.Active() != 1 {
		t.Fatal("guard installed")
	}
	h.Punct(0, tsPunct(1000))
	if im.guards.Active() != 0 {
		t.Error("guard must expire when punctuation covers it")
	}
	if len(h.OutPuncts(0)) != 1 {
		t.Error("punctuation must pass through impute")
	}
}

func TestArchiveStore(t *testing.T) {
	s := archive.NewStore(2)
	s.Add(archive.Reading{Segment: 1, Detector: 2, MinuteOfDay: 30, Speed: 50})
	s.Add(archive.Reading{Segment: 1, Detector: 2, MinuteOfDay: 35, Speed: 60})
	got, ok := s.Lookup(1, 2, 33)
	if !ok || got != 55 {
		t.Fatalf("lookup = %g, %v", got, ok)
	}
	if _, ok := s.Lookup(9, 9, 0); ok {
		t.Error("missing history must report !ok")
	}
	if s.Lookups() != 2 || s.Size() != 1 {
		t.Errorf("stats: lookups=%d size=%d", s.Lookups(), s.Size())
	}
	if s.String() == "" {
		t.Error("String")
	}
}

func TestArchiveDiurnalProfile(t *testing.T) {
	free := archive.DiurnalSpeed(3*60, 0) // 3am
	rush := archive.DiurnalSpeed(8*60, 0) // 8am
	evening := archive.DiurnalSpeed(17*60, 0)
	if free != 60 {
		t.Errorf("free-flow = %g", free)
	}
	if rush >= free || evening >= free {
		t.Error("rush hours must be slower than free flow")
	}
	if archive.DiurnalSpeed(8*60, 4) >= archive.DiurnalSpeed(8*60, 0) {
		// segment 4 has a deeper dip than segment 0 (depth 25+2*(s%5)).
		t.Error("per-segment dip depths must vary")
	}
}

// TestImputeRejectsUnexpectedInput: the runner-facing index guard added to
// every single-input operator (mirrors Aggregate's and Join's).
func TestImputeRejectsUnexpectedInput(t *testing.T) {
	im := newTestImpute(FeedbackIgnore)
	h := exec.NewHarness(im)
	if err := im.ProcessTuple(1, trafficNull(1, 1, 0), h); err == nil {
		t.Error("tuple on input 1 accepted")
	}
	if err := im.ProcessPunct(-1, tsPunct(10), h); err == nil {
		t.Error("punctuation on input -1 accepted")
	}
	// Input 0 keeps working.
	if err := im.ProcessTuple(0, trafficNull(1, 1, 0), h); err != nil {
		t.Fatal(err)
	}
}
