package op

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
	"repro/internal/window"
)

// Probe-vehicle and fixed-sensor schemas from §3.5, simplified:
// probe(seg, ts, pspeed) ⋈ sensor(seg, ts, sspeed) on (seg, ts).
var (
	probeSchema  = stream.MustSchema(stream.F("seg", stream.KindInt), stream.F("ts", stream.KindTime), stream.F("pspeed", stream.KindFloat))
	sensorSchema = stream.MustSchema(stream.F("seg", stream.KindInt), stream.F("ts", stream.KindTime), stream.F("sspeed", stream.KindFloat))
)

func probe(seg, ts int64, v float64) stream.Tuple {
	return stream.NewTuple(stream.Int(seg), stream.TimeMicros(ts), stream.Float(v))
}

func sensor(seg, ts int64, v float64) stream.Tuple {
	return stream.NewTuple(stream.Int(seg), stream.TimeMicros(ts), stream.Float(v))
}

func newTestJoin(mode FeedbackMode, propagate bool) *Join {
	return &Join{
		OpName: "join", Left: probeSchema, Right: sensorSchema,
		LeftKeys: []int{0, 1}, RightKeys: []int{0, 1},
		LeftTs: 1, RightTs: 1,
		Mode: mode, Propagate: propagate,
	}
}

func leftPunct(us int64) punct.Embedded {
	return punct.NewEmbedded(punct.OnAttr(3, 1, punct.Le(stream.TimeMicros(us))))
}

func TestJoinOutputSchema(t *testing.T) {
	j := newTestJoin(FeedbackIgnore, false)
	out := j.OutSchemas()[0]
	// (seg, ts, pspeed, sspeed): join attrs once, right non-keys appended.
	if out.Arity() != 4 || out.Index("seg") != 0 || out.Index("sspeed") != 3 {
		t.Fatalf("output schema: %s", out)
	}
}

func TestJoinMatchesBothArrivalOrders(t *testing.T) {
	j := newTestJoin(FeedbackIgnore, false)
	h := exec.NewHarness(j)
	h.Tuple(0, probe(1, 100, 45))
	h.Tuple(1, sensor(1, 100, 50)) // right probes left
	h.Tuple(1, sensor(2, 100, 60))
	h.Tuple(0, probe(2, 100, 55)) // left probes right
	got := h.OutTuples(0)
	if len(got) != 2 {
		t.Fatalf("joined: %v", got)
	}
	for _, tp := range got {
		if tp.Arity() != 4 {
			t.Errorf("arity: %v", tp)
		}
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	j := newTestJoin(FeedbackIgnore, false)
	j.Residual = func(l, r stream.Tuple) bool { return r.At(2).AsFloat() < 45 }
	h := exec.NewHarness(j)
	h.Tuple(0, probe(1, 100, 40))
	h.Tuple(1, sensor(1, 100, 44)) // congested: joins
	h.Tuple(0, probe(2, 100, 40))
	h.Tuple(1, sensor(2, 100, 60)) // uncongested: filtered
	if got := h.OutTuples(0); len(got) != 1 || got[0].At(0).AsInt() != 1 {
		t.Fatalf("residual: %v", got)
	}
}

func TestJoinPunctuationPurgesState(t *testing.T) {
	j := newTestJoin(FeedbackIgnore, false)
	h := exec.NewHarness(j)
	h.Tuple(0, probe(1, 100, 45))
	h.Tuple(1, sensor(2, 100, 50))
	// Left punctuation ≤ 100: right entries ≤ 100 can never match.
	h.Punct(0, leftPunct(100))
	st := j.Stats()
	if st.RightEntries != 0 {
		t.Errorf("right entries after left punct: %d", st.RightEntries)
	}
	if st.LeftEntries != 1 {
		t.Errorf("left entries must survive: %d", st.LeftEntries)
	}
	h.Punct(1, leftPunct(100))
	if j.Stats().LeftEntries != 0 {
		t.Error("left entries after right punct")
	}
	// Output punctuation after both inputs punctuated.
	ps := h.OutPuncts(0)
	if len(ps) != 1 || ps[0].Pattern.Pred(1).Val.Micros() != 100 {
		t.Errorf("output punctuation: %v", ps)
	}
}

func TestJoinLeftOuterEmitsOnPurge(t *testing.T) {
	j := newTestJoin(FeedbackIgnore, false)
	j.LeftOuter = true
	h := exec.NewHarness(j)
	h.Tuple(0, probe(1, 100, 45)) // will match
	h.Tuple(0, probe(2, 100, 55)) // will not match
	h.Tuple(1, sensor(1, 100, 50))
	// Right punctuation proves segment 2 has no partner.
	h.Punct(1, leftPunct(100))
	got := h.OutTuples(0)
	if len(got) != 2 {
		t.Fatalf("outer join output: %v", got)
	}
	var sawNull bool
	for _, tp := range got {
		if tp.At(3).IsNull() {
			sawNull = true
			if tp.At(0).AsInt() != 2 {
				t.Errorf("padded tuple: %v", tp)
			}
		}
	}
	if !sawNull {
		t.Fatal("unmatched left tuple must be emitted null-padded")
	}
	st := j.Stats()
	if st.OuterEmitted != 1 {
		t.Errorf("outerEmitted = %d", st.OuterEmitted)
	}
}

func TestJoinLeftOuterEOSFlush(t *testing.T) {
	j := newTestJoin(FeedbackIgnore, false)
	j.LeftOuter = true
	h := exec.NewHarness(j)
	h.Tuple(0, probe(7, 100, 45))
	h.EOS(1)
	got := h.OutTuples(0)
	if len(got) != 1 || !got[0].At(3).IsNull() {
		t.Fatalf("EOS must flush unmatched left tuples: %v", got)
	}
}

// TestJoinTable2Exploit verifies the enacted responses per Table 2 rows.
func TestJoinTable2Exploit(t *testing.T) {
	// Row 1: ¬[*,j,*] — here j = (seg): purge both tables, guard input,
	// propagate both ways.
	j := newTestJoin(FeedbackExploit, true)
	h := exec.NewHarness(j)
	h.Tuple(0, probe(3, 100, 45))
	h.Tuple(1, sensor(3, 200, 50)) // different ts: no match, states live
	h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 0, punct.Eq(stream.Int(3)))))
	st := j.Stats()
	if st.PurgedByFeedback != 2 {
		t.Errorf("purged = %d, want 2 (both tables)", st.PurgedByFeedback)
	}
	if len(h.SentFeedback(0)) != 1 || len(h.SentFeedback(1)) != 1 {
		t.Error("join-attribute feedback must propagate to both inputs")
	}
	// Guard: new tuples for seg 3 are suppressed.
	h.Tuple(0, probe(3, 300, 40))
	if j.Stats().LeftEntries != 0 {
		t.Error("guarded left input must not build state")
	}

	// Row 4: ¬[l,*,r] — guard output only.
	j2 := newTestJoin(FeedbackExploit, true)
	h2 := exec.NewHarness(j2)
	cross := punct.NewPattern(punct.Wild, punct.Wild, punct.Eq(stream.Float(50)), punct.Eq(stream.Float(50)))
	h2.Feedback(0, core.NewAssumed(cross))
	if len(h2.SentFeedback(0)) != 0 || len(h2.SentFeedback(1)) != 0 {
		t.Error("cross-side feedback must not propagate (¬[50,*,*,50] example)")
	}
	// <49, …, 50> must still be produced: only exact cross matches die.
	h2.Tuple(0, probe(1, 100, 49))
	h2.Tuple(1, sensor(1, 100, 50))
	if got := h2.OutTuples(0); len(got) != 1 {
		t.Fatalf("tuple outside the subset must survive: %v", got)
	}
	h2.Tuple(0, probe(2, 100, 50))
	h2.Tuple(1, sensor(2, 100, 50))
	if got := h2.OutTuples(0); len(got) != 1 {
		t.Fatal("tuple inside the subset must be suppressed at output")
	}
}

func TestJoinGuardOutputMode(t *testing.T) {
	j := newTestJoin(FeedbackGuardOutput, false)
	h := exec.NewHarness(j)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 0, punct.Eq(stream.Int(3)))))
	h.Tuple(0, probe(3, 100, 45))
	h.Tuple(1, sensor(3, 100, 50))
	if len(h.OutTuples(0)) != 0 {
		t.Fatal("output must be guarded")
	}
	// State still builds in guard-output mode.
	if j.Stats().LeftEntries != 1 || j.Stats().RightEntries != 1 {
		t.Error("guard-output mode must not purge state")
	}
}

func TestThriftyJoinDetectsEmptyWindows(t *testing.T) {
	// §3.3 Adaptive: probe (left, input 0) windows 1-minute tumbling;
	// window 1 empty → feedback to sensor input (1).
	spec := window.Tumbling(60_000_000)
	j := newTestJoin(FeedbackExploit, false)
	j.ThriftyWindow = &spec
	j.ThriftyProbe = 0
	h := exec.NewHarness(j)
	h.Tuple(0, probe(1, 10_000_000, 45)) // window 0 occupied
	// Probe punctuation closes windows 0 and 1.
	h.Punct(0, leftPunct(120_000_000-1))
	fb := h.SentFeedback(1)
	if len(fb) != 1 {
		t.Fatalf("thrifty feedback: %v", fb)
	}
	f := fb[0]
	if f.Intent != core.Assumed {
		t.Error("thrifty feedback must be assumed")
	}
	pr := f.Pattern.Pred(1)
	if pr.Op != punct.Between || pr.Val.Micros() != 60_000_000 || pr.Hi.Micros() != 120_000_000-1 {
		t.Errorf("empty-window pattern: %v", f.Pattern)
	}
	if j.Stats().ThriftySent != 1 {
		t.Error("thrifty counter")
	}
}

func TestImpatientJoinSendsDesired(t *testing.T) {
	j := newTestJoin(FeedbackExploit, false)
	j.Impatient = true
	h := exec.NewHarness(j)
	h.Tuple(0, probe(3, 700, 45))
	fb := h.SentFeedback(1)
	if len(fb) != 1 || fb[0].Intent != core.Desired {
		t.Fatalf("impatient feedback: %v", fb)
	}
	p := fb[0].Pattern
	if p.Pred(0).Val.AsInt() != 3 || p.Pred(1).Val.Micros() != 700 || !p.Pred(2).IsWild() {
		t.Errorf("desired pattern: %v (want ?[3, 700, *])", p)
	}
	// Repeat key: no duplicate feedback.
	h.Tuple(0, probe(3, 700, 46))
	if len(h.SentFeedback(1)) != 1 {
		t.Error("duplicate keys must not re-send desired feedback")
	}
}

// TestJoinDefinition1Property: random join inputs, random single-sided
// feedback, exploit and guard-output modes both satisfy Definition 1.
func TestJoinDefinition1Property(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		type ev struct {
			input int
			t     stream.Tuple
		}
		var evs []ev
		n := 10 + r.Intn(40)
		for i := 0; i < n; i++ {
			seg, ts, v := r.Int63n(3), int64(r.Intn(3)*100), 40+float64(r.Intn(20))
			if r.Intn(2) == 0 {
				evs = append(evs, ev{0, probe(seg, ts, v)})
			} else {
				evs = append(evs, ev{1, sensor(seg, ts, v)})
			}
		}
		seg := r.Int63n(3)
		fb := core.NewAssumed(punct.OnAttr(4, 0, punct.Eq(stream.Int(seg))))
		fbAt := r.Intn(n)
		run := func(mode FeedbackMode) []stream.Tuple {
			j := newTestJoin(mode, false)
			h := exec.NewHarness(j)
			for i, e := range evs {
				if i == fbAt {
					h.Feedback(0, fb)
				}
				h.Tuple(e.input, e.t)
			}
			h.EOS(0).EOS(1)
			if h.Err() != nil {
				t.Fatal(h.Err())
			}
			return h.OutTuples(0)
		}
		ref := run(FeedbackIgnore)
		for _, mode := range []FeedbackMode{FeedbackGuardOutput, FeedbackExploit} {
			if err := core.CheckExploitation(ref, run(mode), fb).Err(); err != nil {
				t.Fatalf("trial %d mode %v: %v", trial, mode, err)
			}
		}
	}
}

// TestJoinRejectsUnexpectedInput pins the mis-wired-plan behaviour: any
// input index outside {0, 1} is a loud error instead of silently feeding
// the right table.
func TestJoinRejectsUnexpectedInput(t *testing.T) {
	j := newTestJoin(FeedbackIgnore, false)
	h := exec.NewHarness(j)
	if err := j.ProcessTuple(2, probe(1, 10, 50), h); err == nil {
		t.Fatal("tuple on input 2 must error")
	}
	if err := j.ProcessPunct(3, leftPunct(10), h); err == nil {
		t.Fatal("punctuation on input 3 must error")
	}
	if err := j.ProcessEOS(2, h); err == nil {
		t.Fatal("EOS on input 2 must error")
	}
}
