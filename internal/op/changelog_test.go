package op

import (
	"bytes"
	"testing"

	"repro/internal/exec"
	"repro/internal/snapshot"
)

// TestAggregateChangelogCap: once a capture has enabled changelog tracking,
// a run that stops checkpointing must not accumulate dirty/dead keys
// forever. Crossing MaxChangelog collapses the changelog (bounded memory),
// and the next delta request upgrades to a full capture whose restored
// state is identical to the live operator's.
func TestAggregateChangelogCap(t *testing.T) {
	a := minuteAvg(FeedbackExploit, false)
	a.MaxChangelog = 4
	h := exec.NewHarness(a)

	// First capture enables tracking.
	h.Tuples(traffic(1, 1, 10*1_000_000, 40))
	if _, err := a.CaptureState(snapshot.CaptureFull); err != nil {
		t.Fatal(err)
	}
	if a.chlogDirty == nil {
		t.Fatal("tracking not enabled after first capture")
	}

	// "Checkpointing stops": mutate far more keys than the cap allows.
	for seg := int64(0); seg < 12; seg++ {
		h.Tuples(traffic(seg, 1, 10*1_000_000, 50))
	}
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	if a.chlogDirty != nil || a.chlogDead != nil {
		t.Fatalf("changelog not collapsed past the cap (dirty=%d dead=%d)",
			len(a.chlogDirty), len(a.chlogDead))
	}

	// Bounded from here on: further mutations must not revive tracking.
	for seg := int64(0); seg < 12; seg++ {
		h.Tuples(traffic(seg, 2, 20*1_000_000, 60))
	}
	if a.chlogDirty != nil || a.chlogDead != nil {
		t.Fatal("collapsed changelog grew again without a capture")
	}

	// The next delta request upgrades to a full capture...
	cap1, err := a.CaptureState(snapshot.CaptureDelta)
	if err != nil {
		t.Fatal(err)
	}
	if cap1.Delta {
		t.Fatal("capped operator answered a delta; must upgrade to full")
	}
	// ...which re-enables tracking at the new baseline.
	if a.chlogDirty == nil {
		t.Fatal("tracking not re-enabled by the upgraded full capture")
	}

	// And the full capture restores to exactly the live state.
	twin := minuteAvg(FeedbackExploit, false)
	ht := exec.NewHarness(twin)
	if ht.Err() != nil {
		t.Fatal(ht.Err())
	}
	applyChain(t, twin, encodeCap(t, cap1))
	if got, want := fullBlob(t, twin), fullBlob(t, a); !bytes.Equal(got, want) {
		t.Fatalf("restored state differs from live state (%dB vs %dB)", len(got), len(want))
	}
}

// TestJoinChangelogCap: the same bound for Join, summed over both sides.
func TestJoinChangelogCap(t *testing.T) {
	j := deltaJoin()
	j.MaxChangelog = 4
	h := exec.NewHarness(j)

	h.Tuple(0, lrTuple(1, 1000, 1))
	if _, err := j.CaptureState(snapshot.CaptureFull); err != nil {
		t.Fatal(err)
	}
	if j.chlogDirty[0] == nil {
		t.Fatal("tracking not enabled after first capture")
	}

	for k := int64(0); k < 6; k++ {
		h.Tuple(0, lrTuple(k, 2000, 2))
		h.Tuple(1, lrTuple(k, 2000, 3))
	}
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	for side := 0; side < 2; side++ {
		if j.chlogDirty[side] != nil || j.chlogDead[side] != nil {
			t.Fatalf("side %d changelog not collapsed past the cap", side)
		}
	}

	cap1, err := j.CaptureState(snapshot.CaptureDelta)
	if err != nil {
		t.Fatal(err)
	}
	if cap1.Delta {
		t.Fatal("capped join answered a delta; must upgrade to full")
	}

	twin := deltaJoin()
	ht := exec.NewHarness(twin)
	if ht.Err() != nil {
		t.Fatal(ht.Err())
	}
	applyChain(t, twin, encodeCap(t, cap1))
	if got, want := fullBlob(t, twin), fullBlob(t, j); !bytes.Equal(got, want) {
		t.Fatalf("restored state differs from live state (%dB vs %dB)", len(got), len(want))
	}
}
