package op

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

// Union merges K same-schema inputs into one output stream. Stream
// progress on the output is the minimum of the inputs' progress: embedded
// punctuation on a designated ordered attribute (ProgressAttr, typically
// the timestamp) is combined as a per-input watermark and re-emitted when
// the minimum advances. Other punctuation shapes are consumed (a union
// cannot generally re-assert them without all inputs agreeing).
//
// Feedback propagates to every input: the mapping is the identity, so
// propagation is always safe.
//
//pace:stateless watermarks rebuild conservatively from post-restore punctuation; withholding punctuation is always safe
type Union struct {
	exec.Base
	OpName string
	Schema stream.Schema
	K      int
	// ProgressAttr is the watermark attribute; -1 disables punctuation
	// relay entirely.
	ProgressAttr int
	// Mode/Propagate as in Select; Union itself is stateless so its only
	// exploitation is an input guard.
	Mode      FeedbackMode
	Propagate bool

	responseLog
	guards *core.GuardTable
	wm     []watermark

	in, out, suppressed int64
}

type watermark struct {
	set bool
	v   int64 // inclusive progress bound, micros/int domain
	eos bool
}

// Name implements exec.Operator.
func (u *Union) Name() string {
	if u.OpName != "" {
		return u.OpName
	}
	return "union"
}

func (u *Union) k() int {
	if u.K <= 0 {
		return 2
	}
	return u.K
}

// InSchemas implements exec.Operator.
func (u *Union) InSchemas() []stream.Schema {
	in := make([]stream.Schema, u.k())
	for i := range in {
		in[i] = u.Schema
	}
	return in
}

// OutSchemas implements exec.Operator.
func (u *Union) OutSchemas() []stream.Schema { return []stream.Schema{u.Schema} }

// Open implements exec.Operator.
func (u *Union) Open(exec.Context) error {
	u.guards = core.NewGuardTable(u.Schema.Arity())
	u.wm = make([]watermark, u.k())
	return nil
}

// ProcessTuple implements exec.Operator.
func (u *Union) ProcessTuple(_ int, t stream.Tuple, ctx exec.Context) error {
	u.in++
	if u.Mode != FeedbackIgnore && u.guards.Suppress(t) {
		u.suppressed++
		return nil
	}
	u.out++
	ctx.Emit(t)
	return nil
}

// ProcessPunct implements exec.Operator.
func (u *Union) ProcessPunct(input int, e punct.Embedded, ctx exec.Context) error {
	u.guards.ObservePunct(e)
	if u.ProgressAttr < 0 {
		return nil
	}
	pr := e.Pattern.Pred(u.ProgressAttr)
	bound := e.Pattern.Bound()
	if len(bound) != 1 || bound[0] != u.ProgressAttr {
		return nil // not a progress punctuation; consume it
	}
	var v int64
	switch pr.Op {
	case punct.LE:
		v = pr.Val.I
	case punct.LT:
		v = pr.Val.I - 1
	default:
		return nil
	}
	before := u.minWatermark()
	if !u.wm[input].set || v > u.wm[input].v {
		u.wm[input].set = true
		u.wm[input].v = v
	}
	if after := u.minWatermark(); after.set && (!before.set || after.v > before.v) {
		ctx.EmitPunct(punct.NewEmbedded(
			punct.OnAttr(u.Schema.Arity(), u.ProgressAttr, punct.Le(u.progressValue(after.v)))))
	}
	return nil
}

// progressValue rebuilds a value of the progress attribute's kind from the
// int64 watermark domain.
func (u *Union) progressValue(v int64) stream.Value {
	if u.Schema.Field(u.ProgressAttr).Kind == stream.KindTime {
		return stream.TimeMicros(v)
	}
	return stream.Int(v)
}

// minWatermark folds per-input progress; EOS inputs no longer constrain it.
func (u *Union) minWatermark() watermark {
	out := watermark{set: true}
	first := true
	for _, w := range u.wm {
		if w.eos {
			continue
		}
		if !w.set {
			return watermark{}
		}
		if first || w.v < out.v {
			out.v = w.v
			first = false
		}
	}
	if first {
		return watermark{} // all inputs EOS: nothing to assert
	}
	return out
}

// ProcessEOS implements exec.Operator.
func (u *Union) ProcessEOS(input int, ctx exec.Context) error {
	u.wm[input].eos = true
	if u.ProgressAttr >= 0 {
		if m := u.minWatermark(); m.set {
			ctx.EmitPunct(punct.NewEmbedded(
				punct.OnAttr(u.Schema.Arity(), u.ProgressAttr, punct.Le(u.progressValue(m.v)))))
		}
	}
	return nil
}

// ProcessFeedback implements exec.Operator: exploit locally (input guard)
// and propagate to every input.
func (u *Union) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	resp := core.Response{Feedback: f}
	if f.Intent == core.Assumed && u.Mode != FeedbackIgnore {
		u.guards.Install(f)
		resp.Actions = append(resp.Actions, core.ActGuardInput)
	}
	if u.Propagate {
		relayed := f.Relayed(f.Pattern)
		resp.Propagated = make([]*core.Feedback, u.k())
		for i := 0; i < ctx.NumInputs(); i++ {
			ctx.SendFeedback(i, relayed)
			resp.Propagated[i] = &relayed
		}
		resp.Actions = append(resp.Actions, core.ActPropagate)
	}
	if len(resp.Actions) == 0 {
		resp.Actions = []core.Action{core.ActNone}
	}
	u.logResponse(resp)
	return nil
}

// Stats reports tuple accounting.
func (u *Union) Stats() (in, out, suppressed int64) { return u.in, u.out, u.suppressed }
