package op

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

var trafficSchema = stream.MustSchema(
	stream.F("segment", stream.KindInt),
	stream.F("detector", stream.KindInt),
	stream.F("ts", stream.KindTime),
	stream.F("speed", stream.KindFloat),
)

func traffic(seg, det, tsUS int64, speed float64) stream.Tuple {
	return stream.NewTuple(stream.Int(seg), stream.Int(det), stream.TimeMicros(tsUS), stream.Float(speed))
}

func trafficNull(seg, det, tsUS int64) stream.Tuple {
	return stream.NewTuple(stream.Int(seg), stream.Int(det), stream.TimeMicros(tsUS), stream.Null)
}

func assumedOnSegment(seg int64) core.Feedback {
	return core.NewAssumed(punct.OnAttr(4, 0, punct.Eq(stream.Int(seg))))
}

func tsPunct(us int64) punct.Embedded {
	return punct.NewEmbedded(punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(us))))
}

func TestSelectFilters(t *testing.T) {
	s := &Select{Schema: trafficSchema, Cond: func(t stream.Tuple) bool {
		return !t.At(3).IsNull()
	}}
	h := exec.NewHarness(s)
	h.Tuples(traffic(1, 1, 10, 50), trafficNull(1, 2, 20), traffic(2, 1, 30, 60))
	if got := h.OutTuples(0); len(got) != 2 {
		t.Fatalf("got %d tuples", len(got))
	}
	in, out, _ := s.Stats()
	if in != 3 || out != 2 {
		t.Errorf("stats: in=%d out=%d", in, out)
	}
}

func TestSelectFeedbackAddsToCondition(t *testing.T) {
	// §4.3: "assumed punctuation can simply be added to its select
	// condition".
	s := &Select{Schema: trafficSchema, Mode: FeedbackExploit}
	h := exec.NewHarness(s)
	h.Feedback(0, assumedOnSegment(3))
	h.Tuples(traffic(3, 1, 10, 50), traffic(4, 1, 20, 60))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(0).AsInt() != 4 {
		t.Fatalf("segment 3 must be suppressed: %v", got)
	}
	_, _, suppressed := s.Stats()
	if suppressed != 1 {
		t.Errorf("suppressed = %d", suppressed)
	}
	resp := s.Responses()
	if len(resp) != 1 || !resp[0].Did(core.ActGuardInput) {
		t.Errorf("response log: %+v", resp)
	}
}

func TestSelectIgnoreModeIsNullResponse(t *testing.T) {
	s := &Select{Schema: trafficSchema, Mode: FeedbackIgnore}
	h := exec.NewHarness(s)
	h.Feedback(0, assumedOnSegment(3))
	h.Tuples(traffic(3, 1, 10, 50))
	if len(h.OutTuples(0)) != 1 {
		t.Error("feedback-unaware select must pass everything")
	}
}

func TestSelectPropagatesUpstream(t *testing.T) {
	s := &Select{Schema: trafficSchema, Mode: FeedbackExploit, Propagate: true}
	h := exec.NewHarness(s)
	f := assumedOnSegment(5)
	h.Feedback(0, f)
	sent := h.SentFeedback(0)
	if len(sent) != 1 || !sent[0].Pattern.Equal(f.Pattern) || sent[0].Hops != 1 {
		t.Fatalf("propagation: %+v", sent)
	}
}

func TestSelectPunctPassThroughAndExpiry(t *testing.T) {
	s := &Select{Schema: trafficSchema, Mode: FeedbackExploit}
	h := exec.NewHarness(s)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(100)))))
	// Guarded tuple dropped.
	h.Tuple(0, traffic(1, 1, 50, 40))
	if len(h.OutTuples(0)) != 0 {
		t.Fatal("tuple under feedback must be dropped")
	}
	// Punctuation covering the guard expires it and passes through.
	h.Punct(0, tsPunct(100))
	if len(h.OutPuncts(0)) != 1 {
		t.Fatal("punctuation must pass through select")
	}
	if s.guards.Active() != 0 {
		t.Error("guard must expire once covered (§4.4)")
	}
}

func TestSelectDefinition1(t *testing.T) {
	// Run the same input with and without feedback; verify Def. 1.
	input := []stream.Tuple{
		traffic(1, 1, 10, 50), traffic(2, 1, 20, 55), traffic(3, 1, 30, 60),
		traffic(1, 2, 40, 45), traffic(2, 2, 50, 50),
	}
	run := func(mode FeedbackMode) []stream.Tuple {
		s := &Select{Schema: trafficSchema, Mode: mode}
		h := exec.NewHarness(s)
		h.Feedback(0, assumedOnSegment(2))
		h.Tuples(input...)
		return h.OutTuples(0)
	}
	ref := run(FeedbackIgnore)
	actual := run(FeedbackExploit)
	rep := core.CheckExploitation(ref, actual, assumedOnSegment(2))
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", rep.Suppressed)
	}
}

func TestProjectBasics(t *testing.T) {
	p := &Project{In: trafficSchema, Keep: []string{"segment", "speed"}}
	h := exec.NewHarness(p)
	h.Tuple(0, traffic(3, 1, 10, 52))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].Arity() != 2 ||
		got[0].At(0).AsInt() != 3 || got[0].At(1).AsFloat() != 52 {
		t.Fatalf("projection: %v", got)
	}
}

func TestProjectPunctRelayRules(t *testing.T) {
	p := &Project{In: trafficSchema, Keep: []string{"segment", "speed"}}
	h := exec.NewHarness(p)
	// Punctuation on a dropped attribute (ts) must be consumed.
	h.Punct(0, tsPunct(100))
	if len(h.OutPuncts(0)) != 0 {
		t.Fatal("punctuation on dropped attribute must not be relayed")
	}
	// Punctuation on a kept attribute is projected.
	h.Punct(0, punct.NewEmbedded(punct.OnAttr(4, 0, punct.Eq(stream.Int(7)))))
	ps := h.OutPuncts(0)
	if len(ps) != 1 {
		t.Fatal("punctuation on kept attribute must be relayed")
	}
	if got := ps[0].Pattern; got.Arity() != 2 || got.Pred(0).Op != punct.EQ {
		t.Errorf("projected punct: %v", got)
	}
}

func TestProjectFeedbackPropagation(t *testing.T) {
	p := &Project{In: trafficSchema, Keep: []string{"segment", "speed"}, Mode: FeedbackExploit, Propagate: true}
	h := exec.NewHarness(p)
	f := core.NewAssumed(punct.OnAttr(2, 0, punct.Eq(stream.Int(3))))
	h.Feedback(0, f)
	sent := h.SentFeedback(0)
	if len(sent) != 1 {
		t.Fatal("project must propagate")
	}
	if got := sent[0].Pattern; got.Arity() != 4 || got.Pred(0).Op != punct.EQ || !got.Pred(2).IsWild() {
		t.Errorf("mapped pattern: %v", got)
	}
	// Guarded after feedback.
	h.Tuple(0, traffic(3, 1, 10, 52))
	if len(h.OutTuples(0)) != 0 {
		t.Error("guarded projection must suppress")
	}
}

func TestDuplicateRequiresUnanimity(t *testing.T) {
	d := &Duplicate{Schema: trafficSchema, N: 2, Mode: FeedbackExploit, Propagate: true}
	h := exec.NewHarness(d)
	f := assumedOnSegment(3)
	// Only output 0 asserts: must NOT suppress (outputs stay identical).
	h.Feedback(0, f)
	h.Tuple(0, traffic(3, 1, 10, 50))
	if len(h.OutTuples(0)) != 1 || len(h.OutTuples(1)) != 1 {
		t.Fatal("single-consumer feedback must not suppress a DUPLICATE")
	}
	if len(h.SentFeedback(0)) != 0 {
		t.Fatal("must not propagate before unanimity")
	}
	// Output 1 asserts the same subset: now exploit and propagate.
	h.Feedback(1, f)
	h.Tuple(0, traffic(3, 2, 20, 55))
	if len(h.OutTuples(0)) != 1 || len(h.OutTuples(1)) != 1 {
		t.Fatal("unanimous feedback must suppress on both outputs")
	}
	if len(h.SentFeedback(0)) != 1 {
		t.Fatal("unanimous feedback must propagate upstream")
	}
	_, _, suppressed := d.Stats()
	if suppressed != 1 {
		t.Errorf("suppressed = %d", suppressed)
	}
}

func TestDuplicateFanoutAndPunct(t *testing.T) {
	d := &Duplicate{Schema: trafficSchema, N: 3}
	h := exec.NewHarness(d)
	h.Tuple(0, traffic(1, 1, 10, 50))
	h.Punct(0, tsPunct(10))
	for port := 0; port < 3; port++ {
		if len(h.OutTuples(port)) != 1 || len(h.OutPuncts(port)) != 1 {
			t.Errorf("port %d: %d tuples %d puncts", port, len(h.OutTuples(port)), len(h.OutPuncts(port)))
		}
	}
}
