// Package op implements the query operators of the reproduction: the
// standard relational stream operators (SELECT, PROJECT, DUPLICATE, UNION,
// windowed aggregates, symmetric-hash JOIN) plus the paper's specialized
// operators (PACE, IMPUTE, THRIFTY/IMPATIENT JOIN variants, PRIORITIZE).
//
// Every operator runs under the exec runtime and, where the paper
// characterizes it, plays the producer / exploiter / relayer feedback roles
// using the characterizations in package core. Operators keep a response
// log (core.Response) that tests and cmd/tables inspect to verify enacted
// behaviour against Tables 1 and 2.
package op

import (
	"repro/internal/core"
	"repro/internal/punct"
)

// FeedbackMode selects how far an exploiting operator goes when it receives
// assumed feedback. The Figure 7 schemes map onto it:
//
//	F0 = FeedbackIgnore everywhere
//	F1 = FeedbackGuardOutput on the aggregate
//	F2 = FeedbackExploit on the aggregate
//	F3 = F2 plus Propagate=true (the filter below then exploits too)
type FeedbackMode uint8

const (
	// FeedbackIgnore makes the operator feedback-unaware (null response —
	// always correct).
	FeedbackIgnore FeedbackMode = iota
	// FeedbackGuardOutput only suppresses matching result tuples at the
	// output (§4.3 strategy 1).
	FeedbackGuardOutput
	// FeedbackExploit enacts the operator's full characterization: input
	// guards, state purges, and output guards as appropriate (§4.3
	// strategies 1–3).
	FeedbackExploit
)

// String names the mode.
func (m FeedbackMode) String() string {
	switch m {
	case FeedbackIgnore:
		return "ignore"
	case FeedbackGuardOutput:
		return "guard-output"
	case FeedbackExploit:
		return "exploit"
	}
	return "mode(?)"
}

// responseLog accumulates core.Response entries; operators embed it.
type responseLog struct {
	responses []core.Response
}

func (l *responseLog) logResponse(r core.Response) {
	l.responses = append(l.responses, r)
}

// Responses returns the operator's feedback response log.
func (l *responseLog) Responses() []core.Response {
	return append([]core.Response(nil), l.responses...)
}

// coveredByAllOthers reports whether every per-output guard table except
// tables[skip] holds an installed guard whose pattern p implies — the
// unanimity test shared by Duplicate (outputs must stay identical) and
// Split (an unpinned pattern may route anywhere): a consumer-asserted
// pattern becomes exploitable upstream of the fan-out/split only once
// every other consumer has asserted a superset of it.
func coveredByAllOthers(tables []*core.GuardTable, skip int, p punct.Pattern) bool {
	for i, g := range tables {
		if i == skip {
			continue
		}
		covered := false
		for _, gd := range g.Guards() {
			if p.Implies(gd.Pattern) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// RelayPunct decides whether embedded punctuation with the given pattern
// survives an attribute projection, and produces the projected pattern.
// Project, Map, and fused kernels (internal/fuse) all relay by this rule.
//
// Rule (mirror of safe propagation, but for the downstream direction): the
// punctuation's guarantee survives iff every bound attribute is carried by
// the mapping. If a bound conjunct is dropped, the projected pattern would
// overclaim: input punctuation [a=5, ts≤10] does not promise the absence of
// future tuples with a=6, ts≤9, so a projection that drops a cannot emit
// [ts≤10].
func RelayPunct(p punct.Pattern, outputOf func(inAttr int) int, outArity int) (punct.Pattern, bool) {
	mapping := make([]int, outArity) // output attr → input attr
	for i := range mapping {
		mapping[i] = -1
	}
	carried := map[int]bool{}
	for in := 0; in < p.Arity(); in++ {
		if out := outputOf(in); out >= 0 && out < outArity {
			mapping[out] = in
			carried[in] = true
		}
	}
	for _, b := range p.Bound() {
		if !carried[b] {
			return punct.Pattern{}, false
		}
	}
	return p.Project(mapping), true
}
