package op

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/stream"
)

func TestUnionMergesAndCombinesWatermarks(t *testing.T) {
	u := &Union{Schema: trafficSchema, K: 2, ProgressAttr: 2}
	h := exec.NewHarness(u)
	h.Tuple(0, traffic(1, 1, 10, 50))
	h.Tuple(1, traffic(2, 1, 20, 55))
	if len(h.OutTuples(0)) != 2 {
		t.Fatal("union must pass tuples from both inputs")
	}
	// Punctuation only on input 0: no output punct (input 1 unknown).
	h.Punct(0, tsPunct(100))
	if len(h.OutPuncts(0)) != 0 {
		t.Fatal("union must wait for all inputs before asserting progress")
	}
	// Punctuation on input 1 at a lower bound: output = min.
	h.Punct(1, tsPunct(60))
	ps := h.OutPuncts(0)
	if len(ps) != 1 {
		t.Fatal("union must emit combined punctuation")
	}
	if got := ps[0].Pattern.Pred(2); got.Val.Micros() != 60 {
		t.Errorf("combined watermark: %v", ps[0])
	}
	// Advancing the slower input advances the min.
	h.Punct(1, tsPunct(90))
	ps = h.OutPuncts(0)
	if len(ps) != 2 || ps[1].Pattern.Pred(2).Val.Micros() != 90 {
		t.Errorf("watermark must advance to 90: %v", ps)
	}
	// Non-advancing punctuation must not re-emit.
	h.Punct(1, tsPunct(85))
	if len(h.OutPuncts(0)) != 2 {
		t.Error("regressing punctuation must not emit")
	}
}

func TestUnionEOSReleasesWatermark(t *testing.T) {
	u := &Union{Schema: trafficSchema, K: 2, ProgressAttr: 2}
	h := exec.NewHarness(u)
	h.Punct(0, tsPunct(100))
	h.EOS(1) // input 1 is gone: min is now input 0's watermark
	ps := h.OutPuncts(0)
	if len(ps) != 1 || ps[0].Pattern.Pred(2).Val.Micros() != 100 {
		t.Errorf("EOS must release the other input's watermark: %v", ps)
	}
}

func TestUnionFeedbackPropagatesToAllInputs(t *testing.T) {
	u := &Union{Schema: trafficSchema, K: 3, Mode: FeedbackExploit, Propagate: true}
	h := exec.NewHarness(u)
	h.Feedback(0, assumedOnSegment(2))
	for i := 0; i < 3; i++ {
		if len(h.SentFeedback(i)) != 1 {
			t.Errorf("input %d: feedback not propagated", i)
		}
	}
	h.Tuple(1, traffic(2, 1, 10, 50))
	if len(h.OutTuples(0)) != 0 {
		t.Error("union must also guard its own input")
	}
}

func TestPaceDropsLateTuples(t *testing.T) {
	p := &Pace{Schema: trafficSchema, K: 2, TsAttr: 2, Tolerance: 100}
	h := exec.NewHarness(p)
	h.Tuple(0, traffic(1, 1, 1000, 50)) // sets hw=1000
	h.Tuple(1, traffic(1, 2, 950, 55))  // within tolerance: passes
	h.Tuple(1, traffic(1, 3, 850, 60))  // 150 behind: dropped
	got := h.OutTuples(0)
	if len(got) != 2 {
		t.Fatalf("got %d tuples, want 2", len(got))
	}
	st := p.InputStats()
	if st[0].Passed != 1 || st[1].Passed != 1 || st[1].Dropped != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPaceZeroToleranceIsPlainUnion(t *testing.T) {
	p := &Pace{Schema: trafficSchema, K: 2, TsAttr: 2, Tolerance: 0}
	h := exec.NewHarness(p)
	h.Tuple(0, traffic(1, 1, 1000, 50))
	h.Tuple(1, traffic(1, 2, 10, 55)) // very late but tolerance disabled
	if len(h.OutTuples(0)) != 2 {
		t.Error("zero tolerance must never drop")
	}
}

func TestPaceProducesAssumedFeedback(t *testing.T) {
	p := &Pace{
		Schema: trafficSchema, K: 2, TsAttr: 2,
		Tolerance: 100, FeedbackEnabled: true, FeedbackMinAdvance: 1,
		FeedbackSlack: -1, // promise exactly the drop bound
	}
	h := exec.NewHarness(p)
	h.Tuple(0, traffic(1, 1, 1000, 50))
	h.Tuple(1, traffic(1, 2, 800, 55)) // late → feedback
	if p.FeedbackSent() != 1 {
		t.Fatalf("feedback sent = %d", p.FeedbackSent())
	}
	for input := 0; input < 2; input++ {
		fb := h.SentFeedback(input)
		if len(fb) != 1 {
			t.Fatalf("input %d: %d feedback messages", input, len(fb))
		}
		f := fb[0]
		if f.Intent != core.Assumed {
			t.Error("PACE must send assumed feedback")
		}
		pr := f.Pattern.Pred(2)
		if pr.Op != punct.LT || pr.Val.Micros() != 900 {
			t.Errorf("cutoff pattern: %v (want < hw−tolerance = 900)", f.Pattern)
		}
	}
}

func TestPaceFeedbackRateLimit(t *testing.T) {
	p := &Pace{
		Schema: trafficSchema, K: 2, TsAttr: 2,
		Tolerance: 100, FeedbackEnabled: true, FeedbackMinAdvance: 50,
	}
	h := exec.NewHarness(p)
	h.Tuple(0, traffic(1, 1, 1000, 50))
	h.Tuple(1, traffic(1, 2, 800, 55)) // feedback at cutoff 900
	h.Tuple(0, traffic(1, 1, 1010, 50))
	h.Tuple(1, traffic(1, 2, 805, 55)) // cutoff 910 < 900+50: suppressed
	h.Tuple(0, traffic(1, 1, 1100, 50))
	h.Tuple(1, traffic(1, 2, 810, 55)) // cutoff 1000 ≥ 950: emitted
	if p.FeedbackSent() != 2 {
		t.Errorf("feedback sent = %d, want 2 (rate limited)", p.FeedbackSent())
	}
}

func TestPaceFeedbackIsSelfConsistent(t *testing.T) {
	// Everything PACE promises to ignore (ts ≤ cutoff) it must actually
	// drop if it arrives later — the feedback is truthful.
	p := &Pace{
		Schema: trafficSchema, K: 2, TsAttr: 2,
		Tolerance: 100, FeedbackEnabled: true, FeedbackMinAdvance: 1,
		FeedbackSlack: -1,
	}
	h := exec.NewHarness(p)
	h.Tuple(0, traffic(1, 1, 1000, 50))
	h.Tuple(1, traffic(1, 2, 800, 55)) // feedback: ¬[ts < 900]
	cutoff := h.SentFeedback(0)[0].Pattern.Pred(2).Val.Micros()
	h.Reset()
	h.Tuple(1, traffic(1, 3, cutoff-1, 60)) // inside the promised subset
	if len(h.OutTuples(0)) != 0 {
		t.Error("a tuple inside the promised subset must be dropped")
	}
	h.Tuple(1, traffic(1, 4, cutoff, 61)) // at the cutoff: NOT promised
	if len(h.OutTuples(0)) != 1 {
		t.Error("a tuple at the cutoff is outside the promise and must pass")
	}
}

func TestPaceFeedbackSlackDefault(t *testing.T) {
	// Default slack = Tolerance/2: the promise is tighter than the drop
	// bound, giving upstream headroom for in-flight work.
	p := &Pace{
		Schema: trafficSchema, K: 2, TsAttr: 2,
		Tolerance: 100, FeedbackEnabled: true, FeedbackMinAdvance: 1,
	}
	h := exec.NewHarness(p)
	h.Tuple(0, traffic(1, 1, 1000, 50))
	h.Tuple(1, traffic(1, 2, 800, 55))
	fb := h.SentFeedback(0)
	if len(fb) != 1 {
		t.Fatal("expected feedback")
	}
	if got := fb[0].Pattern.Pred(2).Val.Micros(); got != 950 {
		t.Errorf("cutoff = %d, want hw−Tolerance+Tolerance/2 = 950", got)
	}
	// Straggler inside the promised subset but within tolerance still
	// passes (the promise is a hint; PACE's own policy is the bound).
	h.Reset()
	h.Tuple(1, traffic(1, 3, 920, 60))
	if len(h.OutTuples(0)) != 1 {
		t.Error("straggler within tolerance must pass")
	}
}

func TestPaceWatermarkRelay(t *testing.T) {
	p := &Pace{Schema: trafficSchema, K: 2, TsAttr: 2, Tolerance: 100}
	h := exec.NewHarness(p)
	h.Punct(0, tsPunct(500))
	h.Punct(1, tsPunct(300))
	ps := h.OutPuncts(0)
	if len(ps) != 1 || ps[0].Pattern.Pred(2).Val.Micros() != 300 {
		t.Errorf("pace watermark relay: %v", ps)
	}
}

func TestPrioritizePromotesDesiredSubset(t *testing.T) {
	p := &Prioritize{Schema: trafficSchema, BufferCap: 100, Mode: FeedbackExploit}
	h := exec.NewHarness(p)
	// Buffer some tuples.
	h.Tuples(traffic(1, 1, 10, 50), traffic(2, 1, 20, 55), traffic(3, 1, 30, 60))
	if len(h.OutTuples(0)) != 0 {
		t.Fatal("tuples should be buffered")
	}
	// Desired feedback for segment 2: the buffered match jumps the queue.
	h.Feedback(0, core.NewDesired(punct.OnAttr(4, 0, punct.Eq(stream.Int(2)))))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(0).AsInt() != 2 {
		t.Fatalf("promotion: %v", got)
	}
	// New arrivals in the desired subset bypass the buffer.
	h.Tuple(0, traffic(2, 2, 40, 52))
	got = h.OutTuples(0)
	if len(got) != 2 || got[1].At(0).AsInt() != 2 {
		t.Fatalf("bypass: %v", got)
	}
	// Flush on punctuation: everything else must appear before the punct.
	h.Punct(0, tsPunct(100))
	items := h.Out(0)
	if items[len(items)-1].Kind != queue.ItemPunct {
		t.Fatal("punctuation must come after the flushed backlog")
	}
	tuples := h.OutTuples(0)
	if len(tuples) != 4 {
		t.Fatalf("after flush: %d tuples", len(tuples))
	}
	// Desired punctuation never changes the result SET, only order.
	seen := map[int64]int{}
	for _, tp := range tuples {
		seen[tp.At(0).AsInt()]++
	}
	if seen[1] != 1 || seen[2] != 2 || seen[3] != 1 {
		t.Errorf("result multiset changed: %v", seen)
	}
}

func TestPrioritizeAssumedDropsBacklog(t *testing.T) {
	p := &Prioritize{Schema: trafficSchema, BufferCap: 100, Mode: FeedbackExploit}
	h := exec.NewHarness(p)
	h.Tuples(traffic(1, 1, 10, 50), traffic(2, 1, 20, 55))
	h.Feedback(0, assumedOnSegment(1))
	h.EOS(0)
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(0).AsInt() != 2 {
		t.Fatalf("assumed feedback must purge backlog: %v", got)
	}
	_, _, _, dropped := p.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestPrioritizeBufferCapDrainsFIFO(t *testing.T) {
	p := &Prioritize{Schema: trafficSchema, BufferCap: 2, Mode: FeedbackExploit}
	h := exec.NewHarness(p)
	h.Tuples(traffic(1, 1, 10, 50), traffic(2, 1, 20, 55), traffic(3, 1, 30, 60))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(0).AsInt() != 1 {
		t.Fatalf("cap overflow must drain oldest first: %v", got)
	}
}

// TestPrioritizeDesiredContract verifies the §8 future-work notion
// implemented in core: desired exploitation keeps the multiset identical
// and improves the subset's mean production rank.
func TestPrioritizeDesiredContract(t *testing.T) {
	input := []stream.Tuple{
		traffic(1, 1, 10, 50), traffic(2, 1, 20, 55), traffic(1, 2, 30, 60),
		traffic(2, 2, 40, 52), traffic(1, 3, 50, 58), traffic(2, 3, 60, 54),
	}
	fb := core.NewDesired(punct.OnAttr(4, 0, punct.Eq(stream.Int(2))))
	run := func(mode FeedbackMode) []stream.Tuple {
		p := &Prioritize{Schema: trafficSchema, BufferCap: 100, Mode: mode}
		h := exec.NewHarness(p)
		h.Feedback(0, fb)
		h.Tuples(input...)
		h.EOS(0)
		return h.OutTuples(0)
	}
	ref := run(FeedbackIgnore)
	act := run(FeedbackExploit)
	rep := core.CheckDesired(ref, act, fb)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if !rep.Improved() {
		t.Errorf("desired subset must be produced earlier: ref rank %.1f, actual %.1f",
			rep.MeanRankRef, rep.MeanRankActual)
	}
}

func TestPrioritizeIgnoreModeIsFIFO(t *testing.T) {
	p := &Prioritize{Schema: trafficSchema, BufferCap: 2, Mode: FeedbackIgnore}
	h := exec.NewHarness(p)
	h.Feedback(0, core.NewDesired(punct.OnAttr(4, 0, punct.Eq(stream.Int(2)))))
	h.Tuples(traffic(1, 1, 10, 50), traffic(2, 1, 20, 55))
	h.EOS(0)
	got := h.OutTuples(0)
	if len(got) != 2 || got[0].At(0).AsInt() != 1 {
		t.Fatalf("ignore mode must stay FIFO: %v", got)
	}
}

// TestPaceRejectsUnexpectedInput: the index guard over the K-input fan
// (mirrors the one PR 2 gave Aggregate and Join).
func TestPaceRejectsUnexpectedInput(t *testing.T) {
	p := &Pace{Schema: trafficSchema, K: 2, TsAttr: 2}
	h := exec.NewHarness(p)
	if err := p.ProcessTuple(2, traffic(1, 1, 10, 50), h); err == nil {
		t.Error("tuple on input 2 accepted (K=2)")
	}
	if err := p.ProcessPunct(5, tsPunct(10), h); err == nil {
		t.Error("punctuation on input 5 accepted")
	}
	if err := p.ProcessEOS(-1, h); err == nil {
		t.Error("EOS on input -1 accepted")
	}
	if err := p.ProcessTuple(1, traffic(1, 1, 10, 50), h); err != nil {
		t.Fatal(err)
	}
	if err := p.ProcessEOS(0, h); err != nil {
		t.Fatal(err)
	}
}
