package op

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

// Duplicate copies its input to N identical outputs (the fan-out operator
// of the Figure 4(a) imputation plan). Its feedback rule is the paper's
// §4.1 example: because the operator's definition requires the outputs to
// be identical, an exploitation must affect all outputs or none. Duplicate
// therefore suppresses a subset only once *every* consumer has asserted
// assumed feedback covering it, and only then propagates upstream.
type Duplicate struct {
	exec.Base
	OpName string
	Schema stream.Schema
	N      int
	// Mode enables exploitation; Propagate relays unanimously-asserted
	// feedback upstream.
	Mode      FeedbackMode
	Propagate bool

	responseLog
	perOut     []*core.GuardTable // feedback asserted by each consumer
	propagated map[string]bool    // pattern strings already relayed

	in, out, suppressed int64
}

// Name implements exec.Operator.
func (d *Duplicate) Name() string {
	if d.OpName != "" {
		return d.OpName
	}
	return "duplicate"
}

func (d *Duplicate) n() int {
	if d.N <= 0 {
		return 2
	}
	return d.N
}

// InSchemas implements exec.Operator.
func (d *Duplicate) InSchemas() []stream.Schema { return []stream.Schema{d.Schema} }

// OutSchemas implements exec.Operator.
func (d *Duplicate) OutSchemas() []stream.Schema {
	out := make([]stream.Schema, d.n())
	for i := range out {
		out[i] = d.Schema
	}
	return out
}

// Open implements exec.Operator.
func (d *Duplicate) Open(exec.Context) error {
	d.perOut = make([]*core.GuardTable, d.n())
	for i := range d.perOut {
		d.perOut[i] = core.NewGuardTable(d.Schema.Arity())
	}
	d.propagated = map[string]bool{}
	return nil
}

// unanimous reports whether every consumer's asserted feedback covers t.
func (d *Duplicate) unanimous(t stream.Tuple) bool {
	for _, g := range d.perOut {
		if g.Active() == 0 || !g.Suppress(t) {
			return false
		}
	}
	return true
}

// ProcessTuple implements exec.Operator.
func (d *Duplicate) ProcessTuple(_ int, t stream.Tuple, ctx exec.Context) error {
	d.in++
	if d.Mode != FeedbackIgnore && d.unanimous(t) {
		d.suppressed++
		return nil
	}
	d.out++
	for i := 0; i < d.n(); i++ {
		ctx.EmitTo(i, t)
	}
	return nil
}

// ProcessPunct implements exec.Operator: punctuation is duplicated to all
// outputs and drives guard expiration.
func (d *Duplicate) ProcessPunct(_ int, e punct.Embedded, ctx exec.Context) error {
	for _, g := range d.perOut {
		g.ObservePunct(e)
	}
	for i := 0; i < d.n(); i++ {
		ctx.EmitPunctTo(i, e)
	}
	return nil
}

// ProcessFeedback implements exec.Operator: record per-consumer assertions;
// once a pattern is covered by every consumer's assertions, it becomes
// exploitable and (optionally) propagates upstream.
func (d *Duplicate) ProcessFeedback(output int, f core.Feedback, ctx exec.Context) error {
	resp := core.Response{Feedback: f}
	if f.Intent != core.Assumed || d.Mode == FeedbackIgnore {
		resp.Actions = []core.Action{core.ActNone}
		d.logResponse(resp)
		return nil
	}
	d.perOut[output].Install(f)
	// The newly asserted pattern is exploitable iff every other consumer
	// has already asserted a superset of it.
	if coveredByAllOthers(d.perOut, output, f.Pattern) {
		resp.Actions = append(resp.Actions, core.ActGuardInput)
		key := f.Pattern.String()
		if d.Propagate && !d.propagated[key] {
			d.propagated[key] = true
			relayed := f.Relayed(f.Pattern)
			ctx.SendFeedback(0, relayed)
			resp.Actions = append(resp.Actions, core.ActPropagate)
			resp.Propagated = []*core.Feedback{&relayed}
		}
	} else {
		resp.Actions = []core.Action{core.ActNone}
		resp.Note = "awaiting matching feedback from all consumers (outputs must stay identical)"
	}
	d.logResponse(resp)
	return nil
}

// Stats reports tuple accounting.
func (d *Duplicate) Stats() (in, out, suppressed int64) { return d.in, d.out, d.suppressed }
