package op

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/punct"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

// errInputCountChanged reports a snapshot whose input/partition fan does
// not match the rebuilt operator.
func errInputCountChanged(kind, name string, got, want int) error {
	return fmt.Errorf("op: %s %q: snapshot carries %d inputs/partitions but the plan has %d (plan drift)",
		kind, name, got, want)
}

// Two-phase snapshot.Stater implementations for the stateful operators
// (contract: DESIGN.md §7). CaptureState runs at the node's barrier-aligned
// cut on its own goroutine and only clones a consistent view — accumulator
// structs, guard lists, drained changelogs — never serializing there; the
// returned Capture.Encode runs on a background goroutine after the barrier
// releases. The phase-1 invariant is that the view must not alias anything
// the operator mutates afterwards: aggGroup/joinEntry structs are copied by
// value (their Tuple/Value contents are immutable once stored), guard
// tables are flattened with snapshot.GuardsView, and map-typed auxiliaries
// are copied.
//
// Aggregate and Join — the operators whose state grows with the data — keep
// a changelog (keys mutated/deleted since the previous capture) and answer
// CaptureDelta with O(changes) views; the other operators' state is O(1)-ish
// in the stream, so they always capture fully.
//
// The state blob formats of full captures are unchanged from the one-phase
// implementation, so LoadState is shared; delta blobs have their own format
// consumed by ApplyDelta.
//
// Restore additionally honors the paper's state-purging argument at
// recovery time: any state entry covered by an assumed-feedback guard in
// the cut is dropped during LoadState/ApplyDelta, even when the live
// operator had retained it (e.g. the guard-output-only mode keeps folding
// suppressed groups; recovery is free to apply the stronger exploitation,
// since the feedback's issuer has disclaimed the subset — Definition 1
// permits any response up to full suppression).

// DefaultMaxChangelog is the floor of the default cap on an operator's
// incremental-snapshot changelog (dirty + dead keys); the effective
// default is max(DefaultMaxChangelog, live state size), so a healthy
// checkpoint cadence never hits it even on high-cardinality plans — a
// capture drains the changelog, and a changelog that outgrows the state
// itself (dead keys accumulating because checkpointing stopped) collapses,
// making the next capture full.
const DefaultMaxChangelog = 1 << 16

var (
	_ snapshot.TwoPhase    = (*Aggregate)(nil)
	_ snapshot.TwoPhase    = (*Join)(nil)
	_ snapshot.TwoPhase    = (*Impute)(nil)
	_ snapshot.TwoPhase    = (*Pace)(nil)
	_ snapshot.TwoPhase    = (*Merge)(nil)
	_ snapshot.TwoPhase    = (*Split)(nil)
	_ snapshot.TwoPhase    = (*Duplicate)(nil)
	_ snapshot.TwoPhase    = (*Prioritize)(nil)
	_ snapshot.DeltaStater = (*Aggregate)(nil)
	_ snapshot.DeltaStater = (*Join)(nil)
)

// sortedKeys flattens a string set into a sorted slice.
func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// ---------------------------------------------------------------------------
// Aggregate.
// ---------------------------------------------------------------------------

// aggCapEntry is one captured (window, group) accumulator. The aggGroup is
// copied by value; groupVals is shared with the live entry, which never
// mutates it after insertion.
type aggCapEntry struct {
	key string
	g   aggGroup
}

// CaptureState implements snapshot.TwoPhase.
func (a *Aggregate) CaptureState(mode snapshot.CaptureMode) (snapshot.Capture, error) {
	delta := mode == snapshot.CaptureDelta && a.chlogDirty != nil
	var entries []aggCapEntry
	var dead []string
	if delta {
		entries = make([]aggCapEntry, 0, len(a.chlogDirty))
		for k := range a.chlogDirty {
			if g := a.state[k]; g != nil {
				entries = append(entries, aggCapEntry{key: k, g: *g})
			} else {
				dead = append(dead, k)
			}
		}
		dead = append(dead, sortedKeys(a.chlogDead)...)
	} else {
		entries = make([]aggCapEntry, 0, len(a.state))
		for k, g := range a.state {
			entries = append(entries, aggCapEntry{key: k, g: *g})
		}
	}
	// The capture is the new baseline: drain the changelog and (on the
	// first capture) enable tracking.
	a.chlogDirty = make(map[string]bool)
	a.chlogDead = make(map[string]bool)
	guardsOut := snapshot.GuardsView(a.guardsOut)
	guardsPrefix := snapshot.GuardsView(a.guardsPrefix)
	counters := []int64{a.inTuples, a.outTuples, a.folded, a.inSuppressed,
		a.outSuppressed, a.purged, a.partialsEmitted}
	encodeEntry := func(enc *snapshot.Encoder, e *aggCapEntry) {
		enc.PutString(e.key)
		enc.PutInt64(e.g.wid)
		enc.PutValues(e.g.groupVals)
		enc.PutInt64(e.g.count)
		enc.PutFloat64(e.g.sum)
		enc.PutFloat64(e.g.min)
		enc.PutFloat64(e.g.max)
	}
	return snapshot.Capture{
		Delta: delta,
		Encode: func(enc *snapshot.Encoder) error {
			sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
			if delta {
				sort.Strings(dead)
				enc.PutInt(len(dead))
				for _, k := range dead {
					enc.PutString(k)
				}
			}
			enc.PutInt(len(entries))
			for i := range entries {
				encodeEntry(enc, &entries[i])
			}
			snapshot.PutGuardsView(enc, guardsOut)
			snapshot.PutGuardsView(enc, guardsPrefix)
			for _, c := range counters {
				enc.PutInt64(c)
			}
			return nil
		},
	}, nil
}

// SaveState implements snapshot.Stater (one-shot capture + encode).
func (a *Aggregate) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(a, enc)
}

func (a *Aggregate) decodeGroup(dec *snapshot.Decoder) (string, *aggGroup) {
	k := dec.GetString()
	return k, &aggGroup{
		wid:       dec.GetInt64(),
		groupVals: dec.GetValues(),
		count:     dec.GetInt64(),
		sum:       dec.GetFloat64(),
		min:       dec.GetFloat64(),
		max:       dec.GetFloat64(),
	}
}

// dropCovered applies assumption-driven state dropping to one restored
// entry: guards asserted at the cut cover subsets the consumer disclaimed,
// so their state need not survive recovery.
//
//pace:allow-nonote restore-only helper; LoadState/ApplyDelta reset the changelog after it runs
func (a *Aggregate) dropCovered(k string, g *aggGroup) {
	if a.guardsPrefix.Suppress(a.prefixTuple(g.wid, g.groupVals)) ||
		a.guardsOut.Suppress(a.resultTuple(g)) {
		a.purged++
		delete(a.state, k)
	}
}

// LoadState implements snapshot.Stater.
func (a *Aggregate) LoadState(dec *snapshot.Decoder) error {
	n := dec.GetInt()
	state := make(map[string]*aggGroup, dec.CountHint(n))
	for i := 0; i < n && dec.Err() == nil; i++ {
		k, g := a.decodeGroup(dec)
		state[k] = g
	}
	a.guardsOut = snapshot.GetGuards(dec, a.out.Arity())
	a.guardsPrefix = snapshot.GetGuards(dec, a.out.Arity())
	for _, c := range []*int64{&a.inTuples, &a.outTuples, &a.folded, &a.inSuppressed,
		&a.outSuppressed, &a.purged, &a.partialsEmitted} {
		*c = dec.GetInt64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	a.state = state
	for k, g := range state {
		a.dropCovered(k, g)
	}
	// The loaded cut is the delta baseline for the restored run.
	a.chlogDirty = make(map[string]bool)
	a.chlogDead = make(map[string]bool)
	return nil
}

// ApplyDelta implements snapshot.DeltaStater: deletions first, then
// upserts, then the cut's guards and counters replace the current ones.
//
//pace:allow-nonote restore path; the applied cut is the new changelog baseline, rebuilt wholesale
func (a *Aggregate) ApplyDelta(dec *snapshot.Decoder) error {
	nd := dec.GetInt()
	for i := 0; i < nd && dec.Err() == nil; i++ {
		delete(a.state, dec.GetString())
	}
	n := dec.GetInt()
	upserted := make([]string, 0, dec.CountHint(n))
	for i := 0; i < n && dec.Err() == nil; i++ {
		k, g := a.decodeGroup(dec)
		a.state[k] = g
		upserted = append(upserted, k)
	}
	a.guardsOut = snapshot.GetGuards(dec, a.out.Arity())
	a.guardsPrefix = snapshot.GetGuards(dec, a.out.Arity())
	for _, c := range []*int64{&a.inTuples, &a.outTuples, &a.folded, &a.inSuppressed,
		&a.outSuppressed, &a.purged, &a.partialsEmitted} {
		*c = dec.GetInt64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	for _, k := range upserted {
		if g := a.state[k]; g != nil {
			a.dropCovered(k, g)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Join.
// ---------------------------------------------------------------------------

// joinCapKey is one captured hash-table bucket: the key plus value copies
// of its entries (matched mutates in place on the live entries).
type joinCapKey struct {
	key     string
	entries []joinEntry
}

func captureBucket(key string, es []*joinEntry) joinCapKey {
	c := joinCapKey{key: key, entries: make([]joinEntry, len(es))}
	for i, e := range es {
		c.entries[i] = *e
	}
	return c
}

// joinCap is the captured view of a Join.
type joinCap struct {
	delta bool
	sides [2][]joinCapKey
	dead  [2][]string

	leftWM, rightWM     int64
	leftWMSet, rightWMS bool
	lastOutWM           int64
	lastOutWMSet        bool
	leftEOS, rightEOS   bool
	probeCounts         map[int64]int64
	probeDone           int64
	impatient           []string
	feedbackSeq         int64
	guardsL, guardsR    []core.Feedback
	guardsOut           []core.Feedback
	counters            [7]int64
}

// CaptureState implements snapshot.TwoPhase.
func (j *Join) CaptureState(mode snapshot.CaptureMode) (snapshot.Capture, error) {
	v := &joinCap{delta: mode == snapshot.CaptureDelta && j.chlogDirty[0] != nil}
	for side := 0; side < 2; side++ {
		table := j.table(side)
		if v.delta {
			v.sides[side] = make([]joinCapKey, 0, len(j.chlogDirty[side]))
			for k := range j.chlogDirty[side] {
				if es := table[k]; len(es) > 0 {
					v.sides[side] = append(v.sides[side], captureBucket(k, es))
				} else {
					v.dead[side] = append(v.dead[side], k)
				}
			}
			v.dead[side] = append(v.dead[side], sortedKeys(j.chlogDead[side])...)
		} else {
			v.sides[side] = make([]joinCapKey, 0, len(table))
			for k, es := range table {
				v.sides[side] = append(v.sides[side], captureBucket(k, es))
			}
		}
		j.chlogDirty[side] = make(map[string]bool)
		j.chlogDead[side] = make(map[string]bool)
	}
	v.leftWM, v.leftWMSet = j.leftWM, j.leftWMSet
	v.rightWM, v.rightWMS = j.rightWM, j.rightWMS
	v.lastOutWM, v.lastOutWMSet = j.lastOutWM, j.lastOutWMSet
	v.leftEOS, v.rightEOS = j.leftEOS, j.rightEOS
	v.probeCounts = make(map[int64]int64, len(j.probeCounts))
	for w, c := range j.probeCounts {
		v.probeCounts[w] = c
	}
	v.probeDone = j.probeDone
	v.impatient = sortedKeys(j.impatientKeys)
	v.feedbackSeq = j.feedbackSeq
	v.guardsL = snapshot.GuardsView(j.guardsL)
	v.guardsR = snapshot.GuardsView(j.guardsR)
	v.guardsOut = snapshot.GuardsView(j.guardsOut)
	v.counters = [7]int64{j.emitted, j.outerEmitted, j.suppressedIn,
		j.suppressedOut, j.purgedByFeedback, j.thriftySent, j.impatientSent}
	return snapshot.Capture{Delta: v.delta, Encode: v.encode}, nil
}

func putJoinEntry(enc *snapshot.Encoder, e *joinEntry) {
	enc.PutTuple(e.t)
	enc.PutInt64(e.ts)
	enc.PutBool(e.matched)
}

// encode is phase 2; it sees only the captured view.
func (v *joinCap) encode(enc *snapshot.Encoder) error {
	for side := 0; side < 2; side++ {
		buckets := v.sides[side]
		sort.Slice(buckets, func(a, b int) bool { return buckets[a].key < buckets[b].key })
		if v.delta {
			dead := v.dead[side]
			sort.Strings(dead)
			enc.PutInt(len(dead))
			for _, k := range dead {
				enc.PutString(k)
			}
			enc.PutInt(len(buckets))
			for i := range buckets {
				enc.PutString(buckets[i].key)
				enc.PutInt(len(buckets[i].entries))
				for e := range buckets[i].entries {
					putJoinEntry(enc, &buckets[i].entries[e])
				}
			}
		} else {
			// Legacy full format: flat entry list in key order, keys
			// recomputed from the tuples on load.
			total := 0
			for i := range buckets {
				total += len(buckets[i].entries)
			}
			enc.PutInt(total)
			for i := range buckets {
				for e := range buckets[i].entries {
					putJoinEntry(enc, &buckets[i].entries[e])
				}
			}
		}
	}
	v.encodeAux(enc)
	return nil
}

// encodeAux writes the watermark/thrifty/guard/counter tail shared by full
// and delta blobs.
func (v *joinCap) encodeAux(enc *snapshot.Encoder) {
	enc.PutInt64(v.leftWM)
	enc.PutBool(v.leftWMSet)
	enc.PutInt64(v.rightWM)
	enc.PutBool(v.rightWMS)
	enc.PutInt64(v.lastOutWM)
	enc.PutBool(v.lastOutWMSet)
	enc.PutBool(v.leftEOS)
	enc.PutBool(v.rightEOS)
	wids := make([]int64, 0, len(v.probeCounts))
	for w := range v.probeCounts {
		wids = append(wids, w)
	}
	sort.Slice(wids, func(a, b int) bool { return wids[a] < wids[b] })
	enc.PutInt(len(wids))
	for _, w := range wids {
		enc.PutInt64(w)
		enc.PutInt64(v.probeCounts[w])
	}
	enc.PutInt64(v.probeDone)
	enc.PutInt(len(v.impatient))
	for _, k := range v.impatient {
		enc.PutString(k)
	}
	enc.PutInt64(v.feedbackSeq)
	snapshot.PutGuardsView(enc, v.guardsL)
	snapshot.PutGuardsView(enc, v.guardsR)
	snapshot.PutGuardsView(enc, v.guardsOut)
	for _, c := range v.counters {
		enc.PutInt64(c)
	}
}

// SaveState implements snapshot.Stater.
func (j *Join) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(j, enc)
}

// loadAux reads the shared tail (see joinCap.encodeAux).
func (j *Join) loadAux(dec *snapshot.Decoder) {
	j.leftWM = dec.GetInt64()
	j.leftWMSet = dec.GetBool()
	j.rightWM = dec.GetInt64()
	j.rightWMS = dec.GetBool()
	j.lastOutWM = dec.GetInt64()
	j.lastOutWMSet = dec.GetBool()
	j.leftEOS = dec.GetBool()
	j.rightEOS = dec.GetBool()
	nw := dec.GetInt()
	j.probeCounts = make(map[int64]int64, dec.CountHint(nw))
	for i := 0; i < nw && dec.Err() == nil; i++ {
		w := dec.GetInt64()
		j.probeCounts[w] = dec.GetInt64()
	}
	j.probeDone = dec.GetInt64()
	ni := dec.GetInt()
	j.impatientKeys = make(map[string]bool, dec.CountHint(ni))
	for i := 0; i < ni && dec.Err() == nil; i++ {
		j.impatientKeys[dec.GetString()] = true
	}
	j.feedbackSeq = dec.GetInt64()
	j.guardsL = snapshot.GetGuards(dec, j.Left.Arity())
	j.guardsR = snapshot.GetGuards(dec, j.Right.Arity())
	j.guardsOut = snapshot.GetGuards(dec, j.out.Arity())
	for _, c := range []*int64{&j.emitted, &j.outerEmitted, &j.suppressedIn,
		&j.suppressedOut, &j.purgedByFeedback, &j.thriftySent, &j.impatientSent} {
		*c = dec.GetInt64()
	}
}

func getJoinEntry(dec *snapshot.Decoder) *joinEntry {
	return &joinEntry{t: dec.GetTuple(), ts: dec.GetInt64(), matched: dec.GetBool()}
}

// LoadState implements snapshot.Stater.
//
//pace:allow-nonote restore path; the loaded cut is the new changelog baseline, rebuilt wholesale
func (j *Join) LoadState(dec *snapshot.Decoder) error {
	// Tables are re-read after the guards so assumption-driven dropping can
	// consult them — but the wire order must match the encoder, so stash
	// the raw entries first.
	type rawEntry struct {
		e    *joinEntry
		side int
	}
	var raw []rawEntry
	for side := 0; side < 2; side++ {
		n := dec.GetInt()
		for i := 0; i < n && dec.Err() == nil; i++ {
			raw = append(raw, rawEntry{e: getJoinEntry(dec), side: side})
		}
	}
	j.loadAux(dec)
	if err := dec.Err(); err != nil {
		return err
	}
	j.leftTable = make(map[string][]*joinEntry)
	j.rightTable = make(map[string][]*joinEntry)
	for _, r := range raw {
		guards, keys, table := j.guardsL, j.LeftKeys, j.leftTable
		if r.side == 1 {
			guards, keys, table = j.guardsR, j.RightKeys, j.rightTable
		}
		if guards.Suppress(r.e.t) {
			j.purgedByFeedback++
			continue
		}
		table[r.e.t.Key(keys)] = append(table[r.e.t.Key(keys)], r.e)
	}
	j.chlogDirty = [2]map[string]bool{{}, {}}
	j.chlogDead = [2]map[string]bool{{}, {}}
	return nil
}

// ApplyDelta implements snapshot.DeltaStater: per side, deletions then
// per-key bucket replacement, then the aux tail replaces current values.
// Replaced buckets are re-filtered through the cut's input guards, the
// same assumption-driven dropping LoadState applies.
//
//pace:allow-nonote restore path; the applied cut is the new changelog baseline, rebuilt wholesale
func (j *Join) ApplyDelta(dec *snapshot.Decoder) error {
	var replaced [2][]string
	for side := 0; side < 2; side++ {
		table := j.table(side)
		nd := dec.GetInt()
		for i := 0; i < nd && dec.Err() == nil; i++ {
			delete(table, dec.GetString())
		}
		n := dec.GetInt()
		for i := 0; i < n && dec.Err() == nil; i++ {
			k := dec.GetString()
			ne := dec.GetInt()
			es := make([]*joinEntry, 0, dec.CountHint(ne))
			for e := 0; e < ne && dec.Err() == nil; e++ {
				es = append(es, getJoinEntry(dec))
			}
			table[k] = es
			replaced[side] = append(replaced[side], k)
		}
	}
	j.loadAux(dec)
	if err := dec.Err(); err != nil {
		return err
	}
	for side := 0; side < 2; side++ {
		guards := j.guardsL
		if side == 1 {
			guards = j.guardsR
		}
		table := j.table(side)
		for _, k := range replaced[side] {
			kept := table[k][:0]
			for _, e := range table[k] {
				if guards.Suppress(e.t) {
					j.purgedByFeedback++
					continue
				}
				kept = append(kept, e)
			}
			if len(kept) == 0 {
				delete(table, k)
			} else {
				table[k] = kept
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Impute.
// ---------------------------------------------------------------------------

// CaptureState implements snapshot.TwoPhase: the guard table is the whole
// point — losing it on crash would re-expose the archive to lookups the
// feedback already disclaimed. The state is O(guards), so capture is
// always full.
func (im *Impute) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	guards := snapshot.GuardsView(im.guards)
	imputed, skipped, passed := im.imputed, im.skipped, im.passed
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		snapshot.PutGuardsView(enc, guards)
		enc.PutInt64(imputed)
		enc.PutInt64(skipped)
		enc.PutInt64(passed)
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (im *Impute) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(im, enc)
}

// LoadState implements snapshot.Stater.
func (im *Impute) LoadState(dec *snapshot.Decoder) error {
	im.guards = snapshot.GetGuards(dec, im.Schema.Arity())
	im.imputed = dec.GetInt64()
	im.skipped = dec.GetInt64()
	im.passed = dec.GetInt64()
	return dec.Err()
}

// ---------------------------------------------------------------------------
// Pace.
// ---------------------------------------------------------------------------

// paceCap is the captured view of a Pace.
type paceCap struct {
	hw          int64
	hwSet       bool
	lastCutoff  int64
	cutoffSet   bool
	feedbackSeq int64
	sent        int64
	wm          []watermark
	perIn       []PaceInputStats
}

// CaptureState implements snapshot.TwoPhase: the high watermark and
// feedback cutoff are what make a restored PACE keep its promises — a
// fresh one would re-admit tuples the old instance's feedback already
// disclaimed.
func (p *Pace) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	v := &paceCap{
		hw: p.hw, hwSet: p.hwSet,
		lastCutoff: p.lastCutoff, cutoffSet: p.cutoffSet,
		feedbackSeq: p.feedbackSeq, sent: p.feedbackSent,
		wm:    append([]watermark(nil), p.wm...),
		perIn: append([]PaceInputStats(nil), p.perIn...),
	}
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		enc.PutInt64(v.hw)
		enc.PutBool(v.hwSet)
		enc.PutInt64(v.lastCutoff)
		enc.PutBool(v.cutoffSet)
		enc.PutInt64(v.feedbackSeq)
		enc.PutInt64(v.sent)
		enc.PutInt(len(v.wm))
		for _, w := range v.wm {
			enc.PutInt64(w.v)
			enc.PutBool(w.set)
			enc.PutBool(w.eos)
		}
		for _, st := range v.perIn {
			enc.PutInt64(st.Passed)
			enc.PutInt64(st.Dropped)
		}
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (p *Pace) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(p, enc)
}

// LoadState implements snapshot.Stater.
func (p *Pace) LoadState(dec *snapshot.Decoder) error {
	p.hw = dec.GetInt64()
	p.hwSet = dec.GetBool()
	p.lastCutoff = dec.GetInt64()
	p.cutoffSet = dec.GetBool()
	p.feedbackSeq = dec.GetInt64()
	p.feedbackSent = dec.GetInt64()
	n := dec.GetInt()
	if n != p.k() {
		if err := dec.Err(); err != nil {
			return err
		}
		return errInputCountChanged("pace", p.Name(), n, p.k())
	}
	for i := range p.wm {
		p.wm[i].v = dec.GetInt64()
		p.wm[i].set = dec.GetBool()
		p.wm[i].eos = dec.GetBool()
	}
	for i := range p.perIn {
		p.perIn[i].Passed = dec.GetInt64()
		p.perIn[i].Dropped = dec.GetInt64()
	}
	return dec.Err()
}

// ---------------------------------------------------------------------------
// Merge.
// ---------------------------------------------------------------------------

// mergeCapIn is one captured input leg of a Merge.
type mergeCapIn struct {
	eos      bool
	wm       []int64
	wmSet    []bool
	asserted []punct.Pattern
}

// mergeCap is the captured view of a Merge.
type mergeCap struct {
	ins      []mergeCapIn
	wmOut    []int64
	wmOutSet []bool
	pending  []punct.Pattern
	guards   []core.Feedback
	counters [4]int64
}

// CaptureState implements snapshot.TwoPhase: the alignment state —
// per-input frontiers, asserted patterns, the pending list, and the
// already-emitted merged frontier — must survive recovery, otherwise a
// restored merge could re-emit punctuation it already promised (downstream
// would purge twice, harmless) or forward a pattern a lagging partition
// has not re-covered (unsound). Patterns are immutable; the slices holding
// them are copied.
func (m *Merge) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	arity := m.Schema.Arity()
	v := &mergeCap{
		ins:      make([]mergeCapIn, len(m.ins)),
		wmOut:    append([]int64(nil), m.wmOut...),
		wmOutSet: append([]bool(nil), m.wmOutSet...),
		pending:  append([]punct.Pattern(nil), m.pending...),
		guards:   snapshot.GuardsView(m.guards),
		counters: [4]int64{m.in, m.out, m.suppressed, m.aligned},
	}
	for i := range m.ins {
		in := &m.ins[i]
		v.ins[i] = mergeCapIn{
			eos:      in.eos,
			wm:       append([]int64(nil), in.wm...),
			wmSet:    append([]bool(nil), in.wmSet...),
			asserted: append([]punct.Pattern(nil), in.asserted...),
		}
	}
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		enc.PutInt(len(v.ins))
		for i := range v.ins {
			in := &v.ins[i]
			enc.PutBool(in.eos)
			for a := 0; a < arity; a++ {
				enc.PutInt64(in.wm[a])
				enc.PutBool(in.wmSet[a])
			}
			enc.PutInt(len(in.asserted))
			for _, p := range in.asserted {
				enc.PutPattern(p)
			}
		}
		for a := 0; a < arity; a++ {
			enc.PutInt64(v.wmOut[a])
			enc.PutBool(v.wmOutSet[a])
		}
		enc.PutInt(len(v.pending))
		for _, p := range v.pending {
			enc.PutPattern(p)
		}
		snapshot.PutGuardsView(enc, v.guards)
		for _, c := range v.counters {
			enc.PutInt64(c)
		}
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (m *Merge) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(m, enc)
}

// LoadState implements snapshot.Stater.
func (m *Merge) LoadState(dec *snapshot.Decoder) error {
	arity := m.Schema.Arity()
	n := dec.GetInt()
	if n != m.k() {
		if err := dec.Err(); err != nil {
			return err
		}
		return errInputCountChanged("merge", m.Name(), n, m.k())
	}
	for i := range m.ins {
		in := &m.ins[i]
		in.eos = dec.GetBool()
		for a := 0; a < arity; a++ {
			in.wm[a] = dec.GetInt64()
			in.wmSet[a] = dec.GetBool()
		}
		np := dec.GetInt()
		in.asserted = nil
		for p := 0; p < np && dec.Err() == nil; p++ {
			in.asserted = append(in.asserted, dec.GetPatternArity(arity))
		}
	}
	for a := 0; a < arity; a++ {
		m.wmOut[a] = dec.GetInt64()
		m.wmOutSet[a] = dec.GetBool()
	}
	np := dec.GetInt()
	m.pending = nil
	for p := 0; p < np && dec.Err() == nil; p++ {
		m.pending = append(m.pending, dec.GetPatternArity(arity))
	}
	m.guards = snapshot.GetGuards(dec, arity)
	for _, c := range []*int64{&m.in, &m.out, &m.suppressed, &m.aligned} {
		*c = dec.GetInt64()
	}
	return dec.Err()
}

// ---------------------------------------------------------------------------
// Split.
// ---------------------------------------------------------------------------

// splitCap is the captured view of a Split.
type splitCap struct {
	perOut       [][]core.Feedback
	perOutDemand [][]core.Feedback
	propagated   []string
	rr           int
	in           int64
	suppressed   int64
	outPer       []int64
}

// CaptureState implements snapshot.TwoPhase: per-partition guards
// (feedback each partition has asserted), the already-relayed set, and the
// round-robin cursor — the cursor matters for keyless splits, where a
// restored run must continue the same routing sequence to stay canonically
// identical.
func (s *Split) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	v := &splitCap{
		perOut:       make([][]core.Feedback, s.n()),
		perOutDemand: make([][]core.Feedback, s.n()),
		propagated:   sortedKeys(s.propagated),
		rr:           s.rr,
		in:           s.in,
		suppressed:   s.suppressed,
		outPer:       append([]int64(nil), s.outPer...),
	}
	for i := 0; i < s.n(); i++ {
		v.perOut[i] = snapshot.GuardsView(s.perOut[i])
		v.perOutDemand[i] = snapshot.GuardsView(s.perOutDemand[i])
	}
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		enc.PutInt(len(v.perOut))
		for i := range v.perOut {
			snapshot.PutGuardsView(enc, v.perOut[i])
			snapshot.PutGuardsView(enc, v.perOutDemand[i])
		}
		enc.PutInt(len(v.propagated))
		for _, k := range v.propagated {
			enc.PutString(k)
		}
		enc.PutInt(v.rr)
		enc.PutInt64(v.in)
		enc.PutInt64(v.suppressed)
		for _, c := range v.outPer {
			enc.PutInt64(c)
		}
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (s *Split) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(s, enc)
}

// LoadState implements snapshot.Stater.
func (s *Split) LoadState(dec *snapshot.Decoder) error {
	n := dec.GetInt()
	if n != s.n() {
		if err := dec.Err(); err != nil {
			return err
		}
		return errInputCountChanged("split", s.Name(), n, s.n())
	}
	for i := 0; i < s.n(); i++ {
		s.perOut[i] = snapshot.GetGuards(dec, s.Schema.Arity())
		s.perOutDemand[i] = snapshot.GetGuards(dec, s.Schema.Arity())
	}
	nk := dec.GetInt()
	s.propagated = make(map[string]bool, dec.CountHint(nk))
	for i := 0; i < nk && dec.Err() == nil; i++ {
		s.propagated[dec.GetString()] = true
	}
	s.rr = dec.GetInt()
	s.in = dec.GetInt64()
	s.suppressed = dec.GetInt64()
	for i := range s.outPer {
		s.outPer[i] = dec.GetInt64()
	}
	return dec.Err()
}

// ---------------------------------------------------------------------------
// Duplicate.
// ---------------------------------------------------------------------------

// dupCap is the captured view of a Duplicate.
type dupCap struct {
	perOut     [][]core.Feedback
	propagated []string
	counters   [3]int64
}

// CaptureState implements snapshot.TwoPhase. Found by the staterstate
// analyzer: Duplicate accumulated per-consumer guard tables and the
// already-relayed pattern set with no Stater, so a restored instance
// forgot every assertion its consumers had made — it stopped exploiting
// unanimously-asserted feedback (safe but wasteful) and, worse, could
// relay the same pattern upstream a second time. The state mirrors
// Split's: per-output guards, the propagated set, and counters.
func (d *Duplicate) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	v := &dupCap{
		perOut:     make([][]core.Feedback, d.n()),
		propagated: sortedKeys(d.propagated),
		counters:   [3]int64{d.in, d.out, d.suppressed},
	}
	for i := 0; i < d.n(); i++ {
		v.perOut[i] = snapshot.GuardsView(d.perOut[i])
	}
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		enc.PutInt(len(v.perOut))
		for i := range v.perOut {
			snapshot.PutGuardsView(enc, v.perOut[i])
		}
		enc.PutInt(len(v.propagated))
		for _, k := range v.propagated {
			enc.PutString(k)
		}
		for _, c := range v.counters {
			enc.PutInt64(c)
		}
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (d *Duplicate) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(d, enc)
}

// LoadState implements snapshot.Stater.
func (d *Duplicate) LoadState(dec *snapshot.Decoder) error {
	n := dec.GetInt()
	if n != d.n() {
		if err := dec.Err(); err != nil {
			return err
		}
		return errInputCountChanged("duplicate", d.Name(), n, d.n())
	}
	for i := 0; i < d.n(); i++ {
		d.perOut[i] = snapshot.GetGuards(dec, d.Schema.Arity())
	}
	nk := dec.GetInt()
	d.propagated = make(map[string]bool, dec.CountHint(nk))
	for i := 0; i < nk && dec.Err() == nil; i++ {
		d.propagated[dec.GetString()] = true
	}
	for _, c := range []*int64{&d.in, &d.out, &d.suppressed} {
		*c = dec.GetInt64()
	}
	return dec.Err()
}

// ---------------------------------------------------------------------------
// Prioritize.
// ---------------------------------------------------------------------------

// prioCap is the captured view of a Prioritize.
type prioCap struct {
	pending  []stream.Tuple
	desired  []punct.Pattern
	guards   []core.Feedback
	counters [4]int64
}

// CaptureState implements snapshot.TwoPhase. Found by the staterstate
// analyzer: the reorder buffer holds tuples already consumed from
// upstream but not yet emitted, so unlike the engine's genuinely
// stateless pass-throughs a restore without it drops rows from the
// result. Desired patterns and assumed guards ride along (the punctuation
// scheme does not: it only expires desired patterns, and rebuilds from
// post-restore punctuation).
func (p *Prioritize) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	v := &prioCap{
		pending:  append([]stream.Tuple(nil), p.pending...),
		desired:  append([]punct.Pattern(nil), p.desired...),
		guards:   snapshot.GuardsView(p.guards),
		counters: [4]int64{p.in, p.out, p.promoted, p.dropped},
	}
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		enc.PutInt(len(v.pending))
		for _, t := range v.pending {
			enc.PutTuple(t)
		}
		enc.PutInt(len(v.desired))
		for _, d := range v.desired {
			enc.PutPattern(d)
		}
		snapshot.PutGuardsView(enc, v.guards)
		for _, c := range v.counters {
			enc.PutInt64(c)
		}
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (p *Prioritize) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(p, enc)
}

// LoadState implements snapshot.Stater.
func (p *Prioritize) LoadState(dec *snapshot.Decoder) error {
	n := dec.GetInt()
	p.pending = make([]stream.Tuple, 0, dec.CountHint(n))
	for i := 0; i < n && dec.Err() == nil; i++ {
		p.pending = append(p.pending, dec.GetTuple())
	}
	nd := dec.GetInt()
	p.desired = nil
	for i := 0; i < nd && dec.Err() == nil; i++ {
		p.desired = append(p.desired, dec.GetPatternArity(p.Schema.Arity()))
	}
	p.guards = snapshot.GetGuards(dec, p.Schema.Arity())
	for _, c := range []*int64{&p.in, &p.out, &p.promoted, &p.dropped} {
		*c = dec.GetInt64()
	}
	return dec.Err()
}
