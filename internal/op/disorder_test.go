package op

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
	"repro/internal/window"
)

// The OOP architecture's core promise: operator results do not depend on
// physical arrival order, only on punctuation. These tests shuffle inputs
// within punctuation epochs and require identical (set-equal) results.

func shuffleWithinEpochs(r *rand.Rand, tuples []stream.Tuple, epochUS int64, tsAttr int) []stream.Tuple {
	byEpoch := map[int64][]stream.Tuple{}
	var order []int64
	for _, t := range tuples {
		e := t.At(tsAttr).Micros() / epochUS
		if len(byEpoch[e]) == 0 {
			order = append(order, e)
		}
		byEpoch[e] = append(byEpoch[e], t)
	}
	var out []stream.Tuple
	for _, e := range order {
		batch := byEpoch[e]
		r.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
		out = append(out, batch...)
	}
	return out
}

func TestAggregateOrderAgnostic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const epoch = int64(60_000_000)
	var input []stream.Tuple
	for i := 0; i < 600; i++ {
		input = append(input, traffic(r.Int63n(4), r.Int63n(3), r.Int63n(5*epoch), 20+float64(r.Intn(60))))
	}
	run := func(tuples []stream.Tuple) []stream.Tuple {
		a := &Aggregate{
			In: trafficSchema, Kind: core.AggAvg, TsAttr: 2, ValAttr: 3,
			GroupBy: []int{0}, Window: window.Tumbling(epoch),
		}
		h := exec.NewHarness(a)
		// Feed epoch by epoch, punctuating between epochs (disorder is
		// confined within epochs, so punctuation stays truthful).
		lastEpoch := int64(-1)
		for _, tp := range tuples {
			e := tp.At(2).Micros() / epoch
			if lastEpoch >= 0 && e != lastEpoch {
				h.Punct(0, tsPunct(lastEpoch*epoch+epoch-1))
			}
			lastEpoch = e
			h.Tuple(0, tp)
		}
		h.EOS(0)
		if h.Err() != nil {
			t.Fatal(h.Err())
		}
		return h.OutTuples(0)
	}
	// Sort input by epoch first so punctuation boundaries are honest.
	ordered := shuffleWithinEpochs(rand.New(rand.NewSource(1)), input, epoch, 2)
	shuffled := shuffleWithinEpochs(r, input, epoch, 2)
	ref := run(ordered)
	alt := run(shuffled)
	if len(ref) != len(alt) {
		t.Fatalf("result cardinality differs: %d vs %d", len(ref), len(alt))
	}
	// Results are emitted deterministically sorted, so compare directly.
	for i := range ref {
		if !ref[i].Equal(alt[i]) {
			t.Fatalf("result %d differs under disorder: %v vs %v", i, ref[i], alt[i])
		}
	}
}

func TestJoinOrderAgnostic(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	type ev struct {
		input int
		t     stream.Tuple
	}
	var evs []ev
	for i := 0; i < 300; i++ {
		seg, ts := r.Int63n(4), int64(r.Intn(4)*100)
		if r.Intn(2) == 0 {
			evs = append(evs, ev{0, probe(seg, ts, 40)})
		} else {
			evs = append(evs, ev{1, sensor(seg, ts, 50)})
		}
	}
	run := func(events []ev) int {
		j := newTestJoin(FeedbackIgnore, false)
		h := exec.NewHarness(j)
		for _, e := range events {
			h.Tuple(e.input, e.t)
		}
		h.EOS(0).EOS(1)
		return len(h.OutTuples(0))
	}
	ref := run(evs)
	for trial := 0; trial < 5; trial++ {
		alt := append([]ev(nil), evs...)
		r.Shuffle(len(alt), func(i, k int) { alt[i], alt[k] = alt[k], alt[i] })
		if got := run(alt); got != ref {
			t.Fatalf("join cardinality depends on arrival order: %d vs %d", got, ref)
		}
	}
}

// TestFailureInjectionNullStorm floods the imputation plan shape with a
// high failure rate and verifies no nulls leak past IMPUTE.
func TestFailureInjectionNullStorm(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	im := newTestImpute(FeedbackIgnore)
	h := exec.NewHarness(im)
	nulls := 0
	for i := 0; i < 500; i++ {
		if r.Float64() < 0.8 {
			nulls++
			h.Tuple(0, trafficNull(r.Int63n(4), r.Int63n(2), int64(i)*1000))
		} else {
			h.Tuple(0, traffic(r.Int63n(4), r.Int63n(2), int64(i)*1000, 50))
		}
	}
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	got := h.OutTuples(0)
	if len(got) != 500 {
		t.Fatalf("tuples lost: %d", len(got))
	}
	for _, tp := range got {
		if tp.At(3).IsNull() {
			t.Fatal("null leaked past IMPUTE")
		}
	}
	imputed, _, passed := im.Stats()
	if imputed != int64(nulls) || passed != int64(500-nulls) {
		t.Errorf("accounting: imputed=%d passed=%d nulls=%d", imputed, passed, nulls)
	}
}

// TestBurstyRatesThroughPace verifies PACE under alternating burst/quiet
// phases: drops concentrate in the laggard's bursts, and the high
// watermark never regresses.
func TestBurstyRatesThroughPace(t *testing.T) {
	p := &Pace{Schema: trafficSchema, K: 2, TsAttr: 2, Tolerance: 50_000}
	h := exec.NewHarness(p)
	// Fast input: steady progress.
	for i := int64(0); i < 100; i++ {
		h.Tuple(0, traffic(1, 1, i*10_000, 50))
	}
	// Slow input: a burst of stale tuples, then caught-up tuples.
	dropped0 := p.InputStats()[1].Dropped
	for i := int64(0); i < 20; i++ {
		h.Tuple(1, traffic(2, 1, i*1000, 60)) // all ≪ hw−tolerance
	}
	droppedStale := p.InputStats()[1].Dropped - dropped0
	if droppedStale != 20 {
		t.Errorf("stale burst: %d dropped, want 20", droppedStale)
	}
	for i := int64(95); i < 100; i++ {
		h.Tuple(1, traffic(2, 1, i*10_000, 60)) // near the live edge
	}
	st := p.InputStats()
	if st[1].Passed != 5 {
		t.Errorf("caught-up tuples must pass: %+v", st)
	}
	if hw, ok := p.HighWatermark(); !ok || hw != 99*10_000 {
		t.Errorf("hw = %d", hw)
	}
}

// TestGuardsBoundedUnderFeedbackStorm: repeated feedback on a delimited
// attribute must not accumulate guards (§4.4 supportability in practice).
func TestGuardsBoundedUnderFeedbackStorm(t *testing.T) {
	s := &Select{Schema: trafficSchema, Mode: FeedbackExploit}
	h := exec.NewHarness(s)
	for i := int64(1); i <= 200; i++ {
		h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 2, punct.Lt(stream.TimeMicros(i*1000)))))
		if i%2 == 0 {
			h.Punct(0, tsPunct(i*1000))
		}
	}
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	if active := s.guards.Active(); active > 1 {
		t.Errorf("guards accumulated: %d active (subsumption + expiration must bound them)", active)
	}
}
