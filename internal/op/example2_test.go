package op

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
	"repro/internal/window"
)

// Example 2 (§2): with sliding windows, "avoiding the processing of these
// windows by placing a filter at the bottom of the plan to filter out the
// tuples that belong to w3 and w4 is incorrect: those tuples can be part
// of other windows. ... the aggregate can avoid working on the unnecessary
// windows."
//
// These tests pin down both halves of the claim on a slide-by-20 range-60
// window (each tuple belongs to 3 windows):
//
//  1. the aggregate suppresses exactly the unwanted windows while tuples
//     shared with live windows keep contributing to those;
//  2. propagation refuses to produce an input-side filter when no input
//     subset maps exactly onto the window subset (the "bottom filter is
//     incorrect" half).
func TestExample2SlidingWindowFeedback(t *testing.T) {
	a := &Aggregate{
		OpName: "count", In: trafficSchema, Kind: core.AggCount,
		TsAttr: 2, ValAttr: -1, GroupBy: nil,
		Window: window.Sliding(60, 20),
		Mode:   FeedbackExploit, Propagate: true,
	}
	h := exec.NewHarness(a)
	// Feedback: windows starting in [20,40] (windows w1 and w2) are not
	// required. Output schema is (wstart, value): wstart at 0.
	h.Feedback(0, core.NewAssumed(punct.OnAttr(2, 0,
		punct.Range(stream.TimeMicros(20), stream.TimeMicros(40)))))

	// No safe propagation may exist: every tuple in w1 or w2 also
	// belongs to some window outside [20,40].
	if sent := h.SentFeedback(0); len(sent) != 0 {
		t.Fatalf("a bottom-of-plan filter is incorrect here, yet feedback propagated: %v", sent)
	}

	// ts=70 belongs to w1,w2,w3 (starts 20,40,60): must still count in
	// w3. ts=30 belongs to w0,w1 (clipped): must still count in w0.
	h.Tuple(0, traffic(1, 1, 70, 50))
	h.Tuple(0, traffic(1, 1, 30, 50))
	h.EOS(0)
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	got := map[int64]float64{}
	for _, tp := range h.OutTuples(0) {
		got[tp.At(0).Micros()] = tp.At(1).AsFloat()
	}
	if got[20] != 0 || got[40] != 0 {
		t.Errorf("suppressed windows leaked: %v", got)
	}
	if got[0] != 1 {
		t.Errorf("window w0 must keep counting ts=30: %v", got)
	}
	if got[60] != 1 {
		t.Errorf("window w3 must keep counting ts=70: %v", got)
	}
	st := a.Stats()
	if st.InSuppressed == 0 {
		t.Error("per-extent suppression must have occurred")
	}
}

// TestExample2TumblingPropagates is the contrast: with tumbling windows a
// contiguous window range maps exactly onto a timestamp range, so the
// translation to an input-side guard exists and is exact.
func TestExample2TumblingPropagates(t *testing.T) {
	a := &Aggregate{
		OpName: "count", In: trafficSchema, Kind: core.AggCount,
		TsAttr: 2, ValAttr: -1, GroupBy: nil,
		Window: window.Tumbling(60),
		Mode:   FeedbackExploit, Propagate: true,
	}
	h := exec.NewHarness(a)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(2, 0,
		punct.Range(stream.TimeMicros(60), stream.TimeMicros(120))))) // w1, w2
	sent := h.SentFeedback(0)
	if len(sent) != 1 {
		t.Fatalf("tumbling window range must propagate: %v", sent)
	}
	pr := sent[0].Pattern.Pred(2)
	if pr.Op != punct.Between || pr.Val.Micros() != 60 || pr.Hi.Micros() != 179 {
		t.Errorf("translated range: %v (want ts ∈ [60, 179])", sent[0].Pattern)
	}
	// Exactness: a tuple at 59 or 180 survives, anything in [60,179] is
	// suppressed at input.
	h.Tuple(0, traffic(1, 1, 59, 50))
	h.Tuple(0, traffic(1, 1, 60, 50))
	h.Tuple(0, traffic(1, 1, 179, 50))
	h.Tuple(0, traffic(1, 1, 180, 50))
	if st := a.Stats(); st.InSuppressed != 2 || st.Folded != 2 {
		t.Errorf("suppression accounting: %+v", st)
	}
}
