package op

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

// Pace is the paper's specialized UNION (Example 3, §2): it merges K
// same-schema inputs while bounding the divergence between them. Tuples
// whose timestamp lags the high watermark of the timestamps seen by more
// than Tolerance are ignored — they are "too late" for the real-time result
// (the speed map must be current).
//
// Pace is the canonical *producer* of assumed feedback: when it starts
// dropping late tuples, it informs antecedent operators that tuples with
// timestamps at or below the current cutoff are no longer needed
// (¬[…, ≤cutoff, …]), so the expensive upstream path (IMPUTE) can stop
// wasting effort on them. Experiment 1 (Figures 5/6) measures exactly this
// effect.
type Pace struct {
	exec.Base
	OpName string
	Schema stream.Schema
	K      int
	// TsAttr is the timestamp attribute compared against the high
	// watermark.
	TsAttr int
	// Tolerance is the maximum allowed lag (in the timestamp's integer
	// domain, micros for KindTime). Zero or negative disables dropping,
	// reducing Pace to a plain UNION — the paper's no-feedback baseline.
	Tolerance int64
	// FeedbackEnabled turns on production of assumed feedback.
	FeedbackEnabled bool
	// FeedbackMinAdvance rate-limits feedback: a new punctuation is sent
	// only once the cutoff advanced by at least this much since the last
	// one (default Tolerance/4).
	FeedbackMinAdvance int64
	// FeedbackSlack tightens the promised cutoff to hw − Tolerance +
	// slack. Promising exactly the drop bound is uselessly late: an
	// upstream exploiter that discards precisely the promised subset
	// then spends its service time on tuples *at* the boundary, which
	// emerge just past it and are dropped anyway — every serviced tuple
	// becomes borderline-late (Experiment 1 exhibits this without
	// slack). The slack gives upstream room to finish in-flight work
	// inside the tolerance. PACE's own output is unaffected by the
	// larger promise: stragglers inside the promised subset that still
	// arrive within Tolerance are passed through, which keeps every
	// downstream consumer within Definition 1's bounds.
	//
	// Default (0) uses Tolerance/2; negative disables slack.
	FeedbackSlack int64

	hw           int64
	hwSet        bool
	lastCutoff   int64
	cutoffSet    bool
	feedbackSeq  int64
	wm           []watermark
	perIn        []PaceInputStats
	feedbackSent int64
}

// PaceInputStats counts per-input outcomes.
type PaceInputStats struct {
	Passed  int64
	Dropped int64
}

// Name implements exec.Operator.
func (p *Pace) Name() string {
	if p.OpName != "" {
		return p.OpName
	}
	return "pace"
}

func (p *Pace) k() int {
	if p.K <= 0 {
		return 2
	}
	return p.K
}

// InSchemas implements exec.Operator.
func (p *Pace) InSchemas() []stream.Schema {
	in := make([]stream.Schema, p.k())
	for i := range in {
		in[i] = p.Schema
	}
	return in
}

// OutSchemas implements exec.Operator.
func (p *Pace) OutSchemas() []stream.Schema { return []stream.Schema{p.Schema} }

// Open implements exec.Operator.
func (p *Pace) Open(exec.Context) error {
	p.wm = make([]watermark, p.k())
	p.perIn = make([]PaceInputStats, p.k())
	return nil
}

// ProcessTuple implements exec.Operator.
func (p *Pace) ProcessTuple(input int, t stream.Tuple, ctx exec.Context) error {
	if input < 0 || input >= p.k() {
		return fmt.Errorf("op: pace %q: tuple on unexpected input %d (have %d inputs; check plan wiring)", p.Name(), input, p.k())
	}
	ts := t.At(p.TsAttr).I
	if p.Tolerance > 0 && p.hwSet && ts < p.hw-p.Tolerance {
		p.perIn[input].Dropped++
		p.maybeFeedback(ctx)
		return nil
	}
	if !p.hwSet || ts > p.hw {
		p.hw, p.hwSet = ts, true
	}
	p.perIn[input].Passed++
	ctx.Emit(t)
	return nil
}

// maybeFeedback issues assumed feedback for the current cutoff, rate
// limited by FeedbackMinAdvance.
func (p *Pace) maybeFeedback(ctx exec.Context) {
	if !p.FeedbackEnabled {
		return
	}
	slack := p.FeedbackSlack
	switch {
	case slack == 0:
		slack = p.Tolerance / 2
	case slack < 0:
		slack = 0
	}
	cutoff := p.hw - p.Tolerance + slack
	minAdv := p.FeedbackMinAdvance
	if minAdv <= 0 {
		minAdv = p.Tolerance / 4
		if minAdv <= 0 {
			minAdv = 1
		}
	}
	if p.cutoffSet && cutoff < p.lastCutoff+minAdv {
		return
	}
	p.lastCutoff, p.cutoffSet = cutoff, true
	p.feedbackSeq++
	// Strict bound: PACE drops ts < hw−tolerance, so it promises exactly
	// that subset (a tuple at the cutoff itself still passes).
	f := core.Feedback{
		Intent:  core.Assumed,
		Pattern: punct.OnAttr(p.Schema.Arity(), p.TsAttr, punct.Lt(p.tsValue(cutoff))),
		Origin:  p.Name(),
		Seq:     p.feedbackSeq,
	}
	for i := 0; i < ctx.NumInputs(); i++ {
		ctx.SendFeedback(i, f)
	}
	p.feedbackSent++
}

func (p *Pace) tsValue(v int64) stream.Value {
	if p.Schema.Field(p.TsAttr).Kind == stream.KindTime {
		return stream.TimeMicros(v)
	}
	return stream.Int(v)
}

// ProcessPunct implements exec.Operator: progress punctuation is combined
// across inputs like UNION's.
func (p *Pace) ProcessPunct(input int, e punct.Embedded, ctx exec.Context) error {
	if input < 0 || input >= p.k() {
		return fmt.Errorf("op: pace %q: punctuation on unexpected input %d (have %d inputs; check plan wiring)", p.Name(), input, p.k())
	}
	bound := e.Pattern.Bound()
	if len(bound) != 1 || bound[0] != p.TsAttr {
		return nil
	}
	pr := e.Pattern.Pred(p.TsAttr)
	var v int64
	switch pr.Op {
	case punct.LE:
		v = pr.Val.I
	case punct.LT:
		v = pr.Val.I - 1
	default:
		return nil
	}
	before := p.minWM()
	if !p.wm[input].set || v > p.wm[input].v {
		p.wm[input].set = true
		p.wm[input].v = v
	}
	if after := p.minWM(); after.set && (!before.set || after.v > before.v) {
		ctx.EmitPunct(punct.NewEmbedded(
			punct.OnAttr(p.Schema.Arity(), p.TsAttr, punct.Le(p.tsValue(after.v)))))
	}
	return nil
}

func (p *Pace) minWM() watermark {
	out := watermark{set: true}
	first := true
	for _, w := range p.wm {
		if w.eos {
			continue
		}
		if !w.set {
			return watermark{}
		}
		if first || w.v < out.v {
			out.v = w.v
			first = false
		}
	}
	if first {
		return watermark{}
	}
	return out
}

// ProcessEOS implements exec.Operator.
func (p *Pace) ProcessEOS(input int, ctx exec.Context) error {
	if input < 0 || input >= p.k() {
		return fmt.Errorf("op: pace %q: EOS on unexpected input %d (have %d inputs; check plan wiring)", p.Name(), input, p.k())
	}
	p.wm[input].eos = true
	if m := p.minWM(); m.set {
		ctx.EmitPunct(punct.NewEmbedded(
			punct.OnAttr(p.Schema.Arity(), p.TsAttr, punct.Le(p.tsValue(m.v)))))
	}
	return nil
}

// InputStats returns per-input pass/drop counts.
func (p *Pace) InputStats() []PaceInputStats { return append([]PaceInputStats(nil), p.perIn...) }

// FeedbackSent returns how many feedback punctuations were produced.
func (p *Pace) FeedbackSent() int64 { return p.feedbackSent }

// HighWatermark returns the maximum timestamp seen.
func (p *Pace) HighWatermark() (int64, bool) { return p.hw, p.hwSet }
