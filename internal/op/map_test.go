package op

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

func kmhMap(mode FeedbackMode, propagate bool) *Map {
	return &Map{
		OpName: "to-kmh", In: trafficSchema,
		Outs: []MapAttr{
			Carry("segment"),
			CarryAs("when", "ts"),
			Compute("speed_kmh", stream.KindFloat, func(t stream.Tuple) stream.Value {
				v := t.At(3)
				if v.IsNull() {
					return stream.Null
				}
				return stream.Float(v.AsFloat() * 1.609344)
			}),
		},
		Mode: mode, Propagate: propagate,
	}
}

func TestMapTransforms(t *testing.T) {
	m := kmhMap(FeedbackIgnore, false)
	out := m.OutSchemas()[0]
	if out.Arity() != 3 || out.Index("speed_kmh") != 2 || out.Field(1).Kind != stream.KindTime {
		t.Fatalf("schema: %s", out)
	}
	h := exec.NewHarness(m)
	h.Tuple(0, traffic(3, 1, 500, 50))
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(2).AsFloat() != 50*1.609344 {
		t.Fatalf("transform: %v", got)
	}
	if got[0].At(0).AsInt() != 3 || got[0].At(1).Micros() != 500 {
		t.Error("carried attributes")
	}
}

func TestMapPunctRelayRules(t *testing.T) {
	m := kmhMap(FeedbackIgnore, false)
	h := exec.NewHarness(m)
	// ts is carried (as "when"): relays projected.
	h.Punct(0, tsPunct(100))
	ps := h.OutPuncts(0)
	if len(ps) != 1 || ps[0].Pattern.Bound()[0] != 1 {
		t.Fatalf("carried punct: %v", ps)
	}
	// speed punctuation binds an uncarried attribute: consumed.
	h.Punct(0, punct.NewEmbedded(punct.OnAttr(4, 3, punct.Ge(stream.Float(50)))))
	if len(h.OutPuncts(0)) != 1 {
		t.Error("punct on an uncarried attribute must not relay")
	}
}

func TestMapFeedback(t *testing.T) {
	m := kmhMap(FeedbackExploit, true)
	h := exec.NewHarness(m)
	// Feedback on a carried attribute: guard + propagate.
	f := core.NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(3))))
	h.Feedback(0, f)
	if sent := h.SentFeedback(0); len(sent) != 1 || sent[0].Pattern.Arity() != 4 {
		t.Fatalf("propagation: %v", sent)
	}
	h.Tuple(0, traffic(3, 1, 500, 50))
	if len(h.OutTuples(0)) != 0 {
		t.Fatal("guarded map must suppress")
	}
	// Feedback on the computed attribute: guard output only, no
	// propagation.
	h.Feedback(0, core.NewAssumed(punct.OnAttr(3, 2, punct.Ge(stream.Float(100)))))
	if len(h.SentFeedback(0)) != 1 {
		t.Error("computed-attribute feedback must not propagate")
	}
	h.Tuple(0, traffic(4, 1, 600, 80)) // 128.7 km/h ≥ 100: suppressed
	h.Tuple(0, traffic(4, 1, 700, 30)) // 48.3 km/h: passes
	got := h.OutTuples(0)
	if len(got) != 1 || got[0].At(1).Micros() != 700 {
		t.Fatalf("computed guard: %v", got)
	}
}

func TestMapDefinition1(t *testing.T) {
	input := []stream.Tuple{
		traffic(1, 1, 10, 50), traffic(2, 1, 20, 80), traffic(3, 1, 30, 20),
	}
	fb := core.NewAssumed(punct.OnAttr(3, 2, punct.Ge(stream.Float(100))))
	run := func(mode FeedbackMode) []stream.Tuple {
		m := kmhMap(mode, false)
		h := exec.NewHarness(m)
		h.Feedback(0, fb)
		h.Tuples(input...)
		return h.OutTuples(0)
	}
	if err := core.CheckExploitation(run(FeedbackIgnore), run(FeedbackExploit), fb).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestMapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown carried attribute must panic at init")
		}
	}()
	m := &Map{In: trafficSchema, Outs: []MapAttr{Carry("nope")}}
	m.OutSchemas()
}
