package op

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Project narrows a stream to a subset of attributes (optionally renamed
// via the output schema names). Every output attribute carries an input
// attribute, so assumed feedback over the output schema always has a safe
// propagation; embedded punctuation survives downstream iff its bound
// attributes are kept (see RelayPunct).
//
//pace:stateless guards are exploitation-only; losing them on restore means suppressing less, never wrong results
type Project struct {
	exec.Base
	OpName string
	In     stream.Schema
	// Keep lists the input attribute names to retain, in output order.
	Keep []string
	// Mode/Propagate configure feedback response as in Select.
	Mode      FeedbackMode
	Propagate bool

	responseLog
	out      stream.Schema
	idxs     []int // output attr → input attr
	identity bool  // output carries every input attr in order: no copy
	guards   *core.GuardTable
	attrMap  core.AttrMap

	// Counters are atomics so /metrics can scrape them while the plan runs.
	nIn, nOut, suppressed, punctDropped atomic.Int64
	fb                                  fbCounters
}

// Name implements exec.Operator.
func (p *Project) Name() string {
	if p.OpName != "" {
		return p.OpName
	}
	return "project"
}

// InSchemas implements exec.Operator.
func (p *Project) InSchemas() []stream.Schema { return []stream.Schema{p.In} }

// OutSchemas implements exec.Operator.
func (p *Project) OutSchemas() []stream.Schema {
	if p.out.Arity() == 0 {
		p.mustInit()
	}
	return []stream.Schema{p.out}
}

func (p *Project) mustInit() {
	if err := p.Init(); err != nil {
		panic(err.Error())
	}
}

// Init resolves the Keep list against the input schema, reporting a bad
// projection as an error instead of the panic OutSchemas/Open would raise.
// plan.Builder calls it at wiring time so misconfiguration surfaces through
// Builder.Err(). Calling Init again is a cheap no-op once it has succeeded.
func (p *Project) Init() error {
	if p.out.Arity() > 0 {
		return nil
	}
	out, idxs, err := p.In.Project(p.Keep...)
	if err != nil {
		return fmt.Errorf("op: project %q: %v", p.Name(), err)
	}
	p.out, p.idxs = out, idxs
	p.identity = identityMapping(idxs, p.In.Arity())
	p.attrMap = core.AttrMap{InputArity: p.In.Arity(), ToInput: append([]int(nil), idxs...)}
	return nil
}

// identityMapping reports whether idxs carries every one of arity input
// attributes in order, i.e. the projection is a (possibly renaming) no-op
// on values.
func identityMapping(idxs []int, arity int) bool {
	if len(idxs) != arity {
		return false
	}
	for i, src := range idxs {
		if src != i {
			return false
		}
	}
	return true
}

// Open implements exec.Operator.
func (p *Project) Open(exec.Context) error {
	if p.out.Arity() == 0 {
		p.mustInit()
	}
	p.guards = core.NewGuardTable(p.out.Arity())
	return nil
}

// ProcessTuple implements exec.Operator.
//
//pace:hotpath
func (p *Project) ProcessTuple(_ int, t stream.Tuple, ctx exec.Context) error {
	p.nIn.Add(1)
	projected := t
	if !p.identity {
		projected = t.Project(p.idxs)
	}
	// Identity projections share the input's Values: safe because tuples
	// are immutable after emit (DESIGN.md §2.1).
	if p.Mode != FeedbackIgnore && p.guards.Suppress(projected) {
		p.suppressed.Add(1)
		return nil
	}
	p.nOut.Add(1)
	ctx.Emit(projected)
	return nil
}

// ProcessPunct implements exec.Operator: punctuation is projected when its
// guarantee survives the attribute drop, otherwise it is consumed here.
func (p *Project) ProcessPunct(_ int, e punct.Embedded, ctx exec.Context) error {
	outputOf := func(in int) int {
		for o, src := range p.idxs {
			if src == in {
				return o
			}
		}
		return -1
	}
	if projected, ok := RelayPunct(e.Pattern, outputOf, p.out.Arity()); ok {
		pe := punct.NewEmbedded(projected)
		p.guards.ObservePunct(pe)
		ctx.EmitPunct(pe)
	} else {
		p.punctDropped.Add(1)
	}
	return nil
}

// ProcessFeedback implements exec.Operator: guard the (projected) output
// and propagate the pattern in input-schema terms.
func (p *Project) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	p.fb.received.Add(1)
	resp := core.Response{Feedback: f}
	if f.Intent == core.Assumed && p.Mode != FeedbackIgnore {
		p.guards.Install(f)
		p.fb.exploited.Add(1)
		resp.Actions = append(resp.Actions, core.ActGuardInput, core.ActGuardOutput)
	}
	if p.Propagate {
		if prop := core.SafePropagation(f.Pattern, p.attrMap); prop.OK {
			relayed := f.Relayed(prop.Pattern)
			ctx.SendFeedback(0, relayed)
			p.fb.forwarded.Add(1)
			resp.Actions = append(resp.Actions, core.ActPropagate)
			resp.Propagated = []*core.Feedback{&relayed}
		} else {
			resp.Note = "propagation refused: " + prop.Reason
		}
	}
	if len(resp.Actions) == 0 {
		resp.Actions = []core.Action{core.ActNone}
	}
	p.logResponse(resp)
	return nil
}

// Stats reports tuple accounting.
func (p *Project) Stats() (in, out, suppressed, punctDropped int64) {
	return p.nIn.Load(), p.nOut.Load(), p.suppressed.Load(), p.punctDropped.Load()
}

// SuppressedTuples reports guard suppressions, scrape-safe.
func (p *Project) SuppressedTuples() int64 { return p.suppressed.Load() }

// PunctDropped reports punctuation consumed here because its bound
// attributes did not survive the projection.
func (p *Project) PunctDropped() int64 { return p.punctDropped.Load() }

// TelemetryVars implements telemetry.VarExporter.
func (p *Project) TelemetryVars() []telemetry.Var {
	vars := append(tupleVars(&p.nIn, &p.nOut, &p.suppressed), p.fb.vars()...)
	return append(vars, telemetry.Var{
		Name: "pace_op_punct_dropped_total", Help: "Punctuations consumed because bound attributes were dropped.",
		Kind: telemetry.Counter, Value: p.punctDropped.Load,
	})
}
