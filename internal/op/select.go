package op

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/work"
)

// Select filters tuples by a predicate. It is stateless, so its feedback
// characterization is the simplest in the paper (§4.3): "assumed
// punctuation can simply be added to its select condition" — an input guard
// and an output guard coincide — and, being an identity mapping, any
// assumed feedback propagates safely upstream.
//
// Cost models per-tuple evaluation expense (e.g. the data-quality filter at
// the bottom of the Figure 4(b) plan); the Figure 7 F3 scheme saves this
// cost for suppressed tuples.
//
//pace:stateless guards are exploitation-only; losing them on restore means suppressing less, never wrong results (Definition 1)
type Select struct {
	exec.Base
	OpName string
	Schema stream.Schema
	// Cond keeps tuples for which it returns true; nil keeps everything.
	Cond func(stream.Tuple) bool
	// Expr, when set, is a compiled flat filter evaluated before Cond —
	// the closure-free form PaceQL WHERE clauses and fused kernels use.
	// When both are set a tuple must pass both.
	Expr *Expr
	// Cost is the work units burned per tuple *evaluated* (guards are
	// checked first: a suppressed tuple costs nothing, which is exactly
	// the saving feedback buys).
	Cost int
	// Mode configures feedback response; Propagate relays feedback
	// upstream after exploiting.
	Mode      FeedbackMode
	Propagate bool

	responseLog
	guards *core.GuardTable
	meter  work.Meter

	// Counters are atomics so /metrics can scrape them while the plan
	// runs; uncontended adds cost a few ns, within the hot path's noise.
	in, out, suppressed atomic.Int64
	fb                  fbCounters
}

// Name implements exec.Operator.
func (s *Select) Name() string {
	if s.OpName != "" {
		return s.OpName
	}
	return "select"
}

// InSchemas implements exec.Operator.
func (s *Select) InSchemas() []stream.Schema { return []stream.Schema{s.Schema} }

// OutSchemas implements exec.Operator.
func (s *Select) OutSchemas() []stream.Schema { return []stream.Schema{s.Schema} }

// Open implements exec.Operator.
func (s *Select) Open(exec.Context) error {
	s.guards = core.NewGuardTable(s.Schema.Arity())
	return nil
}

// ProcessTuple implements exec.Operator.
//
//pace:hotpath
func (s *Select) ProcessTuple(_ int, t stream.Tuple, ctx exec.Context) error {
	s.in.Add(1)
	if s.Mode != FeedbackIgnore && s.guards.Suppress(t) {
		s.suppressed.Add(1)
		return nil
	}
	if s.Cost > 0 {
		s.meter.Do(s.Cost)
	}
	if (s.Expr == nil || s.Expr.Eval(t)) && (s.Cond == nil || s.Cond(t)) {
		s.out.Add(1)
		ctx.Emit(t)
	}
	return nil
}

// ProcessPunct implements exec.Operator: a filter never weakens a
// completeness guarantee, so punctuation passes through unchanged; it also
// drives guard expiration (§4.4).
func (s *Select) ProcessPunct(_ int, e punct.Embedded, ctx exec.Context) error {
	s.guards.ObservePunct(e)
	ctx.EmitPunct(e)
	return nil
}

// ProcessFeedback implements exec.Operator per the SELECT characterization.
func (s *Select) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	s.fb.received.Add(1)
	resp := core.Response{Feedback: f}
	switch f.Intent {
	case core.Assumed:
		if s.Mode != FeedbackIgnore {
			s.guards.Install(f)
			s.fb.exploited.Add(1)
			resp.Actions = append(resp.Actions, core.ActGuardInput, core.ActGuardOutput)
		} else {
			resp.Actions = append(resp.Actions, core.ActNone)
		}
	case core.Desired, core.Demanded:
		// Stateless: nothing to reorder or unblock locally.
		resp.Actions = append(resp.Actions, core.ActNone)
	}
	if s.Propagate && ctx.NumInputs() > 0 {
		// Identity schema: propagation is always safe.
		relayed := f.Relayed(f.Pattern)
		ctx.SendFeedback(0, relayed)
		s.fb.forwarded.Add(1)
		resp.Actions = append(resp.Actions, core.ActPropagate)
		resp.Propagated = []*core.Feedback{&relayed}
	}
	s.logResponse(resp)
	return nil
}

// Stats reports tuple accounting.
func (s *Select) Stats() (in, out, suppressed int64) {
	return s.in.Load(), s.out.Load(), s.suppressed.Load()
}

// SuppressedTuples reports guard suppressions, scrape-safe; exec.Graph
// surfaces it per edge (EdgeInfo.Suppressed).
func (s *Select) SuppressedTuples() int64 { return s.suppressed.Load() }

// TelemetryVars implements telemetry.VarExporter.
func (s *Select) TelemetryVars() []telemetry.Var {
	return append(tupleVars(&s.in, &s.out, &s.suppressed), s.fb.vars()...)
}

// CostBurned reports total evaluation work done.
func (s *Select) CostBurned() int64 { return s.meter.Total() }

// String describes the operator.
func (s *Select) String() string {
	if s.Expr != nil {
		return fmt.Sprintf("SELECT[%s %s mode=%s]", s.Name(), s.Expr, s.Mode)
	}
	return fmt.Sprintf("SELECT[%s mode=%s]", s.Name(), s.Mode)
}
