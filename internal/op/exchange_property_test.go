package op

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/queue"
)

// TestMergeAlignmentProperty drives K partition streams with randomly
// interleaved tuples and watermark punctuation through the concurrent
// runtime (run under -race in CI) and checks the alignment safety
// property on the merged stream: punctuation is a promise, so no tuple
// matching an already-emitted pattern may appear after it. One partition
// goes EOS early each round; the run completing at all is the liveness
// half (alignment must not deadlock waiting on an ended input).
func TestMergeAlignmentProperty(t *testing.T) {
	for round := int64(0); round < 12; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			rng := rand.New(rand.NewSource(41 + round))
			k := 2 + rng.Intn(3)

			g := exec.NewGraph()
			g.SetQueueOptions(queue.Options{PageSize: 1 + rng.Intn(8), FlushOnPunct: true})
			mg := &Merge{Schema: trafficSchema, K: k, Mode: FeedbackExploit, Propagate: true}
			ports := make([]exec.Port, k)
			for part := 0; part < k; part++ {
				n := 40 + rng.Intn(120)
				if part == k-1 {
					n = 1 + rng.Intn(5) // this partition ends early
				}
				src := &exec.SliceSource{
					SourceName: fmt.Sprintf("part%d", part),
					Schema:     trafficSchema,
					Items:      partitionScript(rng, int64(part), n),
					BatchSize:  1 + rng.Intn(4),
				}
				ports[part] = exec.From(g.AddSource(src))
			}
			mid := g.Add(mg, ports...)
			sink := exec.NewCollector("sink", trafficSchema)
			g.Add(sink, exec.From(mid))

			done := make(chan error, 1)
			go func() { done <- g.Run() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("partitioned run deadlocked")
			}

			// Safety: no tuple matching an earlier emitted pattern.
			var promised []punct.Pattern
			for i, it := range sink.Items() {
				switch it.Kind {
				case queue.ItemPunct:
					promised = append(promised, it.Punct.Pattern)
				case queue.ItemTuple:
					for _, p := range promised {
						if p.Matches(it.Tuple) {
							t.Fatalf("item %d: tuple %v arrived after punctuation %v promised its subset complete",
								i, it.Tuple, p)
						}
					}
				}
			}
		})
	}
}

// partitionScript builds one partition's substream: strictly increasing
// timestamps with punctuation inserted at random points, each asserting
// exactly the prefix already emitted (correct per-partition watermark
// discipline).
func partitionScript(rng *rand.Rand, seg int64, n int) []queue.Item {
	var items []queue.Item
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += 1 + int64(rng.Intn(500))
		items = append(items, queue.TupleItem(traffic(seg, int64(i%7), ts, 40+float64(rng.Intn(30)))))
		if rng.Intn(4) == 0 {
			items = append(items, queue.PunctItem(tsPunct(ts)))
		}
	}
	items = append(items, queue.PunctItem(tsPunct(ts)))
	return items
}
