package op

import (
	"fmt"
	"strings"

	"repro/internal/punct"
	"repro/internal/stream"
)

// ExprStep is one conjunct of a flat filter expression: a predicate applied
// to a single column. Name is optional and only used for rendering (EXPLAIN
// and Select.String); evaluation goes through Col alone.
type ExprStep struct {
	Col  int
	Name string
	Pred punct.Pred
}

// Expr is a compiled conjunction over tuple columns: a flat step table of
// (column index, opcode, operand) rows, evaluated in order with no closures
// and no per-tuple allocation. Ordering comparisons against Int/Time/Bool
// and Float operands compile to opcodes whose comparisons run inline in
// Eval's loop — no function call at all on the hot path; everything else
// (In-sets, string ordering, IsNull, mixed-kind numeric comparisons) falls
// back to the same devirtualized form punct.Pattern.Compile uses for guard
// matching. It is the evaluation form the PaceQL WHERE clause and fused
// kernels share, replacing the nested func(Tuple) bool trees query.go used
// to build.
//
// An Expr is immutable after construction and safe for concurrent use.
type Expr struct {
	steps []exprStep
}

// Opcodes for the inline comparison paths. opGeneric routes through the
// compiled predicate; the rest compare Value.I (integer-domain kinds) or
// Value.F (floats) directly, guarded by an exact kind match.
const (
	opGeneric uint8 = iota
	opIntEQ
	opIntNE
	opIntLT
	opIntLE
	opIntGT
	opIntGE
	opIntBetween
	opFloatEQ
	opFloatNE
	opFloatLT
	opFloatLE
	opFloatGT
	opFloatGE
	opFloatBetween
)

type exprStep struct {
	col  int
	code uint8
	kind stream.Kind // operand kind the inline path requires of the value
	i    int64       // integer-domain operand (lo bound for Between)
	iHi  int64
	f    float64 // float operand (lo bound for Between)
	fHi  float64
	name string
	pred punct.CompiledPred // exact semantics for everything the opcodes skip
	raw  punct.Pred
}

// compileStep picks the opcode. Mixed-kind bounds and every non-ordering
// predicate stay on the generic path, whose semantics are authoritative.
func compileStep(s ExprStep) exprStep {
	st := exprStep{col: s.Col, name: s.Name, pred: punct.CompilePred(s.Pred), raw: s.Pred}
	var base uint8
	switch k := s.Pred.Val.Kind; {
	case k == stream.KindInt || k == stream.KindTime || k == stream.KindBool:
		base = opIntEQ
		st.i, st.iHi = s.Pred.Val.I, s.Pred.Hi.I
	case k == stream.KindFloat:
		base = opFloatEQ
		st.f, st.fHi = s.Pred.Val.F, s.Pred.Hi.F
	default:
		return st
	}
	st.kind = s.Pred.Val.Kind
	switch s.Pred.Op {
	case punct.EQ:
		st.code = base
	case punct.NE:
		st.code = base + 1
	case punct.LT:
		st.code = base + 2
	case punct.LE:
		st.code = base + 3
	case punct.GT:
		st.code = base + 4
	case punct.GE:
		st.code = base + 5
	case punct.Between:
		if s.Pred.Hi.Kind != s.Pred.Val.Kind {
			return st // mixed-kind bounds: SQL incomparability, generic only
		}
		st.code = base + 6
	}
	return st
}

// NewExpr compiles the steps against a schema of the given arity. Unlike
// Pattern, an Expr may bind several predicates to the same column (WHERE
// speed > 10 AND speed < 55). A step whose column is out of [0, arity)
// is a construction error, not a runtime panic.
func NewExpr(arity int, steps ...ExprStep) (*Expr, error) {
	e := &Expr{steps: make([]exprStep, 0, len(steps))}
	for _, s := range steps {
		if s.Col < 0 || s.Col >= arity {
			return nil, fmt.Errorf("op: expr step %q: column %d out of range (arity %d)", s.Name, s.Col, arity)
		}
		e.steps = append(e.steps, compileStep(s))
	}
	return e, nil
}

// Eval reports whether the tuple satisfies every step. No allocation, and
// no function call for opcode-compiled comparisons on matching kinds.
//
//pace:hotpath
func (e *Expr) Eval(t stream.Tuple) bool {
	for i := range e.steps {
		s := &e.steps[i]
		v := &t.Values[s.col]
		if s.code == opGeneric || v.Kind != s.kind {
			// Generic predicate, null value, or mixed-kind comparison:
			// the compiled predicate owns those semantics.
			if !s.pred.Matches(*v) {
				return false
			}
			continue
		}
		ok := false
		switch s.code {
		case opIntEQ:
			ok = v.I == s.i
		case opIntNE:
			ok = v.I != s.i
		case opIntLT:
			ok = v.I < s.i
		case opIntLE:
			ok = v.I <= s.i
		case opIntGT:
			ok = v.I > s.i
		case opIntGE:
			ok = v.I >= s.i
		case opIntBetween:
			ok = v.I >= s.i && v.I <= s.iHi
		case opFloatEQ:
			ok = v.F == s.f
		case opFloatNE:
			ok = v.F != s.f
		case opFloatLT:
			ok = v.F < s.f
		case opFloatLE:
			ok = v.F <= s.f
		case opFloatGT:
			ok = v.F > s.f
		case opFloatGE:
			ok = v.F >= s.f
		case opFloatBetween:
			ok = v.F >= s.f && v.F <= s.fHi
		}
		if !ok {
			return false
		}
	}
	return true
}

// NumSteps returns the number of conjuncts.
func (e *Expr) NumSteps() int { return len(e.steps) }

// String renders the conjunction, preferring attribute names when present.
func (e *Expr) String() string {
	if len(e.steps) == 0 {
		return "true"
	}
	var b strings.Builder
	for i := range e.steps {
		s := &e.steps[i]
		if i > 0 {
			b.WriteString(" AND ")
		}
		rendered := s.raw.String()
		if s.raw.Op == punct.EQ {
			rendered = "=" + rendered // bare value in Pred notation; make the comparison explicit
		}
		if s.name != "" {
			fmt.Fprintf(&b, "%s%s", s.name, rendered)
		} else {
			fmt.Fprintf(&b, "[%d]%s", s.col, rendered)
		}
	}
	return b.String()
}
