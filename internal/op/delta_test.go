package op

import (
	"bytes"
	"testing"

	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

// encodeCap runs a capture's phase 2 and returns the blob.
func encodeCap(t *testing.T, c snapshot.Capture) []byte {
	t.Helper()
	enc := snapshot.NewEncoder()
	if err := c.Encode(enc); err != nil {
		t.Fatal(err)
	}
	blob, err := enc.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// fullBlob serializes an operator's complete state.
func fullBlob(t *testing.T, st snapshot.Stater) []byte {
	t.Helper()
	enc := snapshot.NewEncoder()
	if err := st.SaveState(enc); err != nil {
		t.Fatal(err)
	}
	blob, err := enc.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// applyChain loads base then deltas into a freshly opened twin.
func applyChain(t *testing.T, to snapshot.Stater, base []byte, deltas ...[]byte) {
	t.Helper()
	dec := snapshot.NewDecoder(base)
	if err := to.LoadState(dec); err != nil {
		t.Fatalf("load base: %v", err)
	}
	ds, ok := to.(snapshot.DeltaStater)
	if !ok {
		t.Fatal("twin does not implement DeltaStater")
	}
	for i, d := range deltas {
		dec := snapshot.NewDecoder(d)
		if err := ds.ApplyDelta(dec); err != nil {
			t.Fatalf("apply delta %d: %v", i, err)
		}
		if dec.Remaining() != 0 {
			t.Fatalf("delta %d left %d bytes unread", i, dec.Remaining())
		}
	}
}

// TestAggregateDeltaCapture: base capture + two deltas (covering group
// mutation, creation, and punctuation-driven deletion) reassemble into a
// state byte-identical to a direct full serialization.
func TestAggregateDeltaCapture(t *testing.T) {
	a := minuteAvg(FeedbackExploit, false)
	h := exec.NewHarness(a)
	h.Tuples(
		traffic(1, 1, 10*1_000_000, 40),
		traffic(2, 1, 20*1_000_000, 30),
		traffic(3, 1, 40*1_000_000, 55),
	)
	cap0, err := a.CaptureState(snapshot.CaptureFull)
	if err != nil {
		t.Fatal(err)
	}

	// Interval 1: mutate one group, create another.
	h.Tuples(
		traffic(1, 2, 30*1_000_000, 60),
		traffic(4, 1, 50*1_000_000, 70),
	)
	cap1, err := a.CaptureState(snapshot.CaptureDelta)
	if err != nil {
		t.Fatal(err)
	}
	if !cap1.Delta {
		t.Fatal("second capture is not a delta")
	}

	// Interval 2: close the first window — groups are emitted and deleted.
	h.Punct(0, tsPunct(2*minute))
	h.Tuples(traffic(5, 1, 130*1_000_000, 45))
	cap2, err := a.CaptureState(snapshot.CaptureDelta)
	if err != nil {
		t.Fatal(err)
	}
	if h.Err() != nil {
		t.Fatal(h.Err())
	}

	base, d1, d2 := encodeCap(t, cap0), encodeCap(t, cap1), encodeCap(t, cap2)
	if len(d1) >= len(base) {
		t.Fatalf("delta (%dB) not smaller than base (%dB) for a 2-group change over 3", len(d1), len(base))
	}

	twin := minuteAvg(FeedbackExploit, false)
	ht := exec.NewHarness(twin)
	if ht.Err() != nil {
		t.Fatal(ht.Err())
	}
	applyChain(t, twin, base, d1, d2)
	if got, want := fullBlob(t, twin), fullBlob(t, a); !bytes.Equal(got, want) {
		t.Fatalf("reassembled state differs from live state (%dB vs %dB)", len(got), len(want))
	}
}

var (
	deltaL = stream.MustSchema(stream.F("k", stream.KindInt), stream.F("ts", stream.KindTime), stream.F("v", stream.KindFloat))
	deltaR = stream.MustSchema(stream.F("k", stream.KindInt), stream.F("ts", stream.KindTime), stream.F("w", stream.KindFloat))
)

func deltaJoin() *Join {
	return &Join{OpName: "dj", Left: deltaL, Right: deltaR,
		LeftKeys: []int{0}, RightKeys: []int{0}, LeftTs: 1, RightTs: 1,
		Mode: FeedbackExploit}
}

func lrTuple(k, ts int64, v float64) stream.Tuple {
	return stream.NewTuple(stream.Int(k), stream.TimeMicros(ts), stream.Float(v)).WithSeq(ts)
}

// ts3Punct punctuates ts ≤ us over the 3-attribute join input schema.
func ts3Punct(us int64) punct.Embedded {
	return punct.NewEmbedded(punct.OnAttr(3, 1, punct.Le(stream.TimeMicros(us))))
}

// TestJoinDeltaCapture: the join's per-key bucket deltas (inserts, matched
// flips on the opposite side, punctuation purges) reassemble into a state
// byte-identical to a direct full serialization.
func TestJoinDeltaCapture(t *testing.T) {
	j := deltaJoin()
	h := exec.NewHarness(j)
	h.Tuple(0, lrTuple(1, 10, 1))
	h.Tuple(0, lrTuple(2, 20, 2))
	h.Tuple(1, lrTuple(3, 30, 3))
	cap0, err := j.CaptureState(snapshot.CaptureFull)
	if err != nil {
		t.Fatal(err)
	}

	// Interval 1: a right tuple matches key 1 (flipping the stored left
	// entry's matched bit), and a new left key appears.
	h.Tuple(1, lrTuple(1, 40, 4))
	h.Tuple(0, lrTuple(5, 50, 5))
	cap1, err := j.CaptureState(snapshot.CaptureDelta)
	if err != nil {
		t.Fatal(err)
	}
	if !cap1.Delta {
		t.Fatal("second capture is not a delta")
	}

	// Interval 2: right-side punctuation purges old left entries.
	h.Punct(1, ts3Punct(45))
	h.Tuple(0, lrTuple(6, 60, 6))
	cap2, err := j.CaptureState(snapshot.CaptureDelta)
	if err != nil {
		t.Fatal(err)
	}
	if h.Err() != nil {
		t.Fatal(h.Err())
	}

	base, d1, d2 := encodeCap(t, cap0), encodeCap(t, cap1), encodeCap(t, cap2)
	twin := deltaJoin()
	ht := exec.NewHarness(twin)
	if ht.Err() != nil {
		t.Fatal(ht.Err())
	}
	applyChain(t, twin, base, d1, d2)
	if got, want := fullBlob(t, twin), fullBlob(t, j); !bytes.Equal(got, want) {
		t.Fatalf("reassembled join state differs from live state (%dB vs %dB)", len(got), len(want))
	}
}
