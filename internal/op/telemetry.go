package op

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// fbCounters is the per-operator feedback accounting every instrumented
// operator exports through telemetry.VarExporter: messages received
// (ProcessFeedback calls), exploited (a guard was installed or state
// purged in response), and forwarded (relayed upstream). Feedback is off
// the tuple hot path, so these are direct atomics.
type fbCounters struct {
	received  atomic.Int64
	exploited atomic.Int64
	forwarded atomic.Int64
}

// vars renders the counters as registry vars; called once at registration
// time, so the closure allocations are off the hot path.
func (c *fbCounters) vars() []telemetry.Var {
	return []telemetry.Var{
		{Name: "pace_op_feedback_received_total", Help: "Feedback messages delivered to the operator.", Kind: telemetry.Counter, Value: c.received.Load},
		{Name: "pace_op_feedback_exploited_total", Help: "Feedback messages exploited (guard installed or state purged).", Kind: telemetry.Counter, Value: c.exploited.Load},
		{Name: "pace_op_feedback_forwarded_total", Help: "Feedback messages relayed upstream.", Kind: telemetry.Counter, Value: c.forwarded.Load},
	}
}

// tupleVars renders the standard per-operator tuple accounting vars from
// atomic counters.
func tupleVars(in, out, suppressed *atomic.Int64) []telemetry.Var {
	return []telemetry.Var{
		{Name: "pace_op_tuples_in_total", Help: "Tuples delivered to the operator.", Kind: telemetry.Counter, Value: in.Load},
		{Name: "pace_op_tuples_out_total", Help: "Tuples the operator emitted.", Kind: telemetry.Counter, Value: out.Load},
		{Name: "pace_op_suppressed_tuples_total", Help: "Tuples suppressed by the operator's guard table.", Kind: telemetry.Counter, Value: suppressed.Load},
	}
}
