package op

import (
	"testing"

	"repro/internal/core"
	"repro/internal/punct"
	"repro/internal/stream"
	"repro/internal/window"
)

// Zero-allocation pins for the stateful fold and batch-apply paths
// (DESIGN.md §10.6). As in telemetry_alloc_test.go, everything runs against
// discardCtx so only the operator's own allocations are measured.

const allocTestMinute = int64(60_000_000)

func foldAggregate() *Aggregate {
	return &Aggregate{
		In: trafficSchema, Kind: core.AggAvg,
		TsAttr: 2, ValAttr: 3, GroupBy: []int{0},
		Window: window.Tumbling(allocTestMinute),
	}
}

// foldRing returns tuples confined to one tumbling window across nine
// groups, so a warm-up pass creates every state entry the measured loop
// will touch.
func foldRing(n int) []stream.Tuple {
	ring := make([]stream.Tuple, n)
	for i := range ring {
		ring[i] = traffic(int64(i%9), 0, int64(i)*1000, 55)
	}
	return ring
}

// TestAggregateFoldZeroAlloc pins the per-tuple fold at 0 allocs/op once
// the touched (window, group) entries exist — the path
// BenchmarkAggregateFold measures.
func TestAggregateFoldZeroAlloc(t *testing.T) {
	a := foldAggregate()
	if err := a.Open(discardCtx{}); err != nil {
		t.Fatal(err)
	}
	ring := foldRing(64)
	for _, tu := range ring {
		if err := a.ProcessTuple(0, tu, discardCtx{}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if n := testing.AllocsPerRun(500, func() {
		_ = a.ProcessTuple(0, ring[i%len(ring)], discardCtx{})
		i++
	}); n != 0 {
		t.Fatalf("aggregate fold allocates %.1f per op, want 0", n)
	}
}

// TestAggregateBatchFoldZeroAlloc pins the batched fold (the fused-prefix
// survivor path) at 0 allocs per run of tuples.
func TestAggregateBatchFoldZeroAlloc(t *testing.T) {
	a := foldAggregate()
	if err := a.Open(discardCtx{}); err != nil {
		t.Fatal(err)
	}
	ring := foldRing(64)
	if err := a.ApplyTupleBatch(0, ring, discardCtx{}); err != nil {
		t.Fatal(err) // warm: state entries, key scratch, lastKey buffer
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = a.ApplyTupleBatch(0, ring, discardCtx{})
	}); n != 0 {
		t.Fatalf("aggregate batch fold allocates %.1f per batch, want 0", n)
	}
}

// batchEmitCtx is discardCtx plus the batched emit hook, so the split test
// covers the EmitBatchTo path a live runner provides.
type batchEmitCtx struct{ discardCtx }

func (batchEmitCtx) EmitBatchTo(int, []stream.Tuple) {}

// TestSplitBatchApplyZeroAlloc pins Split's partition-hash batch path at 0
// allocs per run, under both the batched and the per-tuple emit fallback.
func TestSplitBatchApplyZeroAlloc(t *testing.T) {
	s := &Split{Schema: trafficSchema, N: 4, Key: []int{0}, Mode: FeedbackExploit}
	if err := s.Open(discardCtx{}); err != nil {
		t.Fatal(err)
	}
	ring := foldRing(64)
	if err := s.ApplyTupleBatch(0, ring, discardCtx{}); err != nil {
		t.Fatal(err) // warm: sub-batch scratch sized and grown
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = s.ApplyTupleBatch(0, ring, batchEmitCtx{})
	}); n != 0 {
		t.Fatalf("split batch apply (batched emit) allocates %.1f per batch, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = s.ApplyTupleBatch(0, ring, discardCtx{})
	}); n != 0 {
		t.Fatalf("split batch apply (EmitTo fallback) allocates %.1f per batch, want 0", n)
	}
}

// TestJoinBatchGuardZeroAlloc pins the Join batch wrapper and its hoisted
// guard probe at 0 allocs: a fully suppressed run must touch neither table.
// (A run that stores or emits allocates per retained tuple by design; the
// pin isolates the batching machinery itself.)
func TestJoinBatchGuardZeroAlloc(t *testing.T) {
	j := &Join{
		Left: trafficSchema, Right: trafficSchema,
		LeftKeys: []int{0}, RightKeys: []int{0},
		LeftTs: 2, RightTs: 2, Mode: FeedbackExploit,
	}
	if err := j.Open(discardCtx{}); err != nil {
		t.Fatal(err)
	}
	ring := make([]stream.Tuple, 64)
	for i := range ring {
		ring[i] = traffic(3, 0, int64(i)*1000, 55)
	}
	j.guardsL.Install(core.NewAssumed(punct.OnAttr(4, 0, punct.Eq(stream.Int(3)))))
	if n := testing.AllocsPerRun(200, func() {
		_ = j.ApplyTupleBatch(0, ring, discardCtx{})
	}); n != 0 {
		t.Fatalf("join batch apply (suppressed run) allocates %.1f per batch, want 0", n)
	}
	if got := j.Stats().SuppressedIn; got == 0 {
		t.Fatal("guard did not engage; the pin measured the wrong path")
	}
}
