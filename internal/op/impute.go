package op

import (
	"fmt"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

// Impute replaces missing (null) speed values with estimates obtained from
// an archival lookup — one expensive "database query" per dirty tuple
// (Example 3 / Experiment 1). It is the canonical *exploiter* of assumed
// feedback: upon receiving ¬[…, ≤cutoff, …] from PACE it installs an input
// guard, so tuples already too late are discarded *before* the lookup,
// letting the operator catch up to the live edge of the stream.
type Impute struct {
	exec.Base
	OpName string
	Schema stream.Schema
	// Attribute positions in Schema.
	SegAttr, DetAttr, TsAttr, SpeedAttr int
	// Store answers the archival queries.
	Store *archive.Store
	// FallbackSpeed is used when the archive has no history.
	FallbackSpeed float64
	// Mode: FeedbackIgnore makes Impute feedback-unaware (Figure 5);
	// anything else installs input guards (Figure 6). Propagate relays
	// the feedback further upstream.
	Mode      FeedbackMode
	Propagate bool

	responseLog
	guards *core.GuardTable

	imputed, skipped, passed int64
}

// Name implements exec.Operator.
func (im *Impute) Name() string {
	if im.OpName != "" {
		return im.OpName
	}
	return "impute"
}

// InSchemas implements exec.Operator.
func (im *Impute) InSchemas() []stream.Schema { return []stream.Schema{im.Schema} }

// OutSchemas implements exec.Operator.
func (im *Impute) OutSchemas() []stream.Schema { return []stream.Schema{im.Schema} }

// Open implements exec.Operator.
func (im *Impute) Open(exec.Context) error {
	im.guards = core.NewGuardTable(im.Schema.Arity())
	if im.FallbackSpeed == 0 {
		im.FallbackSpeed = 55
	}
	return nil
}

// ProcessTuple implements exec.Operator.
func (im *Impute) ProcessTuple(input int, t stream.Tuple, ctx exec.Context) error {
	if input != 0 {
		return fmt.Errorf("op: impute %q: tuple on unexpected input %d (single-input operator; check plan wiring)", im.Name(), input)
	}
	// The guard fires before the expensive lookup: this is the entire
	// point of the feedback (§4.3 strategy 2, guard on input).
	if im.Mode != FeedbackIgnore && im.guards.Suppress(t) {
		im.skipped++
		return nil
	}
	v := t.At(im.SpeedAttr)
	if !v.IsNull() {
		im.passed++
		ctx.Emit(t)
		return nil
	}
	seg := t.At(im.SegAttr).AsInt()
	det := t.At(im.DetAttr).AsInt()
	minuteOfDay := minuteOfDayOf(t.At(im.TsAttr).I)
	est, ok := im.Store.Lookup(seg, det, minuteOfDay)
	if !ok {
		est = im.FallbackSpeed
	}
	out := t.Clone()
	out.Values[im.SpeedAttr] = stream.Float(est)
	im.imputed++
	ctx.Emit(out)
	return nil
}

// minuteOfDayOf converts a micros timestamp to the minute-of-day bucket
// used by the archive.
func minuteOfDayOf(micros int64) int {
	const day = int64(24 * 60 * 60 * 1e6)
	m := micros % day
	if m < 0 {
		m += day
	}
	return int(m / int64(60*1e6))
}

// ProcessPunct implements exec.Operator: imputation preserves every
// attribute except the (unpunctuated) speed value, so punctuation passes
// through; it also expires guards.
func (im *Impute) ProcessPunct(input int, e punct.Embedded, ctx exec.Context) error {
	if input != 0 {
		return fmt.Errorf("op: impute %q: punctuation on unexpected input %d (single-input operator; check plan wiring)", im.Name(), input)
	}
	im.guards.ObservePunct(e)
	ctx.EmitPunct(e)
	return nil
}

// ProcessFeedback implements exec.Operator.
func (im *Impute) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	resp := core.Response{Feedback: f}
	if f.Intent == core.Assumed && im.Mode != FeedbackIgnore {
		// The speed attribute is rewritten by imputation, so feedback
		// binding it cannot guard the *input*; everything else can.
		bindsSpeed := false
		for _, b := range f.Pattern.Bound() {
			if b == im.SpeedAttr {
				bindsSpeed = true
				break
			}
		}
		if !bindsSpeed {
			im.guards.Install(f)
			resp.Actions = append(resp.Actions, core.ActGuardInput, core.ActPurgeState)
		} else {
			resp.Note = "feedback binds the imputed attribute; input guard unsafe"
		}
	}
	if im.Propagate {
		mapping := core.Identity(im.Schema.Arity())
		mapping.ToInput[im.SpeedAttr] = -1 // imputed attribute is computed
		if prop := core.SafePropagation(f.Pattern, mapping); prop.OK {
			relayed := f.Relayed(prop.Pattern)
			ctx.SendFeedback(0, relayed)
			resp.Actions = append(resp.Actions, core.ActPropagate)
			resp.Propagated = []*core.Feedback{&relayed}
		}
	}
	if len(resp.Actions) == 0 {
		resp.Actions = []core.Action{core.ActNone}
	}
	im.logResponse(resp)
	return nil
}

// Stats reports (imputed, skipped-by-guard, passed-clean) counts.
func (im *Impute) Stats() (imputed, skipped, passed int64) {
	return im.imputed, im.skipped, im.passed
}
