package op

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

func newSplit(n int, key ...int) *Split {
	return &Split{Schema: trafficSchema, N: n, Key: key, Mode: FeedbackExploit, Propagate: true}
}

func newMerge(k int) *Merge {
	return &Merge{Schema: trafficSchema, K: k, Mode: FeedbackExploit, Propagate: true}
}

func TestSplitHashRoutingIsKeyConsistent(t *testing.T) {
	s := newSplit(4, 0) // partition on segment
	h := exec.NewHarness(s)
	for i := int64(0); i < 200; i++ {
		h.Tuple(0, traffic(i%9, i%40, i*1000, 55))
	}
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	// Every tuple of one segment must land on exactly one port.
	portOf := map[int64]int{}
	total := 0
	for port := 0; port < 4; port++ {
		for _, tp := range h.OutTuples(port) {
			seg := tp.At(0).AsInt()
			if prev, seen := portOf[seg]; seen && prev != port {
				t.Fatalf("segment %d routed to both port %d and %d", seg, prev, port)
			}
			portOf[seg] = port
			total++
		}
	}
	if total != 200 {
		t.Fatalf("routed %d of 200 tuples", total)
	}
	// With 9 segments over 4 partitions at least two ports must be busy.
	busy := 0
	for port := 0; port < 4; port++ {
		if len(h.OutTuples(port)) > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("hash routing degenerated to %d busy partitions", busy)
	}
}

func TestSplitRoundRobinBalances(t *testing.T) {
	s := newSplit(3) // keyless
	h := exec.NewHarness(s)
	for i := int64(0); i < 9; i++ {
		h.Tuple(0, traffic(1, 1, i*1000, 50))
	}
	for port := 0; port < 3; port++ {
		if got := len(h.OutTuples(port)); got != 3 {
			t.Fatalf("port %d got %d tuples, want 3", port, got)
		}
	}
}

func TestSplitBroadcastsPunctuation(t *testing.T) {
	s := newSplit(3, 0)
	h := exec.NewHarness(s)
	h.Punct(0, tsPunct(1000))
	for port := 0; port < 3; port++ {
		ps := h.OutPuncts(port)
		if len(ps) != 1 || !ps[0].Pattern.Equal(tsPunct(1000).Pattern) {
			t.Fatalf("port %d puncts = %v", port, ps)
		}
	}
}

func TestSplitRejectsUnexpectedInput(t *testing.T) {
	h := exec.NewHarness(newSplit(2, 0))
	h.Tuple(1, traffic(1, 1, 10, 50))
	if h.Err() == nil {
		t.Fatal("tuple on input 1 must error")
	}
}

func TestSplitPartitionLocalSuppression(t *testing.T) {
	s := newSplit(4, 0)
	h := exec.NewHarness(s)
	// Find segment 3's partition, then let that partition disclaim it.
	h.Tuple(0, traffic(3, 1, 10, 50))
	dest := -1
	for port := 0; port < 4; port++ {
		if len(h.OutTuples(port)) == 1 {
			dest = port
		}
	}
	if dest < 0 {
		t.Fatal("probe tuple not routed")
	}
	h.Reset()
	h.Feedback(dest, assumedOnSegment(3))
	h.Tuple(0, traffic(3, 2, 20, 50))
	h.Tuple(0, traffic(4, 2, 20, 50))
	if got := len(h.OutTuples(dest)); got != 0 && h.OutTuples(dest)[0].At(0).AsInt() == 3 {
		t.Fatalf("segment 3 must be suppressed at the split, port %d got %d tuples", dest, got)
	}
	_, _, suppressed := s.Stats()
	if suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", suppressed)
	}
}

func TestSplitForwardsKeyPinnedFeedback(t *testing.T) {
	s := newSplit(4, 0)
	h := exec.NewHarness(s)
	// Segment-equality feedback pins the route: forward upstream at once,
	// but only when it arrives from the partition that owns the key.
	fb := assumedOnSegment(3)
	owner := s.routesOnlyTo(fb.Pattern)
	if owner < 0 {
		t.Fatal("segment equality must pin the route")
	}
	h.Feedback((owner+1)%4, fb) // wrong partition: hold
	if got := h.SentFeedback(0); len(got) != 0 {
		t.Fatalf("feedback from a non-owning partition must not be forwarded: %v", got)
	}
	h.Feedback(owner, fb)
	got := h.SentFeedback(0)
	if len(got) != 1 || !got[0].Pattern.Equal(fb.Pattern) {
		t.Fatalf("key-pinned feedback must forward upstream once: %v", got)
	}
	// Re-assertion must not duplicate the relay.
	h.Feedback(owner, fb)
	if got := h.SentFeedback(0); len(got) != 1 {
		t.Fatalf("duplicate relay: %v", got)
	}
}

func TestSplitUnpinnedFeedbackNeedsUnanimity(t *testing.T) {
	s := newSplit(3, 0)
	h := exec.NewHarness(s)
	// A ts-bound pattern does not pin the key: any partition may produce
	// matching tuples, so upstream suppression needs all three to agree.
	fb := core.NewAssumed(punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(5000))))
	h.Feedback(0, fb)
	h.Feedback(1, fb)
	if got := h.SentFeedback(0); len(got) != 0 {
		t.Fatalf("must wait for all partitions: %v", got)
	}
	h.Feedback(2, fb)
	if got := h.SentFeedback(0); len(got) != 1 {
		t.Fatalf("unanimous feedback must forward upstream once: %v", got)
	}
}

func TestSplitDesiredFeedbackForwardsImmediately(t *testing.T) {
	h := exec.NewHarness(newSplit(3, 0))
	fb := core.NewDesired(punct.OnAttr(4, 2, punct.Ge(stream.TimeMicros(5000))))
	h.Feedback(1, fb)
	if got := h.SentFeedback(0); len(got) != 1 {
		t.Fatalf("desired feedback never changes the result set; forward at once: %v", got)
	}
}

func TestMergeAlignsWatermarks(t *testing.T) {
	m := newMerge(3)
	h := exec.NewHarness(m)
	h.Punct(0, tsPunct(3000))
	h.Punct(1, tsPunct(1000))
	if got := h.OutPuncts(0); len(got) != 0 {
		t.Fatalf("input 2 has not punctuated; nothing may be forwarded: %v", got)
	}
	h.Punct(2, tsPunct(2000))
	got := h.OutPuncts(0)
	if len(got) != 1 || !got[0].Pattern.Equal(tsPunct(1000).Pattern) {
		t.Fatalf("aligned watermark must be the min (1000): %v", got)
	}
	// Non-advancing arrival: nothing new.
	h.Punct(2, tsPunct(2500))
	if got := h.OutPuncts(0); len(got) != 1 {
		t.Fatalf("min did not advance, no punct expected: %v", got)
	}
	// The laggard advances: the min is now input 2's 2500.
	h.Punct(1, tsPunct(4000))
	got = h.OutPuncts(0)
	if len(got) != 2 || !got[1].Pattern.Equal(tsPunct(2500).Pattern) {
		t.Fatalf("aligned watermark must advance to 2500: %v", got)
	}
}

func TestMergeLtPunctuationNormalizes(t *testing.T) {
	m := newMerge(2)
	h := exec.NewHarness(m)
	lt := punct.NewEmbedded(punct.OnAttr(4, 2, punct.Lt(stream.TimeMicros(2001))))
	h.Punct(0, lt)
	h.Punct(1, tsPunct(3000))
	got := h.OutPuncts(0)
	if len(got) != 1 || !got[0].Pattern.Equal(tsPunct(2000).Pattern) {
		t.Fatalf("<2001 must align as ≤2000: %v", got)
	}
}

func TestMergeEOSReleasesAlignment(t *testing.T) {
	m := newMerge(3)
	h := exec.NewHarness(m)
	h.Punct(0, tsPunct(3000))
	h.Punct(1, tsPunct(1000))
	// Input 2 ends without ever punctuating: it stops constraining.
	h.EOS(2)
	got := h.OutPuncts(0)
	if len(got) != 1 || !got[0].Pattern.Equal(tsPunct(1000).Pattern) {
		t.Fatalf("EOS input must stop constraining alignment: %v", got)
	}
	h.EOS(1)
	got = h.OutPuncts(0)
	if len(got) != 2 || !got[1].Pattern.Equal(tsPunct(3000).Pattern) {
		t.Fatalf("after input 1 ends the min is input 0's 3000: %v", got)
	}
}

func TestMergeAlignsGenericPatterns(t *testing.T) {
	m := newMerge(3)
	h := exec.NewHarness(m)
	// "Segment 5 is closed" — an equality pattern outside the watermark
	// fast path, as a split broadcast would deliver to every partition.
	seg5 := punct.NewEmbedded(punct.OnAttr(4, 0, punct.Eq(stream.Int(5))))
	h.Punct(0, seg5)
	h.Punct(1, seg5)
	if got := h.OutPuncts(0); len(got) != 0 {
		t.Fatalf("partition 2 has not covered segment 5 yet: %v", got)
	}
	if m.PendingAlignments() != 1 {
		t.Fatalf("pending = %d, want 1", m.PendingAlignments())
	}
	h.Punct(2, seg5)
	got := h.OutPuncts(0)
	if len(got) != 1 || !got[0].Pattern.Equal(seg5.Pattern) {
		t.Fatalf("unanimous generic pattern must be forwarded: %v", got)
	}
	if m.PendingAlignments() != 0 {
		t.Fatalf("pending not drained: %d", m.PendingAlignments())
	}
}

func TestMergeGenericCoveredByWatermark(t *testing.T) {
	m := newMerge(2)
	h := exec.NewHarness(m)
	// Input 1's ts watermark ≥ the pattern's ts bound covers it by
	// implication, with no equal pattern ever asserted there.
	old := punct.NewEmbedded(punct.OnAttr(4, 0, punct.Eq(stream.Int(5))).With(2, punct.Le(stream.TimeMicros(500))))
	h.Punct(1, tsPunct(1000))
	h.Punct(0, old)
	got := h.OutPuncts(0)
	if len(got) != 1 || !got[0].Pattern.Equal(old.Pattern) {
		t.Fatalf("watermark implication must cover the generic pattern: %v", got)
	}
}

func TestMergePassThroughAndGuards(t *testing.T) {
	m := newMerge(2)
	h := exec.NewHarness(m)
	h.Tuple(0, traffic(1, 1, 10, 50))
	h.Tuple(1, traffic(2, 1, 20, 60))
	if got := len(h.OutTuples(0)); got != 2 {
		t.Fatalf("pass-through broke: %d tuples", got)
	}
	h.Feedback(0, assumedOnSegment(2))
	h.Tuple(0, traffic(2, 2, 30, 61))
	h.Tuple(1, traffic(3, 2, 30, 62))
	got := h.OutTuples(0)
	if len(got) != 3 || got[2].At(0).AsInt() != 3 {
		t.Fatalf("disclaimed segment 2 must be suppressed: %v", got)
	}
	// Feedback fanned to every partition.
	for in := 0; in < 2; in++ {
		if fb := h.SentFeedback(in); len(fb) != 1 {
			t.Fatalf("input %d got %d feedbacks, want 1", in, len(fb))
		}
	}
}

func TestMergeRejectsUnexpectedInput(t *testing.T) {
	h := exec.NewHarness(newMerge(2))
	h.Tuple(2, traffic(1, 1, 10, 50))
	if h.Err() == nil {
		t.Fatal("tuple on input 2 must error")
	}
}

// TestMergeAlignmentZeroAlloc pins the acceptance bar: the steady-state
// alignment path — a punctuation arrival that does not advance the merged
// frontier, with no generic patterns pending — performs no allocation.
func TestMergeAlignmentZeroAlloc(t *testing.T) {
	m := newMerge(4)
	h := exec.NewHarness(m)
	// Partition 3 lags at ts=100, pinning the frontier; 0..2 run ahead.
	for i := 0; i < 3; i++ {
		h.Punct(i, tsPunct(100))
	}
	h.Punct(3, tsPunct(100)) // frontier emitted here, once
	probes := []punct.Embedded{tsPunct(5_000), tsPunct(6_000), tsPunct(7_000)}
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		e := probes[i%len(probes)]
		if err := m.ProcessPunct(i%3, e, h); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("merge alignment steady state allocates %.1f allocs/op, want 0", allocs)
	}
	if got := h.OutPuncts(0); len(got) != 1 {
		t.Fatalf("laggard never advanced; only the initial frontier may be emitted: %v", got)
	}
}

// TestSplitRouteZeroAlloc pins the split's tuple hot path at 0 allocs/op.
func TestSplitRouteZeroAlloc(t *testing.T) {
	s := &Split{Schema: trafficSchema, N: 4, Key: []int{0}, Mode: FeedbackExploit}
	sink := discardCtx{}
	if err := s.Open(sink); err != nil {
		t.Fatal(err)
	}
	tuples := []stream.Tuple{traffic(1, 1, 10, 50), traffic(2, 1, 20, 51), traffic(3, 1, 30, 52)}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if err := s.ProcessTuple(0, tuples[i%len(tuples)], sink); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("split routing allocates %.1f allocs/op, want 0", allocs)
	}
}

// discardCtx is a no-op exec.Context for allocation measurements (the
// Harness records emissions, which would itself allocate).
type discardCtx struct{}

func (discardCtx) Emit(stream.Tuple)               {}
func (discardCtx) EmitTo(int, stream.Tuple)        {}
func (discardCtx) EmitPunct(punct.Embedded)        {}
func (discardCtx) EmitPunctTo(int, punct.Embedded) {}
func (discardCtx) SendFeedback(int, core.Feedback) {}
func (discardCtx) ShutdownUpstream(int)            {}
func (discardCtx) NumInputs() int                  { return 1 }
func (discardCtx) NumOutputs() int                 { return 4 }
func (discardCtx) Logf(string, ...any)             {}

func TestSplitDemandedFeedbackUnanimity(t *testing.T) {
	s := newSplit(3, 0)
	h := exec.NewHarness(s)
	// An unpinned demand (timestamp range) relays upstream only once every
	// partition has demanded a covering subset — which a merge fan-out
	// produces naturally.
	fb := core.NewDemanded(punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(5000))))
	h.Feedback(0, fb)
	h.Feedback(1, fb)
	if got := h.SentFeedback(0); len(got) != 0 {
		t.Fatalf("partial demand must be withheld: %v", got)
	}
	h.Feedback(2, fb)
	if got := h.SentFeedback(0); len(got) != 1 || got[0].Intent != core.Demanded {
		t.Fatalf("unanimous demand must forward upstream once: %v", got)
	}
}

// TestSplitSinglePartitionIsNeutral pins Parallel(1, ...) feedback
// neutrality: with one partition, pinned-or-unanimous degenerates to
// immediate relay for every intent.
func TestSplitSinglePartitionIsNeutral(t *testing.T) {
	s := &Split{Schema: trafficSchema, N: 1, Key: []int{0}, Mode: FeedbackExploit, Propagate: true}
	h := exec.NewHarness(s)
	h.Feedback(0, core.NewDemanded(punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(5000)))))
	h.Feedback(0, core.NewAssumed(punct.OnAttr(4, 2, punct.Le(stream.TimeMicros(9000)))))
	h.Feedback(0, core.NewDesired(punct.OnAttr(4, 2, punct.Ge(stream.TimeMicros(9000)))))
	if got := h.SentFeedback(0); len(got) != 3 {
		t.Fatalf("n=1 split must relay every feedback immediately: %v", got)
	}
}

func TestSplitRejectsUnexpectedFeedbackOutput(t *testing.T) {
	s := newSplit(2, 0)
	h := exec.NewHarness(s)
	if err := s.ProcessFeedback(2, assumedOnSegment(1), h); err == nil {
		t.Fatal("feedback on output 2 of a 2-way split must error")
	}
}

// TestMergeAlignmentStateBounded pins the long-running-stream bound:
// generic patterns carrying a timestamp bound are pruned from per-input
// state once the input's watermark passes them, and pending patterns are
// dropped once the emitted merged frontier subsumes them.
func TestMergeAlignmentStateBounded(t *testing.T) {
	m := newMerge(2)
	h := exec.NewHarness(m)
	// Per-group closure patterns [seg=k, *, ts≤k·100, *]: multi-attribute,
	// so the generic path holds them.
	for k := int64(0); k < 50; k++ {
		pat := punct.OnAttr(4, 0, punct.Eq(stream.Int(k))).With(2, punct.Le(stream.TimeMicros(k*100)))
		h.Punct(0, punct.NewEmbedded(pat))
	}
	if got := len(m.ins[0].asserted); got != 50 {
		t.Fatalf("asserted = %d, want 50", got)
	}
	if got := m.PendingAlignments(); got != 50 {
		t.Fatalf("pending = %d, want 50", got)
	}
	// Input 0's watermark passes every bound: its asserted list drains.
	h.Punct(0, tsPunct(10_000))
	if got := len(m.ins[0].asserted); got != 0 {
		t.Fatalf("asserted after watermark = %d, want 0", got)
	}
	// Input 1 catches up: the merged frontier ≤10000 is emitted and
	// subsumes every pending pattern — dropped, not re-emitted.
	h.Punct(1, tsPunct(10_000))
	if got := m.PendingAlignments(); got != 0 {
		t.Fatalf("pending after frontier = %d, want 0", got)
	}
	got := h.OutPuncts(0)
	if len(got) != 1 || !got[0].Pattern.Equal(tsPunct(10_000).Pattern) {
		t.Fatalf("only the subsuming frontier may be emitted: %v", got)
	}
	// A late duplicate below the frontier neither re-pends nor re-asserts.
	late := punct.OnAttr(4, 0, punct.Eq(stream.Int(1))).With(2, punct.Le(stream.TimeMicros(100)))
	h.Punct(0, punct.NewEmbedded(late))
	if len(m.ins[0].asserted) != 0 || m.PendingAlignments() != 0 {
		t.Fatalf("late covered pattern must not accumulate state: asserted=%d pending=%d",
			len(m.ins[0].asserted), m.PendingAlignments())
	}
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
}
