package op

import (
	"testing"

	"repro/internal/stream"
)

// The no-op exec.Context these tests measure against is discardCtx
// (exchange_test.go): the harness's output recording would otherwise
// dominate the allocation count.

// TestInstrumentedTuplePathAllocs pins the §2 hot-path contract for the
// telemetry counters: converting the operator tuple counters to atomics
// (telemetry.go) must not have introduced allocations on the per-tuple
// path. A regression here means a scrape-visible counter started boxing or
// escaping.
func TestInstrumentedTuplePathAllocs(t *testing.T) {
	s := &Select{Schema: trafficSchema, Mode: FeedbackExploit,
		Cond: func(tu stream.Tuple) bool { return !tu.At(3).IsNull() }}
	if err := s.Open(discardCtx{}); err != nil {
		t.Fatal(err)
	}
	// Arm a guard so the suppressed-counter branch is on the measured path.
	if err := s.ProcessFeedback(0, assumedOnSegment(3), discardCtx{}); err != nil {
		t.Fatal(err)
	}
	pass := traffic(4, 1, 10, 50)
	drop := traffic(3, 1, 20, 60)
	if n := testing.AllocsPerRun(200, func() {
		_ = s.ProcessTuple(0, pass, discardCtx{})
		_ = s.ProcessTuple(0, drop, discardCtx{})
	}); n != 0 {
		t.Fatalf("instrumented tuple path allocates %.1f per run, want 0", n)
	}
}

// TestInstrumentedPunctPathAllocs pins the punctuation observe path: an
// embedded punctuation flowing through an instrumented operator (guard
// lookup, counter update, relay) must stay allocation-free once the
// operator is warm.
func TestInstrumentedPunctPathAllocs(t *testing.T) {
	s := &Select{Schema: trafficSchema, Mode: FeedbackExploit,
		Cond: func(tu stream.Tuple) bool { return true }}
	if err := s.Open(discardCtx{}); err != nil {
		t.Fatal(err)
	}
	e := tsPunct(1_000_000)
	_ = s.ProcessPunct(0, e, discardCtx{}) // warm any lazy state
	if n := testing.AllocsPerRun(200, func() {
		_ = s.ProcessPunct(0, e, discardCtx{})
	}); n != 0 {
		t.Fatalf("instrumented punct path allocates %.1f per run, want 0", n)
	}
}
