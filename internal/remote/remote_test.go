package remote

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/stream"
)

var schema = stream.MustSchema(
	stream.F("segment", stream.KindInt),
	stream.F("ts", stream.KindTime),
	stream.F("speed", stream.KindFloat),
)

func mkTuple(seg, ts int64, speed float64) stream.Tuple {
	return stream.NewTuple(stream.Int(seg), stream.TimeMicros(ts), stream.Float(speed)).WithSeq(seg)
}

// runDistributed wires producer-plan → [conn] → consumer-plan and runs both
// graphs concurrently, returning the consumer's collector and the
// producer-side feedback-aware source.
func runDistributed(t *testing.T, conn1, conn2 net.Conn, n int, feedbackTrigger int64) (*exec.Collector, *exec.SliceSource, *Sink, *Source) {
	t.Helper()
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = mkTuple(int64(i%5), int64(i)*1000, 50).WithSeq(int64(i))
	}
	src := exec.NewSliceSource("src", schema, tuples...)
	src.FeedbackAware = true
	src.BatchSize = 4

	sink := NewSink("wire-out", schema, conn1)
	sink.FlushEvery = 8

	// Producer graph: src → select(propagating) → remote sink. Shallow
	// queues keep the source close behind the wire so feedback lands
	// while most of the stream is ungenerated.
	gp := exec.NewGraph()
	gp.SetQueueOptions(queue.Options{PageSize: 4, Depth: 2, FlushOnPunct: true})
	sel := &selectRelay{}
	sp := gp.AddSource(src)
	fp := gp.Add(sel, exec.From(sp))
	gp.Add(sink, exec.From(fp))

	// Consumer graph: remote source → feedback-producing sink.
	rsrc := NewSource("wire-in", schema, conn2)
	col := exec.NewCollector("col", schema)
	fbSink := &triggerSink{inner: col, trigger: feedbackTrigger}
	gc := exec.NewGraph()
	gc.SetQueueOptions(queue.Options{PageSize: 4, Depth: 2, FlushOnPunct: true})
	sc := gc.AddSource(rsrc)
	gc.Add(fbSink, exec.From(sc))

	var wg sync.WaitGroup
	var errP, errC error
	wg.Add(2)
	go func() { defer wg.Done(); errP = gp.Run() }()
	go func() { defer wg.Done(); errC = gc.Run() }()
	wg.Wait()
	if errP != nil {
		t.Fatalf("producer graph: %v", errP)
	}
	if errC != nil {
		t.Fatalf("consumer graph: %v", errC)
	}
	return col, src, sink, rsrc
}

// selectRelay passes tuples and relays feedback upstream.
type selectRelay struct {
	exec.Base
}

func (*selectRelay) Name() string                { return "relay" }
func (*selectRelay) InSchemas() []stream.Schema  { return []stream.Schema{schema} }
func (*selectRelay) OutSchemas() []stream.Schema { return []stream.Schema{schema} }
func (*selectRelay) ProcessTuple(_ int, t stream.Tuple, ctx exec.Context) error {
	ctx.Emit(t)
	return nil
}
func (*selectRelay) ProcessPunct(_ int, e punct.Embedded, ctx exec.Context) error {
	ctx.EmitPunct(e)
	return nil
}
func (*selectRelay) ProcessFeedback(_ int, f core.Feedback, ctx exec.Context) error {
	ctx.SendFeedback(0, f)
	return nil
}

// triggerSink collects and, after `trigger` tuples, sends assumed feedback
// for segment 3.
type triggerSink struct {
	exec.Base
	inner   *exec.Collector
	trigger int64
	seen    int64
	sent    bool
}

func (s *triggerSink) Name() string                { return "trigger" }
func (s *triggerSink) InSchemas() []stream.Schema  { return []stream.Schema{schema} }
func (s *triggerSink) OutSchemas() []stream.Schema { return nil }
func (s *triggerSink) ProcessTuple(in int, t stream.Tuple, ctx exec.Context) error {
	if err := s.inner.ProcessTuple(in, t, ctx); err != nil {
		return err
	}
	s.seen++
	if !s.sent && s.seen >= s.trigger {
		s.sent = true
		ctx.SendFeedback(0, core.NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(3)))))
	}
	return nil
}

func TestRemoteEdgeOverNetPipe(t *testing.T) {
	c1, c2 := net.Pipe()
	col, src, sink, rsrc := runDistributed(t, c1, c2, 2000, 10)

	// Data integrity: everything the producer let through arrived.
	got := col.Tuples()
	if len(got) == 0 {
		t.Fatal("no tuples crossed the wire")
	}
	received, fbOut := rsrc.Stats()
	sent, fbIn := sink.Stats()
	if received != sent {
		t.Errorf("sent %d != received %d", sent, received)
	}
	if fbOut != 1 || fbIn != 1 {
		t.Errorf("feedback crossing: out=%d in=%d", fbOut, fbIn)
	}
	// The feedback crossed the wire AND the producer-side source
	// exploited it: segment 3 generation stops.
	if src.Skipped() == 0 {
		t.Error("producer-side source must exploit remote feedback")
	}
	// Definition 1: all non-subset tuples arrive.
	counts := map[int64]int{}
	for _, tp := range got {
		counts[tp.At(0).AsInt()]++
	}
	for seg := int64(0); seg < 5; seg++ {
		if seg == 3 {
			continue
		}
		if counts[seg] != 400 {
			t.Errorf("segment %d: %d tuples, want 400", seg, counts[seg])
		}
	}
	if counts[3] >= 400 {
		t.Error("suppressed segment should be incomplete")
	}
}

func TestRemoteEdgeOverTCP(t *testing.T) {
	addr, accept, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var consumerConn net.Conn
	var acceptErr error
	done := make(chan struct{})
	go func() {
		consumerConn, acceptErr = accept()
		close(done)
	}()
	producerConn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if acceptErr != nil {
		t.Fatal(acceptErr)
	}
	col, _, _, _ := runDistributed(t, producerConn, consumerConn, 1000, 1<<60)
	if got := col.Tuples(); len(got) != 1000 {
		t.Fatalf("TCP transfer: %d tuples, want 1000", len(got))
	}
}

func TestWirePatternRoundTrip(t *testing.T) {
	pats := []punct.Pattern{
		punct.AllWild(3),
		punct.OnAttr(3, 1, punct.Le(stream.TimeMicros(100))),
		punct.NewPattern(
			punct.OneOf(stream.Int(1), stream.Int(2)),
			punct.Range(stream.TimeMicros(5), stream.TimeMicros(9)),
			punct.Ne(stream.Float(50)),
		),
	}
	for _, p := range pats {
		back, err := unmarshalPattern(marshalPattern(p))
		if err != nil {
			t.Fatalf("wire round trip %v: %v", p, err)
		}
		if !p.Equal(back) {
			t.Errorf("wire round trip: %v → %v", p, back)
		}
	}
}

func TestRemotePunctuationCrossesWire(t *testing.T) {
	c1, c2 := net.Pipe()
	sink := NewSink("out", schema, c1)
	rsrc := NewSource("in", schema, c2)

	gp := exec.NewGraph()
	src := exec.NewSliceSource("src", schema, mkTuple(1, 10, 50))
	src.Items = append(src.Items, itemPunct(punct.OnAttr(3, 1, punct.Le(stream.TimeMicros(10)))))
	sp := gp.AddSource(src)
	gp.Add(sink, exec.From(sp))

	gc := exec.NewGraph()
	col := exec.NewCollector("col", schema)
	sc := gc.AddSource(rsrc)
	gc.Add(col, exec.From(sc))

	var wg sync.WaitGroup
	wg.Add(2)
	var e1, e2 error
	go func() { defer wg.Done(); e1 = gp.Run() }()
	go func() { defer wg.Done(); e2 = gc.Run() }()
	wg.Wait()
	if e1 != nil || e2 != nil {
		t.Fatal(e1, e2)
	}
	items := col.Items()
	var sawPunct bool
	for _, it := range items {
		if itIsPunct(it) {
			sawPunct = true
		}
	}
	if !sawPunct {
		t.Fatal("embedded punctuation must cross the wire")
	}
}

// test helpers over queue items.
func itemPunct(p punct.Pattern) queue.Item { return queue.PunctItem(punct.NewEmbedded(p)) }
func itIsPunct(it queue.Item) bool         { return it.Kind == queue.ItemPunct }

// A wedged upstream peer — connection open, no frames — must surface as a
// timed-out node error through Source.ReadTimeout, not stall forever.
func TestSourceReadTimeout(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	src := NewSource("stalled", schema, c2)
	src.ReadTimeout = 50 * time.Millisecond
	if err := src.Open(nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := src.Next(nil) // the timeout path never touches the context
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "wedged") {
			t.Fatalf("Next returned %v, want wedged-producer timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not time out")
	}
}
