package remote

import (
	"context"
	"encoding/gob"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

// gatedSource emits tuples in small batches, parking (live, not blocked) at
// gateAt until released, so a checkpoint can be taken mid-stream.
type gatedSource struct {
	tuples []stream.Tuple
	gateAt int
	gate   atomic.Bool
	pos    atomic.Int64
}

// awaitGate blocks until the source has parked at its gate.
func (s *gatedSource) awaitGate(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.pos.Load() < int64(s.gateAt) {
		if time.Now().After(deadline) {
			t.Fatalf("source stuck at %d/%d", s.pos.Load(), s.gateAt)
		}
		time.Sleep(time.Millisecond)
	}
}

func (s *gatedSource) Name() string                                           { return "gated" }
func (s *gatedSource) OutSchemas() []stream.Schema                            { return []stream.Schema{schema} }
func (s *gatedSource) Open(exec.Context) error                                { return nil }
func (s *gatedSource) Close(exec.Context) error                               { return nil }
func (s *gatedSource) ProcessFeedback(int, core.Feedback, exec.Context) error { return nil }

func (s *gatedSource) Next(ctx exec.Context) (bool, error) {
	pos := int(s.pos.Load())
	if pos >= len(s.tuples) {
		return false, nil
	}
	for n := 0; n < 4 && pos < len(s.tuples); n++ {
		if pos == s.gateAt && !s.gate.Load() {
			time.Sleep(100 * time.Microsecond)
			break
		}
		ctx.Emit(s.tuples[pos])
		pos++
	}
	s.pos.Store(int64(pos))
	return true, nil
}

// wireBarrier is one barrier observation on the consumer side.
type wireBarrier struct {
	epoch    int64
	mode     snapshot.CaptureMode
	received int64 // tuples decoded before the barrier frame
}

// TestBarrierCrossesWire: a checkpoint on the producer graph forwards its
// barrier through the remote sink as a wire frame, positioned exactly after
// the tuples that preceded the producer's cut; the consumer source hands
// (epoch, mode) to its hook. Two epochs verify the mode travels too (the
// second, incremental one must arrive as a delta).
func TestBarrierCrossesWire(t *testing.T) {
	c1, c2 := net.Pipe()
	const total, gateAt = 600, 200
	tuples := make([]stream.Tuple, total)
	for i := range tuples {
		tuples[i] = mkTuple(int64(i%5), int64(i)*1000, 50).WithSeq(int64(i))
	}
	src := &gatedSource{tuples: tuples, gateAt: gateAt}
	sink := NewSink("wire-out", schema, c1)

	gp := exec.NewGraph()
	sp := gp.AddSource(src)
	gp.Add(sink, exec.From(sp))

	rsrc := NewSource("wire-in", schema, c2)
	barriers := make(chan wireBarrier, 4)
	rsrc.SetBarrierHook(func(epoch int64, mode snapshot.CaptureMode) error {
		received, _ := rsrc.Stats()
		barriers <- wireBarrier{epoch: epoch, mode: mode, received: received}
		return nil
	})
	col := exec.NewCollector("col", schema)
	gc := exec.NewGraph()
	sc := gc.AddSource(rsrc)
	gc.Add(col, exec.From(sc))

	var wg sync.WaitGroup
	var errP, errC error
	wg.Add(2)
	go func() { defer wg.Done(); errP = gp.Run() }()
	go func() { defer wg.Done(); errC = gc.Run() }()
	src.awaitGate(t)

	ctx := context.Background()
	snap1, err := gp.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b1 := <-barriers
	if b1.epoch != snap1.Epoch {
		t.Errorf("wire barrier epoch %d, producer cut epoch %d", b1.epoch, snap1.Epoch)
	}
	if b1.mode != snapshot.CaptureFull {
		t.Errorf("first barrier mode %v, want CaptureFull", b1.mode)
	}
	// The barrier's wire position is the cut: every tuple the producer sent
	// before its cut — and none after — precedes the frame.
	if b1.received != gateAt {
		t.Errorf("barrier arrived after %d tuples, producer cut at %d", b1.received, gateAt)
	}

	snap2, err := gp.CheckpointIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b2 := <-barriers
	if b2.epoch != snap2.Epoch || b2.mode != snapshot.CaptureDelta {
		t.Errorf("second barrier (epoch %d mode %v), want (epoch %d, CaptureDelta)", b2.epoch, b2.mode, snap2.Epoch)
	}

	src.gate.Store(true)
	wg.Wait()
	if errP != nil || errC != nil {
		t.Fatal(errP, errC)
	}
	if got := len(col.Tuples()); got != total {
		t.Errorf("%d tuples crossed, want %d (barrier frames corrupted the stream?)", got, total)
	}
}

// TestBarrierDroppedWithoutHook: an uncoordinated consumer skips barrier
// frames without disturbing the data stream.
func TestBarrierDroppedWithoutHook(t *testing.T) {
	c1, c2 := net.Pipe()
	const total, gateAt = 200, 100
	tuples := make([]stream.Tuple, total)
	for i := range tuples {
		tuples[i] = mkTuple(int64(i%5), int64(i)*1000, 50).WithSeq(int64(i))
	}
	src := &gatedSource{tuples: tuples, gateAt: gateAt}
	gp := exec.NewGraph()
	sp := gp.AddSource(src)
	gp.Add(NewSink("wire-out", schema, c1), exec.From(sp))

	rsrc := NewSource("wire-in", schema, c2) // no hook installed
	col := exec.NewCollector("col", schema)
	gc := exec.NewGraph()
	gc.Add(col, exec.From(gc.AddSource(rsrc)))

	var wg sync.WaitGroup
	var errP, errC error
	wg.Add(2)
	go func() { defer wg.Done(); errP = gp.Run() }()
	go func() { defer wg.Done(); errC = gc.Run() }()
	src.awaitGate(t)
	if _, err := gp.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	src.gate.Store(true)
	wg.Wait()
	if errP != nil || errC != nil {
		t.Fatal(errP, errC)
	}
	if got := len(col.Tuples()); got != total {
		t.Errorf("%d tuples crossed, want %d", got, total)
	}
}

// TestSinkWriteDeadline: a wedged peer — connected, never reading — must
// surface as a node error within the configured write deadline instead of
// blocking the plan forever.
func TestSinkWriteDeadline(t *testing.T) {
	c1, _ := net.Pipe() // the other end never reads
	tuples := make([]stream.Tuple, 64)
	for i := range tuples {
		tuples[i] = mkTuple(int64(i), int64(i)*1000, 50)
	}
	src := exec.NewSliceSource("src", schema, tuples...)
	sink := NewSink("wedged-out", schema, c1)
	sink.FlushEvery = 1 // force a conn write per tuple
	sink.WriteTimeout = 50 * time.Millisecond

	g := exec.NewGraph()
	sp := g.AddSource(src)
	g.Add(sink, exec.From(sp))

	done := make(chan error, 1)
	go func() { done <- g.Run() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("wedged peer did not surface as an error")
		}
		if !strings.Contains(err.Error(), "timeout") && !strings.Contains(err.Error(), "deadline") {
			t.Errorf("error %v does not look like a write deadline", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("plan hung on a wedged peer despite WriteTimeout")
	}
}

// TestBarrierFrameWireRoundTrip is the property test for the barrier wire
// frames: a random interleaving of tuple, punctuation, and barrier frames
// written raw onto the transport replays through Source with every barrier
// delivered to the hook in order, carrying its exact epoch and mode, with
// the surrounding data intact.
func TestBarrierFrameWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 30; iter++ {
		c1, c2 := net.Pipe()
		type sent struct {
			epoch int64
			mode  snapshot.CaptureMode
		}
		var wantBarriers []sent
		wantTuples := 0
		epoch := int64(0)
		frames := make([]frame, 0, 64)
		for i := 0; i < 2+rng.Intn(60); i++ {
			switch rng.Intn(3) {
			case 0, 1:
				frames = append(frames, frame{Kind: frameTuple, Tuple: mkTuple(int64(i), int64(i)*1000, 50)})
				wantTuples++
			default:
				epoch += 1 + rng.Int63n(3)
				mode := snapshot.CaptureMode(rng.Intn(2))
				frames = append(frames, frame{Kind: frameBarrier, Seq: epoch, Intent: uint8(mode)})
				wantBarriers = append(wantBarriers, sent{epoch, mode})
			}
		}
		go func() {
			enc := gob.NewEncoder(c1)
			for _, f := range frames {
				if err := enc.Encode(f); err != nil {
					return
				}
			}
			enc.Encode(frame{Kind: frameEOS})
		}()

		rsrc := NewSource("in", schema, c2)
		var gotBarriers []sent
		rsrc.SetBarrierHook(func(epoch int64, mode snapshot.CaptureMode) error {
			gotBarriers = append(gotBarriers, sent{epoch, mode})
			return nil
		})
		h := exec.NewSourceHarness(rsrc).RunSource(10_000)
		if h.Err() != nil {
			t.Fatalf("iteration %d: %v", iter, h.Err())
		}
		if got := len(h.OutTuples(0)); got != wantTuples {
			t.Fatalf("iteration %d: %d tuples, want %d", iter, got, wantTuples)
		}
		if len(gotBarriers) != len(wantBarriers) {
			t.Fatalf("iteration %d: %d barriers, want %d", iter, len(gotBarriers), len(wantBarriers))
		}
		for i := range wantBarriers {
			if gotBarriers[i] != wantBarriers[i] {
				t.Fatalf("iteration %d: barrier %d changed in flight: %+v -> %+v",
					iter, i, wantBarriers[i], gotBarriers[i])
			}
		}
	}
}

// TestBarrierFrameCorrupt: malformed input on the data path — garbage
// bytes, an unknown capture mode, a bare connection close — must surface
// as clean errors, never a panic or a silent clean EOS.
func TestBarrierFrameCorrupt(t *testing.T) {
	// Unknown capture mode in an otherwise valid barrier frame.
	c1, c2 := net.Pipe()
	go gob.NewEncoder(c1).Encode(frame{Kind: frameBarrier, Seq: 1, Intent: 7})
	rsrc := NewSource("in", schema, c2)
	rsrc.SetBarrierHook(func(int64, snapshot.CaptureMode) error { return nil })
	if h := exec.NewSourceHarness(rsrc).RunSource(10); h.Err() == nil {
		t.Error("unknown capture mode accepted")
	}

	// Random garbage instead of a gob stream.
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 50; i++ {
		c1, c2 := net.Pipe()
		go func() {
			buf := make([]byte, 1+rng.Intn(200))
			rng.Read(buf)
			c1.Write(buf)
			c1.Close()
		}()
		h := exec.NewSourceHarness(NewSource("in", schema, c2)).RunSource(100)
		if h.Err() == nil {
			t.Fatalf("iteration %d: garbage stream replayed without error", i)
		}
	}

	// A connection closed without an EOS frame is a producer crash, not a
	// clean end of stream.
	c1, c2 = net.Pipe()
	go func() {
		gob.NewEncoder(c1).Encode(frame{Kind: frameTuple, Tuple: mkTuple(1, 1000, 50)})
		c1.Close()
	}()
	h := exec.NewSourceHarness(NewSource("in", schema, c2)).RunSource(100)
	if h.Err() == nil || !strings.Contains(h.Err().Error(), "before end of stream") {
		t.Errorf("bare close surfaced as %v, want producer-crash error", h.Err())
	}
}
