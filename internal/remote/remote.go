// Package remote carries one plan edge across a network connection,
// letting a query plan span processes or machines. The paper's argument
// for localized feedback (§2) is precisely the distributed setting:
// feedback travels hop by hop between adjacent operators, so no
// centralized monitor needs access to remote state or data.
//
// A RemoteSink terminates a local subplan and streams its items over a
// net.Conn; a RemoteSource on the other end replays them into the remote
// subplan. Feedback punctuation flows the opposite way over the same
// connection — the dashed arrow of Figure 2(b), now crossing a machine
// boundary.
//
// Wire format: gob frames, one direction per duplex half. Tuples and
// embedded punctuation flow downstream; feedback frames flow upstream.
package remote

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/stream"
)

// frame kinds.
const (
	frameTuple = iota
	framePunct
	frameEOS
	frameFeedback
)

// frame is one wire message (downstream or upstream). Punctuation patterns
// travel in the shared binary encoding (punct.Pattern.MarshalBinary — the
// same codec the checkpoint subsystem uses), so there is exactly one
// pattern wire format in the system.
type frame struct {
	Kind    uint8
	Tuple   stream.Tuple
	Pattern []byte // punctuation or feedback pattern (punct wire encoding)
	Intent  uint8
	Origin  string
	Hops    int
	Seq     int64
}

func marshalPattern(p punct.Pattern) []byte { return p.AppendBinary(nil) }

func unmarshalPattern(raw []byte) (punct.Pattern, error) {
	var p punct.Pattern
	if err := p.UnmarshalBinary(raw); err != nil {
		return punct.Pattern{}, err
	}
	return p, nil
}

// Sink is an exec.Operator with no outputs: everything it receives is
// framed onto the connection. Feedback frames arriving from the remote
// side are relayed upstream into the local plan.
type Sink struct {
	exec.Base
	SinkName string
	Schema   stream.Schema
	Conn     net.Conn
	// FlushEvery bounds batching: the write buffer is flushed after this
	// many tuples (default 64) and on every punctuation, mirroring the
	// paged-queue flush rule.
	FlushEvery int

	w       *bufio.Writer
	enc     *gob.Encoder
	pending int
	readErr atomic.Value // error from the feedback reader
	closing atomic.Bool
	started bool
	wg      sync.WaitGroup

	sent, feedbackIn int64
}

// NewSink frames the local stream onto conn.
func NewSink(name string, schema stream.Schema, conn net.Conn) *Sink {
	return &Sink{SinkName: name, Schema: schema, Conn: conn}
}

// Name implements exec.Operator.
func (s *Sink) Name() string {
	if s.SinkName != "" {
		return s.SinkName
	}
	return "remote-sink"
}

// InSchemas implements exec.Operator.
func (s *Sink) InSchemas() []stream.Schema { return []stream.Schema{s.Schema} }

// OutSchemas implements exec.Operator.
func (s *Sink) OutSchemas() []stream.Schema { return nil }

// Open implements exec.Operator: it starts the feedback reader. The
// runtime guarantees Context.SendFeedback is safe from other goroutines.
func (s *Sink) Open(ctx exec.Context) error {
	s.w = bufio.NewWriter(s.Conn)
	s.enc = gob.NewEncoder(s.w)
	s.started = true
	dec := gob.NewDecoder(s.Conn)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			var f frame
			if err := dec.Decode(&f); err != nil {
				if err != io.EOF && !s.closing.Load() {
					s.readErr.Store(err)
				}
				return
			}
			if f.Kind != frameFeedback {
				s.readErr.Store(fmt.Errorf("remote: unexpected frame kind %d on feedback path", f.Kind))
				return
			}
			pat, err := unmarshalPattern(f.Pattern)
			if err != nil {
				s.readErr.Store(fmt.Errorf("remote: decode feedback pattern: %w", err))
				return
			}
			atomic.AddInt64(&s.feedbackIn, 1)
			ctx.SendFeedback(0, core.Feedback{
				Intent:  core.Intent(f.Intent),
				Pattern: pat,
				Origin:  f.Origin,
				Hops:    f.Hops + 1,
				Seq:     f.Seq,
			})
		}
	}()
	return nil
}

func (s *Sink) flushEvery() int {
	if s.FlushEvery <= 0 {
		return 64
	}
	return s.FlushEvery
}

// ProcessTuple implements exec.Operator.
func (s *Sink) ProcessTuple(_ int, t stream.Tuple, _ exec.Context) error {
	if err := s.enc.Encode(frame{Kind: frameTuple, Tuple: t}); err != nil {
		return fmt.Errorf("remote: encode tuple: %w", err)
	}
	s.sent++
	s.pending++
	if s.pending >= s.flushEvery() {
		s.pending = 0
		return s.w.Flush()
	}
	return nil
}

// ProcessPunct implements exec.Operator: punctuation flushes, like the
// paged queues.
func (s *Sink) ProcessPunct(_ int, e punct.Embedded, _ exec.Context) error {
	if err := s.enc.Encode(frame{Kind: framePunct, Pattern: marshalPattern(e.Pattern)}); err != nil {
		return fmt.Errorf("remote: encode punct: %w", err)
	}
	s.pending = 0
	return s.w.Flush()
}

// closeWriter is the half-close surface of duplex transports (TCP).
type closeWriter interface{ CloseWrite() error }

// closeDrainTimeout bounds how long Sink.Close waits for the consumer to
// close its half after EOS.
const closeDrainTimeout = 10 * time.Second

// Close implements exec.Operator: EOS frame, flush, close the write half.
//
// On transports that support it, the write half is closed first and the
// feedback reader drains until the remote side closes: a full Close with
// feedback bytes still in flight would make TCP reset the connection,
// destroying the EOS frame (and any data) the consumer has not read yet.
func (s *Sink) Close(exec.Context) error {
	var firstErr error
	s.closing.Store(true)
	if s.started {
		if err := s.enc.Encode(frame{Kind: frameEOS}); err != nil {
			firstErr = err
		}
		if err := s.w.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if cw, ok := s.Conn.(closeWriter); ok && s.started && firstErr == nil {
		if err := cw.CloseWrite(); err != nil && firstErr == nil {
			firstErr = err
		}
		// The consumer closes its side once it has read EOS (Source.Close
		// runs even on shutdown), which ends the feedback reader with EOF.
		// The read deadline bounds the drain against a peer that stays
		// alive but never closes; the resulting timeout error is ignored
		// by the reader because closing is already set.
		_ = s.Conn.SetReadDeadline(time.Now().Add(closeDrainTimeout))
		s.wg.Wait()
		if err := s.Conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	} else {
		// No half-close (net.Pipe, error paths): closing the connection
		// unblocks the feedback reader.
		if err := s.Conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.wg.Wait()
	}
	if err, _ := s.readErr.Load().(error); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Stats reports (tuples sent, feedback received from remote).
func (s *Sink) Stats() (sent, feedbackIn int64) {
	return s.sent, atomic.LoadInt64(&s.feedbackIn)
}

// Source is an exec.Source replaying the frames a remote Sink sends;
// feedback delivered to it is framed back over the connection.
type Source struct {
	SourceName string
	Schema     stream.Schema
	Conn       net.Conn

	dec  *gob.Decoder
	w    *bufio.Writer
	enc  *gob.Encoder
	done bool

	received, feedbackOut int64
}

// NewSource replays a remote stream from conn.
func NewSource(name string, schema stream.Schema, conn net.Conn) *Source {
	return &Source{SourceName: name, Schema: schema, Conn: conn}
}

// Name implements exec.Source.
func (s *Source) Name() string {
	if s.SourceName != "" {
		return s.SourceName
	}
	return "remote-source"
}

// OutSchemas implements exec.Source.
func (s *Source) OutSchemas() []stream.Schema { return []stream.Schema{s.Schema} }

// Open implements exec.Source.
func (s *Source) Open(exec.Context) error {
	s.dec = gob.NewDecoder(s.Conn)
	s.w = bufio.NewWriter(s.Conn)
	s.enc = gob.NewEncoder(s.w)
	return nil
}

// Next implements exec.Source: one frame per call.
func (s *Source) Next(ctx exec.Context) (bool, error) {
	if s.done {
		return false, nil
	}
	var f frame
	if err := s.dec.Decode(&f); err != nil {
		if err == io.EOF {
			s.done = true
			return false, nil
		}
		return false, fmt.Errorf("remote: decode: %w", err)
	}
	switch f.Kind {
	case frameTuple:
		s.received++
		ctx.Emit(f.Tuple)
	case framePunct:
		pat, err := unmarshalPattern(f.Pattern)
		if err != nil {
			return false, fmt.Errorf("remote: decode punct pattern: %w", err)
		}
		ctx.EmitPunct(punct.NewEmbedded(pat))
	case frameEOS:
		s.done = true
		return false, nil
	default:
		return false, fmt.Errorf("remote: unexpected frame kind %d on data path", f.Kind)
	}
	return true, nil
}

// ProcessFeedback implements exec.Source: feedback crosses the wire
// against the stream direction.
func (s *Source) ProcessFeedback(_ int, f core.Feedback, _ exec.Context) error {
	s.feedbackOut++
	err := s.enc.Encode(frame{
		Kind:    frameFeedback,
		Pattern: marshalPattern(f.Pattern),
		Intent:  uint8(f.Intent),
		Origin:  f.Origin,
		Hops:    f.Hops,
		Seq:     f.Seq,
	})
	if err != nil {
		return fmt.Errorf("remote: encode feedback: %w", err)
	}
	return s.w.Flush()
}

// Close implements exec.Source.
func (s *Source) Close(exec.Context) error {
	return s.Conn.Close()
}

// Stats reports (tuples received, feedback sent to remote).
func (s *Source) Stats() (received, feedbackOut int64) {
	return s.received, s.feedbackOut
}

// Listen accepts exactly one upstream connection on addr ("host:0" picks a
// free port) and returns the bound address plus a function that blocks for
// the accepted connection.
func Listen(addr string) (string, func() (net.Conn, error), error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	accept := func() (net.Conn, error) {
		defer l.Close()
		return l.Accept()
	}
	return l.Addr().String(), accept, nil
}
