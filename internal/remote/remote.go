// Package remote carries one plan edge across a network connection,
// letting a query plan span processes or machines. The paper's argument
// for localized feedback (§2) is precisely the distributed setting:
// feedback travels hop by hop between adjacent operators, so no
// centralized monitor needs access to remote state or data.
//
// A RemoteSink terminates a local subplan and streams its items over a
// net.Conn; a RemoteSource on the other end replays them into the remote
// subplan. Feedback punctuation flows the opposite way over the same
// connection — the dashed arrow of Figure 2(b), now crossing a machine
// boundary.
//
// Wire format: gob frames, one direction per duplex half. Tuples and
// embedded punctuation flow downstream; feedback frames flow upstream.
package remote

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// countingWriter/countingReader sit between the gob codec's bufio layer and
// the connection, so the byte counters see exactly what crosses the wire
// (one atomic add per flushed buffer / filled read, not per frame).
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// Remote edges participate in distributed cuts: the sink forwards barriers
// in-band over the wire, the source hands them to the local coordination
// glue (exec.DistFollower).
var (
	_ exec.BarrierForwarder = (*Sink)(nil)
	_ exec.BarrierReceiver  = (*Source)(nil)
)

// frame kinds.
const (
	frameTuple = iota
	framePunct
	frameEOS
	frameFeedback
	// frameBarrier carries a checkpoint barrier in-band on the data path:
	// Seq is the epoch, Intent the capture mode. It must not be reordered
	// past tuples — the cut's position on the wire is the cut.
	frameBarrier
)

// frame is one wire message (downstream or upstream). Punctuation patterns
// travel in the shared binary encoding (punct.Pattern.MarshalBinary — the
// same codec the checkpoint subsystem uses), so there is exactly one
// pattern wire format in the system.
type frame struct {
	Kind    uint8
	Tuple   stream.Tuple
	Pattern []byte // punctuation or feedback pattern (punct wire encoding)
	Intent  uint8  // feedback intent; capture mode on barrier frames
	Origin  string
	Hops    int
	Seq     int64 // feedback sequence; epoch on barrier frames
}

func marshalPattern(p punct.Pattern) []byte { return p.AppendBinary(nil) }

func unmarshalPattern(raw []byte) (punct.Pattern, error) {
	var p punct.Pattern
	if err := p.UnmarshalBinary(raw); err != nil {
		return punct.Pattern{}, err
	}
	return p, nil
}

// Sink is an exec.Operator with no outputs: everything it receives is
// framed onto the connection. Feedback frames arriving from the remote
// side are relayed upstream into the local plan.
//
//pace:stateless its state is the connection itself (codec, write buffer); the supervisor re-dials and the barrier protocol re-aligns on restore
type Sink struct {
	exec.Base
	SinkName string
	Schema   stream.Schema
	Conn     net.Conn
	// FlushEvery bounds batching: the write buffer is flushed after this
	// many tuples (default 64) and on every punctuation, mirroring the
	// paged-queue flush rule.
	FlushEvery int
	// WriteTimeout bounds each write to the connection. A wedged peer — one
	// that stops reading but keeps the connection open — then surfaces as a
	// node error instead of blocking the pipeline (and any checkpoint
	// barrier behind it) forever. 0 disables the deadline: backpressure
	// from a merely slow consumer stalls the producer indefinitely, as a
	// paged queue would.
	WriteTimeout time.Duration

	w       *bufio.Writer
	enc     *gob.Encoder
	pending int
	readErr atomic.Value // error from the feedback reader
	closing atomic.Bool
	started bool
	wg      sync.WaitGroup

	// Counters are atomics so /metrics can scrape them while the plan
	// runs; bytes counters tick per flushed buffer, not per frame.
	sent, feedbackIn     atomic.Int64
	framesOut            atomic.Int64
	bytesOut, feedbackBy atomic.Int64
}

// NewSink frames the local stream onto conn.
func NewSink(name string, schema stream.Schema, conn net.Conn) *Sink {
	return &Sink{SinkName: name, Schema: schema, Conn: conn}
}

// Name implements exec.Operator.
func (s *Sink) Name() string {
	if s.SinkName != "" {
		return s.SinkName
	}
	return "remote-sink"
}

// InSchemas implements exec.Operator.
func (s *Sink) InSchemas() []stream.Schema { return []stream.Schema{s.Schema} }

// OutSchemas implements exec.Operator.
func (s *Sink) OutSchemas() []stream.Schema { return nil }

// Open implements exec.Operator: it starts the feedback reader. The
// runtime guarantees Context.SendFeedback is safe from other goroutines.
func (s *Sink) Open(ctx exec.Context) error {
	s.w = bufio.NewWriter(&countingWriter{w: s.Conn, n: &s.bytesOut})
	s.enc = gob.NewEncoder(s.w)
	s.started = true
	dec := gob.NewDecoder(&countingReader{r: s.Conn, n: &s.feedbackBy})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			var f frame
			if err := dec.Decode(&f); err != nil {
				if err != io.EOF && !s.closing.Load() {
					s.readErr.Store(err)
				}
				return
			}
			if f.Kind != frameFeedback {
				s.readErr.Store(fmt.Errorf("remote: unexpected frame kind %d on feedback path", f.Kind))
				return
			}
			pat, err := unmarshalPattern(f.Pattern)
			if err != nil {
				s.readErr.Store(fmt.Errorf("remote: decode feedback pattern: %w", err))
				return
			}
			s.feedbackIn.Add(1)
			ctx.SendFeedback(0, core.Feedback{
				Intent:  core.Intent(f.Intent),
				Pattern: pat,
				Origin:  f.Origin,
				Hops:    f.Hops + 1,
				Seq:     f.Seq,
			})
		}
	}()
	return nil
}

func (s *Sink) flushEvery() int {
	if s.FlushEvery <= 0 {
		return 64
	}
	return s.FlushEvery
}

// armDeadline applies WriteTimeout ahead of encodes and flushes; gob may
// flush the bufio writer mid-encode, so every encode is covered too.
func (s *Sink) armDeadline() {
	if s.WriteTimeout > 0 {
		_ = s.Conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
	}
}

// ProcessTuple implements exec.Operator.
func (s *Sink) ProcessTuple(_ int, t stream.Tuple, _ exec.Context) error {
	s.armDeadline()
	if err := s.enc.Encode(frame{Kind: frameTuple, Tuple: t}); err != nil {
		return fmt.Errorf("remote: encode tuple: %w", err)
	}
	s.sent.Add(1)
	s.framesOut.Add(1)
	s.pending++
	if s.pending >= s.flushEvery() {
		s.pending = 0
		if err := s.w.Flush(); err != nil {
			return fmt.Errorf("remote: flush to peer: %w", err)
		}
	}
	return nil
}

// ProcessPunct implements exec.Operator: punctuation flushes, like the
// paged queues.
func (s *Sink) ProcessPunct(_ int, e punct.Embedded, _ exec.Context) error {
	s.armDeadline()
	if err := s.enc.Encode(frame{Kind: framePunct, Pattern: marshalPattern(e.Pattern)}); err != nil {
		return fmt.Errorf("remote: encode punct: %w", err)
	}
	s.framesOut.Add(1)
	s.pending = 0
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("remote: flush to peer: %w", err)
	}
	return nil
}

// ForwardBarrier implements exec.BarrierForwarder: the checkpoint barrier
// crosses the process boundary as a wire frame, positioned after every
// tuple that preceded the local cut (they are already in the gob stream)
// and flushed immediately so the downstream subplan can start its aligned
// cut without waiting for a page to fill.
func (s *Sink) ForwardBarrier(epoch int64, mode snapshot.CaptureMode, _ exec.Context) error {
	s.armDeadline()
	if err := s.enc.Encode(frame{Kind: frameBarrier, Seq: epoch, Intent: uint8(mode)}); err != nil {
		return fmt.Errorf("remote: encode barrier epoch %d: %w", epoch, err)
	}
	s.framesOut.Add(1)
	s.pending = 0
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("remote: flush barrier epoch %d: %w", epoch, err)
	}
	return nil
}

// closeWriter is the half-close surface of duplex transports (TCP).
type closeWriter interface{ CloseWrite() error }

// closeDrainTimeout bounds how long Sink.Close waits for the consumer to
// close its half after EOS.
const closeDrainTimeout = 10 * time.Second

// Close implements exec.Operator: EOS frame, flush, close the write half.
//
// On transports that support it, the write half is closed first and the
// feedback reader drains until the remote side closes: a full Close with
// feedback bytes still in flight would make TCP reset the connection,
// destroying the EOS frame (and any data) the consumer has not read yet.
func (s *Sink) Close(exec.Context) error {
	var firstErr error
	s.closing.Store(true)
	if s.started {
		s.armDeadline()
		if err := s.enc.Encode(frame{Kind: frameEOS}); err != nil {
			firstErr = err
		} else {
			s.framesOut.Add(1)
		}
		if err := s.w.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if cw, ok := s.Conn.(closeWriter); ok && s.started && firstErr == nil {
		if err := cw.CloseWrite(); err != nil && firstErr == nil {
			firstErr = err
		}
		// The consumer closes its side once it has read EOS (Source.Close
		// runs even on shutdown), which ends the feedback reader with EOF.
		// The read deadline bounds the drain against a peer that stays
		// alive but never closes; the resulting timeout error is ignored
		// by the reader because closing is already set.
		_ = s.Conn.SetReadDeadline(time.Now().Add(closeDrainTimeout))
		s.wg.Wait()
		if err := s.Conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	} else {
		// No half-close (net.Pipe, error paths): closing the connection
		// unblocks the feedback reader.
		if err := s.Conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.wg.Wait()
	}
	if err, _ := s.readErr.Load().(error); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Stats reports (tuples sent, feedback received from remote).
func (s *Sink) Stats() (sent, feedbackIn int64) {
	return s.sent.Load(), s.feedbackIn.Load()
}

// TelemetryVars implements telemetry.VarExporter.
func (s *Sink) TelemetryVars() []telemetry.Var {
	return []telemetry.Var{
		{Name: "pace_remote_tuples_sent_total", Help: "Tuples framed onto the connection.", Kind: telemetry.Counter, Value: s.sent.Load},
		{Name: "pace_remote_frames_sent_total", Help: "Frames (tuple, punct, barrier, EOS) written to the wire.", Kind: telemetry.Counter, Value: s.framesOut.Load},
		{Name: "pace_remote_bytes_sent_total", Help: "Bytes written to the connection.", Kind: telemetry.Counter, Value: s.bytesOut.Load},
		{Name: "pace_remote_bytes_received_total", Help: "Feedback-path bytes read from the connection.", Kind: telemetry.Counter, Value: s.feedbackBy.Load},
		{Name: "pace_remote_feedback_received_total", Help: "Feedback frames received from the remote consumer.", Kind: telemetry.Counter, Value: s.feedbackIn.Load},
	}
}

// Source is an exec.Source replaying the frames a remote Sink sends;
// feedback delivered to it is framed back over the connection.
//
//pace:stateless its state is the connection itself (codec, barrier hook); the supervisor re-dials and the barrier protocol re-aligns on restore
type Source struct {
	SourceName string
	Schema     stream.Schema
	Conn       net.Conn

	// ReadTimeout bounds each frame read, the read-side mirror of
	// Sink.WriteTimeout: a wedged upstream peer — crashed without closing
	// the connection, or stalled mid-barrier — surfaces as a node error
	// instead of blocking the plan (and any barrier alignment waiting on
	// this edge) forever. It is an idle bound, not a rate bound: every
	// Next call re-arms it, so it only fires after a full timeout with no
	// frame at all. Set it well above the longest legitimate gap between
	// frames (source think time, feedback-driven droughts). Zero disables.
	ReadTimeout time.Duration

	dec  *gob.Decoder
	w    *bufio.Writer
	enc  *gob.Encoder
	done bool

	// barrierHook (SetBarrierHook) hands wire barriers to the local
	// checkpoint coordination glue; without one, barriers are dropped —
	// an uncoordinated consumer cannot cut, and the producer's coordinator
	// abandons the epoch when its ack never arrives.
	barrierHook func(epoch int64, mode snapshot.CaptureMode) error

	// Counters are atomics so /metrics can scrape them while the plan
	// runs. deadlineHits counts ReadTimeout expiries (wedged producer);
	// this package has no reconnect logic — a timed-out edge surfaces as a
	// node error and the supervisor restarts the subplan — so there is no
	// reconnect counter to export.
	received, feedbackOut atomic.Int64
	framesIn              atomic.Int64
	bytesIn, feedbackBy   atomic.Int64
	deadlineHits          atomic.Int64
}

// SetBarrierHook implements exec.BarrierReceiver. It must be called before
// the plan runs.
func (s *Source) SetBarrierHook(fn func(epoch int64, mode snapshot.CaptureMode) error) {
	s.barrierHook = fn
}

// NewSource replays a remote stream from conn.
func NewSource(name string, schema stream.Schema, conn net.Conn) *Source {
	return &Source{SourceName: name, Schema: schema, Conn: conn}
}

// Name implements exec.Source.
func (s *Source) Name() string {
	if s.SourceName != "" {
		return s.SourceName
	}
	return "remote-source"
}

// OutSchemas implements exec.Source.
func (s *Source) OutSchemas() []stream.Schema { return []stream.Schema{s.Schema} }

// Open implements exec.Source.
func (s *Source) Open(exec.Context) error {
	s.dec = gob.NewDecoder(&countingReader{r: s.Conn, n: &s.bytesIn})
	s.w = bufio.NewWriter(&countingWriter{w: s.Conn, n: &s.feedbackBy})
	s.enc = gob.NewEncoder(s.w)
	return nil
}

// Next implements exec.Source: one frame per call.
func (s *Source) Next(ctx exec.Context) (bool, error) {
	if s.done {
		return false, nil
	}
	if s.ReadTimeout > 0 {
		_ = s.Conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
	}
	var f frame
	if err := s.dec.Decode(&f); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.deadlineHits.Add(1)
			return false, fmt.Errorf("remote: no frame from upstream within %v (wedged producer?): %w", s.ReadTimeout, err)
		}
		if err == io.EOF {
			// Only an explicit EOS frame ends the stream cleanly; a bare
			// connection close means the producer died (kill -9, node error
			// teardown) and the consumer's results would be silently
			// partial. Surfacing it lets a supervisor treat the subplan as
			// crashed and restore from the last committed cut.
			s.done = true
			return false, fmt.Errorf("remote: connection closed before end of stream (producer crashed?)")
		}
		return false, fmt.Errorf("remote: decode: %w", err)
	}
	s.framesIn.Add(1)
	switch f.Kind {
	case frameTuple:
		s.received.Add(1)
		ctx.Emit(f.Tuple)
	case framePunct:
		pat, err := unmarshalPattern(f.Pattern)
		if err != nil {
			return false, fmt.Errorf("remote: decode punct pattern: %w", err)
		}
		ctx.EmitPunct(punct.NewEmbedded(pat))
	case frameBarrier:
		mode := snapshot.CaptureMode(f.Intent)
		if mode != snapshot.CaptureFull && mode != snapshot.CaptureDelta {
			return false, fmt.Errorf("remote: barrier epoch %d carries unknown capture mode %d", f.Seq, f.Intent)
		}
		if s.barrierHook != nil {
			// The hook registers the epoch with the local coordinator
			// (forced-epoch checkpoint); the runtime then cuts this source
			// right here — the frame's position in this edge's stream IS the
			// cut, which is what keeps parallel remote edges consistent
			// (each cuts at its own barrier, not when the first edge's
			// barrier registered the epoch).
			if err := s.barrierHook(f.Seq, mode); err != nil {
				return false, fmt.Errorf("remote: barrier epoch %d: %w", f.Seq, err)
			}
			if inj, ok := ctx.(exec.SourceBarrierInjector); ok {
				inj.InjectWireBarrier(f.Seq)
			}
		}
	case frameEOS:
		s.done = true
		return false, nil
	default:
		return false, fmt.Errorf("remote: unexpected frame kind %d on data path", f.Kind)
	}
	return true, nil
}

// ProcessFeedback implements exec.Source: feedback crosses the wire
// against the stream direction.
func (s *Source) ProcessFeedback(_ int, f core.Feedback, _ exec.Context) error {
	s.feedbackOut.Add(1)
	err := s.enc.Encode(frame{
		Kind:    frameFeedback,
		Pattern: marshalPattern(f.Pattern),
		Intent:  uint8(f.Intent),
		Origin:  f.Origin,
		Hops:    f.Hops,
		Seq:     f.Seq,
	})
	if err != nil {
		return fmt.Errorf("remote: encode feedback: %w", err)
	}
	return s.w.Flush()
}

// Close implements exec.Source.
func (s *Source) Close(exec.Context) error {
	return s.Conn.Close()
}

// Stats reports (tuples received, feedback sent to remote).
func (s *Source) Stats() (received, feedbackOut int64) {
	return s.received.Load(), s.feedbackOut.Load()
}

// TelemetryVars implements telemetry.VarExporter.
func (s *Source) TelemetryVars() []telemetry.Var {
	return []telemetry.Var{
		{Name: "pace_remote_tuples_received_total", Help: "Tuples replayed from the remote producer.", Kind: telemetry.Counter, Value: s.received.Load},
		{Name: "pace_remote_frames_received_total", Help: "Frames (tuple, punct, barrier, EOS) read from the wire.", Kind: telemetry.Counter, Value: s.framesIn.Load},
		{Name: "pace_remote_bytes_received_total", Help: "Bytes read from the connection.", Kind: telemetry.Counter, Value: s.bytesIn.Load},
		{Name: "pace_remote_bytes_sent_total", Help: "Feedback-path bytes written to the connection.", Kind: telemetry.Counter, Value: s.feedbackBy.Load},
		{Name: "pace_remote_feedback_sent_total", Help: "Feedback frames sent to the remote producer.", Kind: telemetry.Counter, Value: s.feedbackOut.Load},
		{Name: "pace_remote_deadline_hits_total", Help: "Read deadline expiries (wedged or crashed producer).", Kind: telemetry.Counter, Value: s.deadlineHits.Load},
	}
}

// Listen accepts exactly one upstream connection on addr ("host:0" picks a
// free port) and returns the bound address plus a function that blocks for
// the accepted connection.
func Listen(addr string) (string, func() (net.Conn, error), error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	accept := func() (net.Conn, error) {
		defer l.Close()
		return l.Accept()
	}
	return l.Addr().String(), accept, nil
}
