package core

import (
	"math/rand"
	"testing"

	"repro/internal/punct"
	"repro/internal/stream"
)

// randPred over a small int domain so subsumption and matches collide
// often.
func randPred(r *rand.Rand) punct.Pred {
	v := func() stream.Value { return stream.Int(r.Int63n(10)) }
	switch r.Intn(5) {
	case 0:
		return punct.Eq(v())
	case 1:
		return punct.Le(v())
	case 2:
		return punct.Ge(v())
	case 3:
		a, b := v(), v()
		if b.AsInt() < a.AsInt() {
			a, b = b, a
		}
		return punct.Range(a, b)
	default:
		return punct.Wild
	}
}

// Property: GuardTable.Suppress(t) ⟺ some installed feedback pattern
// matches t, regardless of installation order and subsumption merging.
func TestGuardTableSubsumptionPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		g := NewGuardTable(2)
		var installed []punct.Pattern
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			p := punct.NewPattern(randPred(r), randPred(r))
			if p.IsAllWild() {
				continue
			}
			installed = append(installed, p)
			g.Install(NewAssumed(p))
		}
		for probe := 0; probe < 50; probe++ {
			tp := stream.NewTuple(stream.Int(r.Int63n(10)), stream.Int(r.Int63n(10)))
			want := false
			for _, p := range installed {
				if p.Matches(tp) {
					want = true
					break
				}
			}
			if got := g.Suppress(tp); got != want {
				t.Fatalf("trial %d: Suppress(%v) = %v, want %v (installed %v)",
					trial, tp, got, want, installed)
			}
		}
	}
}

// Property: expiration never releases a guard whose subset could still
// contain future tuples — i.e. a released guard's pattern is covered by
// the punctuation seen.
func TestGuardTableExpirationSound(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		g := NewGuardTable(1)
		bound := r.Int63n(10)
		p := punct.OnAttr(1, 0, punct.Le(stream.Int(bound)))
		g.Install(NewAssumed(p))
		wm := r.Int63n(10)
		g.ObservePunct(punct.NewEmbedded(punct.OnAttr(1, 0, punct.Le(stream.Int(wm)))))
		released := g.Active() == 0
		if released && wm < bound {
			t.Fatalf("trial %d: guard ≤%d released by punctuation ≤%d", trial, bound, wm)
		}
		if !released && wm >= bound {
			t.Fatalf("trial %d: guard ≤%d not released by covering punctuation ≤%d", trial, bound, wm)
		}
	}
}
