package core

import (
	"fmt"

	"repro/internal/stream"
)

// The paper defines correctness only for assumed punctuation (§4) and
// leaves desired and demanded "for future work" (§8). This file supplies
// those definitions, in the same executable style as CheckExploitation:
//
// Desired (?): prioritization "does not change the overall result of the
// issuing operator, but affects ... the production time and order of its
// result stream" (§3.4). Correct exploitation therefore requires
//
//	multiset(S) == multiset(SR),
//
// and useful exploitation additionally moves subset tuples earlier in the
// production order.
//
// Demanded (!): the issuer accepts approximate results for the subset.
// Correct exploitation requires every reference result to still be
// produced, and permits extra (partial) results only inside the demanded
// subset:
//
//	SR ⊆ S  ∧  (S − SR) ⊆ subset(S, f).

// DesiredReport is the outcome of a desired-punctuation check.
type DesiredReport struct {
	// SetChanged lists tuples whose multiplicity differs between runs
	// (any entry is a violation).
	SetChanged []stream.Tuple
	// MeanRankRef and MeanRankActual are the average positions (0-based)
	// of subset tuples in each run; exploitation should not increase it.
	MeanRankRef, MeanRankActual float64
	// SubsetCount is the number of subset tuples observed.
	SubsetCount int
}

// OK reports whether the run satisfied the desired-punctuation contract
// (result set unchanged; rank movement is advisory, not a violation).
func (r DesiredReport) OK() bool { return len(r.SetChanged) == 0 }

// Improved reports whether subset tuples were actually produced earlier.
func (r DesiredReport) Improved() bool {
	return r.SubsetCount > 0 && r.MeanRankActual < r.MeanRankRef
}

// Err returns nil if the contract held.
func (r DesiredReport) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("core: desired exploitation changed the result set (%d tuples differ)", len(r.SetChanged))
}

// CheckDesired verifies the desired-punctuation contract between a
// reference run (no exploitation) and an actual run (with ?f exploited).
func CheckDesired(reference, actual []stream.Tuple, f Feedback) DesiredReport {
	rep := DesiredReport{}
	counts := map[string]int{}
	byKey := map[string]stream.Tuple{}
	for _, t := range reference {
		k := allKey(t)
		counts[k]++
		byKey[k] = t
	}
	for _, t := range actual {
		k := allKey(t)
		counts[k]--
		byKey[k] = t
	}
	for k, n := range counts {
		for i := 0; i < abs(n); i++ {
			rep.SetChanged = append(rep.SetChanged, byKey[k])
		}
	}
	rep.MeanRankRef, _ = meanSubsetRank(reference, f)
	rep.MeanRankActual, rep.SubsetCount = meanSubsetRank(actual, f)
	return rep
}

func meanSubsetRank(ts []stream.Tuple, f Feedback) (float64, int) {
	sum, n := 0.0, 0
	for i, t := range ts {
		if f.Matches(t) {
			sum += float64(i)
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// DemandedReport is the outcome of a demanded-punctuation check.
type DemandedReport struct {
	// Missing are reference results absent from the actual run (the
	// final, exact answers must still appear).
	Missing []stream.Tuple
	// BadExtras are extra results OUTSIDE the demanded subset — partials
	// are only licensed for the subset the issuer demanded.
	BadExtras []stream.Tuple
	// Partials counts the licensed extra results (inside the subset).
	Partials int
}

// OK reports whether the run satisfied the demanded-punctuation contract.
func (r DemandedReport) OK() bool { return len(r.Missing) == 0 && len(r.BadExtras) == 0 }

// Err returns nil if the contract held.
func (r DemandedReport) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("core: demanded exploitation incorrect: %d exact results missing, %d unlicensed extras",
		len(r.Missing), len(r.BadExtras))
}

// CheckDemanded verifies the demanded-punctuation contract between a
// reference run and an actual run with !f exploited.
func CheckDemanded(reference, actual []stream.Tuple, f Feedback) DemandedReport {
	rep := DemandedReport{}
	remaining := map[string]int{}
	byKey := map[string]stream.Tuple{}
	for _, t := range actual {
		k := allKey(t)
		remaining[k]++
		byKey[k] = t
	}
	for _, t := range reference {
		k := allKey(t)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		rep.Missing = append(rep.Missing, t)
	}
	for k, n := range remaining {
		t := byKey[k]
		for i := 0; i < n; i++ {
			if f.Matches(t) {
				rep.Partials++
			} else {
				rep.BadExtras = append(rep.BadExtras, t)
			}
		}
	}
	return rep
}

func allKey(t stream.Tuple) string {
	idx := make([]int, t.Arity())
	for i := range idx {
		idx[i] = i
	}
	return t.Key(idx)
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
