package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/punct"
)

// Binary feedback codec layered on the punct.Pattern wire encoding, used by
// the network edge and the checkpoint subsystem so both serialize feedback
// identically:
//
//	intent(1) | pattern | uvarint(len)+origin | varint(hops) | varint(seq)

// AppendBinary appends the feedback's binary encoding to b and returns the
// extended buffer.
func (f Feedback) AppendBinary(b []byte) []byte {
	b = append(b, byte(f.Intent))
	b = f.Pattern.AppendBinary(b)
	b = binary.AppendUvarint(b, uint64(len(f.Origin)))
	b = append(b, f.Origin...)
	b = binary.AppendVarint(b, int64(f.Hops))
	b = binary.AppendVarint(b, f.Seq)
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f Feedback) MarshalBinary() ([]byte, error) { return f.AppendBinary(nil), nil }

// DecodeFeedback decodes one feedback from the front of b, returning the
// feedback and the remaining bytes.
func DecodeFeedback(b []byte) (Feedback, []byte, error) {
	if len(b) == 0 {
		return Feedback{}, nil, fmt.Errorf("core: decode feedback: empty buffer")
	}
	f := Feedback{Intent: Intent(b[0])}
	var err error
	if f.Pattern, b, err = punct.DecodePattern(b[1:]); err != nil {
		return Feedback{}, nil, err
	}
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return Feedback{}, nil, fmt.Errorf("core: decode feedback: bad origin length")
	}
	f.Origin = string(b[n : n+int(l)])
	b = b[n+int(l):]
	hops, n := binary.Varint(b)
	if n <= 0 {
		return Feedback{}, nil, fmt.Errorf("core: decode feedback: bad hops")
	}
	f.Hops = int(hops)
	b = b[n:]
	seq, n := binary.Varint(b)
	if n <= 0 {
		return Feedback{}, nil, fmt.Errorf("core: decode feedback: bad seq")
	}
	f.Seq = seq
	return f, b[n:], nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The buffer must
// contain exactly one feedback.
func (f *Feedback) UnmarshalBinary(data []byte) error {
	fb, rest, err := DecodeFeedback(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: unmarshal feedback: %d trailing bytes", len(rest))
	}
	*f = fb
	return nil
}
