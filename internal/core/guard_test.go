package core

import (
	"testing"

	"repro/internal/punct"
	"repro/internal/stream"
)

func ts(us int64) stream.Value { return stream.TimeMicros(us) }

func TestGuardTableSuppress(t *testing.T) {
	g := NewGuardTable(2)
	g.Install(NewAssumed(punct.OnAttr(2, 0, punct.Le(ts(100)))))
	if !g.Suppress(stream.NewTuple(ts(50), stream.Float(1))) {
		t.Error("tuple in the subset must be suppressed")
	}
	if g.Suppress(stream.NewTuple(ts(150), stream.Float(1))) {
		t.Error("tuple outside the subset must pass")
	}
	hits, _, _ := g.Stats()
	if hits != 1 {
		t.Errorf("hits = %d", hits)
	}
}

func TestGuardTableSubsumption(t *testing.T) {
	g := NewGuardTable(2)
	if !g.Install(NewAssumed(punct.OnAttr(2, 0, punct.Le(ts(100))))) {
		t.Error("first install must change the table")
	}
	// Narrower guard: redundant, table unchanged.
	if g.Install(NewAssumed(punct.OnAttr(2, 0, punct.Le(ts(50))))) {
		t.Error("subsumed guard must be a no-op")
	}
	if g.Active() != 1 {
		t.Errorf("active = %d", g.Active())
	}
	// Wider guard: replaces the old one.
	if !g.Install(NewAssumed(punct.OnAttr(2, 0, punct.Le(ts(200))))) {
		t.Error("wider guard must install")
	}
	if g.Active() != 1 {
		t.Errorf("active after widen = %d (old guard should be merged away)", g.Active())
	}
	_, merged, _ := g.Stats()
	if merged != 1 {
		t.Errorf("merged = %d", merged)
	}
}

func TestGuardTableExpiration(t *testing.T) {
	// §4.4: once embedded punctuation covers the feedback predicate, the
	// guard holds no information and must be released.
	g := NewGuardTable(2)
	g.Install(NewAssumed(punct.OnAttr(2, 0, punct.Le(ts(100)))))
	if n := g.ObservePunct(punct.NewEmbedded(punct.OnAttr(2, 0, punct.Le(ts(50))))); n != 0 {
		t.Errorf("premature release: %d", n)
	}
	if g.Active() != 1 {
		t.Error("guard must survive a weaker punctuation")
	}
	if n := g.ObservePunct(punct.NewEmbedded(punct.OnAttr(2, 0, punct.Le(ts(100))))); n != 1 {
		t.Errorf("guard must be released when covered, got %d", n)
	}
	if g.Active() != 0 {
		t.Error("guard table must be empty after expiration")
	}
	_, _, expired := g.Stats()
	if expired != 1 {
		t.Errorf("expired = %d", expired)
	}
}

func TestGuardTableSupportable(t *testing.T) {
	g := NewGuardTable(2)
	if g.Supportable(punct.OnAttr(2, 0, punct.Le(ts(10)))) {
		t.Error("nothing punctuated yet: unsupportable")
	}
	g.ObservePunct(punct.NewEmbedded(punct.OnAttr(2, 0, punct.Le(ts(5)))))
	if !g.Supportable(punct.OnAttr(2, 0, punct.Le(ts(10)))) {
		t.Error("attribute now delimited: supportable")
	}
	if g.Supportable(punct.OnAttr(2, 1, punct.Ge(stream.Float(1)))) {
		t.Error("never-punctuated attribute: unsupportable")
	}
}

func TestGuardTableMultipleDisjointGuards(t *testing.T) {
	g := NewGuardTable(1)
	g.Install(NewAssumed(punct.OnAttr(1, 0, punct.Eq(stream.Int(1)))))
	g.Install(NewAssumed(punct.OnAttr(1, 0, punct.Eq(stream.Int(2)))))
	if g.Active() != 2 {
		t.Errorf("active = %d", g.Active())
	}
	if !g.Suppress(stream.NewTuple(stream.Int(1))) || !g.Suppress(stream.NewTuple(stream.Int(2))) {
		t.Error("both guards must fire")
	}
	if g.Suppress(stream.NewTuple(stream.Int(3))) {
		t.Error("unguarded value must pass")
	}
	// Exact-value punctuation releases only the matching guard.
	g.ObservePunct(punct.NewEmbedded(punct.OnAttr(1, 0, punct.Eq(stream.Int(1)))))
	if g.Active() != 1 {
		t.Errorf("active after partial expiration = %d", g.Active())
	}
	if g.Suppress(stream.NewTuple(stream.Int(1))) {
		t.Error("expired guard must not fire")
	}
	if !g.Suppress(stream.NewTuple(stream.Int(2))) {
		t.Error("remaining guard must still fire")
	}
}

func TestResponseDid(t *testing.T) {
	r := Response{Actions: []Action{ActGuardInput, ActPropagate}}
	if !r.Did(ActGuardInput) || !r.Did(ActPropagate) || r.Did(ActPurgeState) {
		t.Error("Response.Did")
	}
	for a := ActNone; a <= ActCloseWindows; a++ {
		if a.String() == "action(?)" {
			t.Errorf("missing name for action %d", a)
		}
	}
}
