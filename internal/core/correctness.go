package core

import (
	"fmt"

	"repro/internal/punct"
	"repro/internal/stream"
)

// This file implements §4's notions of correctness as executable checks.
//
// Definition 1 (correct exploitation): operator O, consuming SI and
// normally producing SR, correctly exploits assumed punctuation f iff the
// stream S it actually produces satisfies
//
//	SR − subset(SR, f)  ⊆  S  ⊆  SR.
//
// The lower bound says exploitation may drop only tuples in the feedback
// subset; the upper bound says exploitation may never invent tuples. The
// null response (S ≡ SR) is correct.
//
// Definition 2 (safe propagation): O safely propagates g iff any
// antecedent's exploitation of g cannot alter O's own correct exploitation
// of the feedback O received.

// ExploitReport is the outcome of an exploitation check.
type ExploitReport struct {
	// Missing are tuples in SR − subset(SR,f) that S failed to produce
	// (violations of the lower bound).
	Missing []stream.Tuple
	// Extra are tuples in S that are not in SR (violations of the upper
	// bound).
	Extra []stream.Tuple
	// Suppressed counts tuples of subset(SR,f) legitimately omitted.
	Suppressed int
}

// OK reports whether the run satisfied Definition 1.
func (r ExploitReport) OK() bool { return len(r.Missing) == 0 && len(r.Extra) == 0 }

// Err returns nil if the run is correct, or a descriptive error.
func (r ExploitReport) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("core: exploitation incorrect: %d required tuples missing, %d invented tuples", len(r.Missing), len(r.Extra))
}

// CheckExploitation verifies Definition 1 on recorded runs: reference is
// SR (the output with no feedback), actual is S (the output with feedback f
// exploited). Multiset semantics: duplicates count.
//
// The check treats streams as unordered multisets, consistent with the
// OOP architecture where output order is not part of operator semantics.
func CheckExploitation(reference, actual []stream.Tuple, f Feedback) ExploitReport {
	var rep ExploitReport
	// Multiset of actual tuples, keyed canonically on all attributes.
	remaining := map[string]int{}
	actualByKey := map[string]stream.Tuple{}
	allIdx := func(t stream.Tuple) []int {
		idx := make([]int, t.Arity())
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	for _, t := range actual {
		k := t.Key(allIdx(t))
		remaining[k]++
		actualByKey[k] = t
	}
	for _, t := range reference {
		k := t.Key(allIdx(t))
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		// Absent from actual: legal only if the tuple is in the
		// feedback subset.
		if f.Matches(t) {
			rep.Suppressed++
		} else {
			rep.Missing = append(rep.Missing, t)
		}
	}
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			rep.Extra = append(rep.Extra, actualByKey[k])
		}
	}
	return rep
}

// AttrMap describes how an operator's output attributes relate to one
// input's attributes, for feedback propagation. For output attribute j,
// ToInput[j] is the index of the input attribute carrying the same value,
// or -1 if the output attribute is computed, constant, or comes from a
// different input.
type AttrMap struct {
	// InputArity is the arity of the target input schema.
	InputArity int
	// ToInput maps output attribute index → input attribute index (or -1).
	ToInput []int
}

// Identity returns the identity mapping for arity n (e.g. SELECT).
func Identity(n int) AttrMap {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return AttrMap{InputArity: n, ToInput: m}
}

// InputPattern projects an output-schema pattern into the input schema:
// input attribute i receives the predicate of the output attribute that
// carries it (wildcard if none).
func (m AttrMap) InputPattern(p punct.Pattern) punct.Pattern {
	// Build inverse mapping input attr → output attr.
	inv := make([]int, m.InputArity)
	for i := range inv {
		inv[i] = -1
	}
	for out, in := range m.ToInput {
		if in >= 0 && in < m.InputArity {
			inv[in] = out
		}
	}
	return p.Project(inv)
}

// Propagation is the result of a safety analysis.
type Propagation struct {
	// OK reports whether a safe propagation exists for this input.
	OK bool
	// Pattern is the safe input-schema pattern (valid when OK).
	Pattern punct.Pattern
	// Reason explains refusals, for diagnostics.
	Reason string
}

// SafePropagation decides whether assumed feedback with output-schema
// pattern p can be propagated to an input described by mapping m, and if
// so, produces the propagated pattern (Definition 2).
//
// The rule (§4.2): the bound attributes of p must ALL be carried by the
// mapping. If any bound conjunct is lost in projection, suppressing input
// tuples that merely match the carried conjuncts could remove output
// tuples NOT in the feedback subset — the paper's ¬[50,*,*,50] example,
// where projecting either side would wrongly suppress <49,2,3,50>.
//
// One refinement the paper notes implicitly: the lost conjuncts must be
// lost, not merely bound to another input. A pattern whose bound
// attributes split across two join inputs has no safe propagation to
// either side (unless one side carries all of them).
func SafePropagation(p punct.Pattern, m AttrMap) Propagation {
	if len(m.ToInput) != p.Arity() {
		return Propagation{Reason: fmt.Sprintf("mapping arity %d != pattern arity %d", len(m.ToInput), p.Arity())}
	}
	if p.IsAllWild() {
		// ¬[*,…,*] would suppress the entire input; it is technically
		// propagable but semantically a shutdown, handled elsewhere.
		return Propagation{Reason: "all-wildcard pattern: use shutdown, not feedback"}
	}
	for _, j := range p.Bound() {
		if m.ToInput[j] < 0 {
			return Propagation{Reason: fmt.Sprintf("output attribute %d is bound by the pattern but not carried to this input", j)}
		}
	}
	return Propagation{OK: true, Pattern: m.InputPattern(p)}
}

// SafePropagationMulti analyses propagation of p to several inputs at once
// (e.g. a join's two inputs) and returns one Propagation per input.
// An input's propagation is safe only if that input alone carries every
// bound attribute of p.
func SafePropagationMulti(p punct.Pattern, maps []AttrMap) []Propagation {
	out := make([]Propagation, len(maps))
	for i, m := range maps {
		out[i] = SafePropagation(p, m)
	}
	return out
}
