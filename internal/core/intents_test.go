package core

import (
	"testing"

	"repro/internal/punct"
	"repro/internal/stream"
)

func desiredSeg(seg int64) Feedback {
	return NewDesired(punct.OnAttr(2, 0, punct.Eq(stream.Int(seg))))
}

func TestCheckDesiredReorderingIsCorrect(t *testing.T) {
	ref := []stream.Tuple{tup(1, 10), tup(2, 20), tup(1, 30), tup(2, 40)}
	// Exploited run: segment-2 tuples promoted to the front, set intact.
	actual := []stream.Tuple{tup(2, 20), tup(2, 40), tup(1, 10), tup(1, 30)}
	rep := CheckDesired(ref, actual, desiredSeg(2))
	if !rep.OK() || rep.Err() != nil {
		t.Fatalf("pure reorder must be correct: %+v", rep)
	}
	if !rep.Improved() {
		t.Errorf("promotion should improve mean rank: ref %.1f actual %.1f",
			rep.MeanRankRef, rep.MeanRankActual)
	}
}

func TestCheckDesiredDroppingIsIncorrect(t *testing.T) {
	ref := []stream.Tuple{tup(1, 10), tup(2, 20)}
	actual := []stream.Tuple{tup(2, 20)} // desired must never drop
	rep := CheckDesired(ref, actual, desiredSeg(2))
	if rep.OK() {
		t.Fatal("dropping a tuple under desired feedback must be incorrect")
	}
}

func TestCheckDesiredAddingIsIncorrect(t *testing.T) {
	ref := []stream.Tuple{tup(1, 10)}
	actual := []stream.Tuple{tup(1, 10), tup(2, 99)}
	if CheckDesired(ref, actual, desiredSeg(2)).OK() {
		t.Fatal("inventing tuples under desired feedback must be incorrect")
	}
}

func TestCheckDesiredNullResponse(t *testing.T) {
	ref := []stream.Tuple{tup(1, 10), tup(2, 20)}
	rep := CheckDesired(ref, ref, desiredSeg(2))
	if !rep.OK() || rep.Improved() {
		t.Error("null response: correct but not an improvement")
	}
}

func TestCheckDemandedPartialsLicensed(t *testing.T) {
	f := NewDemanded(punct.OnAttr(2, 0, punct.Eq(stream.Int(1))))
	ref := []stream.Tuple{tup(1, 100), tup(2, 200)}
	// Actual: an early partial for the demanded subset, then the exact
	// results.
	actual := []stream.Tuple{tup(1, 50), tup(1, 100), tup(2, 200)}
	rep := CheckDemanded(ref, actual, f)
	if !rep.OK() || rep.Partials != 1 {
		t.Fatalf("licensed partial: %+v", rep)
	}
}

func TestCheckDemandedViolations(t *testing.T) {
	f := NewDemanded(punct.OnAttr(2, 0, punct.Eq(stream.Int(1))))
	ref := []stream.Tuple{tup(1, 100), tup(2, 200)}
	// Missing an exact result.
	rep := CheckDemanded(ref, []stream.Tuple{tup(1, 100)}, f)
	if rep.OK() || len(rep.Missing) != 1 {
		t.Fatalf("missing exact result must fail: %+v", rep)
	}
	// Extra outside the demanded subset.
	rep = CheckDemanded(ref, []stream.Tuple{tup(1, 100), tup(2, 200), tup(2, 999)}, f)
	if rep.OK() || len(rep.BadExtras) != 1 {
		t.Fatalf("unlicensed extra must fail: %+v", rep)
	}
}
