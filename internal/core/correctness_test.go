package core

import (
	"math/rand"
	"testing"

	"repro/internal/punct"
	"repro/internal/stream"
)

func tup(vals ...int64) stream.Tuple {
	vs := make([]stream.Value, len(vals))
	for i, v := range vals {
		vs[i] = stream.Int(v)
	}
	return stream.NewTuple(vs...)
}

func TestCheckExploitationNullResponse(t *testing.T) {
	ref := []stream.Tuple{tup(1, 10), tup(2, 20), tup(3, 30)}
	f := NewAssumed(punct.OnAttr(2, 0, punct.Eq(stream.Int(2))))
	rep := CheckExploitation(ref, ref, f)
	if !rep.OK() || rep.Suppressed != 0 {
		t.Errorf("null response must be correct: %+v", rep)
	}
}

func TestCheckExploitationMaximal(t *testing.T) {
	ref := []stream.Tuple{tup(1, 10), tup(2, 20), tup(3, 30)}
	actual := []stream.Tuple{tup(1, 10), tup(3, 30)}
	f := NewAssumed(punct.OnAttr(2, 0, punct.Eq(stream.Int(2))))
	rep := CheckExploitation(ref, actual, f)
	if !rep.OK() || rep.Suppressed != 1 {
		t.Errorf("maximal exploitation must be correct: %+v", rep)
	}
}

func TestCheckExploitationViolations(t *testing.T) {
	ref := []stream.Tuple{tup(1, 10), tup(2, 20)}
	f := NewAssumed(punct.OnAttr(2, 0, punct.Eq(stream.Int(2))))
	// Missing a tuple outside the subset: lower-bound violation.
	rep := CheckExploitation(ref, []stream.Tuple{tup(2, 20)}, f)
	if rep.OK() || len(rep.Missing) != 1 || rep.Err() == nil {
		t.Errorf("dropping a non-subset tuple must violate Def. 1: %+v", rep)
	}
	// Inventing a tuple: upper-bound violation.
	rep = CheckExploitation(ref, []stream.Tuple{tup(1, 10), tup(2, 20), tup(9, 90)}, f)
	if rep.OK() || len(rep.Extra) != 1 {
		t.Errorf("inventing tuples must violate Def. 1: %+v", rep)
	}
}

func TestCheckExploitationMultiset(t *testing.T) {
	ref := []stream.Tuple{tup(1, 10), tup(1, 10)}
	f := NewAssumed(punct.OnAttr(2, 0, punct.Eq(stream.Int(9))))
	rep := CheckExploitation(ref, []stream.Tuple{tup(1, 10)}, f)
	if rep.OK() {
		t.Error("dropping one of two duplicates outside the subset must fail")
	}
}

// Property: for random streams and random subsets, the three canonical
// responses (null, maximal, partial) all satisfy Definition 1, and any
// response dropping a non-subset tuple fails it.
func TestCheckExploitationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		var ref []stream.Tuple
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			ref = append(ref, tup(r.Int63n(5), r.Int63n(5)))
		}
		cut := r.Int63n(5)
		f := NewAssumed(punct.OnAttr(2, 0, punct.Le(stream.Int(cut))))
		var maximal, partial []stream.Tuple
		for i, tp := range ref {
			if f.Matches(tp) {
				if i%2 == 0 {
					partial = append(partial, tp)
				}
				continue
			}
			maximal = append(maximal, tp)
			partial = append(partial, tp)
		}
		if rep := CheckExploitation(ref, ref, f); !rep.OK() {
			t.Fatalf("null response rejected: %+v", rep)
		}
		if rep := CheckExploitation(ref, maximal, f); !rep.OK() {
			t.Fatalf("maximal response rejected: %+v", rep)
		}
		if rep := CheckExploitation(ref, partial, f); !rep.OK() {
			t.Fatalf("partial response rejected: %+v", rep)
		}
	}
}

func TestAttrMapInputPattern(t *testing.T) {
	// Join output (a, t, id, b) from A(a,t,id) and B(t,id,b): §4.2 example.
	// Left map: a→0, t→1, id→2, b→-1.
	leftMap := AttrMap{InputArity: 3, ToInput: []int{0, 1, 2, -1}}
	f := punct.NewPattern(punct.Wild, punct.Eq(stream.Int(3)), punct.Eq(stream.Int(4)), punct.Wild)
	in := leftMap.InputPattern(f)
	want := punct.NewPattern(punct.Wild, punct.Eq(stream.Int(3)), punct.Eq(stream.Int(4)))
	if !in.Equal(want) {
		t.Errorf("InputPattern = %v, want %v", in, want)
	}
}

// TestSafePropagationPaperExamples encodes §4.2's JOIN example exactly:
// streams A(a,t,id) and B(t,id,b), equi-join on (t,id), output C(a,t,id,b).
func TestSafePropagationPaperExamples(t *testing.T) {
	leftMap := AttrMap{InputArity: 3, ToInput: []int{0, 1, 2, -1}}
	rightMap := AttrMap{InputArity: 3, ToInput: []int{-1, 0, 1, 2}}

	// f = ¬[*,3,4,*]: propagates to both inputs.
	f1 := punct.NewPattern(punct.Wild, punct.Eq(stream.Int(3)), punct.Eq(stream.Int(4)), punct.Wild)
	props := SafePropagationMulti(f1, []AttrMap{leftMap, rightMap})
	if !props[0].OK || !props[1].OK {
		t.Fatalf("¬[*,3,4,*] must propagate to both: %+v", props)
	}
	wantL := punct.NewPattern(punct.Wild, punct.Eq(stream.Int(3)), punct.Eq(stream.Int(4)))
	wantR := punct.NewPattern(punct.Eq(stream.Int(3)), punct.Eq(stream.Int(4)), punct.Wild)
	if !props[0].Pattern.Equal(wantL) || !props[1].Pattern.Equal(wantR) {
		t.Errorf("propagated patterns: left %v right %v", props[0].Pattern, props[1].Pattern)
	}

	// f = ¬[50,*,*,*]: only propagates to A.
	f2 := punct.NewPattern(punct.Eq(stream.Int(50)), punct.Wild, punct.Wild, punct.Wild)
	props = SafePropagationMulti(f2, []AttrMap{leftMap, rightMap})
	if !props[0].OK || props[1].OK {
		t.Fatalf("¬[50,*,*,*] must propagate only left: %+v", props)
	}

	// f = ¬[50,*,*,50]: no safe propagation exists (<49,2,3,50> example).
	f3 := punct.NewPattern(punct.Eq(stream.Int(50)), punct.Wild, punct.Wild, punct.Eq(stream.Int(50)))
	props = SafePropagationMulti(f3, []AttrMap{leftMap, rightMap})
	if props[0].OK || props[1].OK {
		t.Fatalf("¬[50,*,*,50] must not propagate anywhere: %+v", props)
	}
}

func TestSafePropagationRejectsAllWild(t *testing.T) {
	if prop := SafePropagation(punct.AllWild(2), Identity(2)); prop.OK {
		t.Error("all-wildcard feedback must be refused")
	}
}

func TestSafePropagationArityMismatch(t *testing.T) {
	p := punct.OnAttr(3, 0, punct.Eq(stream.Int(1)))
	if prop := SafePropagation(p, Identity(2)); prop.OK {
		t.Error("arity mismatch must be refused")
	}
}

// Property: safe propagation is semantically sound — suppressing input
// tuples matching the propagated pattern never suppresses an output tuple
// outside the feedback subset. We verify on a simulated projection
// operator applying the mapping.
func TestSafePropagationSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 2000; trial++ {
		inArity := 2 + r.Intn(3)
		outArity := 1 + r.Intn(inArity)
		// Random injective partial mapping output→input.
		perm := r.Perm(inArity)
		toInput := make([]int, outArity)
		for i := range toInput {
			if r.Intn(5) == 0 {
				toInput[i] = -1 // computed attr
			} else {
				toInput[i] = perm[i]
			}
		}
		m := AttrMap{InputArity: inArity, ToInput: toInput}
		// Random feedback over the output schema.
		preds := make([]punct.Pred, outArity)
		for i := range preds {
			if r.Intn(2) == 0 {
				preds[i] = punct.Wild
			} else {
				preds[i] = punct.Le(stream.Int(r.Int63n(10)))
			}
		}
		p := punct.NewPattern(preds...)
		prop := SafePropagation(p, m)
		if !prop.OK {
			continue
		}
		// Simulate: input tuple → output tuple via mapping (computed
		// attrs get a constant).
		for trial2 := 0; trial2 < 50; trial2++ {
			in := make([]stream.Value, inArity)
			for i := range in {
				in[i] = stream.Int(r.Int63n(12))
			}
			inT := stream.NewTuple(in...)
			out := make([]stream.Value, outArity)
			for i, src := range toInput {
				if src >= 0 {
					out[i] = in[src]
				} else {
					out[i] = stream.Int(0)
				}
			}
			outT := stream.NewTuple(out...)
			if prop.Pattern.Matches(inT) && !p.Matches(outT) {
				t.Fatalf("unsound propagation: pattern %v mapping %v input %v output %v",
					p, toInput, inT, outT)
			}
		}
	}
}
