package core

import (
	"testing"

	"repro/internal/punct"
	"repro/internal/stream"
)

var fbSchema = stream.MustSchema(
	stream.F("segment", stream.KindInt),
	stream.F("ts", stream.KindTime),
	stream.F("speed", stream.KindFloat),
)

func TestIntentNotation(t *testing.T) {
	cases := []struct {
		i     Intent
		sigil string
		name  string
	}{
		{Assumed, "¬", "assumed"},
		{Desired, "?", "desired"},
		{Demanded, "!", "demanded"},
	}
	for _, tc := range cases {
		if tc.i.Sigil() != tc.sigil || tc.i.String() != tc.name {
			t.Errorf("intent %v: sigil %q name %q", tc.i, tc.i.Sigil(), tc.i.String())
		}
		for _, in := range []string{tc.sigil, tc.name} {
			got, err := ParseIntent(in)
			if err != nil || got != tc.i {
				t.Errorf("ParseIntent(%q) = %v, %v", in, got, err)
			}
		}
	}
	if _, err := ParseIntent("maybe"); err == nil {
		t.Error("unknown intent must fail")
	}
}

func TestFeedbackStringParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"¬[*, <=1970-01-01T00:00:00.000100Z, *]",
		"?[7, *, *]",
		"![*, *, >=50]",
	} {
		f, err := ParseFeedback(s, fbSchema)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		back, err := ParseFeedback(f.String(), fbSchema)
		if err != nil {
			t.Fatalf("reparse %q: %v", f.String(), err)
		}
		if back.Intent != f.Intent || !back.Pattern.Equal(f.Pattern) {
			t.Errorf("round trip %q → %q", s, f.String())
		}
	}
	if _, err := ParseFeedback("[*, *, *]", fbSchema); err == nil {
		t.Error("missing sigil must fail")
	}
	if _, err := ParseFeedback("", fbSchema); err == nil {
		t.Error("empty feedback must fail")
	}
}

func TestFeedbackRelayedPreservesIdentity(t *testing.T) {
	f := NewAssumed(punct.OnAttr(3, 0, punct.Eq(stream.Int(3))))
	f.Origin, f.Seq = "pace", 7
	g := f.Relayed(punct.OnAttr(2, 0, punct.Eq(stream.Int(3))))
	if g.Origin != "pace" || g.Seq != 7 || g.Hops != 1 {
		t.Errorf("relay metadata: %+v", g)
	}
	if f.Hops != 0 {
		t.Error("Relayed must not mutate the original")
	}
}

func TestFeedbackMatches(t *testing.T) {
	f := NewAssumed(punct.OnAttr(3, 2, punct.Ge(stream.Float(50))))
	fast := stream.NewTuple(stream.Int(1), stream.TimeMicros(0), stream.Float(60))
	slow := stream.NewTuple(stream.Int(1), stream.TimeMicros(0), stream.Float(40))
	if !f.Matches(fast) || f.Matches(slow) {
		t.Error("Matches")
	}
}
