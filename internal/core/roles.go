package core

// The paper assigns operators three (non-exclusive) roles with respect to
// feedback (§1): producers discover processing opportunities and issue
// feedback; exploiters act on received feedback within their own logic;
// relayers map feedback through their schema transformation and pass it
// upstream. An operator may play all three. The interfaces below are
// implemented by operators in package op; the exec runtime uses them to
// decide how to route control messages.

// FeedbackSink receives feedback arriving from downstream. The emit
// callback lets the implementation relay (possibly transformed) feedback to
// a specific input port; implementations that only exploit never call it.
type FeedbackSink interface {
	// AcceptFeedback processes one feedback punctuation from downstream.
	// emit(input, f) forwards feedback to the operator's input number
	// `input`.
	AcceptFeedback(f Feedback, emit func(input int, f Feedback))
}

// Action enumerates the response vocabulary of §4.3, used by operator
// characterizations (Tables 1 and 2) and by response logs in tests.
type Action uint8

const (
	// ActNone is the null response (always correct for assumed feedback).
	ActNone Action = iota
	// ActGuardOutput installs an output guard: matching result tuples are
	// not emitted.
	ActGuardOutput
	// ActGuardInput installs an input guard: matching input tuples are
	// not processed.
	ActGuardInput
	// ActPurgeState removes matching entries from operator state
	// (hash-table groups, join state, pending queues).
	ActPurgeState
	// ActPropagate relays (a projection of) the feedback upstream.
	ActPropagate
	// ActPrioritize reorders processing in favour of the subset
	// (desired feedback).
	ActPrioritize
	// ActUnblock emits partial results for the subset immediately
	// (demanded feedback).
	ActUnblock
	// ActCloseWindows finalizes open windows whose partial aggregate
	// already satisfies the feedback predicate (MAX example in §3.5).
	ActCloseWindows
)

var actionNames = [...]string{
	ActNone:         "none",
	ActGuardOutput:  "guard-output",
	ActGuardInput:   "guard-input",
	ActPurgeState:   "purge-state",
	ActPropagate:    "propagate",
	ActPrioritize:   "prioritize",
	ActUnblock:      "unblock",
	ActCloseWindows: "close-windows",
}

// String names the action.
func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "action(?)"
}

// Response records what an operator did with one feedback punctuation.
// Operators append responses to a log that tests and the Tables 1/2
// demonstrator inspect.
type Response struct {
	Feedback Feedback
	Actions  []Action
	// Propagated holds the feedback actually relayed per input port
	// (empty slot = not propagated to that input).
	Propagated []*Feedback
	// Note carries a human-readable explanation (e.g. refusal reasons).
	Note string
}

// Did reports whether the response includes the given action.
func (r Response) Did(a Action) bool {
	for _, x := range r.Actions {
		if x == a {
			return true
		}
	}
	return false
}
