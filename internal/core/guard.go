package core

import (
	"repro/internal/punct"
	"repro/internal/stream"
)

// Guard is one active suppression predicate installed in response to
// assumed feedback. Guards are the paper's strategies (1) and (2) in §4.3:
// an output guard avoids emitting matching tuples; an input guard avoids
// computing on matching tuples.
type Guard struct {
	Pattern punct.Pattern
	// Source identifies the feedback that installed the guard.
	Source Feedback

	// compiled is the evaluation form used on the probe path; it is built
	// once at Install so Suppress runs allocation-free.
	compiled *punct.Compiled
}

// GuardTable holds the active guards of one operator port and implements
// the expiration policy of §4.4: feedback state must not accumulate, so a
// guard is released as soon as embedded punctuation covers its pattern
// (the stream has promised the subset will never appear again, making the
// guard moot).
//
// GuardTable is not safe for concurrent use; each operator owns its tables
// and is single-goroutine by construction.
type GuardTable struct {
	guards []Guard
	scheme *punct.Scheme
	// merged counts guards dropped because a newer guard subsumed them.
	merged int
	// expired counts guards released by embedded punctuation.
	expired int
	// hits counts tuples suppressed by this table.
	hits int64
}

// NewGuardTable creates an empty table for streams of the given arity.
func NewGuardTable(arity int) *GuardTable {
	return &GuardTable{scheme: punct.NewScheme(arity)}
}

// Install adds a guard for the feedback's pattern. Guards subsumed by the
// new pattern are dropped; if an existing guard already subsumes the new
// one, the table is unchanged. Returns whether the table changed.
func (g *GuardTable) Install(f Feedback) bool {
	p := f.Pattern
	kept := g.guards[:0]
	for _, old := range g.guards {
		if old.Pattern.Implies(p) {
			g.merged++
			continue // old guard is redundant under the new one
		}
		if p.Implies(old.Pattern) {
			// New guard is redundant; keep table as-is.
			g.guards = append(kept, g.guards[len(kept):]...)
			return false
		}
		kept = append(kept, old)
	}
	g.guards = append(kept, Guard{Pattern: p, Source: f, compiled: p.Compile(stream.Schema{})})
	return true
}

// Suppress reports whether the tuple matches any active guard (and should
// be dropped by the caller). The probe runs against the guards' compiled
// patterns without copying or allocating.
//
//pace:hotpath
func (g *GuardTable) Suppress(t stream.Tuple) bool {
	// Empty-table fast path, kept trivial so the call inlines: with no
	// feedback installed the hot path pays one length check, no call.
	if len(g.guards) == 0 {
		return false
	}
	return g.suppressScan(t)
}

//pace:hotpath
func (g *GuardTable) suppressScan(t stream.Tuple) bool {
	for i := range g.guards {
		if g.guards[i].compiled.Matches(t) {
			g.hits++
			return true
		}
	}
	return false
}

// ObservePunct folds embedded punctuation into the expiration tracker and
// releases any guard whose pattern is now covered: the stream itself
// guarantees those tuples are gone, so the guard holds no information.
// Returns the number of guards released.
func (g *GuardTable) ObservePunct(e punct.Embedded) int {
	g.scheme.Observe(e)
	kept := g.guards[:0]
	released := 0
	for _, gd := range g.guards {
		if g.scheme.CoversPattern(gd.Pattern) {
			released++
			continue
		}
		kept = append(kept, gd)
	}
	g.guards = kept
	g.expired += released
	return released
}

// Supportable applies the §4.4 admissibility test to a candidate feedback
// pattern using the punctuation observed so far on this port: every bound
// attribute must be delimited. Operators may consult this before
// installing state-bearing responses; installing a guard for
// unsupportable feedback is still *correct*, but risks unbounded predicate
// accumulation, so callers typically fall back to the null response.
func (g *GuardTable) Supportable(p punct.Pattern) bool { return g.scheme.Supportable(p) }

// Active returns the number of live guards.
func (g *GuardTable) Active() int { return len(g.guards) }

// Guards returns a copy of the live guards (diagnostics).
func (g *GuardTable) Guards() []Guard { return append([]Guard(nil), g.guards...) }

// Stats reports suppression hits, merges, and expirations.
func (g *GuardTable) Stats() (hits int64, merged, expired int) {
	return g.hits, g.merged, g.expired
}
