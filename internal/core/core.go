// Package core implements the paper's primary contribution: feedback
// punctuation — punctuation that flows against the stream direction on an
// out-of-band control channel, carrying a predicate (the subset of interest)
// and an intent (what the receiver should do about it).
//
// The package provides:
//
//   - Feedback values with the three intents of §3.4 (assumed ¬, desired ?,
//     demanded !) and the paper's textual notation;
//   - the correctness notions of §4 — Definition 1 (correct exploitation)
//     as a checkable property over recorded runs, and Definition 2 (safe
//     propagation) as a decision procedure over schema mappings;
//   - the operator characterizations of Tables 1 and 2 as data, consumed by
//     the operators in package op and verified by tests;
//   - guard tables with expiration driven by embedded punctuation (§4.4);
//   - the producer/exploiter/relayer roles (§1, §3.5).
package core
