package core

import (
	"testing"

	"repro/internal/punct"
	"repro/internal/stream"
)

// COUNT output schema (g, a): group at 0, count at 1.
func countMap() AttrMap {
	// Input schema (g, x): group carried from input 0, count computed.
	return AttrMap{InputArity: 2, ToInput: []int{0, -1}}
}

func TestClassifyAggPattern(t *testing.T) {
	group := []int{0}
	cases := []struct {
		p    punct.Pattern
		want AggShape
	}{
		{punct.OnAttr(2, 0, punct.Eq(stream.Int(3))), AggShapeGroup},
		{punct.OnAttr(2, 1, punct.Eq(stream.Float(5))), AggShapeValueEQ},
		{punct.OnAttr(2, 1, punct.Ge(stream.Float(5))), AggShapeValueUp},
		{punct.OnAttr(2, 1, punct.Gt(stream.Float(5))), AggShapeValueUp},
		{punct.OnAttr(2, 1, punct.Le(stream.Float(5))), AggShapeValueDown},
		{punct.OnAttr(2, 1, punct.Lt(stream.Float(5))), AggShapeValueDown},
		{punct.NewPattern(punct.Eq(stream.Int(3)), punct.Ge(stream.Float(5))), AggShapeMixed},
		{punct.AllWild(2), AggShapeNone},
	}
	for i, tc := range cases {
		if got := ClassifyAggPattern(tc.p, group, 1); got != tc.want {
			t.Errorf("case %d: shape = %v, want %v", i, got, tc.want)
		}
	}
}

// TestTable1Count verifies every row of the paper's Table 1.
func TestTable1Count(t *testing.T) {
	group := []int{0}
	m := countMap()

	// Row 1: ¬[g,*] → purge group, guard input, propagate g.
	p := punct.OnAttr(2, 0, punct.Eq(stream.Int(7)))
	plan := AggCharacterization(AggCount, ClassifyAggPattern(p, group, 1), p, m)
	wantActions(t, "¬[g,*]", plan, ActPurgeState, ActGuardInput, ActPropagate)
	if plan.Propagate[0] == nil {
		t.Fatal("¬[g,*] must propagate")
	}
	wantProp := punct.OnAttr(2, 0, punct.Eq(stream.Int(7)))
	if !plan.Propagate[0].Equal(wantProp) {
		t.Errorf("propagated %v, want %v", plan.Propagate[0], wantProp)
	}

	// Row 2: ¬[*,a] → guard output only.
	p = punct.OnAttr(2, 1, punct.Eq(stream.Float(5)))
	plan = AggCharacterization(AggCount, ClassifyAggPattern(p, group, 1), p, m)
	wantActions(t, "¬[*,a]", plan, ActGuardOutput)

	// Row 3: ¬[*,≥a] → purge matching, guard input, close windows
	// (COUNT is monotone-up). No propagation: future groups may be small.
	p = punct.OnAttr(2, 1, punct.Ge(stream.Float(5)))
	plan = AggCharacterization(AggCount, ClassifyAggPattern(p, group, 1), p, m)
	wantActions(t, "¬[*,≥a]", plan, ActPurgeState, ActGuardInput, ActCloseWindows)

	// Row 4: ¬[*,≤a] → guard output only for COUNT.
	p = punct.OnAttr(2, 1, punct.Le(stream.Float(5)))
	plan = AggCharacterization(AggCount, ClassifyAggPattern(p, group, 1), p, m)
	wantActions(t, "¬[*,≤a]", plan, ActGuardOutput)
}

// TestAggMonotonicityVariants covers §3.5's observation that COUNT and SUM
// differ ("COUNT's produced result increases monotonically, SUM's doesn't")
// plus MIN's downward symmetry.
func TestAggMonotonicityVariants(t *testing.T) {
	group := []int{0}
	m := countMap()
	up := punct.OnAttr(2, 1, punct.Ge(stream.Float(5)))
	down := punct.OnAttr(2, 1, punct.Le(stream.Float(5)))

	// SUM with ≥: not monotone → guard output only.
	plan := AggCharacterization(AggSum, ClassifyAggPattern(up, group, 1), up, m)
	wantActions(t, "SUM ¬[*,≥a]", plan, ActGuardOutput)

	// AVG with ≥: not monotone → guard output only.
	plan = AggCharacterization(AggAvg, ClassifyAggPattern(up, group, 1), up, m)
	wantActions(t, "AVG ¬[*,≥a]", plan, ActGuardOutput)

	// MAX with ≥: monotone-up → purge/guard/close (the §3.5 MAX example).
	plan = AggCharacterization(AggMax, ClassifyAggPattern(up, group, 1), up, m)
	wantActions(t, "MAX ¬[*,≥a]", plan, ActPurgeState, ActGuardInput, ActCloseWindows)

	// MAX with ≤: can still drop below? No — MAX only grows; a window
	// currently above the bound may not fall back, but one below may rise
	// out. Purging ≤-matching windows is incorrect → guard output.
	plan = AggCharacterization(AggMax, ClassifyAggPattern(down, group, 1), down, m)
	wantActions(t, "MAX ¬[*,≤a]", plan, ActGuardOutput)

	// MIN with ≤: monotone-down → symmetric purge.
	plan = AggCharacterization(AggMin, ClassifyAggPattern(down, group, 1), down, m)
	wantActions(t, "MIN ¬[*,≤a]", plan, ActPurgeState, ActGuardInput, ActCloseWindows)

	// MIN with ≥: guard output only.
	plan = AggCharacterization(AggMin, ClassifyAggPattern(up, group, 1), up, m)
	wantActions(t, "MIN ¬[*,≥a]", plan, ActGuardOutput)

	// SUM with ≥ under a non-negativity guarantee: monotone-up after all.
	plan = AggCharacterizationGiven(AggSum, ClassifyAggPattern(up, group, 1), up, m, true)
	wantActions(t, "SUM(≥0) ¬[*,≥a]", plan, ActPurgeState, ActGuardInput, ActCloseWindows)
	// The guarantee never helps the downward bound.
	plan = AggCharacterizationGiven(AggSum, ClassifyAggPattern(down, group, 1), down, m, true)
	wantActions(t, "SUM(≥0) ¬[*,≤a]", plan, ActGuardOutput)
}

// Join output (L, J, R) with Left=(l0), Join=(j1), Right=(r2); left input
// (l0, j1), right input (j1, r2).
func joinMaps() (part JoinPartition, left, right AttrMap) {
	part = JoinPartition{Left: []int{0}, Join: []int{1}, Right: []int{2}}
	left = AttrMap{InputArity: 2, ToInput: []int{0, 1, -1}}
	right = AttrMap{InputArity: 2, ToInput: []int{-1, 0, 1}}
	return part, left, right
}

func TestClassifyJoinPattern(t *testing.T) {
	part, _, _ := joinMaps()
	eq := func(i int) punct.Pattern { return punct.OnAttr(3, i, punct.Eq(stream.Int(1))) }
	cases := []struct {
		p    punct.Pattern
		want JoinShape
	}{
		{eq(1), JoinShapeJ},
		{eq(0), JoinShapeL},
		{eq(2), JoinShapeR},
		{punct.NewPattern(punct.Eq(stream.Int(1)), punct.Eq(stream.Int(2)), punct.Wild), JoinShapeLJ},
		{punct.NewPattern(punct.Wild, punct.Eq(stream.Int(2)), punct.Eq(stream.Int(3))), JoinShapeJR},
		{punct.NewPattern(punct.Eq(stream.Int(1)), punct.Wild, punct.Eq(stream.Int(3))), JoinShapeLR},
		{punct.AllWild(3), JoinShapeNone},
	}
	for i, tc := range cases {
		if got := ClassifyJoinPattern(tc.p, part); got != tc.want {
			t.Errorf("case %d: %v, want %v", i, got, tc.want)
		}
	}
}

// TestTable2Join verifies every row of the paper's Table 2.
func TestTable2Join(t *testing.T) {
	part, left, right := joinMaps()

	// Row 1: ¬[*,j,*] → purge both, guard input, propagate both sides.
	p := punct.OnAttr(3, 1, punct.Eq(stream.Int(4)))
	plan := JoinCharacterization(ClassifyJoinPattern(p, part), p, left, right)
	wantActions(t, "¬[*,j,*]", plan, ActPurgeState, ActGuardInput, ActPropagate)
	if plan.Propagate[0] == nil || plan.Propagate[1] == nil {
		t.Fatal("join-bound feedback must propagate to both inputs")
	}
	if !plan.Propagate[0].Equal(punct.OnAttr(2, 1, punct.Eq(stream.Int(4)))) {
		t.Errorf("left propagation: %v", plan.Propagate[0])
	}
	if !plan.Propagate[1].Equal(punct.OnAttr(2, 0, punct.Eq(stream.Int(4)))) {
		t.Errorf("right propagation: %v", plan.Propagate[1])
	}

	// Row 2: ¬[l,*,*] → purge left, guard input, propagate left only.
	p = punct.OnAttr(3, 0, punct.Eq(stream.Int(9)))
	plan = JoinCharacterization(ClassifyJoinPattern(p, part), p, left, right)
	wantActions(t, "¬[l,*,*]", plan, ActPurgeState, ActGuardInput, ActPropagate)
	if plan.Propagate[0] == nil || plan.Propagate[1] != nil {
		t.Error("left-bound feedback must propagate left only")
	}

	// Row 3: ¬[*,*,r] → purge right, guard input, propagate right only.
	p = punct.OnAttr(3, 2, punct.Eq(stream.Int(9)))
	plan = JoinCharacterization(ClassifyJoinPattern(p, part), p, left, right)
	wantActions(t, "¬[*,*,r]", plan, ActPurgeState, ActGuardInput, ActPropagate)
	if plan.Propagate[0] != nil || plan.Propagate[1] == nil {
		t.Error("right-bound feedback must propagate right only")
	}

	// Row 4: ¬[l,*,r] → guard output only.
	p = punct.NewPattern(punct.Eq(stream.Int(50)), punct.Wild, punct.Eq(stream.Int(50)))
	plan = JoinCharacterization(ClassifyJoinPattern(p, part), p, left, right)
	wantActions(t, "¬[l,*,r]", plan, ActGuardOutput)
	if plan.Propagate[0] != nil || plan.Propagate[1] != nil {
		t.Error("cross-side feedback must not propagate")
	}
}

func TestPlanString(t *testing.T) {
	part, left, right := joinMaps()
	p := punct.OnAttr(3, 1, punct.Eq(stream.Int(4)))
	plan := JoinCharacterization(ClassifyJoinPattern(p, part), p, left, right)
	s := plan.PlanString()
	if s == "" {
		t.Error("PlanString must render")
	}
}

func wantActions(t *testing.T, label string, plan ResponsePlan, want ...Action) {
	t.Helper()
	if len(plan.Actions) != len(want) {
		t.Fatalf("%s: actions %v, want %v", label, plan.Actions, want)
	}
	for i, a := range want {
		if plan.Actions[i] != a {
			t.Fatalf("%s: actions %v, want %v", label, plan.Actions, want)
		}
	}
}
