package core

import (
	"fmt"

	"repro/internal/punct"
)

// This file encodes the operator characterizations of §4.3 (Tables 1 and 2)
// as data. A characterization classifies an incoming assumed-feedback
// pattern by which parts of the operator's (partitioned) output schema it
// binds, and yields a ResponsePlan: the local exploit actions that are
// correct for that shape, plus the safe propagations.
//
// The operators in package op consult these plans; the tests and
// cmd/tables verify that enacting them satisfies Definition 1.

// ResponsePlan is the prescribed reaction to one feedback shape.
type ResponsePlan struct {
	// Actions lists the correct local exploit actions, in the order the
	// paper gives them.
	Actions []Action
	// Propagate holds, per input port, the pattern to relay upstream
	// (nil = no safe propagation to that input).
	Propagate []*punct.Pattern
	// Explanation mirrors the table row's prose, for the demonstrator.
	Explanation string
}

// ---------------------------------------------------------------------------
// Table 1: COUNT (window aggregate with output schema (g, a)).
// ---------------------------------------------------------------------------

// AggKind distinguishes aggregates whose feedback characterizations differ
// because of their monotonicity (§3.5: "COUNT's produced result increases
// monotonically, SUM's doesn't").
type AggKind uint8

const (
	// AggCount counts tuples per group. Monotonically non-decreasing.
	AggCount AggKind = iota
	// AggSum sums a numeric attribute. Not monotone in general (negative
	// inputs); monotone if the operator knows inputs are non-negative.
	AggSum
	// AggAvg averages a numeric attribute. Not monotone.
	AggAvg
	// AggMax keeps the maximum. Monotonically non-decreasing.
	AggMax
	// AggMin keeps the minimum. Monotonically non-increasing.
	AggMin
)

var aggNames = [...]string{AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMax: "MAX", AggMin: "MIN"}

// String names the aggregate.
func (k AggKind) String() string {
	if int(k) < len(aggNames) {
		return aggNames[k]
	}
	return "AGG(?)"
}

// MonotoneUp reports whether the running aggregate can only grow as more
// tuples arrive.
func (k AggKind) MonotoneUp() bool { return k == AggCount || k == AggMax }

// MonotoneUpGiven reports MonotoneUp under an extra domain guarantee: a
// SUM over inputs known to be non-negative also only grows (§3.5's
// "COUNT's produced result increases monotonically, SUM's doesn't" —
// unless the operator knows better).
func (k AggKind) MonotoneUpGiven(nonNegativeInputs bool) bool {
	return k.MonotoneUp() || (k == AggSum && nonNegativeInputs)
}

// MonotoneDown reports whether the running aggregate can only shrink.
func (k AggKind) MonotoneDown() bool { return k == AggMin }

// AggShape classifies an assumed pattern against an aggregate's output
// schema partition (g..., a): which side the pattern binds.
type AggShape uint8

const (
	// AggShapeGroup binds only grouping attributes: ¬[g,*].
	AggShapeGroup AggShape = iota
	// AggShapeValueEQ binds only the aggregate value with = or a
	// non-monotone-compatible predicate: ¬[*,a].
	AggShapeValueEQ
	// AggShapeValueUp binds only the aggregate value with ≥/> (an
	// upward-closed set): ¬[*,≥a].
	AggShapeValueUp
	// AggShapeValueDown binds only the aggregate value with ≤/< (a
	// downward-closed set): ¬[*,≤a].
	AggShapeValueDown
	// AggShapeMixed binds both group and value attributes.
	AggShapeMixed
	// AggShapeNone binds nothing (all wildcard) — rejected upstream.
	AggShapeNone
)

// ClassifyAggPattern classifies pattern p for an aggregate whose output
// schema has the grouping attributes at indices groupIdx and the aggregate
// value at index valueIdx.
func ClassifyAggPattern(p punct.Pattern, groupIdx []int, valueIdx int) AggShape {
	bindsGroup, bindsValue := false, false
	inGroup := map[int]bool{}
	for _, g := range groupIdx {
		inGroup[g] = true
	}
	for _, b := range p.Bound() {
		switch {
		case b == valueIdx:
			bindsValue = true
		case inGroup[b]:
			bindsGroup = true
		default:
			// Attribute outside the partition (e.g. a carried window id)
			// is treated as a grouping attribute for classification.
			bindsGroup = true
		}
	}
	switch {
	case bindsGroup && bindsValue:
		return AggShapeMixed
	case bindsGroup:
		return AggShapeGroup
	case !bindsValue:
		return AggShapeNone
	}
	switch p.Pred(valueIdx).Op {
	case punct.GE, punct.GT:
		return AggShapeValueUp
	case punct.LE, punct.LT:
		return AggShapeValueDown
	default:
		return AggShapeValueEQ
	}
}

// AggCharacterization produces the Table 1 response plan for an aggregate
// of the given kind receiving assumed pattern p. groupIdx/valueIdx locate
// the partition in the OUTPUT schema; inputMap maps output attributes to
// the aggregate's input schema (computed attributes map to -1).
//
// Table 1 rows (COUNT), generalized by monotonicity:
//
//	¬[g,*]   → purge group g, guard input on g, propagate g upstream
//	¬[*,a]   → guard output only
//	¬[*,≥a]  → (monotone-up aggregates) purge groups already matching,
//	           guard input for those groups, propagate the group set;
//	           (others) guard output only
//	¬[*,≤a]  → guard output only for monotone-up; symmetric purge for
//	           monotone-down aggregates (MIN)
//	mixed    → guard output only
func AggCharacterization(kind AggKind, shape AggShape, p punct.Pattern, inputMap AttrMap) ResponsePlan {
	return AggCharacterizationGiven(kind, shape, p, inputMap, false)
}

// AggCharacterizationGiven is AggCharacterization with an extra domain
// guarantee: nonNegativeInputs upgrades SUM to monotone-up, enabling the
// purge/guard-input response on upward-closed value bounds (speeds,
// counts, volumes and most physical measurements qualify).
func AggCharacterizationGiven(kind AggKind, shape AggShape, p punct.Pattern, inputMap AttrMap, nonNegativeInputs bool) ResponsePlan {
	switch shape {
	case AggShapeGroup:
		plan := ResponsePlan{
			Actions:     []Action{ActPurgeState, ActGuardInput},
			Explanation: "group-bound: remove group from local state, guard input on the group, propagate in input-schema terms",
		}
		if prop := SafePropagation(p, inputMap); prop.OK {
			plan.Actions = append(plan.Actions, ActPropagate)
			pat := prop.Pattern
			plan.Propagate = []*punct.Pattern{&pat}
		} else {
			plan.Propagate = []*punct.Pattern{nil}
			plan.Explanation += " (propagation refused: " + prop.Reason + ")"
		}
		return plan
	case AggShapeValueUp:
		if kind.MonotoneUpGiven(nonNegativeInputs) {
			return ResponsePlan{
				Actions:     []Action{ActPurgeState, ActGuardInput, ActCloseWindows},
				Propagate:   []*punct.Pattern{nil},
				Explanation: "upward-closed value bound on a monotone-up aggregate: groups already matching can never unmatch — purge them, guard their input; no propagation (future inputs could still create small groups)",
			}
		}
		return ResponsePlan{
			Actions:     []Action{ActGuardOutput},
			Propagate:   []*punct.Pattern{nil},
			Explanation: "value bound on a non-monotone aggregate: only the output may be guarded (state may drop back out of the subset)",
		}
	case AggShapeValueDown:
		if kind.MonotoneDown() {
			return ResponsePlan{
				Actions:     []Action{ActPurgeState, ActGuardInput, ActCloseWindows},
				Propagate:   []*punct.Pattern{nil},
				Explanation: "downward-closed value bound on a monotone-down aggregate: symmetric to COUNT/≥",
			}
		}
		return ResponsePlan{
			Actions:     []Action{ActGuardOutput},
			Propagate:   []*punct.Pattern{nil},
			Explanation: "downward-closed value bound: guard output only (a purge would be incorrect — the aggregate can still move)",
		}
	case AggShapeValueEQ, AggShapeMixed:
		return ResponsePlan{
			Actions:     []Action{ActGuardOutput},
			Propagate:   []*punct.Pattern{nil},
			Explanation: "exact/mixed bound: guard output only",
		}
	default:
		return ResponsePlan{
			Actions:     []Action{ActNone},
			Propagate:   []*punct.Pattern{nil},
			Explanation: "no bound attributes: null response",
		}
	}
}

// ---------------------------------------------------------------------------
// Table 2: JOIN (output schema partitioned (L, J, R)).
// ---------------------------------------------------------------------------

// JoinShape classifies an assumed pattern against a join's output partition.
type JoinShape uint8

const (
	// JoinShapeJ binds only join attributes: ¬[*, j, *].
	JoinShapeJ JoinShape = iota
	// JoinShapeL binds only left-unique attributes: ¬[l, *, *].
	JoinShapeL
	// JoinShapeR binds only right-unique attributes: ¬[*, *, r].
	JoinShapeR
	// JoinShapeLJ binds left and join attributes (propagable left only).
	JoinShapeLJ
	// JoinShapeJR binds join and right attributes (propagable right only).
	JoinShapeJR
	// JoinShapeLR binds attributes from both sides with no common carrier:
	// ¬[l, *, r] — guard output only (the paper's unsafe case).
	JoinShapeLR
	// JoinShapeNone binds nothing.
	JoinShapeNone
)

// JoinPartition locates the output-schema partition of a join.
type JoinPartition struct {
	Left  []int // output indices unique to the left input
	Join  []int // output indices of join attributes (carried by both)
	Right []int // output indices unique to the right input
}

// ClassifyJoinPattern classifies pattern p against the partition.
func ClassifyJoinPattern(p punct.Pattern, part JoinPartition) JoinShape {
	in := func(set []int, x int) bool {
		for _, s := range set {
			if s == x {
				return true
			}
		}
		return false
	}
	var l, j, r bool
	for _, b := range p.Bound() {
		switch {
		case in(part.Join, b):
			j = true
		case in(part.Left, b):
			l = true
		case in(part.Right, b):
			r = true
		}
	}
	switch {
	case l && r:
		return JoinShapeLR
	case l && j:
		return JoinShapeLJ
	case j && r:
		return JoinShapeJR
	case j:
		return JoinShapeJ
	case l:
		return JoinShapeL
	case r:
		return JoinShapeR
	}
	return JoinShapeNone
}

// JoinCharacterization produces the Table 2 response plan for a join
// receiving assumed pattern p. leftMap/rightMap map output attributes to
// the left/right input schemas.
//
// Table 2 rows:
//
//	¬[*,j,*] → purge matching tuples from both hash tables, guard input,
//	           propagate ¬[*,j] left and ¬[j,*] right
//	¬[l,*,*] → purge matching from left table, guard input,
//	           propagate ¬[l,*] to left
//	¬[*,*,r] → purge matching from right table, guard input,
//	           propagate ¬[*,r] to right
//	¬[l,*,r] → guard output only (no safe propagation exists)
func JoinCharacterization(shape JoinShape, p punct.Pattern, leftMap, rightMap AttrMap) ResponsePlan {
	props := SafePropagationMulti(p, []AttrMap{leftMap, rightMap})
	toPtr := func(pr Propagation) *punct.Pattern {
		if !pr.OK {
			return nil
		}
		pat := pr.Pattern
		return &pat
	}
	switch shape {
	case JoinShapeJ:
		return ResponsePlan{
			Actions:     []Action{ActPurgeState, ActGuardInput, ActPropagate},
			Propagate:   []*punct.Pattern{toPtr(props[0]), toPtr(props[1])},
			Explanation: "join-attribute bound: purge both hash tables, guard both inputs, propagate to both inputs",
		}
	case JoinShapeL, JoinShapeLJ:
		return ResponsePlan{
			Actions:     []Action{ActPurgeState, ActGuardInput, ActPropagate},
			Propagate:   []*punct.Pattern{toPtr(props[0]), nil},
			Explanation: "left-side bound: purge left hash table, guard left input, propagate to left input",
		}
	case JoinShapeR, JoinShapeJR:
		return ResponsePlan{
			Actions:     []Action{ActPurgeState, ActGuardInput, ActPropagate},
			Propagate:   []*punct.Pattern{nil, toPtr(props[1])},
			Explanation: "right-side bound: purge right hash table, guard right input, propagate to right input",
		}
	case JoinShapeLR:
		return ResponsePlan{
			Actions:     []Action{ActGuardOutput},
			Propagate:   []*punct.Pattern{nil, nil},
			Explanation: "bound on both sides with no single carrier: guard output only — propagating either projection could suppress tuples outside the subset (¬[50,*,*,50] example)",
		}
	default:
		return ResponsePlan{
			Actions:     []Action{ActNone},
			Propagate:   []*punct.Pattern{nil, nil},
			Explanation: "no bound attributes: null response",
		}
	}
}

// PlanString renders a response plan as a table row for cmd/tables.
func (p ResponsePlan) PlanString() string {
	acts := ""
	for i, a := range p.Actions {
		if i > 0 {
			acts += ", "
		}
		acts += a.String()
	}
	prop := ""
	for i, pp := range p.Propagate {
		if i > 0 {
			prop += "; "
		}
		if pp == nil {
			prop += fmt.Sprintf("input %d: —", i)
		} else {
			prop += fmt.Sprintf("input %d: ¬%s", i, pp.String())
		}
	}
	if prop == "" {
		prop = "—"
	}
	return fmt.Sprintf("exploit: %-45s propagate: %s", acts, prop)
}
