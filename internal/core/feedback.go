package core

import (
	"fmt"
	"strings"

	"repro/internal/punct"
	"repro/internal/stream"
)

// Intent is the purpose a feedback punctuation carries (§3.2, §3.4). Unlike
// embedded punctuation, which only reports stream progress, feedback
// punctuation tells the receiver what the issuer wants done about the
// described subset.
type Intent uint8

const (
	// Assumed (¬) communicates a set of tuples to be avoided: the issuer
	// will proceed as if the subset will never be seen. A hint, not a
	// command; the null response is correct (Def. 1).
	Assumed Intent = iota
	// Desired (?) asks that production of the subset be prioritized. It
	// never changes the result set, only production time and order.
	Desired
	// Demanded (!) is the intersection of assumed and desired: "I need
	// this subset now", accepting partial/approximate results (e.g.
	// unblocking an aggregate early).
	Demanded
)

var intentSigils = [...]string{Assumed: "¬", Desired: "?", Demanded: "!"}
var intentNames = [...]string{Assumed: "assumed", Desired: "desired", Demanded: "demanded"}

// Sigil returns the paper's prefix notation for the intent.
func (i Intent) Sigil() string {
	if int(i) < len(intentSigils) {
		return intentSigils[i]
	}
	return "¿"
}

// String returns the intent name used in prose ("assumed", ...).
func (i Intent) String() string {
	if int(i) < len(intentNames) {
		return intentNames[i]
	}
	return fmt.Sprintf("intent(%d)", uint8(i))
}

// ParseIntent accepts either the sigil or the name.
func ParseIntent(s string) (Intent, error) {
	switch strings.TrimSpace(s) {
	case "¬", "not", "assumed":
		return Assumed, nil
	case "?", "desired":
		return Desired, nil
	case "!", "demanded":
		return Demanded, nil
	}
	return Assumed, fmt.Errorf("core: unknown intent %q", s)
}

// Feedback is one feedback punctuation. It is not part of the stream: it
// travels on the control channel, against the data direction, with priority
// over pending tuples (§5, "Inter-Operator Communication").
type Feedback struct {
	Intent  Intent
	Pattern punct.Pattern
	// Origin names the operator that first issued the feedback; hops
	// counts relays. Both are diagnostics — semantics never depend on
	// them.
	Origin string
	Hops   int
	// Seq is assigned by the issuing operator, increasing per origin.
	// Receivers may use it to discard stale feedback from the same origin.
	Seq int64
}

// NewAssumed builds assumed feedback over the pattern.
func NewAssumed(p punct.Pattern) Feedback { return Feedback{Intent: Assumed, Pattern: p} }

// NewDesired builds desired feedback over the pattern.
func NewDesired(p punct.Pattern) Feedback { return Feedback{Intent: Desired, Pattern: p} }

// NewDemanded builds demanded feedback over the pattern.
func NewDemanded(p punct.Pattern) Feedback { return Feedback{Intent: Demanded, Pattern: p} }

// Relayed returns a copy of f carrying a projected pattern, with the hop
// count advanced. Origin and Seq are preserved so duplicate suppression
// keyed on (Origin, Seq) still works across relays.
func (f Feedback) Relayed(p punct.Pattern) Feedback {
	f.Pattern = p
	f.Hops++
	return f
}

// Matches reports whether the tuple is in the feedback's subset of interest.
func (f Feedback) Matches(t stream.Tuple) bool { return f.Pattern.Matches(t) }

// String renders the feedback in the paper's notation, e.g. ¬[*, >=50].
func (f Feedback) String() string { return f.Intent.Sigil() + f.Pattern.String() }

// ParseFeedback parses the notation produced by String against a schema.
func ParseFeedback(s string, schema stream.Schema) (Feedback, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Feedback{}, fmt.Errorf("core: empty feedback")
	}
	var intent Intent
	switch {
	case strings.HasPrefix(s, "¬"):
		intent, s = Assumed, strings.TrimPrefix(s, "¬")
	case strings.HasPrefix(s, "?"):
		intent, s = Desired, s[1:]
	case strings.HasPrefix(s, "!"):
		intent, s = Demanded, s[1:]
	default:
		return Feedback{}, fmt.Errorf("core: feedback %q lacks intent sigil (¬ ? !)", s)
	}
	p, err := punct.ParsePattern(s, schema)
	if err != nil {
		return Feedback{}, err
	}
	return Feedback{Intent: intent, Pattern: p}, nil
}
