package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/snapshot"
	"repro/internal/stream"
)

// TestCheckpointAtIntoSemantics pins the forced-epoch branch logic that
// cross-process barriers rely on. The graph's only source is marked
// wire-barrier-driven, so a forced epoch stays active (pending that
// source's cut) for as long as the test needs.
func TestCheckpointAtIntoSemantics(t *testing.T) {
	tuples := make([]stream.Tuple, 50)
	for i := range tuples {
		tuples[i] = intTuple(int64(i))
	}
	src := &gatedSource{name: "src", schema: oneInt, tuples: tuples, gateAt: 10}
	g := NewGraph()
	sid := g.AddSource(src)
	col := NewCollector("col", oneInt)
	g.Add(col, From(sid))
	g.markWireBarrier(sid)

	runErr := make(chan error, 1)
	go func() { runErr <- g.Run() }()
	deadline := time.Now().Add(10 * time.Second)
	for src.emitted.Load() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("source never reached its gate")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := g.CheckpointAtInto(0, snapshot.CaptureFull, nil); err == nil {
		t.Error("non-positive epoch accepted")
	}
	done5, err := g.CheckpointAtInto(5, snapshot.CaptureFull, nil)
	if err != nil || done5 == nil {
		t.Fatalf("forced epoch 5: done=%v err=%v", done5, err)
	}
	// Same epoch from a second remote edge: joins the active checkpoint.
	dup, err := g.CheckpointAtInto(5, snapshot.CaptureDelta, nil)
	if err != nil || dup != done5 {
		t.Fatalf("duplicate epoch 5 did not join the active checkpoint (done=%v err=%v)", dup, err)
	}
	// A stale barrier draining behind the active epoch: dropped, not an
	// error — erroring would kill the subplan on an abandoned epoch's
	// leftover frame.
	stale, err := g.CheckpointAtInto(3, snapshot.CaptureFull, nil)
	if err != nil || stale != nil {
		t.Fatalf("stale epoch 3 behind active 5: done=%v err=%v, want nil/nil", stale, err)
	}
	// A newer epoch supersedes the still-aligning one: epoch 5 resolves as
	// abandoned and epoch 7 becomes the active checkpoint.
	done7, err := g.CheckpointAtInto(7, snapshot.CaptureDelta, nil)
	if err != nil || done7 == nil {
		t.Fatalf("superseding epoch 7: done=%v err=%v", done7, err)
	}
	select {
	case <-done5:
	case <-time.After(5 * time.Second):
		t.Fatal("superseded epoch 5 never resolved")
	}
	st, ok := g.CheckpointStatus(5)
	if !ok || st.Err == nil || !strings.Contains(st.Err.Error(), "superseded") {
		t.Fatalf("superseded epoch status: %+v ok=%v", st, ok)
	}
	// And now a stale barrier for 5 (no longer active): dropped too.
	if stale, err := g.CheckpointAtInto(5, snapshot.CaptureFull, nil); err != nil || stale != nil {
		t.Fatalf("stale epoch 5 after supersede: done=%v err=%v, want nil/nil", stale, err)
	}

	g.Kill()
	<-runErr
	g.WaitCheckpoints()
}

// TestWireBarrierSourceSkipsPollCut: a wire-barrier-marked source must not
// cut at the poll position — only InjectWireBarrier (driven by its own
// in-band barrier) cuts it.
func TestWireBarrierSourceSkipsPollCut(t *testing.T) {
	tuples := make([]stream.Tuple, 20)
	for i := range tuples {
		tuples[i] = intTuple(int64(i))
	}
	src := &gatedSource{name: "src", schema: oneInt, tuples: tuples, gateAt: 5}
	g := NewGraph()
	sid := g.AddSource(src)
	g.Add(NewCollector("col", oneInt), From(sid))
	g.markWireBarrier(sid)

	runErr := make(chan error, 1)
	go func() { runErr <- g.Run() }()
	deadline := time.Now().Add(10 * time.Second)
	for src.emitted.Load() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("source never reached its gate")
		}
		time.Sleep(time.Millisecond)
	}
	done, err := g.CheckpointAtInto(1, snapshot.CaptureFull, nil)
	if err != nil || done == nil {
		t.Fatalf("forced epoch: %v", err)
	}
	// The source idles at its gate; a poll-cut would complete the epoch
	// within a few runner iterations. It must stay pending.
	select {
	case <-done:
		t.Fatal("wire-barrier source was cut by the poll path")
	case <-time.After(100 * time.Millisecond):
	}
	g.Kill()
	<-runErr
	g.WaitCheckpoints()
}
