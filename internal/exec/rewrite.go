package exec

import "fmt"

// Plan-rewrite support: read-only graph accessors plus ReplaceChain, the
// primitive the plan compiler (internal/fuse) uses to collapse a chain of
// single-input/single-output operator nodes into one node. Rewrites are only
// legal on an assembled, not-yet-prepared graph with no staged restore state
// — a checkpoint names every node, so the restored shape must be the shape
// that was compiled, not an intermediate.

// NumNodes returns the number of nodes added so far.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// OperatorAt returns the operator at id, or nil when id is out of range or
// names a source node.
func (g *Graph) OperatorAt(id NodeID) Operator {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return nil
	}
	return g.nodes[id].op
}

// IsSource reports whether id names a source node.
func (g *Graph) IsSource(id NodeID) bool {
	return int(id) >= 0 && int(id) < len(g.nodes) && g.nodes[id].src != nil
}

// NameAt returns the node's name ("" when id is out of range).
func (g *Graph) NameAt(id NodeID) string {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return ""
	}
	return g.nodes[id].name()
}

// NumOutputsAt returns the node's output-port count (0 when out of range).
func (g *Graph) NumOutputsAt(id NodeID) int {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return 0
	}
	return g.nodes[id].numOutputs()
}

// InputsOf returns a copy of the upstream ports feeding node id, in input
// order (nil for sources and out-of-range ids).
func (g *Graph) InputsOf(id NodeID) []Port {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return nil
	}
	return append([]Port(nil), g.nodes[id].inputs...)
}

// ReplaceChain substitutes a single operator for a chain of operator nodes.
// chain lists node ids upstream→downstream; each must be a 1-in/1-out
// operator node, each link must wire chain[i+1]'s only input to chain[i]'s
// output 0, and no node outside the chain may consume an intermediate
// output. The replacement keeps the head's id and input wiring, takes over
// the tail's consumers, and must preserve the chain's end-to-end schemas.
// Later node ids shift down to stay dense; edge labels and wire-barrier
// marks are remapped (labels on interior edges vanish with the edges).
func (g *Graph) ReplaceChain(chain []NodeID, with Operator) error {
	if g.prepared {
		return fmt.Errorf("exec: rewrite after graph already run")
	}
	if g.err != nil {
		return g.err
	}
	if g.staged != nil {
		return fmt.Errorf("exec: rewrite after Restore (compile the plan before staging a checkpoint)")
	}
	if len(chain) == 0 {
		return fmt.Errorf("exec: empty rewrite chain")
	}
	inChain := make(map[NodeID]bool, len(chain))
	for i, id := range chain {
		if int(id) < 0 || int(id) >= len(g.nodes) {
			return fmt.Errorf("exec: rewrite chain names unknown node %d", id)
		}
		n := g.nodes[id]
		if n.op == nil {
			return fmt.Errorf("exec: rewrite chain includes source %q", n.name())
		}
		if len(n.inputs) != 1 || n.numOutputs() != 1 {
			return fmt.Errorf("exec: rewrite chain node %q is not 1-in/1-out", n.name())
		}
		if inChain[id] {
			return fmt.Errorf("exec: rewrite chain repeats node %q", n.name())
		}
		inChain[id] = true
		if i > 0 && n.inputs[0] != (Port{Node: chain[i-1], Out: 0}) {
			return fmt.Errorf("exec: rewrite chain broken: %q does not consume %q",
				n.name(), g.nodes[chain[i-1]].name())
		}
	}
	head, tail := chain[0], chain[len(chain)-1]
	// Interior outputs (every chain node but the tail) must have no consumer
	// outside the chain; the tail's consumers move to the replacement.
	for _, n := range g.nodes {
		if inChain[n.id] {
			continue
		}
		for _, p := range n.inputs {
			if inChain[p.Node] && p.Node != tail {
				return fmt.Errorf("exec: rewrite chain interior %q also consumed by %q",
					g.nodes[p.Node].name(), n.name())
			}
		}
	}
	if len(with.InSchemas()) != 1 || len(with.OutSchemas()) != 1 {
		return fmt.Errorf("exec: rewrite replacement %q is not 1-in/1-out", with.Name())
	}
	headOp, tailNode := g.nodes[head], g.nodes[tail]
	if !with.InSchemas()[0].Equal(headOp.op.InSchemas()[0]) {
		return fmt.Errorf("exec: rewrite replacement %q input schema %s != chain input %s",
			with.Name(), with.InSchemas()[0], headOp.op.InSchemas()[0])
	}
	if !with.OutSchemas()[0].Equal(tailNode.outSchemas()[0]) {
		return fmt.Errorf("exec: rewrite replacement %q output schema %s != chain output %s",
			with.Name(), with.OutSchemas()[0], tailNode.outSchemas()[0])
	}

	headOp.op = with
	if len(chain) == 1 {
		return nil
	}

	removed := make(map[NodeID]bool, len(chain)-1)
	for _, id := range chain[1:] {
		removed[id] = true
	}
	remap := make([]NodeID, len(g.nodes)) // old id → new id (-1 = removed)
	kept := g.nodes[:0]
	for _, n := range g.nodes {
		if removed[n.id] {
			remap[n.id] = -1
			continue
		}
		remap[n.id] = NodeID(len(kept))
		kept = append(kept, n)
	}
	g.nodes = kept
	for _, n := range g.nodes {
		for i, p := range n.inputs {
			if p.Node == tail {
				p.Node = head
			}
			n.inputs[i] = Port{Node: remap[p.Node], Out: p.Out}
		}
		n.id = remap[n.id]
	}
	if g.labels != nil {
		relabeled := make(map[edgeKey]string, len(g.labels))
		for k, v := range g.labels {
			switch {
			case k.node == tail:
				relabeled[edgeKey{remap[head], k.out}] = v
			case k.node == head || removed[k.node]:
				// Interior edge: gone with the fusion.
			default:
				relabeled[edgeKey{remap[k.node], k.out}] = v
			}
		}
		g.labels = relabeled
	}
	if g.wireBarrier != nil {
		remarked := make(map[NodeID]bool, len(g.wireBarrier))
		for id, v := range g.wireBarrier {
			if remap[id] >= 0 {
				remarked[remap[id]] = v
			}
		}
		g.wireBarrier = remarked
	}
	return nil
}

// AbsorbChains folds upstream operator chains into a consumer node: for each
// entry input→chain, the chain (node ids upstream→downstream, each 1-in/1-out,
// linked through output 0, consumed by nothing outside the chain, with the
// tail feeding exactly the consumer's given input) is deleted and the
// consumer's input rewires to the chain head's upstream port; the consumer's
// operator is replaced by with (e.g. a prefix-kernel wrapper around the
// original). The consumer keeps its node id, output wiring, barrier marks and
// labels — stage-2 fusion leans on this to keep the stateful node's
// checkpoint identity stable. with must present the chain heads' input
// schemas on absorbed ports, the original input schemas elsewhere, and the
// original output schemas. Like ReplaceChain, only legal on an assembled,
// not-yet-prepared graph with no staged restore.
func (g *Graph) AbsorbChains(into NodeID, chains map[int][]NodeID, with Operator) error {
	if g.prepared {
		return fmt.Errorf("exec: rewrite after graph already run")
	}
	if g.err != nil {
		return g.err
	}
	if g.staged != nil {
		return fmt.Errorf("exec: rewrite after Restore (compile the plan before staging a checkpoint)")
	}
	if int(into) < 0 || int(into) >= len(g.nodes) || g.nodes[into].op == nil {
		return fmt.Errorf("exec: absorb target %d is not an operator node", into)
	}
	if len(chains) == 0 {
		return fmt.Errorf("exec: absorb with no chains")
	}
	target := g.nodes[into]
	// chainOf: chain node → the one consumer edge it may legally feed.
	type expect struct {
		consumer NodeID
		input    int
	}
	expected := make(map[NodeID]expect)
	for input, chain := range chains {
		if input < 0 || input >= len(target.inputs) {
			return fmt.Errorf("exec: absorb input %d out of range for %q", input, target.name())
		}
		if len(chain) == 0 {
			return fmt.Errorf("exec: absorb input %d: empty chain", input)
		}
		for i, id := range chain {
			if int(id) < 0 || int(id) >= len(g.nodes) {
				return fmt.Errorf("exec: absorb chain names unknown node %d", id)
			}
			n := g.nodes[id]
			if n.op == nil {
				return fmt.Errorf("exec: absorb chain includes source %q", n.name())
			}
			if id == into {
				return fmt.Errorf("exec: absorb chain includes the target %q", n.name())
			}
			if len(n.inputs) != 1 || n.numOutputs() != 1 {
				return fmt.Errorf("exec: absorb chain node %q is not 1-in/1-out", n.name())
			}
			if _, dup := expected[id]; dup {
				return fmt.Errorf("exec: absorb chain repeats node %q", n.name())
			}
			if i > 0 && n.inputs[0] != (Port{Node: chain[i-1], Out: 0}) {
				return fmt.Errorf("exec: absorb chain broken: %q does not consume %q",
					n.name(), g.nodes[chain[i-1]].name())
			}
			if i+1 < len(chain) {
				expected[id] = expect{consumer: chain[i+1], input: 0}
			} else {
				expected[id] = expect{consumer: into, input: input}
			}
		}
		tail := chain[len(chain)-1]
		if target.inputs[input] != (Port{Node: tail, Out: 0}) {
			return fmt.Errorf("exec: absorb input %d of %q is not fed by chain tail %q",
				input, target.name(), g.nodes[tail].name())
		}
	}
	// Every consumption of a chain node must be the one link the chain
	// declares — no external consumers, no second tap by the target itself.
	for _, n := range g.nodes {
		for i, p := range n.inputs {
			want, isChain := expected[p.Node]
			if !isChain {
				continue
			}
			if n.id != want.consumer || i != want.input {
				return fmt.Errorf("exec: absorb chain node %q also consumed by %q input %d",
					g.nodes[p.Node].name(), n.name(), i)
			}
		}
	}
	if len(with.InSchemas()) != len(target.inputs) || len(with.OutSchemas()) != len(target.op.OutSchemas()) {
		return fmt.Errorf("exec: absorb replacement %q arity mismatch with %q", with.Name(), target.name())
	}
	for i := range target.inputs {
		wantIn := target.op.InSchemas()[i]
		if chain, ok := chains[i]; ok {
			wantIn = g.nodes[chain[0]].op.InSchemas()[0]
		}
		if !with.InSchemas()[i].Equal(wantIn) {
			return fmt.Errorf("exec: absorb replacement %q input %d schema %s != %s",
				with.Name(), i, with.InSchemas()[i], wantIn)
		}
	}
	for i, s := range target.op.OutSchemas() {
		if !with.OutSchemas()[i].Equal(s) {
			return fmt.Errorf("exec: absorb replacement %q output %d schema %s != %s",
				with.Name(), i, with.OutSchemas()[i], s)
		}
	}

	target.op = with
	for input, chain := range chains {
		target.inputs[input] = g.nodes[chain[0]].inputs[0]
	}

	remap := make([]NodeID, len(g.nodes)) // old id → new id (-1 = removed)
	kept := g.nodes[:0]
	for _, n := range g.nodes {
		if _, gone := expected[n.id]; gone {
			remap[n.id] = -1
			continue
		}
		remap[n.id] = NodeID(len(kept))
		kept = append(kept, n)
	}
	g.nodes = kept
	for _, n := range g.nodes {
		for i, p := range n.inputs {
			n.inputs[i] = Port{Node: remap[p.Node], Out: p.Out}
		}
		n.id = remap[n.id]
	}
	if g.labels != nil {
		relabeled := make(map[edgeKey]string, len(g.labels))
		for k, v := range g.labels {
			if remap[k.node] < 0 {
				continue // label on an absorbed edge: gone with the fusion
			}
			relabeled[edgeKey{remap[k.node], k.out}] = v
		}
		g.labels = relabeled
	}
	if g.wireBarrier != nil {
		remarked := make(map[NodeID]bool, len(g.wireBarrier))
		for id, v := range g.wireBarrier {
			if remap[id] >= 0 {
				remarked[remap[id]] = v
			}
		}
		g.wireBarrier = remarked
	}
	return nil
}
