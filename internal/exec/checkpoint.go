package exec

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/snapshot"
)

// Checkpointing: the runtime half of the internal/snapshot subsystem.
//
// Graph.Checkpoint injects one barrier epoch at every source; barriers flow
// in-band through the paged queues, the node runner aligns them across
// inputs (runner.go), and each node deposits its snapshot.Stater blob here
// at its cut. The checkpoint completes when every live node has acked —
// i.e. when the barrier has drained past every sink — at which point the
// collected blobs form a consistent cut of the whole plan.
//
// Graph.Restore stages a previously taken snapshot on a freshly *rebuilt*
// plan; each node's LoadState runs right after its Open, before any data.

// ErrKilled is the error Run returns after Kill: the graph was stopped
// mid-stream deliberately (crash simulation, operator-initiated teardown).
var ErrKilled = errors.New("exec: graph killed")

// inflight is one in-progress checkpoint.
type inflight struct {
	epoch   int64
	pending map[NodeID]bool   // nodes that have not acked yet
	blobs   map[NodeID][]byte // per-node state (Staters only)
	err     error             // first node failure; poisons the checkpoint
	done    chan struct{}     // closed when pending drains
}

// A node that leaves the plan cleanly (source exhausted, downstream
// shutdown) is marked in exitClean; checkpoints taken afterwards use its
// final state as that node's cut — everything the node ever produced has
// already drained past it, so that state composes consistently with later
// cuts of the surviving nodes. The state itself is serialized lazily, at
// checkpoint creation: a dead node is quiescent, so reading it off its
// goroutine is safe, and plans that never checkpoint never pay for
// serialization.

// Kill aborts a running graph: every node shuts down as on a node error and
// Run returns ErrKilled. It is the crash half of the crash-and-recover
// tests and a no-op when the graph is not running.
func (g *Graph) Kill() {
	g.chkMu.Lock()
	kill := g.killFn
	g.chkMu.Unlock()
	if kill != nil {
		kill(ErrKilled)
	}
}

// Checkpoint takes a punctuation-aligned snapshot of the running plan. It
// blocks until every node has contributed its cut (the barrier drained past
// every sink) or ctx is cancelled. One checkpoint may be in flight at a
// time. The returned snapshot persists with Snapshot.Save and restores into
// an identically rebuilt plan with Graph.Restore.
func (g *Graph) Checkpoint(ctx context.Context) (*snapshot.Snapshot, error) {
	g.chkMu.Lock()
	if !g.running {
		g.chkMu.Unlock()
		return nil, fmt.Errorf("exec: checkpoint: graph is not running")
	}
	if g.activeChk != nil {
		g.chkMu.Unlock()
		return nil, fmt.Errorf("exec: checkpoint %d already in progress", g.activeChk.epoch)
	}
	g.chkEpoch++
	c := &inflight{
		epoch:   g.chkEpoch,
		pending: make(map[NodeID]bool, len(g.liveNodes)),
		blobs:   make(map[NodeID][]byte),
		done:    make(chan struct{}),
	}
	for id := range g.liveNodes {
		c.pending[id] = true
	}
	// Nodes that already left the plan contribute their exit state,
	// serialized now (they are quiescent). A node that died — rather than
	// finished — has no consistent cut to offer.
	for _, n := range g.nodes {
		if g.liveNodes[n.id] {
			continue
		}
		if !g.exitClean[n.id] {
			if c.err == nil {
				c.err = fmt.Errorf("exec: node %q died before checkpoint %d", n.name(), c.epoch)
			}
			continue
		}
		blob, err := saveNodeState(n)
		if err != nil && c.err == nil {
			c.err = err
		}
		if len(blob) > 0 {
			c.blobs[n.id] = blob
		}
	}
	if len(c.pending) == 0 {
		err := c.err
		g.chkMu.Unlock()
		if err != nil {
			return nil, err
		}
		return g.assembleSnapshot(c), nil
	}
	g.activeChk = c
	g.pendingChk.Store(c)
	g.chkMu.Unlock()

	select {
	case <-c.done:
	case <-ctx.Done():
		g.chkMu.Lock()
		if g.activeChk == c {
			g.activeChk = nil
			g.pendingChk.Store(nil)
		}
		g.chkMu.Unlock()
		return nil, fmt.Errorf("exec: checkpoint %d: %w", c.epoch, ctx.Err())
	}
	if c.err != nil {
		return nil, c.err
	}
	return g.assembleSnapshot(c), nil
}

// assembleSnapshot builds the manifest: every node is listed (stateless
// ones with an empty blob) so restore can validate the plan's shape.
func (g *Graph) assembleSnapshot(c *inflight) *snapshot.Snapshot {
	s := &snapshot.Snapshot{Epoch: c.epoch}
	for _, n := range g.nodes {
		s.Nodes = append(s.Nodes, snapshot.NodeState{ID: int(n.id), Name: n.name(), State: c.blobs[n.id]})
	}
	return s
}

// ackNode records one node's contribution to the active checkpoint. Stale
// epochs (a cancelled checkpoint's barrier still draining) are ignored.
func (g *Graph) ackNode(id NodeID, epoch int64, blob []byte, err error) {
	g.chkMu.Lock()
	defer g.chkMu.Unlock()
	c := g.activeChk
	if c == nil || c.epoch != epoch || !c.pending[id] {
		return
	}
	delete(c.pending, id)
	if err != nil && c.err == nil {
		c.err = err
	}
	if len(blob) > 0 {
		c.blobs[id] = blob
	}
	if len(c.pending) == 0 {
		g.activeChk = nil
		g.pendingChk.Store(nil)
		close(c.done)
	}
}

// cutNode captures one node's state for the given epoch and acks it. It is
// called on the node's own goroutine at the node's consistent cut (barrier
// alignment for operators, between Next calls for sources), before the
// barrier is forwarded downstream. A SaveState failure poisons the
// checkpoint but never the stream: checkpointing is auxiliary to the plan.
func (g *Graph) cutNode(n *node, epoch int64) {
	g.chkMu.Lock()
	c := g.activeChk
	g.chkMu.Unlock()
	if c == nil || c.epoch != epoch {
		return
	}
	blob, err := saveNodeState(n)
	g.ackNode(n.id, epoch, blob, err)
}

// nodeExit retires a node from checkpoint bookkeeping. A clean exit (source
// exhausted, voluntary shutdown) records the node's final state as its cut
// for the active and all future checkpoints; a dying exit (node error,
// Kill) fails the active checkpoint instead — the surviving nodes' cuts
// would not compose with a state captured mid-teardown.
func (g *Graph) nodeExit(n *node, runErr error) {
	dying := runErr != nil
	if !dying {
		select {
		case <-g.failCh:
			dying = true
		default:
		}
	}
	if dying {
		g.chkMu.Lock()
		delete(g.liveNodes, n.id)
		c := g.activeChk
		g.chkMu.Unlock()
		if c != nil {
			g.ackNode(n.id, c.epoch, nil,
				fmt.Errorf("exec: node %q stopped before checkpoint %d completed", n.name(), c.epoch))
		}
		return
	}
	g.chkMu.Lock()
	delete(g.liveNodes, n.id)
	if g.exitClean == nil {
		g.exitClean = make(map[NodeID]bool)
	}
	g.exitClean[n.id] = true
	c := g.activeChk
	g.chkMu.Unlock()
	if c != nil {
		// The active checkpoint is waiting on this node's ack, so its cut
		// is serialized eagerly; future checkpoints re-serialize lazily.
		blob, err := saveNodeState(n)
		g.ackNode(n.id, c.epoch, blob, err)
	}
}

// stater returns the node's snapshot participant, or nil.
func (n *node) stater() snapshot.Stater {
	if n.op != nil {
		s, _ := n.op.(snapshot.Stater)
		return s
	}
	s, _ := n.src.(snapshot.Stater)
	return s
}

// saveNodeState serializes one node's state (nil for non-Staters).
func saveNodeState(n *node) ([]byte, error) {
	st := n.stater()
	if st == nil {
		return nil, nil
	}
	enc := snapshot.NewEncoder()
	if err := st.SaveState(enc); err != nil {
		return nil, fmt.Errorf("exec: node %q: save state: %w", n.name(), err)
	}
	blob, err := enc.Bytes()
	if err != nil {
		return nil, fmt.Errorf("exec: node %q: save state: %w", n.name(), err)
	}
	return blob, nil
}

// Restore loads the snapshot stored under id and stages it so the next Run
// resumes from the cut: each node's LoadState runs immediately after its
// Open, before any data. The plan must be rebuilt identically (same node
// order and names); prepare validates the match.
func (g *Graph) Restore(backend snapshot.Backend, id string) error {
	s, err := snapshot.Load(backend, id)
	if err != nil {
		return err
	}
	return g.RestoreSnapshot(s)
}

// RestoreSnapshot stages an already-loaded snapshot (see Restore).
func (g *Graph) RestoreSnapshot(s *snapshot.Snapshot) error {
	if g.prepared {
		return fmt.Errorf("exec: restore: graph already run")
	}
	staged := make(map[NodeID][]byte, len(s.Nodes))
	names := make(map[NodeID]string, len(s.Nodes))
	for _, ns := range s.Nodes {
		id := NodeID(ns.ID)
		if _, dup := names[id]; dup {
			return fmt.Errorf("exec: restore: snapshot lists node %d twice", ns.ID)
		}
		staged[id] = ns.State
		names[id] = ns.Name
	}
	g.staged = staged
	g.stagedNames = names
	return nil
}

// checkStaged validates a staged snapshot against the built plan; called
// from prepare.
func (g *Graph) checkStaged() error {
	if g.stagedNames == nil {
		return nil
	}
	if len(g.stagedNames) != len(g.nodes) {
		return fmt.Errorf("exec: restore: snapshot has %d nodes but the plan has %d (plan drift)",
			len(g.stagedNames), len(g.nodes))
	}
	for id, name := range g.stagedNames {
		if int(id) < 0 || int(id) >= len(g.nodes) {
			return fmt.Errorf("exec: restore: snapshot node %d not in plan", id)
		}
		if got := g.nodes[id].name(); got != name {
			return fmt.Errorf("exec: restore: node %d is %q in the plan but %q in the snapshot (plan drift)",
				id, got, name)
		}
	}
	return nil
}

// restoreNode applies a staged blob to a node; called by the runner right
// after Open, before any data or feedback is delivered.
func (g *Graph) restoreNode(n *node) error {
	blob := g.staged[n.id]
	if len(blob) == 0 {
		return nil
	}
	st := n.stater()
	if st == nil {
		return fmt.Errorf("exec: restore: node %q carries state but does not implement snapshot.Stater", n.name())
	}
	dec := snapshot.NewDecoder(blob)
	if err := st.LoadState(dec); err != nil {
		return fmt.Errorf("exec: restore: node %q: %w", n.name(), err)
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("exec: restore: node %q: %w", n.name(), err)
	}
	return nil
}
