package exec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/snapshot"
)

// Checkpointing: the runtime half of the internal/snapshot subsystem.
//
// Graph.Checkpoint injects one barrier epoch at every source; barriers flow
// in-band through the paged queues, the node runner aligns them across
// inputs (runner.go), and each node deposits its phase-1 capture here at
// its cut. The cut is two-phase (DESIGN.md §7): at the barrier the node
// only takes a cheap consistent view of its state (snapshot.TwoPhase) and
// the barrier releases immediately; serialization — and, for chain-backed
// checkpoints, persistence — happens afterwards on a background goroutine,
// so the stall a checkpoint imposes on the pipeline no longer scales with
// state size. Checkpoints can also be incremental: CaptureDelta asks every
// node for only the state changed since the previous capture, and the
// resulting snapshot chains off its predecessor (snapshot.Chain).
//
// Graph.Restore stages a previously taken snapshot — or a base+delta chain
// — on a freshly *rebuilt* plan; each node's LoadState (then ApplyDelta per
// delta) runs right after its Open, before any data.

// ErrKilled is the error Run returns after Kill: the graph was stopped
// mid-stream deliberately (crash simulation, operator-initiated teardown).
var ErrKilled = errors.New("exec: graph killed")

// CheckpointStatus reports one checkpoint's outcome; failed background
// encodes/writes surface here (and through the blocking Checkpoint calls).
type CheckpointStatus struct {
	// Epoch identifies the checkpoint; Base is the epoch it chains from
	// (0 for a full snapshot).
	Epoch, Base int64
	// Done is false only for checkpoints cancelled before completing.
	Done bool
	// Persisted reports a successful chain write (always false for
	// checkpoints taken without a chain).
	Persisted bool
	// Err is the first failure: a capture error, a node death during
	// alignment, an encode error, or a chain-write error.
	Err error
	// BarrierHold is the longest any single node spent in phase-1 capture —
	// the checkpoint's hot-path stall. Encoding time is excluded by
	// construction.
	BarrierHold time.Duration
	// Encode is the background serialization+assembly time; Bytes the
	// encoded snapshot size.
	Encode time.Duration
	Bytes  int
}

// nodeCut is one node's phase-1 contribution.
type nodeCut struct {
	cap  snapshot.Capture
	blob []byte // legacy one-phase Staters: encoded synchronously at the cut
}

// chkResult is delivered to blocking Checkpoint callers.
type chkResult struct {
	snap *snapshot.Snapshot
	err  error
}

// inflight is one in-progress checkpoint.
type inflight struct {
	epoch int64
	base  int64 // delta parent epoch; 0 for full
	mode  snapshot.CaptureMode
	chain *snapshot.Chain // optional persistence target

	pending  map[NodeID]bool    // nodes that have not cut yet
	cuts     map[NodeID]nodeCut // phase-1 captures
	err      error              // first failure; poisons the checkpoint
	hold     time.Duration      // max single-node capture duration
	captured chan struct{}      // closed when every node has cut
	result   chan chkResult     // buffered; delivered by the finisher
	prevDone chan struct{}      // previous checkpoint's finish ticket
	done     chan struct{}      // closed when finished or cancelled

	// abandoned/finished (under chkMu) coordinate a caller that gives up
	// after the capture phase with the background finisher: a chain-less
	// snapshot nobody will receive must not become a delta parent.
	abandoned bool
	finished  bool
}

// A node that leaves the plan cleanly (source exhausted, downstream
// shutdown) is marked in exitClean; checkpoints taken afterwards use its
// final state as that node's cut — everything the node ever produced has
// already drained past it, so that state composes consistently with later
// cuts of the surviving nodes.

// Kill aborts a running graph: every node shuts down as on a node error and
// Run returns ErrKilled. It is the crash half of the crash-and-recover
// tests and a no-op when the graph is not running.
func (g *Graph) Kill() {
	g.chkMu.Lock()
	kill := g.killFn
	g.chkMu.Unlock()
	if kill != nil {
		kill(ErrKilled)
	}
}

// Checkpoint takes a full punctuation-aligned snapshot of the running plan.
// It blocks until the snapshot is assembled (captures at every node, then
// background encoding) or ctx is cancelled; the pipeline itself is only
// held for the capture phase. One checkpoint may be in flight at a time.
// The returned snapshot persists with Snapshot.Save or Chain.Put and
// restores into an identically rebuilt plan with Graph.Restore.
func (g *Graph) Checkpoint(ctx context.Context) (*snapshot.Snapshot, error) {
	return g.checkpointWait(ctx, snapshot.CaptureFull)
}

// CheckpointIncremental takes a delta checkpoint: every node contributes
// only the state changed since the previous checkpoint, and the returned
// snapshot's Base names the epoch it chains from. The first checkpoint of
// a run — and the first after any failed or cancelled checkpoint — is
// silently upgraded to a full snapshot (Base == 0), so callers can simply
// loop on CheckpointIncremental.
func (g *Graph) CheckpointIncremental(ctx context.Context) (*snapshot.Snapshot, error) {
	return g.checkpointWait(ctx, snapshot.CaptureDelta)
}

func (g *Graph) checkpointWait(ctx context.Context, mode snapshot.CaptureMode) (*snapshot.Snapshot, error) {
	c, err := g.triggerCheckpoint(mode, nil)
	if err != nil {
		return nil, err
	}
	select {
	case r := <-c.result:
		return r.snap, r.err
	case <-ctx.Done():
		g.cancelCheckpoint(c, ctx.Err())
		return nil, fmt.Errorf("exec: checkpoint %d: %w", c.epoch, ctx.Err())
	}
}

// CheckpointInto triggers a checkpoint persisted to the chain in the
// background and returns its epoch as soon as the capture phase is under
// way — it does not wait for the barrier, the encode, or the write. The
// outcome lands in CheckpointStatus; WaitCheckpoints drains stragglers.
func (g *Graph) CheckpointInto(chain *snapshot.Chain, mode snapshot.CaptureMode) (int64, error) {
	c, err := g.triggerCheckpoint(mode, chain)
	if err != nil {
		return 0, err
	}
	return c.epoch, nil
}

// WaitCheckpoints blocks until every background encode/persist has
// finished (including cancelled stragglers).
func (g *Graph) WaitCheckpoints() { g.chkWG.Wait() }

// CheckpointStatuses returns the recorded outcomes, oldest first (the ring
// keeps the most recent 64).
func (g *Graph) CheckpointStatuses() []CheckpointStatus {
	g.chkMu.Lock()
	defer g.chkMu.Unlock()
	return append([]CheckpointStatus(nil), g.statuses...)
}

// CheckpointStatus returns the recorded outcome for one epoch.
func (g *Graph) CheckpointStatus(epoch int64) (CheckpointStatus, bool) {
	g.chkMu.Lock()
	defer g.chkMu.Unlock()
	for i := len(g.statuses) - 1; i >= 0; i-- {
		if g.statuses[i].Epoch == epoch {
			return g.statuses[i], true
		}
	}
	return CheckpointStatus{}, false
}

func (g *Graph) recordStatusLocked(st CheckpointStatus) {
	if len(g.statuses) >= 64 {
		g.statuses = g.statuses[1:]
	}
	g.statuses = append(g.statuses, st)
}

// CheckpointAtInto triggers a checkpoint at an externally assigned epoch —
// the receiving half of a cross-process barrier (a DistFollower's plan must
// cut at the coordinator's epoch number, not its own counter). It returns
// the checkpoint's completion channel; a duplicate of the still-active
// epoch (a parallel remote edge delivering the same barrier) returns that
// checkpoint's channel, and a nil channel with nil error means the epoch
// was already taken — completed or superseded — and there is nothing to
// wait for. The outcome is readable via CheckpointStatus once the channel
// closes.
func (g *Graph) CheckpointAtInto(epoch int64, mode snapshot.CaptureMode, chain *snapshot.Chain) (<-chan struct{}, error) {
	if epoch <= 0 {
		return nil, fmt.Errorf("exec: checkpoint: non-positive epoch %d", epoch)
	}
	c, err := g.trigger(epoch, mode, chain)
	if err != nil || c == nil {
		return nil, err
	}
	return c.done, nil
}

// triggerCheckpoint starts one checkpoint at the next local epoch.
func (g *Graph) triggerCheckpoint(mode snapshot.CaptureMode, chain *snapshot.Chain) (*inflight, error) {
	return g.trigger(0, mode, chain)
}

// trigger starts one checkpoint: it registers the epoch so sources inject
// barriers, captures already-exited nodes, and spawns the background
// finisher chain. It returns without waiting for alignment. forceEpoch == 0
// assigns the next local epoch; a positive forceEpoch adopts an external
// (coordinator-assigned) numbering — a duplicate of the active epoch
// returns the active checkpoint, an epoch at or below the newest triggered
// one returns (nil, nil), and a forced epoch newer than a still-active one
// supersedes it (the coordinator has already abandoned the older epoch: its
// ack can no longer matter, and holding its alignment would wedge the plan).
func (g *Graph) trigger(forceEpoch int64, mode snapshot.CaptureMode, chain *snapshot.Chain) (*inflight, error) {
	g.chkMu.Lock()
	if !g.running {
		g.chkMu.Unlock()
		return nil, fmt.Errorf("exec: checkpoint: graph is not running")
	}
	if g.activeChk != nil {
		switch {
		case forceEpoch == g.activeChk.epoch:
			c := g.activeChk
			g.chkMu.Unlock()
			return c, nil
		case forceEpoch > g.activeChk.epoch:
			g.supersedeLocked(forceEpoch)
		case forceEpoch != 0:
			// A stale wire barrier still draining behind a newer active
			// epoch (a parallel edge finally delivering an epoch the
			// coordinator already abandoned and superseded): drop it — it
			// must not fail the subplan.
			g.chkMu.Unlock()
			return nil, nil
		default:
			g.chkMu.Unlock()
			return nil, fmt.Errorf("exec: checkpoint %d already in progress", g.activeChk.epoch)
		}
	}
	if forceEpoch != 0 && forceEpoch <= g.chkEpoch {
		// Already taken (or numbering moved past it): a duplicate barrier
		// from a second remote edge, or a stale barrier still draining.
		g.chkMu.Unlock()
		return nil, nil
	}
	// A delta needs an intact parent: the first checkpoint, and the first
	// after any failure or cancellation (whose captures drained the
	// operators' changelogs), must be full.
	if mode == snapshot.CaptureDelta && (g.lastCapEpoch == 0 || g.chainBroken) {
		mode = snapshot.CaptureFull
	}
	if forceEpoch != 0 {
		g.chkEpoch = forceEpoch
	} else {
		g.chkEpoch++
	}
	c := &inflight{
		epoch:    g.chkEpoch,
		mode:     mode,
		chain:    chain,
		pending:  make(map[NodeID]bool, len(g.liveNodes)),
		cuts:     make(map[NodeID]nodeCut),
		captured: make(chan struct{}),
		result:   make(chan chkResult, 1),
		done:     make(chan struct{}),
		prevDone: g.lastFinish,
	}
	// A delta's content is relative to the previous *capture* — the
	// operators drained their changelogs into it — which may still be
	// encoding in the background. If that parent epoch later fails to
	// assemble or persist, the ordered finisher chain fails this one too
	// (see finishCheckpoint's parent check).
	if mode == snapshot.CaptureDelta {
		c.base = g.lastCapEpoch
	}
	g.lastFinish = c.done
	for id := range g.liveNodes {
		c.pending[id] = true
	}
	// Nodes that already left the plan contribute their exit state,
	// captured now (they are quiescent, so reading them off their
	// goroutine is safe). A node that died — rather than finished — has no
	// consistent cut to offer.
	for _, n := range g.nodes {
		if g.liveNodes[n.id] {
			continue
		}
		if !g.exitClean[n.id] {
			if c.err == nil {
				c.err = fmt.Errorf("exec: node %q died before checkpoint %d", n.name(), c.epoch)
			}
			continue
		}
		cut, err := captureNode(n, c.mode)
		if err != nil && c.err == nil {
			c.err = err
		}
		c.cuts[n.id] = cut
	}
	g.chkWG.Add(1)
	g.recordEpoch("trigger", c.epoch, "", 0, nil)
	if len(c.pending) == 0 {
		g.lastCapEpoch = c.epoch
		close(c.captured)
		go g.finishCheckpoint(c)
		g.chkMu.Unlock()
		return c, nil
	}
	g.activeChk = c
	g.pendingChk.Store(c)
	g.chkMu.Unlock()
	return c, nil
}

// cancelCheckpoint abandons a checkpoint whose caller gave up waiting. If
// the capture phase had already completed, the background finisher keeps
// going (the snapshot may still persist); otherwise the epoch is dead —
// and because some nodes may already have drained their changelogs into
// the lost captures, the next incremental checkpoint upgrades to full.
func (g *Graph) cancelCheckpoint(c *inflight, cause error) {
	g.chkMu.Lock()
	defer g.chkMu.Unlock()
	if g.activeChk != c {
		// Capture phase already complete; the finisher owns the epoch. A
		// chain-backed snapshot still persists and stays a valid parent,
		// but a chain-less one has only this caller to receive it — once
		// abandoned, the assembled epoch is lost and the lineage with it.
		if c.chain == nil {
			if c.finished {
				g.chainBroken = true
			} else {
				c.abandoned = true // the finisher applies the break
			}
		}
		return
	}
	g.activeChk = nil
	g.pendingChk.Store(nil)
	g.chainBroken = true
	g.recordStatusLocked(CheckpointStatus{
		Epoch: c.epoch, Base: c.base, Done: false, BarrierHold: c.hold,
		Err: fmt.Errorf("exec: checkpoint %d cancelled: %w", c.epoch, cause),
	})
	g.recordEpoch("abandon", c.epoch, "", c.hold, cause)
	close(c.done)
	g.chkWG.Done()
}

// supersedeLocked abandons the active checkpoint because a newer remote
// epoch arrived: same bookkeeping as cancelCheckpoint's active branch. The
// stale epoch's barriers may still be draining; the runners lift their
// freezes via alignmentStale. Called with chkMu held.
func (g *Graph) supersedeLocked(newer int64) {
	c := g.activeChk
	g.activeChk = nil
	g.pendingChk.Store(nil)
	g.chainBroken = true
	g.recordStatusLocked(CheckpointStatus{
		Epoch: c.epoch, Base: c.base, Done: false, BarrierHold: c.hold,
		Err: fmt.Errorf("exec: checkpoint %d superseded by remote epoch %d before completing", c.epoch, newer),
	})
	g.recordEpoch("abandon", c.epoch, "", c.hold,
		fmt.Errorf("superseded by remote epoch %d", newer))
	close(c.done)
	g.chkWG.Done()
}

// ackNode records one node's capture for the active checkpoint. Stale
// epochs (a cancelled checkpoint's barrier still draining) are ignored.
// When the last node acks, the barrier phase is over: the checkpoint
// leaves the coordinator and finishes on a background goroutine.
func (g *Graph) ackNode(id NodeID, epoch int64, cut nodeCut, err error, hold time.Duration) {
	g.chkMu.Lock()
	defer g.chkMu.Unlock()
	c := g.activeChk
	if c == nil || c.epoch != epoch || !c.pending[id] {
		return
	}
	delete(c.pending, id)
	if err != nil && c.err == nil {
		c.err = err
	}
	if hold > c.hold {
		c.hold = hold
	}
	c.cuts[id] = cut
	g.recordEpoch("capture", epoch, g.nodes[id].name(), hold, err)
	if len(c.pending) == 0 {
		g.activeChk = nil
		g.pendingChk.Store(nil)
		g.lastCapEpoch = c.epoch
		close(c.captured)
		// Every node has cut: the barrier phase is over. hold is now the
		// longest single-node capture — the checkpoint's pipeline stall.
		g.recordEpoch("barrier-hold", epoch, "", c.hold, nil)
		go g.finishCheckpoint(c)
	}
}

// finishCheckpoint is phase 2: encode every captured view, assemble the
// manifest, persist to the chain if one was given, and publish the status.
// Finishers chain on prevDone so chain writes land in epoch order.
func (g *Graph) finishCheckpoint(c *inflight) {
	defer g.chkWG.Done()
	defer close(c.done)
	if c.prevDone != nil {
		<-c.prevDone
	}
	start := time.Now()
	err := c.err
	if err == nil && c.base != 0 {
		// Finishers run in epoch order, so the parent capture has finished
		// by now; if it failed to assemble or persist, this delta's
		// baseline is gone and the epoch must fail with it (the next
		// trigger then upgrades to full via chainBroken).
		g.chkMu.Lock()
		if g.lastDoneEpoch != c.base {
			err = fmt.Errorf("exec: checkpoint %d: delta parent epoch %d was lost (last durable epoch %d)",
				c.epoch, c.base, g.lastDoneEpoch)
		}
		g.chkMu.Unlock()
	}
	var snap *snapshot.Snapshot
	bytes := 0
	if err == nil {
		snap = &snapshot.Snapshot{Epoch: c.epoch, Base: c.base}
		for _, n := range g.nodes {
			cut := c.cuts[n.id]
			ns := snapshot.NodeState{ID: int(n.id), Name: n.name()}
			switch {
			case len(cut.blob) > 0:
				ns.State = cut.blob
			case cut.cap.Encode != nil:
				enc := snapshot.NewEncoder()
				if eerr := cut.cap.Encode(enc); eerr != nil && err == nil {
					err = fmt.Errorf("exec: node %q: encode state: %w", n.name(), eerr)
				}
				blob, berr := enc.Bytes()
				if berr != nil && err == nil {
					err = fmt.Errorf("exec: node %q: encode state: %w", n.name(), berr)
				}
				ns.State = blob
				ns.Delta = cut.cap.Delta
			}
			bytes += len(ns.State)
			snap.Nodes = append(snap.Nodes, ns)
		}
	}
	encodeDur := time.Since(start)
	g.recordEpoch("encode", c.epoch, "", encodeDur, err)
	persisted := false
	if err == nil && c.chain != nil {
		persistStart := time.Now()
		werr := func() error {
			if _, perr := c.chain.Put(snap); perr != nil {
				return perr
			}
			// A write-behind backend has only enqueued the write; the epoch
			// counts as persisted — and may serve as a delta parent — only
			// once it is durably applied.
			if f, ok := c.chain.Backend().(snapshot.Flusher); ok {
				return f.Flush()
			}
			return nil
		}()
		if werr != nil {
			err = fmt.Errorf("exec: checkpoint %d: persist: %w", c.epoch, werr)
		} else {
			persisted = true
		}
		g.recordEpoch("persist", c.epoch, "", time.Since(persistStart), werr)
	}
	g.chkMu.Lock()
	if err == nil && c.abandoned {
		err = fmt.Errorf("exec: checkpoint %d: abandoned by caller before delivery", c.epoch)
	}
	c.finished = true
	if err == nil {
		g.lastDoneEpoch = c.epoch
		if c.base == 0 {
			g.chainBroken = false
		}
	} else {
		g.chainBroken = true
		snap = nil
	}
	g.recordStatusLocked(CheckpointStatus{
		Epoch: c.epoch, Base: c.base, Done: true, Persisted: persisted,
		Err: err, BarrierHold: c.hold, Encode: encodeDur, Bytes: bytes,
	})
	if err == nil {
		g.recordEpoch("commit", c.epoch, "", 0, nil)
	} else {
		g.recordEpoch("fail", c.epoch, "", 0, err)
	}
	g.chkMu.Unlock()
	c.result <- chkResult{snap: snap, err: err}
}

// cutNode captures one node's state for the given epoch (phase 1 only) and
// acks it. It is called on the node's own goroutine at the node's
// consistent cut (barrier alignment for operators, between Next calls for
// sources), before the barrier is forwarded downstream. A capture failure
// poisons the checkpoint but never the stream: checkpointing is auxiliary
// to the plan.
func (g *Graph) cutNode(n *node, epoch int64) {
	g.chkMu.Lock()
	c := g.activeChk
	g.chkMu.Unlock()
	if c == nil || c.epoch != epoch {
		return
	}
	start := time.Now()
	cut, err := captureNode(n, c.mode)
	g.ackNode(n.id, epoch, cut, err, time.Since(start))
}

// nodeExit retires a node from checkpoint bookkeeping. A clean exit (source
// exhausted, voluntary shutdown) records the node's final state as its cut
// for the active and all future checkpoints; a dying exit (node error,
// Kill) fails the active checkpoint instead — the surviving nodes' cuts
// would not compose with a state captured mid-teardown.
func (g *Graph) nodeExit(n *node, runErr error) {
	dying := runErr != nil
	if !dying {
		select {
		case <-g.failCh:
			dying = true
		default:
		}
	}
	if dying {
		g.chkMu.Lock()
		delete(g.liveNodes, n.id)
		c := g.activeChk
		g.chkMu.Unlock()
		if c != nil {
			g.ackNode(n.id, c.epoch, nodeCut{},
				fmt.Errorf("exec: node %q stopped before checkpoint %d completed", n.name(), c.epoch), 0)
		}
		return
	}
	g.chkMu.Lock()
	delete(g.liveNodes, n.id)
	if g.exitClean == nil {
		g.exitClean = make(map[NodeID]bool)
	}
	g.exitClean[n.id] = true
	c := g.activeChk
	g.chkMu.Unlock()
	if c != nil {
		// The active checkpoint is waiting on this node's ack; it is
		// quiescent now, so capture on the exiting goroutine.
		start := time.Now()
		cut, err := captureNode(n, c.mode)
		g.ackNode(n.id, c.epoch, cut, err, time.Since(start))
	}
}

// stater returns the node's snapshot participant, or nil.
func (n *node) stater() snapshot.Stater {
	if n.op != nil {
		s, _ := n.op.(snapshot.Stater)
		return s
	}
	s, _ := n.src.(snapshot.Stater)
	return s
}

// captureNode takes one node's phase-1 capture. Two-phase Staters hand
// back a view; legacy one-phase Staters are serialized on the spot (their
// cut still pays O(state) at the barrier, as before the refactor).
func captureNode(n *node, mode snapshot.CaptureMode) (nodeCut, error) {
	st := n.stater()
	if st == nil {
		return nodeCut{}, nil
	}
	if tp, ok := st.(snapshot.TwoPhase); ok {
		cap, err := tp.CaptureState(mode)
		if err != nil {
			return nodeCut{}, fmt.Errorf("exec: node %q: capture state: %w", n.name(), err)
		}
		return nodeCut{cap: cap}, nil
	}
	enc := snapshot.NewEncoder()
	if err := st.SaveState(enc); err != nil {
		return nodeCut{}, fmt.Errorf("exec: node %q: save state: %w", n.name(), err)
	}
	blob, err := enc.Bytes()
	if err != nil {
		return nodeCut{}, fmt.Errorf("exec: node %q: save state: %w", n.name(), err)
	}
	return nodeCut{blob: blob}, nil
}

// stagedState is the restore payload for one node: a complete base blob
// plus delta blobs to apply in order.
type stagedState struct {
	full   []byte
	deltas [][]byte
}

// Restore loads the self-contained snapshot stored under id and stages it
// so the next Run resumes from the cut. For chained (incremental)
// checkpoints use RestoreLatest/RestoreChain instead.
func (g *Graph) Restore(backend snapshot.Backend, id string) error {
	s, err := snapshot.Load(backend, id)
	if err != nil {
		return err
	}
	return g.RestoreSnapshot(s)
}

// RestoreLatest stages the newest restorable epoch of a chain; it is a
// no-op (ok=false) on an empty chain, so cold starts and recoveries share
// one call site.
func (g *Graph) RestoreLatest(chain *snapshot.Chain) (ok bool, err error) {
	snaps, err := chain.Latest()
	if err != nil {
		return false, err
	}
	if len(snaps) == 0 {
		return false, nil
	}
	return true, g.RestoreChain(snaps)
}

// RestoreLatestIntact stages the newest epoch of a chain whose lineage
// decodes cleanly, degrading past corrupt blobs (ErrCorruptSnapshot)
// instead of failing the whole restore. When it degrades, the corrupt tail
// is truncated before staging so the resumed run's epoch numbering — which
// continues from the restored cut — cannot collide with the damaged epochs
// still on disk; skipped reports what was walked past so callers can log
// the degradation. A chain where nothing is intact truncates to empty and
// cold-starts (ok=false).
func (g *Graph) RestoreLatestIntact(chain *snapshot.Chain) (ok bool, skipped []snapshot.Fallback, err error) {
	snaps, skipped, err := chain.LatestIntact()
	if err != nil {
		return false, skipped, err
	}
	if len(snaps) == 0 {
		if len(skipped) > 0 {
			if err := chain.TruncateAfter(0); err != nil {
				return false, skipped, err
			}
		}
		return false, skipped, nil
	}
	if len(skipped) > 0 {
		if err := chain.TruncateAfter(snaps[len(snaps)-1].Epoch); err != nil {
			return false, skipped, err
		}
	}
	return true, skipped, g.RestoreChain(snaps)
}

// RestoreSnapshot stages one self-contained snapshot (see Restore).
func (g *Graph) RestoreSnapshot(s *snapshot.Snapshot) error {
	return g.RestoreChain([]*snapshot.Snapshot{s})
}

// RestoreChain stages a base-first snapshot chain: each node's LoadState
// runs on the base blob immediately after its Open, then ApplyDelta on
// every delta blob, all before any data. The plan must be rebuilt
// identically (same node order and names); prepare validates the match.
func (g *Graph) RestoreChain(snaps []*snapshot.Snapshot) error {
	if g.prepared {
		return fmt.Errorf("exec: restore: graph already run")
	}
	if len(snaps) == 0 {
		return fmt.Errorf("exec: restore: empty snapshot chain")
	}
	if !snaps[0].IsFull() {
		return fmt.Errorf("exec: restore: chain starts at delta epoch %d (base %d missing)",
			snaps[0].Epoch, snaps[0].Base)
	}
	staged := make(map[NodeID]stagedState, len(snaps[0].Nodes))
	names := make(map[NodeID]string, len(snaps[0].Nodes))
	prevEpoch := int64(0)
	for si, s := range snaps {
		if si > 0 && s.Base != prevEpoch {
			return fmt.Errorf("exec: restore: epoch %d chains from %d but follows %d", s.Epoch, s.Base, prevEpoch)
		}
		prevEpoch = s.Epoch
		seen := make(map[NodeID]bool, len(s.Nodes))
		for _, ns := range s.Nodes {
			id := NodeID(ns.ID)
			if seen[id] {
				return fmt.Errorf("exec: restore: snapshot %d lists node %d twice", s.Epoch, ns.ID)
			}
			seen[id] = true
			if prev, ok := names[id]; ok && prev != ns.Name {
				return fmt.Errorf("exec: restore: node %d is %q at epoch %d but %q earlier in the chain",
					ns.ID, ns.Name, s.Epoch, prev)
			}
			names[id] = ns.Name
			st := staged[id]
			if ns.Delta {
				if len(ns.State) > 0 {
					st.deltas = append(st.deltas, ns.State)
				}
			} else {
				st = stagedState{full: ns.State}
			}
			st.deltas = append(st.deltas, ns.Deltas...)
			staged[id] = st
		}
		if si > 0 && len(seen) != len(names) {
			return fmt.Errorf("exec: restore: epoch %d covers %d nodes but the chain has %d", s.Epoch, len(seen), len(names))
		}
	}
	g.staged = staged
	g.stagedNames = names
	// Resume epoch numbering and delta lineage from the restored cut, so a
	// recovered run's checkpoints extend the same chain instead of
	// colliding with it.
	last := snaps[len(snaps)-1].Epoch
	g.chkEpoch = last
	g.lastCapEpoch = last
	g.lastDoneEpoch = last
	return nil
}

// checkStaged validates a staged snapshot against the built plan; called
// from prepare.
func (g *Graph) checkStaged() error {
	if g.stagedNames == nil {
		return nil
	}
	if len(g.stagedNames) != len(g.nodes) {
		return fmt.Errorf("exec: restore: snapshot has %d nodes but the plan has %d (plan drift)",
			len(g.stagedNames), len(g.nodes))
	}
	for id, name := range g.stagedNames {
		if int(id) < 0 || int(id) >= len(g.nodes) {
			return fmt.Errorf("exec: restore: snapshot node %d not in plan", id)
		}
		if got := g.nodes[id].name(); got != name {
			return fmt.Errorf("exec: restore: node %d is %q in the plan but %q in the snapshot (plan drift)",
				id, got, name)
		}
	}
	return nil
}

// restoreNode applies a node's staged base+deltas; called by the runner
// right after Open, before any data or feedback is delivered.
func (g *Graph) restoreNode(n *node) error {
	st := g.staged[n.id]
	if len(st.full) == 0 && len(st.deltas) == 0 {
		return nil
	}
	sp := n.stater()
	if sp == nil {
		return fmt.Errorf("exec: restore: node %q carries state but does not implement snapshot.Stater", n.name())
	}
	if len(st.full) == 0 {
		return fmt.Errorf("exec: restore: node %q has delta state but no base (broken chain)", n.name())
	}
	dec := snapshot.NewDecoder(st.full)
	if err := sp.LoadState(dec); err != nil {
		return fmt.Errorf("exec: restore: node %q: %w", n.name(), err)
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("exec: restore: node %q: %w", n.name(), err)
	}
	for i, blob := range st.deltas {
		ds, ok := sp.(snapshot.DeltaStater)
		if !ok {
			return fmt.Errorf("exec: restore: node %q carries delta state but does not implement snapshot.DeltaStater", n.name())
		}
		dec := snapshot.NewDecoder(blob)
		if err := ds.ApplyDelta(dec); err != nil {
			return fmt.Errorf("exec: restore: node %q delta %d: %w", n.name(), i, err)
		}
		if err := dec.Err(); err != nil {
			return fmt.Errorf("exec: restore: node %q delta %d: %w", n.name(), i, err)
		}
	}
	return nil
}
