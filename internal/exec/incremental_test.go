package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

// limitedSource emits tuples up to an externally raised limit, then parks
// live; it checkpoints its position (two-phase).
type limitedSource struct {
	schema stream.Schema
	total  int64
	limit  atomic.Int64
	pos    atomic.Int64
}

func (s *limitedSource) Name() string                { return "limited" }
func (s *limitedSource) OutSchemas() []stream.Schema { return []stream.Schema{s.schema} }
func (s *limitedSource) Open(Context) error          { return nil }
func (s *limitedSource) Close(Context) error         { return nil }
func (s *limitedSource) ProcessFeedback(int, core.Feedback, Context) error {
	return nil
}

func (s *limitedSource) Next(ctx Context) (bool, error) {
	pos := s.pos.Load()
	if pos >= s.total {
		return false, nil
	}
	limit := s.limit.Load()
	if limit > s.total {
		limit = s.total
	}
	if pos >= limit {
		time.Sleep(100 * time.Microsecond)
		return true, nil
	}
	for n := 0; n < 16 && pos < limit; n++ {
		ctx.Emit(stream.NewTuple(stream.Int(pos), stream.Int(pos*2)).WithSeq(pos))
		pos++
	}
	s.pos.Store(pos)
	return true, nil
}

// CaptureState implements snapshot.TwoPhase.
func (s *limitedSource) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	pos := s.pos.Load()
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		enc.PutInt64(pos)
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (s *limitedSource) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(s, enc)
}

// LoadState implements snapshot.Stater.
func (s *limitedSource) LoadState(dec *snapshot.Decoder) error {
	s.pos.Store(dec.GetInt64())
	return dec.Err()
}

func (s *limitedSource) waitPos(t *testing.T, want int64) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); s.pos.Load() < want; {
		if time.Now().After(deadline) {
			t.Fatalf("source stuck at %d/%d", s.pos.Load(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

var incrSchema = stream.MustSchema(stream.F("a", stream.KindInt), stream.F("b", stream.KindInt))

// TestIncrementalCheckpointChainRestore drives the full incremental path:
// full checkpoint, two deltas (the Collector's contribution must actually
// be a delta), kill, restore base+deltas from a chain, run to completion —
// and the recovered record equals the uninterrupted run exactly.
func TestIncrementalCheckpointChainRestore(t *testing.T) {
	const total = 400
	build := func(open bool) (*Graph, *limitedSource, *Collector) {
		src := &limitedSource{schema: incrSchema, total: total}
		if open {
			src.limit.Store(total)
		}
		sink := NewCollector("sink", incrSchema)
		g := NewGraph()
		id := g.AddSource(src)
		g.Add(sink, From(id))
		return g, src, sink
	}

	// Uninterrupted reference.
	gRef, _, sinkRef := build(true)
	if err := gRef.Run(); err != nil {
		t.Fatal(err)
	}
	want := sinkRef.Tuples()
	if len(want) != total {
		t.Fatalf("reference run recorded %d tuples", len(want))
	}

	g1, src1, _ := build(false)
	runErr := make(chan error, 1)
	go func() { runErr <- g1.Run() }()
	chain := snapshot.NewChain(snapshot.NewMemory())
	ctx := context.Background()

	var snaps []*snapshot.Snapshot
	for i, stop := range []int64{250, 280, 310} {
		src1.limit.Store(stop)
		src1.waitPos(t, stop)
		var (
			snap *snapshot.Snapshot
			err  error
		)
		if i == 0 {
			snap, err = g1.Checkpoint(ctx)
		} else {
			snap, err = g1.CheckpointIncremental(ctx)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := chain.Put(snap); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
	g1.Kill()
	if err := <-runErr; !errors.Is(err, ErrKilled) {
		t.Fatalf("killed run returned %v", err)
	}

	// Shape assertions: the first snapshot is a base, the rest chain off
	// their predecessors, and the sink's later contributions are deltas
	// substantially smaller than its base state.
	if !snaps[0].IsFull() || snaps[1].Base != snaps[0].Epoch || snaps[2].Base != snaps[1].Epoch {
		t.Fatalf("chain lineage wrong: epochs %d/%d/%d bases %d/%d/%d",
			snaps[0].Epoch, snaps[1].Epoch, snaps[2].Epoch, snaps[0].Base, snaps[1].Base, snaps[2].Base)
	}
	sinkBase := snaps[0].Nodes[1]
	sinkDelta := snaps[2].Nodes[1]
	if sinkDelta.Delta != true {
		t.Fatal("collector contribution to incremental snapshot is not a delta")
	}
	if len(sinkDelta.State) >= len(sinkBase.State) {
		t.Fatalf("delta blob (%dB) not smaller than base (%dB)", len(sinkDelta.State), len(sinkBase.State))
	}

	// Restore the chain into a rebuilt plan and finish the stream.
	g2, _, sink2 := build(true)
	ok, err := g2.RestoreLatest(chain)
	if err != nil || !ok {
		t.Fatalf("RestoreLatest: ok=%v err=%v", ok, err)
	}
	if err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	got := sink2.Tuples()
	if len(got) != len(want) {
		t.Fatalf("recovered run recorded %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) || got[i].Seq != want[i].Seq {
			t.Fatalf("tuple %d diverged: %v vs %v", i, got[i], want[i])
		}
	}

	// A post-restore incremental checkpoint chains off the restored epoch
	// — but the plan has finished, so only validate the epoch resume via
	// the recorded statuses of g2 (none taken) and chain state.
	latest, okL, err := chain.LatestEpoch()
	if err != nil || !okL || latest != snaps[2].Epoch {
		t.Fatalf("chain latest = %d ok=%v err=%v", latest, okL, err)
	}
}

// slowCapSource is a two-phase source whose Encode blocks until released —
// the probe for "the barrier does not wait for encoding".
type slowCapSource struct {
	limitedSource
	encodeStarted chan struct{}
	release       chan struct{}
}

// CaptureState implements snapshot.TwoPhase.
func (s *slowCapSource) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	pos := s.pos.Load()
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		select {
		case s.encodeStarted <- struct{}{}:
		default:
		}
		<-s.release
		enc.PutInt64(pos)
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (s *slowCapSource) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(s, enc)
}

// TestEncodeRunsOffTheBarrier: while a checkpoint's phase-2 encoding is
// stuck, the stream must keep flowing — tuples emitted after the barrier
// reach the sink before the snapshot exists.
func TestEncodeRunsOffTheBarrier(t *testing.T) {
	src := &slowCapSource{
		limitedSource: limitedSource{schema: incrSchema, total: 100_000},
		encodeStarted: make(chan struct{}, 1),
		release:       make(chan struct{}),
	}
	src.limit.Store(1000)
	sink := NewCollector("sink", incrSchema)
	sink.Discard = true
	g := NewGraph()
	id := g.AddSource(src)
	g.Add(sink, From(id))
	runErr := make(chan error, 1)
	go func() { runErr <- g.Run() }()
	src.waitPos(t, 1000)

	chain := snapshot.NewChain(snapshot.NewMemory())
	epoch, err := g.CheckpointInto(chain, snapshot.CaptureFull)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-src.encodeStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("encode never started")
	}
	// Encoding is now blocked. The stream must still make progress past
	// the barrier.
	src.limit.Store(5000)
	src.waitPos(t, 5000)
	if _, ok := g.CheckpointStatus(epoch); ok {
		t.Fatal("checkpoint reported done while its encode is still blocked")
	}
	// A delta triggered while its parent is still encoding must chain to
	// that parent — the capture baseline — not to the last finished epoch.
	epoch2, err := g.CheckpointInto(chain, snapshot.CaptureDelta)
	if err != nil {
		t.Fatal(err)
	}
	close(src.release)
	g.WaitCheckpoints()
	st, ok := g.CheckpointStatus(epoch)
	if !ok || st.Err != nil || !st.Persisted {
		t.Fatalf("checkpoint status after release: ok=%v %+v", ok, st)
	}
	st2, ok := g.CheckpointStatus(epoch2)
	if !ok || st2.Err != nil || !st2.Persisted {
		t.Fatalf("delta checkpoint status: ok=%v %+v", ok, st2)
	}
	if st2.Base != epoch {
		t.Fatalf("delta base = %d, want still-encoding parent %d", st2.Base, epoch)
	}
	if snaps, err := chain.ChainFor(epoch2); err != nil || len(snaps) != 2 {
		t.Fatalf("delta chain does not resolve through its parent: %v (len %d)", err, len(snaps))
	}
	if st.BarrierHold > time.Second {
		t.Fatalf("barrier hold %v includes the blocked encode", st.BarrierHold)
	}
	g.Kill()
	if err := <-runErr; !errors.Is(err, ErrKilled) {
		t.Fatalf("killed run returned %v", err)
	}
}

// TestIncrementalUpgradesAfterCancel: a cancelled checkpoint may have
// drained some operators' changelogs, so the next incremental checkpoint
// must silently upgrade to a full snapshot.
func TestIncrementalUpgradesAfterCancel(t *testing.T) {
	src := &limitedSource{schema: incrSchema, total: 100_000}
	src.limit.Store(500)
	stuck := &stuckSource{schema: incrSchema, hold: make(chan struct{})}
	sink := NewCollector("sink", incrSchema)
	sink.Discard = true
	sink2 := NewCollector("sink2", incrSchema)
	sink2.Discard = true
	g := NewGraph()
	a := g.AddSource(src)
	b := g.AddSource(stuck)
	g.Add(sink, From(a))
	g.Add(sink2, From(b))
	runErr := make(chan error, 1)
	go func() { runErr <- g.Run() }()
	src.waitPos(t, 500)

	// Baseline full checkpoint while both sources can cut.
	ctx := context.Background()
	if _, err := g.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Park the second source inside Next so it can never cut, then let an
	// incremental checkpoint time out: src has already drained its
	// changelog into the lost capture.
	stuck.block.Store(true)
	for !stuck.blocked.Load() {
		time.Sleep(100 * time.Microsecond)
	}
	src.limit.Store(1000)
	ctx2, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := g.CheckpointIncremental(ctx2); err == nil {
		t.Fatal("checkpoint with a stuck source did not cancel")
	}
	close(stuck.hold)

	snap, err := g.CheckpointIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.IsFull() {
		t.Fatalf("post-cancel incremental checkpoint is a delta (base %d)", snap.Base)
	}
	// And the next one is a delta again.
	snap2, err := g.CheckpointIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Base != snap.Epoch {
		t.Fatalf("delta after recovery chains to %d, want %d", snap2.Base, snap.Epoch)
	}
	g.Kill()
	<-runErr
}

// TestAbandonedChainlessCheckpointBreaksLineage: a blocking
// CheckpointIncremental whose caller gives up after the capture phase has
// completed loses the assembled snapshot (nobody else holds it), so the
// next incremental checkpoint must upgrade to full instead of chaining to
// the epoch the caller never received.
func TestAbandonedChainlessCheckpointBreaksLineage(t *testing.T) {
	src := &slowCapSource{
		limitedSource: limitedSource{schema: incrSchema, total: 100_000},
		encodeStarted: make(chan struct{}, 4),
		release:       make(chan struct{}, 4),
	}
	src.limit.Store(500)
	sink := NewCollector("sink", incrSchema)
	sink.Discard = true
	g := NewGraph()
	id := g.AddSource(src)
	g.Add(sink, From(id))
	runErr := make(chan error, 1)
	go func() { runErr <- g.Run() }()
	src.waitPos(t, 500)

	src.release <- struct{}{}
	if _, err := g.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Delta whose encode never gets a token before the caller times out:
	// captures complete, the finisher hangs, the caller abandons.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := g.CheckpointIncremental(ctx); err == nil {
		t.Fatal("blocked encode did not time out")
	}
	src.release <- struct{}{}
	g.WaitCheckpoints()

	src.release <- struct{}{}
	snap, err := g.CheckpointIncremental(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !snap.IsFull() {
		t.Fatalf("checkpoint after abandoned epoch is a delta (base %d) — chains to a snapshot nobody holds", snap.Base)
	}
	g.Kill()
	<-runErr
}

// stuckSource emits nothing; when block is set it parks *inside* Next
// until hold closes, so no barrier can be injected.
type stuckSource struct {
	schema  stream.Schema
	block   atomic.Bool
	blocked atomic.Bool
	hold    chan struct{}
}

func (s *stuckSource) Name() string                { return "stuck" }
func (s *stuckSource) OutSchemas() []stream.Schema { return []stream.Schema{s.schema} }
func (s *stuckSource) Open(Context) error          { return nil }
func (s *stuckSource) Close(Context) error         { return nil }
func (s *stuckSource) ProcessFeedback(int, core.Feedback, Context) error {
	return nil
}

func (s *stuckSource) Next(Context) (bool, error) {
	if s.block.Load() {
		s.blocked.Store(true)
		<-s.hold
		s.block.Store(false)
	}
	time.Sleep(100 * time.Microsecond)
	return true, nil
}

// SaveState implements snapshot.Stater.
func (s *stuckSource) SaveState(enc *snapshot.Encoder) error { return nil }

// LoadState implements snapshot.Stater.
func (s *stuckSource) LoadState(dec *snapshot.Decoder) error { return nil }

// TestReaderSourceReplayFromOffset: the decoder's byte offset is the
// replay position — a run checkpointed mid-file, killed, and restored over
// a fresh reader of the same bytes produces the identical record.
func TestReaderSourceReplayFromOffset(t *testing.T) {
	var csv strings.Builder
	csv.WriteString("# fixture with comments and blank lines\n")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&csv, "%d,%d\n", i, i*3)
		if i%97 == 0 {
			csv.WriteString("\n# interior comment\n")
		}
	}
	data := csv.String()
	mk := func() *ReaderSource {
		return NewReaderSource("rdr", incrSchema, strings.NewReader(data))
	}

	run := func(src *ReaderSource, restoreFrom *snapshot.Snapshot, throttle bool) (*Collector, *Graph, chan error) {
		sink := NewCollector("sink", incrSchema)
		if throttle {
			sink.OnTuple = func(stream.Tuple) { time.Sleep(20 * time.Microsecond) }
		}
		g := NewGraph()
		id := g.AddSource(src)
		g.Add(sink, From(id))
		if restoreFrom != nil {
			if err := g.RestoreSnapshot(restoreFrom); err != nil {
				t.Fatal(err)
			}
		}
		errCh := make(chan error, 1)
		go func() { errCh <- g.Run() }()
		return sink, g, errCh
	}

	// Uninterrupted reference.
	sinkRef, _, errRef := run(mk(), nil, false)
	if err := <-errRef; err != nil {
		t.Fatal(err)
	}
	want := sinkRef.Tuples()
	if len(want) != 3000 {
		t.Fatalf("reference decoded %d tuples", len(want))
	}

	// Interrupted run: checkpoint somewhere in the middle of the file.
	sink1, g1, err1 := run(mk(), nil, true)
	for deadline := time.Now().Add(10 * time.Second); sink1.Count() < 700; {
		if time.Now().After(deadline) {
			t.Fatal("sink stuck")
		}
		time.Sleep(100 * time.Microsecond)
	}
	snap, err := g1.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g1.Kill()
	if err := <-err1; err != nil && !errors.Is(err, ErrKilled) {
		t.Fatal(err)
	}

	sink2, _, err2 := run(mk(), snap, false)
	if err := <-err2; err != nil {
		t.Fatal(err)
	}
	got := sink2.Tuples()
	if len(got) != len(want) {
		t.Fatalf("recovered run decoded %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) || got[i].Seq != want[i].Seq {
			t.Fatalf("tuple %d diverged: %v vs %v", i, got[i], want[i])
		}
	}
}
