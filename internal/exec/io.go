package exec

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

// SliceSource replays a fixed sequence of items (tuples and punctuation).
// It is the workhorse source of tests and examples. If FeedbackAware is
// set, tuples matching a received assumed-feedback pattern are skipped at
// the source — the strongest possible exploitation.
type SliceSource struct {
	SourceName string
	Schema     stream.Schema
	Items      []queue.Item
	// Tuples is the tuple fast path: its tuples are replayed directly,
	// without materializing a queue.Item per element, before anything in
	// Items. NewSliceSource fills it; callers may still append
	// punctuation to Items and it plays after the tuples.
	Tuples        []stream.Tuple
	FeedbackAware bool
	// BatchSize items are emitted per Next call (default 16).
	BatchSize int

	pos      int
	guards   *core.GuardTable
	received []core.Feedback
	skipped  int64
	// batch backs the run-of-tuples fast path in Next; transient scratch,
	// never part of captured state.
	batch []stream.Tuple
}

// NewSliceSource builds a source over tuples only.
func NewSliceSource(name string, schema stream.Schema, tuples ...stream.Tuple) *SliceSource {
	return &SliceSource{SourceName: name, Schema: schema, Tuples: tuples}
}

// Name implements Source.
func (s *SliceSource) Name() string { return s.SourceName }

// OutSchemas implements Source.
func (s *SliceSource) OutSchemas() []stream.Schema { return []stream.Schema{s.Schema} }

// Open implements Source.
func (s *SliceSource) Open(Context) error {
	s.guards = core.NewGuardTable(s.Schema.Arity())
	return nil
}

// Next implements Source.
func (s *SliceSource) Next(ctx Context) (bool, error) {
	n := s.BatchSize
	if n <= 0 {
		n = 16
	}
	// The logical stream is Tuples followed by Items; pos indexes the
	// concatenation. A feedback-unaware source never suppresses, so runs of
	// tuples go downstream in one batched emit when the runtime offers it.
	be, _ := ctx.(BatchEmitter)
	batch := be != nil && !s.FeedbackAware
	total := len(s.Tuples) + len(s.Items)
	i := 0
	if batch && s.pos < len(s.Tuples) {
		end := s.pos + n
		if end > len(s.Tuples) {
			end = len(s.Tuples)
		}
		be.EmitBatch(s.Tuples[s.pos:end])
		i = end - s.pos
		s.pos = end
	}
	for ; i < n && s.pos < len(s.Tuples); i++ {
		t := s.Tuples[s.pos]
		s.pos++
		if s.FeedbackAware && s.guards.Suppress(t) {
			s.skipped++
			continue
		}
		ctx.Emit(t)
	}
	for i < n && s.pos < total {
		base := s.pos - len(s.Tuples)
		if batch && s.Items[base].Kind == queue.ItemTuple {
			lim := base + (n - i)
			if lim > len(s.Items) {
				lim = len(s.Items)
			}
			buf := s.batch[:0]
			j := base
			for ; j < lim && s.Items[j].Kind == queue.ItemTuple; j++ {
				buf = append(buf, s.Items[j].Tuple)
			}
			be.EmitBatch(buf)
			s.batch = buf[:0]
			i += j - base
			s.pos += j - base
			continue
		}
		it := s.Items[base]
		s.pos++
		i++
		switch it.Kind {
		case queue.ItemTuple:
			if s.FeedbackAware && s.guards.Suppress(it.Tuple) {
				s.skipped++
				continue
			}
			ctx.Emit(it.Tuple)
		case queue.ItemPunct:
			s.guards.ObservePunct(*it.Punct)
			ctx.EmitPunct(*it.Punct)
		}
	}
	return s.pos < total, nil
}

// ProcessFeedback implements Source: assumed feedback installs a guard when
// the source is feedback-aware.
func (s *SliceSource) ProcessFeedback(_ int, f core.Feedback, _ Context) error {
	s.received = append(s.received, f)
	if s.FeedbackAware && f.Intent == core.Assumed {
		s.guards.Install(f)
	}
	return nil
}

// Close implements Source.
func (s *SliceSource) Close(Context) error { return nil }

// CaptureState implements snapshot.TwoPhase: the source's durable state is
// its replay position plus its feedback guards, so a restored source
// resumes exactly behind the barrier it cut — the tuples downstream did
// not capture are regenerated, nothing is replayed twice.
func (s *SliceSource) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	pos, skipped := s.pos, s.skipped
	guards := snapshot.GuardsView(s.guards)
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		enc.PutInt(pos)
		enc.PutInt64(skipped)
		snapshot.PutGuardsView(enc, guards)
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (s *SliceSource) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(s, enc)
}

// LoadState implements snapshot.Stater.
func (s *SliceSource) LoadState(dec *snapshot.Decoder) error {
	s.pos = dec.GetInt()
	s.skipped = dec.GetInt64()
	s.guards = snapshot.GetGuards(dec, s.Schema.Arity())
	if total := len(s.Tuples) + len(s.Items); s.pos < 0 || s.pos > total {
		return fmt.Errorf("exec: slice source %q: restored position %d outside replay log of %d items (source data changed?)",
			s.SourceName, s.pos, total)
	}
	return dec.Err()
}

// Received returns the feedback the source has seen (diagnostics).
func (s *SliceSource) Received() []core.Feedback { return s.received }

// Skipped returns how many tuples guards suppressed at the source.
func (s *SliceSource) Skipped() int64 { return s.skipped }

// ReaderSource streams tuples decoded from an io.Reader in the text codec
// (one comma-separated tuple per line; see stream.Decoder). It can emit
// progress punctuation on an ordered attribute and exploits assumed
// feedback when FeedbackAware.
type ReaderSource struct {
	SourceName string
	Schema     stream.Schema
	R          io.Reader
	// PunctAttr, when ≥ 0, emits […, ≤v, …] punctuation on that attribute
	// every PunctEvery tuples (assumes the input is ordered on it).
	PunctAttr  int
	PunctEvery int
	// FeedbackAware lets assumed feedback suppress decoded tuples.
	FeedbackAware bool

	dec     *stream.Decoder
	guards  *core.GuardTable
	count   int
	lastV   stream.Value
	skipped int64
	// base is the byte offset the current decoder started at (non-zero
	// after a restore seeked R); base+dec.Offset() is the replay position.
	base int64
}

// NewReaderSource decodes tuples of the given schema from r.
func NewReaderSource(name string, schema stream.Schema, r io.Reader) *ReaderSource {
	return &ReaderSource{SourceName: name, Schema: schema, R: r, PunctAttr: -1}
}

// Name implements Source.
func (s *ReaderSource) Name() string { return s.SourceName }

// OutSchemas implements Source.
func (s *ReaderSource) OutSchemas() []stream.Schema { return []stream.Schema{s.Schema} }

// Open implements Source.
func (s *ReaderSource) Open(Context) error {
	s.dec = stream.NewDecoder(s.R, s.Schema)
	s.guards = core.NewGuardTable(s.Schema.Arity())
	s.base = 0
	if s.PunctEvery <= 0 {
		s.PunctEvery = 100
	}
	return nil
}

// Next implements Source: one tuple per call.
func (s *ReaderSource) Next(ctx Context) (bool, error) {
	t, err := s.dec.Decode()
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	s.count++
	t.Seq = int64(s.count)
	if s.PunctAttr >= 0 {
		s.lastV = t.At(s.PunctAttr)
		if s.count%s.PunctEvery == 0 && !s.lastV.IsNull() {
			e := punct.NewEmbedded(punct.OnAttr(s.Schema.Arity(), s.PunctAttr, punct.Le(s.lastV)))
			s.guards.ObservePunct(e)
			ctx.EmitPunct(e)
		}
	}
	if s.FeedbackAware && s.guards.Suppress(t) {
		s.skipped++
		return true, nil
	}
	ctx.Emit(t)
	return true, nil
}

// ProcessFeedback implements Source.
func (s *ReaderSource) ProcessFeedback(_ int, f core.Feedback, _ Context) error {
	if s.FeedbackAware && f.Intent == core.Assumed {
		s.guards.Install(f)
	}
	return nil
}

// Close implements Source.
func (s *ReaderSource) Close(Context) error { return nil }

// CaptureState implements snapshot.TwoPhase: the replay position is the
// exact byte offset of consumed input (plus tuple count for sequence-number
// continuity), so a restored source re-reads from the cut onwards — byte
// identical to the uninterrupted run for any io.ReadSeeker input.
func (s *ReaderSource) CaptureState(snapshot.CaptureMode) (snapshot.Capture, error) {
	offset := s.base + s.dec.Offset()
	count, skipped := s.count, s.skipped
	guards := snapshot.GuardsView(s.guards)
	return snapshot.Capture{Encode: func(enc *snapshot.Encoder) error {
		enc.PutInt64(offset)
		enc.PutInt(count)
		enc.PutInt64(skipped)
		snapshot.PutGuardsView(enc, guards)
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (s *ReaderSource) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(s, enc)
}

// LoadState implements snapshot.Stater: R must be an io.Seeker (a file,
// not a pipe) unless the saved position is 0.
func (s *ReaderSource) LoadState(dec *snapshot.Decoder) error {
	offset := dec.GetInt64()
	s.count = dec.GetInt()
	s.skipped = dec.GetInt64()
	s.guards = snapshot.GetGuards(dec, s.Schema.Arity())
	if err := dec.Err(); err != nil {
		return err
	}
	if offset > 0 {
		seeker, ok := s.R.(io.Seeker)
		if !ok {
			return fmt.Errorf("exec: reader source %q: restore needs a seekable reader (%T is not)", s.SourceName, s.R)
		}
		if _, err := seeker.Seek(offset, io.SeekStart); err != nil {
			return fmt.Errorf("exec: reader source %q: seek to replay position %d: %w", s.SourceName, offset, err)
		}
		s.dec = stream.NewDecoder(s.R, s.Schema)
	}
	s.base = offset
	return nil
}

// Skipped reports tuples suppressed by feedback before emission.
func (s *ReaderSource) Skipped() int64 { return s.skipped }

// Collector is a sink that records everything it receives. It is safe to
// read after Graph.Run returns; a mutex also allows sampling mid-run.
//
//pace:allow-nonote deltas are append-suffixes of the received log; there is no keyed state to changelog
type Collector struct {
	SinkName string
	Schema   stream.Schema
	// OnTuple, if set, is invoked synchronously for each tuple (used by
	// experiment harnesses to timestamp arrivals).
	OnTuple func(t stream.Tuple)
	// Discard drops tuples after OnTuple instead of recording them
	// (keeps million-tuple benchmark runs allocation-flat).
	Discard bool
	// Limit, when positive, asks the upstream plan to shut down after
	// this many tuples have arrived — the paper's Example 4 poll-based
	// result production: results are produced only while someone wants
	// them.
	Limit int64

	mu       sync.Mutex
	items    []queue.Item
	tuples   atomic.Int64
	shutdown bool
	// capPos/capOn track how much of items previous captures covered, so
	// delta captures ship only the suffix (items is append-only).
	capPos int
	capOn  bool
}

// NewCollector builds a named sink.
func NewCollector(name string, schema stream.Schema) *Collector {
	return &Collector{SinkName: name, Schema: schema}
}

// Name implements Operator.
func (c *Collector) Name() string { return c.SinkName }

// InSchemas implements Operator.
func (c *Collector) InSchemas() []stream.Schema { return []stream.Schema{c.Schema} }

// OutSchemas implements Operator.
func (c *Collector) OutSchemas() []stream.Schema { return nil }

// Open implements Operator.
func (c *Collector) Open(Context) error { return nil }

// ProcessTuple implements Operator.
func (c *Collector) ProcessTuple(_ int, t stream.Tuple, ctx Context) error {
	if c.OnTuple != nil {
		c.OnTuple(t)
	}
	n := c.tuples.Add(1)
	if c.Discard && c.Limit <= 0 {
		// Pure-counter fast path: nothing recorded, no shutdown bookkeeping,
		// so the mutex is not needed.
		return nil
	}
	c.mu.Lock()
	if !c.Discard {
		c.items = append(c.items, queue.TupleItem(t))
	}
	askShutdown := c.Limit > 0 && n >= c.Limit && !c.shutdown
	if askShutdown {
		c.shutdown = true
	}
	c.mu.Unlock()
	if askShutdown {
		ctx.ShutdownUpstream(0)
	}
	return nil
}

// ProcessTupleBatch implements TupleBatcher. A pure-counter sink (Discard,
// no callback, no Limit) absorbs a whole run with one atomic add; anything
// that needs per-tuple behavior falls back to the per-tuple path.
func (c *Collector) ProcessTupleBatch(input int, items []queue.Item, ctx Context) error {
	if c.OnTuple == nil && c.Discard && c.Limit <= 0 {
		c.tuples.Add(int64(len(items)))
		return nil
	}
	for i := range items {
		if err := c.ProcessTuple(input, items[i].Tuple, ctx); err != nil {
			return err
		}
	}
	return nil
}

// ProcessPunct implements Operator.
func (c *Collector) ProcessPunct(_ int, e punct.Embedded, _ Context) error {
	c.mu.Lock()
	if !c.Discard {
		c.items = append(c.items, queue.PunctItem(e))
	}
	c.mu.Unlock()
	return nil
}

// ProcessFeedback implements Operator (sinks receive none).
func (c *Collector) ProcessFeedback(int, core.Feedback, Context) error { return nil }

// ProcessEOS implements Operator.
func (c *Collector) ProcessEOS(int, Context) error { return nil }

// Close implements Operator.
func (c *Collector) Close(Context) error { return nil }

// CaptureState implements snapshot.TwoPhase: everything received up to the
// cut is part of the sink's state, so a restored run appends the
// regenerated post-cut stream to the pre-cut record — the union is
// exactly-once. Deltas ship only the items recorded since the previous
// capture; the view aliases the append-only record, whose captured prefix
// is never mutated in place.
func (c *Collector) CaptureState(mode snapshot.CaptureMode) (snapshot.Capture, error) {
	c.mu.Lock()
	n := len(c.items)
	delta := mode == snapshot.CaptureDelta && c.capOn
	from := 0
	if delta {
		from = c.capPos
	}
	view := c.items[from:n:n]
	c.capPos, c.capOn = n, true
	c.mu.Unlock()
	count := c.tuples.Load()
	return snapshot.Capture{Delta: delta, Encode: func(enc *snapshot.Encoder) error {
		enc.PutInt64(count)
		enc.PutInt(len(view))
		for _, it := range view {
			switch it.Kind {
			case queue.ItemTuple:
				enc.PutBool(true)
				enc.PutTuple(it.Tuple)
			case queue.ItemPunct:
				enc.PutBool(false)
				enc.PutPattern(it.Punct.Pattern)
			default:
				return fmt.Errorf("exec: collector %q: unexpected recorded item kind %d", c.SinkName, it.Kind)
			}
		}
		return nil
	}}, nil
}

// SaveState implements snapshot.Stater.
func (c *Collector) SaveState(enc *snapshot.Encoder) error {
	return snapshot.EncodeCapture(c, enc)
}

func decodeCollectorItems(dec *snapshot.Decoder) ([]queue.Item, int64) {
	count := dec.GetInt64()
	n := dec.GetInt()
	items := make([]queue.Item, 0, dec.CountHint(n))
	for i := 0; i < n && dec.Err() == nil; i++ {
		if dec.GetBool() {
			items = append(items, queue.TupleItem(dec.GetTuple()))
		} else {
			items = append(items, queue.PunctItem(punct.NewEmbedded(dec.GetPattern())))
		}
	}
	return items, count
}

// LoadState implements snapshot.Stater.
func (c *Collector) LoadState(dec *snapshot.Decoder) error {
	items, count := decodeCollectorItems(dec)
	if err := dec.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.items = items
	c.capPos, c.capOn = len(items), true
	c.mu.Unlock()
	c.tuples.Store(count)
	return nil
}

// ApplyDelta implements snapshot.DeltaStater: the delta's items append to
// the record and its count replaces the total.
func (c *Collector) ApplyDelta(dec *snapshot.Decoder) error {
	items, count := decodeCollectorItems(dec)
	if err := dec.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.items = append(c.items, items...)
	c.capPos = len(c.items)
	c.mu.Unlock()
	c.tuples.Store(count)
	return nil
}

// Items returns a copy of everything received.
func (c *Collector) Items() []queue.Item {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]queue.Item(nil), c.items...)
}

// Tuples returns only the received tuples, in arrival order.
func (c *Collector) Tuples() []stream.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ts []stream.Tuple
	for _, it := range c.items {
		if it.Kind == queue.ItemTuple {
			ts = append(ts, it.Tuple)
		}
	}
	return ts
}

// Count returns the number of tuples received so far.
func (c *Collector) Count() int64 { return c.tuples.Load() }
