package exec

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/queue"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// NodeID identifies a node added to a Graph.
type NodeID int

// Port names one output port of a node, for wiring.
type Port struct {
	Node NodeID
	Out  int
}

// From is shorthand for a node's output port 0.
func From(id NodeID) Port { return Port{Node: id} }

// FromPort names an explicit output port.
func FromPort(id NodeID, out int) Port { return Port{Node: id, Out: out} }

type node struct {
	id     NodeID
	op     Operator // nil for sources
	src    Source   // nil for operators
	inputs []Port   // upstream ports feeding each input, in order

	// Wired during prepare():
	inConns  []*queue.Conn // consumer side
	outConns []*queue.Conn // producer side

	// nm holds the node's hot-path telemetry counters; nil unless a
	// telemetry sink is attached (telemetry.go).
	nm *telemetry.NodeMetrics
}

func (n *node) name() string {
	if n.src != nil {
		return n.src.Name()
	}
	return n.op.Name()
}

func (n *node) numOutputs() int {
	if n.src != nil {
		return len(n.src.OutSchemas())
	}
	return len(n.op.OutSchemas())
}

// edgeKey identifies the edge leaving one output port.
type edgeKey struct {
	node NodeID
	out  int
}

// consumerRef locates the single consumer of an edge.
type consumerRef struct {
	node  *node
	input int
}

// Graph is a query plan: a DAG of sources and operators. Build it with
// AddSource/Add, then execute with Run.
type Graph struct {
	nodes     []*node
	opts      queue.Options
	ctrlEvery int // items between control rechecks (0 = default)
	log       io.Writer
	prepared  bool
	err       error // first wiring error, surfaced by Run

	// consumers maps each wired edge to its (unique) consumer; built once
	// during prepare so Report and Edges need no per-edge node rescans.
	consumers map[edgeKey]consumerRef
	// labels annotates edges (e.g. "part=2/4" on partition edges); set any
	// time before Run via LabelEdge.
	labels map[edgeKey]string

	// tel is the optional telemetry sink (telemetry.go); set before Run.
	tel *telemetry.Telemetry

	// Checkpoint coordination (checkpoint.go). chkMu guards the rare
	// lifecycle events — checkpoint creation, node acks, node exits; the
	// steady state pays only the pendingChk atomic load in source loops.
	chkMu       sync.Mutex
	running     bool
	failCh      chan struct{} // Run's abort channel (closed on error/Kill)
	killFn      func(error)
	chkEpoch    int64
	activeChk   *inflight
	pendingChk  atomic.Pointer[inflight]
	liveNodes   map[NodeID]bool
	exitClean   map[NodeID]bool
	staged      map[NodeID]stagedState // Restore: per-node base+delta blobs
	stagedNames map[NodeID]string      // Restore: node names for drift checks
	// wireBarrier marks sources whose cut is driven by in-band wire
	// barriers (dist.go): the runner must not cut them at an arbitrary
	// poll position. Written before Run (NewDistFollower), read-only after.
	wireBarrier map[NodeID]bool

	// Two-phase checkpointing (checkpoint.go): encode/persist run on
	// background goroutines after the barrier releases. chkWG tracks them;
	// lastFinish chains them so chain writes land in epoch order.
	chkWG         sync.WaitGroup
	lastFinish    chan struct{}
	lastCapEpoch  int64 // newest epoch whose captures completed (delta parent)
	lastDoneEpoch int64 // newest fully assembled epoch
	chainBroken   bool  // a capture set was lost; next delta upgrades to full
	statuses      []CheckpointStatus
}

// NewGraph creates an empty plan with default queue options.
func NewGraph() *Graph { return &Graph{opts: queue.DefaultOptions()} }

// markWireBarrier registers a source as wire-barrier-driven; must be
// called before Run.
func (g *Graph) markWireBarrier(id NodeID) {
	if g.wireBarrier == nil {
		g.wireBarrier = make(map[NodeID]bool)
	}
	g.wireBarrier[id] = true
}

// SetQueueOptions overrides the inter-operator connection configuration for
// edges wired afterwards (benchmarks use this to ablate page size).
func (g *Graph) SetQueueOptions(opts queue.Options) { g.opts = opts }

// SetControlInterval sets K, the number of page items an operator
// processes between control-queue rechecks (default
// DefaultControlInterval). Smaller K tightens the bound on how far
// feedback can trail the tuple it should overtake; K=1 restores the
// per-item recheck of the original §5 loop.
func (g *Graph) SetControlInterval(k int) { g.ctrlEvery = k }

// SetLog directs operator diagnostics to w.
func (g *Graph) SetLog(w io.Writer) { g.log = w }

// AddSource adds a self-driving source node.
func (g *Graph) AddSource(src Source) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, &node{id: id, src: src})
	return id
}

// Add adds an operator node fed by the given upstream ports (one per input
// port, in order). Wiring errors are deferred to Run.
func (g *Graph) Add(op Operator, inputs ...Port) NodeID {
	id := NodeID(len(g.nodes))
	n := &node{id: id, op: op, inputs: inputs}
	g.nodes = append(g.nodes, n)
	if g.err == nil {
		g.err = g.checkAdd(n)
	}
	return id
}

func (g *Graph) checkAdd(n *node) error {
	want := len(n.op.InSchemas())
	if len(n.inputs) != want {
		return fmt.Errorf("exec: operator %q wants %d inputs, wired %d", n.op.Name(), want, len(n.inputs))
	}
	for i, p := range n.inputs {
		if int(p.Node) < 0 || int(p.Node) >= len(g.nodes)-1 {
			return fmt.Errorf("exec: operator %q input %d wired to unknown node %d", n.op.Name(), i, p.Node)
		}
		up := g.nodes[p.Node]
		if p.Out < 0 || p.Out >= up.numOutputs() {
			return fmt.Errorf("exec: operator %q input %d wired to %q output %d, which has %d outputs",
				n.op.Name(), i, up.name(), p.Out, up.numOutputs())
		}
		var upSchemas = up.outSchemas()
		if !upSchemas[p.Out].Equal(n.op.InSchemas()[i]) {
			return fmt.Errorf("exec: schema mismatch: %q output %d is %s but %q input %d wants %s",
				up.name(), p.Out, upSchemas[p.Out], n.op.Name(), i, n.op.InSchemas()[i])
		}
	}
	return nil
}

func (n *node) outSchemas() []stream.Schema {
	if n.src != nil {
		return n.src.OutSchemas()
	}
	return n.op.OutSchemas()
}

// prepare wires connections: one Conn per (producer output port → consumer
// input port) edge. Every output port must be consumed exactly once;
// explicit DUPLICATE operators provide fan-out.
func (g *Graph) prepare() error {
	if g.prepared {
		return fmt.Errorf("exec: graph already run")
	}
	if g.err != nil {
		return g.err
	}
	if err := g.checkStaged(); err != nil {
		return err
	}
	g.prepared = true
	conns := map[edgeKey]*queue.Conn{}
	g.consumers = make(map[edgeKey]consumerRef)
	for _, n := range g.nodes {
		n.outConns = make([]*queue.Conn, n.numOutputs())
	}
	for _, n := range g.nodes {
		n.inConns = make([]*queue.Conn, len(n.inputs))
		for i, p := range n.inputs {
			k := edgeKey{p.Node, p.Out}
			if conns[k] != nil {
				return fmt.Errorf("exec: output %d of %q consumed twice (insert a DUPLICATE operator for fan-out)",
					p.Out, g.nodes[p.Node].name())
			}
			c := queue.New(g.opts)
			conns[k] = c
			g.consumers[k] = consumerRef{node: n, input: i}
			n.inConns[i] = c
			g.nodes[p.Node].outConns[p.Out] = c
		}
	}
	for _, n := range g.nodes {
		for out, c := range n.outConns {
			if c == nil {
				return fmt.Errorf("exec: output %d of %q is not consumed (add a sink)", out, n.name())
			}
		}
	}
	return nil
}

// LabelEdge annotates the edge leaving the given output port (partitioned
// plans label split→replica and replica→merge edges with their partition
// index). Call any time before or after Run; Report and Edges surface the
// label.
func (g *Graph) LabelEdge(p Port, label string) {
	if g.labels == nil {
		g.labels = make(map[edgeKey]string)
	}
	g.labels[edgeKey{p.Node, p.Out}] = label
}

// EdgeInfo describes one wired edge of the plan: producer output port,
// consumer input port, optional label, and traffic counters.
type EdgeInfo struct {
	Producer string
	Out      int
	Consumer string
	Input    int
	Label    string
	Stats    queue.Stats
	// Suppressed and PunctDropped report what the consumer did with the
	// edge's traffic — tuples its guard tables suppressed and punctuation
	// it could not relay — matching what fuse.Fused exposes per
	// constituent. Populated only for consumers whose counters are
	// scrape-safe atomics (Select/Project/Map and fused kernels).
	Suppressed   int64
	PunctDropped int64
	// Depth is the number of pages currently buffered in the edge queue, a
	// point-in-time backpressure gauge.
	Depth int
}

// suppressionReporter / punctDropReporter are the consumer-side accounting
// surfaces Edges discovers by assertion.
type suppressionReporter interface{ SuppressedTuples() int64 }
type punctDropReporter interface{ PunctDropped() int64 }

// Edges returns every wired edge with its traffic counters, in node order.
// Valid after Run (nil before prepare; counters all-zero before Run ends).
func (g *Graph) Edges() []EdgeInfo {
	var out []EdgeInfo
	for _, n := range g.nodes {
		for o, c := range n.outConns {
			if c == nil {
				continue
			}
			k := edgeKey{n.id, o}
			e := EdgeInfo{Producer: n.name(), Out: o, Label: g.labels[k], Stats: c.Stats(), Depth: c.Depth()}
			if ref, ok := g.consumers[k]; ok {
				e.Consumer = ref.node.name()
				e.Input = ref.input
				if ref.node.op != nil {
					if s, ok := ref.node.op.(suppressionReporter); ok {
						e.Suppressed = s.SuppressedTuples()
					}
					if p, ok := ref.node.op.(punctDropReporter); ok {
						e.PunctDropped = p.PunctDropped()
					}
				}
			} else {
				e.Consumer = "?"
			}
			out = append(out, e)
		}
	}
	return out
}

// Report writes a per-edge traffic summary of the plan: one line per wired
// connection with tuple/punctuation/page/control counts, using the
// edge→consumer map built in prepare. Valid after Run (all-zero before).
func (g *Graph) Report(w io.Writer) {
	for _, e := range g.Edges() {
		consumer := fmt.Sprintf("%s[%d]", e.Consumer, e.Input)
		label := ""
		if e.Label != "" {
			label = "  " + e.Label
		}
		st := e.Stats
		fmt.Fprintf(w, "%s[%d] -> %-16s tuples=%-8d puncts=%-6d pages=%-6d punct-flushes=%-6d controls=%d suppressed=%d%s\n",
			e.Producer, e.Out, consumer, st.Tuples, st.Puncts, st.Pages, st.PunctFlushes, st.Controls, e.Suppressed, label)
	}
}

// EdgeStats returns traffic counters for the edge leaving the given output
// port; valid after Run.
func (g *Graph) EdgeStats(p Port) (queue.Stats, error) {
	if int(p.Node) < 0 || int(p.Node) >= len(g.nodes) {
		return queue.Stats{}, fmt.Errorf("exec: unknown node %d", p.Node)
	}
	n := g.nodes[p.Node]
	if p.Out < 0 || p.Out >= len(n.outConns) || n.outConns[p.Out] == nil {
		return queue.Stats{}, fmt.Errorf("exec: node %q output %d not wired", n.name(), p.Out)
	}
	return n.outConns[p.Out].Stats(), nil
}
