package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

// gatedSource replays tuples one per Next, idling (without blocking the
// runner loop) once it reaches gateAt until the gate is opened. It lets
// tests checkpoint a quiescent graph at a deterministic stream position.
type gatedSource struct {
	name   string
	schema stream.Schema
	tuples []stream.Tuple
	gateAt int
	gate   atomic.Bool

	pos     int
	emitted atomic.Int64
}

func (s *gatedSource) Name() string                { return s.name }
func (s *gatedSource) OutSchemas() []stream.Schema { return []stream.Schema{s.schema} }
func (s *gatedSource) Open(Context) error          { return nil }
func (s *gatedSource) Close(Context) error         { return nil }
func (s *gatedSource) ProcessFeedback(int, core.Feedback, Context) error {
	return nil
}

func (s *gatedSource) Next(ctx Context) (bool, error) {
	if s.pos >= len(s.tuples) {
		return false, nil
	}
	if s.pos == s.gateAt && !s.gate.Load() {
		time.Sleep(time.Millisecond)
		return true, nil
	}
	ctx.Emit(s.tuples[s.pos])
	s.pos++
	s.emitted.Add(1)
	return true, nil
}

// SaveState implements snapshot.Stater.
func (s *gatedSource) SaveState(enc *snapshot.Encoder) error {
	enc.PutInt(s.pos)
	return nil
}

// LoadState implements snapshot.Stater.
func (s *gatedSource) LoadState(dec *snapshot.Decoder) error {
	s.pos = dec.GetInt()
	return dec.Err()
}

// TestCheckpointRestoreQuiescent checkpoints a graph idling at a known
// stream position, kills it, and restores into a rebuilt plan: the union of
// pre-cut and post-restore output must be the full stream, exactly once.
func TestCheckpointRestoreQuiescent(t *testing.T) {
	const total, gateAt = 100, 60
	tuples := make([]stream.Tuple, total)
	for i := range tuples {
		tuples[i] = intTuple(int64(i))
	}

	build := func(gateOpen bool) (*Graph, *gatedSource, *Collector) {
		g := NewGraph()
		// Page size 1 so every emitted tuple reaches the sink immediately
		// (the gate pauses the source below one default page).
		g.SetQueueOptions(queue.Options{PageSize: 1, FlushOnPunct: true})
		src := &gatedSource{name: "gated", schema: oneInt, tuples: tuples, gateAt: gateAt}
		src.gate.Store(gateOpen)
		sid := g.AddSource(src)
		mid := g.Add(&passthrough{name: "mid"}, From(sid))
		sink := NewCollector("sink", oneInt)
		g.Add(sink, From(mid))
		return g, src, sink
	}

	g1, src1, sink1 := build(false)
	runErr := make(chan error, 1)
	go func() { runErr <- g1.Run() }()

	// Wait for the plan to quiesce at the gate.
	for deadline := time.Now().Add(10 * time.Second); sink1.Count() < gateAt; {
		if time.Now().After(deadline) {
			t.Fatalf("sink stuck at %d/%d", sink1.Count(), gateAt)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	snap, err := g1.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if src1.pos != gateAt {
		t.Fatalf("source cut at %d, want %d", src1.pos, gateAt)
	}

	// Crash: no data after the checkpoint may survive outside the snapshot.
	g1.Kill()
	if err := <-runErr; !errors.Is(err, ErrKilled) {
		t.Fatalf("Run after Kill = %v, want ErrKilled", err)
	}

	// Round-trip through a backend, then restore into a rebuilt plan.
	backend := snapshot.NewMemory()
	if err := snap.Save(backend, "ckpt"); err != nil {
		t.Fatal(err)
	}
	g2, src2, sink2 := build(true)
	if err := g2.Restore(backend, "ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	if src2.emitted.Load() != total-gateAt {
		t.Fatalf("restored source emitted %d tuples, want %d", src2.emitted.Load(), total-gateAt)
	}
	got := sink2.Tuples()
	if len(got) != total {
		t.Fatalf("restored sink has %d tuples, want %d (0 lost, 0 duplicated)", len(got), total)
	}
	for i, tp := range got {
		if tp.At(0).AsInt() != int64(i) {
			t.Fatalf("tuple %d = %v after restore", i, tp)
		}
	}
}

// summing2 is a 2-input blocking operator: it folds every input value into
// one running sum and emits a single total at EOS. Any barrier
// misalignment (a post-barrier tuple folded before the cut, or a pre-cut
// tuple replayed after restore) shows up as a wrong total.
type summing2 struct {
	Base
	sum     int64
	perIn   [2]int64
	openIns int
}

func (s *summing2) Name() string                { return "sum2" }
func (s *summing2) InSchemas() []stream.Schema  { return []stream.Schema{oneInt, oneInt} }
func (s *summing2) OutSchemas() []stream.Schema { return []stream.Schema{oneInt} }
func (s *summing2) Open(Context) error {
	s.openIns = 2
	return nil
}
func (s *summing2) ProcessTuple(input int, t stream.Tuple, _ Context) error {
	s.sum += t.At(0).AsInt()
	s.perIn[input]++
	return nil
}
func (s *summing2) ProcessEOS(int, Context) error {
	s.openIns--
	return nil
}
func (s *summing2) Close(ctx Context) error {
	if s.openIns == 0 {
		ctx.Emit(stream.NewTuple(stream.Int(s.sum)))
	}
	return nil
}

// SaveState implements snapshot.Stater.
func (s *summing2) SaveState(enc *snapshot.Encoder) error {
	enc.PutInt64(s.sum)
	enc.PutInt64(s.perIn[0])
	enc.PutInt64(s.perIn[1])
	return nil
}

// LoadState implements snapshot.Stater.
func (s *summing2) LoadState(dec *snapshot.Decoder) error {
	s.sum = dec.GetInt64()
	s.perIn[0] = dec.GetInt64()
	s.perIn[1] = dec.GetInt64()
	return dec.Err()
}

// TestCheckpointAlignsMultiInput checkpoints a 2-input stateful operator
// mid-stream under full concurrency (run with -race): the barrier must be
// aligned across both inputs, so kill + restore conserves the exact total.
func TestCheckpointAlignsMultiInput(t *testing.T) {
	const n = 20_000
	mk := func() []stream.Tuple {
		ts := make([]stream.Tuple, n)
		for i := range ts {
			ts[i] = intTuple(1)
		}
		return ts
	}
	build := func() (*Graph, *Collector) {
		g := NewGraph()
		a := &SliceSource{SourceName: "a", Schema: oneInt, Tuples: mk(), BatchSize: 8}
		b := &SliceSource{SourceName: "b", Schema: oneInt, Tuples: mk(), BatchSize: 8}
		sa, sb := g.AddSource(a), g.AddSource(b)
		sum := g.Add(&summing2{}, From(sa), From(sb))
		sink := NewCollector("sink", oneInt)
		g.Add(sink, From(sum))
		return g, sink
	}

	g1, _ := build()
	runErr := make(chan error, 1)
	go func() { runErr <- g1.Run() }()

	// Checkpoint while both sources are mid-stream.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var snap *snapshot.Snapshot
	for {
		s, err := g1.Checkpoint(ctx)
		if err == nil {
			snap = s
			break
		}
		// The graph may not have started yet; anything else is fatal.
		if ctx.Err() != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	g1.Kill()
	if err := <-runErr; err != nil && !errors.Is(err, ErrKilled) {
		t.Fatal(err)
	}

	g2, sink2 := build()
	if err := g2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	got := sink2.Tuples()
	if len(got) != 1 {
		t.Fatalf("restored run emitted %d totals, want 1", len(got))
	}
	if total := got[0].At(0).AsInt(); total != 2*n {
		t.Fatalf("total after crash-and-recover = %d, want %d (misaligned cut)", total, 2*n)
	}
}

// TestCheckpointOfFinishedNodesUsesExitState checkpoints after the plan has
// fully drained: every node contributes the state it saved on clean exit.
func TestCheckpointAfterCleanFinish(t *testing.T) {
	g := NewGraph()
	src := NewSliceSource("src", oneInt, intTuple(1), intTuple(2))
	sid := g.AddSource(src)
	sink := NewCollector("sink", oneInt)
	g.Add(sink, From(sid))
	runErr := make(chan error, 1)
	go func() { runErr <- g.Run() }()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	// The graph is no longer running; Checkpoint must refuse rather than
	// hang (the exit-state path is only reachable while other nodes are
	// still live).
	if _, err := g.Checkpoint(context.Background()); err == nil {
		t.Fatal("checkpoint of a finished graph must fail")
	}
}

// TestRestoreValidatesPlanShape: restoring into a drifted plan must fail
// loudly at Run, not load state into the wrong operator.
func TestRestoreValidatesPlanShape(t *testing.T) {
	mkSnap := func() *snapshot.Snapshot {
		g := NewGraph()
		sid := g.AddSource(NewSliceSource("src", oneInt, intTuple(1)))
		g.Add(NewCollector("sink", oneInt), From(sid))
		runErr := make(chan error, 1)
		go func() { runErr <- g.Run() }()
		if err := <-runErr; err != nil {
			t.Fatal(err)
		}
		// Hand-build the manifest shape from the finished graph's layout.
		return &snapshot.Snapshot{Epoch: 1, Nodes: []snapshot.NodeState{
			{ID: 0, Name: "src"}, {ID: 1, Name: "sink"},
		}}
	}
	snap := mkSnap()

	// Renamed node → drift error.
	g := NewGraph()
	sid := g.AddSource(NewSliceSource("other", oneInt, intTuple(1)))
	g.Add(NewCollector("sink", oneInt), From(sid))
	if err := g.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err == nil {
		t.Fatal("drifted plan accepted")
	}

	// Extra node → count mismatch.
	g2 := NewGraph()
	sid = g2.AddSource(NewSliceSource("src", oneInt, intTuple(1)))
	mid := g2.Add(&passthrough{name: "mid"}, From(sid))
	g2.Add(NewCollector("sink", oneInt), From(mid))
	if err := g2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := g2.Run(); err == nil {
		t.Fatal("plan with extra node accepted")
	}

	// Restore after Run is rejected.
	g3 := NewGraph()
	sid = g3.AddSource(NewSliceSource("src", oneInt, intTuple(1)))
	g3.Add(NewCollector("sink", oneInt), From(sid))
	if err := g3.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g3.RestoreSnapshot(snap); err == nil {
		t.Fatal("restore into an already-run graph accepted")
	}
}

// TestCheckpointNotRunning pins the error paths around the run lifecycle.
func TestCheckpointNotRunning(t *testing.T) {
	g := NewGraph()
	sid := g.AddSource(NewSliceSource("src", oneInt, intTuple(1)))
	g.Add(NewCollector("sink", oneInt), From(sid))
	if _, err := g.Checkpoint(context.Background()); err == nil {
		t.Fatal("checkpoint before Run must fail")
	}
	// Kill before Run is a no-op.
	g.Kill()
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
}

// blockingSource emits nothing until its gate is closed, blocking inside
// Next — the one shape of source that cannot poll for a pending
// checkpoint, which is how a checkpoint comes to be cancelled with
// barriers already injected elsewhere.
type blockingSource struct {
	schema stream.Schema
	tuples []stream.Tuple
	gate   chan struct{}
	pos    int
}

func (s *blockingSource) Name() string                { return "blocking" }
func (s *blockingSource) OutSchemas() []stream.Schema { return []stream.Schema{s.schema} }
func (s *blockingSource) Open(Context) error          { return nil }
func (s *blockingSource) Close(Context) error         { return nil }
func (s *blockingSource) ProcessFeedback(int, core.Feedback, Context) error {
	return nil
}

func (s *blockingSource) Next(ctx Context) (bool, error) {
	<-s.gate
	if s.pos >= len(s.tuples) {
		return false, nil
	}
	ctx.Emit(s.tuples[s.pos])
	s.pos++
	return true, nil
}

// SaveState implements snapshot.Stater.
func (s *blockingSource) SaveState(enc *snapshot.Encoder) error {
	enc.PutInt(s.pos)
	return nil
}

// LoadState implements snapshot.Stater.
func (s *blockingSource) LoadState(dec *snapshot.Decoder) error {
	s.pos = dec.GetInt()
	return dec.Err()
}

// TestCheckpointCancelThenRetry: a checkpoint cancelled with barriers
// already injected at one source must not wedge the plan — the stale
// alignment's freeze is lifted, a later checkpoint succeeds, and recovery
// from it conserves the exact total (regression test for the stale-barrier
// epoch-mismatch kill).
func TestCheckpointCancelThenRetry(t *testing.T) {
	const nA, nB = 30_000, 5_000
	mk := func(n int) []stream.Tuple {
		ts := make([]stream.Tuple, n)
		for i := range ts {
			ts[i] = intTuple(1)
		}
		return ts
	}
	build := func(gateOpen bool) (*Graph, chan struct{}, *Collector) {
		g := NewGraph()
		a := &SliceSource{SourceName: "a", Schema: oneInt, Tuples: mk(nA), BatchSize: 4}
		bsrc := &blockingSource{schema: oneInt, tuples: mk(nB), gate: make(chan struct{})}
		if gateOpen {
			close(bsrc.gate)
		}
		sa, sb := g.AddSource(a), g.AddSource(bsrc)
		sum := g.Add(&summing2{}, From(sa), From(sb))
		sink := NewCollector("sink", oneInt)
		g.Add(sink, From(sum))
		return g, bsrc.gate, sink
	}

	g1, gate, _ := build(false)
	runErr := make(chan error, 1)
	go func() { runErr <- g1.Run() }()

	// Checkpoint 1: source "a" injects its barrier, "blocking" never does;
	// the checkpoint must time out, leaving a stale partial alignment at
	// the summing operator.
	ctx1, cancel1 := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel1()
	if _, err := g1.Checkpoint(ctx1); err == nil {
		t.Fatal("checkpoint with a blocked source must time out")
	}

	// Release the blocked source and retry: the stale freeze must lift and
	// the new epoch must complete.
	close(gate)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	var snap *snapshot.Snapshot
	for {
		s, err := g1.Checkpoint(ctx2)
		if err == nil {
			snap = s
			break
		}
		if ctx2.Err() != nil {
			t.Fatalf("checkpoint after cancel never succeeded: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	g1.Kill()
	if err := <-runErr; err != nil && !errors.Is(err, ErrKilled) {
		t.Fatal(err)
	}

	g2, _, sink2 := build(true)
	if err := g2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	got := sink2.Tuples()
	if len(got) != 1 {
		t.Fatalf("restored run emitted %d totals, want 1", len(got))
	}
	if total := got[0].At(0).AsInt(); total != nA+nB {
		t.Fatalf("total after cancel-retry-recover = %d, want %d", total, nA+nB)
	}
}
