package exec

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/snapshot"
)

// Distributed checkpoint coordination (DESIGN.md §8). A plan spanning
// processes is a set of subplans joined by remote edges; a consistent cut
// needs every subplan to checkpoint the same epoch, aligned by barriers
// that cross the process boundary in-band (Chandy–Lamport over the data
// channel, as in Flink's asynchronous barrier snapshotting):
//
//   - the coordinator process triggers epoch N locally; its barriers flow
//     through the subplan and each remote sink forwards the barrier as a
//     wire frame after everything that preceded the cut (BarrierForwarder);
//   - the follower process's remote source hands the wire barrier to its
//     local coordinator (BarrierReceiver → Graph.CheckpointAtInto), which
//     cuts the downstream subplan at the same epoch number;
//   - each subplan persists its own snapshot.Chain locally and the follower
//     acks (epoch, chain id) over a dedicated control connection;
//   - the coordinator commits a snapshot.DistManifest only after its own
//     persist and every follower's ack; a missing or failed ack abandons
//     the epoch — no manifest, no commit message — and the next delta in
//     the failed part upgrades to full exactly like a broken local chain.
//
// Restore inverts commit: the coordinator reads the newest manifest,
// truncates its local chain past the committed epoch, restores from it, and
// tells each follower (in the startup handshake) which epoch to restore;
// followers truncate uncommitted local epochs the same way.

// BarrierForwarder is implemented by sink operators that carry the stream
// across a process boundary: the runtime calls ForwardBarrier at the
// operator's barrier-aligned cut, after all pre-cut items have been handed
// to it and before any post-cut item, so the wire preserves the barrier's
// in-band position.
type BarrierForwarder interface {
	ForwardBarrier(epoch int64, mode snapshot.CaptureMode, ctx Context) error
}

// BarrierReceiver is implemented by sources that replay a remote stream:
// the installed hook hands each wire barrier to the local checkpoint
// coordination glue (DistFollower) before the source emits anything that
// followed the barrier on the wire.
type BarrierReceiver interface {
	SetBarrierHook(fn func(epoch int64, mode snapshot.CaptureMode) error)
}

// SourceBarrierInjector is implemented by the runtime Context handed to
// sources. A barrier-receiving source calls InjectWireBarrier at the wire
// barrier's exact stream position (after the hook has registered the
// epoch); the runtime cuts the source there and forwards the barrier on
// its outputs. This matters precisely for parallel remote edges: each
// edge's source must cut where ITS barrier sits in ITS stream — cutting a
// second edge early (at whatever position it had reached when the first
// edge's barrier registered the epoch) would classify that edge's
// in-flight tuples as post-cut locally while the producer already counted
// them as sent, losing them on recovery. Hooked sources are therefore
// excluded from the poll-based cut local sources use.
type SourceBarrierInjector interface {
	InjectWireBarrier(epoch int64)
}

// distPeer is one control connection with serialized writes.
type distPeer struct {
	part string
	conn net.Conn
	mu   sync.Mutex
}

func (p *distPeer) send(m snapshot.DistMsg) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return snapshot.WriteDistMsg(p.conn, m)
}

// distAck is one follower acknowledgement routed to the coordinator loop.
type distAck struct {
	part string
	msg  snapshot.DistMsg
}

// DistCoordinator drives distributed checkpoints for the subplan that owns
// the sources: it initiates epochs, collects follower acks, and commits
// manifests. Usage: NewDistCoordinator → RestoreCommitted → AddFollower per
// control connection → RunCheckpointed.
type DistCoordinator struct {
	g     *Graph
	part  string
	chain *snapshot.Chain
	log   *snapshot.DistLog

	// AckTimeout bounds how long one epoch waits for follower acks before
	// being abandoned (default 10s).
	AckTimeout time.Duration

	mu        sync.Mutex
	peers     []*distPeer
	committed int64
	restored  bool
	degraded  []snapshot.Fallback
	acks      chan distAck
}

// NewDistCoordinator wraps a built (not yet run) graph. part names this
// subplan in manifests; chain is its local checkpoint chain; log is the
// manifest store (it may share chain's backend).
func NewDistCoordinator(g *Graph, part string, chain *snapshot.Chain, log *snapshot.DistLog) *DistCoordinator {
	return &DistCoordinator{g: g, part: part, chain: chain, log: log, acks: make(chan distAck, 256)}
}

// CommittedEpoch reports the newest committed distributed epoch.
func (dc *DistCoordinator) CommittedEpoch() int64 {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.committed
}

// RestoreCommitted stages the newest committed distributed cut on the
// coordinator's own (rebuilt) subplan: local epochs past the committed one
// are truncated — they were persisted but never globally acknowledged —
// and the chain at the committed epoch is restored. ok=false means no
// commit is restorable (cold start); any uncommitted local chain is wiped
// so the fresh run's epoch numbering can restart.
//
// Damage degrades instead of failing: a corrupt manifest, or a committed
// epoch whose local chain hits ErrCorruptSnapshot, is walked past to the
// next older commit, and the manifests above the chosen one are truncated
// from the log — they can never be restored again, and leaving them would
// make every re-commit of those epochs fail the log's ascending-order
// check. Skipped commits are reported via Degraded. Non-corruption
// failures (backend I/O, broken lineage) still fail loudly.
func (dc *DistCoordinator) RestoreCommitted() (ok bool, err error) {
	dc.restored = true
	epochs, err := dc.log.Epochs()
	if err != nil {
		return false, err
	}
	var skipped []snapshot.Fallback
	for i := len(epochs) - 1; i >= 0; i-- {
		m, err := dc.log.At(epochs[i])
		if err != nil {
			if !errors.Is(err, snapshot.ErrCorruptSnapshot) {
				return false, err
			}
			skipped = append(skipped, snapshot.Fallback{Epoch: epochs[i], Err: err})
			continue
		}
		snaps, err := dc.chain.ChainFor(m.Epoch)
		if err != nil {
			if !errors.Is(err, snapshot.ErrCorruptSnapshot) {
				return false, err
			}
			skipped = append(skipped, snapshot.Fallback{Epoch: epochs[i], Err: err})
			continue
		}
		if err := dc.log.TruncateAfter(m.Epoch); err != nil {
			return false, err
		}
		if err := dc.chain.TruncateAfter(m.Epoch); err != nil {
			return false, err
		}
		if err := dc.g.RestoreChain(snaps); err != nil {
			return false, err
		}
		dc.mu.Lock()
		dc.committed = m.Epoch
		dc.degraded = skipped
		dc.mu.Unlock()
		return true, nil
	}
	// No restorable commit: wipe the log and any local chain so the cold
	// run's epoch numbering can restart from 1.
	if err := dc.log.TruncateAfter(0); err != nil {
		return false, err
	}
	if err := dc.chain.TruncateAfter(0); err != nil {
		return false, err
	}
	dc.mu.Lock()
	dc.degraded = skipped
	dc.mu.Unlock()
	return false, nil
}

// Degraded reports the committed cuts RestoreCommitted walked past because
// of storage damage (newest first); empty on a clean restore.
func (dc *DistCoordinator) Degraded() []snapshot.Fallback {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.degraded
}

// AddFollower runs the coordinator's half of the startup handshake on one
// control connection: read the follower's hello, reply with the committed
// epoch it must restore from, and start relaying its acks. It must run
// after RestoreCommitted (the handshake reply is the committed epoch) and
// before RunCheckpointed. Returns the follower's part name.
func (dc *DistCoordinator) AddFollower(ctrl net.Conn) (string, error) {
	if !dc.restored {
		return "", fmt.Errorf("exec: dist: RestoreCommitted must run before AddFollower")
	}
	hello, err := snapshot.ReadDistMsg(ctrl)
	if err != nil {
		return "", fmt.Errorf("exec: dist: handshake read: %w", err)
	}
	if hello.Kind != snapshot.DistHello || hello.Part == "" {
		return "", fmt.Errorf("exec: dist: handshake: expected hello with part name, got kind %d part %q", hello.Kind, hello.Part)
	}
	dc.mu.Lock()
	for _, p := range dc.peers {
		if p.part == hello.Part {
			dc.mu.Unlock()
			return "", fmt.Errorf("exec: dist: duplicate follower part %q", hello.Part)
		}
	}
	committed := dc.committed
	p := &distPeer{part: hello.Part, conn: ctrl}
	dc.peers = append(dc.peers, p)
	dc.mu.Unlock()
	if err := p.send(snapshot.DistMsg{Kind: snapshot.DistRestore, Epoch: committed}); err != nil {
		return "", fmt.Errorf("exec: dist: handshake reply: %w", err)
	}
	go dc.readAcks(p)
	return hello.Part, nil
}

// readAcks relays one peer's acks into the coordinator loop until the
// connection closes.
func (dc *DistCoordinator) readAcks(p *distPeer) {
	for {
		m, err := snapshot.ReadDistMsg(p.conn)
		if err != nil {
			return
		}
		if m.Kind != snapshot.DistAck {
			continue
		}
		select {
		case dc.acks <- distAck{part: p.part, msg: m}:
		default:
			// One epoch is in flight at a time and the buffer holds far more
			// than one ack per peer; a full channel means only stale acks can
			// be pending, which the loop would discard anyway.
		}
	}
}

// CheckpointOnce takes one distributed checkpoint end to end: trigger the
// local epoch, wait for the local persist, collect every follower's ack,
// commit the manifest, and announce the commit. The error covers abandoned
// epochs (local failure, follower failure, ack timeout) — the plan keeps
// running either way, exactly as with local checkpoint failures.
func (dc *DistCoordinator) CheckpointOnce(mode snapshot.CaptureMode) (int64, error) {
	c, err := dc.g.triggerCheckpoint(mode, dc.chain)
	if err != nil {
		return 0, err
	}
	<-c.done
	return c.epoch, dc.finishEpoch(c.epoch, nil)
}

// finishEpoch runs the ack/commit half for a locally finished epoch; stop
// (may be nil) aborts the wait early on shutdown. Each follower ack, the
// manifest commit, and any abandonment are recorded into the graph's epoch
// timeline on top of the local capture/persist events.
func (dc *DistCoordinator) finishEpoch(epoch int64, stop <-chan struct{}) (err error) {
	defer func() {
		if err != nil {
			dc.g.recordEpoch("abandon", epoch, dc.part, 0, err)
		}
	}()
	st, ok := dc.g.CheckpointStatus(epoch)
	switch {
	case !ok:
		return fmt.Errorf("exec: dist: epoch %d has no recorded outcome", epoch)
	case st.Err != nil:
		return fmt.Errorf("exec: dist: epoch %d abandoned: %w", epoch, st.Err)
	case !st.Persisted:
		return fmt.Errorf("exec: dist: epoch %d abandoned: local chain write did not complete", epoch)
	}
	dc.mu.Lock()
	peers := append([]*distPeer(nil), dc.peers...)
	dc.mu.Unlock()
	parts := []snapshot.DistPart{{Part: dc.part, Epoch: epoch, Chain: snapshot.IDFor(epoch, st.Base)}}
	pending := make(map[string]bool, len(peers))
	for _, p := range peers {
		pending[p.part] = true
	}
	timeout := dc.AckTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for len(pending) > 0 {
		select {
		case a := <-dc.acks:
			if a.msg.Epoch != epoch || !pending[a.part] {
				continue // stale epoch or duplicate: discard
			}
			if a.msg.Err != "" {
				return fmt.Errorf("exec: dist: epoch %d abandoned: part %q failed to persist: %s", epoch, a.part, a.msg.Err)
			}
			delete(pending, a.part)
			parts = append(parts, snapshot.DistPart{Part: a.part, Epoch: epoch, Chain: a.msg.Chain})
			dc.g.recordEpoch("ack", epoch, a.part, 0, nil)
		case <-timer.C:
			missing := make([]string, 0, len(pending))
			for part := range pending {
				missing = append(missing, part)
			}
			return fmt.Errorf("exec: dist: epoch %d abandoned: no ack from %v within %v", epoch, missing, timeout)
		case <-stop:
			return fmt.Errorf("exec: dist: epoch %d abandoned: shutdown while awaiting acks", epoch)
		}
	}
	if err := dc.log.Commit(&snapshot.DistManifest{Epoch: epoch, Parts: parts}); err != nil {
		return fmt.Errorf("exec: dist: epoch %d abandoned: commit manifest: %w", epoch, err)
	}
	dc.mu.Lock()
	dc.committed = epoch
	dc.mu.Unlock()
	dc.g.recordEpoch("commit", epoch, dc.part, 0, nil)
	for _, p := range peers {
		// Best-effort: a follower that misses the commit notice only delays
		// its local retention; the durable manifest is the commit.
		_ = p.send(snapshot.DistMsg{Kind: snapshot.DistCommit, Epoch: epoch})
	}
	return nil
}

// RunCheckpointed runs the coordinator subplan under periodic distributed
// checkpoints — the shared Graph.checkpointLoop driver with the ack/commit
// protocol spliced between persist and retention. Retention and compaction
// run only after a successful commit, so the newest retained epoch is
// always committed. runErr is the plan's error; chkErr aggregates the
// first checkpoint, commit, retention, or compaction failure.
func (dc *DistCoordinator) RunCheckpointed(p CheckpointPolicy) (runErr, chkErr error) {
	return dc.g.checkpointLoop(dc.chain, p, func(epoch int64, count int, stop <-chan struct{}, noteErr func(error)) {
		if err := dc.finishEpoch(epoch, stop); err != nil {
			noteErr(err)
			return // abandoned: no manifest, no retention this cycle
		}
		dc.g.maintainChain(dc.chain, p, epoch, count, noteErr)
		if p.Retain > 0 {
			if err := dc.log.Retain(p.Retain); err != nil {
				noteErr(fmt.Errorf("exec: dist: manifest retention after epoch %d: %w", epoch, err))
			}
		}
	})
}

// DistFollower is the checkpoint glue for a subplan that receives its
// stream over remote edges: it restores from the coordinator-committed
// epoch at startup, turns incoming wire barriers into forced-epoch local
// checkpoints, and acks each persisted epoch over the control connection.
// Usage: build the graph → NewDistFollower → Handshake → Run.
type DistFollower struct {
	g     *Graph
	part  string
	chain *snapshot.Chain
	peer  *distPeer

	// Retain keeps the newest N local epochs after each commit notice
	// (0 keeps everything). Retention keyed to commits can never collect
	// the epoch a restore will target.
	Retain int

	mu         sync.Mutex
	committed  int64
	ackSpawned int64 // newest epoch with an ack watcher; dedups parallel edges
}

// NewDistFollower wraps a built (not yet run) graph and installs the
// barrier hook on every BarrierReceiver source in it. Hooked sources cut
// exclusively at their wire barriers (SourceBarrierInjector), never at the
// poll-based position local sources use.
func NewDistFollower(g *Graph, part string, chain *snapshot.Chain, ctrl net.Conn) *DistFollower {
	df := &DistFollower{g: g, part: part, chain: chain, peer: &distPeer{part: part, conn: ctrl}}
	for _, n := range g.nodes {
		if n.src == nil {
			continue
		}
		if br, ok := n.src.(BarrierReceiver); ok {
			br.SetBarrierHook(df.onBarrier)
			g.markWireBarrier(n.id)
		}
	}
	return df
}

// CommittedEpoch reports the newest epoch the coordinator announced as
// committed (including the one restored from at startup).
func (df *DistFollower) CommittedEpoch() int64 {
	df.mu.Lock()
	defer df.mu.Unlock()
	return df.committed
}

// Handshake runs the follower's half of the startup protocol: report the
// part name and local chain head, then restore from the epoch the
// coordinator designates — truncating local epochs past it, which were
// persisted but never committed. ok=false means cold start.
func (df *DistFollower) Handshake() (restored bool, err error) {
	head, _, err := df.chain.LatestEpoch()
	if err != nil {
		return false, err
	}
	if err := df.peer.send(snapshot.DistMsg{Kind: snapshot.DistHello, Part: df.part, Epoch: head}); err != nil {
		return false, fmt.Errorf("exec: dist: handshake hello: %w", err)
	}
	m, err := snapshot.ReadDistMsg(df.peer.conn)
	if err != nil {
		return false, fmt.Errorf("exec: dist: handshake read: %w", err)
	}
	if m.Kind != snapshot.DistRestore {
		return false, fmt.Errorf("exec: dist: handshake: expected restore directive, got kind %d", m.Kind)
	}
	if err := df.chain.TruncateAfter(m.Epoch); err != nil {
		return false, err
	}
	if m.Epoch == 0 {
		return false, nil
	}
	snaps, err := df.chain.ChainFor(m.Epoch)
	if err != nil {
		return false, err
	}
	if err := df.g.RestoreChain(snaps); err != nil {
		return false, err
	}
	df.mu.Lock()
	df.committed = m.Epoch
	df.mu.Unlock()
	return true, nil
}

// onBarrier is the installed BarrierReceiver hook: cut this subplan at the
// coordinator's epoch and ack once the epoch is durable. It returns an
// error only for malformed coordination (which surfaces as a node error and
// stops the subplan); checkpoint failures are acked with Err instead, so
// the coordinator abandons the epoch while the stream keeps flowing.
func (df *DistFollower) onBarrier(epoch int64, mode snapshot.CaptureMode) error {
	done, err := df.g.CheckpointAtInto(epoch, mode, df.chain)
	if err != nil {
		return err
	}
	if done == nil {
		return nil // stale barrier (epoch already completed or superseded)
	}
	// Parallel remote edges deliver the same epoch once each and each gets
	// the active checkpoint's channel back; exactly one ack watcher runs.
	df.mu.Lock()
	if epoch <= df.ackSpawned {
		df.mu.Unlock()
		return nil
	}
	df.ackSpawned = epoch
	df.mu.Unlock()
	go func() {
		<-done
		ack := snapshot.DistMsg{Kind: snapshot.DistAck, Part: df.part, Epoch: epoch}
		st, ok := df.g.CheckpointStatus(epoch)
		switch {
		case !ok:
			ack.Err = "checkpoint outcome unknown"
		case st.Err != nil:
			ack.Err = st.Err.Error()
		case !st.Persisted:
			ack.Err = "chain write did not complete"
		default:
			ack.Chain = snapshot.IDFor(epoch, st.Base)
		}
		// Best-effort: an unsendable ack is indistinguishable from a missing
		// one, and the coordinator abandons the epoch either way.
		_ = df.peer.send(ack)
	}()
	return nil
}

// Run executes the follower subplan while watching the control connection
// for commit notices (which drive local retention). It returns the plan's
// error after all background checkpoint work has drained; the caller owns
// closing the control connection afterwards.
func (df *DistFollower) Run() error {
	go func() {
		for {
			m, err := snapshot.ReadDistMsg(df.peer.conn)
			if err != nil {
				return // connection closed: coordinator gone or shutdown
			}
			if m.Kind != snapshot.DistCommit {
				continue
			}
			df.mu.Lock()
			df.committed = m.Epoch
			df.mu.Unlock()
			if df.Retain > 0 {
				// Retention is keyed to the committed epoch: epochs already
				// persisted beyond it stay (a later restore may target this
				// commit after truncating them), and only epochs falling out
				// of the window below the commit are collectible.
				_ = df.chain.RetainFrom(m.Epoch, df.Retain)
			}
		}
	}()
	err := df.g.Run()
	df.g.WaitCheckpoints()
	return err
}
