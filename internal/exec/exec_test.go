package exec

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/stream"
)

var oneInt = stream.MustSchema(stream.F("v", stream.KindInt))

func intTuple(i int64) stream.Tuple { return stream.NewTuple(stream.Int(i)).WithSeq(i) }

// passthrough is a trivial operator used to exercise the runner.
type passthrough struct {
	Base
	name     string
	feedback []core.Feedback
	relay    bool // relay feedback upstream
}

func (p *passthrough) Name() string                { return p.name }
func (p *passthrough) InSchemas() []stream.Schema  { return []stream.Schema{oneInt} }
func (p *passthrough) OutSchemas() []stream.Schema { return []stream.Schema{oneInt} }
func (p *passthrough) ProcessTuple(_ int, t stream.Tuple, ctx Context) error {
	ctx.Emit(t)
	return nil
}
func (p *passthrough) ProcessPunct(_ int, e punct.Embedded, ctx Context) error {
	ctx.EmitPunct(e)
	return nil
}
func (p *passthrough) ProcessFeedback(_ int, f core.Feedback, ctx Context) error {
	p.feedback = append(p.feedback, f)
	if p.relay {
		ctx.SendFeedback(0, f)
	}
	return nil
}

func TestGraphRunLinearPipeline(t *testing.T) {
	g := NewGraph()
	src := g.AddSource(NewSliceSource("src", oneInt, intTuple(1), intTuple(2), intTuple(3)))
	mid := g.Add(&passthrough{name: "mid"}, From(src))
	sink := NewCollector("sink", oneInt)
	g.Add(sink, From(mid))
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	got := sink.Tuples()
	if len(got) != 3 {
		t.Fatalf("got %d tuples", len(got))
	}
	for i, tp := range got {
		if tp.At(0).AsInt() != int64(i+1) {
			t.Errorf("tuple %d: %v", i, tp)
		}
	}
}

// TestGraphEdgesAndReport checks the edge→consumer map built in prepare
// (one exact consumer per edge, no node rescans) and edge labelling.
func TestGraphEdgesAndReport(t *testing.T) {
	g := NewGraph()
	src := g.AddSource(NewSliceSource("src", oneInt, intTuple(1), intTuple(2)))
	mid := g.Add(&passthrough{name: "mid"}, From(src))
	sink := NewCollector("sink", oneInt)
	g.Add(sink, From(mid))
	g.LabelEdge(From(mid), "part=0/1")
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2", len(edges))
	}
	want := map[string]string{"src": "mid", "mid": "sink"}
	for _, e := range edges {
		if want[e.Producer] != e.Consumer {
			t.Errorf("edge %s[%d] -> %s, want consumer %s", e.Producer, e.Out, e.Consumer, want[e.Producer])
		}
		if e.Producer == "src" && e.Stats.Tuples != 2 {
			t.Errorf("src edge counted %d tuples, want 2", e.Stats.Tuples)
		}
		if e.Producer == "mid" && e.Label != "part=0/1" {
			t.Errorf("mid edge label %q, want part=0/1", e.Label)
		}
	}
	var buf strings.Builder
	g.Report(&buf)
	out := buf.String()
	if !strings.Contains(out, "mid[0]") || !strings.Contains(out, "sink[0]") || !strings.Contains(out, "part=0/1") {
		t.Fatalf("report missing consumers or labels:\n%s", out)
	}
	if strings.Contains(out, "?") {
		t.Fatalf("report has unresolved consumers:\n%s", out)
	}
}

func TestGraphSchemasMustMatch(t *testing.T) {
	two := stream.MustSchema(stream.F("a", stream.KindInt), stream.F("b", stream.KindInt))
	g := NewGraph()
	src := g.AddSource(NewSliceSource("src", oneInt))
	g.Add(NewCollector("sink", two), From(src))
	if err := g.Run(); err == nil {
		t.Fatal("schema mismatch must fail Run")
	}
}

func TestGraphRejectsDoubleConsumption(t *testing.T) {
	g := NewGraph()
	src := g.AddSource(NewSliceSource("src", oneInt))
	g.Add(NewCollector("a", oneInt), From(src))
	g.Add(NewCollector("b", oneInt), From(src))
	if err := g.Run(); err == nil {
		t.Fatal("double consumption must fail")
	}
}

func TestGraphRejectsUnconsumedOutput(t *testing.T) {
	g := NewGraph()
	g.AddSource(NewSliceSource("src", oneInt))
	if err := g.Run(); err == nil {
		t.Fatal("dangling output must fail")
	}
}

func TestGraphRejectsWrongInputCount(t *testing.T) {
	g := NewGraph()
	src := g.AddSource(NewSliceSource("src", oneInt))
	g.Add(&passthrough{name: "p"}, From(src), From(src))
	if err := g.Run(); err == nil {
		t.Fatal("wiring two inputs into a one-input operator must fail")
	}
}

// errorOp fails on the nth tuple to exercise error shutdown.
type errorOp struct {
	passthrough
	failAt int64
	seen   int64
}

func (e *errorOp) ProcessTuple(in int, t stream.Tuple, ctx Context) error {
	e.seen++
	if e.seen == e.failAt {
		return fmt.Errorf("injected failure at tuple %d", e.seen)
	}
	return e.passthrough.ProcessTuple(in, t, ctx)
}

func TestGraphErrorPropagatesAndTerminates(t *testing.T) {
	tuples := make([]stream.Tuple, 10000)
	for i := range tuples {
		tuples[i] = intTuple(int64(i))
	}
	g := NewGraph()
	src := g.AddSource(NewSliceSource("src", oneInt, tuples...))
	bad := g.Add(&errorOp{passthrough: passthrough{name: "bad"}, failAt: 5}, From(src))
	g.Add(NewCollector("sink", oneInt), From(bad))
	err := g.Run()
	if err == nil {
		t.Fatal("operator error must surface from Run")
	}
}

func TestFeedbackFlowsUpstreamThroughRelay(t *testing.T) {
	// source → relay → pace-like producer (sink that sends feedback).
	tuples := make([]stream.Tuple, 2000)
	for i := range tuples {
		tuples[i] = intTuple(int64(i))
	}
	src := NewSliceSource("src", oneInt, tuples...)
	src.FeedbackAware = true
	src.BatchSize = 1 // maximize interleaving so feedback can land mid-stream

	relay := &passthrough{name: "relay", relay: true}
	var sank atomic.Int64
	sink := NewCollector("sink", oneInt)
	fbSent := false
	sink.OnTuple = func(t stream.Tuple) { sank.Add(1) }

	g := NewGraph()
	s := g.AddSource(src)
	r := g.Add(relay, From(s))
	g.Add(sink, From(r))
	// Inject feedback from the sink side by wrapping: use a custom
	// operator instead.
	_ = fbSent
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if sank.Load() != 2000 {
		t.Fatalf("sank %d", sank.Load())
	}
}

// feedbackSink emits assumed feedback after receiving trigger tuples.
type feedbackSink struct {
	Base
	name    string
	trigger int64
	seen    int64
	sent    bool
	pattern punct.Pattern
	got     []stream.Tuple
}

func (f *feedbackSink) Name() string                { return f.name }
func (f *feedbackSink) InSchemas() []stream.Schema  { return []stream.Schema{oneInt} }
func (f *feedbackSink) OutSchemas() []stream.Schema { return nil }
func (f *feedbackSink) ProcessTuple(_ int, t stream.Tuple, ctx Context) error {
	f.seen++
	f.got = append(f.got, t)
	if !f.sent && f.seen >= f.trigger {
		f.sent = true
		ctx.SendFeedback(0, core.NewAssumed(f.pattern))
	}
	return nil
}

func TestEndToEndFeedbackSuppressesAtSource(t *testing.T) {
	// The sink asks to ignore v ≥ 1000 after seeing 10 tuples; the
	// feedback-aware source must eventually stop emitting them.
	tuples := make([]stream.Tuple, 5000)
	for i := range tuples {
		tuples[i] = intTuple(int64(i))
	}
	src := NewSliceSource("src", oneInt, tuples...)
	src.FeedbackAware = true
	src.BatchSize = 8
	relay := &passthrough{name: "relay", relay: true}
	sink := &feedbackSink{
		name:    "sink",
		trigger: 10,
		pattern: punct.OnAttr(1, 0, punct.Ge(stream.Int(1000))),
	}
	g := NewGraph()
	s := g.AddSource(src)
	r := g.Add(relay, From(s))
	g.Add(sink, From(r))
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if src.Skipped() == 0 {
		t.Error("source should have skipped suppressed tuples")
	}
	if len(relay.feedback) != 1 {
		t.Errorf("relay saw %d feedback messages", len(relay.feedback))
	}
	// Definition 1: the sink must have received every tuple outside the
	// subset.
	outside := 0
	for _, tp := range sink.got {
		if tp.At(0).AsInt() < 1000 {
			outside++
		}
	}
	if outside != 1000 {
		t.Errorf("non-subset tuples received: %d, want 1000", outside)
	}
}

func TestHarnessRecordsEverything(t *testing.T) {
	p := &passthrough{name: "p"}
	h := NewHarness(p)
	h.Tuples(intTuple(1), intTuple(2))
	h.Punct(0, punct.NewEmbedded(punct.OnAttr(1, 0, punct.Le(stream.Int(2)))))
	h.Feedback(0, core.NewAssumed(punct.OnAttr(1, 0, punct.Eq(stream.Int(9)))))
	h.EOS(0).CloseOp()
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	if len(h.OutTuples(0)) != 2 || len(h.OutPuncts(0)) != 1 {
		t.Error("harness output accounting")
	}
	if len(p.feedback) != 1 {
		t.Error("feedback delivery")
	}
	h.Reset()
	if len(h.Out(0)) != 0 {
		t.Error("reset")
	}
}

func TestSliceSourceHarness(t *testing.T) {
	src := NewSliceSource("s", oneInt, intTuple(1), intTuple(2))
	src.Items = append(src.Items, queue.PunctItem(punct.NewEmbedded(punct.OnAttr(1, 0, punct.Le(stream.Int(2))))))
	h := NewSourceHarness(src)
	h.RunSource(100)
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	if len(h.OutTuples(0)) != 2 || len(h.OutPuncts(0)) != 1 {
		t.Error("source harness output")
	}
}

func TestCollectorDiscard(t *testing.T) {
	c := NewCollector("c", oneInt)
	c.Discard = true
	n := 0
	c.OnTuple = func(stream.Tuple) { n++ }
	h := NewHarness(c)
	h.Tuples(intTuple(1), intTuple(2)).CloseOp()
	if n != 2 || c.Count() != 2 || len(c.Items()) != 0 {
		t.Error("discard collector accounting")
	}
}

func TestShutdownPropagatesUpstream(t *testing.T) {
	// A limited collector asks the plan to stop; the run must terminate
	// without draining the whole (large) source, and without error.
	tuples := make([]stream.Tuple, 2_000_000)
	for i := range tuples {
		tuples[i] = intTuple(int64(i))
	}
	src := NewSliceSource("src", oneInt, tuples...)
	src.BatchSize = 16
	relay := &passthrough{name: "relay"}
	sink := NewCollector("sink", oneInt)
	sink.Limit = 100
	g := NewGraph()
	s := g.AddSource(src)
	r := g.Add(relay, From(s))
	g.Add(sink, From(r))
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	n := sink.Count()
	if n < 100 {
		t.Fatalf("collector got %d tuples, want ≥ limit", n)
	}
	// In-flight pages may still arrive after the shutdown request, but
	// the vast majority of the stream must never have been produced.
	if n > 1_000_000 {
		t.Fatalf("shutdown did not stop the source: %d tuples", n)
	}
}

func TestHarnessRecordsShutdown(t *testing.T) {
	c := NewCollector("c", oneInt)
	c.Limit = 1
	h := NewHarness(c)
	h.Tuples(intTuple(1), intTuple(2))
	if got := h.ShutdownsSent(); len(got) != 1 || got[0] != 0 {
		t.Errorf("shutdowns: %v", got)
	}
}

// mergeTwo is a 2-input pass-through used to exercise the runner's
// multi-input event loop.
type mergeTwo struct {
	Base
	name string
}

func (m *mergeTwo) Name() string { return m.name }
func (m *mergeTwo) InSchemas() []stream.Schema {
	return []stream.Schema{oneInt, oneInt}
}
func (m *mergeTwo) OutSchemas() []stream.Schema { return []stream.Schema{oneInt} }
func (m *mergeTwo) ProcessTuple(_ int, t stream.Tuple, ctx Context) error {
	ctx.Emit(t)
	return nil
}

func TestGraphMultiInputOperator(t *testing.T) {
	mk := func(base int64, n int) []stream.Tuple {
		out := make([]stream.Tuple, n)
		for i := range out {
			out[i] = intTuple(base + int64(i))
		}
		return out
	}
	g := NewGraph()
	a := g.AddSource(NewSliceSource("a", oneInt, mk(0, 500)...))
	b := g.AddSource(NewSliceSource("b", oneInt, mk(1000, 500)...))
	m := g.Add(&mergeTwo{name: "merge"}, From(a), From(b))
	sink := NewCollector("sink", oneInt)
	g.Add(sink, From(m))
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	got := sink.Tuples()
	if len(got) != 1000 {
		t.Fatalf("merged %d tuples", len(got))
	}
	// Per-input order must be preserved even though the merge order is
	// nondeterministic.
	lastA, lastB := int64(-1), int64(999)
	for _, tp := range got {
		v := tp.At(0).AsInt()
		if v < 1000 {
			if v <= lastA {
				t.Fatalf("input a order broken at %d", v)
			}
			lastA = v
		} else {
			if v <= lastB {
				t.Fatalf("input b order broken at %d", v)
			}
			lastB = v
		}
	}
}

func TestGraphReport(t *testing.T) {
	g := NewGraph()
	src := g.AddSource(NewSliceSource("src", oneInt, intTuple(1), intTuple(2)))
	mid := g.Add(&passthrough{name: "mid"}, From(src))
	g.Add(NewCollector("sink", oneInt), From(mid))
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	g.Report(&sb)
	out := sb.String()
	for _, want := range []string{"src", "mid", "sink", "tuples=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEdgeStats(t *testing.T) {
	g := NewGraph()
	src := g.AddSource(NewSliceSource("src", oneInt, intTuple(1), intTuple(2)))
	sink := NewCollector("sink", oneInt)
	g.Add(sink, From(src))
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st, err := g.EdgeStats(From(src))
	if err != nil || st.Tuples != 2 {
		t.Errorf("edge stats: %+v, %v", st, err)
	}
	if _, err := g.EdgeStats(From(NodeID(99))); err == nil {
		t.Error("unknown node must error")
	}
}
