package exec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/stream"
)

// Harness drives a single operator synchronously, with no goroutines or
// queues, recording everything it emits. Unit tests use it to exercise
// operator logic deterministically; the concurrent Runner and the Harness
// share the Operator interface, so behaviour verified here carries over.
type Harness struct {
	op  Operator
	src Source

	outs      [][]queue.Item          // per output port
	feedback  map[int][]core.Feedback // per input port: feedback sent upstream
	shutdowns []int                   // inputs asked to shut down
	err       error
	closed    bool
}

// NewHarness wraps an operator and calls Open.
func NewHarness(op Operator) *Harness {
	h := &Harness{
		op:       op,
		outs:     make([][]queue.Item, len(op.OutSchemas())),
		feedback: map[int][]core.Feedback{},
	}
	h.err = op.Open(h)
	return h
}

// NewSourceHarness wraps a source and calls Open.
func NewSourceHarness(src Source) *Harness {
	h := &Harness{
		src:      src,
		outs:     make([][]queue.Item, len(src.OutSchemas())),
		feedback: map[int][]core.Feedback{},
	}
	h.err = src.Open(h)
	return h
}

// Err returns the first error any callback produced.
func (h *Harness) Err() error { return h.err }

func (h *Harness) record(err error) {
	if h.err == nil {
		h.err = err
	}
}

// Tuple delivers a tuple to the operator's input port.
func (h *Harness) Tuple(input int, t stream.Tuple) *Harness {
	if h.err == nil {
		h.record(h.op.ProcessTuple(input, t, h))
	}
	return h
}

// Tuples delivers several tuples to input 0.
func (h *Harness) Tuples(ts ...stream.Tuple) *Harness {
	for _, t := range ts {
		h.Tuple(0, t)
	}
	return h
}

// Punct delivers embedded punctuation to an input port.
func (h *Harness) Punct(input int, e punct.Embedded) *Harness {
	if h.err == nil {
		h.record(h.op.ProcessPunct(input, e, h))
	}
	return h
}

// Feedback delivers feedback punctuation as if it arrived from the consumer
// of the given output port.
func (h *Harness) Feedback(output int, f core.Feedback) *Harness {
	if h.err == nil {
		if h.op != nil {
			h.record(h.op.ProcessFeedback(output, f, h))
		} else {
			h.record(h.src.ProcessFeedback(output, f, h))
		}
	}
	return h
}

// EOS ends one input port.
func (h *Harness) EOS(input int) *Harness {
	if h.err == nil {
		h.record(h.op.ProcessEOS(input, h))
	}
	return h
}

// CloseOp ends all inputs (EOS on each, if not already sent individually is
// the caller's business) and calls Close.
func (h *Harness) CloseOp() *Harness {
	if !h.closed && h.err == nil {
		h.closed = true
		if h.op != nil {
			h.record(h.op.Close(h))
		} else {
			h.record(h.src.Close(h))
		}
	}
	return h
}

// RunSource drives a source harness to completion (or maxSteps calls).
func (h *Harness) RunSource(maxSteps int) *Harness {
	for i := 0; h.err == nil && i < maxSteps; i++ {
		more, err := h.src.Next(h)
		h.record(err)
		if !more {
			break
		}
	}
	return h.CloseOp()
}

// Out returns everything emitted on the given output port.
func (h *Harness) Out(port int) []queue.Item { return h.outs[port] }

// OutTuples returns only the tuples emitted on the port, in order.
func (h *Harness) OutTuples(port int) []stream.Tuple {
	var ts []stream.Tuple
	for _, it := range h.outs[port] {
		if it.Kind == queue.ItemTuple {
			ts = append(ts, it.Tuple)
		}
	}
	return ts
}

// OutPuncts returns only the embedded punctuation emitted on the port.
func (h *Harness) OutPuncts(port int) []punct.Embedded {
	var es []punct.Embedded
	for _, it := range h.outs[port] {
		if it.Kind == queue.ItemPunct {
			es = append(es, *it.Punct)
		}
	}
	return es
}

// SentFeedback returns feedback the operator sent upstream on the given
// input port.
func (h *Harness) SentFeedback(input int) []core.Feedback { return h.feedback[input] }

// Reset clears recorded output (state inside the operator is untouched).
func (h *Harness) Reset() *Harness {
	for i := range h.outs {
		h.outs[i] = nil
	}
	h.feedback = map[int][]core.Feedback{}
	return h
}

// ---------------------------------------------------------------------------
// Context implementation.
// ---------------------------------------------------------------------------

// Emit implements Context.
func (h *Harness) Emit(t stream.Tuple) { h.EmitTo(0, t) }

// EmitTo implements Context.
func (h *Harness) EmitTo(port int, t stream.Tuple) {
	h.outs[port] = append(h.outs[port], queue.TupleItem(t))
}

// EmitPunct implements Context.
func (h *Harness) EmitPunct(e punct.Embedded) { h.EmitPunctTo(0, e) }

// EmitPunctTo implements Context.
func (h *Harness) EmitPunctTo(port int, e punct.Embedded) {
	h.outs[port] = append(h.outs[port], queue.PunctItem(e))
}

// SendFeedback implements Context.
func (h *Harness) SendFeedback(input int, f core.Feedback) {
	h.feedback[input] = append(h.feedback[input], f)
}

// ShutdownUpstream implements Context by recording the request.
func (h *Harness) ShutdownUpstream(input int) {
	h.shutdowns = append(h.shutdowns, input)
}

// ShutdownsSent returns the inputs the operator asked to shut down.
func (h *Harness) ShutdownsSent() []int { return append([]int(nil), h.shutdowns...) }

// NumInputs implements Context.
func (h *Harness) NumInputs() int {
	if h.op != nil {
		return len(h.op.InSchemas())
	}
	return 0
}

// NumOutputs implements Context.
func (h *Harness) NumOutputs() int { return len(h.outs) }

// Logf implements Context (discarded).
func (h *Harness) Logf(format string, args ...any) { _ = fmt.Sprintf(format, args...) }
