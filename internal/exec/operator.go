// Package exec is the query execution runtime, modelled on NiagaraST's
// push-based pipelined architecture (§5): each operator runs as its own
// goroutine ("operators run as threads"), connected by paged data queues
// flowing downstream and control channels flowing upstream. Control
// messages — feedback punctuation and shutdown — are out-of-band and
// processed with priority over pending tuples.
//
// The package provides two drivers over the same Operator interface:
//
//   - Graph/Run: the concurrent runtime (goroutine per operator);
//   - Harness: a deterministic, synchronous driver used by unit tests.
package exec

import (
	"repro/internal/core"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/stream"
)

// Context is the surface through which an operator interacts with the
// runtime: emitting data and punctuation downstream, and sending feedback
// punctuation upstream. Emit/EmitPunct must only be called from the
// operator's own callback goroutine; SendFeedback is additionally safe
// from other goroutines under the Graph runtime (network transports use
// this to relay remote feedback as it arrives).
type Context interface {
	// Emit sends a tuple to output port 0.
	Emit(t stream.Tuple)
	// EmitTo sends a tuple to the given output port.
	EmitTo(port int, t stream.Tuple)
	// EmitPunct sends embedded punctuation to output port 0.
	EmitPunct(e punct.Embedded)
	// EmitPunctTo sends embedded punctuation to the given output port.
	EmitPunctTo(port int, e punct.Embedded)
	// SendFeedback sends feedback punctuation upstream to the operator
	// feeding the given input port. It is the paper's dashed arrow in
	// Figure 2(b).
	SendFeedback(input int, f core.Feedback)
	// ShutdownUpstream sends the out-of-band shutdown control message to
	// the operator feeding the given input port (§5: the upstream control
	// channel carries "feedback punctuation and shutdown messages"). A
	// producer stops once every consumer has asked it to, and relays the
	// shutdown further up.
	ShutdownUpstream(input int)
	// NumInputs reports how many input ports are wired.
	NumInputs() int
	// NumOutputs reports how many output ports are wired.
	NumOutputs() int
	// Logf writes a diagnostic line (discarded unless the runtime was
	// given a log writer).
	Logf(format string, args ...any)
}

// Operator is a stream operator with zero or more inputs and zero or more
// outputs. Implementations are single-goroutine: the runtime serializes all
// callbacks on one operator.
type Operator interface {
	// Name identifies the operator instance in logs and stats.
	Name() string
	// InSchemas returns one schema per input port.
	InSchemas() []stream.Schema
	// OutSchemas returns one schema per output port.
	OutSchemas() []stream.Schema
	// Open is called once before any event.
	Open(ctx Context) error
	// ProcessTuple handles one data tuple from the given input.
	ProcessTuple(input int, t stream.Tuple, ctx Context) error
	// ProcessPunct handles embedded punctuation from the given input.
	ProcessPunct(input int, e punct.Embedded, ctx Context) error
	// ProcessFeedback handles feedback punctuation arriving from the
	// consumer of the given output port. Feedback-unaware operators
	// simply return nil (they "ignore feedback and are unable to further
	// propagate it", §5).
	ProcessFeedback(output int, f core.Feedback, ctx Context) error
	// ProcessEOS is called when the given input ends. After every input
	// has ended, Close is called.
	ProcessEOS(input int, ctx Context) error
	// Close is called once after all inputs ended (or on shutdown);
	// operators flush remaining state here.
	Close(ctx Context) error
}

// TupleBatcher is an optional Operator fast path: the runtime hands an
// implementing operator maximal runs of consecutive tuples from one page in
// a single call instead of one ProcessTuple call each. Every item in the
// slice has Kind ItemTuple. The call must be exactly equivalent to invoking
// ProcessTuple on each tuple in order — same emissions, same state, same
// stats — because the runtime freely mixes the two paths (per-item dispatch
// remains in use for barrier alignment and singleton runs). The slice and
// its backing page are only valid for the duration of the call.
type TupleBatcher interface {
	ProcessTupleBatch(input int, items []queue.Item, ctx Context) error
}

// TupleBatchApplier is an optional Operator fast path one level below
// TupleBatcher: the caller has already unwrapped a run of queue items into
// bare tuples (e.g. a fused prefix kernel filtering survivors in its scratch
// buffer) and hands the run straight to the stateful consumer. The call must
// be exactly equivalent to invoking ProcessTuple on each tuple in order —
// same emissions, same state, same stats. The slice is only valid for the
// duration of the call and must not be retained or mutated.
type TupleBatchApplier interface {
	ApplyTupleBatch(input int, ts []stream.Tuple, ctx Context) error
}

// BatchEmitter is an optional Context fast path: a runtime context that
// accepts a run of tuples for output port 0 in one call, paying the page
// capacity check per chunk instead of per tuple. Exactly equivalent to
// calling Emit on each tuple in order. Callers must not retain the slice
// after the call; implementations must not retain it either.
type BatchEmitter interface {
	EmitBatch(ts []stream.Tuple)
}

// BatchEmitterTo extends BatchEmitter to an arbitrary output port, for
// multi-output operators (Split) that partition a run into per-port
// sub-batches. Exactly equivalent to calling EmitTo on each tuple in order.
type BatchEmitterTo interface {
	EmitBatchTo(port int, ts []stream.Tuple)
}

// Source is a self-driving operator with no inputs. The runtime repeatedly
// calls Next, interleaving feedback delivery between calls, until Next
// returns false.
type Source interface {
	// Name identifies the source in logs and stats.
	Name() string
	// OutSchemas returns one schema per output port.
	OutSchemas() []stream.Schema
	// Open is called once before the first Next.
	Open(ctx Context) error
	// Next emits zero or more items and reports whether more remain.
	Next(ctx Context) (more bool, err error)
	// ProcessFeedback handles feedback from the consumer of the given
	// output port.
	ProcessFeedback(output int, f core.Feedback, ctx Context) error
	// Close is called once after the last Next (or on shutdown).
	Close(ctx Context) error
}

// Base provides no-op defaults for optional Operator methods; embed it to
// write compact operators. The zero value is ready to use.
type Base struct{}

// Open implements Operator with a no-op.
func (Base) Open(Context) error { return nil }

// ProcessPunct implements Operator by dropping punctuation. Operators that
// relay stream progress must override this.
func (Base) ProcessPunct(int, punct.Embedded, Context) error { return nil }

// ProcessFeedback implements Operator by ignoring feedback (a
// feedback-unaware operator).
func (Base) ProcessFeedback(int, core.Feedback, Context) error { return nil }

// ProcessEOS implements Operator with a no-op.
func (Base) ProcessEOS(int, Context) error { return nil }

// Close implements Operator with a no-op.
func (Base) Close(Context) error { return nil }
