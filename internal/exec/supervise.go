package exec

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/snapshot"
)

// CheckpointPolicy configures RunCheckpointed's periodic checkpoint loop.
type CheckpointPolicy struct {
	// Interval between checkpoint triggers (default 1s).
	Interval time.Duration
	// FullEvery makes every k-th checkpoint a full snapshot; the ones in
	// between are incremental deltas chained off it. 0 or 1 means every
	// checkpoint is full (no deltas).
	FullEvery int
	// Retain keeps only the newest N epochs (plus whatever they need to
	// restore) after each checkpoint; 0 keeps everything.
	Retain int
	// CompactEvery packs the newest base+delta chain into one
	// self-contained snapshot every k checkpoints; 0 never compacts.
	CompactEvery int
}

// RunCheckpointed runs the plan under periodic checkpoints persisted to
// the chain. The stream never waits on a checkpoint beyond its capture
// phase; persistence failures do not stop the plan (they surface in
// CheckpointStatuses and through the returned maintenance error). It
// returns Run's error; the second return aggregates the first checkpoint,
// retention, or compaction failure, if any.
func (g *Graph) RunCheckpointed(chain *snapshot.Chain, p CheckpointPolicy) (runErr, chkErr error) {
	return g.checkpointLoop(chain, p, func(epoch int64, count int, stop <-chan struct{}, noteErr func(error)) {
		if st, ok := g.CheckpointStatus(epoch); ok && st.Err != nil {
			noteErr(st.Err)
			return
		}
		g.maintainChain(chain, p, epoch, count, noteErr)
	})
}

// maintainChain runs a cycle's compaction and retention for one
// successfully persisted epoch.
func (g *Graph) maintainChain(chain *snapshot.Chain, p CheckpointPolicy, epoch int64, count int, noteErr func(error)) {
	if p.CompactEvery > 0 && count%p.CompactEvery == 0 {
		if err := chain.Compact(); err != nil {
			noteErr(fmt.Errorf("exec: compact after epoch %d: %w", epoch, err))
		}
	}
	if p.Retain > 0 {
		if err := chain.RetainFrom(epoch, p.Retain); err != nil {
			noteErr(fmt.Errorf("exec: retention after epoch %d: %w", epoch, err))
		}
	}
}

// checkpointLoop is the shared periodic driver behind Graph.RunCheckpointed
// and DistCoordinator.RunCheckpointed: run the plan while a ticker triggers
// one checkpoint per interval (full/delta per the policy's cadence) and
// hands each completed epoch to cycle — which verifies the outcome, runs
// any cross-process commit work, and performs maintenance. Trigger failures
// (not running yet, already stopping, one in flight) skip the tick. The
// returned chkErr is the first error any cycle noted.
func (g *Graph) checkpointLoop(chain *snapshot.Chain, p CheckpointPolicy, cycle func(epoch int64, count int, stop <-chan struct{}, noteErr func(error))) (runErr, chkErr error) {
	if p.Interval <= 0 {
		p.Interval = time.Second
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	noteErr := func(err error) {
		mu.Lock()
		if chkErr == nil {
			chkErr = err
		}
		mu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(p.Interval)
		defer tick.Stop()
		count := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			mode := snapshot.CaptureDelta
			if p.FullEvery <= 1 || count%p.FullEvery == 0 {
				mode = snapshot.CaptureFull
			}
			c, err := g.triggerCheckpoint(mode, chain)
			if err != nil {
				continue
			}
			count++
			select {
			case <-c.done: // persisted (or failed) — safe to run the cycle
			case <-stop:
				return
			}
			cycle(c.epoch, count, stop, noteErr)
		}
	}()
	runErr = g.Run()
	close(stop)
	wg.Wait()
	g.WaitCheckpoints()
	mu.Lock()
	defer mu.Unlock()
	return runErr, chkErr
}
