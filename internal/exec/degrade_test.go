package exec

import (
	"context"
	"errors"
	"testing"

	"repro/internal/snapshot"
)

// TestRestoreLatestIntactDegrades: a corrupted blob at the newest epoch
// must not fail the restore — the graph falls back to the newest intact
// older epoch (surfacing the typed skip), truncates the corrupt tail so
// resumed epoch numbering cannot collide with it, and the recovered run
// still produces exactly the uninterrupted result.
func TestRestoreLatestIntactDegrades(t *testing.T) {
	const total = 400
	build := func(open bool) (*Graph, *limitedSource, *Collector) {
		src := &limitedSource{schema: incrSchema, total: total}
		if open {
			src.limit.Store(total)
		}
		sink := NewCollector("sink", incrSchema)
		g := NewGraph()
		id := g.AddSource(src)
		g.Add(sink, From(id))
		return g, src, sink
	}

	// Uninterrupted reference.
	gRef, _, sinkRef := build(true)
	if err := gRef.Run(); err != nil {
		t.Fatal(err)
	}
	want := sinkRef.Tuples()

	// Checkpoint a base and two deltas, then die.
	g1, src1, _ := build(false)
	runErr := make(chan error, 1)
	go func() { runErr <- g1.Run() }()
	chain := snapshot.NewChain(snapshot.NewMemory())
	ctx := context.Background()
	var epochs []int64
	for i, stop := range []int64{250, 280, 310} {
		src1.limit.Store(stop)
		src1.waitPos(t, stop)
		var (
			snap *snapshot.Snapshot
			err  error
		)
		if i == 0 {
			snap, err = g1.Checkpoint(ctx)
		} else {
			snap, err = g1.CheckpointIncremental(ctx)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := chain.Put(snap); err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, snap.Epoch)
	}
	g1.Kill()
	if err := <-runErr; !errors.Is(err, ErrKilled) {
		t.Fatalf("killed run returned %v", err)
	}

	// Bit-flip the newest delta in storage.
	id := snapshot.IDFor(epochs[2], epochs[1])
	blob, err := chain.Backend().Get(id)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x10
	if err := chain.Backend().Put(id, blob); err != nil {
		t.Fatal(err)
	}

	// Restore must degrade to the middle epoch, typed and truncated.
	g2, _, sink2 := build(true)
	ok, skipped, err := g2.RestoreLatestIntact(chain)
	if err != nil || !ok {
		t.Fatalf("RestoreLatestIntact: ok=%v err=%v", ok, err)
	}
	if len(skipped) != 1 || skipped[0].Epoch != epochs[2] || !errors.Is(skipped[0].Err, snapshot.ErrCorruptSnapshot) {
		t.Fatalf("skipped = %+v, want one typed skip of epoch %d", skipped, epochs[2])
	}
	if latest, okL, err := chain.LatestEpoch(); err != nil || !okL || latest != epochs[1] {
		t.Fatalf("corrupt tail not truncated: latest = %d ok=%v err=%v, want %d", latest, okL, err, epochs[1])
	}
	if err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	got := sink2.Tuples()
	if len(got) != len(want) {
		t.Fatalf("recovered run recorded %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) || got[i].Seq != want[i].Seq {
			t.Fatalf("tuple %d diverged: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestRestoreCommittedDegrades: a corrupt coordinator-side chain at the
// newest committed epoch must walk the restore back to the previous
// commit, truncating both the manifest log and the local chain so the
// resumed run can re-commit the lost epochs.
func TestRestoreCommittedDegrades(t *testing.T) {
	const total = 400
	build := func(open bool) (*Graph, *limitedSource, *Collector) {
		src := &limitedSource{schema: incrSchema, total: total}
		if open {
			src.limit.Store(total)
		}
		sink := NewCollector("sink", incrSchema)
		g := NewGraph()
		id := g.AddSource(src)
		g.Add(sink, From(id))
		return g, src, sink
	}

	// Run a single-part "distributed" plan far enough to commit two cuts.
	g1, src1, _ := build(false)
	runErr := make(chan error, 1)
	go func() { runErr <- g1.Run() }()
	backend := snapshot.NewMemory()
	chain := snapshot.NewChain(backend)
	log := snapshot.NewDistLog(backend)
	ctx := context.Background()
	var epochs []int64
	for i, stop := range []int64{250, 300} {
		src1.limit.Store(stop)
		src1.waitPos(t, stop)
		var (
			snap *snapshot.Snapshot
			err  error
		)
		if i == 0 {
			snap, err = g1.Checkpoint(ctx)
		} else {
			snap, err = g1.CheckpointIncremental(ctx)
		}
		if err != nil {
			t.Fatal(err)
		}
		id, err := chain.Put(snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Commit(&snapshot.DistManifest{Epoch: snap.Epoch,
			Parts: []snapshot.DistPart{{Part: "coord", Epoch: snap.Epoch, Chain: id}}}); err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, snap.Epoch)
	}
	g1.Kill()
	if err := <-runErr; !errors.Is(err, ErrKilled) {
		t.Fatalf("killed run returned %v", err)
	}

	// Damage the newest committed epoch's chain blob.
	id := snapshot.IDFor(epochs[1], epochs[0])
	blob, err := backend.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/3] ^= 0x04
	if err := backend.Put(id, blob); err != nil {
		t.Fatal(err)
	}

	g2, _, _ := build(true)
	dc := NewDistCoordinator(g2, "coord", chain, log)
	ok, err := dc.RestoreCommitted()
	if err != nil || !ok {
		t.Fatalf("RestoreCommitted: ok=%v err=%v", ok, err)
	}
	if dc.CommittedEpoch() != epochs[0] {
		t.Fatalf("restored commit = %d, want fallback to %d", dc.CommittedEpoch(), epochs[0])
	}
	deg := dc.Degraded()
	if len(deg) != 1 || deg[0].Epoch != epochs[1] || !errors.Is(deg[0].Err, snapshot.ErrCorruptSnapshot) {
		t.Fatalf("degraded = %+v, want one typed skip of epoch %d", deg, epochs[1])
	}
	// Both the manifest log and the chain must have rewound, so the epoch
	// can be committed again by the resumed run.
	if m, okL, err := log.Latest(); err != nil || !okL || m.Epoch != epochs[0] {
		t.Fatalf("log head = %+v ok=%v err=%v, want %d", m, okL, err, epochs[0])
	}
	if latest, okL, err := chain.LatestEpoch(); err != nil || !okL || latest != epochs[0] {
		t.Fatalf("chain latest = %d ok=%v err=%v, want %d", latest, okL, err, epochs[0])
	}
	if err := log.Commit(&snapshot.DistManifest{Epoch: epochs[1],
		Parts: []snapshot.DistPart{{Part: "coord", Epoch: epochs[1], Chain: id}}}); err != nil {
		t.Fatalf("re-commit of degraded epoch: %v", err)
	}
}
