package exec

import (
	"time"

	"repro/internal/punct"
	"repro/internal/telemetry"
)

// Telemetry wiring: the runtime half of internal/telemetry. A graph with an
// attached sink allocates one NodeMetrics per node at registration time;
// node runners tally into plain locals during each page and flush with a
// handful of atomic adds per page (runner.go), so instrumentation respects
// the §2 hot-path contract — zero allocations and no per-tuple atomics.
// Scrapes pull: counters are read off atomics, edges are snapshotted from
// the queues' own atomic stats, and epoch lifecycle events are recorded
// into the sink's bounded timeline as the checkpoint machinery runs.

// SetTelemetry attaches a telemetry sink. Call before Run; node and edge
// registration happens inside Run, after prepare wires the plan.
func (g *Graph) SetTelemetry(t *telemetry.Telemetry) { g.tel = t }

// Telemetry returns the attached sink (nil when none).
func (g *Graph) Telemetry() *telemetry.Telemetry { return g.tel }

// tracer returns the attached control-plane tracer; nil (always disabled)
// without a sink.
func (g *Graph) tracer() *telemetry.Tracer {
	if g.tel == nil {
		return nil
	}
	return g.tel.Tracer
}

// registerTelemetry allocates per-node metrics and registers every node,
// the edge-snapshot closure, and process-wide vars with the attached
// registry. Called from Run after prepare, before node goroutines start, so
// registration never races execution.
func (g *Graph) registerTelemetry() {
	if g.tel == nil {
		return
	}
	reg := g.tel.Registry
	for _, n := range g.nodes {
		n.nm = &telemetry.NodeMetrics{}
		var impl any = n.op
		if n.src != nil {
			impl = n.src
		}
		var vars []telemetry.Var
		if ve, ok := impl.(telemetry.VarExporter); ok {
			vars = ve.TelemetryVars()
		}
		reg.RegisterNode(int(n.id), n.name(), n.nm, vars)
	}
	reg.AddGlobal(telemetry.Var{
		Name: "pace_punct_patterns_compiled_total",
		Help: "Punctuation patterns compiled process-wide.",
		Kind: telemetry.Counter, Value: punct.CompiledCount,
	})
	reg.SetEdges(g.edgeSnapshots)
}

// edgeSnapshots converts the live edge set into telemetry's plain structs;
// runs at scrape time, concurrently with the plan (Edges reads only the
// queues' atomic stats and the consumers' scrape-safe counters).
func (g *Graph) edgeSnapshots() []telemetry.EdgeStat {
	edges := g.Edges()
	out := make([]telemetry.EdgeStat, len(edges))
	for i, e := range edges {
		out[i] = telemetry.EdgeStat{
			Producer: e.Producer, Out: e.Out,
			Consumer: e.Consumer, Input: e.Input, Label: e.Label,
			Tuples: e.Stats.Tuples, Puncts: e.Stats.Puncts,
			Pages: e.Stats.Pages, PunctFlushes: e.Stats.PunctFlushes,
			Controls:   e.Stats.Controls,
			Suppressed: e.Suppressed, PunctDropped: e.PunctDropped,
			Depth: e.Depth,
		}
	}
	return out
}

// recordEpoch appends one checkpoint lifecycle event to the sink's epoch
// timeline (no-op without a sink). Safe to call with chkMu held — the
// timeline has its own lock and never calls back into the graph.
func (g *Graph) recordEpoch(phase string, epoch int64, part string, dur time.Duration, err error) {
	if g.tel == nil {
		return
	}
	ev := telemetry.EpochEvent{Epoch: epoch, Phase: phase, Part: part, Dur: dur}
	if err != nil {
		ev.Err = err.Error()
	}
	g.tel.Timeline.Record(ev)
}
