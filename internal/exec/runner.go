package exec

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/stream"

	"repro/internal/punct"
)

// Run executes the plan: one goroutine per node, paged queues between them,
// upstream control channels for feedback. It returns after every node has
// finished (all sources exhausted and all data drained), or after the first
// node error (remaining nodes are shut down).
func (g *Graph) Run() error {
	if err := g.prepare(); err != nil {
		return err
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstMu sync.Once
		runErr  error
	)
	done := make(chan struct{}) // closed on first error: global shutdown
	fail := func(err error) {
		firstMu.Do(func() {
			mu.Lock()
			runErr = err
			mu.Unlock()
			close(done)
		})
	}
	for _, n := range g.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			r := &nodeRunner{node: n, graph: g, done: done}
			if err := r.run(); err != nil {
				fail(fmt.Errorf("exec: node %q: %w", n.name(), err))
			}
		}(n)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return runErr
}

// inEvent is one page arriving on an input port.
type inEvent struct {
	input int
	page  *queue.Page
	ok    bool // false: channel closed (should not happen before EOS item)
}

// ctrlEvent is one control message arriving from an output port's consumer.
type ctrlEvent struct {
	output int
	msg    queue.Control
}

// bitset tracks a small set of output-port indices without a map on the
// control path.
type bitset struct {
	words []uint64
	count int
}

func newBitset(n int) bitset { return bitset{words: make([]uint64, (n+63)/64)} }

// set marks bit i, returning whether it was newly set.
func (b *bitset) set(i int) bool {
	w, m := i/64, uint64(1)<<(i%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// DefaultControlInterval is the number of page items processed between
// control-queue rechecks. Feedback still overtakes pending tuples — the
// paper's §5 priority property — just within a bounded window of K items
// instead of after every single one; see DESIGN.md for the correctness
// argument.
const DefaultControlInterval = 32

// nodeRunner drives one node goroutine. It also implements Context for the
// node's operator.
type nodeRunner struct {
	node  *node
	graph *Graph
	done  <-chan struct{}

	dataCh chan inEvent
	ctrlCh chan ctrlEvent

	ctrlEvery    int    // items between control rechecks (K)
	shutdownOuts bitset // outputs whose consumers sent shutdown
	stopping     bool
}

func (r *nodeRunner) run() error {
	n := r.node
	r.ctrlEvery = r.graph.ctrlEvery
	if r.ctrlEvery <= 0 {
		r.ctrlEvery = DefaultControlInterval
	}
	r.shutdownOuts = newBitset(len(n.outConns))
	r.ctrlCh = make(chan ctrlEvent, 4*len(n.outConns)+1)
	// One buffered slot per input keeps single-input steady state from
	// serializing forwarder and operator on an unbuffered rendezvous.
	r.dataCh = make(chan inEvent, len(n.inConns))

	var fwd sync.WaitGroup
	stopFwd := make(chan struct{})
	defer func() {
		close(stopFwd)
		// Abort input connections so upstream producers blocked on full
		// queues can finish; then drain forwarders.
		for _, c := range n.inConns {
			c.Abort()
		}
		go func() {
			for ev := range r.dataCh {
				queue.Release(ev.page)
			}
		}()
		fwd.Wait()
		close(r.dataCh)
	}()

	// Control forwarders: one per output edge (messages from consumers).
	// The conn-side control queue is unbounded so senders never block;
	// the forwarder moves messages into the node's priority channel.
	for out, c := range n.outConns {
		fwd.Add(1)
		go func(out int, c *queue.Conn) {
			defer fwd.Done()
			for {
				select {
				case <-c.ControlNotify():
					for {
						m, ok := c.PollControl()
						if !ok {
							break
						}
						select {
						case r.ctrlCh <- ctrlEvent{output: out, msg: m}:
						case <-stopFwd:
							return
						}
					}
				case <-stopFwd:
					return
				}
			}
		}(out, c)
	}
	// Data forwarders: one per input edge.
	for in, c := range n.inConns {
		fwd.Add(1)
		go func(in int, c *queue.Conn) {
			defer fwd.Done()
			for {
				p, ok := c.Recv()
				if !ok {
					return
				}
				select {
				case r.dataCh <- inEvent{input: in, page: p, ok: true}:
				case <-stopFwd:
					return
				}
			}
		}(in, c)
	}

	// Always close outputs on the way out so downstream sees EOS.
	defer func() {
		for _, c := range n.outConns {
			c.CloseSend()
		}
	}()

	if n.src != nil {
		return r.runSource()
	}
	return r.runOperator()
}

func (r *nodeRunner) runSource() error {
	src := r.node.src
	if err := src.Open(r); err != nil {
		return err
	}
	for !r.stopping {
		if err := r.drainControl(func(out int, f core.Feedback) error {
			return src.ProcessFeedback(out, f, r)
		}); err != nil {
			return err
		}
		if r.stopping {
			break
		}
		select {
		case <-r.done:
			r.stopping = true
		default:
			more, err := src.Next(r)
			if err != nil {
				return err
			}
			if !more {
				r.stopping = true
			}
		}
	}
	return src.Close(r)
}

func (r *nodeRunner) runOperator() error {
	op := r.node.op
	if err := op.Open(r); err != nil {
		return err
	}
	onFeedback := func(out int, f core.Feedback) error {
		return op.ProcessFeedback(out, f, r)
	}
	openInputs := len(r.node.inConns)
	for openInputs > 0 && !r.stopping {
		// Control before data (§5: control messages are high-priority).
		if err := r.drainControl(onFeedback); err != nil {
			return err
		}
		if r.stopping {
			break
		}
		// Steady-state fast path: the control queue was just drained, so if
		// a page is already buffered take it without the full blocking
		// select. done stays in the non-blocking poll so a global abort is
		// still observed within one page even while input is backlogged.
		var ev inEvent
		select {
		case <-r.done:
			r.stopping = true
			continue
		case ev = <-r.dataCh:
		default:
			select {
			case <-r.done:
				r.stopping = true
				continue
			case ce := <-r.ctrlCh:
				if err := r.handleControl(ce, onFeedback); err != nil {
					return err
				}
				continue
			case ev = <-r.dataCh:
			}
		}
		err := func() error {
			items := ev.page.Items
			for i := range items {
				// Re-check control every K items so feedback overtakes
				// pending tuples within a bounded window without paying
				// a channel poll per tuple.
				if i%r.ctrlEvery == 0 {
					if err := r.drainControl(onFeedback); err != nil {
						return err
					}
					if r.stopping {
						return nil
					}
				}
				switch it := &items[i]; it.Kind {
				case queue.ItemTuple:
					if err := op.ProcessTuple(ev.input, it.Tuple, r); err != nil {
						return err
					}
				case queue.ItemPunct:
					if err := op.ProcessPunct(ev.input, *it.Punct, r); err != nil {
						return err
					}
				case queue.ItemEOS:
					if err := op.ProcessEOS(ev.input, r); err != nil {
						return err
					}
					openInputs--
				}
			}
			return nil
		}()
		// Ownership transfer complete on every exit: nothing above retains
		// the page (operators copy what they keep), so it goes back to the
		// recycling pool before any error propagates.
		queue.Release(ev.page)
		if err != nil {
			return err
		}
	}
	return op.Close(r)
}

// drainControl handles all pending control messages without blocking.
func (r *nodeRunner) drainControl(onFeedback func(int, core.Feedback) error) error {
	for {
		select {
		case ce := <-r.ctrlCh:
			if err := r.handleControl(ce, onFeedback); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (r *nodeRunner) handleControl(ce ctrlEvent, onFeedback func(int, core.Feedback) error) error {
	switch ce.msg.Kind {
	case queue.CtrlFeedback:
		return onFeedback(ce.output, ce.msg.Feedback)
	case queue.CtrlShutdown:
		r.shutdownOuts.set(ce.output)
		if r.shutdownOuts.count == len(r.node.outConns) && len(r.node.outConns) > 0 {
			// Every consumer has asked us to stop: stop, and relay the
			// shutdown upstream.
			r.stopping = true
			for _, c := range r.node.inConns {
				c.SendControl(queue.Control{Kind: queue.CtrlShutdown})
			}
		}
		return nil
	}
	return fmt.Errorf("unknown control message kind %d", ce.msg.Kind)
}

// ---------------------------------------------------------------------------
// Context implementation.
// ---------------------------------------------------------------------------

// Emit implements Context.
func (r *nodeRunner) Emit(t stream.Tuple) { r.EmitTo(0, t) }

// EmitTo implements Context.
func (r *nodeRunner) EmitTo(port int, t stream.Tuple) {
	r.node.outConns[port].PutTuple(t)
}

// EmitPunct implements Context.
func (r *nodeRunner) EmitPunct(e punct.Embedded) { r.EmitPunctTo(0, e) }

// EmitPunctTo implements Context.
func (r *nodeRunner) EmitPunctTo(port int, e punct.Embedded) {
	r.node.outConns[port].PutPunct(e)
}

// SendFeedback implements Context: feedback goes to the producer feeding
// the given input port, against the data direction.
func (r *nodeRunner) SendFeedback(input int, f core.Feedback) {
	r.node.inConns[input].SendFeedback(f)
}

// ShutdownUpstream implements Context.
func (r *nodeRunner) ShutdownUpstream(input int) {
	r.node.inConns[input].SendControl(queue.Control{Kind: queue.CtrlShutdown})
}

// NumInputs implements Context.
func (r *nodeRunner) NumInputs() int { return len(r.node.inConns) }

// NumOutputs implements Context.
func (r *nodeRunner) NumOutputs() int { return len(r.node.outConns) }

// Logf implements Context.
func (r *nodeRunner) Logf(format string, args ...any) {
	if w := r.graph.log; w != nil {
		fmt.Fprintf(w, "[%s] "+format+"\n", append([]any{r.node.name()}, args...)...)
	}
}
