package exec

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/stream"

	"repro/internal/punct"
)

// Run executes the plan: one goroutine per node, paged queues between them,
// upstream control channels for feedback. It returns after every node has
// finished (all sources exhausted and all data drained), or after the first
// node error (remaining nodes are shut down).
func (g *Graph) Run() error {
	if err := g.prepare(); err != nil {
		return err
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstMu sync.Once
		runErr  error
	)
	done := make(chan struct{}) // closed on first error: global shutdown
	fail := func(err error) {
		firstMu.Do(func() {
			mu.Lock()
			runErr = err
			mu.Unlock()
			close(done)
		})
	}
	for _, n := range g.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			r := &nodeRunner{node: n, graph: g, done: done}
			if err := r.run(); err != nil {
				fail(fmt.Errorf("exec: node %q: %w", n.name(), err))
			}
		}(n)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return runErr
}

// inEvent is one page arriving on an input port.
type inEvent struct {
	input int
	page  *queue.Page
	ok    bool // false: channel closed (should not happen before EOS item)
}

// ctrlEvent is one control message arriving from an output port's consumer.
type ctrlEvent struct {
	output int
	msg    queue.Control
}

// nodeRunner drives one node goroutine. It also implements Context for the
// node's operator.
type nodeRunner struct {
	node  *node
	graph *Graph
	done  <-chan struct{}

	dataCh chan inEvent
	ctrlCh chan ctrlEvent

	shutdownOuts map[int]bool // outputs whose consumers sent shutdown
	stopping     bool
}

func (r *nodeRunner) run() error {
	n := r.node
	r.shutdownOuts = map[int]bool{}
	r.ctrlCh = make(chan ctrlEvent, 4*len(n.outConns)+1)
	r.dataCh = make(chan inEvent)

	var fwd sync.WaitGroup
	stopFwd := make(chan struct{})
	defer func() {
		close(stopFwd)
		// Abort input connections so upstream producers blocked on full
		// queues can finish; then drain forwarders.
		for _, c := range n.inConns {
			c.Abort()
		}
		go func() {
			for range r.dataCh {
			}
		}()
		fwd.Wait()
		close(r.dataCh)
	}()

	// Control forwarders: one per output edge (messages from consumers).
	// The conn-side control queue is unbounded so senders never block;
	// the forwarder moves messages into the node's priority channel.
	for out, c := range n.outConns {
		fwd.Add(1)
		go func(out int, c *queue.Conn) {
			defer fwd.Done()
			for {
				select {
				case <-c.ControlNotify():
					for {
						m, ok := c.PollControl()
						if !ok {
							break
						}
						select {
						case r.ctrlCh <- ctrlEvent{output: out, msg: m}:
						case <-stopFwd:
							return
						}
					}
				case <-stopFwd:
					return
				}
			}
		}(out, c)
	}
	// Data forwarders: one per input edge.
	for in, c := range n.inConns {
		fwd.Add(1)
		go func(in int, c *queue.Conn) {
			defer fwd.Done()
			for {
				p, ok := c.Recv()
				if !ok {
					return
				}
				select {
				case r.dataCh <- inEvent{input: in, page: p, ok: true}:
				case <-stopFwd:
					return
				}
			}
		}(in, c)
	}

	// Always close outputs on the way out so downstream sees EOS.
	defer func() {
		for _, c := range n.outConns {
			c.CloseSend()
		}
	}()

	if n.src != nil {
		return r.runSource()
	}
	return r.runOperator()
}

func (r *nodeRunner) runSource() error {
	src := r.node.src
	if err := src.Open(r); err != nil {
		return err
	}
	for !r.stopping {
		if err := r.drainControl(func(out int, f core.Feedback) error {
			return src.ProcessFeedback(out, f, r)
		}); err != nil {
			return err
		}
		if r.stopping {
			break
		}
		select {
		case <-r.done:
			r.stopping = true
		default:
			more, err := src.Next(r)
			if err != nil {
				return err
			}
			if !more {
				r.stopping = true
			}
		}
	}
	return src.Close(r)
}

func (r *nodeRunner) runOperator() error {
	op := r.node.op
	if err := op.Open(r); err != nil {
		return err
	}
	onFeedback := func(out int, f core.Feedback) error {
		return op.ProcessFeedback(out, f, r)
	}
	openInputs := len(r.node.inConns)
	for openInputs > 0 && !r.stopping {
		// Control before data (§5: control messages are high-priority).
		if err := r.drainControl(onFeedback); err != nil {
			return err
		}
		if r.stopping {
			break
		}
		select {
		case <-r.done:
			r.stopping = true
		case ce := <-r.ctrlCh:
			if err := r.handleControl(ce, onFeedback); err != nil {
				return err
			}
		case ev := <-r.dataCh:
			for _, it := range ev.page.Items {
				// Re-check control between items so feedback overtakes
				// pending tuples.
				if err := r.drainControl(onFeedback); err != nil {
					return err
				}
				if r.stopping {
					break
				}
				switch it.Kind {
				case queue.ItemTuple:
					if err := op.ProcessTuple(ev.input, it.Tuple, r); err != nil {
						return err
					}
				case queue.ItemPunct:
					if err := op.ProcessPunct(ev.input, it.Punct, r); err != nil {
						return err
					}
				case queue.ItemEOS:
					if err := op.ProcessEOS(ev.input, r); err != nil {
						return err
					}
					openInputs--
				}
			}
		}
	}
	return op.Close(r)
}

// drainControl handles all pending control messages without blocking.
func (r *nodeRunner) drainControl(onFeedback func(int, core.Feedback) error) error {
	for {
		select {
		case ce := <-r.ctrlCh:
			if err := r.handleControl(ce, onFeedback); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (r *nodeRunner) handleControl(ce ctrlEvent, onFeedback func(int, core.Feedback) error) error {
	switch ce.msg.Kind {
	case queue.CtrlFeedback:
		return onFeedback(ce.output, ce.msg.Feedback)
	case queue.CtrlShutdown:
		r.shutdownOuts[ce.output] = true
		if len(r.shutdownOuts) == len(r.node.outConns) && len(r.node.outConns) > 0 {
			// Every consumer has asked us to stop: stop, and relay the
			// shutdown upstream.
			r.stopping = true
			for _, c := range r.node.inConns {
				c.SendControl(queue.Control{Kind: queue.CtrlShutdown})
			}
		}
		return nil
	}
	return fmt.Errorf("unknown control message kind %d", ce.msg.Kind)
}

// ---------------------------------------------------------------------------
// Context implementation.
// ---------------------------------------------------------------------------

// Emit implements Context.
func (r *nodeRunner) Emit(t stream.Tuple) { r.EmitTo(0, t) }

// EmitTo implements Context.
func (r *nodeRunner) EmitTo(port int, t stream.Tuple) {
	r.node.outConns[port].PutTuple(t)
}

// EmitPunct implements Context.
func (r *nodeRunner) EmitPunct(e punct.Embedded) { r.EmitPunctTo(0, e) }

// EmitPunctTo implements Context.
func (r *nodeRunner) EmitPunctTo(port int, e punct.Embedded) {
	r.node.outConns[port].PutPunct(e)
}

// SendFeedback implements Context: feedback goes to the producer feeding
// the given input port, against the data direction.
func (r *nodeRunner) SendFeedback(input int, f core.Feedback) {
	r.node.inConns[input].SendFeedback(f)
}

// ShutdownUpstream implements Context.
func (r *nodeRunner) ShutdownUpstream(input int) {
	r.node.inConns[input].SendControl(queue.Control{Kind: queue.CtrlShutdown})
}

// NumInputs implements Context.
func (r *nodeRunner) NumInputs() int { return len(r.node.inConns) }

// NumOutputs implements Context.
func (r *nodeRunner) NumOutputs() int { return len(r.node.outConns) }

// Logf implements Context.
func (r *nodeRunner) Logf(format string, args ...any) {
	if w := r.graph.log; w != nil {
		fmt.Fprintf(w, "[%s] "+format+"\n", append([]any{r.node.name()}, args...)...)
	}
}
