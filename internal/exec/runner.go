package exec

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/telemetry"

	"repro/internal/punct"
)

// Run executes the plan: one goroutine per node, paged queues between them,
// upstream control channels for feedback. It returns after every node has
// finished (all sources exhausted and all data drained), or after the first
// node error (remaining nodes are shut down).
func (g *Graph) Run() error {
	if err := g.prepare(); err != nil {
		return err
	}
	g.registerTelemetry()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstMu sync.Once
		runErr  error
	)
	done := make(chan struct{}) // closed on first error: global shutdown
	fail := func(err error) {
		firstMu.Do(func() {
			mu.Lock()
			runErr = err
			mu.Unlock()
			close(done)
		})
	}
	g.chkMu.Lock()
	g.running = true
	g.failCh = done
	g.killFn = fail
	g.liveNodes = make(map[NodeID]bool, len(g.nodes))
	for _, n := range g.nodes {
		g.liveNodes[n.id] = true
	}
	g.chkMu.Unlock()
	for _, n := range g.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			r := &nodeRunner{node: n, graph: g, done: done}
			err := r.run()
			if err != nil {
				fail(fmt.Errorf("exec: node %q: %w", n.name(), err))
			}
			// Checkpoint bookkeeping: a clean exit records the node's
			// final state as its cut; a dying one fails any active
			// checkpoint. Runs after run()'s deferred cleanup, so EOS has
			// already been sent downstream.
			g.nodeExit(n, err)
		}(n)
	}
	wg.Wait()
	g.chkMu.Lock()
	g.running = false
	g.killFn = nil
	g.chkMu.Unlock()
	mu.Lock()
	defer mu.Unlock()
	return runErr
}

// inEvent is one page arriving on an input port.
type inEvent struct {
	input int
	page  *queue.Page
	ok    bool // false: channel closed (should not happen before EOS item)
}

// ctrlEvent is one control message arriving from an output port's consumer.
type ctrlEvent struct {
	output int
	msg    queue.Control
}

// bitset tracks a small set of output-port indices without a map on the
// control path.
type bitset struct {
	words []uint64
	count int
}

func newBitset(n int) bitset { return bitset{words: make([]uint64, (n+63)/64)} }

// set marks bit i, returning whether it was newly set.
func (b *bitset) set(i int) bool {
	w, m := i/64, uint64(1)<<(i%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// DefaultControlInterval is the number of page items processed between
// control-queue rechecks. Feedback still overtakes pending tuples — the
// paper's §5 priority property — just within a bounded window of K items
// instead of after every single one; see DESIGN.md for the correctness
// argument.
const DefaultControlInterval = 32

// nodeRunner drives one node goroutine. It also implements Context for the
// node's operator.
type nodeRunner struct {
	node  *node
	graph *Graph
	done  <-chan struct{}

	dataCh chan inEvent
	ctrlCh chan ctrlEvent

	ctrlEvery    int    // items between control rechecks (K)
	shutdownOuts bitset // outputs whose consumers sent shutdown
	stopping     bool
	batcher      TupleBatcher // non-nil when the operator takes tuple runs whole

	onFeedback func(int, core.Feedback) error

	// Telemetry (telemetry.go): nm is the node's counter set (nil without a
	// sink), trace the control-plane tracer (nil-safe). The pg* fields are
	// the per-page tallies — plain ints bumped on the hot path and flushed
	// into nm's atomics once per page, so instrumentation adds no per-tuple
	// atomics and no allocations.
	nm                                      *telemetry.NodeMetrics
	trace                                   *telemetry.Tracer
	pgTuples, pgPuncts, pgBatches, pgChecks int64

	// Checkpoint state (see checkpoint.go): openInputs/inEOS track input
	// liveness for barrier alignment; align is the in-progress alignment;
	// lastCutEpoch is the newest epoch a source has cut.
	openInputs   int
	inEOS        []bool
	align        *alignState
	lastCutEpoch int64
}

// alignState is one in-progress barrier alignment: inputs that have
// delivered the epoch's barrier are frozen — their post-barrier items are
// buffered in deferred — until every live input delivers it, at which
// point the node's state is the consistent cut.
type alignState struct {
	epoch    int64
	got      []bool
	deferred [][]queue.Item
}

func (r *nodeRunner) run() error {
	n := r.node
	r.ctrlEvery = r.graph.ctrlEvery
	if r.ctrlEvery <= 0 {
		r.ctrlEvery = DefaultControlInterval
	}
	r.batcher, _ = n.op.(TupleBatcher)
	r.nm = n.nm
	r.trace = r.graph.tracer()
	r.shutdownOuts = newBitset(len(n.outConns))
	r.ctrlCh = make(chan ctrlEvent, 4*len(n.outConns)+1)
	// One buffered slot per input keeps single-input steady state from
	// serializing forwarder and operator on an unbuffered rendezvous.
	r.dataCh = make(chan inEvent, len(n.inConns))

	var fwd sync.WaitGroup
	stopFwd := make(chan struct{})
	defer func() {
		close(stopFwd)
		// Abort input connections so upstream producers blocked on full
		// queues can finish; then drain forwarders.
		for _, c := range n.inConns {
			c.Abort()
		}
		go func() {
			for ev := range r.dataCh {
				queue.Release(ev.page)
			}
		}()
		fwd.Wait()
		close(r.dataCh)
	}()

	// Control forwarders: one per output edge (messages from consumers).
	// The conn-side control queue is unbounded so senders never block;
	// the forwarder moves messages into the node's priority channel.
	for out, c := range n.outConns {
		fwd.Add(1)
		go func(out int, c *queue.Conn) {
			defer fwd.Done()
			for {
				select {
				case <-c.ControlNotify():
					for {
						m, ok := c.PollControl()
						if !ok {
							break
						}
						select {
						case r.ctrlCh <- ctrlEvent{output: out, msg: m}:
						case <-stopFwd:
							return
						}
					}
				case <-stopFwd:
					return
				}
			}
		}(out, c)
	}
	// Data forwarders: one per input edge.
	for in, c := range n.inConns {
		fwd.Add(1)
		go func(in int, c *queue.Conn) {
			defer fwd.Done()
			for {
				p, ok := c.Recv()
				if !ok {
					return
				}
				select {
				case r.dataCh <- inEvent{input: in, page: p, ok: true}:
				case <-stopFwd:
					return
				}
			}
		}(in, c)
	}

	// Always close outputs on the way out so downstream sees EOS.
	defer func() {
		for _, c := range n.outConns {
			c.CloseSend()
		}
	}()

	if n.src != nil {
		return r.runSource()
	}
	return r.runOperator()
}

func (r *nodeRunner) runSource() error {
	src := r.node.src
	if err := src.Open(r); err != nil {
		return err
	}
	if err := r.graph.restoreNode(r.node); err != nil {
		return err
	}
	r.onFeedback = func(out int, f core.Feedback) error {
		return src.ProcessFeedback(out, f, r)
	}
	// A wire-barrier-driven source (a remote edge under distributed
	// coordination) cuts only where its own in-band barrier sits, via
	// InjectWireBarrier — a poll-based cut here could land before the
	// edge's barrier and strand that edge's in-flight tuples on the wrong
	// side of the epoch.
	wireCut := r.graph.wireBarrier[r.node.id]
	for !r.stopping {
		if err := r.drainControl(r.onFeedback); err != nil {
			return err
		}
		if r.stopping {
			break
		}
		// Between two Next calls the source's state is exactly its replay
		// position, so saving state and injecting the barrier here makes
		// the source's cut consistent by construction.
		if !wireCut {
			r.maybeCutSource()
		}
		select {
		case <-r.done:
			r.stopping = true
		default:
			more, err := src.Next(r)
			if err != nil {
				return err
			}
			if !more {
				r.stopping = true
			}
		}
	}
	return src.Close(r)
}

// maybeCutSource checks for a newly requested checkpoint and, if one is
// pending, captures the source's state and emits its barrier on every
// output.
func (r *nodeRunner) maybeCutSource() {
	c := r.graph.pendingChk.Load()
	if c == nil || c.epoch <= r.lastCutEpoch {
		return
	}
	r.lastCutEpoch = c.epoch
	r.graph.cutNode(r.node, c.epoch)
	for _, conn := range r.node.outConns {
		conn.PutBarrier(c.epoch)
	}
}

// InjectWireBarrier implements SourceBarrierInjector: a barrier-receiving
// source calls it from inside Next, at the exact position its wire barrier
// occupies in its stream, after the hook has registered the epoch. Stale
// epochs (a cancelled epoch's frame still draining) are dropped; the
// forwarded barrier is harmless downstream either way.
func (r *nodeRunner) InjectWireBarrier(epoch int64) {
	if epoch <= r.lastCutEpoch {
		return
	}
	r.lastCutEpoch = epoch
	r.graph.cutNode(r.node, epoch)
	for _, conn := range r.node.outConns {
		conn.PutBarrier(epoch)
	}
}

func (r *nodeRunner) runOperator() error {
	op := r.node.op
	if err := op.Open(r); err != nil {
		return err
	}
	if err := r.graph.restoreNode(r.node); err != nil {
		return err
	}
	r.onFeedback = func(out int, f core.Feedback) error {
		return op.ProcessFeedback(out, f, r)
	}
	r.openInputs = len(r.node.inConns)
	r.inEOS = make([]bool, len(r.node.inConns))
	for r.openInputs > 0 && !r.stopping {
		// Control before data (§5: control messages are high-priority).
		if err := r.drainControl(r.onFeedback); err != nil {
			return err
		}
		if r.stopping {
			break
		}
		// A cancelled checkpoint's freeze must lift even if the frozen
		// input never sees another item (its EOS may already be deferred).
		if r.align != nil && r.alignmentStale() {
			if err := r.abandonAlignment(); err != nil {
				return err
			}
		}
		// Steady-state fast path: the control queue was just drained, so if
		// a page is already buffered take it without the full blocking
		// select. done stays in the non-blocking poll so a global abort is
		// still observed within one page even while input is backlogged.
		var ev inEvent
		select {
		case <-r.done:
			r.stopping = true
			continue
		case ev = <-r.dataCh:
		default:
			if r.align != nil {
				// Aligning: wake periodically so a checkpoint cancelled
				// while every channel is quiet is still noticed above.
				t := time.NewTimer(10 * time.Millisecond)
				select {
				case <-r.done:
					r.stopping = true
				case ce := <-r.ctrlCh:
					if err := r.handleControl(ce, r.onFeedback); err != nil {
						t.Stop()
						return err
					}
				case ev = <-r.dataCh:
				case <-t.C:
				}
				t.Stop()
				if ev.page == nil {
					continue
				}
				break
			}
			select {
			case <-r.done:
				r.stopping = true
				continue
			case ce := <-r.ctrlCh:
				if err := r.handleControl(ce, r.onFeedback); err != nil {
					return err
				}
				continue
			case ev = <-r.dataCh:
			}
		}
		err := r.processPage(ev)
		// Ownership transfer complete on every exit: nothing above retains
		// the page (operators copy what they keep, and frozen-input items
		// are copied into the alignment buffer), so it goes back to the
		// recycling pool before any error propagates.
		queue.Release(ev.page)
		if err != nil {
			return err
		}
	}
	// Deferred-item replay (alignment abandon) can tally outside a page.
	r.flushPageStats()
	return op.Close(r)
}

func (r *nodeRunner) processPage(ev inEvent) error {
	err := r.pageLoop(ev)
	r.flushPageStats()
	return err
}

// flushPageStats moves the page-local telemetry tallies into the node's
// atomic counters — a handful of uncontended adds per page, the same
// batching cadence the K-item control recheck already established.
func (r *nodeRunner) flushPageStats() {
	if nm := r.nm; nm != nil {
		if r.pgTuples != 0 {
			nm.TuplesIn.Add(r.pgTuples)
		}
		if r.pgPuncts != 0 {
			nm.PunctsIn.Add(r.pgPuncts)
		}
		if r.pgBatches != 0 {
			nm.Batches.Add(r.pgBatches)
		}
		if r.pgChecks != 0 {
			nm.Rechecks.Add(r.pgChecks)
		}
	}
	r.pgTuples, r.pgPuncts, r.pgBatches, r.pgChecks = 0, 0, 0, 0
}

//pace:hotpath
func (r *nodeRunner) pageLoop(ev inEvent) error {
	items := ev.page.Items
	for i := 0; i < len(items); i++ {
		// Re-check control every K items so feedback overtakes
		// pending tuples within a bounded window without paying
		// a channel poll per tuple.
		if i%r.ctrlEvery == 0 {
			r.pgChecks++
			if err := r.drainControl(r.onFeedback); err != nil {
				return err
			}
			if r.stopping {
				return nil
			}
		}
		// Batch fast path: hand the operator a maximal run of consecutive
		// tuples in one call, capped at the next control recheck so the
		// feedback-overtaking window is unchanged. Any in-progress barrier
		// alignment falls back to the per-item path, which owns the
		// freeze/defer logic.
		if r.batcher != nil && r.align == nil && items[i].Kind == queue.ItemTuple {
			j := i + 1
			for lim := i + r.ctrlEvery - i%r.ctrlEvery; j < len(items) && j < lim &&
				items[j].Kind == queue.ItemTuple; j++ {
			}
			if err := r.batcher.ProcessTupleBatch(ev.input, items[i:j], r); err != nil {
				return err
			}
			r.pgTuples += int64(j - i)
			r.pgBatches++
			if r.nm != nil {
				r.nm.BatchSize.Observe(int64(j - i))
			}
			i = j - 1
			continue
		}
		if err := r.processItem(ev.input, &items[i]); err != nil {
			return err
		}
	}
	return nil
}

// processItem dispatches one item to the operator, diverting items from
// barrier-frozen inputs into the alignment buffer.
//
//pace:hotpath
func (r *nodeRunner) processItem(input int, it *queue.Item) error {
	if a := r.align; a != nil && a.got[input] {
		if !r.alignmentStale() {
			// Input already delivered this epoch's barrier: everything
			// behind it is on the far side of the cut, so it waits until
			// the cut is taken. The item is copied out — the page is
			// recycled first.
			a.deferred[input] = append(a.deferred[input], *it)
			return nil
		}
		// The aligning epoch's checkpoint was cancelled: lift the freeze
		// (replaying what was deferred) and process this item normally.
		if err := r.abandonAlignment(); err != nil {
			return err
		}
	}
	op := r.node.op
	switch it.Kind {
	case queue.ItemTuple:
		r.pgTuples++
		return op.ProcessTuple(input, it.Tuple, r)
	case queue.ItemPunct:
		r.pgPuncts++
		if r.trace.Enabled() {
			r.trace.Record("punct", r.node.name(), 0, it.Punct.Pattern.String())
		}
		return op.ProcessPunct(input, *it.Punct, r)
	case queue.ItemEOS:
		if err := op.ProcessEOS(input, r); err != nil {
			return err
		}
		r.inEOS[input] = true
		r.openInputs--
		if r.align != nil {
			// An input at EOS stops constraining alignment — the same
			// rule Merge applies to punctuation alignment (DESIGN.md
			// §5.1).
			return r.maybeCompleteAlignment()
		}
		return nil
	case queue.ItemBarrier:
		return r.onBarrier(input, it.BarrierEpoch())
	}
	return errUnknownItemKind(it.Kind)
}

// errUnknownItemKind keeps the formatting allocation out of the annotated
// processItem hot path; it is only reached on a corrupted page.
func errUnknownItemKind(k queue.ItemKind) error {
	return fmt.Errorf("unknown item kind %d", k)
}

// alignmentStale reports whether the in-progress alignment belongs to a
// checkpoint that is no longer active (cancelled): its missing barriers may
// never arrive, so the freeze must not be held.
func (r *nodeRunner) alignmentStale() bool {
	c := r.graph.pendingChk.Load()
	return c == nil || c.epoch != r.align.epoch
}

// abandonAlignment lifts a cancelled epoch's freeze: the alignment is
// discarded (no cut was or will be taken for it) and the deferred items
// replay in per-input order. A deferred barrier for a newer epoch restarts
// alignment from inside the replay.
func (r *nodeRunner) abandonAlignment() error {
	a := r.align
	r.align = nil
	for in := range a.deferred {
		for i := range a.deferred[in] {
			if err := r.processItem(in, &a.deferred[in][i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// onBarrier records a checkpoint barrier's arrival on one input. The
// coordinator admits one checkpoint at a time, so a second epoch can only
// appear after the first completed or was cancelled: a completed epoch's
// alignment is already resolved, so an epoch mismatch always means the
// aligning epoch was cancelled (newer arrival) or this barrier is a
// cancelled epoch's leftover still draining (older arrival — dropped).
func (r *nodeRunner) onBarrier(input int, epoch int64) error {
	if r.nm != nil {
		r.nm.BarriersIn.Add(1)
	}
	if r.trace.Enabled() {
		r.trace.Record("barrier", r.node.name(), epoch, fmt.Sprintf("input %d", input))
	}
	if r.align != nil && r.align.epoch != epoch {
		if epoch < r.align.epoch {
			return nil
		}
		if err := r.abandonAlignment(); err != nil {
			return err
		}
		// Replay may have restarted alignment (a deferred newer barrier);
		// re-enter so this barrier joins whatever state now stands.
		return r.onBarrier(input, epoch)
	}
	if r.align == nil {
		n := len(r.node.inConns)
		r.align = &alignState{epoch: epoch, got: make([]bool, n), deferred: make([][]queue.Item, n)}
	}
	r.align.got[input] = true
	return r.maybeCompleteAlignment()
}

// maybeCompleteAlignment takes the node's cut once every live input has
// delivered the barrier: capture state, forward the barrier ahead of any
// post-barrier output, then replay the buffered post-barrier items.
func (r *nodeRunner) maybeCompleteAlignment() error {
	a := r.align
	for i, got := range a.got {
		if !got && !r.inEOS[i] {
			return nil
		}
	}
	r.align = nil
	// The capture mode travels out-of-band for local edges (the coordinator
	// knows it); a process-boundary forwarder needs it on the wire, so read
	// it off the still-pending checkpoint before this node's ack can retire
	// it. A cancelled epoch defaults to delta — its ack is discarded anyway.
	mode := snapshot.CaptureDelta
	if c := r.graph.pendingChk.Load(); c != nil && c.epoch == a.epoch {
		mode = c.mode
	}
	r.graph.cutNode(r.node, a.epoch)
	for _, c := range r.node.outConns {
		c.PutBarrier(a.epoch)
	}
	if bf, ok := r.node.op.(BarrierForwarder); ok {
		// Process-boundary edges (remote sinks) forward the barrier in-band
		// on their transport, after everything that preceded the cut and
		// before the deferred post-barrier replay below.
		if err := bf.ForwardBarrier(a.epoch, mode, r); err != nil {
			return err
		}
	}
	for in := range a.deferred {
		for i := range a.deferred[in] {
			if err := r.processItem(in, &a.deferred[in][i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// drainControl handles all pending control messages without blocking.
func (r *nodeRunner) drainControl(onFeedback func(int, core.Feedback) error) error {
	for {
		select {
		case ce := <-r.ctrlCh:
			if err := r.handleControl(ce, onFeedback); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (r *nodeRunner) handleControl(ce ctrlEvent, onFeedback func(int, core.Feedback) error) error {
	switch ce.msg.Kind {
	case queue.CtrlFeedback:
		if r.nm != nil {
			r.nm.FeedbackIn.Add(1)
		}
		if r.trace.Enabled() {
			r.trace.Record("feedback", r.node.name(), ce.msg.Feedback.Seq, ce.msg.Feedback.String())
		}
		return onFeedback(ce.output, ce.msg.Feedback)
	case queue.CtrlShutdown:
		r.shutdownOuts.set(ce.output)
		if r.shutdownOuts.count == len(r.node.outConns) && len(r.node.outConns) > 0 {
			// Every consumer has asked us to stop: stop, and relay the
			// shutdown upstream.
			r.stopping = true
			for _, c := range r.node.inConns {
				c.SendControl(queue.Control{Kind: queue.CtrlShutdown})
			}
		}
		return nil
	}
	return fmt.Errorf("unknown control message kind %d", ce.msg.Kind)
}

// ---------------------------------------------------------------------------
// Context implementation.
// ---------------------------------------------------------------------------

// Emit implements Context.
//
//pace:hotpath
func (r *nodeRunner) Emit(t stream.Tuple) { r.EmitTo(0, t) }

// EmitTo implements Context.
//
//pace:hotpath
func (r *nodeRunner) EmitTo(port int, t stream.Tuple) {
	r.node.outConns[port].PutTuple(t)
}

// EmitBatch implements BatchEmitter: a run of tuples goes to output port 0
// with one page-capacity check per chunk instead of per tuple.
//
//pace:hotpath
func (r *nodeRunner) EmitBatch(ts []stream.Tuple) {
	r.node.outConns[0].PutTuples(ts)
}

// EmitBatchTo implements BatchEmitterTo: a per-port sub-batch (e.g. one
// Split partition's share of a run) goes out in one call.
//
//pace:hotpath
func (r *nodeRunner) EmitBatchTo(port int, ts []stream.Tuple) {
	r.node.outConns[port].PutTuples(ts)
}

// EmitPunct implements Context.
//
//pace:hotpath
func (r *nodeRunner) EmitPunct(e punct.Embedded) { r.EmitPunctTo(0, e) }

// EmitPunctTo implements Context.
//
//pace:hotpath
func (r *nodeRunner) EmitPunctTo(port int, e punct.Embedded) {
	r.node.outConns[port].PutPunct(e)
}

// SendFeedback implements Context: feedback goes to the producer feeding
// the given input port, against the data direction.
func (r *nodeRunner) SendFeedback(input int, f core.Feedback) {
	if r.nm != nil {
		r.nm.FeedbackOut.Add(1)
	}
	r.node.inConns[input].SendFeedback(f)
}

// ShutdownUpstream implements Context.
func (r *nodeRunner) ShutdownUpstream(input int) {
	r.node.inConns[input].SendControl(queue.Control{Kind: queue.CtrlShutdown})
}

// NumInputs implements Context.
func (r *nodeRunner) NumInputs() int { return len(r.node.inConns) }

// NumOutputs implements Context.
func (r *nodeRunner) NumOutputs() int { return len(r.node.outConns) }

// Logf implements Context.
func (r *nodeRunner) Logf(format string, args ...any) {
	if w := r.graph.log; w != nil {
		fmt.Fprintf(w, "[%s] "+format+"\n", append([]any{r.node.name()}, args...)...)
	}
}
