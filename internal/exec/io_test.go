package exec

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/punct"
	"repro/internal/stream"
)

func TestReaderSourceDecodes(t *testing.T) {
	schema := stream.MustSchema(
		stream.F("seg", stream.KindInt),
		stream.F("ts", stream.KindTime),
		stream.F("v", stream.KindFloat),
	)
	input := strings.Join([]string{
		"1,1970-01-01T00:00:00.000001Z,50",
		"2,1970-01-01T00:00:00.000002Z,60",
		"# comment",
		"3,1970-01-01T00:00:00.000003Z,null",
	}, "\n")
	src := NewReaderSource("r", schema, strings.NewReader(input))
	src.PunctAttr = 1
	src.PunctEvery = 2
	h := NewSourceHarness(src)
	h.RunSource(1000)
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	tuples := h.OutTuples(0)
	if len(tuples) != 3 {
		t.Fatalf("decoded %d tuples", len(tuples))
	}
	if !tuples[2].At(2).IsNull() {
		t.Error("null must decode")
	}
	if len(h.OutPuncts(0)) != 1 {
		t.Errorf("puncts: %d, want 1 (every 2 tuples)", len(h.OutPuncts(0)))
	}
}

func TestReaderSourceFeedback(t *testing.T) {
	schema := stream.MustSchema(stream.F("seg", stream.KindInt))
	input := "1\n2\n1\n2\n1\n"
	src := NewReaderSource("r", schema, strings.NewReader(input))
	src.FeedbackAware = true
	h := NewSourceHarness(src)
	h.Feedback(0, core.NewAssumed(punct.OnAttr(1, 0, punct.Eq(stream.Int(2)))))
	h.RunSource(1000)
	if got := h.OutTuples(0); len(got) != 3 {
		t.Fatalf("suppression: %v", got)
	}
	if src.Skipped() != 2 {
		t.Errorf("skipped = %d", src.Skipped())
	}
}

func TestReaderSourceBadInput(t *testing.T) {
	schema := stream.MustSchema(stream.F("seg", stream.KindInt))
	src := NewReaderSource("r", schema, strings.NewReader("not-a-number\n"))
	h := NewSourceHarness(src)
	h.RunSource(10)
	if h.Err() == nil {
		t.Fatal("malformed input must surface an error")
	}
}
