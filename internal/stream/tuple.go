package stream

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Tuple is one stream element. Values are positional against the stream's
// schema. Tuples are treated as immutable once emitted: operators that
// transform tuples build new ones.
//
// Seq is a source-assigned sequence number used by the experiment harnesses
// to track per-tuple latency (the "TupleID" axis of Figures 5 and 6); it is
// not visible to relational semantics.
type Tuple struct {
	Values []Value
	Seq    int64
}

// NewTuple builds a tuple from values.
func NewTuple(vals ...Value) Tuple { return Tuple{Values: vals} }

// Arity returns the number of values.
func (t Tuple) Arity() int { return len(t.Values) }

// At returns the i-th value.
func (t Tuple) At(i int) Value { return t.Values[i] }

// WithSeq returns a copy of t carrying the given sequence number.
func (t Tuple) WithSeq(seq int64) Tuple {
	t.Seq = seq
	return t
}

// Clone deep-copies the tuple (values are immutable, so only the slice is
// duplicated).
func (t Tuple) Clone() Tuple {
	return Tuple{Values: append([]Value(nil), t.Values...), Seq: t.Seq}
}

// Project builds a new tuple from the given source indices.
func (t Tuple) Project(idxs []int) Tuple {
	vals := make([]Value, len(idxs))
	for i, src := range idxs {
		vals[i] = t.Values[src]
	}
	return Tuple{Values: vals, Seq: t.Seq}
}

// AppendValues appends the tuple's values to a caller-owned buffer and
// returns the extended buffer. Emit paths that assemble composite tuples
// (join outputs, aggregate results) use it to build the value slice in a
// single allocation instead of chaining Project/Concat copies.
func (t Tuple) AppendValues(buf []Value) []Value { return append(buf, t.Values...) }

// AppendProjected appends the values at the given source indices to a
// caller-owned buffer and returns the extended buffer.
func (t Tuple) AppendProjected(buf []Value, idxs []int) []Value {
	for _, src := range idxs {
		buf = append(buf, t.Values[src])
	}
	return buf
}

// Concat returns the concatenation of t and o, keeping t's sequence number.
func (t Tuple) Concat(o Tuple) Tuple {
	vals := make([]Value, 0, len(t.Values)+len(o.Values))
	vals = append(vals, t.Values...)
	vals = append(vals, o.Values...)
	return Tuple{Values: vals, Seq: t.Seq}
}

// Equal reports positional value equality (Seq is ignored).
func (t Tuple) Equal(o Tuple) bool {
	if len(t.Values) != len(o.Values) {
		return false
	}
	for i := range t.Values {
		if !t.Values[i].Equal(o.Values[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the projected attributes,
// usable as a map key for grouping and joining. The encoding is injective
// per schema (kind byte + length-prefixed payload).
func (t Tuple) Key(idxs []int) string { return string(t.AppendKey(nil, idxs)) }

// AppendKey appends the Key encoding to a caller-owned buffer and returns
// the extended buffer. Hot paths keep a scratch buffer and look up maps
// with string(buf) — the compiler elides that conversion's allocation — so
// steady-state grouping and probing never allocate for the key.
func (t Tuple) AppendKey(b []byte, idxs []int) []byte {
	for _, i := range idxs {
		v := t.Values[i]
		b = append(b, byte(v.Kind))
		switch v.Kind {
		case KindNull:
		case KindString:
			b = strconv.AppendInt(b, int64(len(v.S)), 10)
			b = append(b, ':')
			b = append(b, v.S...)
		case KindFloat:
			b = strconv.AppendUint(b, math.Float64bits(v.F), 16)
			b = append(b, ';')
		default:
			b = strconv.AppendUint(b, uint64(v.I), 16)
			b = append(b, ';')
		}
	}
	return b
}

// Hash combines the hashes of the projected attributes.
func (t Tuple) Hash(idxs []int) uint64 {
	h := uint64(1469598103934665603)
	for _, i := range idxs {
		h ^= t.Values[i].Hash()
		h *= 1099511628211
	}
	return h
}

// Validate checks every value against the schema.
func (t Tuple) Validate(s Schema) error {
	if t.Arity() != s.Arity() {
		return fmt.Errorf("stream: tuple arity %d != schema arity %d (%s)", t.Arity(), s.Arity(), s)
	}
	for i := range t.Values {
		if err := s.CheckValue(i, t.Values[i]); err != nil {
			return err
		}
	}
	return nil
}

// String renders the tuple as <v1, v2, ...>.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte('>')
	return b.String()
}

// Format renders the tuple against a schema as name=value pairs, for logs.
func (t Tuple) Format(s Schema) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		if i < s.Arity() {
			b.WriteString(s.Field(i).Name)
			b.WriteByte('=')
		}
		b.WriteString(v.String())
	}
	b.WriteByte('}')
	return b.String()
}
