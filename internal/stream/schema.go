package stream

import (
	"fmt"
	"strings"
)

// Field is one attribute of a schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema describes the attributes of a stream. Schemas are immutable after
// construction; operators share them by value.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from fields. Names must be unique and non-empty.
func NewSchema(fields ...Field) (Schema, error) {
	idx := make(map[string]int, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return Schema{}, fmt.Errorf("stream: schema field %d has empty name", i)
		}
		if _, dup := idx[f.Name]; dup {
			return Schema{}, fmt.Errorf("stream: duplicate schema field %q", f.Name)
		}
		idx[f.Name] = i
	}
	return Schema{fields: append([]Field(nil), fields...), index: idx}, nil
}

// MustSchema is NewSchema that panics on error; for statically-known schemas.
func MustSchema(fields ...Field) Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// F is shorthand for constructing a Field.
func F(name string, kind Kind) Field { return Field{Name: name, Kind: kind} }

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.fields) }

// Field returns the i-th attribute.
func (s Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the attribute list.
func (s Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// Index returns the position of the named attribute, or -1.
func (s Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// MustIndex returns the position of the named attribute and panics if absent.
// Use only for statically-known plans (examples, benchmarks).
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("stream: schema has no attribute %q (have %s)", name, s))
	}
	return i
}

// Has reports whether the schema contains the named attribute.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Equal reports structural equality (same names and kinds in order).
func (s Schema) Equal(o Schema) bool {
	if len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}

// Concat returns the schema of s followed by o, renaming collisions in o
// with the given prefix (e.g. "right."). Used by join output schemas.
func (s Schema) Concat(o Schema, collisionPrefix string) (Schema, error) {
	out := make([]Field, 0, len(s.fields)+len(o.fields))
	out = append(out, s.fields...)
	for _, f := range o.fields {
		name := f.Name
		if s.Has(name) {
			name = collisionPrefix + name
		}
		out = append(out, Field{Name: name, Kind: f.Kind})
	}
	return NewSchema(out...)
}

// Project returns a schema containing only the named attributes, in the
// order given, along with the source indices.
func (s Schema) Project(names ...string) (Schema, []int, error) {
	fields := make([]Field, 0, len(names))
	idxs := make([]int, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return Schema{}, nil, fmt.Errorf("stream: project: no attribute %q in %s", n, s)
		}
		fields = append(fields, s.fields[i])
		idxs = append(idxs, i)
	}
	out, err := NewSchema(fields...)
	if err != nil {
		return Schema{}, nil, err
	}
	return out, idxs, nil
}

// String renders the schema as (name:kind, ...).
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(':')
		b.WriteString(f.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// CheckValue validates that v is storable in attribute i: either Null or the
// declared kind (with int→float widening allowed).
func (s Schema) CheckValue(i int, v Value) error {
	if i < 0 || i >= len(s.fields) {
		return fmt.Errorf("stream: attribute index %d out of range for %s", i, s)
	}
	if v.Kind == KindNull {
		return nil
	}
	want := s.fields[i].Kind
	if v.Kind == want {
		return nil
	}
	if want == KindFloat && v.Kind == KindInt {
		return nil
	}
	return fmt.Errorf("stream: attribute %q wants %v, got %v", s.fields[i].Name, want, v.Kind)
}
