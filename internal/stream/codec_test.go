package stream

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	s := MustSchema(F("id", KindInt), F("name", KindString), F("ts", KindTime), F("v", KindFloat))
	in := []Tuple{
		NewTuple(Int(1), String_("plain"), TimeMicros(1000), Float(1.5)),
		NewTuple(Int(2), String_("with, comma"), TimeMicros(2000), Float(-3)),
		NewTuple(Int(3), String_(`quote " inside`), TimeMicros(3000), Null),
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf, s)
	for _, tp := range in {
		if err := enc.Encode(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf, s)
	for i := 0; ; i++ {
		tp, err := dec.Decode()
		if err == io.EOF {
			if i != len(in) {
				t.Fatalf("decoded %d tuples, want %d", i, len(in))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !tp.Equal(in[i]) {
			t.Errorf("tuple %d: got %v want %v", i, tp, in[i])
		}
	}
}

func TestDecoderSkipsCommentsAndBlanks(t *testing.T) {
	s := MustSchema(F("a", KindInt))
	input := "# header\n\n5\n  \n7\n"
	dec := NewDecoder(strings.NewReader(input), s)
	var got []int64
	for {
		tp, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tp.At(0).AsInt())
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Errorf("got %v", got)
	}
}

func TestDecoderArityError(t *testing.T) {
	s := MustSchema(F("a", KindInt), F("b", KindInt))
	dec := NewDecoder(strings.NewReader("1,2,3\n"), s)
	if _, err := dec.Decode(); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestEncoderValidates(t *testing.T) {
	s := MustSchema(F("a", KindInt))
	enc := NewEncoder(io.Discard, s)
	if err := enc.Encode(NewTuple(String_("x"))); err == nil {
		t.Error("encoding a mistyped tuple must fail")
	}
}
