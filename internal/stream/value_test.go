package stream

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindTime: "time", KindBool: "bool",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
		parsed, err := ParseKind(want)
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", want, parsed, err, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted unknown kind")
	}
}

func TestKindPredicatesNumericOrdered(t *testing.T) {
	if !KindInt.Numeric() || !KindFloat.Numeric() {
		t.Error("int/float must be numeric")
	}
	if KindString.Numeric() || KindTime.Numeric() {
		t.Error("string/time must not be numeric")
	}
	for _, k := range []Kind{KindInt, KindFloat, KindString, KindTime} {
		if !k.Ordered() {
			t.Errorf("%v should be ordered", k)
		}
	}
	if KindBool.Ordered() || KindNull.Ordered() {
		t.Error("bool/null should not be ordered")
	}
}

func TestValueConstructorsRoundTrip(t *testing.T) {
	if v := Int(42); v.Kind != KindInt || v.AsInt() != 42 {
		t.Errorf("Int: %v", v)
	}
	if v := Float(2.5); v.Kind != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float: %v", v)
	}
	if v := String_("hi"); v.Kind != KindString || v.AsString() != "hi" {
		t.Errorf("String: %v", v)
	}
	if v := Bool(true); v.Kind != KindBool || !v.AsBool() {
		t.Errorf("Bool: %v", v)
	}
	now := time.Now().Truncate(time.Microsecond).UTC()
	if v := Time(now); !v.AsTime().Equal(now) {
		t.Errorf("Time: %v vs %v", v.AsTime(), now)
	}
	if v := TimeMicros(123456); v.Micros() != 123456 {
		t.Errorf("TimeMicros: %v", v)
	}
	if !Null.IsNull() || Int(1).IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.5), -1, true},
		{Float(2.0), Int(2), 0, true},
		{String_("a"), String_("b"), -1, true},
		{TimeMicros(5), TimeMicros(9), -1, true},
		{Bool(false), Bool(true), -1, true},
		{Int(1), String_("a"), 0, false},
		{Null, Int(1), 0, false},
		{Null, Null, 0, false},
		{Float(math.NaN()), Float(1), 0, false},
	}
	for _, tc := range tests {
		cmp, ok := tc.a.Compare(tc.b)
		if cmp != tc.cmp || ok != tc.ok {
			t.Errorf("Compare(%v, %v) = %d,%v; want %d,%v", tc.a, tc.b, cmp, ok, tc.cmp, tc.ok)
		}
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if !Null.Equal(Null) {
		t.Error("Null must equal Null for grouping")
	}
	if Null.Equal(Int(0)) || Int(0).Equal(Null) {
		t.Error("Null must not equal a value")
	}
	if !Int(2).Equal(Float(2)) {
		t.Error("mixed numeric equality should hold")
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		ca, _ := Int(a).Compare(Int(b))
		cb, _ := Int(b).Compare(Int(a))
		return ca == -cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueHashConsistentWithEqual(t *testing.T) {
	f := func(a int64) bool {
		// Int and equal Float must hash identically within float64's
		// exact-integer range (the documented contract).
		a %= 1 << 53
		return Int(a).Hash() == Float(float64(a)).Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if Int(1).Hash() == Int(2).Hash() {
		t.Error("suspicious hash collision on small ints")
	}
}

func TestValueStringParseRoundTrip(t *testing.T) {
	vals := []Value{
		Int(-7), Float(3.25), String_("a,b\"c"), Bool(true), Bool(false),
		TimeMicros(1733648400000000), Null,
	}
	kinds := []Kind{KindInt, KindFloat, KindString, KindBool, KindBool, KindTime, KindInt}
	for i, v := range vals {
		s := v.String()
		got, err := ParseValue(kinds[i], s)
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", kinds[i], s, err)
		}
		if v.IsNull() != got.IsNull() || (!v.IsNull() && !v.Equal(got)) {
			t.Errorf("round trip %q: got %v want %v", s, got, v)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	bad := []struct {
		kind Kind
		s    string
	}{
		{KindInt, "abc"},
		{KindFloat, "x"},
		{KindBool, "2"},
		{KindTime, "yesterday"},
	}
	for _, tc := range bad {
		if _, err := ParseValue(tc.kind, tc.s); err == nil {
			t.Errorf("ParseValue(%v, %q) should fail", tc.kind, tc.s)
		}
	}
}

func TestValueLessTotalOrder(t *testing.T) {
	// Less must be a strict weak order even across kinds (for sorting).
	vals := []Value{Null, Int(1), Float(0.5), String_("x"), TimeMicros(10), Bool(false)}
	for _, a := range vals {
		if a.Less(a) {
			t.Errorf("%v < %v must be false", a, a)
		}
		for _, b := range vals {
			if a.Less(b) && b.Less(a) {
				t.Errorf("both %v<%v and %v<%v", a, b, b, a)
			}
		}
	}
}
