// Package stream defines the tuple, value, and schema model shared by every
// operator in the system. It corresponds to the relational substrate of
// NiagaraST: streams are unbounded sequences of fixed-schema tuples, and
// punctuation patterns (package punct) are expressed over the same attribute
// space.
package stream

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the value types supported by stream schemas.
type Kind uint8

const (
	// KindNull marks a missing value (e.g. a failed sensor reading).
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 float.
	KindFloat
	// KindString is an immutable UTF-8 string.
	KindString
	// KindTime is an event timestamp with microsecond resolution.
	KindTime
	// KindBool is a boolean.
	KindBool
)

var kindNames = [...]string{
	KindNull:   "null",
	KindInt:    "int",
	KindFloat:  "float",
	KindString: "string",
	KindTime:   "time",
	KindBool:   "bool",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return KindNull, fmt.Errorf("stream: unknown kind %q", s)
}

// Numeric reports whether values of this kind participate in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Ordered reports whether values of this kind have a total order usable in
// range predicates (<, ≤, >, ≥).
func (k Kind) Ordered() bool {
	switch k {
	case KindInt, KindFloat, KindString, KindTime:
		return true
	}
	return false
}

// Value is a compact tagged union. It is passed and stored by value; a Value
// never aliases mutable state, so tuples can be shared freely across
// operator goroutines without copying.
//
// Encoding: Int and Bool use I; Time uses I as Unix microseconds; Float uses
// F; String uses S. Null uses no field.
type Value struct {
	S    string
	I    int64
	F    float64
	Kind Kind
}

// Null is the missing value.
var Null = Value{Kind: KindNull}

// Int constructs an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float constructs a float value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// String_ constructs a string value. (Named with a trailing underscore so the
// constructor does not collide with the fmt.Stringer method on Value.)
func String_(v string) Value { return Value{Kind: KindString, S: v} }

// Bool constructs a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// Time constructs a timestamp value with microsecond resolution.
func Time(t time.Time) Value { return Value{Kind: KindTime, I: t.UnixMicro()} }

// TimeMicros constructs a timestamp value directly from Unix microseconds.
// Stream time in this system is always carried as Unix microseconds, which
// keeps window arithmetic free of time.Time allocation.
func TimeMicros(us int64) Value { return Value{Kind: KindTime, I: us} }

// IsNull reports whether v is the missing value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsInt returns the integer content. It is valid for KindInt and KindBool.
func (v Value) AsInt() int64 { return v.I }

// AsFloat returns the value as a float64, converting from int if needed.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.I)
	}
	return v.F
}

// AsString returns the string content (KindString only).
func (v Value) AsString() string { return v.S }

// AsBool returns the boolean content (KindBool only).
func (v Value) AsBool() bool { return v.I != 0 }

// AsTime returns the timestamp as a time.Time (KindTime only).
func (v Value) AsTime() time.Time { return time.UnixMicro(v.I) }

// Micros returns the timestamp in Unix microseconds (KindTime only).
func (v Value) Micros() int64 { return v.I }

// Comparable reports whether two values can be ordered against each other.
// Int and Float are mutually comparable; other kinds compare only with
// themselves. Null compares with nothing (SQL-style).
func (v Value) Comparable(o Value) bool {
	if v.Kind == o.Kind {
		return v.Kind != KindNull
	}
	return v.Kind.Numeric() && o.Kind.Numeric()
}

// Compare orders v against o: -1 if v < o, 0 if equal, +1 if v > o.
// Comparing incomparable values (including any Null) returns false in ok.
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if !v.Comparable(o) {
		return 0, false
	}
	switch {
	case v.Kind.Numeric() && o.Kind.Numeric():
		if v.Kind == KindInt && o.Kind == KindInt {
			return cmpInt64(v.I, o.I), true
		}
		a, b := v.AsFloat(), o.AsFloat()
		if math.IsNaN(a) || math.IsNaN(b) {
			return 0, false
		}
		return cmpFloat64(a, b), true
	case v.Kind == KindString:
		switch {
		case v.S < o.S:
			return -1, true
		case v.S > o.S:
			return 1, true
		}
		return 0, true
	case v.Kind == KindTime, v.Kind == KindBool:
		return cmpInt64(v.I, o.I), true
	}
	return 0, false
}

// Equal reports value equality. Nulls are equal to each other for grouping
// purposes (hash-key semantics), matching NiagaraST's grouping behaviour.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return v.Kind == o.Kind
	}
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Less reports strict ordering; incomparable pairs (including Null) order by
// kind to give a stable total order for sorting.
func (v Value) Less(o Value) bool {
	if c, ok := v.Compare(o); ok {
		return c < 0
	}
	return v.Kind < o.Kind
}

// Hash returns a 64-bit FNV-1a hash of the value, used for group keys and
// join buckets. Int and Float hash identically when they represent the same
// integral quantity so mixed-kind numeric grouping behaves sensibly; the
// guarantee holds for magnitudes up to 2^53, where float64 is exact.
func (v Value) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	switch v.Kind {
	case KindNull:
		mix(0xff)
	case KindInt, KindTime, KindBool:
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	case KindFloat:
		if f := v.F; f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			u := uint64(int64(f))
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		} else {
			u := math.Float64bits(v.F)
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		}
	case KindString:
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	}
	return h
}

// String renders the value for logs and punctuation printing.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	case KindTime:
		return time.UnixMicro(v.I).UTC().Format("2006-01-02T15:04:05.000000Z")
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return fmt.Sprintf("value(kind=%d)", v.Kind)
}

// ParseValue parses the rendering produced by Value.String for the given
// kind. It is the ingest path for CSV-style sources.
func ParseValue(kind Kind, s string) (Value, error) {
	if s == "null" {
		return Null, nil
	}
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("stream: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("stream: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindString:
		if len(s) >= 2 && s[0] == '"' {
			u, err := strconv.Unquote(s)
			if err != nil {
				return Null, fmt.Errorf("stream: parse string %q: %w", s, err)
			}
			return String_(u), nil
		}
		return String_(s), nil
	case KindTime:
		if t, err := time.Parse("2006-01-02T15:04:05.000000Z", s); err == nil {
			return Time(t), nil
		}
		if us, err := strconv.ParseInt(s, 10, 64); err == nil {
			return TimeMicros(us), nil
		}
		return Null, fmt.Errorf("stream: parse time %q", s)
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null, fmt.Errorf("stream: parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case KindNull:
		return Null, nil
	}
	return Null, fmt.Errorf("stream: parse: unsupported kind %v", kind)
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
