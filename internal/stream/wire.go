package stream

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary value codec shared by the network edge (internal/remote) and the
// checkpoint subsystem (internal/snapshot): kind byte followed by a
// kind-specific payload. Integer domains use zigzag varints (timestamps and
// small ints dominate real streams), floats are fixed 8-byte IEEE bits,
// strings are length-prefixed. The encoding is self-delimiting, so values
// can be concatenated without framing.

// AppendBinary appends the value's binary encoding to b and returns the
// extended buffer.
func (v Value) AppendBinary(b []byte) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindInt, KindTime, KindBool:
		b = binary.AppendVarint(b, v.I)
	case KindFloat:
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.F))
	case KindString:
		b = binary.AppendUvarint(b, uint64(len(v.S)))
		b = append(b, v.S...)
	}
	return b
}

// DecodeValue decodes one value from the front of b, returning the value
// and the remaining bytes.
func DecodeValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Null, nil, fmt.Errorf("stream: decode value: empty buffer")
	}
	kind := Kind(b[0])
	b = b[1:]
	switch kind {
	case KindNull:
		return Null, b, nil
	case KindInt, KindTime, KindBool:
		i, n := binary.Varint(b)
		if n <= 0 {
			return Null, nil, fmt.Errorf("stream: decode value: bad varint for kind %v", kind)
		}
		return Value{Kind: kind, I: i}, b[n:], nil
	case KindFloat:
		if len(b) < 8 {
			return Null, nil, fmt.Errorf("stream: decode value: short float payload")
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(b))
		return Float(f), b[8:], nil
	case KindString:
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return Null, nil, fmt.Errorf("stream: decode value: bad string length")
		}
		return String_(string(b[n : n+int(l)])), b[n+int(l):], nil
	}
	return Null, nil, fmt.Errorf("stream: decode value: unknown kind %d", kind)
}
