package stream

import (
	"strings"
	"testing"
)

func trafficSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(
		F("segment", KindInt),
		F("detector", KindInt),
		F("ts", KindTime),
		F("speed", KindFloat),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(F("a", KindInt), F("a", KindFloat)); err == nil {
		t.Error("duplicate field names must be rejected")
	}
	if _, err := NewSchema(F("", KindInt)); err == nil {
		t.Error("empty field name must be rejected")
	}
}

func TestSchemaIndexAndHas(t *testing.T) {
	s := trafficSchema(t)
	if s.Arity() != 4 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if s.Index("ts") != 2 || !s.Has("speed") || s.Index("nope") != -1 || s.Has("nope") {
		t.Error("Index/Has misbehave")
	}
	if s.MustIndex("segment") != 0 {
		t.Error("MustIndex")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on missing attr should panic")
		}
	}()
	s.MustIndex("missing")
}

func TestSchemaEqual(t *testing.T) {
	a := trafficSchema(t)
	b := trafficSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas must be equal")
	}
	c := MustSchema(F("segment", KindInt))
	if a.Equal(c) {
		t.Error("different schemas must not be equal")
	}
}

func TestSchemaConcatRenamesCollisions(t *testing.T) {
	a := MustSchema(F("id", KindInt), F("v", KindFloat))
	b := MustSchema(F("id", KindInt), F("w", KindFloat))
	out, err := a.Concat(b, "right_")
	if err != nil {
		t.Fatal(err)
	}
	if out.Arity() != 4 || out.Index("right_id") != 2 || out.Index("w") != 3 {
		t.Errorf("concat schema: %s", out)
	}
}

func TestSchemaProject(t *testing.T) {
	s := trafficSchema(t)
	out, idxs, err := s.Project("speed", "segment")
	if err != nil {
		t.Fatal(err)
	}
	if out.Arity() != 2 || idxs[0] != 3 || idxs[1] != 0 {
		t.Errorf("project: %s %v", out, idxs)
	}
	if _, _, err := s.Project("missing"); err == nil {
		t.Error("projecting a missing attribute must fail")
	}
}

func TestSchemaCheckValue(t *testing.T) {
	s := trafficSchema(t)
	if err := s.CheckValue(3, Float(55)); err != nil {
		t.Error(err)
	}
	if err := s.CheckValue(3, Int(55)); err != nil {
		t.Error("int→float widening should be allowed:", err)
	}
	if err := s.CheckValue(3, Null); err != nil {
		t.Error("null should be storable anywhere:", err)
	}
	if err := s.CheckValue(0, Float(1.5)); err == nil {
		t.Error("float into int attr must fail")
	}
	if err := s.CheckValue(9, Int(1)); err == nil {
		t.Error("out-of-range index must fail")
	}
}

func TestSchemaString(t *testing.T) {
	s := trafficSchema(t)
	str := s.String()
	for _, want := range []string{"segment:int", "ts:time", "speed:float"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestTupleBasics(t *testing.T) {
	s := trafficSchema(t)
	tp := NewTuple(Int(3), Int(7), TimeMicros(1000), Float(52.5)).WithSeq(9)
	if err := tp.Validate(s); err != nil {
		t.Fatal(err)
	}
	if tp.Seq != 9 || tp.Arity() != 4 || !tp.At(3).Equal(Float(52.5)) {
		t.Error("tuple accessors")
	}
	clone := tp.Clone()
	clone.Values[0] = Int(99)
	if tp.At(0).AsInt() != 3 {
		t.Error("Clone must not share value storage")
	}
	proj := tp.Project([]int{3, 0})
	if proj.Arity() != 2 || !proj.At(0).Equal(Float(52.5)) || !proj.At(1).Equal(Int(3)) {
		t.Error("Project")
	}
	cat := tp.Concat(NewTuple(Int(1)))
	if cat.Arity() != 5 || cat.Seq != 9 {
		t.Error("Concat")
	}
}

func TestTupleValidateErrors(t *testing.T) {
	s := trafficSchema(t)
	if err := NewTuple(Int(1)).Validate(s); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := NewTuple(Int(1), Int(2), TimeMicros(1), String_("x")).Validate(s); err == nil {
		t.Error("kind mismatch must fail")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Keys must distinguish <"ab","c"> from <"a","bc">.
	a := NewTuple(String_("ab"), String_("c"))
	b := NewTuple(String_("a"), String_("bc"))
	if a.Key([]int{0, 1}) == b.Key([]int{0, 1}) {
		t.Error("Key is not injective on string boundaries")
	}
	// Equal tuples must share keys.
	c := NewTuple(Int(5), Float(2.5), Null)
	d := NewTuple(Int(5), Float(2.5), Null)
	if c.Key([]int{0, 1, 2}) != d.Key([]int{0, 1, 2}) {
		t.Error("equal tuples must have equal keys")
	}
}

func TestTupleEqual(t *testing.T) {
	a := NewTuple(Int(1), Null)
	b := NewTuple(Int(1), Null)
	c := NewTuple(Int(2), Null)
	if !a.Equal(b) || a.Equal(c) || a.Equal(NewTuple(Int(1))) {
		t.Error("tuple equality")
	}
}

func TestTupleFormat(t *testing.T) {
	s := MustSchema(F("a", KindInt), F("b", KindFloat))
	str := NewTuple(Int(1), Float(2)).Format(s)
	if !strings.Contains(str, "a=1") || !strings.Contains(str, "b=2") {
		t.Errorf("Format: %q", str)
	}
}
