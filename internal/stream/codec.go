package stream

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The codec is the reproduction's stand-in for NiagaraST's XML/SAXDOM ingest
// path: a line-oriented, schema-directed text format. It exists so examples
// can pipe realistic data through files and so tests can express fixtures
// compactly; the feedback mechanism itself never depends on it.

// Encoder writes tuples as one comma-separated line each.
type Encoder struct {
	w      *bufio.Writer
	schema Schema
}

// NewEncoder creates an encoder for the given schema.
func NewEncoder(w io.Writer, schema Schema) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), schema: schema}
}

// Encode writes one tuple.
func (e *Encoder) Encode(t Tuple) error {
	if err := t.Validate(e.schema); err != nil {
		return err
	}
	for i, v := range t.Values {
		if i > 0 {
			if err := e.w.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := e.w.WriteString(v.String()); err != nil {
			return err
		}
	}
	return e.w.WriteByte('\n')
}

// Flush flushes buffered output.
func (e *Encoder) Flush() error { return e.w.Flush() }

// Decoder reads tuples written by Encoder. It tracks the exact byte
// offset of consumed input so seekable sources can checkpoint a replay
// position (snapshot.Stater on exec.ReaderSource).
type Decoder struct {
	r      *bufio.Reader
	schema Schema
	line   int
	offset int64 // bytes consumed, including the line's terminator
}

// NewDecoder creates a decoder for the given schema.
func NewDecoder(r io.Reader, schema Schema) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 64*1024), schema: schema}
}

// Offset returns the number of input bytes fully consumed: the boundary
// after the last decoded (or skipped) line. Re-reading from this offset
// resumes exactly after that line.
func (d *Decoder) Offset() int64 { return d.offset }

// maxLine bounds one input line (as the previous Scanner-based decoder
// did); binary or corrupt input fails fast instead of buffering
// unboundedly.
const maxLine = 1 << 20

// readLine reads one delimiter-terminated line, enforcing maxLine while
// reading so an undelimited blob never accumulates past the bound.
func (d *Decoder) readLine() (string, error) {
	var sb strings.Builder
	for {
		frag, err := d.r.ReadSlice('\n')
		sb.Write(frag)
		if sb.Len() > maxLine {
			return "", fmt.Errorf("stream: line %d exceeds %d bytes (corrupt or binary input?)", d.line+1, maxLine)
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return sb.String(), err
	}
}

// Decode reads the next tuple; it returns io.EOF at end of input.
func (d *Decoder) Decode() (Tuple, error) {
	for {
		raw, err := d.readLine()
		if raw == "" && err != nil {
			if err == io.EOF {
				return Tuple{}, io.EOF
			}
			return Tuple{}, err
		}
		if err != nil && err != io.EOF {
			return Tuple{}, err
		}
		d.offset += int64(len(raw))
		d.line++
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			if err == io.EOF {
				return Tuple{}, io.EOF
			}
			continue
		}
		return d.parse(line)
	}
}

func (d *Decoder) parse(line string) (Tuple, error) {
	parts := splitCSV(line)
	if len(parts) != d.schema.Arity() {
		return Tuple{}, fmt.Errorf("stream: line %d: %d fields, schema wants %d", d.line, len(parts), d.schema.Arity())
	}
	vals := make([]Value, len(parts))
	for i, p := range parts {
		v, err := ParseValue(d.schema.Field(i).Kind, strings.TrimSpace(p))
		if err != nil {
			return Tuple{}, fmt.Errorf("stream: line %d field %d: %w", d.line, i, err)
		}
		vals[i] = v
	}
	return Tuple{Values: vals}, nil
}

// splitCSV splits on commas, honouring double-quoted strings containing
// commas or escaped quotes (the form produced by Value.String).
func splitCSV(line string) []string {
	var parts []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(line):
			cur.WriteByte(c)
			i++
			cur.WriteByte(line[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	parts = append(parts, cur.String())
	return parts
}
