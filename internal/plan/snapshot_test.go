package plan

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/punct"
	"repro/internal/queue"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/window"
)

// gatedItems replays a fixed item sequence, parking (without blocking the
// runner) at gateAt until the gate opens. The atomic position lets the
// test observe where the stream is from outside the graph.
type gatedItems struct {
	name   string
	schema stream.Schema
	items  []queue.Item
	gateAt int
	gate   atomic.Bool
	pos    atomic.Int64
}

func (s *gatedItems) Name() string                { return s.name }
func (s *gatedItems) OutSchemas() []stream.Schema { return []stream.Schema{s.schema} }
func (s *gatedItems) Open(exec.Context) error     { return nil }
func (s *gatedItems) Close(exec.Context) error    { return nil }
func (s *gatedItems) ProcessFeedback(int, core.Feedback, exec.Context) error {
	return nil
}

func (s *gatedItems) Next(ctx exec.Context) (bool, error) {
	pos := int(s.pos.Load())
	if pos >= len(s.items) {
		return false, nil
	}
	for n := 0; n < 16; n++ {
		if pos >= len(s.items) {
			break
		}
		if pos == s.gateAt && !s.gate.Load() {
			time.Sleep(time.Millisecond)
			break
		}
		switch it := s.items[pos]; it.Kind {
		case queue.ItemTuple:
			ctx.Emit(it.Tuple)
		case queue.ItemPunct:
			ctx.EmitPunct(*it.Punct)
		}
		pos++
	}
	s.pos.Store(int64(pos))
	return true, nil
}

// SaveState implements snapshot.Stater.
func (s *gatedItems) SaveState(enc *snapshot.Encoder) error {
	enc.PutInt64(s.pos.Load())
	return nil
}

// LoadState implements snapshot.Stater.
func (s *gatedItems) LoadState(dec *snapshot.Decoder) error {
	s.pos.Store(dec.GetInt64())
	return dec.Err()
}

// TestParallelCheckpointRecoverIdentity is the acceptance test: a
// Parallel(4) aggregate plan is checkpointed mid-stream, killed, and
// restored into a rebuilt plan; the restored sink's final record must be
// canonically identical to an uninterrupted run — 0 lost, 0 duplicated.
func TestParallelCheckpointRecoverIdentity(t *testing.T) {
	items := aggWorkload(8000)
	gateAt := len(items) * 3 / 5

	build := func(gateOpen bool) (*Builder, *gatedItems, *exec.Collector) {
		b := New()
		src := &gatedItems{name: "src", schema: testSchema, items: items, gateAt: gateAt}
		src.gate.Store(gateOpen)
		out := b.Source(src).Parallel("p", 4, []string{"segment"}, func(ss Stream) Stream {
			return ss.Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"},
				window.Tumbling(1_000_000), "avg_speed")
		})
		sink := out.Collect("sink")
		return b, src, sink
	}

	canonical := func(c *exec.Collector) []string {
		lines := []string{}
		for _, tp := range c.Tuples() {
			lines = append(lines, tp.String())
		}
		sort.Strings(lines)
		return lines
	}

	// Uninterrupted reference.
	bRef, _, sinkRef := build(true)
	if err := bRef.Run(); err != nil {
		t.Fatal(err)
	}
	want := canonical(sinkRef)
	if len(want) == 0 {
		t.Fatal("workload produced no results")
	}

	// Interrupted run: park at the gate, checkpoint, crash.
	b1, src1, _ := build(false)
	runErr := make(chan error, 1)
	go func() { runErr <- b1.Run() }()
	for deadline := time.Now().Add(10 * time.Second); src1.pos.Load() < int64(gateAt); {
		if time.Now().After(deadline) {
			t.Fatalf("source stuck at %d/%d", src1.pos.Load(), gateAt)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	snap, err := b1.Graph().Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b1.Graph().Kill()
	if err := <-runErr; !errors.Is(err, exec.ErrKilled) {
		t.Fatalf("killed run returned %v", err)
	}

	// Recover through a backend into an identically rebuilt plan.
	backend := snapshot.NewMemory()
	if err := snap.Save(backend, "mid-stream"); err != nil {
		t.Fatal(err)
	}
	b2, _, sink2 := build(true)
	if err := b2.Graph().Restore(backend, "mid-stream"); err != nil {
		t.Fatal(err)
	}
	if err := b2.Run(); err != nil {
		t.Fatal(err)
	}

	got := canonical(sink2)
	if len(got) != len(want) {
		t.Fatalf("recovered run produced %d results, uninterrupted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d diverged after recovery: %s vs %s", i, got[i], want[i])
		}
	}
}

// feedSource is an endless traffic source that exploits assumed feedback;
// its replay counter and guards persist through checkpoints.
type feedSource struct {
	schema  stream.Schema
	i, ts   int64
	guards  *core.GuardTable
	skipped atomic.Int64
}

func (s *feedSource) Name() string                { return "feedsrc" }
func (s *feedSource) OutSchemas() []stream.Schema { return []stream.Schema{s.schema} }
func (s *feedSource) Close(exec.Context) error    { return nil }
func (s *feedSource) Open(exec.Context) error {
	s.guards = core.NewGuardTable(s.schema.Arity())
	return nil
}

func (s *feedSource) Next(ctx exec.Context) (bool, error) {
	for j := 0; j < 64; j++ {
		s.i++
		s.ts += 500
		t := reading(s.i%9, s.ts, 55)
		if s.guards.Suppress(t) {
			s.skipped.Add(1)
			continue
		}
		ctx.Emit(t)
	}
	return true, nil
}

func (s *feedSource) ProcessFeedback(_ int, f core.Feedback, _ exec.Context) error {
	if f.Intent == core.Assumed {
		s.guards.Install(f)
	}
	return nil
}

// SaveState implements snapshot.Stater.
func (s *feedSource) SaveState(enc *snapshot.Encoder) error {
	enc.PutInt64(s.i)
	enc.PutInt64(s.ts)
	enc.PutInt64(s.skipped.Load())
	snapshot.PutGuards(enc, s.guards)
	return nil
}

// LoadState implements snapshot.Stater.
func (s *feedSource) LoadState(dec *snapshot.Decoder) error {
	s.i = dec.GetInt64()
	s.ts = dec.GetInt64()
	s.skipped.Store(dec.GetInt64())
	s.guards = snapshot.GetGuards(dec, s.schema.Arity())
	return dec.Err()
}

// feedSink asserts ¬[segment=2] after 10 tuples. Its persisted state is the
// assertion itself (sent); quota bounds how many tuples the current run
// accepts before shutting the plan down (not persisted — each run decides).
type feedSink struct {
	exec.Base
	schema    stream.Schema
	quota     int64
	localSeen int64
	shutdown  bool

	seen     int64 // persisted
	sent     bool  // persisted
	seg2Seen atomic.Int64
}

func (d *feedSink) Name() string                { return "decider" }
func (d *feedSink) InSchemas() []stream.Schema  { return []stream.Schema{d.schema} }
func (d *feedSink) OutSchemas() []stream.Schema { return nil }

func (d *feedSink) ProcessTuple(_ int, t stream.Tuple, ctx exec.Context) error {
	d.seen++
	d.localSeen++
	if t.At(0).AsInt() == 2 {
		d.seg2Seen.Add(1)
	}
	if !d.sent && d.seen >= 10 {
		d.sent = true
		ctx.SendFeedback(0, core.NewAssumed(punct.OnAttr(d.schema.Arity(), 0, punct.Eq(stream.Int(2)))))
	}
	if !d.shutdown && d.localSeen >= d.quota {
		d.shutdown = true
		ctx.ShutdownUpstream(0)
	}
	return nil
}

// SaveState implements snapshot.Stater.
func (d *feedSink) SaveState(enc *snapshot.Encoder) error {
	enc.PutInt64(d.seen)
	enc.PutBool(d.sent)
	return nil
}

// LoadState implements snapshot.Stater.
func (d *feedSink) LoadState(dec *snapshot.Decoder) error {
	d.seen = dec.GetInt64()
	d.sent = dec.GetBool()
	return dec.Err()
}

// TestParallelCheckpointPreservesFeedbackState checkpoints a partitioned
// plan whose feedback has reached all the way to the source (guards live at
// the source, in every split partition table, and at the merge), kills it,
// and restores: the recovered plan must keep honoring the assertion — the
// restored source suppresses the disclaimed segment from its very first
// batch, and the sink never sees it again.
func TestParallelCheckpointPreservesFeedbackState(t *testing.T) {
	build := func(quota int64) (*Builder, *feedSource, *feedSink) {
		b := New()
		src := &feedSource{schema: testSchema}
		out := b.Source(src).Parallel("p", 3, []string{"segment"}, func(ss Stream) Stream {
			return ss.Select("pass", func(stream.Tuple) bool { return true })
		})
		sink := &feedSink{schema: testSchema, quota: quota}
		out.Into(sink)
		return b, src, sink
	}

	// Phase 1: run until the source itself is suppressing segment 2.
	b1, src1, _ := build(1 << 60)
	runErr := make(chan error, 1)
	go func() { runErr <- b1.Run() }()
	for deadline := time.Now().Add(30 * time.Second); src1.skipped.Load() < 2000; {
		if time.Now().After(deadline) {
			t.Fatalf("feedback never reached the source (skipped=%d)", src1.skipped.Load())
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, err := b1.Graph().Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b1.Graph().Kill()
	if err := <-runErr; !errors.Is(err, exec.ErrKilled) {
		t.Fatalf("killed run returned %v", err)
	}

	// Phase 2: recover and run a bounded slice of the stream.
	b2, src2, sink2 := build(30_000)
	if err := b2.Graph().RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	skippedAtCut := src1.skipped.Load()
	if err := b2.Run(); err != nil {
		t.Fatal(err)
	}
	if sink2.seg2Seen.Load() != 0 {
		t.Fatalf("disclaimed segment reappeared after recovery (%d tuples)", sink2.seg2Seen.Load())
	}
	if src2.skipped.Load() <= skippedAtCut {
		t.Fatalf("restored source guard inactive: skipped %d (cut had %d)",
			src2.skipped.Load(), skippedAtCut)
	}
	if !sink2.sent {
		t.Fatal("sink assertion flag lost in restore")
	}
}

// TestBuilderRestoreConvenience covers Builder.Restore delegating to the
// underlying graph.
func TestBuilderRestoreConvenience(t *testing.T) {
	backend := snapshot.NewMemory()
	// A minimal finished-plan snapshot.
	b1 := New()
	src := testSource("s", reading(1, 10, 40))
	sink := b1.Source(src).Collect("sink")
	if err := b1.Run(); err != nil {
		t.Fatal(err)
	}
	_ = sink
	// Restoring an unknown id surfaces the backend error.
	b2 := New()
	b2.Source(testSource("s", reading(1, 10, 40))).Collect("sink")
	if err := b2.Restore(backend, "missing"); err == nil {
		t.Fatal("unknown snapshot id accepted")
	}
}
