package plan

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/op"
	"repro/internal/punct"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/window"
)

// carryAll builds a carry-every-attribute Map stage (identity on values).
func carryAll(sch stream.Schema) []op.MapAttr {
	outs := make([]op.MapAttr, sch.Arity())
	for i := 0; i < sch.Arity(); i++ {
		outs[i] = op.Carry(sch.Field(i).Name)
	}
	return outs
}

func canonicalLines(c *exec.Collector) []string {
	lines := make([]string, 0, 64)
	for _, tp := range c.Tuples() {
		lines = append(lines, tp.String())
	}
	sort.Strings(lines)
	return lines
}

// TestFusedPlanDigestIdentity is the graph-level property test: randomly
// generated plans mixing stateless chains, embedded punctuation, Parallel(n)
// and a windowed aggregate must produce the same canonical digest compiled
// (Builder.Compile → fused kernels) and uncompiled, under the real
// concurrent runtime.
func TestFusedPlanDigestIdentity(t *testing.T) {
	build := func(seed int64, fused bool) (*Builder, *exec.Collector) {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		if rng.Intn(3) == 0 {
			b.Mode = op.FeedbackIgnore
		}
		src := &exec.SliceSource{SourceName: "src", Schema: testSchema, Items: aggWorkload(3000), BatchSize: 64}
		s := b.Source(src)
		stages := 1 + rng.Intn(3)
		for i := 0; i < stages; i++ {
			switch rng.Intn(3) {
			case 0:
				cut := stream.Float(float64(25 + rng.Intn(20)))
				s = s.SelectExpr(nameOf("f", i), op.ExprStep{
					Col: s.Schema().Index("speed"), Name: "speed", Pred: punct.Ge(cut)})
			case 1:
				s = s.Map(nameOf("norm", i), carryAll(s.Schema())...)
			default:
				// Rotate the attribute order: exercises non-identity
				// projection, punct re-mapping, and feedback attr maps.
				names := make([]string, s.Schema().Arity())
				for j := range names {
					names[j] = s.Schema().Field((j + 1) % len(names)).Name
				}
				s = s.Project(nameOf("rot", i), names...)
			}
		}
		if rng.Intn(2) == 0 {
			parts := 1 + rng.Intn(3)
			s = s.Parallel("p", parts, []string{"segment"}, func(ss Stream) Stream {
				ss = ss.Map("pnorm", carryAll(ss.Schema())...)
				return ss.Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"},
					window.Tumbling(1_000_000), "avg_speed")
			})
		} else {
			s = s.Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"},
				window.Tumbling(1_000_000), "avg_speed")
		}
		sink := s.Collect("sink")
		if fused {
			b.Compile()
		}
		return b, sink
	}

	for seed := int64(0); seed < 12; seed++ {
		bu, su := build(seed, false)
		if err := bu.Run(); err != nil {
			t.Fatalf("seed %d unfused: %v", seed, err)
		}
		bf, sf := build(seed, true)
		if err := bf.Run(); err != nil {
			t.Fatalf("seed %d fused: %v", seed, err)
		}
		want, got := canonicalLines(su), canonicalLines(sf)
		if len(want) == 0 {
			t.Fatalf("seed %d produced no results", seed)
		}
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Fatalf("seed %d: fused digest diverges from unfused\nunfused: %d lines\nfused:   %d lines",
				seed, len(want), len(got))
		}
	}
}

func nameOf(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// TestFusedParallelBoundaries pins the fusion boundaries on a builder-
// assembled plan: the pre-split chain and each partition's stateless prefix
// fuse, while Split, Merge, and the stateful Aggregate survive as nodes.
func TestFusedParallelBoundaries(t *testing.T) {
	b := New()
	src := &exec.SliceSource{SourceName: "src", Schema: testSchema, Items: aggWorkload(500)}
	s := b.Source(src).
		SelectExpr("clean", op.ExprStep{Col: 2, Name: "speed", Pred: punct.Ge(stream.Float(0))}).
		Map("norm", carryAll(testSchema)...)
	s = s.Parallel("p", 2, []string{"segment"}, func(ss Stream) Stream {
		ss = ss.SelectExpr("pf", op.ExprStep{Col: 1, Name: "ts", Pred: punct.Ge(stream.TimeMicros(0))}).
			Map("pm", carryAll(ss.Schema())...)
		return ss.Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"},
			window.Tumbling(1_000_000), "avg_speed")
	})
	s.Collect("sink")
	b.Compile()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}

	g := b.Graph()
	var names []string
	for i := 0; i < g.NumNodes(); i++ {
		names = append(names, g.NameAt(exec.NodeID(i)))
	}
	// Stage 1 fuses the pre-split chain and each partition's stateless
	// prefix; stage 2 then absorbs those kernels into the Split and each
	// Aggregate as prefix kernels. Merge — the punctuation-alignment point —
	// survives untouched, and the stateful nodes keep their identity inside
	// the prefixed wrappers.
	want := []string{"src", "fused(clean+norm=>p.split)", "fused(pf+pm=>avg)", "fused(pf+pm=>avg)", "p.merge", "sink"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("compiled plan = %v, want %v", names, want)
	}
	fusions := b.Fusions()
	if len(fusions) != 6 { // 3 stage-1 kernels + 3 stage-2 absorbs
		t.Fatalf("fusions = %+v, want 6", fusions)
	}
	var absorbed []string
	for _, f := range fusions {
		if f.Consumer != "" {
			absorbed = append(absorbed, f.Consumer)
		}
	}
	sort.Strings(absorbed)
	if strings.Join(absorbed, ",") != "avg,avg,p.split" {
		t.Fatalf("stage-2 consumers = %v, want [avg avg p.split]", absorbed)
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFusedCheckpointRecoverIdentity proves barrier alignment is unchanged
// by fusion: a compiled plan with a fused stateless prefix is checkpointed
// mid-stream, killed, and restored into an identically compiled plan; the
// result must match an uninterrupted *unfused* run — fused ≡ unfused across
// checkpoint → kill → restore.
func TestFusedCheckpointRecoverIdentity(t *testing.T) {
	items := aggWorkload(6000)
	gateAt := len(items) * 3 / 5

	build := func(fused, gateOpen bool) (*Builder, *gatedItems, *exec.Collector) {
		b := New()
		src := &gatedItems{name: "src", schema: testSchema, items: items, gateAt: gateAt}
		src.gate.Store(gateOpen)
		s := b.Source(src).
			SelectExpr("clean", op.ExprStep{Col: 1, Name: "ts", Pred: punct.Ge(stream.TimeMicros(0))}).
			Map("norm", carryAll(testSchema)...)
		// The per-partition stateless prefix makes each aggregate a stage-2
		// absorb target, so the checkpoint cuts (and the restore fills) a
		// Prefixed node wrapping the stateful aggregate.
		out := s.Parallel("p", 2, []string{"segment"}, func(ss Stream) Stream {
			ss = ss.SelectExpr("pclean", op.ExprStep{Col: 1, Name: "ts", Pred: punct.Ge(stream.TimeMicros(0))}).
				Map("pnorm", carryAll(ss.Schema())...)
			return ss.Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"},
				window.Tumbling(1_000_000), "avg_speed")
		})
		sink := out.Collect("sink")
		if fused {
			b.Compile()
		}
		if err := b.Err(); err != nil {
			t.Fatal(err)
		}
		return b, src, sink
	}

	// Unfused, uninterrupted reference.
	bRef, _, sinkRef := build(false, true)
	if err := bRef.Run(); err != nil {
		t.Fatal(err)
	}
	want := canonicalLines(sinkRef)
	if len(want) == 0 {
		t.Fatal("workload produced no results")
	}

	// Fused run parked at the gate: checkpoint, then kill.
	b1, src1, _ := build(true, false)
	runErr := make(chan error, 1)
	go func() { runErr <- b1.Run() }()
	for deadline := time.Now().Add(10 * time.Second); src1.pos.Load() < int64(gateAt); {
		if time.Now().After(deadline) {
			t.Fatalf("source stuck at %d/%d", src1.pos.Load(), gateAt)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	snap, err := b1.Graph().Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b1.Graph().Kill()
	if err := <-runErr; !errors.Is(err, exec.ErrKilled) {
		t.Fatalf("killed run returned %v", err)
	}

	// Restore into an identically compiled plan and finish.
	backend := snapshot.NewMemory()
	if err := snap.Save(backend, "mid-stream"); err != nil {
		t.Fatal(err)
	}
	b2, _, sink2 := build(true, true)
	if err := b2.Graph().Restore(backend, "mid-stream"); err != nil {
		t.Fatal(err)
	}
	if err := b2.Run(); err != nil {
		t.Fatal(err)
	}
	got := canonicalLines(sink2)
	if strings.Join(want, "\n") != strings.Join(got, "\n") {
		t.Fatalf("fused checkpoint-recover digest diverges: %d lines vs %d", len(got), len(want))
	}
}

// TestFusedStatefulDigestIdentity is the stage-2 graph-level property test:
// randomly generated plans whose stateless prefixes feed stateful consumers
// — a windowed aggregate, a Parallel(n) partition fan (Split + per-partition
// aggregates), a symmetric hash join, a Pace union — must produce the same
// canonical digest compiled (prefix kernels absorbed into the consumers,
// batched stateful apply) and uncompiled, across feedback modes and embedded
// punctuation, under the real concurrent runtime.
func TestFusedStatefulDigestIdentity(t *testing.T) {
	build := func(seed int64, fused bool) (*Builder, *exec.Collector) {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		switch rng.Intn(4) {
		case 0:
			b.Mode = op.FeedbackIgnore
		case 1:
			b.Mode = op.FeedbackGuardOutput
		}
		src := &exec.SliceSource{SourceName: "src", Schema: testSchema, Items: aggWorkload(2500), BatchSize: 64}
		s := b.Source(src)
		prefix := func(s Stream, tag string) Stream {
			n := 1 + rng.Intn(2)
			for i := 0; i < n; i++ {
				switch rng.Intn(3) {
				case 0:
					cut := stream.Float(float64(25 + rng.Intn(20)))
					s = s.SelectExpr(tag+nameOf("f", i), op.ExprStep{
						Col: s.Schema().Index("speed"), Name: "speed", Pred: punct.Ge(cut)})
				case 1:
					s = s.Map(tag+nameOf("m", i), carryAll(s.Schema())...)
				default:
					names := make([]string, s.Schema().Arity())
					for j := range names {
						names[j] = s.Schema().Field((j + 1) % len(names)).Name
					}
					s = s.Project(tag+nameOf("r", i), names...)
				}
			}
			return s
		}
		switch seed % 4 {
		case 0: // prefix absorbed into a lone aggregate
			s = prefix(s, "a")
			s = s.Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"},
				window.Tumbling(1_000_000), "avg_speed")
		case 1: // prefix absorbed into Split, per-partition prefixes into aggregates
			s = prefix(s, "pre")
			parts := 1 + rng.Intn(3)
			s = s.Parallel("p", parts, []string{"segment"}, func(ss Stream) Stream {
				ss = ss.SelectExpr("pclean", op.ExprStep{
					Col: ss.Schema().Index("ts"), Name: "ts", Pred: punct.Ge(stream.TimeMicros(0))}).
					Map("pnorm", carryAll(ss.Schema())...)
				return ss.Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"},
					window.Tumbling(1_000_000), "avg_speed")
			})
		case 2: // prefixes absorbed into both join inputs
			outs := s.Duplicate("dup", 2)
			l := prefix(outs[0], "l")
			r := outs[1].Map("rn",
				op.CarryAs("rseg", "segment"), op.CarryAs("rts", "ts"), op.CarryAs("rspeed", "speed"))
			s = l.Join("j", r, []string{"segment", "ts"}, []string{"rseg", "rts"}, "ts", "rts", false)
		default: // prefixes absorbed into both Pace inputs (tolerance too wide to drop)
			outs := s.Duplicate("dup", 2)
			l := outs[0].Map("lm", carryAll(testSchema)...)
			r := outs[1].SelectExpr("rf", op.ExprStep{Col: 1, Name: "ts", Pred: punct.Ge(stream.TimeMicros(0))})
			s = l.Pace("pace", "ts", 1<<60, r)
		}
		sink := s.Collect("sink")
		if fused {
			b.Compile()
		}
		if err := b.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return b, sink
	}

	for seed := int64(0); seed < 12; seed++ {
		bu, su := build(seed, false)
		if err := bu.Run(); err != nil {
			t.Fatalf("seed %d unfused: %v", seed, err)
		}
		bf, sf := build(seed, true)
		hasAbsorb := false
		for _, f := range bf.Fusions() {
			if f.Consumer != "" {
				hasAbsorb = true
			}
		}
		if !hasAbsorb {
			t.Fatalf("seed %d: compiled plan absorbed no prefix (fusions=%+v)", seed, bf.Fusions())
		}
		if err := bf.Run(); err != nil {
			t.Fatalf("seed %d fused: %v", seed, err)
		}
		want, got := canonicalLines(su), canonicalLines(sf)
		if len(want) == 0 {
			t.Fatalf("seed %d produced no results", seed)
		}
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Fatalf("seed %d: stage-2 fused digest diverges from unfused\nunfused: %d lines\nfused:   %d lines",
				seed, len(want), len(got))
		}
	}
}

// TestProjectBadKeepIsBuilderError is the satellite bugfix: a bad Keep list
// must surface through Builder.Err() at wiring time, not panic at the first
// OutSchemas call.
func TestProjectBadKeepIsBuilderError(t *testing.T) {
	b := New()
	b.Source(testSource("s", reading(1, 10, 50))).
		Project("narrow", "segment", "nope").
		Collect("sink")
	if err := b.Err(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Err() = %v, want projection error", err)
	}
	if err := b.Run(); err == nil {
		t.Fatal("Run succeeded on a bad projection")
	}
}

// TestThroughBadOperatorIsBuilderError covers the same panic path when the
// misconfigured operator arrives through the escape hatch.
func TestThroughBadOperatorIsBuilderError(t *testing.T) {
	b := New()
	b.Source(testSource("s", reading(1, 10, 50))).
		Through(&op.Project{OpName: "bad", In: testSchema, Keep: []string{"missing"}}).
		Collect("sink")
	if err := b.Err(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("Err() = %v, want projection error", err)
	}
}

// TestMapBadAttrIsBuilderError: unknown From attributes surface as errors.
func TestMapBadAttrIsBuilderError(t *testing.T) {
	b := New()
	b.Source(testSource("s", reading(1, 10, 50))).
		Map("m", op.Carry("absent")).
		Collect("sink")
	if err := b.Err(); err == nil || !strings.Contains(err.Error(), "absent") {
		t.Fatalf("Err() = %v, want map error", err)
	}
}

// TestExplainRendersFusedKernels: the compiled plan rendering names fused
// nodes and their step tables.
func TestExplainRendersFusedKernels(t *testing.T) {
	b := New()
	b.Source(testSource("s", reading(1, 10, 50))).
		SelectExpr("where", op.ExprStep{Col: 2, Name: "speed", Pred: punct.Ge(stream.Float(30))}).
		Map("norm", carryAll(testSchema)...).
		Collect("sink")
	b.Compile()
	out := b.Explain()
	for _, want := range []string{"fused(where+norm)", "kernel:", "speed>=30"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, out)
		}
	}
}
