package plan

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/queue"
	"repro/internal/remote"
	"repro/internal/snapshot"
	"repro/internal/window"
)

// distStores is the "durable storage" of a coordinator/follower pair,
// surviving in-process crashes: one chain per subplan plus the manifest log
// (sharing the coordinator's backend, as cmd/supervise does).
type distStores struct {
	coord, follow *snapshot.Chain
	log           *snapshot.DistLog
}

func newDistStores() *distStores {
	cb := snapshot.NewMemory()
	return &distStores{
		coord:  snapshot.NewChain(cb),
		follow: snapshot.NewChain(snapshot.NewMemory()),
		log:    snapshot.NewDistLog(cb),
	}
}

// runDistPair runs one incarnation of the two-subplan plan end to end:
// producer (paced source → remote sink, coordinator) and consumer (remote
// source → Parallel(2) aggregate → collector, follower) over TCP loopback
// plus a control pipe, both restored from the committed cut before the
// graphs start. killWhen (nil = run to
// completion) is polled; when it returns true both graphs are killed.
// Returns the follower's canonical results and the committed epoch.
func runDistPair(t *testing.T, items []queue.Item, st *distStores, killWhen func() bool) (results []string, committed int64) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctrlA, ctrlB := net.Pipe()
	defer ctrlA.Close()
	defer ctrlB.Close()

	var (
		wg        sync.WaitGroup
		followG   *exec.Graph
		followErr error
		sink      *exec.Collector
		followUp  = make(chan error, 1)
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		l.Close()
		if err != nil {
			followUp <- err
			return
		}
		b := New()
		out := b.RemoteSource("from-producer", testSchema, conn).
			Parallel("p", 2, []string{"segment"}, func(ss Stream) Stream {
				return ss.Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"},
					window.Tumbling(1_000_000), "avg_speed")
			})
		sink = out.Collect("sink")
		df, err := b.DistFollow("consumer", st.follow, ctrlB)
		if err != nil {
			followUp <- err
			return
		}
		df.Retain = 3
		if _, err := df.Handshake(); err != nil {
			followUp <- err
			return
		}
		followG = b.Graph()
		followUp <- nil
		followErr = df.Run()
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	b := New()
	src := &pacedItems{name: "src", schema: testSchema, items: items}
	rsink := b.Source(src).IntoRemote("to-consumer", conn)
	rsink.WriteTimeout = 30 * time.Second
	dc, err := b.DistCoordinate("producer", st.coord, st.log)
	if err != nil {
		t.Fatal(err)
	}
	dc.AckTimeout = 10 * time.Second
	if _, err := dc.RestoreCommitted(); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.AddFollower(ctrlA); err != nil {
		t.Fatal(err)
	}
	coordG := b.Graph()
	if err := <-followUp; err != nil {
		t.Fatal(err)
	}

	var coordErr, chkErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		coordErr, chkErr = dc.RunCheckpointed(exec.CheckpointPolicy{
			Interval: 10 * time.Millisecond, FullEvery: 3, Retain: 3,
		})
	}()

	killed := false
	if killWhen != nil {
		deadline := time.Now().Add(30 * time.Second)
		for !killWhen() {
			if time.Now().After(deadline) {
				t.Fatal("kill condition never reached")
			}
			time.Sleep(time.Millisecond)
		}
		coordG.Kill()
		followG.Kill()
		killed = true
	}
	wg.Wait()
	if killed {
		if !errors.Is(coordErr, exec.ErrKilled) {
			t.Fatalf("killed coordinator returned %v", coordErr)
		}
	} else {
		if coordErr != nil {
			t.Fatalf("producer: %v", coordErr)
		}
		if followErr != nil {
			t.Fatalf("consumer: %v", followErr)
		}
		// Tail-of-run abandons (an epoch triggered as the stream ended) are
		// tolerated; anything else is a coordination fault.
		if chkErr != nil && !strings.Contains(chkErr.Error(), "abandoned") {
			t.Fatalf("checkpointing: %v", chkErr)
		}
	}
	for _, tp := range sink.Tuples() {
		results = append(results, tp.String())
	}
	sort.Strings(results)
	return results, dc.CommittedEpoch()
}

// TestDistCheckpointKillRestore is the cross-process acceptance test: a
// plan spanning two graphs joined by a TCP edge runs under distributed
// checkpoints; both "processes" are killed mid-epoch; the rebuilt pair
// restores from the last committed distributed manifest and completes. The
// final canonical result set must be identical to an uninterrupted run's —
// the in-flight epoch was abandoned, not half-applied.
func TestDistCheckpointKillRestore(t *testing.T) {
	items := aggWorkload(6000)

	// Uninterrupted reference on fresh storage.
	want, _ := runDistPair(t, items, newDistStores(), nil)
	if len(want) == 0 {
		t.Fatal("workload produced no results")
	}

	// Crash both subplans once two distributed epochs are committed.
	st := newDistStores()
	_, committedAtKill := runDistPair(t, items, st, func() bool {
		m, ok, err := st.log.Latest()
		if err != nil {
			t.Error(err)
			return true
		}
		return ok && m.Epoch >= 2
	})
	if committedAtKill < 2 {
		t.Fatalf("killed with only %d committed epochs", committedAtKill)
	}
	// Both chains may hold epochs past the committed manifest (persisted
	// but never globally acknowledged); restore must discard them.
	got, _ := runDistPair(t, items, st, nil)

	if len(got) != len(want) {
		t.Fatalf("recovered pair produced %d results, uninterrupted %d (gap or duplication)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d diverged after recovery: %s vs %s", i, got[i], want[i])
		}
	}
}

// failingBackend refuses every write — the follower whose disk died.
type failingBackend struct{ *snapshot.Memory }

func (f failingBackend) Put(string, []byte) error {
	return fmt.Errorf("disk full")
}

// TestDistAbandonOnFollowerFailure: a follower that cannot persist acks
// with an error; the coordinator must abandon every epoch (no manifest
// commits) while the stream itself still completes correctly.
func TestDistAbandonOnFollowerFailure(t *testing.T) {
	items := aggWorkload(2000)
	st := newDistStores()
	st.follow = snapshot.NewChain(failingBackend{snapshot.NewMemory()})

	results, committed := runDistPairTolerant(t, items, st)
	if committed != 0 {
		t.Fatalf("coordinator committed epoch %d despite follower persist failures", committed)
	}
	if m, ok, _ := st.log.Latest(); ok {
		t.Fatalf("manifest %d committed despite follower persist failures", m.Epoch)
	}
	if len(results) == 0 {
		t.Fatal("checkpoint failures must not stop the stream")
	}
}

// runDistPairTolerant is runDistPair for runs where every epoch is expected
// to fail: checkpoint errors are required rather than fatal.
func runDistPairTolerant(t *testing.T, items []queue.Item, st *distStores) (results []string, committed int64) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctrlA, ctrlB := net.Pipe()
	defer ctrlA.Close()
	defer ctrlB.Close()

	var (
		wg        sync.WaitGroup
		followErr error
		sink      *exec.Collector
		followUp  = make(chan error, 1)
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		l.Close()
		if err != nil {
			followUp <- err
			return
		}
		b := New()
		out := b.RemoteSource("from-producer", testSchema, conn).
			Aggregate("avg", core.AggAvg, "ts", "speed", []string{"segment"},
				window.Tumbling(1_000_000), "avg_speed")
		sink = out.Collect("sink")
		df, err := b.DistFollow("consumer", st.follow, ctrlB)
		if err != nil {
			followUp <- err
			return
		}
		if _, err := df.Handshake(); err != nil {
			followUp <- err
			return
		}
		followUp <- nil
		followErr = df.Run()
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	b := New()
	src := &pacedItems{name: "src", schema: testSchema, items: items}
	b.Source(src).IntoRemote("to-consumer", conn)
	dc, err := b.DistCoordinate("producer", st.coord, st.log)
	if err != nil {
		t.Fatal(err)
	}
	dc.AckTimeout = 10 * time.Second
	if _, err := dc.RestoreCommitted(); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.AddFollower(ctrlA); err != nil {
		t.Fatal(err)
	}
	if err := <-followUp; err != nil {
		t.Fatal(err)
	}
	var coordErr, chkErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		coordErr, chkErr = dc.RunCheckpointed(exec.CheckpointPolicy{Interval: 10 * time.Millisecond})
	}()
	wg.Wait()
	if coordErr != nil {
		t.Fatalf("producer: %v", coordErr)
	}
	if followErr != nil {
		t.Fatalf("consumer: %v", followErr)
	}
	if chkErr == nil || !strings.Contains(chkErr.Error(), "abandoned") {
		t.Fatalf("expected abandoned epochs, got %v", chkErr)
	}
	for _, tp := range sink.Tuples() {
		results = append(results, tp.String())
	}
	sort.Strings(results)
	return results, dc.CommittedEpoch()
}

// TestDistAckTimeoutAbandons: a follower that never acks (its subplan has
// no remote source, so no barrier ever reaches it) trips the coordinator's
// ack timeout and the epoch is abandoned rather than committed or hung.
func TestDistAckTimeoutAbandons(t *testing.T) {
	ctrlA, ctrlB := net.Pipe()
	defer ctrlA.Close()
	defer ctrlB.Close()

	st := newDistStores()
	// Follower: a local-source subplan that parks mid-stream, handshaken
	// over the control pipe but structurally unable to see barriers.
	fitems := aggWorkload(4000)
	fb := New()
	fsrc := &pacedItems{name: "fsrc", schema: testSchema, items: fitems}
	fb.Source(fsrc).Collect("fsink")
	df, err := fb.DistFollow("consumer", st.follow, ctrlB)
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator: its own paced subplan.
	b := New()
	src := &pacedItems{name: "src", schema: testSchema, items: aggWorkload(4000)}
	b.Source(src).Collect("sink")
	dc, err := b.DistCoordinate("producer", st.coord, st.log)
	if err != nil {
		t.Fatal(err)
	}
	dc.AckTimeout = 200 * time.Millisecond
	if _, err := dc.RestoreCommitted(); err != nil {
		t.Fatal(err)
	}
	handshake := make(chan error, 1)
	go func() {
		if _, err := df.Handshake(); err != nil {
			handshake <- err
			return
		}
		handshake <- nil
	}()
	if _, err := dc.AddFollower(ctrlA); err != nil {
		t.Fatal(err)
	}
	if err := <-handshake; err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var coordErr, followErr error
	wg.Add(2)
	go func() { defer wg.Done(); coordErr = b.Graph().Run() }()
	go func() { defer wg.Done(); followErr = df.Run() }()
	deadline := time.Now().Add(10 * time.Second)
	for src.pos.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator plan never started")
		}
		time.Sleep(time.Millisecond)
	}

	_, err = dc.CheckpointOnce(snapshot.CaptureFull)
	if err == nil || !strings.Contains(err.Error(), "no ack") {
		t.Fatalf("expected ack-timeout abandonment, got %v", err)
	}
	if dc.CommittedEpoch() != 0 {
		t.Fatalf("abandoned epoch committed (%d)", dc.CommittedEpoch())
	}
	b.Graph().Kill()
	fb.Graph().Kill()
	wg.Wait()
	if !errors.Is(coordErr, exec.ErrKilled) || !errors.Is(followErr, exec.ErrKilled) {
		t.Fatalf("teardown: %v / %v", coordErr, followErr)
	}
}

// rawEdge drives one remote edge through a hand-held remote.Sink, so the
// test controls exactly which tuples sit on which side of the wire
// barrier. No feedback flows in this test, so the sink runs without a
// runtime context.
type rawEdge struct{ sink *remote.Sink }

func newRawEdge(t *testing.T, name string, conn net.Conn) *rawEdge {
	t.Helper()
	s := remote.NewSink(name, testSchema, conn)
	s.FlushEvery = 1
	if err := s.Open(nil); err != nil {
		t.Fatal(err)
	}
	return &rawEdge{sink: s}
}

func (r *rawEdge) tuples(t *testing.T, seg int64, ts ...int64) {
	t.Helper()
	for _, v := range ts {
		if err := r.sink.ProcessTuple(0, reading(seg, v, 50), nil); err != nil {
			t.Error(err)
		}
	}
}

func (r *rawEdge) barrier(t *testing.T, epoch int64) {
	t.Helper()
	if err := r.sink.ForwardBarrier(epoch, snapshot.CaptureFull, nil); err != nil {
		t.Error(err)
	}
}

func (r *rawEdge) eos(t *testing.T) {
	t.Helper()
	if err := r.sink.Close(nil); err != nil {
		t.Error(err)
	}
}

// fakeCoordinator plays the control-connection peer: handshake reply with
// the given restore epoch, then relay acks.
func fakeCoordinator(t *testing.T, ctrl net.Conn, restoreEpoch int64) <-chan snapshot.DistMsg {
	t.Helper()
	acks := make(chan snapshot.DistMsg, 16)
	go func() {
		hello, err := snapshot.ReadDistMsg(ctrl)
		if err != nil || hello.Kind != snapshot.DistHello {
			t.Errorf("handshake hello: %+v %v", hello, err)
			return
		}
		if err := snapshot.WriteDistMsg(ctrl, snapshot.DistMsg{Kind: snapshot.DistRestore, Epoch: restoreEpoch}); err != nil {
			t.Error(err)
			return
		}
		for {
			m, err := snapshot.ReadDistMsg(ctrl)
			if err != nil {
				close(acks)
				return
			}
			acks <- m
		}
	}()
	return acks
}

// TestParallelRemoteEdgesCutAtOwnBarrier pins the per-edge cut rule: with
// TWO remote edges feeding one follower, each source must cut exactly at
// its own wire barrier. Edge B's pre-barrier tuples arrive only after edge
// A's barrier has already registered the epoch — a poll-based cut would
// snapshot B early and strand those tuples outside the epoch, so the
// restored run would lose them.
func TestParallelRemoteEdgesCutAtOwnBarrier(t *testing.T) {
	chain := snapshot.NewChain(snapshot.NewMemory())

	runIncarnation := func(restoreEpoch int64, drive func(wA, wB *rawEdge, acks <-chan snapshot.DistMsg)) []string {
		t.Helper()
		dataA1, dataA2 := net.Pipe()
		dataB1, dataB2 := net.Pipe()
		ctrl1, ctrl2 := net.Pipe()
		defer ctrl1.Close()
		defer ctrl2.Close()

		b := New()
		sa := b.RemoteSource("edge-a", testSchema, dataA2)
		sb := b.RemoteSource("edge-b", testSchema, dataB2)
		sink := sa.Union("u", "ts", sb).Collect("sink")
		df, err := b.DistFollow("consumer", chain, ctrl2)
		if err != nil {
			t.Fatal(err)
		}
		acks := fakeCoordinator(t, ctrl1, restoreEpoch)
		restored, err := df.Handshake()
		if err != nil {
			t.Fatal(err)
		}
		if (restoreEpoch > 0) != restored {
			t.Fatalf("restored=%v for restore epoch %d", restored, restoreEpoch)
		}
		runErr := make(chan error, 1)
		go func() { runErr <- df.Run() }()
		drive(newRawEdge(t, "edge-a-writer", dataA1), newRawEdge(t, "edge-b-writer", dataB1), acks)
		if err := <-runErr; err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, tp := range sink.Tuples() {
			lines = append(lines, tp.String())
		}
		sort.Strings(lines)
		return lines
	}

	// Incarnation 1: A sends 5 tuples then its barrier; once those are on
	// the wire and the epoch has had time to register, B sends its 8
	// pre-barrier tuples followed by its barrier. After the epoch is acked
	// (persisted), both edges send their post-barrier tail and EOS.
	full := runIncarnation(0, func(wA, wB *rawEdge, acks <-chan snapshot.DistMsg) {
		wA.tuples(t, 0, 1000, 2000, 3000, 4000, 5000)
		wA.barrier(t, 1)
		// Let edge A's barrier register the epoch before B's pre-barrier
		// tuples arrive: the window in which an eager poll-based cut would
		// snapshot B too early.
		time.Sleep(50 * time.Millisecond)
		wB.tuples(t, 1, 1100, 2100, 3100, 4100, 5100, 6100, 7100, 8100)
		wB.barrier(t, 1)
		ack := <-acks
		if ack.Kind != snapshot.DistAck || ack.Epoch != 1 || ack.Err != "" {
			t.Fatalf("ack: %+v", ack)
		}
		wA.tuples(t, 0, 6000, 7000)
		wA.eos(t)
		wB.tuples(t, 1, 9100)
		wB.eos(t)
	})
	if len(full) != 16 {
		t.Fatalf("uninterrupted run collected %d tuples, want 16", len(full))
	}

	// Incarnation 2: crash-after-the-ack — rebuild, restore epoch 1, and
	// replay only the post-barrier frames. Everything before each edge's
	// OWN barrier must already be in the restored state.
	recovered := runIncarnation(1, func(wA, wB *rawEdge, _ <-chan snapshot.DistMsg) {
		wA.tuples(t, 0, 6000, 7000)
		wA.eos(t)
		wB.tuples(t, 1, 9100)
		wB.eos(t)
	})
	if len(recovered) != len(full) {
		t.Fatalf("recovered run has %d tuples, uninterrupted %d — an edge was cut away from its own barrier", len(recovered), len(full))
	}
	for i := range full {
		if recovered[i] != full[i] {
			t.Fatalf("tuple %d diverged: %s vs %s", i, recovered[i], full[i])
		}
	}
}
